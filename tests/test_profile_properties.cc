// Invariants that must hold for every drive profile in the catalog.
#include <gtest/gtest.h>

#include <cctype>

#include "disk/disk_model.h"
#include "disk/profile.h"
#include "sim/simulator.h"

namespace pscrub::disk {
namespace {

class AllProfiles : public ::testing::TestWithParam<DiskProfile> {};

TEST_P(AllProfiles, SaneParameters) {
  const DiskProfile& p = GetParam();
  EXPECT_GT(p.capacity_bytes, 0);
  EXPECT_GE(p.outer_spt, p.inner_spt);
  EXPECT_GT(p.inner_spt, 0);
  EXPECT_GT(p.rpm, 0);
  EXPECT_GE(p.max_seek, p.min_seek);
  EXPECT_GT(p.rotation_period(), 0);
  EXPECT_GT(p.media_rate_mb_s(), 10.0);
  EXPECT_LT(p.media_rate_mb_s(), 1000.0);
  EXPECT_GT(p.active_watts, p.idle_watts);
  EXPECT_GT(p.idle_watts, p.standby_watts);
}

TEST_P(AllProfiles, VerifyServiceMonotoneInSize) {
  const DiskProfile& p = GetParam();
  SimTime prev = 0;
  for (std::int64_t bytes = 1024; bytes <= 16 * 1024 * 1024; bytes *= 2) {
    const SimTime t = p.sequential_verify_service(bytes);
    EXPECT_GE(t, prev) << p.name << " at " << bytes;
    prev = t;
  }
}

TEST_P(AllProfiles, StaggeredServiceImprovesWithRegions) {
  const DiskProfile& p = GetParam();
  // More regions -> shorter jumps -> never slower.
  SimTime prev = p.staggered_verify_service(64 * 1024, 2);
  for (int regions : {8, 32, 128, 512}) {
    const SimTime t = p.staggered_verify_service(64 * 1024, regions);
    EXPECT_LE(t, prev) << p.name << " at R=" << regions;
    prev = t;
  }
}

TEST_P(AllProfiles, RandomReadDominatesSequentialStreaming) {
  const DiskProfile& p = GetParam();
  // A random read pays seek + rotation on top of the transfer.
  EXPECT_GT(p.random_read_service(64 * 1024),
            p.media_transfer(128) + p.bus_transfer(64 * 1024));
}

TEST_P(AllProfiles, EventModelServesEveryCommandKind) {
  DiskProfile p = GetParam();
  p.capacity_bytes = 1LL << 30;
  Simulator sim;
  DiskModel d(sim, p, 1);
  for (CommandKind kind :
       {CommandKind::kRead, CommandKind::kWrite, CommandKind::kVerifyScsi,
        CommandKind::kVerifyAta}) {
    SimTime latency = -1;
    d.submit({kind, 4096, 128},
             [&](const DiskCommand&, SimTime l) { latency = l; });
    sim.run();
    EXPECT_GT(latency, 0) << p.name;
    EXPECT_LT(latency, kSecond) << p.name;
  }
}

TEST_P(AllProfiles, EnergyIsMonotoneInTime) {
  DiskProfile p = GetParam();
  p.capacity_bytes = 1LL << 30;
  Simulator sim;
  DiskModel d(sim, p, 1);
  double prev = 0.0;
  for (int i = 1; i <= 5; ++i) {
    sim.run_until(i * kSecond);
    const double e = d.energy_joules();
    EXPECT_GT(e, prev);
    prev = e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AllProfiles,
    ::testing::Values(hitachi_ultrastar_15k450(), fujitsu_max3073rc(),
                      fujitsu_map3367np(), wd_caviar(), hitachi_deskstar()),
    [](const ::testing::TestParamInfo<DiskProfile>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pscrub::disk
