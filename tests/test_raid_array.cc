#include <gtest/gtest.h>

#include <stdexcept>

#include "raid/array.h"

namespace pscrub::raid {
namespace {

disk::DiskProfile small_profile() {
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  p.capacity_bytes = 256LL << 20;  // 256 MB members: fast rebuilds
  return p;
}

RaidConfig raid5() {
  RaidConfig c;
  c.data_disks = 4;
  c.parity_disks = 1;
  c.chunk_sectors = 128;
  return c;
}

RaidConfig raid6() {
  RaidConfig c = raid5();
  c.parity_disks = 2;
  return c;
}

struct Rig {
  Simulator sim;
  RaidArray array;
  explicit Rig(const RaidConfig& cfg = raid5())
      : array(sim, cfg, small_profile(), 11) {}

  SimTime read(std::int64_t lbn, std::int64_t sectors) {
    SimTime latency = -1;
    array.read(lbn, sectors, [&](SimTime l) { latency = l; });
    sim.run();
    return latency;
  }
  SimTime write(std::int64_t lbn, std::int64_t sectors) {
    SimTime latency = -1;
    array.write(lbn, sectors, [&](SimTime l) { latency = l; });
    sim.run();
    return latency;
  }
};

TEST(RaidArray, ReadCompletes) {
  Rig r;
  EXPECT_GT(r.read(0, 128), 0);
  EXPECT_EQ(r.array.stats().reads, 1);
  EXPECT_EQ(r.array.stats().degraded_reads, 0);
}

TEST(RaidArray, ReadSpanningChunksHitsMultipleDisks) {
  Rig r;
  // 3 chunks worth starting mid-chunk: touches >= 3 member disks.
  r.read(64, 3 * 128);
  int disks_touched = 0;
  for (int d = 0; d < r.array.total_disks(); ++d) {
    if (r.array.disk(d).counters().reads > 0) ++disks_touched;
  }
  EXPECT_GE(disks_touched, 3);
}

TEST(RaidArray, WriteDoesReadModifyWrite) {
  Rig r;
  r.write(0, 64);
  // RMW: data read+write on one disk, parity read+write on another.
  std::int64_t total_reads = 0;
  std::int64_t total_writes = 0;
  for (int d = 0; d < r.array.total_disks(); ++d) {
    total_reads += r.array.disk(d).counters().reads;
    total_writes += r.array.disk(d).counters().writes;
  }
  EXPECT_EQ(total_reads, 2);   // old data + old parity
  EXPECT_EQ(total_writes, 2);  // new data + new parity
}

TEST(RaidArray, Raid6WritesTouchBothParities) {
  Rig r{raid6()};
  r.write(0, 64);
  std::int64_t total_writes = 0;
  for (int d = 0; d < r.array.total_disks(); ++d) {
    total_writes += r.array.disk(d).counters().writes;
  }
  EXPECT_EQ(total_writes, 3);  // data + P + Q
}

TEST(RaidArray, DegradedReadReconstructs) {
  Rig r;
  const auto loc = r.array.layout().locate(0);
  r.array.fail_disk(loc.disk);
  EXPECT_GT(r.read(0, 64), 0);
  EXPECT_EQ(r.array.stats().degraded_reads, 1);
  // Peers were read instead of the failed member.
  EXPECT_EQ(r.array.disk(loc.disk).counters().reads, 0);
  std::int64_t peer_reads = 0;
  for (int d = 0; d < r.array.total_disks(); ++d) {
    peer_reads += r.array.disk(d).counters().reads;
  }
  EXPECT_EQ(peer_reads, r.array.layout().data_disks());
}

TEST(RaidArray, RebuildCompletesAndHeals) {
  Rig r;
  r.array.fail_disk(2);
  RebuildResult result;
  bool done = false;
  r.array.rebuild(2, {}, [&](const RebuildResult& res) {
    result = res;
    done = true;
  });
  r.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.stripes_rebuilt, r.array.layout().stripes());
  EXPECT_EQ(result.sectors_lost, 0);
  EXPECT_GT(result.duration, 0);
  EXPECT_FALSE(r.array.is_failed(2));
  EXPECT_DOUBLE_EQ(r.array.rebuild_progress(), 1.0);
  // The replacement was fully written.
  EXPECT_EQ(r.array.disk(2).counters().writes, r.array.layout().stripes());
}

TEST(RaidArray, SurvivorLseDuringRebuildLosesSectorsOnRaid5) {
  // The paper's motivating scenario: disk 2 dies; disk 0 holds two latent
  // errors nobody scrubbed; RAID-5 cannot reconstruct those columns.
  Rig r;
  r.array.disk(0).inject_lse(1000);
  r.array.disk(0).inject_lse(5000);
  r.array.fail_disk(2);
  RebuildResult result;
  r.array.rebuild(2, {}, [&](const RebuildResult& res) { result = res; });
  r.sim.run();
  EXPECT_EQ(result.sectors_lost, 2);
  EXPECT_EQ(r.array.stats().lost_sectors, 2);
}

TEST(RaidArray, Raid6ToleratesOneSurvivorLse) {
  Rig r{raid6()};
  r.array.disk(0).inject_lse(1000);
  r.array.fail_disk(2);
  RebuildResult result;
  r.array.rebuild(2, {}, [&](const RebuildResult& res) { result = res; });
  r.sim.run();
  EXPECT_EQ(result.sectors_lost, 0) << "double parity absorbs one LSE";
}

TEST(RaidArray, Raid6LosesOnOverlappingLses) {
  Rig r{raid6()};
  // Two survivors bad at the SAME column + one failed disk = 3 erasures.
  r.array.disk(0).inject_lse(1000);
  r.array.disk(1).inject_lse(1000);
  r.array.fail_disk(2);
  RebuildResult result;
  r.array.rebuild(2, {}, [&](const RebuildResult& res) { result = res; });
  r.sim.run();
  EXPECT_EQ(result.sectors_lost, 1);
}

TEST(RaidArray, RebuildPacingSlowsCompletion) {
  Rig fast;
  fast.array.fail_disk(1);
  SimTime fast_done = 0;
  fast.array.rebuild(1, {},
                     [&](const RebuildResult& r) { fast_done = r.duration; });
  fast.sim.run();

  Rig slow;
  slow.array.fail_disk(1);
  RebuildConfig cfg;
  cfg.inter_stripe_delay = 5 * kMillisecond;
  SimTime slow_done = 0;
  slow.array.rebuild(1, cfg,
                     [&](const RebuildResult& r) { slow_done = r.duration; });
  slow.sim.run();
  EXPECT_GT(slow_done, fast_done + kSecond);
}

TEST(RaidArray, ScrubRepairsLseBeforeFailure) {
  // Scrubbing finds the latent error and repairs it from redundancy, so a
  // later failure + rebuild loses nothing: the paper's whole point.
  Rig r;
  r.array.disk(0).inject_lse(1000);
  r.array.start_scrubbing(10 * kMillisecond, 512 * 1024);
  r.sim.run_until(60 * kSecond);
  EXPECT_EQ(r.array.stats().scrub_detections, 1);
  r.sim.run_until(61 * kSecond);
  EXPECT_FALSE(r.array.disk(0).has_lse(1000)) << "repaired by rewrite";
  EXPECT_GE(r.array.stats().reconstructed_sectors, 1);

  r.array.stop_scrubbing();
  r.array.fail_disk(2);
  RebuildResult result;
  r.array.rebuild(2, {}, [&](const RebuildResult& res) { result = res; });
  r.sim.run();
  EXPECT_EQ(result.sectors_lost, 0);
}

TEST(RaidArray, ScrubbingMakesProgressOnAllMembers) {
  Rig r;
  r.array.start_scrubbing(10 * kMillisecond, 1 << 20);
  r.sim.run_until(30 * kSecond);
  EXPECT_GT(r.array.scrubbed_bytes(),
            static_cast<std::int64_t>(r.array.total_disks()) * (100 << 20));
}

TEST(RaidArray, ReadDuringRebuildDegradesOnlyUnrebuiltRegion) {
  Rig r;
  r.array.fail_disk(0);
  RebuildConfig cfg;
  cfg.inter_stripe_delay = kMillisecond;
  bool rebuilt = false;
  r.array.rebuild(0, cfg, [&](const RebuildResult&) { rebuilt = true; });
  // Let the rebuild cover the first stripes, then read from stripe 0
  // (already rebuilt -> served directly) and from the tail (degraded).
  r.sim.run_until(2 * kSecond);
  ASSERT_FALSE(rebuilt);
  ASSERT_GT(r.array.rebuild_progress(), 0.01);
  ASSERT_LT(r.array.rebuild_progress(), 0.99);

  const std::int64_t degraded_before = r.array.stats().degraded_reads;
  // Stripe 0, data chunk on disk 0 (find one).
  std::int64_t early_lbn = -1;
  std::int64_t late_lbn = -1;
  const auto& layout = r.array.layout();
  for (std::int64_t lbn = 0; lbn < layout.array_sectors();
       lbn += layout.chunk_sectors()) {
    const auto loc = layout.locate(lbn);
    if (loc.disk != 0) continue;
    if (loc.stripe == 0 && early_lbn < 0) early_lbn = lbn;
    if (loc.stripe == layout.stripes() - 1) late_lbn = lbn;
  }
  ASSERT_GE(early_lbn, 0);
  ASSERT_GE(late_lbn, 0);

  SimTime l1 = -1;
  r.array.read(early_lbn, 8, [&](SimTime l) { l1 = l; });
  r.sim.run_until(3 * kSecond);
  EXPECT_EQ(r.array.stats().degraded_reads, degraded_before)
      << "rebuilt region serves directly";

  SimTime l2 = -1;
  r.array.read(late_lbn, 8, [&](SimTime l) { l2 = l; });
  r.sim.run_until(4 * kSecond);
  EXPECT_EQ(r.array.stats().degraded_reads, degraded_before + 1)
      << "unrebuilt region reconstructs from peers";
  EXPECT_GT(l1, 0);
  EXPECT_GT(l2, 0);
}

TEST(RaidArray, FailDiskGuardsInvalidTransitions) {
  Rig r;
  EXPECT_THROW(r.array.fail_disk(-1), std::out_of_range);
  EXPECT_THROW(r.array.fail_disk(r.array.total_disks()), std::out_of_range);
  r.array.fail_disk(2);
  EXPECT_THROW(r.array.fail_disk(2), std::logic_error) << "already failed";
}

TEST(RaidArray, RebuildGuardsInvalidTransitions) {
  Rig r;
  const auto ignore = [](const RebuildResult&) {};
  EXPECT_THROW(r.array.rebuild(-1, {}, ignore), std::out_of_range);
  EXPECT_THROW(r.array.rebuild(0, {}, ignore), std::logic_error)
      << "rebuilding a healthy member is a bookkeeping bug";

  r.array.fail_disk(2);
  r.array.rebuild(2, {}, ignore);
  EXPECT_TRUE(r.array.rebuild_in_flight());
  EXPECT_THROW(r.array.rebuild(2, {}, ignore), std::logic_error)
      << "second rebuild while one is in flight";
  EXPECT_THROW(r.array.fail_disk(3), std::logic_error)
      << "failing another member mid-rebuild is rejected, not silently "
         "corrupted";

  r.sim.run();
  EXPECT_FALSE(r.array.rebuild_in_flight());
  EXPECT_FALSE(r.array.is_failed(2));
  // After completion the array accepts a new failure again.
  r.array.fail_disk(3);
  EXPECT_TRUE(r.array.is_failed(3));
}

TEST(RaidArray, ForegroundReadDetectionTriggersRepair) {
  Rig r;
  const auto loc = r.array.layout().locate(0);
  r.array.disk(loc.disk).inject_lse(loc.lbn);
  r.read(0, 8);  // sim drained: detection, repair, and rewrite all done
  EXPECT_EQ(r.array.stats().read_detections, 1);
  EXPECT_FALSE(r.array.disk(loc.disk).has_lse(loc.lbn))
      << "read-detected LSE reconstructed from peers and rewritten";
  EXPECT_GE(r.array.stats().reconstructed_sectors, 1);
}

TEST(RaidArray, SurvivorUreDuringRebuildCountsAsRebuildDetection) {
  Rig r;
  r.array.disk(0).inject_lse(1000);
  r.array.fail_disk(2);
  RebuildResult result;
  r.array.rebuild(2, {}, [&](const RebuildResult& res) { result = res; });
  r.sim.run();
  EXPECT_GE(r.array.stats().rebuild_detections, 1)
      << "the survivor URE surfaced during the rebuild window";
  EXPECT_EQ(r.array.stats().read_detections, 0) << "not misattributed";
  EXPECT_EQ(result.sectors_lost, 1) << "RAID-5 cannot absorb it";
}

}  // namespace
}  // namespace pscrub::raid
