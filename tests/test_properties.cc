// Cross-module property sweeps: invariants that must hold across the
// parameter space, not just at hand-picked points.
#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/policy_sim.h"
#include "disk/profile.h"
#include "stats/residual_life.h"
#include "trace/catalog.h"
#include "trace/idle.h"
#include "trace/synthetic.h"

namespace pscrub {
namespace {

trace::Trace sample_trace(std::uint64_t seed, double sigma) {
  trace::TraceSpec s;
  s.name = "prop";
  s.seed = seed;
  s.duration = 6 * kHour;
  s.target_requests = 60'000;
  s.burst_len_mean = 6.0;
  s.idle_sigma = sigma;
  s.period = 0;
  s.diurnal_swing = 1.0;
  s.spike_hours.clear();
  return trace::SyntheticGenerator(s).generate_trace();
}

core::PolicySimConfig sim_config() {
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  core::PolicySimConfig c;
  c.foreground_service = core::make_foreground_service(p);
  c.scrub_service = core::make_scrub_service(p);
  return c;
}

// ---- Waiting-policy monotonicity across thresholds and traces ----------

class WaitingMonotonicity
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(WaitingMonotonicity, LargerThresholdNeverRaisesCollisionsOrSlowdown) {
  const auto [seed, sigma] = GetParam();
  const trace::Trace t = sample_trace(seed, sigma);
  double prev_collisions = 1e18;
  double prev_util = 2.0;
  for (SimTime th = 8 * kMillisecond; th <= 2048 * kMillisecond; th *= 4) {
    core::WaitingPolicy p(th);
    const auto r = core::run_policy_sim(t, p, sim_config());
    // Monotone: larger thresholds capture a subset of intervals.
    EXPECT_LE(r.collision_rate, prev_collisions + 1e-12);
    EXPECT_LE(r.idle_utilization, prev_util + 1e-12);
    prev_collisions = r.collision_rate;
    prev_util = r.idle_utilization;
    // Sanity bounds.
    EXPECT_GE(r.idle_utilization, 0.0);
    EXPECT_LE(r.idle_utilization, 1.0);
    EXPECT_LE(r.collisions, r.scrub_requests);
    EXPECT_GE(r.slowdown_max, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTails, WaitingMonotonicity,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Values(1.6, 2.2, 2.8)));

// ---- Lossless dominates Waiting everywhere -----------------------------

class LosslessDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LosslessDominance, LosslessUtilizationIsAnUpperBound) {
  const trace::Trace t = sample_trace(GetParam(), 2.3);
  for (SimTime th : {16 * kMillisecond, 128 * kMillisecond, kSecond}) {
    core::WaitingPolicy w(th);
    core::LosslessWaitingPolicy lw(th);
    const auto rw = core::run_policy_sim(t, w, sim_config());
    const auto rl = core::run_policy_sim(t, lw, sim_config());
    EXPECT_GE(rl.idle_utilization, rw.idle_utilization - 1e-12)
        << "threshold " << th;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LosslessDominance,
                         ::testing::Values(3u, 11u, 29u));

// ---- Idle extraction conservation --------------------------------------

class IdleConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdleConservation, BusyPlusIdleCoversActivitySpan) {
  const trace::Trace t = sample_trace(GetParam(), 2.0);
  const auto e = trace::extract_idle_intervals(t, 2 * kMillisecond);
  // The FCFS sweep partitions [0, end_of_activity] into busy and idle.
  EXPECT_EQ(e.total_idle + e.total_busy, e.end_of_activity);
  // And total busy is exactly requests * fixed service.
  EXPECT_EQ(e.total_busy,
            static_cast<SimTime>(t.size()) * 2 * kMillisecond);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdleConservation,
                         ::testing::Values(5u, 13u, 101u));

// ---- ResidualLife internal consistency ----------------------------------

TEST(ResidualConsistency, UsableFractionMatchesMeanResidualIdentity) {
  const trace::Trace t = sample_trace(17, 2.5);
  const auto e = trace::extract_idle_intervals(t, 2 * kMillisecond);
  stats::ResidualLife life(e.idle_seconds);
  // usable(x) * total == survivors * mean_residual(x) by definition.
  for (double x : {0.001, 0.01, 0.1, 1.0}) {
    const double survivors =
        life.survival(x) * static_cast<double>(life.count());
    const double lhs = life.usable_fraction(x) * life.total_idle();
    const double rhs = survivors * life.mean_residual(x);
    EXPECT_NEAR(lhs, rhs, 1e-6 * std::max(1.0, lhs));
  }
}

// ---- Catalog traces satisfy the paper's qualitative regime -------------

class CatalogRegime : public ::testing::TestWithParam<const char*> {};

TEST_P(CatalogRegime, HeavyTailedAndPeriodic) {
  auto spec = trace::spec_by_name(GetParam());
  ASSERT_TRUE(spec);
  trace::SyntheticGenerator gen(*spec);
  const trace::Trace t = gen.generate_trace(
      std::min(1.0, 300'000.0 / static_cast<double>(spec->target_requests)));
  const auto e = trace::extract_idle_intervals(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
  stats::ResidualLife life(e.idle_seconds);
  // Decreasing hazard: residual life grows with age.
  EXPECT_GT(life.mean_residual(1.0), 1.5 * life.mean_residual(0.0))
      << GetParam();
  // Long tails: most idle time in few intervals.
  EXPECT_GT(life.tail_weight(0.15), 0.6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TableOneDisks, CatalogRegime,
                         ::testing::Values("MSRsrc11", "MSRusr1", "MSRprn1",
                                           "HPc6t8d0", "HPc6t5d1",
                                           "HPc3t3d0"));

}  // namespace
}  // namespace pscrub
