#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/acd_model.h"
#include "stats/ar_model.h"

namespace pscrub::stats {
namespace {

// Simulates an ACD(1,1) process with exponential innovations.
std::vector<double> acd_series(double omega, double alpha, double beta,
                               std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  double psi = omega / (1.0 - alpha - beta);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = psi * rng.exponential(1.0);
    xs.push_back(x);
    psi = omega + alpha * x + beta * psi;
  }
  return xs;
}

TEST(AcdModel, LikelihoodPrefersTrueParameters) {
  const auto xs = acd_series(0.2, 0.3, 0.5, 20000, 3);
  const double at_truth = acd_log_likelihood(xs, 0.2, 0.3, 0.5);
  const double at_iid = acd_log_likelihood(xs, 1.0, 0.0, 0.0);
  EXPECT_GT(at_truth, at_iid);
}

TEST(AcdModel, FitRecoversPersistence) {
  const auto xs = acd_series(0.2, 0.3, 0.5, 20000, 3);
  const AcdModel m = fit_acd(xs);
  ASSERT_TRUE(m.fitted);
  // The persistence alpha + beta is the well-identified quantity.
  EXPECT_NEAR(m.alpha + m.beta, 0.8, 0.12);
  EXPECT_NEAR(m.unconditional_mean(), 1.0, 0.2);
}

TEST(AcdModel, IidDataFitsLowPersistence) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.exponential(2.0));
  const AcdModel m = fit_acd(xs);
  ASSERT_TRUE(m.fitted);
  EXPECT_LT(m.alpha, 0.15) << "no duration clustering in iid data";
}

TEST(AcdModel, ForecastTracksClusters) {
  const auto xs = acd_series(0.2, 0.35, 0.5, 20000, 7);
  const AcdModel m = fit_acd(xs);
  // After a run of long durations the forecast must exceed the forecast
  // after a run of short ones.
  std::vector<double> longs(32, 4.0);
  std::vector<double> shorts(32, 0.1);
  EXPECT_GT(m.forecast(longs), m.forecast(shorts));
}

TEST(AcdModel, TooLittleDataStaysUnfitted) {
  std::vector<double> xs(10, 1.0);
  const AcdModel m = fit_acd(xs);
  EXPECT_FALSE(m.fitted);
  EXPECT_DOUBLE_EQ(m.forecast(xs), 1.0) << "falls back to the mean";
}

TEST(AcdModel, FitCostExceedsArFitCost) {
  // The paper's reason for rejecting ACD: one AR fit is a single
  // Yule-Walker solve; the ACD MLE walks the likelihood surface, costing
  // many full-data evaluations.
  const auto xs = acd_series(0.2, 0.3, 0.5, 4096, 9);
  AcdFitStats stats;
  const AcdModel m = fit_acd(xs, 12, &stats);
  ASSERT_TRUE(m.fitted);
  EXPECT_GT(stats.likelihood_evaluations, 50u)
      << "each evaluation is an O(n) pass: far more work than Yule-Walker";
}

}  // namespace
}  // namespace pscrub::stats
