// pscrubd (src/daemon): crash-safe control plane.
//
// The load-bearing property: a run killed at ANY point and resumed from
// its last checkpoint (or restarted from scratch when none was taken)
// produces final results, stdout rendering, and timeline output
// byte-identical to a run that was never interrupted -- with a
// concurrent operator client hammering the command protocol the whole
// time.
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "daemon/checkpoint.h"
#include "daemon/daemon.h"
#include "exp/scenario.h"
#include "obs/timeline.h"
#include "sim/simulator.h"

namespace pscrub {
namespace {

exp::ScenarioConfig daemon_config() {
  exp::ScenarioConfig c;
  c.label = "daemond";
  c.disk.capacity_bytes = 64LL << 20;  // 131072 sectors, 1024 64K extents
  c.scrubber.kind = exp::ScrubberKind::kWaiting;
  c.scrubber.strategy.request_bytes = 64 * 1024;
  c.run_for = 20 * kSecond;
  c.daemon.devices = 3;
  c.daemon.pacing.request_service = 1 * kMillisecond;
  c.daemon.pacing.request_spacing = 3 * kMillisecond;
  c.daemon.util_min = 0.1;
  c.daemon.util_max = 0.5;
  c.daemon.target_passes = 1;
  c.daemon.checkpoint_interval = kSecond;
  c.daemon.client_commands = 40;
  c.daemon.client_interval = 400 * kMillisecond;
  c.fault.enabled = true;
  c.fault.lse.burst_interarrival_mean = 4 * kSecond;
  c.fault.lse.burst_span_bytes = 4LL << 20;
  return c;
}

/// Everything the byte-identity contract covers: the rendered result
/// (stdout) and the timeline export.
std::string fingerprint(const daemon::DaemonResult& r,
                        const obs::Timeline& tl) {
  return daemon::render_daemon_result(r) + "\n---\n" + tl.to_jsonl();
}

/// Timelines record only when enabled; configure() alone leaves the
/// default-off flag in place (and Daemon then skips wiring entirely).
void enable(obs::Timeline& tl) {
  tl.configure(obs::TimelineConfig{});
  tl.set_enabled(true);
}

std::string reference_fingerprint(const exp::ScenarioConfig& config) {
  obs::Timeline tl;
  enable(tl);
  const daemon::DaemonResult r = daemon::run_daemon(config, &tl);
  return fingerprint(r, tl);
}

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucket, IntegerSectorSecondUnits) {
  daemon::TokenBucket b(100, 200, 1);  // 100 sectors/s, 200-sector burst
  // Starts full: a whole burst goes through instantly.
  EXPECT_EQ(b.acquire(0, 200), 0);
  // Drained: 50 sectors at 100/s are covered in exactly half a second.
  EXPECT_EQ(b.acquire(0, 50), kSecond / 2);
  // The charge was committed at the ready time, so the next 50 wait the
  // same again.
  EXPECT_EQ(b.acquire(kSecond / 2, 50), kSecond);
}

TEST(TokenBucket, UncappedIsPassthrough) {
  daemon::TokenBucket b(0, 0, 1);
  EXPECT_EQ(b.acquire(123, 100000), 123);
  EXPECT_EQ(b.rate(), 0);
}

TEST(TokenBucket, SetRateCarriesAccruedCredit) {
  daemon::TokenBucket b(100, 200, 1);
  EXPECT_EQ(b.acquire(0, 200), 0);  // drain
  // One second at the old rate accrues 100 sectors of credit; the new
  // 200/s rate covers the remaining 50-sector deficit in a quarter
  // second.
  b.set_rate(kSecond, 200, 200, 1);
  EXPECT_EQ(b.acquire(kSecond, 150), kSecond + kSecond / 4);
}

TEST(TokenBucket, LongIdleClampsToBurst) {
  daemon::TokenBucket b(1000, 64, 64);
  EXPECT_EQ(b.acquire(0, 64), 0);
  // A year of idle time must not overflow the accrual arithmetic and
  // must clamp at the burst depth.
  const SimTime year = 365 * kDay;
  EXPECT_EQ(b.acquire(year, 64), year);
  EXPECT_LE(b.tokens(), 64 * kSecond);
}

TEST(TokenBucket, RestoreRoundTrips) {
  daemon::TokenBucket a(100, 200, 1);
  a.acquire(0, 150);
  daemon::TokenBucket b(100, 200, 1);
  b.restore(a.tokens(), a.refilled_at());
  EXPECT_EQ(a.acquire(kSecond, 100), b.acquire(kSecond, 100));
}

// ---------------------------------------------------------------------------
// Determinism and crash safety

TEST(Daemon, RunsAreDeterministic) {
  const exp::ScenarioConfig config = daemon_config();
  EXPECT_EQ(reference_fingerprint(config), reference_fingerprint(config));
}

TEST(Daemon, ClientSeedChangesTheCommandStream) {
  exp::ScenarioConfig config = daemon_config();
  obs::Timeline tl1;
  enable(tl1);
  const daemon::DaemonResult a = daemon::run_daemon(config, &tl1);
  config.daemon.client_seed += 1;
  obs::Timeline tl2;
  enable(tl2);
  const daemon::DaemonResult b = daemon::run_daemon(config, &tl2);
  EXPECT_EQ(a.client_issued, b.client_issued);
  EXPECT_NE(a.status_checksum, b.status_checksum);
}

TEST(DaemonCrash, InSimCrashReplaysByteIdentically) {
  const exp::ScenarioConfig base = daemon_config();
  const std::string want = reference_fingerprint(base);
  // Crash points: mid-run after several checkpoints, just past one, and
  // BEFORE the first checkpoint (restart-from-scratch path).
  for (const SimTime crash_at :
       {7 * kSecond + 1, kSecond + 3, kSecond / 2}) {
    exp::ScenarioConfig config = base;
    config.daemon.crash_at = crash_at;
    obs::Timeline tl;
    enable(tl);
    const daemon::DaemonResult r = daemon::run_daemon(config, &tl);
    EXPECT_EQ(want, fingerprint(r, tl)) << "crash_at=" << crash_at;
  }
}

TEST(DaemonCrash, KillAndResumeAtAnyBoundaryIsByteIdentical) {
  const exp::ScenarioConfig config = daemon_config();
  const std::string want = reference_fingerprint(config);
  // Kill at a fixed amount of verified work (what the CI harness does
  // process-level), resume from the last serialized checkpoint.
  for (const std::int64_t kill_at : {1, 200, 900, 2500}) {
    obs::Timeline tl;
    enable(tl);
    std::string persisted;
    {
      Simulator sim;
      daemon::Daemon d(sim, config, &tl);
      d.start();
      while (sim.step(config.run_for)) {
        if (d.total_extents() >= kill_at) break;
      }
      persisted = d.last_checkpoint();
    }
    Simulator sim;
    daemon::Daemon d(sim, config, &tl);
    if (persisted.empty()) {
      // Died before the first checkpoint: a real restart begins from
      // scratch with a clean metrics plane.
      tl.configure(tl.config());
      d.start();
    } else {
      const daemon::Checkpoint ck = daemon::parse_checkpoint(persisted);
      sim.at(ck.now, [] {});
      sim.run_until(ck.now);
      d.restore(ck);
    }
    sim.run_until(config.run_for);
    EXPECT_EQ(want, fingerprint(d.result(), tl)) << "kill_at=" << kill_at;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint format

TEST(Checkpoint, SerializeParseRoundTrips) {
  const exp::ScenarioConfig config = daemon_config();
  Simulator sim;
  obs::Timeline tl;
  enable(tl);
  daemon::Daemon d(sim, config, &tl);
  d.start();
  sim.run_until(5 * kSecond);
  const daemon::Checkpoint ck = d.snapshot();
  const std::string text = daemon::serialize_checkpoint(ck);
  const daemon::Checkpoint back = daemon::parse_checkpoint(text);
  // Re-serializing the parse must reproduce the exact bytes.
  EXPECT_EQ(text, daemon::serialize_checkpoint(back));
  EXPECT_EQ(back.now, 5 * kSecond);
  EXPECT_EQ(back.jobs.size(), 3u);
  EXPECT_GT(back.checkpoints_taken, 0);
  EXPECT_FALSE(back.timeline_jsonl.empty());
}

TEST(Checkpoint, RejectsUnknownVersion) {
  daemon::Checkpoint ck;
  ck.jobs.push_back({});
  std::string text = daemon::serialize_checkpoint(ck);
  const std::size_t at = text.find("v1");
  ASSERT_NE(at, std::string::npos);
  text[at + 1] = '2';
  EXPECT_THROW(daemon::parse_checkpoint(text), std::runtime_error);
}

TEST(Checkpoint, RejectsTruncation) {
  daemon::Checkpoint ck;
  ck.jobs.push_back({});
  const std::string text = daemon::serialize_checkpoint(ck);
  // Drop the "end" sentinel: a crash mid-write must read as an error.
  EXPECT_THROW(
      daemon::parse_checkpoint(text.substr(0, text.size() - 4)),
      std::runtime_error);
  EXPECT_THROW(daemon::parse_checkpoint(""), std::runtime_error);
  EXPECT_THROW(daemon::parse_checkpoint("not a checkpoint\n"),
               std::runtime_error);
}

TEST(Checkpoint, RestoreRejectsMismatchedGeometry) {
  const exp::ScenarioConfig config = daemon_config();
  Simulator sim;
  daemon::Daemon d(sim, config, nullptr);
  d.start();
  sim.run_until(2 * kSecond);
  daemon::Checkpoint ck = d.snapshot();

  {
    // Wrong device count.
    daemon::Checkpoint bad = ck;
    bad.jobs.pop_back();
    Simulator sim2;
    daemon::Daemon d2(sim2, config, nullptr);
    sim2.at(bad.now, [] {});
    sim2.run_until(bad.now);
    EXPECT_THROW(d2.restore(bad), std::runtime_error);
  }
  {
    // Cursor beyond this geometry's pass (checkpoint from another
    // config).
    daemon::Checkpoint bad = ck;
    bad.jobs[0].cursor = 1 << 20;
    Simulator sim2;
    daemon::Daemon d2(sim2, config, nullptr);
    sim2.at(bad.now, [] {});
    sim2.run_until(bad.now);
    EXPECT_THROW(d2.restore(bad), std::runtime_error);
  }
}

TEST(Checkpoint, FileRoundTripIsAtomic) {
  const std::string path = testing::TempDir() + "/pscrubd_ck_test.txt";
  daemon::Checkpoint ck;
  ck.now = 42;
  ck.jobs.push_back({});
  const std::string text = daemon::serialize_checkpoint(ck);
  daemon::write_checkpoint_file(path, text);
  EXPECT_EQ(daemon::read_checkpoint_file(path), text);
  // No temp file left behind.
  EXPECT_THROW(daemon::read_checkpoint_file(path + ".tmp"),
               std::runtime_error);
  EXPECT_THROW(daemon::read_checkpoint_file(path + ".missing"),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Command protocol semantics

TEST(DaemonCommands, PauseResumeCancelStartStateMachine) {
  exp::ScenarioConfig config = daemon_config();
  config.daemon.client_commands = 0;
  config.fault.enabled = false;
  Simulator sim;
  daemon::Daemon d(sim, config, nullptr);
  d.start();
  sim.run_until(2 * kSecond);
  const std::int64_t ext0 = d.job(0).stats.extents;
  const std::int64_t other0 = d.job(1).stats.extents;
  ASSERT_GT(ext0, 0);

  auto cmd = [](daemon::CommandKind kind, int device) {
    daemon::Command c;
    c.kind = kind;
    c.device = device;
    return c;
  };

  // Pause freezes this scrub (cursor-neutral) and nothing else.
  EXPECT_TRUE(d.apply(cmd(daemon::CommandKind::kPause, 0)).ok);
  EXPECT_EQ(d.status(0).state, daemon::JobState::kPaused);
  const std::int64_t cursor_at_pause = d.job(0).cursor;
  EXPECT_GT(d.status(0).eta, 0);  // hypothetical resume pace
  sim.run_until(4 * kSecond);
  EXPECT_EQ(d.job(0).stats.extents, ext0);
  EXPECT_GT(d.job(1).stats.extents, other0);

  // Pausing a paused scrub is a rejection, not a crash.
  EXPECT_FALSE(d.apply(cmd(daemon::CommandKind::kPause, 0)).ok);
  EXPECT_FALSE(d.apply(cmd(daemon::CommandKind::kStart, 0)).ok);
  EXPECT_FALSE(d.apply(cmd(daemon::CommandKind::kResume, 99)).ok);

  // Resume picks up at the exact cursor.
  EXPECT_TRUE(d.apply(cmd(daemon::CommandKind::kResume, 0)).ok);
  EXPECT_EQ(d.job(0).cursor, cursor_at_pause);
  sim.run_until(6 * kSecond);
  EXPECT_GT(d.job(0).stats.extents, ext0);

  // Cancel abandons the scrub; start begins a fresh pass from zero.
  EXPECT_TRUE(d.apply(cmd(daemon::CommandKind::kCancel, 0)).ok);
  EXPECT_EQ(d.status(0).state, daemon::JobState::kCancelled);
  EXPECT_EQ(d.status(0).eta, 0);
  EXPECT_FALSE(d.apply(cmd(daemon::CommandKind::kResume, 0)).ok);
  EXPECT_TRUE(d.apply(cmd(daemon::CommandKind::kStart, 0)).ok);
  EXPECT_EQ(d.job(0).cursor, 0);
  EXPECT_EQ(d.job(0).passes, 0);
  EXPECT_EQ(d.status(0).state, daemon::JobState::kRunning);

  const daemon::DaemonResult r = d.result();
  EXPECT_EQ(r.jobs[0].pauses, 1);
  EXPECT_EQ(r.jobs[0].resumes, 1);
  EXPECT_EQ(r.jobs[0].starts, 1);
  EXPECT_EQ(r.commands_rejected, 4);
}

TEST(DaemonThrottle, SetRateEtaIsMonotone) {
  exp::ScenarioConfig config = daemon_config();
  config.daemon.client_commands = 0;
  config.fault.enabled = false;
  Simulator sim;
  daemon::Daemon d(sim, config, nullptr);
  d.start();
  daemon::Command cmd;
  cmd.kind = daemon::CommandKind::kSetRate;
  cmd.device = 0;
  SimTime prev = std::numeric_limits<SimTime>::max();
  for (const std::int64_t rate : {64, 256, 1024, 4096, 1 << 20}) {
    cmd.rate = rate;
    ASSERT_TRUE(d.apply(cmd).ok);
    const SimTime eta = d.status(0).eta;
    EXPECT_LT(eta, prev) << "rate=" << rate;
    prev = eta;
  }
  // Uncapped is the idle-pacing floor: raising the cap further cannot
  // beat it.
  cmd.rate = 0;
  ASSERT_TRUE(d.apply(cmd).ok);
  EXPECT_LE(d.status(0).eta, prev);
}

TEST(DaemonThrottle, CapComposesWithIdlePacing) {
  exp::ScenarioConfig base = daemon_config();
  base.daemon.devices = 1;
  base.daemon.client_commands = 0;
  base.fault.enabled = false;
  base.run_for = 12 * kSecond;

  obs::Timeline tl1;
  enable(tl1);
  const daemon::DaemonResult uncapped = daemon::run_daemon(base, &tl1);
  ASSERT_EQ(uncapped.jobs[0].state, daemon::JobState::kDone);
  EXPECT_EQ(uncapped.jobs[0].throttle_waits, 0);

  // 64K extents are 128 sectors; 6400 sectors/s paces one extent per
  // 20 ms -- slower than the idle-stretched step, so the cap dominates.
  exp::ScenarioConfig capped = base;
  capped.daemon.rate_sectors_per_s = 6400;
  obs::Timeline tl2;
  enable(tl2);
  const daemon::DaemonResult r = daemon::run_daemon(capped, &tl2);
  EXPECT_EQ(r.jobs[0].state, daemon::JobState::kRunning);
  EXPECT_GT(r.jobs[0].throttle_waits, 0);
  EXPECT_LT(r.jobs[0].extents, uncapped.jobs[0].extents);
  // Achieved bandwidth tracks the cap (the first extent rides the full
  // initial bucket, hence the tolerance).
  const double achieved =
      static_cast<double>(r.jobs[0].sectors) / to_seconds(base.run_for);
  EXPECT_NEAR(achieved, 6400.0, 6400.0 * 0.05);
  // Throttling returns idle time to the foreground: the modelled
  // slowdown must drop below the uncapped run's.
  EXPECT_LT(r.jobs[0].slowdown, uncapped.jobs[0].slowdown);
  EXPECT_GE(r.jobs[0].slowdown, 1.0);
}

// ---------------------------------------------------------------------------
// Validation

TEST(DaemonValidate, RejectsStackOnlySpecsAndBadRanges) {
  const exp::ScenarioConfig good = daemon_config();
  EXPECT_NO_THROW(exp::validate_scenario(good));

  exp::ScenarioConfig c = good;
  c.raid.enabled = true;
  EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);

  c = good;
  c.workload.kind = exp::WorkloadKind::kRandomReads;
  EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);

  c = good;
  c.fleet.disks = 10;
  EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);

  c = good;
  c.scrubber.kind = exp::ScrubberKind::kNone;
  EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);

  c = good;
  c.daemon.util_max = 1.0;
  EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);

  c = good;
  c.daemon.rate_sectors_per_s = -1;
  EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);

  c = good;
  c.daemon.client_commands = 5;
  c.daemon.client_interval = 0;
  EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);

  // Daemon-mode configs must not build the event-driven Scenario stack.
  EXPECT_THROW(exp::Scenario scenario(good), std::invalid_argument);
}

}  // namespace
}  // namespace pscrub
