// Regression guards for the paper's headline claims: small, fast versions
// of the bench experiments whose *shapes* constitute the reproduction.
// If a refactor breaks one of these, the repository no longer reproduces
// the paper.
#include <gtest/gtest.h>

#include <memory>

#include "pscrub.h"

namespace pscrub {
namespace {

// Claim (Fig 1 / Sec III-A): ATA VERIFY with the cache enabled is
// electronic and size-insensitive; SCSI VERIFY is media-bound either way.
TEST(PaperClaims, AtaVerifyCachePathology) {
  const disk::DiskProfile sata = disk::wd_caviar();
  const SimTime cached_small =
      sata.sequential_verify_service(1024, disk::CommandKind::kVerifyAta);
  const SimTime cached_large = sata.sequential_verify_service(
      64 * 1024, disk::CommandKind::kVerifyAta);
  EXPECT_LT(cached_large, kMillisecond);
  EXPECT_LT(cached_large - cached_small, kMillisecond / 2);

  disk::DiskProfile off = sata;
  off.cache_enabled = false;
  EXPECT_GT(off.sequential_verify_service(1024,
                                          disk::CommandKind::kVerifyAta),
            10 * cached_large);

  const disk::DiskProfile sas = disk::hitachi_ultrastar_15k450();
  disk::DiskProfile sas_off = sas;
  sas_off.cache_enabled = false;
  EXPECT_EQ(sas.sequential_verify_service(64 * 1024),
            sas_off.sequential_verify_service(64 * 1024));
}

// Claim (Fig 4): VERIFY service times are flat below 64 KB.
TEST(PaperClaims, VerifyServiceKneeAt64K) {
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  const double below =
      to_milliseconds(p.sequential_verify_service(64 * 1024) -
                      p.sequential_verify_service(1024));
  const double above =
      to_milliseconds(p.sequential_verify_service(4 * 1024 * 1024) -
                      p.sequential_verify_service(64 * 1024));
  EXPECT_LT(below, 0.5);
  EXPECT_GT(above, 5.0);
}

// Claim (Fig 5b): staggered overtakes sequential at many regions and
// loses at few.
TEST(PaperClaims, StaggeredCrossover) {
  for (const disk::DiskProfile& p :
       {disk::hitachi_ultrastar_15k450(), disk::fujitsu_max3073rc()}) {
    const SimTime seq = p.sequential_verify_service(64 * 1024);
    EXPECT_GT(p.staggered_verify_service(64 * 1024, 2), seq) << p.name;
    EXPECT_LE(p.staggered_verify_service(64 * 1024, 512), seq) << p.name;
  }
}

// Claim (Sec V-A): the generated disk traces have heavy-tailed idle times
// with decreasing hazard; TPC-C is near-memoryless.
TEST(PaperClaims, IdleTimeRegimes) {
  {
    auto spec = trace::spec_by_name("HPc3t3d0");
    ASSERT_TRUE(spec);
    const trace::Trace t = trace::SyntheticGenerator(*spec).generate_trace(
        300'000.0 / static_cast<double>(spec->target_requests));
    const auto e = trace::extract_idle_intervals(
        t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
    const stats::Summary s = stats::summarize(e.idle_seconds);
    EXPECT_GT(s.cov, 3.0);
    stats::ResidualLife life(e.idle_seconds);
    EXPECT_GT(life.mean_residual(1.0), 1.5 * life.mean_residual(0.0));
  }
  {
    auto spec = trace::spec_by_name("TPCdisk66");
    ASSERT_TRUE(spec);
    spec->target_requests = 200'000;
    const trace::Trace t = trace::SyntheticGenerator(*spec).generate_trace();
    const stats::Summary s = stats::summarize(t.interarrival_seconds());
    EXPECT_LT(s.cov, 1.2);
  }
}

// Claim (Fig 14): at a matched collision rate, Waiting utilizes more idle
// time than AR.
TEST(PaperClaims, WaitingDominatesAr) {
  trace::TraceSpec spec;
  spec.name = "claims";
  spec.seed = 21;
  spec.duration = 12 * kHour;
  spec.target_requests = 150'000;
  spec.burst_len_mean = 4.0;
  spec.idle_sigma = 2.4;
  spec.period = 0;
  spec.diurnal_swing = 1.0;
  spec.spike_hours.clear();
  const trace::Trace t = trace::SyntheticGenerator(spec).generate_trace();

  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  core::PolicySimConfig cfg;
  cfg.foreground_service = core::make_foreground_service(p);
  cfg.scrub_service = core::make_scrub_service(p);

  // Sweep both policies; for each AR point find the Waiting point with
  // collision rate <= AR's and compare utilization.
  std::vector<core::PolicySimResult> waiting;
  for (SimTime th = 16 * kMillisecond; th <= 16384 * kMillisecond; th *= 4) {
    core::WaitingPolicy w(th);
    waiting.push_back(core::run_policy_sim(t, w, cfg));
  }
  int comparisons = 0;
  for (SimTime c = 256 * kMillisecond; c <= 16384 * kMillisecond; c *= 4) {
    core::ArPolicy ar(c);
    const auto ra = core::run_policy_sim(t, ar, cfg);
    for (const auto& rw : waiting) {
      if (rw.collision_rate <= ra.collision_rate) {
        EXPECT_GE(rw.idle_utilization + 0.05, ra.idle_utilization)
            << "Waiting@" << rw.collision_rate << " vs AR@"
            << ra.collision_rate;
        ++comparisons;
        break;
      }
    }
  }
  EXPECT_GT(comparisons, 0);
}

// Claim (Fig 15 / Sec V-C): a tuned fixed request size beats 64 KB at the
// same slowdown goal, and adaptive sizing does not beat the tuned fixed
// size.
TEST(PaperClaims, TunedFixedSizeWins) {
  trace::TraceSpec spec;
  spec.name = "claims15";
  spec.seed = 5;
  spec.duration = 12 * kHour;
  spec.target_requests = 150'000;
  spec.burst_len_mean = 5.0;
  spec.idle_sigma = 2.3;
  spec.period = 0;
  spec.diurnal_swing = 1.0;
  spec.spike_hours.clear();
  const trace::Trace t = trace::SyntheticGenerator(spec).generate_trace();

  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  core::OptimizerConfig oc;
  oc.foreground_service = core::make_foreground_service(p);
  oc.scrub_service = core::make_scrub_service(p);
  oc.binary_search_iters = 8;
  core::SlowdownGoal goal;
  goal.mean = kMillisecond;

  const auto best = core::optimize(t, oc, goal);
  const auto small =
      core::tune_threshold_for_size(t, oc, 64 * 1024, goal.mean);
  EXPECT_GT(best.scrub_mb_s, 2.0 * small.scrub_mb_s);

  // Adaptive sizing at a threshold meeting the same goal must not exceed
  // the tuned fixed throughput (beyond tolerance).
  core::PolicySimConfig sc;
  sc.foreground_service = core::make_foreground_service(p);
  sc.scrub_service = core::make_scrub_service(p);
  sc.sizer = core::ScrubSizer::exponential(64 * 1024, 2.0, 4 * 1024 * 1024);
  double adaptive_at_goal = 0.0;
  for (SimTime th = 16 * kMillisecond; th <= 32'768 * kMillisecond;
       th *= 2) {
    core::WaitingPolicy w(th);
    const auto r = core::run_policy_sim(t, w, sc);
    if (r.mean_slowdown_ms <= to_milliseconds(goal.mean)) {
      adaptive_at_goal = r.scrub_mb_s;
      break;
    }
  }
  EXPECT_LE(adaptive_at_goal, best.scrub_mb_s * 1.05);
}

// Claim (abstract): "up to six times more throughput ... than the default
// Linux I/O scheduler" -- the tuned scrubber vs CFQ's fixed behaviour.
TEST(PaperClaims, SixTimesMoreThroughputThanCfq) {
  trace::TraceSpec spec;
  spec.name = "claimsAbs";
  spec.seed = 9;
  spec.duration = 12 * kHour;
  spec.target_requests = 150'000;
  spec.burst_len_mean = 4.0;
  spec.idle_sigma = 2.4;
  spec.period = 0;
  spec.diurnal_swing = 1.0;
  spec.spike_hours.clear();
  const trace::Trace t = trace::SyntheticGenerator(spec).generate_trace();

  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  core::OptimizerConfig oc;
  oc.foreground_service = core::make_foreground_service(p);
  oc.scrub_service = core::make_scrub_service(p);
  oc.binary_search_iters = 8;
  core::SlowdownGoal goal;
  goal.mean = 2 * kMillisecond;
  const auto best = core::optimize(t, oc, goal);

  core::WaitingPolicy cfq(10 * kMillisecond);
  core::PolicySimConfig sc;
  sc.foreground_service = core::make_foreground_service(p);
  sc.scrub_service = core::make_scrub_service(p);
  sc.sizer = core::ScrubSizer::fixed(64 * 1024);
  const auto r = core::run_policy_sim(t, cfq, sc);
  EXPECT_GT(best.scrub_mb_s, 6.0 * r.scrub_mb_s);
}

}  // namespace
}  // namespace pscrub
