#include <gtest/gtest.h>

#include "trace/idle.h"

namespace pscrub::trace {
namespace {

Trace make_trace(std::vector<SimTime> arrivals) {
  Trace t;
  for (SimTime a : arrivals) {
    t.records.push_back({a, 0, 8, false});
  }
  t.duration = arrivals.empty() ? 0 : arrivals.back();
  return t;
}

TEST(IdleExtraction, GapsMinusService) {
  // Arrivals at 0, 10ms, 30ms with 2ms service each:
  // idle = [2,10) = 8ms and [12,30) = 18ms.
  const Trace t = make_trace({0, 10 * kMillisecond, 30 * kMillisecond});
  const IdleExtraction e = extract_idle_intervals(t, 2 * kMillisecond);
  ASSERT_EQ(e.idle_seconds.size(), 2u);
  EXPECT_NEAR(e.idle_seconds[0], 0.008, 1e-12);
  EXPECT_NEAR(e.idle_seconds[1], 0.018, 1e-12);
  EXPECT_EQ(e.total_idle, 26 * kMillisecond);
  EXPECT_EQ(e.total_busy, 6 * kMillisecond);
}

TEST(IdleExtraction, BurstProducesNoIdle) {
  // Back-to-back arrivals inside a busy period yield no idle intervals.
  const Trace t = make_trace({0, kMillisecond / 2, kMillisecond});
  const IdleExtraction e = extract_idle_intervals(t, 2 * kMillisecond);
  EXPECT_TRUE(e.idle_seconds.empty());
}

TEST(IdleExtraction, QueueingDelaysCascade) {
  // Service 5ms, arrivals 0 and 1ms and 20ms: second queues behind first,
  // idle interval starts at its completion (10ms), ends at 20ms.
  const Trace t = make_trace({0, kMillisecond, 20 * kMillisecond});
  const IdleExtraction e = extract_idle_intervals(t, 5 * kMillisecond);
  ASSERT_EQ(e.idle_seconds.size(), 1u);
  EXPECT_NEAR(e.idle_seconds[0], 0.010, 1e-12);
}

TEST(IdleExtraction, LeadingIdleCounted) {
  const Trace t = make_trace({50 * kMillisecond});
  const IdleExtraction e = extract_idle_intervals(t, kMillisecond);
  ASSERT_EQ(e.idle_seconds.size(), 1u);
  EXPECT_NEAR(e.idle_seconds[0], 0.050, 1e-12);
}

TEST(IdleExtraction, PerRecordServiceModel) {
  const Trace t = make_trace({0, 10 * kMillisecond});
  int calls = 0;
  const IdleExtraction e =
      extract_idle_intervals(t, [&](const TraceRecord&) {
        ++calls;
        return kMillisecond;
      });
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(e.idle_seconds.size(), 1u);
  EXPECT_NEAR(e.idle_seconds[0], 0.009, 1e-12);
}

TEST(IdleExtraction, EmptyTrace) {
  const Trace t = make_trace({});
  const IdleExtraction e = extract_idle_intervals(t, kMillisecond);
  EXPECT_TRUE(e.idle_seconds.empty());
  EXPECT_EQ(e.total_busy, 0);
}

}  // namespace
}  // namespace pscrub::trace
