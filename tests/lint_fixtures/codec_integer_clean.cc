// Lint fixture near-miss: stays clean. The annotated codec path is
// integer-only; the double-using helper sitting right next to it is not
// reachable from the codec, so checkpoint-integer-only must not leak
// onto unreachable neighbors.
namespace fixture {

// pscrub-lint: checkpoint-path
long long encode_cursor(long long sector, long long pass) {
  return sector * 10000 + pass;
}

double render_progress(long long done, long long total) {
  return 100.0 * static_cast<double>(done) / static_cast<double>(total);
}

}  // namespace fixture
