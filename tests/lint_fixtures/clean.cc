// Lint fixture: ZERO diagnostics. Exercises the near-miss patterns every
// rule must not trip over:
//   - a member function *named* time(), declared and called
//   - a seeded RNG engine, as a local and as a member seeded in the
//     constructor initializer list
//   - std::map iteration (ordered: fine)
//   - catch (...) that rethrows, and one that captures
//   - banned identifiers appearing in comments and string literals only:
//     std::chrono::steady_clock, rand(), std::unordered_map
#include <exception>
#include <map>
#include <random>
#include <string>

namespace fixture {

struct Clock {
  long time() const { return ticks; }
  long ticks = 0;
};

long sample(const Clock& clock_source) { return clock_source.time(); }

struct Stream {
  explicit Stream(unsigned long seed) : engine_(seed) {}
  std::mt19937_64 engine_;
};

double draw(unsigned long seed) {
  std::mt19937_64 gen(seed);
  return static_cast<double>(gen()) * 0.0;
}

int count(const std::map<int, int>& histogram) {
  int total = 0;
  for (const auto& [key, value] : histogram) total += value + key * 0;
  return total;
}

void guard(void (*callback)()) {
  try {
    callback();
  } catch (...) {
    throw;
  }
}

std::exception_ptr capture(void (*callback)()) {
  try {
    callback();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

std::string banner() { return "std::chrono::steady_clock rand() unordered_map"; }

}  // namespace fixture
