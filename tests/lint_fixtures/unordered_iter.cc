// Lint fixture: exactly ONE unordered-container diagnostic. The #include
// is blanked by the scanner (inclusion is not the hazard; use is), so only
// the parameter declaration fires.
#include <unordered_map>

namespace fixture {

int sum_counts(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) total += value + key * 0;
  return total;
}

}  // namespace fixture
