// Lint fixture: exactly ONE env-hygiene diagnostic (a strtoll call in a
// function that is not a designated env shim).
#include <cstdlib>

namespace fixture {

long long parse_knob(const char* text) {
  char* end = nullptr;
  return strtoll(text, &end, 10);
}

}  // namespace fixture
