// Lint fixture near-miss: every shape here skirts the sim-time-overflow
// heuristics and must stay clean -- literal chains that never exceed int
// rank or lead with a suffixed/unit operand, the divide-down-then-scale
// idiom, and casts that keep sim-time values wide.
#include <cstdint>

namespace fixture {

using SimTime = long long;

constexpr SimTime kSecond = 1000 * 1000 * 1000;       // peaks at 1e9: fits int
constexpr SimTime kMinute = 60 * kSecond;             // unit operand widens
constexpr SimTime kHour = 3600LL * 1000 * 1000 * 1000;  // LL suffix leads

SimTime round_to_minutes(SimTime t) {
  return t / kMinute * kMinute;  // divided down to a scalar count first
}

std::int64_t widen_ok(SimTime t) {
  return static_cast<std::int64_t>(t);  // wide cast: no narrowing
}

int narrow_scalar(int flags) {
  return static_cast<int>(flags);  // narrow cast, but not on sim time
}

}  // namespace fixture
