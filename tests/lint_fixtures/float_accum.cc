// Lint fixture: exactly ONE float-accum diagnostic (atomic double
// accumulation -- fetch_add order is scheduling-dependent and float
// addition does not commute).
#include <atomic>

namespace fixture {

std::atomic<double> total{0.0};

void add_sample(double v) { total.fetch_add(v); }

}  // namespace fixture
