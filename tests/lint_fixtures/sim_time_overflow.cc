// Lint fixture: exactly ONE sim-time-overflow diagnostic (an ns * ns
// product). These files are linted, never compiled, and the directory is
// excluded from tree-wide walks -- they violate on purpose.
namespace fixture {

using SimTime = long long;

SimTime overlap_area(SimTime window, SimTime slack) {
  return window * slack;
}

}  // namespace fixture
