// Lint fixture near-miss: stays clean. Constants are fine inside sweep
// workers, and mutable namespace-scope state is fine while only
// non-sweep code touches it.
namespace fixture {

const long long kBatch = 64;
long long g_sequential_total = 0;

// pscrub-lint: sweep-worker
long long shard_size(long long items) {
  return (items + kBatch - 1) / kBatch;
}

void accumulate_sequential(long long v) {
  g_sequential_total += v;
}

}  // namespace fixture
