// Lint fixture: exactly ONE float-accum diagnostic, in prefix-sum shape.
// The tempting "vectorize the decomposition's prefix sums" rewrite uses
// std::reduce over the per-interval weights; std::reduce may reassociate
// the floating-point sum in unspecified order, so the prefix totals would
// stop being bit-identical across runs (the IdleDecomposition determinism
// contract, DESIGN.md). The fixed-index-order loop below it is the
// sanctioned form and must stay clean.
#include <numeric>
#include <vector>

namespace fixture {

double usable_idle_total(const std::vector<double>& interval_seconds) {
  return std::reduce(interval_seconds.begin(), interval_seconds.end());
}

std::vector<double> prefix_sums(const std::vector<double>& interval_seconds) {
  std::vector<double> prefix(interval_seconds.size() + 1, 0.0);
  for (std::size_t i = 0; i < interval_seconds.size(); ++i) {
    prefix[i + 1] = prefix[i] + interval_seconds[i];
  }
  return prefix;
}

}  // namespace fixture
