// Lint fixture: exactly ONE exception-swallow diagnostic (a catch (...)
// that neither rethrows, captures, nor terminates).
namespace fixture {

void fire(void (*callback)()) {
  try {
    callback();
  } catch (...) {
  }
}

}  // namespace fixture
