// Lint fixture: a suppression naming a rule that does not exist must
// surface as unknown-suppression instead of silently disarming itself.
namespace fixture {

// pscrub-lint: allow(no-such-rule) -- a typo'd marker must not vanish
long long identity(long long v) { return v; }

}  // namespace fixture
