// Lint fixture: ZERO diagnostics -- every violation below is suppressed
// by an explicit marker, covering all three forms: file-scope allow-file,
// a trailing same-line allow, and a preceding-line allow.
//
// pscrub-lint: allow-file(wall-clock)
#include <chrono>
#include <random>
#include <unordered_set>

namespace fixture {

long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

double draw() {
  std::mt19937 gen;  // pscrub-lint: allow(unseeded-rng) -- fixture marker
  return static_cast<double>(gen());
}

// pscrub-lint: allow(unordered-container) -- membership-only, never iterated
std::unordered_set<int> seen;

}  // namespace fixture
