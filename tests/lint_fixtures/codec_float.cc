// Lint fixture: exactly ONE checkpoint-integer-only diagnostic. The
// annotated codec entry point is integer-only itself; the float leak is
// in a helper it calls, so the whole-program closure must walk the call
// edge to find it.
namespace fixture {

double drift_factor(long long ticks) {
  return static_cast<double>(ticks) * 1.5;
}

// pscrub-lint: checkpoint-path
long long serialize_state(long long ticks) {
  return ticks + static_cast<long long>(drift_factor(ticks));
}

}  // namespace fixture
