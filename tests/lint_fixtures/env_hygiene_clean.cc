// Lint fixture near-miss: the same strtoll call, but inside a function
// marked as the designated strict-parsing shim -- clean by design.
#include <cstdlib>

namespace fixture {

// The fixture's one blessed parsing chokepoint: rejects trailing junk.
// pscrub-lint: env-shim
long long parse_knob_strict(const char* text) {
  char* end = nullptr;
  const long long v = strtoll(text, &end, 10);
  return (end != text && *end == '\0') ? v : -1;
}

}  // namespace fixture
