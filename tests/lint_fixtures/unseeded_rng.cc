// Lint fixture: exactly ONE unseeded-rng diagnostic (a default-constructed
// engine, which silently runs every instance off the same implicit
// default_seed instead of a task_seed()-derived stream).
#include <random>

namespace fixture {

double draw() {
  std::mt19937 gen;
  return static_cast<double>(gen());
}

}  // namespace fixture
