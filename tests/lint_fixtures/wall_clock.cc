// Lint fixture: exactly ONE wall-clock diagnostic (a std::chrono clock
// read). These files are linted, never compiled, and the directory is
// excluded from tree-wide walks -- they violate on purpose.
#include <chrono>

namespace fixture {

long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
