// Lint fixture: exactly ONE mutable-global-in-sweep diagnostic. The
// worker is annotated as a sweep entry point and bumps namespace-scope
// mutable state, which breaks bit-identity across worker counts.
namespace fixture {

long long g_tasks_done = 0;

// pscrub-lint: sweep-worker
void run_task(long long index) {
  g_tasks_done += index;
}

}  // namespace fixture
