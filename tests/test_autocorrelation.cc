#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/autocorrelation.h"

namespace pscrub::stats {
namespace {

std::vector<double> ar1(double phi, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x = phi * x + rng.normal(0.0, 1.0);
    xs.push_back(x);
  }
  return xs;
}

TEST(Acf, LagZeroIsOne) {
  const auto xs = ar1(0.5, 1000, 1);
  EXPECT_DOUBLE_EQ(acf(xs, 5)[0], 1.0);
}

TEST(Acf, Ar1DecaysGeometrically) {
  const auto xs = ar1(0.8, 50000, 2);
  const auto r = acf(xs, 3);
  EXPECT_NEAR(r[1], 0.8, 0.02);
  EXPECT_NEAR(r[2], 0.64, 0.03);
  EXPECT_NEAR(r[3], 0.512, 0.04);
}

TEST(Acf, WhiteNoiseNearZero) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const auto r = acf(xs, 10);
  for (std::size_t lag = 1; lag <= 10; ++lag) {
    EXPECT_NEAR(r[lag], 0.0, 0.02);
  }
}

TEST(Acf, ConstantSeriesZeroVariance) {
  std::vector<double> xs(100, 3.0);
  const auto r = acf(xs, 3);
  EXPECT_DOUBLE_EQ(r[1], 0.0);
}

TEST(Autocorrelation, SingleLagMatchesAcf) {
  const auto xs = ar1(0.6, 10000, 4);
  EXPECT_NEAR(autocorrelation(xs, 1), acf(xs, 1)[1], 1e-12);
}

TEST(StrongAutocorrelation, DetectsAr1) {
  EXPECT_TRUE(strongly_autocorrelated(ar1(0.9, 20000, 5)));
}

TEST(StrongAutocorrelation, RejectsWhiteNoise) {
  Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  EXPECT_FALSE(strongly_autocorrelated(xs));
}

TEST(StrongAutocorrelation, ShortSeriesRejected) {
  EXPECT_FALSE(strongly_autocorrelated(ar1(0.9, 50, 7)));
}

TEST(Hurst, WhiteNoiseNearHalf) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 65536; ++i) xs.push_back(rng.normal(0.0, 1.0));
  EXPECT_NEAR(hurst_aggregated_variance(xs), 0.5, 0.08);
}

TEST(Hurst, PersistentSeriesAboveHalf) {
  // Strong positive autocorrelation pushes H above 0.5 (the paper cites
  // Hurst > 0.5 as prior evidence of autocorrelated disk traffic).
  EXPECT_GT(hurst_aggregated_variance(ar1(0.95, 65536, 9)), 0.6);
}

TEST(Hurst, ShortInputFallsBack) {
  std::vector<double> xs(16, 1.0);
  EXPECT_DOUBLE_EQ(hurst_aggregated_variance(xs), 0.5);
}

}  // namespace
}  // namespace pscrub::stats
