#include <gtest/gtest.h>

#include <vector>

#include "disk/disk_model.h"
#include "disk/profile.h"
#include "sim/simulator.h"

namespace pscrub::disk {
namespace {

DiskProfile test_profile() {
  DiskProfile p = hitachi_ultrastar_15k450();
  p.capacity_bytes = 1LL << 30;
  return p;
}

SimTime run_one(Simulator& sim, DiskModel& disk, const DiskCommand& cmd) {
  SimTime latency = -1;
  disk.submit(cmd, [&](const DiskCommand&, SimTime l) { latency = l; });
  sim.run();
  return latency;
}

TEST(LseInjection, InjectAndQuery) {
  Simulator sim;
  DiskModel d(sim, test_profile(), 1);
  EXPECT_FALSE(d.has_lse(100));
  d.inject_lse(100);
  EXPECT_TRUE(d.has_lse(100));
  d.inject_lse(100);  // idempotent
  EXPECT_EQ(d.lse_count(), 1u);
}

TEST(LseInjection, SilentUntilTouched) {
  Simulator sim;
  DiskModel d(sim, test_profile(), 1);
  d.inject_lse(100000);
  run_one(sim, d, {CommandKind::kRead, 0, 128});  // elsewhere
  EXPECT_EQ(d.counters().lse_detected, 0);
}

TEST(LseInjection, VerifyDetects) {
  Simulator sim;
  DiskModel d(sim, test_profile(), 1);
  d.inject_lse(64);
  std::vector<Lbn> detected;
  d.set_lse_observer([&](Lbn lbn, bool is_read) {
    EXPECT_FALSE(is_read);
    detected.push_back(lbn);
  });
  run_one(sim, d, {CommandKind::kVerifyScsi, 0, 128});
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0], 64);
  EXPECT_EQ(d.counters().lse_detected, 1);
  EXPECT_TRUE(d.has_lse(64)) << "verify detects but does not repair";
}

TEST(LseInjection, ReadPaysRecoveryPenalty) {
  Simulator sim_a;
  Simulator sim_b;
  DiskProfile p = test_profile();
  DiskModel clean(sim_a, p, 1);
  DiskModel bad(sim_b, p, 1);
  bad.inject_lse(10);
  bad.inject_lse(20);
  bad.set_lse_read_penalty(500 * kMillisecond);
  const SimTime t_clean = run_one(sim_a, clean, {CommandKind::kRead, 0, 128});
  const SimTime t_bad = run_one(sim_b, bad, {CommandKind::kRead, 0, 128});
  EXPECT_GE(t_bad, t_clean + kSecond - 10 * kMillisecond)
      << "two bad sectors: two recovery timeouts";
}

TEST(LseInjection, ReadReportsThroughObserver) {
  Simulator sim;
  DiskModel d(sim, test_profile(), 1);
  d.inject_lse(5);
  bool read_flag = false;
  d.set_lse_observer([&](Lbn, bool is_read) { read_flag = is_read; });
  run_one(sim, d, {CommandKind::kRead, 0, 128});
  EXPECT_TRUE(read_flag);
}

TEST(LseInjection, WriteRepairs) {
  Simulator sim;
  DiskModel d(sim, test_profile(), 1);
  d.inject_lse(64);
  run_one(sim, d, {CommandKind::kWrite, 0, 128});
  EXPECT_FALSE(d.has_lse(64));
  EXPECT_EQ(d.counters().lse_repaired, 1);
  // Subsequent verify finds nothing.
  run_one(sim, d, {CommandKind::kVerifyScsi, 0, 128});
  EXPECT_EQ(d.counters().lse_detected, 0);
}

TEST(LseInjection, AtaVerifyFromCacheMissesErrors) {
  // The Fig 1 pathology has a reliability consequence: a cache-answered
  // VERIFY cannot detect latent errors at all.
  Simulator sim;
  DiskProfile p = wd_caviar();
  p.capacity_bytes = 1LL << 30;
  DiskModel d(sim, p, 1);
  d.inject_lse(64);
  run_one(sim, d, {CommandKind::kVerifyAta, 0, 128});
  EXPECT_EQ(d.counters().lse_detected, 0)
      << "cache-served verify must not see the medium";
  d.set_cache_enabled(false);
  run_one(sim, d, {CommandKind::kVerifyAta, 0, 128});
  EXPECT_EQ(d.counters().lse_detected, 1);
}

TEST(LseInjection, RepairAndClear) {
  Simulator sim;
  DiskModel d(sim, test_profile(), 1);
  d.inject_lse(1);
  d.inject_lse(2);
  d.repair_lse(1);
  EXPECT_EQ(d.counters().lse_repaired, 1);
  EXPECT_EQ(d.lse_count(), 1u);
  d.clear_lses();
  EXPECT_EQ(d.lse_count(), 0u);
  EXPECT_EQ(d.counters().lse_repaired, 1) << "clear is not a repair";
}

TEST(LseInjection, ScrubPassFindsAllErrors) {
  Simulator sim;
  DiskModel d(sim, test_profile(), 1);
  Rng rng(3);
  constexpr int kErrors = 20;
  for (int i = 0; i < kErrors; ++i) {
    d.inject_lse(rng.uniform_int(0, d.total_sectors() - 1));
  }
  const std::size_t injected = d.lse_count();  // duplicates collapse
  // Verify the whole disk in large extents.
  const std::int64_t step = 1 << 16;
  for (Lbn lbn = 0; lbn < d.total_sectors(); lbn += step) {
    const std::int64_t n = std::min<std::int64_t>(step, d.total_sectors() - lbn);
    d.submit({CommandKind::kVerifyScsi, lbn, n}, nullptr);
    sim.run();
  }
  EXPECT_EQ(d.counters().lse_detected, static_cast<std::int64_t>(injected));
}

}  // namespace
}  // namespace pscrub::disk
