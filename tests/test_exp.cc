// Tests for the scenario engine and the deterministic sweep runner: the
// bit-identical-for-any-worker-count contract, ordered registry merging,
// engine-vs-hand-wired stack equivalence, and the tracer's
// single-threaded-ness guard.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pscrub.h"

namespace pscrub::exp {
namespace {

// ---------------------------------------------------------------------------
// task_seed

TEST(TaskSeed, DistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = task_seed(1, i);
    EXPECT_EQ(s, task_seed(1, i)) << "seed must be a pure function";
    EXPECT_TRUE(seen.insert(s).second) << "duplicate seed at index " << i;
  }
}

TEST(TaskSeed, DependsOnBaseSeed) {
  EXPECT_NE(task_seed(1, 0), task_seed(2, 0));
  // Index 0 must not collapse onto the raw base seed.
  EXPECT_NE(task_seed(1, 0), 1u);
}

// ---------------------------------------------------------------------------
// Registry::merge

TEST(RegistryMerge, CountersAddGaugesLastWinHistogramsMerge) {
  obs::Registry a;
  a.counter("c") += 3;
  a.gauge("g").set(1.0);
  a.histogram("h").record(5 * kMillisecond);

  obs::Registry b;
  b.counter("c") += 4;
  b.gauge("g").set(2.0);
  b.histogram("h").record(7 * kMillisecond);
  b.counter("only_b") += 1;

  obs::Registry m;
  m.merge(a);
  m.merge(b);
  EXPECT_EQ(m.counter("c").value(), 7);
  EXPECT_DOUBLE_EQ(m.gauge("g").value(), 2.0);
  EXPECT_EQ(m.histogram("h").count(), 2);
  EXPECT_EQ(m.counter("only_b").value(), 1);
}

// ---------------------------------------------------------------------------
// sweep

struct TaskOut {
  std::uint64_t seed = 0;
  std::size_t index = 0;
  double value = 0.0;
};

TaskOut busy_task(TaskContext& ctx) {
  // Deterministic per-seed work, plus metrics in every category.
  Rng rng(ctx.seed);
  double acc = 0.0;
  for (int i = 0; i < 1000; ++i) acc += rng.uniform();
  ctx.registry.counter("tasks") += 1;
  ctx.registry.counter("task." + std::to_string(ctx.index) + ".visits") += 1;
  ctx.registry.gauge("last_index").set(static_cast<double>(ctx.index));
  ctx.registry.histogram("acc_ms").record(from_seconds(acc * 1e-3));
  return {ctx.seed, ctx.index, acc};
}

TEST(Sweep, BitIdenticalForAnyWorkerCount) {
  constexpr std::size_t kTasks = 37;
  std::vector<std::vector<TaskOut>> outs;
  std::vector<std::string> jsons;
  for (int workers : {1, 2, 8}) {
    obs::Registry merged;
    SweepOptions options;
    options.workers = workers;
    options.merge_into = &merged;
    outs.push_back(sweep<TaskOut>(kTasks, busy_task, options));
    jsons.push_back(merged.to_json());
  }
  for (std::size_t w = 1; w < outs.size(); ++w) {
    ASSERT_EQ(outs[w].size(), outs[0].size());
    for (std::size_t i = 0; i < outs[0].size(); ++i) {
      EXPECT_EQ(outs[w][i].seed, outs[0][i].seed);
      EXPECT_EQ(outs[w][i].index, outs[0][i].index);
      EXPECT_DOUBLE_EQ(outs[w][i].value, outs[0][i].value);
    }
    EXPECT_EQ(jsons[w], jsons[0])
        << "merged registry JSON must not depend on worker count";
  }
}

TEST(Sweep, ResultsLandInIndexOrder) {
  SweepOptions options;
  options.workers = 4;
  const auto out = sweep<std::size_t>(
      100, [](TaskContext& ctx) { return ctx.index * 2; }, options);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 2);
}

TEST(Sweep, MergesRegistriesInTaskOrder) {
  // Gauges take the LAST merged value; with ordered merging that is always
  // the highest task index, regardless of which worker finished last.
  for (int workers : {1, 2, 8}) {
    obs::Registry merged;
    SweepOptions options;
    options.workers = workers;
    options.merge_into = &merged;
    sweep<int>(
        16,
        [](TaskContext& ctx) {
          ctx.registry.gauge("last_index").set(static_cast<double>(ctx.index));
          ctx.registry.counter("n") += 1;
          return 0;
        },
        options);
    EXPECT_DOUBLE_EQ(merged.gauge("last_index").value(), 15.0);
    EXPECT_EQ(merged.counter("n").value(), 16);
  }
}

TEST(Sweep, RethrowsLowestIndexFailure) {
  for (int workers : {1, 4, 8}) {
    SweepOptions options;
    options.workers = workers;
    try {
      sweep<int>(
          32,
          [](TaskContext& ctx) -> int {
            if (ctx.index == 5 || ctx.index == 20) {
              throw std::runtime_error("task " + std::to_string(ctx.index));
            }
            return 0;
          },
          options);
      FAIL() << "sweep must rethrow a task failure (workers=" << workers
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 5");
    }
  }
}

TEST(Sweep, DistinctSeedsPerTask) {
  const auto seeds = sweep<std::uint64_t>(
      64, [](TaskContext& ctx) { return ctx.seed; });
  const std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
}

// ---------------------------------------------------------------------------
// Tracer interplay

TEST(TracerGuard, SweepFallsBackToSerialWhileTracing) {
  const std::string path = testing::TempDir() + "/sweep_trace.json";
  ASSERT_TRUE(obs::Tracer::global().open(path));
  EXPECT_EQ(resolve_workers(8), 1);
  // The sweep itself must still work (serially, on this thread), even when
  // tasks emit trace events.
  std::thread::id main_id = std::this_thread::get_id();
  const auto out = sweep<int>(4, [&](TaskContext& ctx) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    obs::Tracer::global().instant(obs::Track::kPolicy, "test", "tick",
                                  static_cast<SimTime>(ctx.index));
    return static_cast<int>(ctx.index);
  });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  obs::Tracer::global().close();
  EXPECT_GT(resolve_workers(8), 0);
  std::remove(path.c_str());
}

TEST(TracerGuard, EmittingOffOwnerThreadThrows) {
  const std::string path = testing::TempDir() + "/owner_trace.json";
  obs::Tracer tracer;
  ASSERT_TRUE(tracer.open(path));
  // Emitting from the open()ing thread is fine.
  tracer.instant(obs::Track::kDisk, "test", "ok", 0);

  std::atomic<bool> threw{false};
  std::thread worker([&] {
    try {
      tracer.instant(obs::Track::kDisk, "test", "bad", 1);
    } catch (const std::runtime_error&) {
      threw = true;
    }
  });
  worker.join();
  EXPECT_TRUE(threw) << "off-thread emission must throw, not corrupt the "
                        "stream";
  tracer.close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Scenario engine vs a hand-wired stack

TEST(Scenario, MatchesHandWiredStack) {
  constexpr SimTime kRun = 20 * kSecond;
  constexpr SimTime kThreshold = 50 * kMillisecond;
  constexpr std::int64_t kRequestBytes = 512 * 1024;

  // Hand-wired, exactly as the benches used to do it.
  Simulator sim;
  disk::DiskModel drive(sim, disk::hitachi_ultrastar_15k450(), 1);
  block::BlockLayer blk(sim, drive,
                        std::make_unique<block::CfqScheduler>());
  workload::SyntheticConfig wcfg;
  workload::SequentialChunkWorkload fg(sim, blk, wcfg, 42);
  core::WaitingScrubber scrubber(
      sim, blk, core::make_sequential(drive.total_sectors(), kRequestBytes),
      kThreshold);
  fg.start();
  scrubber.start();
  sim.run_until(kRun);

  // The same stack, declaratively.
  ScenarioConfig cfg;
  cfg.disk.kind = DiskKind::kUltrastar15k450;
  cfg.scheduler = SchedulerKind::kCfq;
  cfg.workload.kind = WorkloadKind::kSequentialChunks;
  cfg.scrubber.kind = ScrubberKind::kWaiting;
  cfg.scrubber.wait_threshold = kThreshold;
  cfg.scrubber.strategy.request_bytes = kRequestBytes;
  cfg.run_for = kRun;
  const ScenarioResult r = run_scenario(cfg);

  EXPECT_EQ(r.workload_requests, fg.metrics().requests);
  EXPECT_EQ(r.workload_bytes, fg.metrics().bytes);
  EXPECT_EQ(r.scrub_requests, scrubber.stats().requests);
  EXPECT_EQ(r.scrub_bytes, scrubber.stats().bytes);
  EXPECT_EQ(r.collisions, blk.stats().collisions);
  EXPECT_EQ(r.collision_delay_sum, blk.stats().collision_delay_sum);
}

TEST(Scenario, SweepOfScenariosIsWorkerCountInvariant) {
  std::vector<ScenarioConfig> configs;
  for (int th : {10, 50, 200}) {
    ScenarioConfig cfg;
    cfg.label = "det." + std::to_string(th);
    cfg.workload.kind = WorkloadKind::kSequentialChunks;
    cfg.scrubber.kind = ScrubberKind::kWaiting;
    cfg.scrubber.wait_threshold = th * kMillisecond;
    cfg.run_for = 10 * kSecond;
    configs.push_back(cfg);
  }
  std::vector<std::string> jsons;
  std::vector<std::vector<std::int64_t>> bytes;
  for (int workers : {1, 2, 8}) {
    obs::Registry merged;
    SweepOptions options;
    options.workers = workers;
    options.merge_into = &merged;
    const auto results = run_scenarios(configs, options);
    std::vector<std::int64_t> b;
    for (const auto& r : results) b.push_back(r.scrub_bytes);
    bytes.push_back(b);
    jsons.push_back(merged.to_json());
  }
  EXPECT_EQ(bytes[1], bytes[0]);
  EXPECT_EQ(bytes[2], bytes[0]);
  EXPECT_EQ(jsons[1], jsons[0]);
  EXPECT_EQ(jsons[2], jsons[0]);
}

TEST(Scenario, RaidRejectsForegroundWorkloadKinds) {
  ScenarioConfig cfg;
  cfg.raid.enabled = true;
  cfg.workload.kind = WorkloadKind::kRandomReads;
  EXPECT_THROW(Scenario scenario(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Policy scenarios vs the direct fast path

trace::Trace small_trace() {
  trace::TraceSpec spec;
  spec.name = "exp-test";
  spec.seed = 7;
  spec.duration = 10 * kMinute;
  spec.target_requests = 20000;
  return trace::SyntheticGenerator(spec).generate_trace();
}

TEST(PolicyScenario, MatchesDirectRunPolicySim) {
  const trace::Trace t = small_trace();
  const disk::DiskProfile profile = disk::hitachi_ultrastar_15k450();

  core::WaitingPolicy policy(64 * kMillisecond);
  core::PolicySimConfig c;
  c.foreground_service = core::make_foreground_service(profile);
  c.scrub_service = core::make_scrub_service(profile);
  c.sizer = core::ScrubSizer::fixed(64 * 1024);
  const core::PolicySimResult direct = core::run_policy_sim(t, policy, c);

  PolicySimScenario s;
  s.trace = &t;
  s.policy.kind = PolicyKind::kWaiting;
  s.policy.threshold = 64 * kMillisecond;
  const core::PolicySimResult engine = run_policy_scenario(s);

  EXPECT_EQ(engine.foreground_requests, direct.foreground_requests);
  EXPECT_EQ(engine.collisions, direct.collisions);
  EXPECT_EQ(engine.scrubbed_bytes, direct.scrubbed_bytes);
  EXPECT_EQ(engine.slowdown_sum, direct.slowdown_sum);
  EXPECT_EQ(engine.idle_utilized, direct.idle_utilized);
}

TEST(PolicyScenario, SweepIsWorkerCountInvariant) {
  const trace::Trace t = small_trace();
  const std::vector<SimTime> services = core::precompute_services(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));

  std::vector<PolicySimScenario> scenarios;
  for (int th : {16, 64, 256, 1024}) {
    PolicySimScenario s;
    s.label = "pol." + std::to_string(th);
    s.trace = &t;
    s.services = &services;
    s.policy.threshold = th * kMillisecond;
    scenarios.push_back(s);
  }
  std::vector<std::string> jsons;
  std::vector<std::vector<std::int64_t>> bytes;
  for (int workers : {1, 2, 8}) {
    obs::Registry merged;
    SweepOptions options;
    options.workers = workers;
    options.merge_into = &merged;
    const auto results = run_policy_scenarios(scenarios, options);
    std::vector<std::int64_t> b;
    for (const auto& r : results) b.push_back(r.scrubbed_bytes);
    bytes.push_back(b);
    jsons.push_back(merged.to_json());
  }
  EXPECT_EQ(bytes[1], bytes[0]);
  EXPECT_EQ(bytes[2], bytes[0]);
  EXPECT_EQ(jsons[1], jsons[0]);
  EXPECT_EQ(jsons[2], jsons[0]);
}

// ---------------------------------------------------------------------------
// Optimizer: the parallel fan-out must not change the recommendation

TEST(Optimizer, ParallelMatchesSerial) {
  const trace::Trace t = small_trace();
  const disk::DiskProfile profile = disk::hitachi_ultrastar_15k450();

  core::OptimizerConfig oc;
  oc.foreground_service = core::make_foreground_service(profile);
  oc.scrub_service = core::make_scrub_service(profile);
  oc.candidate_sizes = {64 * 1024, 256 * 1024, 1024 * 1024};
  oc.binary_search_iters = 7;
  core::SlowdownGoal goal;
  goal.mean = 1 * kMillisecond;

  oc.workers = 1;
  const core::SizeThresholdChoice serial = core::optimize(t, oc, goal);
  oc.workers = 4;
  const core::SizeThresholdChoice parallel = core::optimize(t, oc, goal);

  EXPECT_EQ(parallel.request_bytes, serial.request_bytes);
  EXPECT_EQ(parallel.threshold, serial.threshold);
  EXPECT_DOUBLE_EQ(parallel.scrub_mb_s, serial.scrub_mb_s);
  EXPECT_DOUBLE_EQ(parallel.achieved_mean_slowdown_ms,
                   serial.achieved_mean_slowdown_ms);
  EXPECT_DOUBLE_EQ(parallel.collision_rate, serial.collision_rate);
  EXPECT_GT(serial.request_bytes, 0);
}

// The serial reference the optimizer used before the sweep refactor: a
// plain in-order loop over the size grid. The parallel fan-out must agree
// with it exactly.
TEST(Optimizer, MatchesPreRefactorSerialLoop) {
  const trace::Trace t = small_trace();
  const disk::DiskProfile profile = disk::hitachi_ultrastar_15k450();

  core::OptimizerConfig oc;
  oc.foreground_service = core::make_foreground_service(profile);
  oc.scrub_service = core::make_scrub_service(profile);
  const std::vector<SimTime> services =
      core::precompute_services(t, oc.foreground_service);
  oc.services = &services;
  oc.candidate_sizes = {64 * 1024, 256 * 1024, 1024 * 1024};
  oc.binary_search_iters = 7;
  core::SlowdownGoal goal;
  goal.mean = 1 * kMillisecond;

  core::SizeThresholdChoice reference;
  for (std::int64_t size : oc.candidate_sizes) {
    if (oc.scrub_service(size) > goal.max) continue;
    const core::SizeThresholdChoice c =
        core::tune_threshold_for_size(t, oc, size, goal.mean);
    if (c.scrub_mb_s > reference.scrub_mb_s) reference = c;
  }

  oc.workers = 4;
  const core::SizeThresholdChoice parallel = core::optimize(t, oc, goal);
  EXPECT_EQ(parallel.request_bytes, reference.request_bytes);
  EXPECT_EQ(parallel.threshold, reference.threshold);
  EXPECT_DOUBLE_EQ(parallel.scrub_mb_s, reference.scrub_mb_s);
}

}  // namespace
}  // namespace pscrub::exp
