// Timeline engine tests: digest bucket exactness and order-independent
// merging, windowed recording semantics (counters / gauges / digests,
// span distribution, deterministic coarsening), JSONL export/import
// round-trips and schema rejection, and the worker-count invariance of
// timelines produced through exp::sweep.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "obs/digest.h"
#include "obs/timeline.h"
#include "obs/timeline_io.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "trace/synthetic.h"

namespace pscrub {
namespace {

using obs::QuantileDigest;
using obs::Timeline;

// ---------------------------------------------------------------------------
// QuantileDigest
// ---------------------------------------------------------------------------

TEST(QuantileDigest, EmptyDigestReturnsZeros) {
  QuantileDigest d;
  EXPECT_EQ(d.count(), 0);
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), 0.0);
  EXPECT_DOUBLE_EQ(d.sum(), 0.0);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(d.quantile(q), 0.0) << "q=" << q;
  }
}

TEST(QuantileDigest, SingleValueQuantilesClampToExtrema) {
  QuantileDigest d;
  d.observe(12.5);
  EXPECT_EQ(d.count(), 1);
  EXPECT_DOUBLE_EQ(d.min(), 12.5);
  EXPECT_DOUBLE_EQ(d.max(), 12.5);
  // Quantiles clamp to [min, max], so a single sample is exact at every q.
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(d.quantile(q), 12.5) << "q=" << q;
  }
}

TEST(QuantileDigest, QuantileAccuracyLognormal) {
  // 16 sub-buckets per octave: relative bucket width <= 1/16, so the
  // midpoint estimate is within ~1/32 of the true value, plus rank slack.
  Rng rng(321);
  QuantileDigest d;
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.lognormal(1.0, 1.4);
    samples.push_back(v);
    d.observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size()));
    const double exact = samples[std::min(rank, samples.size() - 1)];
    EXPECT_NEAR(d.quantile(q), exact, exact * 0.07 + 1e-12) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(d.quantile(0.0), samples.front());
  EXPECT_DOUBLE_EQ(d.quantile(1.0), samples.back());
}

TEST(QuantileDigest, MergeEqualsCombinedRecording) {
  Rng rng(99);
  QuantileDigest a, b, combined;
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.exponential(3.0);
    (i % 2 == 0 ? a : b).observe(v);
    combined.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_EQ(a.buckets(), combined.buckets());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileDigest, MergeIsOrderIndependentUnderSeededShuffles) {
  // Build 16 shards, then merge them in 20 random (seeded) orders: every
  // field of the result, including the derived sum, must be identical.
  // This is the property that lets fleet-style reports combine files in
  // argument order without a canonicalization pass.
  Rng rng(2025);
  std::vector<QuantileDigest> shards(16);
  for (int i = 0; i < 4000; ++i) {
    shards[static_cast<std::size_t>(i % 16)].observe(rng.lognormal(0.5, 2.0));
  }

  QuantileDigest reference;
  for (const QuantileDigest& s : shards) reference.merge(s);

  Rng shuffle_rng(7);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::size_t> order(shards.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    QuantileDigest merged;
    for (std::size_t i : order) merged.merge(shards[i]);
    EXPECT_EQ(merged.count(), reference.count()) << "round " << round;
    EXPECT_DOUBLE_EQ(merged.min(), reference.min()) << "round " << round;
    EXPECT_DOUBLE_EQ(merged.max(), reference.max()) << "round " << round;
    EXPECT_DOUBLE_EQ(merged.sum(), reference.sum()) << "round " << round;
    EXPECT_EQ(merged.buckets(), reference.buckets()) << "round " << round;
    for (double q : {0.5, 0.95, 0.99}) {
      EXPECT_DOUBLE_EQ(merged.quantile(q), reference.quantile(q))
          << "round " << round << " q=" << q;
    }
  }
}

TEST(QuantileDigest, FromPartsRejectsMalformedInputs) {
  using Buckets = std::vector<std::pair<std::int32_t, std::int64_t>>;
  const Buckets one = {{100, 1}};
  EXPECT_NO_THROW(QuantileDigest::from_parts(1, 1.0, 1.0, one));
  // Count mismatch with the bucket total.
  EXPECT_THROW(QuantileDigest::from_parts(2, 1.0, 1.0, one),
               std::invalid_argument);
  // Non-positive bucket count.
  EXPECT_THROW(QuantileDigest::from_parts(0, 0.0, 0.0, Buckets{{5, 0}}),
               std::invalid_argument);
  // Duplicate bucket keys.
  EXPECT_THROW(
      QuantileDigest::from_parts(2, 1.0, 1.0, Buckets{{100, 1}, {100, 1}}),
      std::invalid_argument);
  // min > max.
  EXPECT_THROW(QuantileDigest::from_parts(1, 2.0, 1.0, one),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Timeline windows
// ---------------------------------------------------------------------------

Timeline make_timeline(SimTime window = kSecond, std::size_t max_windows = 16) {
  Timeline tl;
  tl.configure({window, max_windows});
  tl.set_enabled(true);
  return tl;
}

TEST(Timeline, CounterAddLandsInTheRightWindow) {
  Timeline tl = make_timeline();
  const auto id = tl.series("c", Timeline::SeriesKind::kCounter);
  tl.add(id, 0, 1.0);
  tl.add(id, kSecond - 1, 2.0);
  tl.add(id, kSecond, 4.0);
  tl.add(id, -5, 8.0);  // negative times clamp into window 0
  const Timeline::Series& s = tl.at(id);
  ASSERT_GE(s.windows.size(), 2u);
  EXPECT_DOUBLE_EQ(s.windows[0].sum, 11.0);
  EXPECT_DOUBLE_EQ(s.windows[1].sum, 4.0);
}

TEST(Timeline, AddSpanDistributesProportionally) {
  Timeline tl = make_timeline();
  const auto id = tl.series("busy", Timeline::SeriesKind::kCounter);
  // [0.5 s, 2.5 s) carrying 2.0: windows get 0.5, 1.0, 0.5.
  tl.add_span(id, kSecond / 2, 2 * kSecond + kSecond / 2, 2.0);
  const Timeline::Series& s = tl.at(id);
  ASSERT_GE(s.windows.size(), 3u);
  EXPECT_NEAR(s.windows[0].sum, 0.5, 1e-12);
  EXPECT_NEAR(s.windows[1].sum, 1.0, 1e-12);
  EXPECT_NEAR(s.windows[2].sum, 0.5, 1e-12);

  // A degenerate span lands wholly at t0.
  const auto id2 = tl.series("point", Timeline::SeriesKind::kCounter);
  tl.add_span(id2, kSecond, kSecond, 3.0);
  EXPECT_DOUBLE_EQ(tl.at(id2).windows[1].sum, 3.0);
}

TEST(Timeline, GaugeLastWriteWinsPerWindow) {
  Timeline tl = make_timeline();
  const auto id = tl.series("g", Timeline::SeriesKind::kGauge);
  tl.set_gauge(id, 10, 1.0);
  tl.set_gauge(id, 20, 2.0);  // same window: overwrites
  tl.set_gauge(id, kSecond + 1, 7.0);
  const Timeline::Series& s = tl.at(id);
  EXPECT_TRUE(s.windows[0].set);
  EXPECT_DOUBLE_EQ(s.windows[0].last, 2.0);
  EXPECT_DOUBLE_EQ(s.windows[1].last, 7.0);
}

TEST(Timeline, SeriesKindMismatchThrows) {
  Timeline tl = make_timeline();
  tl.series("x", Timeline::SeriesKind::kCounter);
  EXPECT_THROW(tl.series("x", Timeline::SeriesKind::kGauge),
               std::invalid_argument);
  // Same kind returns the same id.
  EXPECT_EQ(tl.series("x", Timeline::SeriesKind::kCounter),
            tl.series("x", Timeline::SeriesKind::kCounter));
}

TEST(Timeline, DisabledTimelineRecordsNothing) {
  Timeline tl = make_timeline();
  tl.set_enabled(false);
  const auto id = tl.series("c", Timeline::SeriesKind::kCounter);
  tl.add(id, 0, 5.0);
  tl.set_gauge(id, 0, 1.0);
  tl.event("log", 0, "ignored");
  EXPECT_TRUE(tl.at(id).windows.empty());
  EXPECT_TRUE(tl.events().empty());
}

TEST(Timeline, CoarseningPreservesTotalsAndDoublesWidth) {
  Timeline tl = make_timeline(kSecond, 4);
  const auto c = tl.series("c", Timeline::SeriesKind::kCounter);
  const auto g = tl.series("g", Timeline::SeriesKind::kGauge);
  const auto d = tl.series("d", Timeline::SeriesKind::kDigest);
  for (int i = 0; i < 4; ++i) {
    tl.add(c, i * kSecond, 1.0);
    tl.set_gauge(g, i * kSecond, static_cast<double>(i));
    tl.observe(d, i * kSecond, static_cast<double>(i + 1));
  }
  EXPECT_EQ(tl.window_width(), kSecond);

  // Window index 7 at width 1 s: one doubling (width 2 s) makes it fit.
  tl.add(c, 7 * kSecond, 10.0);
  EXPECT_EQ(tl.window_width(), 2 * kSecond);

  double total = 0.0;
  for (const Timeline::Window& w : tl.at(c).windows) total += w.sum;
  EXPECT_DOUBLE_EQ(total, 14.0);

  // Folded gauge pairs keep the later value; digests merge pairwise.
  EXPECT_DOUBLE_EQ(tl.at(g).windows[0].last, 1.0);
  EXPECT_DOUBLE_EQ(tl.at(g).windows[1].last, 3.0);
  EXPECT_EQ(tl.at(d).windows[0].count, 2);
  EXPECT_DOUBLE_EQ(tl.at(d).digests[0].max(), 2.0);
  EXPECT_DOUBLE_EQ(tl.at(d).digests[1].min(), 3.0);
}

TEST(Timeline, MergeAlignsWidthsAndEqualsCombinedRecording) {
  // b coarsens to 2 s; merging into a (1 s) must coarsen a first and give
  // the same windows as recording everything into one timeline.
  Timeline a = make_timeline(kSecond, 4);
  Timeline b = make_timeline(kSecond, 4);
  Timeline combined = make_timeline(kSecond, 4);
  const auto ida = a.series("c", Timeline::SeriesKind::kCounter);
  const auto idb = b.series("c", Timeline::SeriesKind::kCounter);
  const auto idc = combined.series("c", Timeline::SeriesKind::kCounter);

  a.add(ida, 0, 1.0);
  combined.add(idc, 0, 1.0);
  for (int i = 0; i < 8; i += 2) {
    b.add(idb, i * kSecond, 2.0);
    combined.add(idc, i * kSecond, 2.0);
  }
  ASSERT_EQ(b.window_width(), 2 * kSecond);

  a.merge(b);
  EXPECT_EQ(a.window_width(), combined.window_width());
  const Timeline::Series& ms = a.at(a.index().at("c"));
  const Timeline::Series& cs = combined.at(combined.index().at("c"));
  ASSERT_EQ(ms.windows.size(), cs.windows.size());
  for (std::size_t i = 0; i < ms.windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(ms.windows[i].sum, cs.windows[i].sum) << "window " << i;
  }
  EXPECT_EQ(a.to_jsonl(), combined.to_jsonl());
}

TEST(Timeline, EventLogKeepsOrderAndCountsDrops) {
  Timeline tl = make_timeline();
  const auto n = static_cast<int>(Timeline::kMaxEventsPerLog) + 10;
  for (int i = 0; i < n; ++i) {
    std::string text = "e";
    text += std::to_string(i);
    tl.event("log", i, text);
  }
  const Timeline::EventLog& log = tl.events().at("log");
  EXPECT_EQ(log.items.size(), Timeline::kMaxEventsPerLog);
  EXPECT_EQ(log.dropped, 10);
  EXPECT_EQ(log.items.front().second, "e0");
}

// ---------------------------------------------------------------------------
// JSONL export / import
// ---------------------------------------------------------------------------

Timeline populated_timeline() {
  Timeline tl = make_timeline(kSecond, 32);
  const auto c = tl.series("a.count", Timeline::SeriesKind::kCounter);
  const auto g = tl.series("a.gauge", Timeline::SeriesKind::kGauge);
  const auto d = tl.series("a.lat", Timeline::SeriesKind::kDigest);
  for (int i = 0; i < 10; ++i) {
    tl.add(c, i * kSecond, 1.5 * (i + 1));
    tl.set_gauge(g, i * kSecond, 0.1 * i);
    tl.observe(d, i * kSecond, 1.0 + i);
  }
  tl.digest("a.run").observe(42.0);
  tl.digest("a.run").observe(7.0);
  tl.event("a.events", kSecond, "first");
  tl.event("a.events", 2 * kSecond, "second");
  return tl;
}

TEST(TimelineIo, ExportImportExportIsByteStable) {
  const Timeline tl = populated_timeline();
  const std::string jsonl = tl.to_jsonl();
  EXPECT_EQ(jsonl, tl.to_jsonl());  // deterministic render

  Timeline loaded;
  const obs::TimelineLoadResult r = obs::load_timeline_jsonl(jsonl, loaded);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(loaded.to_jsonl(), jsonl);
}

TEST(TimelineIo, CrossFileMergeSumsCounters) {
  const Timeline tl = populated_timeline();
  const std::string jsonl = tl.to_jsonl();
  Timeline merged;
  ASSERT_TRUE(obs::load_timeline_jsonl(jsonl, merged).ok);
  ASSERT_TRUE(obs::load_timeline_jsonl(jsonl, merged).ok);  // file twice
  const Timeline::Series* s = merged.find("a.count");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->windows[0].sum, 3.0);  // 1.5 doubled
  EXPECT_EQ(merged.digests().at("a.run").count(), 4);
}

TEST(TimelineIo, ValidatorAcceptsExportAndRejectsMalformedLines) {
  const std::string good = populated_timeline().to_jsonl();
  EXPECT_TRUE(obs::validate_timeline_jsonl(good).ok)
      << "valid export rejected";

  const char* bad_inputs[] = {
      // No meta record.
      "{\"type\":\"series\",\"name\":\"x\",\"kind\":\"counter\","
      "\"windows\":[]}\n",
      // Unsupported version.
      "{\"type\":\"meta\",\"version\":2,\"window_ns\":1000,"
      "\"base_window_ns\":1000,\"max_windows\":4}\n",
      // window_ns not a multiple of base.
      "{\"type\":\"meta\",\"version\":1,\"window_ns\":1500,"
      "\"base_window_ns\":1000,\"max_windows\":4}\n",
      // Unknown record type.
      "{\"type\":\"meta\",\"version\":1,\"window_ns\":1000,"
      "\"base_window_ns\":1000,\"max_windows\":4}\n"
      "{\"type\":\"mystery\"}\n",
      // Truncated JSON.
      "{\"type\":\"meta\",\"version\":1,\"window_ns\":1000,"
      "\"base_window_ns\":1000,\"max_windows\":4}\n"
      "{\"type\":\"series\",\"name\":\"x\"\n",
  };
  for (const char* bad : bad_inputs) {
    const obs::TimelineLoadResult r = obs::validate_timeline_jsonl(bad);
    EXPECT_FALSE(r.ok) << bad;
    EXPECT_FALSE(r.error.empty()) << bad;
  }
}

TEST(TimelineIo, StrictLoaderRejectsMalformedNumbers) {
  const std::string meta =
      "{\"type\":\"meta\",\"version\":1,\"window_ns\":1000,"
      "\"base_window_ns\":1000,\"max_windows\":8}\n";
  const char* bad_windows[] = {
      "[[0,1e999]]",   // strtod coerces to +inf; a strict loader rejects
      "[[0,-1e999]]",  // ... and to -inf
      "[[0,nan]]",     // non-numeric literal
      "[[0,inf]]",
      "[[0,1.2.3]]",  // malformed token
      "[[0,12kb]]",   // trailing garbage after the number
  };
  for (const char* windows : bad_windows) {
    const std::string input =
        meta +
        "{\"type\":\"series\",\"name\":\"x\",\"kind\":\"counter\","
        "\"windows\":" +
        windows + "}\n";
    const obs::TimelineLoadResult validated =
        obs::validate_timeline_jsonl(input);
    EXPECT_FALSE(validated.ok) << windows;
    EXPECT_FALSE(validated.error.empty()) << windows;
    // The loader must agree with the validator, and a rejected line must
    // not leave partial state behind.
    Timeline into;
    EXPECT_FALSE(obs::load_timeline_jsonl(input, into).ok) << windows;
  }
}

TEST(TimelineIo, RejectsNonIncreasingWindowIndices) {
  const std::string input =
      "{\"type\":\"meta\",\"version\":1,\"window_ns\":1000,"
      "\"base_window_ns\":1000,\"max_windows\":8}\n"
      "{\"type\":\"series\",\"name\":\"x\",\"kind\":\"counter\","
      "\"windows\":[[3,1],[3,2]]}\n";
  const obs::TimelineLoadResult r = obs::validate_timeline_jsonl(input);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("strictly increasing"), std::string::npos)
      << r.error;
}

// ---------------------------------------------------------------------------
// Worker-count invariance through exp::sweep
// ---------------------------------------------------------------------------

trace::Trace timeline_test_trace() {
  trace::TraceSpec spec;
  spec.name = "timeline-test";
  spec.seed = 11;
  spec.duration = 10 * kMinute;
  spec.target_requests = 20000;
  return trace::SyntheticGenerator(spec).generate_trace();
}

TEST(TimelineSweep, PolicySweepJsonlIsWorkerCountInvariant) {
  const trace::Trace t = timeline_test_trace();
  const std::vector<SimTime> services = core::precompute_services(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));

  std::vector<exp::PolicySimScenario> scenarios;
  for (int th : {16, 64, 256, 1024}) {
    exp::PolicySimScenario s;
    s.label = "pol." + std::to_string(th);
    s.trace = &t;
    s.services = &services;
    s.policy.threshold = th * kMillisecond;
    scenarios.push_back(s);
  }

  std::vector<std::string> jsonls;
  for (int workers : {1, 4, 8}) {
    Timeline tl;
    tl.configure({kSecond, 128});
    tl.set_enabled(true);
    exp::SweepOptions options;
    options.workers = workers;
    options.timeline_into = &tl;
    exp::run_policy_scenarios(scenarios, options);
    jsonls.push_back(tl.to_jsonl());
  }
  EXPECT_GT(jsonls[0].size(), 100u) << "timeline export suspiciously empty";
  EXPECT_EQ(jsonls[1], jsonls[0]);
  EXPECT_EQ(jsonls[2], jsonls[0]);
}

TEST(TimelineSweep, EventDrivenSweepJsonlIsWorkerCountInvariant) {
  std::vector<exp::ScenarioConfig> configs;
  for (int i = 0; i < 3; ++i) {
    exp::ScenarioConfig cfg;
    cfg.label = "tl.s" + std::to_string(i);
    cfg.workload.kind = exp::WorkloadKind::kSequentialChunks;
    cfg.workload.seed = 100 + static_cast<std::uint64_t>(i);
    cfg.scrubber.kind = exp::ScrubberKind::kWaiting;
    cfg.scrubber.wait_threshold = (20 + 10 * i) * kMillisecond;
    cfg.run_for = 3 * kSecond;
    configs.push_back(cfg);
  }

  std::vector<std::string> jsonls;
  for (int workers : {1, 3}) {
    Timeline tl;
    tl.configure({kSecond / 4, 64});
    tl.set_enabled(true);
    exp::SweepOptions options;
    options.workers = workers;
    options.timeline_into = &tl;
    exp::run_scenarios(configs, options);
    jsonls.push_back(tl.to_jsonl());
  }
  EXPECT_EQ(jsonls[1], jsonls[0]);
  // The instrumented stack produced disk utilization and scrub progress.
  EXPECT_NE(jsonls[0].find("tl.s0.disk.util.foreground"), std::string::npos);
  EXPECT_NE(jsonls[0].find("tl.s0.scrub.progress.sectors"),
            std::string::npos);
}

TEST(TimelineSweep, DisabledDestinationRecordsNothing) {
  const trace::Trace t = timeline_test_trace();
  exp::PolicySimScenario s;
  s.label = "quiet";
  s.trace = &t;

  Timeline tl;  // configured but NOT enabled
  tl.configure({kSecond, 64});
  exp::SweepOptions options;
  options.timeline_into = &tl;
  exp::run_policy_scenarios({s}, options);
  EXPECT_EQ(tl.series_count(), 0u);
}

}  // namespace
}  // namespace pscrub
