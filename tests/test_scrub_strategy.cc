#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/scrub_strategy.h"

namespace pscrub::core {
namespace {

// Collects exactly one pass worth of extents (by cumulative coverage; the
// pass counter can tick inside the next() call that starts the following
// pass when trailing regions are short).
std::vector<ScrubExtent> one_pass(ScrubStrategy& s, std::int64_t total) {
  std::vector<ScrubExtent> extents;
  std::int64_t covered = 0;
  while (covered < total) {
    extents.push_back(s.next());
    covered += extents.back().sectors;
  }
  return extents;
}

void expect_full_coverage(const std::vector<ScrubExtent>& extents,
                          std::int64_t total_sectors) {
  std::vector<std::pair<disk::Lbn, std::int64_t>> spans;
  spans.reserve(extents.size());
  for (const auto& e : extents) {
    EXPECT_GT(e.sectors, 0);
    EXPECT_GE(e.lbn, 0);
    EXPECT_LE(e.lbn + e.sectors, total_sectors);
    spans.emplace_back(e.lbn, e.sectors);
  }
  std::sort(spans.begin(), spans.end());
  disk::Lbn expect_next = 0;
  for (const auto& [lbn, sectors] : spans) {
    EXPECT_EQ(lbn, expect_next) << "gap or overlap in coverage";
    expect_next = lbn + sectors;
  }
  EXPECT_EQ(expect_next, total_sectors);
}

TEST(Sequential, CoversDiskExactlyOnce) {
  SequentialStrategy s(10000, 128);
  expect_full_coverage(one_pass(s, 10000), 10000);
}

TEST(Sequential, ExtentsAreInIncreasingOrder) {
  SequentialStrategy s(10000, 128);
  const auto extents = one_pass(s, 10000);
  for (std::size_t i = 1; i < extents.size(); ++i) {
    EXPECT_GT(extents[i].lbn, extents[i - 1].lbn);
  }
}

TEST(Sequential, LastExtentShortWhenNotDivisible) {
  SequentialStrategy s(1000, 128);
  const auto extents = one_pass(s, 1000);
  ASSERT_EQ(extents.size(), 8u);  // 7 x 128 + 1 x 104
  EXPECT_EQ(extents.back().sectors, 1000 - 7 * 128);
}

TEST(Sequential, SecondPassRestartsFromZero) {
  SequentialStrategy s(1024, 128);
  one_pass(s, 1024);
  EXPECT_EQ(s.completed_passes(), 1);
  EXPECT_EQ(s.next().lbn, 0);
}

TEST(Sequential, ResetClearsProgress) {
  SequentialStrategy s(1024, 128);
  s.next();
  s.reset();
  EXPECT_EQ(s.next().lbn, 0);
  EXPECT_EQ(s.completed_passes(), 0);
}

TEST(Staggered, CoversDiskExactlyOnce) {
  StaggeredStrategy s(16384, 128, 8);
  expect_full_coverage(one_pass(s, 16384), 16384);
}

TEST(Staggered, CoversDiskWithRemainders) {
  // total not divisible by regions, region not divisible by request.
  StaggeredStrategy s(10007, 96, 7);
  expect_full_coverage(one_pass(s, 10007), 10007);
}

TEST(Staggered, FirstRoundProbesEveryRegion) {
  StaggeredStrategy s(16384, 128, 8);
  const std::int64_t region = 16384 / 8;
  for (int r = 0; r < 8; ++r) {
    const ScrubExtent e = s.next();
    EXPECT_EQ(e.lbn, r * region) << "round 0 must touch region " << r;
  }
  // Round 1 returns to region 0 at the next segment.
  EXPECT_EQ(s.next().lbn, 128);
}

TEST(Staggered, OneRegionDegeneratesToSequential) {
  StaggeredStrategy stag(8192, 128, 1);
  SequentialStrategy seq(8192, 128);
  for (int i = 0; i < 64; ++i) {
    const ScrubExtent a = stag.next();
    const ScrubExtent b = seq.next();
    EXPECT_EQ(a.lbn, b.lbn);
    EXPECT_EQ(a.sectors, b.sectors);
  }
}

TEST(Staggered, JumpDistanceIsRegionSized) {
  StaggeredStrategy s(1 << 20, 128, 16);
  const ScrubExtent a = s.next();
  const ScrubExtent b = s.next();
  EXPECT_EQ(b.lbn - a.lbn, (1 << 20) / 16);
}

TEST(Staggered, SetRequestSectorsTakesEffect) {
  StaggeredStrategy s(1 << 20, 128, 4);
  s.set_request_sectors(256);
  EXPECT_EQ(s.next().sectors, 256);
}

// ---------------------------------------------------------------------------
// cursor()/restore(): the serialization seam daemon checkpoints ride on.

template <typename Strategy, typename Make>
void expect_cursor_round_trip(Make make) {
  Strategy original = make();
  // Walk into the middle of the second pass so the snapshot carries a
  // nontrivial (position, passes) pair.
  for (int i = 0; i < 130; ++i) original.next();
  const ScrubCursor cursor = original.cursor();

  Strategy restored = make();
  restored.restore(cursor);
  EXPECT_EQ(restored.completed_passes(), original.completed_passes());
  // The restored strategy must emit the exact sequence the original
  // would have from here -- across a pass boundary.
  for (int i = 0; i < 200; ++i) {
    const ScrubExtent want = original.next();
    const ScrubExtent got = restored.next();
    EXPECT_EQ(got.lbn, want.lbn) << "step " << i;
    EXPECT_EQ(got.sectors, want.sectors) << "step " << i;
  }
  EXPECT_EQ(restored.completed_passes(), original.completed_passes());
}

TEST(Cursor, SequentialRoundTripsMidPass) {
  expect_cursor_round_trip<SequentialStrategy>(
      [] { return SequentialStrategy(10000, 128); });
}

TEST(Cursor, StaggeredRoundTripsMidPass) {
  expect_cursor_round_trip<StaggeredStrategy>(
      [] { return StaggeredStrategy(10000, 128, 8); });
}

TEST(Cursor, FreshCursorIsZero) {
  SequentialStrategy s(10000, 128);
  const ScrubCursor c = s.cursor();
  EXPECT_EQ(c.a, 0);
  EXPECT_EQ(c.b, 0);
  EXPECT_EQ(c.passes, 0);
}

TEST(Cursor, RestoreRejectsOutOfRangeCoordinates) {
  SequentialStrategy seq(10000, 128);
  ScrubCursor bad;
  bad.a = 10001;  // beyond the disk: a checkpoint from another geometry
  EXPECT_THROW(seq.restore(bad), std::invalid_argument);
  bad.a = -1;
  EXPECT_THROW(seq.restore(bad), std::invalid_argument);
  bad.a = 0;
  bad.passes = -1;
  EXPECT_THROW(seq.restore(bad), std::invalid_argument);

  StaggeredStrategy st(10000, 128, 8);
  ScrubCursor sbad;
  sbad.a = 8;  // region index out of range
  EXPECT_THROW(st.restore(sbad), std::invalid_argument);
}

TEST(Factories, HonorByteSizes) {
  auto seq = make_sequential(1 << 20, 64 * 1024);
  EXPECT_EQ(seq->request_sectors(), 128);
  auto stag = make_staggered(1 << 20, 128 * 1024, 8);
  EXPECT_EQ(stag->request_sectors(), 256);
  EXPECT_STREQ(stag->name(), "staggered");
}

// Property sweep: coverage holds across request sizes and region counts.
class StaggeredParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StaggeredParamTest, AlwaysCoversExactly) {
  const auto [regions, request] = GetParam();
  const std::int64_t total = 262144 + 321;  // awkward size on purpose
  StaggeredStrategy s(total, request, regions);
  expect_full_coverage(one_pass(s, total), total);
  // And again on the second pass (state fully wraps).
  expect_full_coverage(one_pass(s, total), total);
}

INSTANTIATE_TEST_SUITE_P(
    RegionsAndSizes, StaggeredParamTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 64, 128),
                       ::testing::Values(64, 128, 1024)));

class SequentialParamTest : public ::testing::TestWithParam<int> {};

TEST_P(SequentialParamTest, AlwaysCoversExactly) {
  const std::int64_t total = 99991;  // prime
  SequentialStrategy s(total, GetParam());
  expect_full_coverage(one_pass(s, total), total);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SequentialParamTest,
                         ::testing::Values(1, 7, 128, 4096));

}  // namespace
}  // namespace pscrub::core
