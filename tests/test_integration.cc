// Full-stack integration tests: disk + block layer + scheduler + workload
// + scrubber running together, checking the paper's headline qualitative
// results end to end.
#include <gtest/gtest.h>

#include <memory>

#include "pscrub.h"

namespace pscrub {
namespace {

disk::DiskProfile profile() {
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  p.capacity_bytes = 4LL << 30;
  return p;
}

struct Rig {
  Simulator sim;
  disk::DiskModel disk;
  block::BlockLayer blk;

  explicit Rig(std::unique_ptr<block::IoScheduler> sched =
                   std::make_unique<block::CfqScheduler>())
      : disk(sim, profile(), 1), blk(sim, disk, std::move(sched)) {}
};

constexpr SimTime kRun = 30 * kSecond;

double run_workload_alone(std::uint64_t seed) {
  Rig r;
  workload::SyntheticConfig cfg;
  workload::SequentialChunkWorkload w(r.sim, r.blk, cfg, seed);
  w.start();
  r.sim.run_until(kRun);
  return w.metrics().throughput_mb_s(kRun);
}

struct Combined {
  double workload_mb_s;
  double scrub_mb_s;
};

Combined run_with_scrubber(core::ScrubberConfig scfg, std::uint64_t seed) {
  Rig r;
  workload::SyntheticConfig cfg;
  workload::SequentialChunkWorkload w(r.sim, r.blk, cfg, seed);
  core::Scrubber s(r.sim, r.blk,
                   core::make_sequential(r.disk.total_sectors(), 64 * 1024),
                   scfg);
  w.start();
  s.start();
  r.sim.run_until(kRun);
  return {w.metrics().throughput_mb_s(kRun),
          s.stats().throughput_mb_s(kRun)};
}

TEST(Integration, WorkloadAloneLandsNearPaperRate) {
  // Fig 3/6 "None": ~12 MB/s for the sequential chunk workload.
  const double mb_s = run_workload_alone(42);
  EXPECT_GT(mb_s, 8.0);
  EXPECT_LT(mb_s, 20.0);
}

TEST(Integration, DefaultPriorityBackToBackStarvesWorkload) {
  // Fig 3 "Default (K)": kernel scrubber at the workload's priority,
  // firing back-to-back, starves the foreground.
  core::ScrubberConfig scfg;
  scfg.priority = block::IoPriority::kBestEffort;
  const Combined c = run_with_scrubber(scfg, 42);
  const double alone = run_workload_alone(42);
  EXPECT_LT(c.workload_mb_s, alone * 0.6);
  EXPECT_GT(c.scrub_mb_s, 8.0) << "scrubber hogs the disk";
}

TEST(Integration, IdlePriorityProtectsWorkload) {
  // Fig 3 "Idle (K)": CFQ's Idle class keeps the foreground close to its
  // isolated throughput while the scrubber still progresses.
  core::ScrubberConfig scfg;
  scfg.priority = block::IoPriority::kIdle;
  const Combined c = run_with_scrubber(scfg, 42);
  const double alone = run_workload_alone(42);
  EXPECT_GT(c.workload_mb_s, alone * 0.7);
  EXPECT_GT(c.scrub_mb_s, 0.5);
}

TEST(Integration, UserLevelScrubberIgnoresPriorities) {
  // Fig 3 "Idle (U)" vs "Default (U)": identical behaviour.
  core::ScrubberConfig idle_cfg;
  idle_cfg.path = core::IssuePath::kUser;
  idle_cfg.priority = block::IoPriority::kIdle;
  core::ScrubberConfig def_cfg;
  def_cfg.path = core::IssuePath::kUser;
  def_cfg.priority = block::IoPriority::kBestEffort;
  const Combined a = run_with_scrubber(idle_cfg, 42);
  const Combined b = run_with_scrubber(def_cfg, 42);
  EXPECT_NEAR(a.scrub_mb_s, b.scrub_mb_s, 0.5);
  EXPECT_NEAR(a.workload_mb_s, b.workload_mb_s, 1.0);
}

TEST(Integration, SixteenMsDelayRestoresWorkload) {
  // Fig 3 "Def. 16ms": delayed scrub requests cap scrubbing at
  // ~64KB/16ms ~ 3.9 MB/s and return the workload to its solo rate.
  core::ScrubberConfig scfg;
  scfg.priority = block::IoPriority::kBestEffort;
  scfg.inter_request_delay = 16 * kMillisecond;
  const Combined c = run_with_scrubber(scfg, 42);
  const double alone = run_workload_alone(42);
  // Each interleaved verify also costs the workload a lost rotation, so
  // recovery at 16 ms is partial (full recovery needs ~64 ms delays).
  EXPECT_GT(c.workload_mb_s, alone * 0.6);
  EXPECT_LT(c.scrub_mb_s, 4.2);
}

TEST(Integration, WaitingScrubberUtilizesThinkTime) {
  Rig r(std::make_unique<block::NoopScheduler>());
  workload::SyntheticConfig cfg;
  workload::SequentialChunkWorkload w(r.sim, r.blk, cfg, 42);
  core::WaitingScrubber s(
      r.sim, r.blk, core::make_sequential(r.disk.total_sectors(), 512 * 1024),
      20 * kMillisecond);
  w.start();
  s.start();
  r.sim.run_until(kRun);
  EXPECT_GT(s.stats().throughput_mb_s(kRun), 2.0);
  // Foreground impact stays modest: it only ever waits for one in-flight
  // verify.
  EXPECT_GT(w.metrics().throughput_mb_s(kRun), 8.0);
}

TEST(Integration, StaggeredAndSequentialComparableAt128Regions) {
  // Fig 6's secondary observation: no perceivable difference between the
  // two strategies for sufficiently many regions.
  auto run = [](bool staggered) {
    Rig r;
    core::ScrubberConfig scfg;
    scfg.priority = block::IoPriority::kBestEffort;
    auto strategy =
        staggered
            ? core::make_staggered(r.disk.total_sectors(), 64 * 1024, 128)
            : core::make_sequential(r.disk.total_sectors(), 64 * 1024);
    core::Scrubber s(r.sim, r.blk, std::move(strategy), scfg);
    s.start();
    r.sim.run_until(kRun);
    return s.stats().throughput_mb_s(kRun);
  };
  const double seq = run(false);
  const double stag = run(true);
  EXPECT_GT(stag, seq * 0.8);
  EXPECT_LT(stag, seq * 1.8);
}

TEST(Integration, TraceReplayWithCfqIdleScrubber) {
  // A miniature Fig 7: replay a small synthetic trace against a CFQ-Idle
  // scrubber; response times must stochastically dominate the baseline.
  trace::TraceSpec spec;
  spec.name = "mini";
  spec.seed = 3;
  spec.duration = 20 * kSecond;
  spec.target_requests = 2'000;
  spec.period = 0;
  spec.burst_len_mean = 4.0;
  const trace::Trace t = trace::SyntheticGenerator(spec).generate_trace();

  auto replay = [&](bool with_scrubber) {
    Rig r;
    workload::TraceReplayWorkload w(r.sim, r.blk, t);
    w.metrics().keep_samples = true;
    std::unique_ptr<core::Scrubber> s;
    if (with_scrubber) {
      core::ScrubberConfig scfg;
      scfg.priority = block::IoPriority::kIdle;
      s = std::make_unique<core::Scrubber>(
          r.sim, r.blk,
          core::make_sequential(r.disk.total_sectors(), 64 * 1024), scfg);
      s->start();
    }
    w.start();
    r.sim.run_until(spec.duration + 10 * kSecond);
    return w.metrics();
  };

  const auto base = replay(false);
  const auto scrubbed = replay(true);
  ASSERT_EQ(base.requests, scrubbed.requests);
  // CFQ Idle protects the replayed foreground: total response time stays
  // within a few percent of the baseline. Not one-sided -- the scrub walk
  // moves the head between foreground bursts, which can shorten the odd
  // seek, so the scrubbed run may land slightly below the baseline.
  EXPECT_GT(static_cast<double>(scrubbed.latency_sum()),
            static_cast<double>(base.latency_sum()) * 0.9);
  EXPECT_LT(static_cast<double>(scrubbed.latency_sum()),
            static_cast<double>(base.latency_sum()) * 1.1);
}

TEST(Integration, AtaVsScsiScrubPrimitives) {
  // An ATA-verify scrubber on a cache-enabled SATA drive "scrubs" at
  // implausible speed because it never touches the medium -- the Fig 1
  // trap our framework exposes.
  auto run = [](disk::CommandKind kind) {
    Simulator sim;
    disk::DiskProfile p = disk::wd_caviar();
    p.capacity_bytes = 4LL << 30;
    disk::DiskModel d(sim, p, 1);
    block::BlockLayer blk(sim, d, std::make_unique<block::NoopScheduler>());
    core::ScrubberConfig scfg;
    scfg.verify_kind = kind;
    core::Scrubber s(sim, blk, core::make_sequential(d.total_sectors(), 64 * 1024),
                     scfg);
    s.start();
    sim.run_until(10 * kSecond);
    return s.stats().throughput_mb_s(10 * kSecond);
  };
  const double ata = run(disk::CommandKind::kVerifyAta);
  const double scsi = run(disk::CommandKind::kVerifyScsi);
  EXPECT_GT(ata, 10.0 * scsi);
}

}  // namespace
}  // namespace pscrub
