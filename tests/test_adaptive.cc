#include <gtest/gtest.h>

#include <memory>

#include "block/noop_scheduler.h"
#include "core/adaptive.h"
#include "core/cost_model.h"
#include "disk/profile.h"
#include "workload/synthetic_workload.h"

namespace pscrub::core {
namespace {

disk::DiskProfile profile() {
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  p.capacity_bytes = 4LL << 30;
  return p;
}

struct Rig {
  Simulator sim;
  disk::DiskModel disk;
  block::BlockLayer blk;
  WaitingScrubber scrubber;

  Rig()
      : disk(sim, profile(), 1),
        blk(sim, disk, std::make_unique<block::NoopScheduler>()),
        scrubber(sim, blk, make_sequential(disk.total_sectors(), 64 * 1024),
                 100 * kMillisecond) {}

  AdaptiveScrubDaemon make_daemon(AdaptiveConfig cfg) {
    const disk::DiskProfile p = profile();
    return AdaptiveScrubDaemon(sim, blk, scrubber,
                               make_foreground_service(p),
                               make_scrub_service(p), cfg);
  }
};

AdaptiveConfig quick_config() {
  AdaptiveConfig cfg;
  cfg.goal.mean = 2 * kMillisecond;
  cfg.retune_every = 5 * kSecond;
  cfg.min_requests = 200;
  cfg.window_requests = 5'000;
  cfg.binary_search_iters = 6;
  return cfg;
}

TEST(Adaptive, NoRetuneWithoutHistory) {
  Rig r;
  AdaptiveScrubDaemon daemon = r.make_daemon(quick_config());
  daemon.start();
  EXPECT_FALSE(daemon.retune());
  EXPECT_EQ(daemon.stats().retunes, 0);
}

TEST(Adaptive, RetunesOnObservedWorkload) {
  Rig r;
  workload::SyntheticConfig wcfg;
  wcfg.think_mean = 20 * kMillisecond;
  wcfg.chunk_bytes = 1 << 20;
  workload::SequentialChunkWorkload fg(r.sim, r.blk, wcfg, 7);
  fg.start();
  r.scrubber.start();

  AdaptiveScrubDaemon daemon = r.make_daemon(quick_config());
  daemon.start();
  r.sim.run_until(30 * kSecond);

  EXPECT_GE(daemon.stats().retunes, 1);
  const SizeThresholdChoice& c = daemon.stats().last_choice;
  EXPECT_GT(c.request_bytes, 0);
  EXPECT_GT(c.scrub_mb_s, 0.0);
  // The daemon actually applied the tuning to the live scrubber.
  EXPECT_EQ(r.scrubber.wait_threshold(), c.threshold);
}

TEST(Adaptive, AppliedParametersChangeScrubBehaviour) {
  // A hand-driven retune that relaxes the threshold must speed up the
  // scrubber relative to the initial conservative setting.
  Rig r;
  workload::SyntheticConfig wcfg;
  workload::SequentialChunkWorkload fg(r.sim, r.blk, wcfg, 7);
  fg.start();
  r.scrubber.start();
  r.sim.run_until(10 * kSecond);
  const std::int64_t slow_bytes = r.scrubber.stats().bytes;

  r.scrubber.set_wait_threshold(10 * kMillisecond);
  r.scrubber.set_request_bytes(1 << 20);
  r.sim.run_until(20 * kSecond);
  const std::int64_t fast_bytes = r.scrubber.stats().bytes - slow_bytes;
  EXPECT_GT(fast_bytes, slow_bytes);
}

TEST(Adaptive, StopCancelsTimerAndObserver) {
  Rig r;
  AdaptiveScrubDaemon daemon = r.make_daemon(quick_config());
  daemon.start();
  daemon.stop();
  workload::SyntheticConfig wcfg;
  workload::SequentialChunkWorkload fg(r.sim, r.blk, wcfg, 7);
  fg.start();
  r.sim.run_until(20 * kSecond);
  EXPECT_EQ(daemon.stats().retunes, 0);
}

TEST(Adaptive, WindowIsBounded) {
  Rig r;
  AdaptiveConfig cfg = quick_config();
  cfg.window_requests = 1'000;
  cfg.retune_every = kHour;  // never fires in this test
  AdaptiveScrubDaemon daemon = r.make_daemon(cfg);
  daemon.start();
  workload::SyntheticConfig wcfg;
  wcfg.think_mean = kMillisecond;
  workload::RandomReadWorkload fg(r.sim, r.blk, wcfg, 7);
  fg.start();
  r.sim.run_until(60 * kSecond);
  // ~4600 requests observed; the daemon must still retune from its
  // bounded window without unbounded growth.
  EXPECT_TRUE(daemon.retune());
}

}  // namespace
}  // namespace pscrub::core
