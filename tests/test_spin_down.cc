#include <gtest/gtest.h>

#include <memory>

#include "block/noop_scheduler.h"
#include "core/spin_down.h"
#include "disk/profile.h"

namespace pscrub::core {
namespace {

disk::DiskProfile profile() {
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  p.capacity_bytes = 1LL << 30;
  return p;
}

struct Rig {
  Simulator sim;
  disk::DiskModel disk;
  block::BlockLayer blk;

  Rig()
      : disk(sim, profile(), 1),
        blk(sim, disk, std::make_unique<block::NoopScheduler>()) {}

  SimTime read(disk::Lbn lbn) {
    SimTime latency = -1;
    block::BlockRequest r;
    r.cmd.kind = disk::CommandKind::kRead;
    r.cmd.lbn = lbn;
    r.cmd.sectors = 128;
    r.on_complete = [&](const block::BlockRequest&, SimTime l) {
      latency = l;
    };
    blk.submit(std::move(r));
    sim.run();
    return latency;
  }
};

TEST(PowerModel, StartsIdleAndAccruesIdleEnergy) {
  Rig r;
  EXPECT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kIdle);
  r.sim.run_until(10 * kSecond);
  EXPECT_NEAR(r.disk.energy_joules(), 10.0 * profile().idle_watts, 1.0);
}

TEST(PowerModel, ActiveCostsMoreThanIdle) {
  Rig busy_rig;
  // Keep the disk continuously busy for ~10 s.
  for (int i = 0; i < 2000; ++i) {
    disk::Lbn lbn = (i * 100003) % (busy_rig.disk.total_sectors() - 128);
    block::BlockRequest req;
    req.cmd.kind = disk::CommandKind::kRead;
    req.cmd.lbn = lbn;
    req.cmd.sectors = 128;
    busy_rig.blk.submit(std::move(req));
  }
  busy_rig.sim.run_until(10 * kSecond);
  Rig idle_rig;
  idle_rig.sim.run_until(10 * kSecond);
  EXPECT_GT(busy_rig.disk.energy_joules(),
            idle_rig.disk.energy_joules() * 1.3);
}

TEST(PowerModel, SpinDownSavesEnergy) {
  Rig r;
  ASSERT_TRUE(r.disk.spin_down());
  EXPECT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kStandby);
  r.sim.run_until(100 * kSecond);
  EXPECT_NEAR(r.disk.energy_joules(), 100.0 * profile().standby_watts, 2.0);
}

TEST(PowerModel, SpinDownWhileBusyRefused) {
  Rig r;
  block::BlockRequest req;
  req.cmd.kind = disk::CommandKind::kRead;
  req.cmd.lbn = 0;
  req.cmd.sectors = 128;
  r.blk.submit(std::move(req));
  EXPECT_FALSE(r.disk.spin_down());
  r.sim.run();
  EXPECT_TRUE(r.disk.spin_down());
  EXPECT_FALSE(r.disk.spin_down()) << "already in standby";
}

TEST(PowerModel, CommandInStandbyPaysSpinup) {
  Rig r;
  const SimTime normal = r.read(0);
  r.disk.spin_down();
  const SimTime woken = r.read(100000);
  EXPECT_GE(woken, normal + profile().spinup_time - kMillisecond);
  EXPECT_EQ(r.disk.spinups(), 1);
  EXPECT_GE(r.disk.spinup_wait(), profile().spinup_time);
  EXPECT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kIdle);
}

TEST(PowerModel, SpinupSurgeEnergyAccrued) {
  Rig r;
  r.disk.spin_down();
  r.sim.run_until(10 * kSecond);
  const double before = r.disk.energy_joules();
  r.read(0);
  const double after = r.disk.energy_joules();
  // The wake-up read includes ~8 s at 24 W: >> a normal read's energy.
  EXPECT_GT(after - before, 8.0 * profile().spinup_watts * 0.9);
}

TEST(SpinDownDaemon, SpinsDownAfterThreshold) {
  Rig r;
  SpinDownDaemon daemon(r.sim, r.blk, 5 * kSecond);
  daemon.start();
  r.sim.run_until(4 * kSecond);
  EXPECT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kIdle);
  r.sim.run_until(6 * kSecond);
  EXPECT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kStandby);
  EXPECT_EQ(daemon.stats().spin_downs, 1);
}

TEST(SpinDownDaemon, ReArmsAfterActivity) {
  Rig r;
  SpinDownDaemon daemon(r.sim, r.blk, 2 * kSecond);
  daemon.start();
  r.sim.run_until(3 * kSecond);
  ASSERT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kStandby);
  r.read(0);  // wakes the disk
  EXPECT_EQ(r.disk.spinups(), 1);
  r.sim.run_until(r.sim.now() + 3 * kSecond);
  EXPECT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kStandby);
  EXPECT_EQ(daemon.stats().spin_downs, 2);
}

TEST(SpinDownDaemon, StopPreventsSpinDown) {
  Rig r;
  SpinDownDaemon daemon(r.sim, r.blk, kSecond);
  daemon.start();
  daemon.stop();
  r.sim.run_until(10 * kSecond);
  EXPECT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kIdle);
}

TEST(SpinDownDaemon, ArrivalWithinThresholdCancelsSpinDown) {
  Rig r;
  SpinDownDaemon daemon(r.sim, r.blk, 5 * kSecond);
  daemon.start();
  r.sim.after(3 * kSecond, [&] {
    block::BlockRequest req;
    req.cmd.kind = disk::CommandKind::kRead;
    req.cmd.lbn = 0;
    req.cmd.sectors = 128;
    r.blk.submit(std::move(req));
  });
  r.sim.run_until(5 * kSecond + 500 * kMillisecond);
  // The timer fired at 5 s but the system had been busy at 3 s; it must
  // not spin down until a fresh 5 s of idleness accumulates.
  EXPECT_EQ(r.disk.spinups(), 0);
  EXPECT_EQ(r.disk.power_state(), disk::DiskModel::PowerState::kIdle);
}

}  // namespace
}  // namespace pscrub::core
