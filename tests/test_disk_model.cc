#include <gtest/gtest.h>

#include <vector>

#include "disk/disk_model.h"
#include "disk/profile.h"
#include "sim/simulator.h"

namespace pscrub::disk {
namespace {

// A small, fast profile for unit tests: 1 GB, 15k RPM.
DiskProfile test_profile() {
  DiskProfile p = hitachi_ultrastar_15k450();
  p.name = "test-disk";
  p.capacity_bytes = 1LL << 30;
  return p;
}

SimTime run_one(Simulator& sim, DiskModel& disk, const DiskCommand& cmd) {
  SimTime latency = -1;
  disk.submit(cmd, [&](const DiskCommand&, SimTime l) { latency = l; });
  sim.run();
  return latency;
}

TEST(DiskModel, ReadCompletesWithPositiveLatency) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  const SimTime lat = run_one(sim, disk, {CommandKind::kRead, 0, 128});
  EXPECT_GT(lat, 0);
  EXPECT_LT(lat, 50 * kMillisecond);
  EXPECT_EQ(disk.counters().reads, 1);
}

TEST(DiskModel, BusyWhileServing) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  disk.submit({CommandKind::kRead, 0, 128}, nullptr);
  EXPECT_TRUE(disk.busy());
  EXPECT_GT(disk.busy_until(), sim.now());
  sim.run();
  EXPECT_FALSE(disk.busy());
}

TEST(DiskModel, QueuedCommandsServeFifo) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  std::vector<int> order;
  disk.submit({CommandKind::kRead, 0, 8},
              [&](const DiskCommand&, SimTime) { order.push_back(1); });
  disk.submit({CommandKind::kRead, 100000, 8},
              [&](const DiskCommand&, SimTime) { order.push_back(2); });
  disk.submit({CommandKind::kRead, 5000, 8},
              [&](const DiskCommand&, SimTime) { order.push_back(3); });
  EXPECT_EQ(disk.queued(), 2u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(DiskModel, SequentialReadHitsCacheWithPrefetch) {
  Simulator sim;
  DiskProfile p = test_profile();
  p.prefetch_bytes = 1 << 20;  // 1 MB read-ahead
  DiskModel disk(sim, p, 1);
  const SimTime first = run_one(sim, disk, {CommandKind::kRead, 0, 128});
  const SimTime second = run_one(sim, disk, {CommandKind::kRead, 128, 128});
  EXPECT_EQ(disk.counters().cache_hits, 1);
  EXPECT_LT(second, first / 2) << "prefetched read should be electronic";
}

TEST(DiskModel, NoPrefetchMeansNoHit) {
  Simulator sim;
  DiskProfile p = test_profile();
  p.prefetch_bytes = 0;
  DiskModel disk(sim, p, 1);
  run_one(sim, disk, {CommandKind::kRead, 0, 128});
  run_one(sim, disk, {CommandKind::kRead, 128, 128});
  EXPECT_EQ(disk.counters().cache_hits, 0);
}

TEST(DiskModel, RereadSameRangeHitsCache) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  run_one(sim, disk, {CommandKind::kRead, 0, 128});
  run_one(sim, disk, {CommandKind::kRead, 0, 128});
  EXPECT_EQ(disk.counters().cache_hits, 1);
}

TEST(DiskModel, ScsiVerifyNeverTouchesCache) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  // Populate cache via a read, then verify the same range: must be a media
  // access, and must not refresh/insert cache contents.
  run_one(sim, disk, {CommandKind::kRead, 0, 128});
  const std::int64_t media_before = disk.counters().media_accesses;
  run_one(sim, disk, {CommandKind::kVerifyScsi, 0, 128});
  EXPECT_EQ(disk.counters().media_accesses, media_before + 1);
  EXPECT_EQ(disk.counters().verified_bytes, 128 * kSectorBytes);
}

TEST(DiskModel, AtaVerifyServedFromCacheWhenEnabled) {
  // The Fig 1 pathology: with the on-disk cache enabled, ATA VERIFY is
  // answered by the electronics in well under a millisecond.
  Simulator sim;
  DiskProfile p = wd_caviar();
  p.capacity_bytes = 1LL << 30;
  DiskModel disk(sim, p, 1);
  const SimTime lat = run_one(sim, disk, {CommandKind::kVerifyAta, 0, 128});
  EXPECT_LT(lat, 1 * kMillisecond);
  EXPECT_EQ(disk.counters().media_accesses, 0);
}

TEST(DiskModel, AtaVerifyMediaBoundWhenCacheDisabled) {
  Simulator sim;
  DiskProfile p = wd_caviar();
  p.capacity_bytes = 1LL << 30;
  p.cache_enabled = false;
  DiskModel disk(sim, p, 1);
  const SimTime lat = run_one(sim, disk, {CommandKind::kVerifyAta, 0, 128});
  // 7200 RPM: a media-bound verify includes a rotational wait.
  EXPECT_GT(lat, 1 * kMillisecond);
  EXPECT_EQ(disk.counters().media_accesses, 1);
}

TEST(DiskModel, SasVerifyUnaffectedByCacheToggle) {
  // Fig 1's control: SCSI VERIFY behaves identically cache on/off.
  Simulator sim_a;
  Simulator sim_b;
  DiskProfile p = test_profile();
  DiskModel on(sim_a, p, 1);
  p.cache_enabled = false;
  DiskModel off(sim_b, p, 1);
  const SimTime lat_on = run_one(sim_a, on, {CommandKind::kVerifyScsi, 0, 128});
  const SimTime lat_off =
      run_one(sim_b, off, {CommandKind::kVerifyScsi, 0, 128});
  EXPECT_EQ(lat_on, lat_off);
}

TEST(DiskModel, BackToBackSequentialVerifyPaysRotation) {
  // Sec IV-A's mechanism: after a sequential VERIFY completes, the next
  // one just-misses its sector and waits ~a full revolution.
  Simulator sim;
  DiskProfile p = test_profile();
  DiskModel disk(sim, p, 1);
  const SimTime rot = p.rotation_period();
  run_one(sim, disk, {CommandKind::kVerifyScsi, 0, 128});
  const SimTime second =
      run_one(sim, disk, {CommandKind::kVerifyScsi, 128, 128});
  EXPECT_GT(second, rot / 2) << "should include a large rotational wait";
}

TEST(DiskModel, FarSeekCostsMoreThanNearSeek) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  run_one(sim, disk, {CommandKind::kRead, 0, 8});
  const SimTime near = run_one(sim, disk, {CommandKind::kRead, 4096, 8});
  run_one(sim, disk, {CommandKind::kRead, 0, 8});
  const SimTime far = run_one(
      sim, disk, {CommandKind::kRead, disk.total_sectors() - 64, 8});
  // Rotational position adds noise; compare against a comfortable margin.
  EXPECT_GT(far + 2 * kMillisecond, near);
}

TEST(DiskModel, LargeTransferScalesWithSize) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  const SimTime small =
      run_one(sim, disk, {CommandKind::kVerifyScsi, 0, 128});           // 64K
  const SimTime large =
      run_one(sim, disk, {CommandKind::kVerifyScsi, 1 << 16, 32768});  // 16M
  EXPECT_GT(large, small + 10 * kMillisecond);
}

TEST(DiskModel, BusyTimeAccumulates) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  run_one(sim, disk, {CommandKind::kRead, 0, 128});
  run_one(sim, disk, {CommandKind::kRead, 100000, 128});
  EXPECT_GT(disk.counters().busy_time, 0);
  EXPECT_LE(disk.counters().busy_time, sim.now());
}

TEST(DiskModel, SetCacheEnabledFlushes) {
  Simulator sim;
  DiskModel disk(sim, test_profile(), 1);
  run_one(sim, disk, {CommandKind::kRead, 0, 128});
  disk.set_cache_enabled(false);
  disk.set_cache_enabled(true);
  run_one(sim, disk, {CommandKind::kRead, 0, 128});
  EXPECT_EQ(disk.counters().cache_hits, 0);
}

// ---- Analytic estimates vs the event-driven model ----

TEST(DiskProfileEstimates, SequentialVerifyAgreesWithEventModel) {
  Simulator sim;
  DiskProfile p = test_profile();
  DiskModel disk(sim, p, 1);
  // Average many back-to-back sequential verifies.
  constexpr int kN = 200;
  SimTime total = 0;
  Lbn lbn = 0;
  for (int i = 0; i < kN; ++i) {
    total += run_one(sim, disk, {CommandKind::kVerifyScsi, lbn, 128});
    lbn += 128;
  }
  const double measured_ms = to_milliseconds(total) / kN;
  const double estimate_ms =
      to_milliseconds(p.sequential_verify_service(64 * 1024));
  EXPECT_NEAR(measured_ms, estimate_ms, estimate_ms * 0.25);
}

TEST(DiskProfileEstimates, MediaRateBoundsThroughput) {
  const DiskProfile p = hitachi_ultrastar_15k450();
  // 16 MB requests should stream near (but below) the raw media rate.
  const double mb = 16.0;
  const double service_s =
      to_seconds(p.sequential_verify_service(16 * 1024 * 1024));
  const double throughput = mb / service_s;
  EXPECT_LT(throughput, p.media_rate_mb_s());
  EXPECT_GT(throughput, p.media_rate_mb_s() * 0.5);
}

TEST(DiskProfileEstimates, StaggeredBeatsSequentialWithManyRegions) {
  // The Fig 5b crossover: with >= 128 regions the staggered service time
  // drops below the sequential one (full rotation beats short seek + half
  // rotation).
  const DiskProfile p = hitachi_ultrastar_15k450();
  const SimTime seq = p.sequential_verify_service(64 * 1024);
  EXPECT_LT(p.staggered_verify_service(64 * 1024, 512), seq);
  EXPECT_GT(p.staggered_verify_service(64 * 1024, 2), seq);
}

TEST(DiskProfileEstimates, SeekCurveMonotone) {
  const DiskProfile p = hitachi_ultrastar_15k450();
  SimTime prev = 0;
  for (std::int64_t d : {0LL, 1LL, 10LL, 100LL, 1000LL, 10000LL, 50000LL}) {
    const SimTime t = p.seek_time(d, 50000);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_EQ(p.seek_time(0, 50000), 0);
  EXPECT_LE(p.seek_time(50000, 50000), p.max_seek + p.min_seek);
}

// Fig 1 / Fig 4 shapes across all catalog drives.
class ProfileParamTest : public ::testing::TestWithParam<DiskProfile> {};

TEST_P(ProfileParamTest, VerifyServiceFlatBelow64K) {
  const DiskProfile& p = GetParam();
  const SimTime at_1k = p.sequential_verify_service(1024);
  const SimTime at_64k = p.sequential_verify_service(64 * 1024);
  // "For requests <= 64KB, response times remain almost constant."
  EXPECT_LT(to_milliseconds(at_64k - at_1k), 0.6);
}

TEST_P(ProfileParamTest, VerifyServiceGrowsPast1M) {
  const DiskProfile& p = GetParam();
  EXPECT_GT(p.sequential_verify_service(16 * 1024 * 1024),
            2 * p.sequential_verify_service(64 * 1024));
}

INSTANTIATE_TEST_SUITE_P(
    CatalogDrives, ProfileParamTest,
    ::testing::Values(hitachi_ultrastar_15k450(), fujitsu_max3073rc(),
                      fujitsu_map3367np()),
    [](const ::testing::TestParamInfo<DiskProfile>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pscrub::disk
