// pscrub-report renderer suite: drives report::render_report directly
// against a hand-built timeline and golden-compares the output
// byte-for-byte (tests/golden/timeline_report*.txt), plus file-level
// coverage of load_and_merge (fleet-style cross-file merging and error
// reporting). Regenerate fixtures with PSCRUB_UPDATE_GOLDEN=1 after an
// intentional format change and review the diff.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timeline.h"
#include "report.h"

#ifndef PSCRUB_GOLDEN_DIR
#error "PSCRUB_GOLDEN_DIR must point at tests/golden"
#endif

namespace pscrub {
namespace {

using obs::Timeline;

bool update_mode() {
  // pscrub-lint: allow(env-hygiene) -- presence/boolean check only.
  const char* env = std::getenv("PSCRUB_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

std::string fixture_path(const std::string& name) {
  return std::string(PSCRUB_GOLDEN_DIR) + "/" + name + ".txt";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void check_golden(const std::string& name, const std::string& got) {
  ASSERT_FALSE(got.empty());
  const std::string path = fixture_path(name);
  if (update_mode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    SUCCEED() << "updated " << path;
    return;
  }
  const std::string want = read_file(path);
  ASSERT_FALSE(want.empty())
      << "missing fixture " << path
      << " -- run with PSCRUB_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(want, got) << name
                       << ": report drifted from the checked-in fixture; if "
                          "the change is intentional, regenerate with "
                          "PSCRUB_UPDATE_GOLDEN=1 and review the diff";
}

/// A small timeline exercising every report section: utilization
/// counters, scrub progress gauges (one complete, one cumulative-MB),
/// stand-down counters, a windowed latency digest, a run-level digest,
/// and an event log. All values are hand-picked constants, so the
/// rendered report is stable by construction.
Timeline sample_timeline() {
  Timeline tl;
  tl.configure({/*window=*/kSecond, /*max_windows=*/16});
  tl.set_enabled(true);

  const auto fg =
      tl.series("s0.disk.util.foreground", Timeline::SeriesKind::kCounter);
  const auto sc =
      tl.series("s0.disk.util.scrub", Timeline::SeriesKind::kCounter);
  // Foreground busy for [0, 0.5s) and [2s, 3.5s); scrub busy [4s, 6s).
  tl.add_span(fg, 0, kSecond / 2, 0.5);
  tl.add_span(fg, 2 * kSecond, 3 * kSecond + kSecond / 2, 1.5);
  tl.add_span(sc, 4 * kSecond, 6 * kSecond, 2.0);

  const auto frac =
      tl.series("s0.scrub.progress.fraction", Timeline::SeriesKind::kGauge);
  tl.set_gauge(frac, 1 * kSecond, 0.25);
  tl.set_gauge(frac, 3 * kSecond, 0.5);
  tl.set_gauge(frac, 5 * kSecond, 1.0);  // pass completes in window 5
  const auto sd =
      tl.series("s0.scrub.standdowns", Timeline::SeriesKind::kCounter);
  tl.add(sd, 2 * kSecond, 1.0);
  tl.add(sd, 4 * kSecond, 1.0);

  const auto mb =
      tl.series("pol.scrub.progress.mb", Timeline::SeriesKind::kGauge);
  tl.set_gauge(mb, 2 * kSecond, 16.0);
  tl.set_gauge(mb, 7 * kSecond, 64.0);

  const auto lat =
      tl.series("s0.block.fg_latency_ms", Timeline::SeriesKind::kDigest);
  for (int i = 1; i <= 20; ++i) {
    tl.observe(lat, (i % 8) * kSecond, 1.0 + 0.5 * static_cast<double>(i));
  }
  for (int i = 1; i <= 10; ++i) {
    tl.digest("s0.block.fg_latency_ms").observe(static_cast<double>(i));
  }

  tl.event("s0.scrub.events", 2 * kSecond, "standdown: foreground burst");
  tl.event("s0.scrub.events", 5 * kSecond, "pass complete");
  return tl;
}

TEST(ReportRenderer, SummaryMatchesGolden) {
  check_golden("timeline_report",
               report::render_report(sample_timeline(), {}));
}

TEST(ReportRenderer, WindowTablesMatchGolden) {
  report::ReportOptions options;
  options.windows = true;
  check_golden("timeline_report_windows",
               report::render_report(sample_timeline(), options));
}

TEST(ReportRenderer, RenderingIsDeterministic) {
  const Timeline tl = sample_timeline();
  report::ReportOptions options;
  options.windows = true;
  EXPECT_EQ(report::render_report(tl, options),
            report::render_report(tl, options));
}

TEST(ReportRenderer, SeriesPrefixRestrictsEverySection) {
  report::ReportOptions options;
  options.series_prefix = "pol.";
  const std::string out = report::render_report(sample_timeline(), options);
  EXPECT_NE(out.find("pol.scrub"), std::string::npos) << out;
  EXPECT_EQ(out.find("s0."), std::string::npos) << out;
  // The span shrinks to the selected series' extent too.
  EXPECT_NE(out.find("timeline: 1 series"), std::string::npos) << out;
}

TEST(ReportRenderer, EmptyTimelineRendersHeaderOnly) {
  Timeline tl;
  const std::string out = report::render_report(tl, {});
  EXPECT_NE(out.find("timeline: 0 series"), std::string::npos) << out;
  EXPECT_EQ(out.find("scrub progress"), std::string::npos) << out;
  EXPECT_EQ(out.find("utilization"), std::string::npos) << out;
}

/// Writes `text` under the gtest temp dir and returns the path.
std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + "pscrub_report_" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

TEST(ReportLoader, MergingTheSameFileTwiceDoublesCounters) {
  const Timeline tl = sample_timeline();
  const std::string path = write_temp("a.jsonl", tl.to_jsonl());

  Timeline once;
  ASSERT_EQ(report::load_and_merge({path}, once), "");
  Timeline twice;
  ASSERT_EQ(report::load_and_merge({path, path}, twice), "");

  const Timeline::Series* s1 = once.find("s0.disk.util.foreground");
  const Timeline::Series* s2 = twice.find("s0.disk.util.foreground");
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  double t1 = 0.0;
  double t2 = 0.0;
  for (const Timeline::Window& w : s1->windows) t1 += w.sum;
  for (const Timeline::Window& w : s2->windows) t2 += w.sum;
  EXPECT_DOUBLE_EQ(t2, 2.0 * t1);
  std::remove(path.c_str());
}

TEST(ReportLoader, FirstFailingFileIsNamedInTheError) {
  const std::string good =
      write_temp("good.jsonl", sample_timeline().to_jsonl());
  const std::string bad = write_temp("bad.jsonl", "not json\n");
  Timeline into;
  const std::string error = report::load_and_merge({good, bad}, into);
  EXPECT_NE(error.find(bad), std::string::npos) << error;
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(ReportRenderer, DaemonSectionRollsUpControlPlane) {
  Timeline tl;
  tl.configure({/*window=*/kSecond, /*max_windows=*/16});
  tl.set_enabled(true);
  const auto add = [&](const std::string& name, double v) {
    tl.add(tl.series(name, Timeline::SeriesKind::kCounter), kSecond, v);
  };
  add("d.pscrubd.commands", 10.0);
  add("d.pscrubd.commands.rejected", 2.0);
  add("d.pscrubd.checkpoints", 3.0);
  // 11 devices so numeric ordering matters (lexicographic walks put
  // dev10 before dev2).
  for (const int dev : {0, 2, 10}) {
    const std::string base = "d.pscrubd.dev" + std::to_string(dev);
    add(base + ".sectors", 1000.0 + dev);
    add(base + ".detections", static_cast<double>(dev));
    add(base + ".throttle_waits", 1.0);
  }

  const std::string out = report::render_report(tl, {});
  EXPECT_NE(out.find("\ndaemon\n"), std::string::npos) << out;
  EXPECT_NE(out.find("  d: 10 commands (2 rejected), 3 checkpoints\n"),
            std::string::npos)
      << out;
  const std::size_t at0 =
      out.find("    dev0: 1000 sectors scrubbed, 0 detections, 1 "
               "throttled fires\n");
  const std::size_t at2 = out.find("    dev2: 1002 sectors scrubbed");
  const std::size_t at10 = out.find("    dev10: 1010 sectors scrubbed");
  ASSERT_NE(at0, std::string::npos) << out;
  ASSERT_NE(at2, std::string::npos) << out;
  ASSERT_NE(at10, std::string::npos) << out;
  EXPECT_LT(at0, at2);
  EXPECT_LT(at2, at10) << "devices must sort numerically";
}

TEST(ReportLoader, MissingFileFails) {
  Timeline into;
  const std::string error =
      report::load_and_merge({"/nonexistent/timeline.jsonl"}, into);
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("/nonexistent/timeline.jsonl"), std::string::npos)
      << error;
}

TEST(ReportLoader, EmptyFileFailsWithClearDiagnostic) {
  const std::string path = testing::TempDir() + "/pscrub_empty.jsonl";
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  Timeline into;
  const std::string error = report::load_and_merge({path}, into);
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("empty"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ReportLoader, UnreadableInputFails) {
  // A directory opens but cannot be read: the fread error path.
  Timeline into;
  const std::string error = report::load_and_merge({testing::TempDir()}, into);
  EXPECT_FALSE(error.empty());
}

TEST(ReportLoader, ErrorNamesThePathExactlyOnce) {
  // load_timeline_file prefixes parse errors with the path;
  // load_and_merge must pass that through, not wrap it again.
  const std::string path = testing::TempDir() + "/pscrub_garbled.jsonl";
  { std::ofstream(path, std::ios::binary) << "not jsonl\n"; }
  Timeline into;
  const std::string error = report::load_and_merge({path}, into);
  ASSERT_NE(error.find(path), std::string::npos) << error;
  EXPECT_EQ(error.find(path), error.rfind(path)) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pscrub
