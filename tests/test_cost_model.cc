#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "disk/profile.h"

namespace pscrub::core {
namespace {

const disk::DiskProfile& profile() {
  static const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  return p;
}

trace::TraceRecord rec(disk::Lbn lbn, std::int32_t sectors = 128) {
  trace::TraceRecord r;
  r.lbn = lbn;
  r.sectors = sectors;
  return r;
}

TEST(CostModel, SequentialContinuationIsCheap) {
  auto svc = make_foreground_service(profile());
  const SimTime first = svc(rec(0));           // cold: random access
  const SimTime second = svc(rec(128));        // continues at 128
  EXPECT_LT(second, first / 2);
}

TEST(CostModel, JumpPaysSeekAgain) {
  auto svc = make_foreground_service(profile());
  svc(rec(0));
  const SimTime seq = svc(rec(128));
  const SimTime jump = svc(rec(10'000'000));
  EXPECT_GT(jump, 3 * seq);
}

TEST(CostModel, StateIsPerInstance) {
  auto a = make_foreground_service(profile());
  auto b = make_foreground_service(profile());
  a(rec(0));
  // b has not seen lbn 0..128: its request at 128 is a random access.
  const SimTime cold = b(rec(128));
  const SimTime warm = a(rec(128));
  EXPECT_GT(cold, warm);
}

TEST(CostModel, ScrubServiceMatchesProfileEstimate) {
  auto scrub = make_scrub_service(profile());
  for (std::int64_t bytes : {64 * 1024, 1 << 20, 4 << 20}) {
    EXPECT_EQ(scrub(bytes), profile().sequential_verify_service(bytes));
  }
}

TEST(CostModel, StaggeredServiceReflectsRegionCount) {
  auto few = make_staggered_scrub_service(profile(), 2);
  auto many = make_staggered_scrub_service(profile(), 512);
  EXPECT_GT(few(64 * 1024), many(64 * 1024))
      << "fewer regions mean longer jumps";
}

TEST(CostModel, ServiceMonotoneInSize) {
  auto scrub = make_scrub_service(profile());
  SimTime prev = 0;
  for (std::int64_t bytes = 64 * 1024; bytes <= 16 * 1024 * 1024;
       bytes *= 2) {
    const SimTime t = scrub(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace pscrub::core
