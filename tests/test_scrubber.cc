#include <gtest/gtest.h>

#include <memory>

#include "block/cfq_scheduler.h"
#include "block/noop_scheduler.h"
#include "core/scrubber.h"
#include "disk/profile.h"
#include "workload/synthetic_workload.h"

namespace pscrub::core {
namespace {

disk::DiskProfile small_profile() {
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  p.capacity_bytes = 2LL << 30;
  return p;
}

struct Fixture {
  Simulator sim;
  disk::DiskModel disk;
  block::BlockLayer blk;

  explicit Fixture(std::unique_ptr<block::IoScheduler> sched =
                       std::make_unique<block::CfqScheduler>())
      : disk(sim, small_profile(), 1), blk(sim, disk, std::move(sched)) {}
};

TEST(Scrubber, BackToBackMakesSteadyProgress) {
  Fixture f;
  ScrubberConfig cfg;
  cfg.priority = block::IoPriority::kBestEffort;  // no idle-window gate
  Scrubber s(f.sim, f.blk,
             make_sequential(f.disk.total_sectors(), 64 * 1024), cfg);
  s.start();
  f.sim.run_until(5 * kSecond);
  // Sequential verify ~4.5 ms per 64 KB: ~1000 requests in 5 s.
  EXPECT_GT(s.stats().requests, 500);
  EXPECT_GT(s.stats().throughput_mb_s(5 * kSecond), 5.0);
}

TEST(Scrubber, FixedDelayCapsThroughput) {
  Fixture f;
  ScrubberConfig cfg;
  cfg.priority = block::IoPriority::kBestEffort;
  cfg.inter_request_delay = 16 * kMillisecond;
  Scrubber s(f.sim, f.blk, make_sequential(f.disk.total_sectors(), 64 * 1024),
             cfg);
  s.start();
  f.sim.run_until(10 * kSecond);
  // 64 KB / (16 ms + ~4.5 ms service) ~ 3.2 MB/s (the paper's "Def. 16ms").
  const double mb_s = s.stats().throughput_mb_s(10 * kSecond);
  EXPECT_GT(mb_s, 2.0);
  EXPECT_LT(mb_s, 4.2);
}

TEST(Scrubber, StopHalts) {
  Fixture f;
  Scrubber s(f.sim, f.blk, make_sequential(f.disk.total_sectors(), 64 * 1024),
             {});
  s.start();
  f.sim.run_until(kSecond);
  const std::int64_t at_stop = s.stats().requests;
  EXPECT_GT(at_stop, 0);
  s.stop();
  f.sim.run_until(2 * kSecond);
  EXPECT_LE(s.stats().requests, at_stop + 1);  // at most the in-flight one
}

TEST(Scrubber, UserPathIgnoresIdlePriority) {
  // Soft-barrier requests dispatch immediately even at Idle priority --
  // Fig 3's "priorities have no effect on the user-level scrubber".
  Fixture f;
  ScrubberConfig cfg;
  cfg.path = IssuePath::kUser;
  cfg.priority = block::IoPriority::kIdle;
  Scrubber s(f.sim, f.blk, make_sequential(f.disk.total_sectors(), 64 * 1024),
             cfg);
  s.start();
  f.sim.run_until(kSecond);
  EXPECT_GT(s.stats().requests, 100)
      << "the idle-window gate must not apply to ioctl requests";
}

TEST(Scrubber, KernelIdleClassGatedThenStreams) {
  // CFQ's idle window gates the *first* Idle-class dispatch after
  // foreground activity; with no foreground at all, the gate opens once
  // and verifies then stream back-to-back.
  Fixture f;
  ScrubberConfig cfg;
  cfg.path = IssuePath::kKernel;
  cfg.priority = block::IoPriority::kIdle;
  Scrubber s(f.sim, f.blk, make_sequential(f.disk.total_sectors(), 64 * 1024),
             cfg);
  s.start();
  f.sim.run_until(9 * kMillisecond);
  EXPECT_EQ(s.stats().requests, 0) << "still inside the idle window";
  f.sim.run_until(kSecond);
  EXPECT_GT(s.stats().requests, 150) << "streams once the window opened";
}

TEST(Scrubber, KernelIdleClassRegatedByForeground) {
  // Foreground activity closes the gate again: the scrubber pauses for at
  // least the idle window after each foreground completion.
  Fixture f;
  ScrubberConfig cfg;
  cfg.priority = block::IoPriority::kIdle;
  Scrubber s(f.sim, f.blk, make_sequential(f.disk.total_sectors(), 64 * 1024),
             cfg);
  s.start();
  f.sim.run_until(100 * kMillisecond);
  const std::int64_t before = s.stats().requests;

  block::BlockRequest fg;
  fg.cmd.kind = disk::CommandKind::kRead;
  fg.cmd.lbn = 1'000'000;
  fg.cmd.sectors = 128;
  SimTime fg_done = 0;
  fg.on_complete = [&](const block::BlockRequest&, SimTime) {
    fg_done = f.sim.now();
  };
  f.blk.submit(std::move(fg));
  // Let the in-flight verify and the foreground request drain.
  f.sim.run_until(120 * kMillisecond);
  ASSERT_GT(fg_done, 0);
  // Within the 10 ms window after the foreground completion no new verify
  // dispatches (the one in flight at submission may have finished).
  const std::int64_t during = s.stats().requests;
  f.sim.run_until(fg_done + 9 * kMillisecond);
  EXPECT_LE(s.stats().requests, during);
  f.sim.run_until(fg_done + 100 * kMillisecond);
  EXPECT_GT(s.stats().requests, before + 5) << "resumes after the window";
}

TEST(WaitingScrubberTest, FiresOnlyAfterThreshold) {
  Fixture f(std::make_unique<block::NoopScheduler>());
  WaitingScrubber s(f.sim, f.blk,
                    make_sequential(f.disk.total_sectors(), 64 * 1024),
                    50 * kMillisecond);
  s.start();
  f.sim.run_until(40 * kMillisecond);
  EXPECT_EQ(s.stats().requests, 0);
  f.sim.run_until(kSecond);
  EXPECT_GT(s.stats().requests, 0);
}

TEST(WaitingScrubberTest, KeepsFiringUntilForegroundArrives) {
  Fixture f(std::make_unique<block::NoopScheduler>());
  WaitingScrubber s(f.sim, f.blk,
                    make_sequential(f.disk.total_sectors(), 64 * 1024),
                    20 * kMillisecond);
  s.start();
  f.sim.run_until(kSecond);
  const std::int64_t before = s.stats().requests;
  EXPECT_GT(before, 100) << "back-to-back firing inside the idle interval";

  // A foreground request arrives: the scrubber must stand down, then
  // re-arm after the system drains.
  block::BlockRequest fg;
  fg.cmd.kind = disk::CommandKind::kRead;
  fg.cmd.lbn = 1000000;
  fg.cmd.sectors = 128;
  f.blk.submit(std::move(fg));
  f.sim.run_until(kSecond + 10 * kMillisecond);
  f.sim.run_until(2 * kSecond);
  EXPECT_GT(s.stats().requests, before) << "re-armed after idle returns";
}

TEST(WaitingScrubberTest, StopCancelsArm) {
  Fixture f(std::make_unique<block::NoopScheduler>());
  WaitingScrubber s(f.sim, f.blk,
                    make_sequential(f.disk.total_sectors(), 64 * 1024),
                    100 * kMillisecond);
  s.start();
  s.stop();
  f.sim.run_until(kSecond);
  EXPECT_EQ(s.stats().requests, 0);
}

// ---------------------------------------------------------------------------
// pause()/resume(): the control-plane hooks pscrubd drives. The pair
// must be cursor-neutral -- a paused-then-resumed scrub emits the exact
// extent sequence an undisturbed one would, with zero issues while
// paused.

TEST(Scrubber, PauseResumeIsCursorNeutral) {
  Fixture f;
  ScrubberConfig cfg;
  cfg.priority = block::IoPriority::kBestEffort;
  Scrubber s(f.sim, f.blk,
             make_sequential(f.disk.total_sectors(), 64 * 1024), cfg);
  s.start();
  f.sim.run_until(kSecond);
  ASSERT_GT(s.stats().requests, 0);

  s.pause();
  EXPECT_TRUE(s.paused());
  // One in-flight verify may complete and be recorded; after it drains,
  // progress stays frozen.
  f.sim.run_until(kSecond + 100 * kMillisecond);
  const ScrubCursor held = s.strategy().cursor();
  const std::int64_t frozen = s.stats().requests;
  f.sim.run_until(2 * kSecond);
  EXPECT_EQ(s.stats().requests, frozen);
  EXPECT_EQ(s.strategy().cursor().a, held.a);

  s.resume();
  EXPECT_FALSE(s.paused());
  f.sim.run_until(3 * kSecond);
  EXPECT_GT(s.stats().requests, frozen);
  // The first post-resume extent continued from the held cursor: the
  // strategy position only ever moves forward through next().
  EXPECT_GT(s.strategy().cursor().a, held.a);
}

TEST(WaitingScrubberTest, PauseFreezesAndResumeRearms) {
  Fixture f(std::make_unique<block::NoopScheduler>());
  WaitingScrubber s(f.sim, f.blk,
                    make_sequential(f.disk.total_sectors(), 64 * 1024),
                    20 * kMillisecond);
  s.start();
  f.sim.run_until(kSecond);
  const std::int64_t before = s.stats().requests;
  ASSERT_GT(before, 0);

  s.pause();
  EXPECT_TRUE(s.paused());
  f.sim.run_until(2 * kSecond);
  const std::int64_t frozen = s.stats().requests;
  EXPECT_LE(frozen, before + 1);  // at most the in-flight verify lands
  const ScrubCursor held = s.strategy().cursor();

  s.resume();
  EXPECT_FALSE(s.paused());
  f.sim.run_until(3 * kSecond);
  EXPECT_GT(s.stats().requests, frozen) << "idle observer re-engaged";
  EXPECT_GT(s.strategy().cursor().a, held.a);
}

}  // namespace
}  // namespace pscrub::core
