#include <gtest/gtest.h>

#include "block/deadline_scheduler.h"

namespace pscrub::block {
namespace {

BlockRequest make(disk::Lbn lbn, disk::CommandKind kind, SimTime submit) {
  BlockRequest r;
  r.cmd.kind = kind;
  r.cmd.lbn = lbn;
  r.cmd.sectors = 8;
  r.submit_time = submit;
  return r;
}

DispatchContext at(SimTime now) {
  DispatchContext c;
  c.now = now;
  return c;
}

TEST(Deadline, ReadsBeforeWrites) {
  DeadlineScheduler d;
  SimTime retry = 0;
  d.add(make(100, disk::CommandKind::kWrite, 0));
  d.add(make(200, disk::CommandKind::kRead, 1));
  EXPECT_EQ(d.select(at(2), &retry)->cmd.lbn, 200);
  EXPECT_EQ(d.select(at(2), &retry)->cmd.lbn, 100);
}

TEST(Deadline, ScanOrderWithinReads) {
  DeadlineScheduler d;
  SimTime retry = 0;
  d.add(make(300, disk::CommandKind::kRead, 0));
  d.add(make(100, disk::CommandKind::kRead, 0));
  EXPECT_EQ(d.select(at(1), &retry)->cmd.lbn, 100);
  EXPECT_EQ(d.select(at(1), &retry)->cmd.lbn, 300);
}

TEST(Deadline, ExpiredWritePreemptsReads) {
  DeadlineScheduler d;
  SimTime retry = 0;
  d.add(make(100, disk::CommandKind::kWrite, 0));
  // 6 seconds later (write_expire = 5 s) a read arrives; the stale write
  // still goes first.
  d.add(make(200, disk::CommandKind::kRead, 6 * kSecond));
  EXPECT_EQ(d.select(at(6 * kSecond), &retry)->cmd.lbn, 100);
}

TEST(Deadline, ExpiredReadJumpsScan) {
  DeadlineScheduler d;
  SimTime retry = 0;
  d.add(make(500, disk::CommandKind::kRead, 0));
  EXPECT_EQ(d.select(at(1), &retry)->cmd.lbn, 500);  // scan now at 508
  d.add(make(100, disk::CommandKind::kRead, 2));     // behind the scan
  d.add(make(600, disk::CommandKind::kRead, 700 * kMillisecond));
  // The stranded LBN-100 read is >500 ms old: served before the scan's
  // preferred LBN 600.
  EXPECT_EQ(d.select(at(700 * kMillisecond), &retry)->cmd.lbn, 100);
  EXPECT_EQ(d.select(at(700 * kMillisecond), &retry)->cmd.lbn, 600);
}

TEST(Deadline, VerifyTreatedAsRead) {
  DeadlineScheduler d;
  SimTime retry = 0;
  d.add(make(100, disk::CommandKind::kVerifyScsi, 0));
  d.add(make(200, disk::CommandKind::kWrite, 0));
  EXPECT_EQ(d.select(at(1), &retry)->cmd.lbn, 100);
}

TEST(Deadline, SizeAndEmpty) {
  DeadlineScheduler d;
  EXPECT_TRUE(d.empty());
  d.add(make(1, disk::CommandKind::kRead, 0));
  d.add(make(2, disk::CommandKind::kWrite, 0));
  EXPECT_EQ(d.size(), 2u);
  SimTime retry = 0;
  d.select(at(1), &retry);
  d.select(at(1), &retry);
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.select(at(1), &retry));
}

}  // namespace
}  // namespace pscrub::block
