// Tests for the fleet layer and its closed-form schedule foundations:
//
//   * ScheduleView mirrors the virtual-dispatch strategies extent-for-
//     extent (full-pass walks, including ragged staggered geometries);
//   * the view-based core::evaluate_mlet is bit-identical to the
//     strategy-based overload in both scrub_on_detection modes;
//   * a fleet's per-disk results match run_member's reference path (the
//     "1k fleet == 1k independent single-disk runs" acceptance check);
//   * run_fleet output -- state arrays, merged registry, merged timeline
//     -- is bit-identical for any shards x workers combination;
//   * per-disk fault plans are prefix-invariant under fleet-size changes;
//   * validate_scenario rejects the stack-only specs in fleet mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "pscrub.h"

namespace pscrub::fleet {
namespace {

// ---------------------------------------------------------------------------
// ScheduleView vs ScrubStrategy

// Walks `strategy` for one full pass and checks that `view` reproduces
// every extent (extent_at) and every sector's step (step_of).
void expect_view_matches_strategy(const core::ScheduleView& view,
                                  core::ScrubStrategy& strategy) {
  strategy.reset();
  const std::int64_t steps = view.steps_per_pass();
  std::int64_t covered = 0;
  for (std::int64_t step = 0; step < steps; ++step) {
    const core::ScrubExtent from_strategy = strategy.next();
    const core::ScrubExtent from_view = view.extent_at(step);
    ASSERT_EQ(from_view.lbn, from_strategy.lbn) << "step " << step;
    ASSERT_EQ(from_view.sectors, from_strategy.sectors) << "step " << step;
    for (std::int64_t s = 0; s < from_view.sectors; ++s) {
      ASSERT_EQ(view.step_of(from_view.lbn + s), step)
          << "sector " << from_view.lbn + s;
    }
    covered += from_view.sectors;
  }
  EXPECT_EQ(covered, view.total_sectors);
}

TEST(ScheduleView, SequentialMatchesStrategyFullPass) {
  struct Case {
    std::int64_t total;
    std::int64_t request;
  };
  for (const Case& c : {Case{10'000, 8}, Case{10'000, 7}, Case{9, 4},
                        Case{16, 16}, Case{5, 8}}) {
    SCOPED_TRACE("total=" + std::to_string(c.total) +
                 " req=" + std::to_string(c.request));
    const core::ScheduleView view =
        core::ScheduleView::sequential(c.total, c.request);
    core::SequentialStrategy strategy(c.total, c.request);
    expect_view_matches_strategy(view, strategy);
  }
}

TEST(ScheduleView, StaggeredMatchesStrategyFullPass) {
  struct Case {
    std::int64_t total;
    std::int64_t request;
    int regions;
  };
  // Ragged cases on purpose: partial trailing region (10/R4 leaves a
  // 1-sector region), request not dividing the region (req 3 into
  // 3-sector regions divides; req 2 into 3 does not), exactly divisible.
  for (const Case& c :
       {Case{10'000, 8, 128}, Case{10, 3, 4}, Case{10, 2, 4}, Case{9, 2, 4},
        Case{16, 2, 4}, Case{10'000, 7, 3}, Case{100, 25, 4}}) {
    SCOPED_TRACE("total=" + std::to_string(c.total) + " req=" +
                 std::to_string(c.request) + " R=" +
                 std::to_string(c.regions));
    const core::ScheduleView view =
        core::ScheduleView::staggered(c.total, c.request, c.regions);
    core::StaggeredStrategy strategy(c.total, c.request, c.regions);
    expect_view_matches_strategy(view, strategy);
  }
}

TEST(ScheduleView, RejectsInvalidGeometry) {
  EXPECT_THROW(core::ScheduleView::sequential(0, 8), std::invalid_argument);
  EXPECT_THROW(core::ScheduleView::sequential(100, 0), std::invalid_argument);
  // Regions too fine for the request size (region_sectors <
  // request_sectors): StaggeredStrategy's own precondition.
  EXPECT_THROW(core::ScheduleView::staggered(100, 50, 4),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// evaluate_mlet: view vs strategy

std::vector<core::LseBurst> dense_bursts(std::int64_t total_sectors,
                                         SimTime horizon,
                                         std::uint64_t seed) {
  core::LseModelConfig lse;
  lse.burst_interarrival_mean = 12 * kHour;
  lse.burst_span_bytes = 8LL << 20;
  Rng rng(seed);
  return core::generate_lse_bursts(lse, total_sectors, horizon, rng);
}

TEST(EvaluateMlet, ViewMatchesStrategyBothDetectionModes) {
  const std::int64_t total_sectors = 1 << 20;
  const std::vector<core::LseBurst> bursts =
      dense_bursts(total_sectors, 30 * kDay, 99);
  ASSERT_FALSE(bursts.empty());

  struct Sched {
    const char* label;
    core::ScheduleView view;
    std::unique_ptr<core::ScrubStrategy> strategy;
  };
  // Note: the strategy constructors take request SECTORS, like the view
  // (the make_* factories take bytes).
  std::vector<Sched> schedules;
  schedules.push_back(
      {"sequential", core::ScheduleView::sequential(total_sectors, 128),
       std::make_unique<core::SequentialStrategy>(total_sectors, 128)});
  schedules.push_back(
      {"staggered", core::ScheduleView::staggered(total_sectors, 128, 64),
       std::make_unique<core::StaggeredStrategy>(total_sectors, 128, 64)});

  for (const Sched& s : schedules) {
    for (bool scrub_on_detection : {true, false}) {
      SCOPED_TRACE(std::string(s.label) + " scrub_on_detection=" +
                   (scrub_on_detection ? "true" : "false"));
      core::MletConfig config;
      config.request_service = 7 * kMillisecond;
      config.request_spacing = 2 * kMillisecond;
      config.scrub_on_detection = scrub_on_detection;
      const core::MletResult by_strategy = core::evaluate_mlet(
          *s.strategy, total_sectors, bursts, config);
      const core::MletResult by_view =
          core::evaluate_mlet(s.view, bursts, config);
      EXPECT_EQ(by_view.errors, by_strategy.errors);
      EXPECT_EQ(by_view.mlet_hours, by_strategy.mlet_hours);
      EXPECT_EQ(by_view.worst_hours, by_strategy.worst_hours);
      EXPECT_EQ(by_view.pass_hours, by_strategy.pass_hours);
    }
  }
}

TEST(EvaluateMlet, DetectTimesAreWithinOnePassOfOccurrence) {
  const std::int64_t total_sectors = 1 << 18;
  const std::vector<core::LseBurst> bursts =
      dense_bursts(total_sectors, 10 * kDay, 7);
  const core::ScheduleView view =
      core::ScheduleView::staggered(total_sectors, 64, 32);
  core::MletConfig config;
  config.request_service = 5 * kMillisecond;
  std::vector<SimTime> detect;
  core::evaluate_mlet(view, bursts, config, &detect);
  ASSERT_EQ(detect.size(), bursts.size());
  const SimTime pass =
      view.steps_per_pass() * (config.request_service +
                               config.request_spacing);
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    EXPECT_GE(detect[i], bursts[i].occurred);
    EXPECT_LE(detect[i], bursts[i].occurred + pass);
  }
}

// ---------------------------------------------------------------------------
// Fault-plan prefix invariance

TEST(DiskFaultPlan, PrefixInvariantUnderDiskCountChanges) {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.lse.burst_interarrival_mean = 5 * kDay;
  const std::int64_t total_sectors = 1 << 20;
  const SimTime horizon = 60 * kDay;

  const fault::FaultPlan small =
      fault::build_fault_plan(spec, 8, total_sectors, horizon);
  const fault::FaultPlan large =
      fault::build_fault_plan(spec, 64, total_sectors, horizon);
  ASSERT_EQ(small.disks.size(), 8u);
  ASSERT_EQ(large.disks.size(), 64u);

  for (std::size_t i = 0; i < small.disks.size(); ++i) {
    const fault::DiskFaultPlan one =
        fault::build_disk_fault_plan(spec, static_cast<std::int64_t>(i),
                                     total_sectors, horizon);
    for (const fault::DiskFaultPlan* p : {&large.disks[i], &one}) {
      ASSERT_EQ(p->bursts.size(), small.disks[i].bursts.size()) << i;
      EXPECT_EQ(p->fail_at, small.disks[i].fail_at);
      for (std::size_t b = 0; b < p->bursts.size(); ++b) {
        EXPECT_EQ(p->bursts[b].occurred, small.disks[i].bursts[b].occurred);
        EXPECT_EQ(p->bursts[b].sectors, small.disks[i].bursts[b].sectors);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fleet runs

exp::ScenarioConfig fleet_config(std::int64_t disks) {
  exp::ScenarioConfig config;
  config.label = "test.fleet";
  config.disk.capacity_bytes = 8LL << 30;
  config.scrubber.kind = exp::ScrubberKind::kWaiting;
  config.scrubber.strategy.kind = exp::StrategyKind::kStaggered;
  config.scrubber.strategy.request_bytes = 64 * 1024;
  config.scrubber.strategy.regions = 128;
  config.run_for = 60 * kDay;
  config.fleet.disks = disks;
  config.fleet.pacing.request_service = 40 * kMillisecond;
  config.fleet.util_min = 0.1;
  config.fleet.util_max = 0.7;
  config.fault.enabled = true;
  config.fault.lse.burst_interarrival_mean = 10 * kDay;
  config.fault.lse.burst_span_bytes = 64LL << 20;
  return config;
}

TEST(Fleet, ResolveShards) {
  EXPECT_EQ(resolve_shards(100, 4), 4);
  EXPECT_EQ(resolve_shards(100, 200), 100);   // never more shards than disks
  EXPECT_EQ(resolve_shards(100, 0), 1);       // size-based default
  EXPECT_EQ(resolve_shards(16'384, 0), 1);
  EXPECT_EQ(resolve_shards(16'385, 0), 2);
  EXPECT_EQ(resolve_shards(1'000'000, 0), 62);
  EXPECT_EQ(resolve_shards(50'000'000, 0), 1024);  // hard cap
}

// The acceptance cross-check: every member of a 1k fleet matches the
// reference path (strategy-based evaluate_mlet over the same disk's fault
// plan) bit-for-bit.
TEST(Fleet, MatchesMemberReferencePath) {
  const exp::ScenarioConfig config = fleet_config(1000);
  const FleetResult r = run_fleet(config);
  ASSERT_EQ(r.disks, 1000);
  ASSERT_EQ(r.state.disks(), 1000);
  for (std::int64_t i = 0; i < r.disks; ++i) {
    const MemberResult m = run_member(config, i);
    ASSERT_EQ(r.state.utilization[i], m.utilization) << "disk " << i;
    ASSERT_EQ(r.state.effective_step[i], m.effective_step) << "disk " << i;
    ASSERT_EQ(r.state.slowdown[i], m.slowdown) << "disk " << i;
    ASSERT_EQ(r.state.errors[i], m.mlet.errors) << "disk " << i;
    ASSERT_EQ(r.state.mlet_hours[i], m.mlet.mlet_hours) << "disk " << i;
    ASSERT_EQ(r.state.worst_hours[i], m.mlet.worst_hours) << "disk " << i;
  }
}

// Strict equality of two fleet results, including the full per-disk state
// (the shard/worker invariance contract is bit-identity, not tolerance).
void expect_fleet_results_equal(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.disks, b.disks);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.total_bursts, b.total_bursts);
  EXPECT_EQ(a.total_errors, b.total_errors);
  EXPECT_EQ(a.fleet_mlet_hours, b.fleet_mlet_hours);
  EXPECT_EQ(a.worst_mlet_hours, b.worst_mlet_hours);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.mlet_hours.p50(), b.mlet_hours.p50());
  EXPECT_EQ(a.mlet_hours.p99(), b.mlet_hours.p99());
  EXPECT_EQ(a.completion_hours.p50(), b.completion_hours.p50());
  EXPECT_EQ(a.state.utilization, b.state.utilization);
  EXPECT_EQ(a.state.effective_step, b.state.effective_step);
  EXPECT_EQ(a.state.pass_duration, b.state.pass_duration);
  EXPECT_EQ(a.state.bursts, b.state.bursts);
  EXPECT_EQ(a.state.errors, b.state.errors);
  EXPECT_EQ(a.state.delay_sum_hours, b.state.delay_sum_hours);
  EXPECT_EQ(a.state.mlet_hours, b.state.mlet_hours);
  EXPECT_EQ(a.state.worst_hours, b.state.worst_hours);
  EXPECT_EQ(a.state.slowdown, b.state.slowdown);
  EXPECT_EQ(a.state.passes, b.state.passes);
  EXPECT_EQ(a.state.progress, b.state.progress);
}

TEST(Fleet, BitIdenticalForAnyShardAndWorkerCount) {
  obs::TimelineConfig tc;
  tc.window = kHour;

  // Reference: 1 shard, 1 worker, serial.
  exp::ScenarioConfig config = fleet_config(5000);
  config.fleet.shards = 1;
  exp::SweepOptions ref_options;
  ref_options.workers = 1;
  obs::Registry ref_registry;
  ref_options.merge_into = &ref_registry;
  obs::Timeline ref_timeline;
  ref_timeline.configure(tc);
  ref_timeline.set_enabled(true);
  ref_options.timeline_into = &ref_timeline;
  const FleetResult reference = run_fleet(config, ref_options);

  for (int shards : {1, 4, 8}) {
    for (int workers : {1, 4}) {
      if (shards == 1 && workers == 1) continue;
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      config.fleet.shards = shards;
      exp::SweepOptions options;
      options.workers = workers;
      obs::Registry registry;
      options.merge_into = &registry;
      obs::Timeline timeline;
      timeline.configure(tc);
      timeline.set_enabled(true);
      options.timeline_into = &timeline;
      const FleetResult r = run_fleet(config, options);
      expect_fleet_results_equal(reference, r);
      EXPECT_EQ(registry.to_json(), ref_registry.to_json());
      EXPECT_EQ(timeline.to_jsonl(), ref_timeline.to_jsonl());
    }
  }
}

TEST(Fleet, ExportPublishesRollup) {
  const exp::ScenarioConfig config = fleet_config(200);
  const FleetResult r = run_fleet(config);
  obs::Registry registry;
  r.export_to(registry, "study");
  EXPECT_EQ(registry.counter("study.fleet.disks").value(), 200);
  EXPECT_EQ(registry.counter("study.fleet.bursts").value(), r.total_bursts);
  EXPECT_EQ(registry.counter("study.fleet.errors").value(), r.total_errors);
  EXPECT_EQ(registry.gauge("study.fleet.mlet_hours").value(),
            r.fleet_mlet_hours);
}

// A fleet two orders of magnitude past the Scenario stack's comfort zone
// must complete in-process within the unit-test budget.
TEST(Fleet, HundredThousandDiskSmoke) {
  exp::ScenarioConfig config = fleet_config(100'000);
  config.run_for = 30 * kDay;
  const FleetResult r = run_fleet(config);
  EXPECT_EQ(r.disks, 100'000);
  EXPECT_EQ(r.state.disks(), 100'000);
  EXPECT_GT(r.total_errors, 0);
  EXPECT_GT(r.fleet_mlet_hours, 0.0);
  EXPECT_GT(r.shards, 1);
}

// ---------------------------------------------------------------------------
// Fleet-mode validation

TEST(Fleet, ValidateRejectsStackOnlySpecs) {
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.raid.enabled = true;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.workload.kind = exp::WorkloadKind::kRandomReads;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.spindown_threshold = kSecond;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.scrubber.kind = exp::ScrubberKind::kNone;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.fault.fail_disk.push_back({0, kDay});
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.fleet.shards = -1;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.fleet.pacing.request_service = 0;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.fleet.util_max = 1.0;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.fleet.util_min = 0.5;
    c.fleet.util_max = 0.2;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = fleet_config(10);
    c.run_for = 0;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    // Staggered geometry infeasible for the member disk: regions finer
    // than the request size.
    exp::ScenarioConfig c = fleet_config(10);
    c.disk.capacity_bytes = 1LL << 20;
    c.scrubber.strategy.regions = 10'000;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
}

TEST(Fleet, ScenarioCtorRejectsFleetConfigs) {
  EXPECT_THROW(exp::Scenario scenario(fleet_config(10)),
               std::invalid_argument);
}

}  // namespace
}  // namespace pscrub::fleet
