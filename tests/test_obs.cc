// Tests for the observability layer: histogram percentile accuracy against
// exact quantiles, counter/gauge/registry semantics, and trace-file schema
// validity (the emitted file must be well-formed Chrome trace-event JSON).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <optional>

#include "obs/env.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace_event.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace pscrub::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser (objects, arrays, strings, numbers, literals) used
// to check that to_json() and the trace file are well-formed. Deliberately
// strict: any syntax error fails the parse.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;                // kArray
  std::map<std::string, Json> members;    // kObject

  bool has(const std::string& key) const { return members.count(key) != 0; }
  const Json& at(const std::string& key) const { return members.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input; returns false on any syntax error or
  /// trailing garbage.
  bool parse(Json* out) {
    pos_ = 0;
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string_token(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // validated as hex but not decoded (ASCII traces)
            out->push_back('?');
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number_token(double* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    const std::string tok = text_.substr(start, pos_ - start);
    // Test-local strict JSON number parse; whole-token consumption is
    // asserted on the next line. pscrub-lint: allow(env-hygiene)
    *out = std::strtod(tok.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  bool value(Json* out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = Json::Kind::kString;
      return string_token(&out->str);
    }
    if (c == 't') {
      out->kind = Json::Kind::kBool;
      out->b = true;
      return literal("true");
    }
    if (c == 'f') {
      out->kind = Json::Kind::kBool;
      out->b = false;
      return literal("false");
    }
    if (c == 'n') {
      out->kind = Json::Kind::kNull;
      return literal("null");
    }
    out->kind = Json::Kind::kNumber;
    return number_token(&out->number);
  }

  bool object(Json* out) {
    out->kind = Json::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string_token(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      Json v;
      if (!value(&v)) return false;
      out->members.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(Json* out) {
    out->kind = Json::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsRoundTrip) {
  const std::vector<SimTime> probes = {
      0,     1,       31,          32,        33,        100,
      1000,  123456,  1'000'000,   kMillisecond, 17 * kMillisecond,
      kSecond, 3 * kSecond + 7, kSecond * 86400};
  for (SimTime v : probes) {
    const int idx = LatencyHistogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyHistogram::kBucketCount);
    EXPECT_LE(LatencyHistogram::bucket_lower(idx), v) << "value " << v;
    EXPECT_GT(LatencyHistogram::bucket_upper(idx), v) << "value " << v;
    // Bucket boundaries map back to the same bucket.
    EXPECT_EQ(LatencyHistogram::bucket_index(
                  LatencyHistogram::bucket_lower(idx)),
              idx);
    EXPECT_EQ(LatencyHistogram::bucket_index(
                  LatencyHistogram::bucket_upper(idx) - 1),
              idx);
  }
}

TEST(HistogramTest, BucketRelativeWidthBounded) {
  // Above the linear region every bucket is at most 1/32 of its magnitude
  // wide -- the error bound the percentile accuracy rests on.
  for (SimTime v = 64; v < (1LL << 40); v = v * 7 + 13) {
    const int idx = LatencyHistogram::bucket_index(v);
    const double width = static_cast<double>(
        LatencyHistogram::bucket_upper(idx) -
        LatencyHistogram::bucket_lower(idx));
    EXPECT_LE(width / static_cast<double>(v), 1.0 / 32 + 1e-12)
        << "value " << v;
  }
}

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 12345);
  EXPECT_EQ(h.max(), 12345);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 12345) << "p=" << p;
  }
}

// Exact nearest-rank quantile of a sorted sample, the reference the
// histogram approximation is judged against.
SimTime exact_nearest_rank(const std::vector<SimTime>& sorted, double p) {
  if (sorted.empty()) return 0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

void check_percentiles_against_exact(const std::vector<SimTime>& samples,
                                     const char* label) {
  LatencyHistogram h;
  for (SimTime s : samples) h.record(s);
  std::vector<SimTime> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  EXPECT_EQ(h.percentile(0.0), sorted.front()) << label;
  EXPECT_EQ(h.percentile(100.0), sorted.back()) << label;
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(samples.size())) << label;

  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const auto approx = static_cast<double>(h.percentile(p));
    const auto exact = static_cast<double>(exact_nearest_rank(sorted, p));
    // One bucket is at most 1/32 (~3.1%) of its magnitude wide; allow the
    // full bucket width plus the sub-nanosecond linear region slack.
    const double tol = std::max(exact * (1.0 / 32), 1.0);
    EXPECT_NEAR(approx, exact, tol)
        << label << " p" << p << ": approx=" << approx << " exact=" << exact;
  }
}

TEST(HistogramTest, PercentileAccuracyUniform) {
  Rng rng(1234);
  std::vector<SimTime> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(
        static_cast<SimTime>(rng.uniform(0.1, 30.0) * kMillisecond));
  }
  check_percentiles_against_exact(samples, "uniform");
}

TEST(HistogramTest, PercentileAccuracyExponential) {
  Rng rng(99);
  std::vector<SimTime> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(
        static_cast<SimTime>(rng.exponential(5.0) * kMillisecond) + 1);
  }
  check_percentiles_against_exact(samples, "exponential");
}

TEST(HistogramTest, PercentileAccuracyLognormalHeavyTail) {
  Rng rng(7);
  std::vector<SimTime> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(
        static_cast<SimTime>(rng.lognormal(1.0, 1.5) * kMillisecond) + 1);
  }
  check_percentiles_against_exact(samples, "lognormal");
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Rng rng(42);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<SimTime>(rng.exponential(2.0) * kMillisecond);
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << "p=" << p;
  }
}

TEST(HistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(5 * kMillisecond);
  h.record(10 * kMillisecond);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.percentile(50.0), 0);
  h.record(kMillisecond);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), kMillisecond);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

// ---------------------------------------------------------------------------
// Counters, gauges, IoStats
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  ++c;
  c += 10;
  c.add(5);
  c.add();
  EXPECT_EQ(c.value(), 17);
  const std::int64_t implicit = c;  // old raw-field call sites
  EXPECT_EQ(implicit, 17);
}

TEST(MetricsTest, GaugeSemantics) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.25);
  const double implicit = g;
  EXPECT_DOUBLE_EQ(implicit, 3.25);
}

TEST(MetricsTest, ThroughputFormula) {
  EXPECT_DOUBLE_EQ(throughput_mb_s(0, kSecond), 0.0);
  EXPECT_DOUBLE_EQ(throughput_mb_s(1'000'000, 0), 0.0);
  EXPECT_DOUBLE_EQ(throughput_mb_s(1'000'000, kSecond), 1.0);
  EXPECT_DOUBLE_EQ(throughput_mb_s(50'000'000, 2 * kSecond), 25.0);
}

TEST(MetricsTest, IoStatsRecordAndSamples) {
  IoStats s;
  s.record(4096, 2 * kMillisecond);
  s.record(8192, 6 * kMillisecond);
  EXPECT_EQ(s.requests.value(), 2);
  EXPECT_EQ(s.bytes.value(), 12288);
  EXPECT_DOUBLE_EQ(s.mean_latency_ms(), 4.0);
  EXPECT_EQ(s.max_latency(), 6 * kMillisecond);
  EXPECT_EQ(s.latency_sum(), 8 * kMillisecond);
  EXPECT_TRUE(s.response_seconds.empty());  // off by default

  IoStats keeping;
  keeping.keep_samples = true;
  keeping.record(4096, 2 * kMillisecond);
  ASSERT_EQ(keeping.response_seconds.size(), 1u);
  EXPECT_DOUBLE_EQ(keeping.response_seconds[0], 0.002);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, CreateOnUseAndStableReferences) {
  Registry reg;
  Counter& c = reg.counter("io.requests");
  c.add(3);
  // References stay valid as the registry grows.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&c, &reg.counter("io.requests"));
  EXPECT_EQ(reg.counter("io.requests").value(), 3);
}

TEST(RegistryTest, HasSizeClear) {
  Registry reg;
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.has_counter("a"));
  reg.counter("a").add(1);
  reg.gauge("b").set(2.0);
  reg.histogram("c").record(kMillisecond);
  EXPECT_TRUE(reg.has_counter("a"));
  EXPECT_TRUE(reg.has_gauge("b"));
  EXPECT_TRUE(reg.has_histogram("c"));
  EXPECT_FALSE(reg.has_counter("b"));  // kinds are separate namespaces
  EXPECT_EQ(reg.size(), 3u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.has_counter("a"));
}

TEST(RegistryTest, IoStatsExportTo) {
  Registry reg;
  IoStats s;
  s.record(1 << 20, 3 * kMillisecond);
  s.export_to(reg, "fg");
  EXPECT_TRUE(reg.has_counter("fg.requests"));
  EXPECT_TRUE(reg.has_counter("fg.bytes"));
  EXPECT_TRUE(reg.has_histogram("fg.latency"));
  EXPECT_EQ(reg.counter("fg.requests").value(), 1);
  EXPECT_EQ(reg.counter("fg.bytes").value(), 1 << 20);
  EXPECT_EQ(reg.histogram("fg.latency").count(), 1);
}

TEST(RegistryTest, ToJsonIsWellFormedAndComplete) {
  Registry reg;
  reg.counter("scrub.requests").add(17);
  reg.gauge("idle.utilization").set(0.42);
  LatencyHistogram& h = reg.histogram("fg.latency");
  for (int i = 1; i <= 100; ++i) h.record(i * kMillisecond);

  const std::string json = reg.to_json();
  Json root;
  ASSERT_TRUE(JsonParser(json).parse(&root)) << json;
  ASSERT_EQ(root.kind, Json::Kind::kObject);
  ASSERT_TRUE(root.has("counters"));
  ASSERT_TRUE(root.has("gauges"));
  ASSERT_TRUE(root.has("histograms"));

  const Json& counters = root.at("counters");
  ASSERT_TRUE(counters.has("scrub.requests"));
  EXPECT_DOUBLE_EQ(counters.at("scrub.requests").number, 17.0);

  const Json& gauges = root.at("gauges");
  ASSERT_TRUE(gauges.has("idle.utilization"));
  EXPECT_NEAR(gauges.at("idle.utilization").number, 0.42, 1e-9);

  const Json& hist = root.at("histograms").at("fg.latency");
  for (const char* key :
       {"count", "mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms",
        "p99_ms"}) {
    EXPECT_TRUE(hist.has(key)) << key;
  }
  EXPECT_DOUBLE_EQ(hist.at("count").number, 100.0);
  EXPECT_DOUBLE_EQ(hist.at("min_ms").number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("max_ms").number, 100.0);

  // Deterministic: same registry, same string.
  EXPECT_EQ(json, reg.to_json());
}

TEST(RegistryTest, WriteJsonFileRoundTrips) {
  Registry reg;
  reg.counter("x").add(5);
  const std::string path = testing::TempDir() + "pscrub_test_metrics.json";
  ASSERT_TRUE(reg.write_json_file(path));
  Json root;
  ASSERT_TRUE(JsonParser(read_file(path)).parse(&root));
  EXPECT_DOUBLE_EQ(root.at("counters").at("x").number, 5.0);
  std::remove(path.c_str());
}

TEST(RegistryTest, EmptyHistogramAppearsInJsonWithZeroCount) {
  // The empty-histogram contract: percentile() returns 0 for every p, and
  // a registered-but-never-recorded histogram still renders as a complete
  // {"count": 0, ...} object (consumers can tell "no samples" from
  // "missing series").
  Registry reg;
  LatencyHistogram& h = reg.histogram("never.recorded");
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 0) << "p=" << p;
  }

  Json root;
  ASSERT_TRUE(JsonParser(reg.to_json()).parse(&root));
  ASSERT_TRUE(root.at("histograms").has("never.recorded"));
  const Json& hist = root.at("histograms").at("never.recorded");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 0.0);
  for (const char* key :
       {"mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"}) {
    ASSERT_TRUE(hist.has(key)) << key;
    EXPECT_DOUBLE_EQ(hist.at(key).number, 0.0) << key;
  }
}

TEST(RegistryTest, MergeOfEmptyRegistryIsIdentity) {
  Registry a;
  a.counter("c").add(7);
  a.gauge("g").set(1.5);
  a.histogram("h").record(kMillisecond);
  const std::string before = a.to_json();

  a.merge(Registry());
  EXPECT_EQ(a.to_json(), before);

  // Merging INTO an empty registry copies everything.
  Registry empty;
  empty.merge(a);
  EXPECT_EQ(empty.to_json(), before);
}

TEST(RegistryTest, MergeEmptyHistogramStillRegistersName) {
  Registry src;
  src.histogram("quiet");  // registered, zero samples
  Registry dst;
  dst.merge(src);
  EXPECT_TRUE(dst.has_histogram("quiet"));
  EXPECT_EQ(dst.histogram("quiet").count(), 0);
}

TEST(RegistryTest, SelfMergeDoublesCountersKeepsGauges) {
  Registry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(2.5);
  reg.histogram("h").record(3 * kMillisecond);
  reg.merge(reg);
  EXPECT_EQ(reg.counter("c").value(), 10);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);  // last merge wins
  EXPECT_EQ(reg.histogram("h").count(), 2);
}

TEST(RegistryTest, MergeDisjointNamesIsAUnion) {
  Registry a, b;
  a.counter("only.a").add(1);
  a.gauge("gauge.a").set(1.0);
  b.counter("only.b").add(2);
  b.histogram("hist.b").record(kMillisecond);
  a.merge(b);
  EXPECT_EQ(a.counter("only.a").value(), 1);
  EXPECT_EQ(a.counter("only.b").value(), 2);
  EXPECT_DOUBLE_EQ(a.gauge("gauge.a").value(), 1.0);
  EXPECT_EQ(a.histogram("hist.b").count(), 1);
  EXPECT_EQ(a.size(), 4u);
}

TEST(RegistryTest, RepeatedMergeIsAssociative) {
  // (a + b) + c must equal a + (b + c) -- the property exp::sweep's
  // ordered per-task merge rests on.
  auto make = [](std::int64_t base) {
    Registry r;
    r.counter("c").add(base);
    r.gauge("g").set(static_cast<double>(base));
    r.histogram("h").record(base * kMillisecond);
    return r;
  };
  const Registry a = make(1), b = make(2), c = make(3);

  Registry left;  // (a + b) + c
  left.merge(a);
  left.merge(b);
  left.merge(c);

  Registry bc;  // a + (b + c)
  bc.merge(b);
  bc.merge(c);
  Registry right;
  right.merge(a);
  right.merge(bc);

  EXPECT_EQ(left.to_json(), right.to_json());
  EXPECT_EQ(left.counter("c").value(), 6);
  EXPECT_DOUBLE_EQ(left.gauge("g").value(), 3.0);
  EXPECT_EQ(left.histogram("h").count(), 3);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledTracerIsNoOp) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  // Every emit on a disabled tracer must be safe.
  t.span(Track::kDisk, "disk", "read", 0, kMillisecond, {{"lbn", 42}});
  t.instant(Track::kPolicy, "policy", "decide", kSecond);
  t.counter(Track::kRaid, "raid", "percent", kSecond, 50.0);
  t.close();
  EXPECT_FALSE(t.enabled());
}

TEST(TracerTest, TraceFileIsValidChromeTraceJson) {
  const std::string path = testing::TempDir() + "pscrub_test_trace.json";
  {
    Tracer t;
    ASSERT_TRUE(t.open(path));
    EXPECT_TRUE(t.enabled());
    t.span(Track::kDisk, "disk", "read", kMillisecond, 3 * kMillisecond,
           {{"lbn", std::int64_t{1234}}, {"sectors", 8}});
    t.span(Track::kScrubber, "scrub", "verify", 2 * kMillisecond,
           5 * kMillisecond);
    t.instant(Track::kPolicy, "policy", "decide: scrub", 4 * kMillisecond,
              {{"policy", "waiting"}, {"idle_ms", 12.5}});
    t.counter(Track::kRaid, "raid.rebuild_progress", "percent",
              6 * kMillisecond, 37.5);
    t.close();
    EXPECT_FALSE(t.enabled());
    t.close();  // idempotent
  }

  Json root;
  const std::string text = read_file(path);
  ASSERT_TRUE(JsonParser(text).parse(&root)) << text;
  ASSERT_EQ(root.kind, Json::Kind::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::kArray);

  int spans = 0, instants = 0, counters = 0, metadata = 0;
  bool saw_disk_track_name = false;
  for (const Json& e : events.items) {
    ASSERT_EQ(e.kind, Json::Kind::kObject);
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("name"));
    const std::string ph = e.at("ph").str;
    if (ph == "M") {
      ++metadata;
      if (e.at("name").str == "thread_name" &&
          e.at("args").at("name").str == "disk") {
        saw_disk_track_name = true;
      }
      continue;
    }
    // Every real event carries a timestamp and a track id.
    ASSERT_TRUE(e.has("ts")) << e.at("name").str;
    ASSERT_TRUE(e.has("tid")) << e.at("name").str;
    if (ph == "X") {
      ++spans;
      ASSERT_TRUE(e.has("dur"));
      EXPECT_GE(e.at("dur").number, 0.0);
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "C") {
      ++counters;
    } else {
      ADD_FAILURE() << "unexpected phase: " << ph;
    }
  }
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_GE(metadata, 2);  // process_name + per-track thread_names
  EXPECT_TRUE(saw_disk_track_name);

  // Timestamps are sim-time microseconds: the read span starts at 1 ms.
  bool found_read = false;
  for (const Json& e : events.items) {
    if (e.at("ph").str == "X" && e.at("name").str == "read") {
      found_read = true;
      EXPECT_NEAR(e.at("ts").number, 1000.0, 1e-6);
      EXPECT_NEAR(e.at("dur").number, 2000.0, 1e-6);
      EXPECT_DOUBLE_EQ(e.at("args").at("lbn").number, 1234.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("sectors").number, 8.0);
    }
  }
  EXPECT_TRUE(found_read);
  std::remove(path.c_str());
}

TEST(TracerTest, GlobalSingletonsAreStable) {
  EXPECT_EQ(&Tracer::global(), &Tracer::global());
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

// ---------------------------------------------------------------------------
// parse_positive_env: the strict parser behind PSCRUB_TIMELINE_WINDOW_MS
// and PSCRUB_SWEEP_WORKERS. A typo must degrade to the default (nullopt)
// rather than silently parse as 0 the way atoll would.

TEST(ParsePositiveEnv, AcceptsPositiveIntegersUpToMax) {
  EXPECT_EQ(parse_positive_env("T", "1", 100), 1);
  EXPECT_EQ(parse_positive_env("T", "42", 100), 42);
  EXPECT_EQ(parse_positive_env("T", "100", 100), 100);  // max inclusive
}

TEST(ParsePositiveEnv, UnsetOrEmptyIsSilentlyAbsent) {
  EXPECT_EQ(parse_positive_env("T", nullptr, 100), std::nullopt);
  EXPECT_EQ(parse_positive_env("T", "", 100), std::nullopt);
}

TEST(ParsePositiveEnv, RejectsNonNumericText) {
  EXPECT_EQ(parse_positive_env("T", "abc", 100), std::nullopt);
  EXPECT_EQ(parse_positive_env("T", "  ", 100), std::nullopt);
}

TEST(ParsePositiveEnv, RejectsTrailingGarbage) {
  // "100ms" is the classic mistake for a _MS-suffixed variable.
  EXPECT_EQ(parse_positive_env("T", "100ms", 1000), std::nullopt);
  EXPECT_EQ(parse_positive_env("T", "5 ", 100), std::nullopt);
}

TEST(ParsePositiveEnv, RejectsNonPositiveAndOutOfRange) {
  EXPECT_EQ(parse_positive_env("T", "0", 100), std::nullopt);
  EXPECT_EQ(parse_positive_env("T", "-3", 100), std::nullopt);
  EXPECT_EQ(parse_positive_env("T", "101", 100), std::nullopt);
  // Overflows long long entirely (ERANGE path).
  EXPECT_EQ(parse_positive_env("T", "99999999999999999999999999", 100),
            std::nullopt);
}

// parse_positive_double_env: the shared strict parser behind
// PSCRUB_BENCH_SCALE. Same loud-fallback contract as the integer one.

TEST(ParsePositiveDoubleEnv, AcceptsPositiveRealsUpToMax) {
  EXPECT_EQ(parse_positive_double_env("S", "0.5", 100.0), 0.5);
  EXPECT_EQ(parse_positive_double_env("S", "2", 100.0), 2.0);
  EXPECT_EQ(parse_positive_double_env("S", "1e2", 100.0), 100.0);  // max
  EXPECT_EQ(parse_positive_double_env("S", ".25", 100.0), 0.25);
}

TEST(ParsePositiveDoubleEnv, UnsetOrEmptyIsSilentlyAbsent) {
  EXPECT_EQ(parse_positive_double_env("S", nullptr, 100.0), std::nullopt);
  EXPECT_EQ(parse_positive_double_env("S", "", 100.0), std::nullopt);
}

TEST(ParsePositiveDoubleEnv, RejectsGarbageAndTrailingText) {
  EXPECT_EQ(parse_positive_double_env("S", "abc", 100.0), std::nullopt);
  EXPECT_EQ(parse_positive_double_env("S", "0.5x", 100.0), std::nullopt);
  EXPECT_EQ(parse_positive_double_env("S", "1.5 ", 100.0), std::nullopt);
}

TEST(ParsePositiveDoubleEnv, RejectsNonPositiveNonFiniteAndOutOfRange) {
  EXPECT_EQ(parse_positive_double_env("S", "0", 100.0), std::nullopt);
  EXPECT_EQ(parse_positive_double_env("S", "0.0", 100.0), std::nullopt);
  EXPECT_EQ(parse_positive_double_env("S", "-1.5", 100.0), std::nullopt);
  EXPECT_EQ(parse_positive_double_env("S", "100.01", 100.0), std::nullopt);
  // strtod coerces these to inf/nan; the strict parser must not.
  EXPECT_EQ(parse_positive_double_env("S", "1e999", 100.0), std::nullopt);
  EXPECT_EQ(parse_positive_double_env("S", "inf", 100.0), std::nullopt);
  EXPECT_EQ(parse_positive_double_env("S", "nan", 100.0), std::nullopt);
}

}  // namespace
}  // namespace pscrub::obs
