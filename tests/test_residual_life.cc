#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/residual_life.h"

namespace pscrub::stats {
namespace {

TEST(ResidualLife, BasicAccounting) {
  ResidualLife r({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(r.count(), 4u);
  EXPECT_DOUBLE_EQ(r.total_idle(), 10.0);
  EXPECT_DOUBLE_EQ(r.mean(), 2.5);
}

TEST(ResidualLife, TailWeight) {
  ResidualLife r({1.0, 1.0, 1.0, 7.0});
  // The largest 25% of intervals (the single 7.0) holds 70% of idle time.
  EXPECT_DOUBLE_EQ(r.tail_weight(0.25), 0.7);
  EXPECT_DOUBLE_EQ(r.tail_weight(1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.tail_weight(0.0), 0.0);
}

TEST(ResidualLife, MeanResidualExact) {
  ResidualLife r({2.0, 4.0, 10.0});
  // After 3 s: survivors {4, 10}; E[X - 3 | X > 3] = (1 + 7) / 2 = 4.
  EXPECT_DOUBLE_EQ(r.mean_residual(3.0), 4.0);
  // Nothing survives 10 s.
  EXPECT_DOUBLE_EQ(r.mean_residual(10.0), 0.0);
}

TEST(ResidualLife, UsableFraction) {
  ResidualLife r({2.0, 4.0, 10.0});
  // Waiting 3 s: usable = (4-3) + (10-3) = 8 of 16 total.
  EXPECT_DOUBLE_EQ(r.usable_fraction(3.0), 0.5);
  EXPECT_DOUBLE_EQ(r.usable_fraction(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.usable_fraction(100.0), 0.0);
}

TEST(ResidualLife, Survival) {
  ResidualLife r({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(r.survival(2.5), 0.5);
  EXPECT_DOUBLE_EQ(r.survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.survival(4.0), 0.0);
}

TEST(ResidualLife, ResidualQuantile) {
  ResidualLife r({1.0, 10.0, 20.0, 30.0});
  // After 5: survivors {10, 20, 30}; median residual = 15.
  EXPECT_DOUBLE_EQ(r.residual_quantile(5.0, 0.5), 15.0);
}

TEST(ResidualLife, ExponentialIsMemoryless) {
  // For exponential idle times the mean residual life is flat -- the
  // paper's TPC-C case. Our traces must NOT look like this.
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 300000; ++i) xs.push_back(rng.exponential(1.0));
  ResidualLife r(std::move(xs));
  const double at0 = r.mean_residual(0.0);
  const double at1 = r.mean_residual(1.0);
  const double at2 = r.mean_residual(2.0);
  EXPECT_NEAR(at1 / at0, 1.0, 0.05);
  EXPECT_NEAR(at2 / at0, 1.0, 0.08);
}

TEST(ResidualLife, HeavyTailHasIncreasingMeanResidual) {
  // Lognormal(sigma=2.5): decreasing hazard ==> mean residual life grows
  // with age (Fig 11's shape).
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 300000; ++i) xs.push_back(rng.lognormal(0.0, 2.5));
  ResidualLife r(std::move(xs));
  const double early = r.mean_residual(0.01);
  const double late = r.mean_residual(10.0);
  EXPECT_GT(late, 3.0 * early);
}

TEST(ResidualLife, HazardDecreasesForHeavyTail) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 300000; ++i) xs.push_back(rng.lognormal(0.0, 2.0));
  ResidualLife r(std::move(xs));
  // Hazard *rate*: conditional exit probability per unit time.
  const double rate_early = r.hazard(0.1, 0.1) / 0.1;
  const double rate_late = r.hazard(10.0, 10.0) / 10.0;
  EXPECT_GT(rate_early, 3.0 * rate_late);
}

TEST(ResidualLife, TailConcentration80In15) {
  // The paper's headline: >= 80% of idle time in <= 15% of intervals, for
  // heavy-tailed idle distributions.
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 200000; ++i) xs.push_back(rng.lognormal(0.0, 2.5));
  ResidualLife r(std::move(xs));
  EXPECT_GT(r.tail_weight(0.15), 0.8);
}

TEST(ResidualLife, EmptyInput) {
  ResidualLife r({});
  EXPECT_DOUBLE_EQ(r.mean_residual(1.0), 0.0);
  EXPECT_DOUBLE_EQ(r.usable_fraction(1.0), 0.0);
  EXPECT_DOUBLE_EQ(r.tail_weight(0.5), 0.0);
  EXPECT_DOUBLE_EQ(r.survival(0.0), 0.0);
}

}  // namespace
}  // namespace pscrub::stats
