// pscrub-lint's own test suite: every rule must fire exactly once on its
// violation fixture, produce nothing on the clean fixtures, honor allow
// markers and rule selection, and exit with the documented codes. The
// binary under test and the fixture directory come in via compile
// definitions (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string stdout_text;
};

/// Runs the lint binary with `args`, capturing stdout (diagnostics). The
/// stderr summary line is dropped.
LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(PSCRUB_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun run;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.stdout_text.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(PSCRUB_LINT_FIXTURES) + "/" + name;
}

int count_lines(const std::string& text) {
  int lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

/// A violation fixture must yield exactly one diagnostic, tagged with the
/// expected rule, pointing into the fixture file, with exit code 1.
void expect_single_diagnostic(const std::string& file, const std::string& rule) {
  const LintRun run = run_lint(fixture(file));
  EXPECT_EQ(run.exit_code, 1) << run.stdout_text;
  EXPECT_EQ(count_lines(run.stdout_text), 1) << run.stdout_text;
  EXPECT_NE(run.stdout_text.find("[" + rule + "]"), std::string::npos)
      << run.stdout_text;
  EXPECT_NE(run.stdout_text.find(file), std::string::npos) << run.stdout_text;
}

/// A near-miss fixture sits just outside a rule's heuristics and must
/// produce nothing at all.
void expect_clean(const std::string& file) {
  const LintRun run = run_lint(fixture(file));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintFixtures, WallClockFiresExactlyOnce) {
  expect_single_diagnostic("wall_clock.cc", "wall-clock");
}

TEST(LintFixtures, UnseededRngFiresExactlyOnce) {
  expect_single_diagnostic("unseeded_rng.cc", "unseeded-rng");
}

TEST(LintFixtures, UnorderedContainerFiresExactlyOnce) {
  expect_single_diagnostic("unordered_iter.cc", "unordered-container");
}

TEST(LintFixtures, FloatAccumFiresExactlyOnce) {
  expect_single_diagnostic("float_accum.cc", "float-accum");
}

TEST(LintFixtures, FloatAccumPrefixSumFiresExactlyOnce) {
  // The prefix-sum shape specifically: a std::reduce total must fire, the
  // fixed-index-order prefix loop next to it must stay clean.
  expect_single_diagnostic("float_accum_prefix_sum.cc", "float-accum");
}

TEST(LintFixtures, ExceptionSwallowFiresExactlyOnce) {
  expect_single_diagnostic("exception_swallow.cc", "exception-swallow");
}

TEST(LintFixtures, SimTimeOverflowFiresExactlyOnce) {
  // The ns * ns product shape; the literal-chain and narrowing-cast
  // shapes are covered by the near-miss fixture staying clean.
  expect_single_diagnostic("sim_time_overflow.cc", "sim-time-overflow");
}

TEST(LintFixtures, SimTimeNearMissesStayClean) {
  // In-rank literal chains, suffix-led chains, divide-down-then-scale,
  // wide casts, and narrow casts on non-sim-time values.
  expect_clean("sim_time_clean.cc");
}

TEST(LintFixtures, CheckpointFloatReachedThroughCallEdgeFires) {
  // The float leak is in an un-annotated helper; only the whole-program
  // closure walking the call edge from the annotated codec finds it.
  expect_single_diagnostic("codec_float.cc", "checkpoint-integer-only");
}

TEST(LintFixtures, CheckpointIntegerOnlyDoesNotLeakToNeighbors) {
  // A double-using function NEXT TO the codec, but unreachable from it,
  // must not be flagged.
  expect_clean("codec_integer_clean.cc");
}

TEST(LintFixtures, EnvHygieneFiresExactlyOnce) {
  expect_single_diagnostic("env_hygiene.cc", "env-hygiene");
}

TEST(LintFixtures, EnvShimAnnotationBlessesTheParse) {
  expect_clean("env_hygiene_clean.cc");
}

TEST(LintFixtures, MutableGlobalInSweepFiresExactlyOnce) {
  expect_single_diagnostic("mutable_global_sweep.cc",
                           "mutable-global-in-sweep");
}

TEST(LintFixtures, ConstGlobalsAndNonSweepMutationStayClean) {
  expect_clean("mutable_global_clean.cc");
}

TEST(LintFixtures, UnknownAllowIdSurfacesAsItsOwnDiagnostic) {
  expect_single_diagnostic("unknown_allow.cc", "unknown-suppression");
}

TEST(LintFixtures, CleanFixtureProducesNoDiagnostics) {
  const LintRun run = run_lint(fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintFixtures, AllowMarkersSuppressEveryForm) {
  // allow-file, trailing same-line allow, and preceding-line allow.
  const LintRun run = run_lint(fixture("allow_marker.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, RuleSelectionScopesTheScan) {
  // With only wall-clock enabled, the unseeded-rng fixture is clean.
  const LintRun run =
      run_lint("--rules=wall-clock " + fixture("unseeded_rng.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, NegatedRuleSelectionDisablesJustThatRule) {
  // --rules=-float-accum: the float-accum fixture goes quiet...
  const LintRun off =
      run_lint("--rules=-float-accum " + fixture("float_accum.cc"));
  EXPECT_EQ(off.exit_code, 0) << off.stdout_text;
  EXPECT_EQ(off.stdout_text, "");
  // ...while every other rule stays armed.
  const LintRun on =
      run_lint("--rules=-float-accum " + fixture("wall_clock.cc"));
  EXPECT_EQ(on.exit_code, 1) << on.stdout_text;
  EXPECT_NE(on.stdout_text.find("[wall-clock]"), std::string::npos)
      << on.stdout_text;
}

TEST(LintDriver, MixedPositiveAndNegatedRulesIsAUsageError) {
  const LintRun run =
      run_lint("--rules=wall-clock,-float-accum " + fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintDriver, UnknownRuleIsAUsageError) {
  const LintRun run = run_lint("--rules=no-such-rule " + fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintDriver, ExcludeAppliesBeforeAnyIo) {
  // The excluded path does not even exist: a stat or read would fail with
  // exit 2, so exit 0 proves exclusion is substring-on-the-path, pre-I/O.
  const LintRun run =
      run_lint("--exclude=does_not_exist " + fixture("does_not_exist.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, ExcludeIsRepeatableAndPositionIndependent) {
  // Two excludes silence two different violation fixtures...
  const LintRun both =
      run_lint("--exclude=wall_clock --exclude=unseeded " +
               fixture("wall_clock.cc") + " " + fixture("unseeded_rng.cc"));
  EXPECT_EQ(both.exit_code, 0) << both.stdout_text;
  EXPECT_EQ(both.stdout_text, "");
  // ...and a flag AFTER the positional path still applies to it.
  const LintRun after =
      run_lint(fixture("wall_clock.cc") + " --exclude=wall_clock");
  EXPECT_EQ(after.exit_code, 0) << after.stdout_text;
  EXPECT_EQ(after.stdout_text, "");
}

TEST(LintDriver, BaselineRoundTripSuppressesExistingFindings) {
  const std::string baseline = testing::TempDir() + "lint_baseline.txt";
  const LintRun write =
      run_lint("--write-baseline=" + baseline + " " +
               fixture("sim_time_overflow.cc"));
  EXPECT_EQ(write.exit_code, 0) << write.stdout_text;  // never gates
  const LintRun read = run_lint("--baseline=" + baseline + " " +
                                fixture("sim_time_overflow.cc"));
  EXPECT_EQ(read.exit_code, 0) << read.stdout_text;
  EXPECT_EQ(read.stdout_text, "");
  // Stale entries (baseline names a finding that no longer fires) must
  // not gate either -- they are only counted on stderr.
  const LintRun stale =
      run_lint("--baseline=" + baseline + " " + fixture("clean.cc"));
  EXPECT_EQ(stale.exit_code, 0) << stale.stdout_text;
  std::remove(baseline.c_str());
}

TEST(LintDriver, CacheWarmRunIsByteIdenticalToCold) {
  const std::string cache = testing::TempDir() + "lint_cache.txt";
  std::remove(cache.c_str());
  const std::string args = "--cache=" + cache + " " +
                           fixture("sim_time_overflow.cc") + " " +
                           fixture("env_hygiene.cc") + " " +
                           fixture("unknown_allow.cc") + " " +
                           fixture("clean.cc");
  const LintRun cold = run_lint(args);
  const LintRun warm = run_lint(args);
  EXPECT_EQ(cold.exit_code, 1);
  EXPECT_EQ(warm.exit_code, 1);
  EXPECT_EQ(cold.stdout_text, warm.stdout_text);
  EXPECT_EQ(count_lines(cold.stdout_text), 3) << cold.stdout_text;
  std::remove(cache.c_str());
}

TEST(LintDriver, SarifOutputHasTheGitHubShape) {
  const LintRun run =
      run_lint("--format=sarif " + fixture("env_hygiene.cc"));
  EXPECT_EQ(run.exit_code, 1);
  for (const char* needle :
       {"\"version\": \"2.1.0\"", "sarif-schema-2.1.0.json", "\"ruleId\"",
        "\"physicalLocation\"", "\"artifactLocation\"", "\"startLine\": 9",
        "\"uriBaseId\": \"SRCROOT\"", "\"level\": \"error\"",
        "\"id\": \"env-hygiene\""}) {
    EXPECT_NE(run.stdout_text.find(needle), std::string::npos) << needle;
  }
}

TEST(LintDriver, JsonOutputListsDiagnostics) {
  const LintRun run = run_lint("--format=json " + fixture("env_hygiene.cc"));
  EXPECT_EQ(run.exit_code, 1);
  for (const char* needle : {"\"diagnostics\"", "\"rule\": \"env-hygiene\"",
                             "\"line\": 9"}) {
    EXPECT_NE(run.stdout_text.find(needle), std::string::npos) << needle;
  }
}

TEST(LintDriver, MissingPathIsAnIoError) {
  const LintRun run = run_lint(fixture("does_not_exist.cc"));
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintDriver, ListRulesNamesTheWholeSuiteWithFamilies) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"wall-clock", "unseeded-rng", "unordered-container", "float-accum",
        "exception-swallow", "sim-time-overflow", "checkpoint-integer-only",
        "env-hygiene", "mutable-global-in-sweep"}) {
    EXPECT_NE(run.stdout_text.find(rule), std::string::npos) << rule;
  }
  for (const char* family :
       {"determinism", "sim-time", "checkpoint", "hygiene"}) {
    EXPECT_NE(run.stdout_text.find(family), std::string::npos) << family;
  }
}

TEST(LintSelfCheck, EveryRuleIdReferencedByFixturesExists) {
  // Every rule id this suite pins a fixture to must exist per
  // --list-rules, so a rule rename cannot orphan a fixture silently.
  // (allow(...) markers across the tree get the same guarantee from the
  // always-on unknown-suppression pseudo-rule plus the full-tree-clean
  // gate below.)
  const LintRun rules = run_lint("--list-rules");
  ASSERT_EQ(rules.exit_code, 0);
  for (const char* referenced :
       {"wall-clock", "unseeded-rng", "unordered-container", "float-accum",
        "exception-swallow", "sim-time-overflow", "checkpoint-integer-only",
        "env-hygiene", "mutable-global-in-sweep"}) {
    EXPECT_NE(rules.stdout_text.find(referenced), std::string::npos)
        << "fixture references unknown rule id: " << referenced;
  }
}

TEST(LintDriver, DirectoryWalkExcludesFixturesByDefault) {
  // Walking the fixtures' parent directory must skip the lint_fixtures
  // violations (they are excluded from directory walks by default), so
  // the only way to lint them is to name them explicitly.
  const LintRun run =
      run_lint("--rules=wall-clock " + std::string(PSCRUB_LINT_FIXTURES));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, ReportToolIsClean) {
  // pscrub-report ships in releases (unlike the fixtures); pin its own
  // directory explicitly so a future tree-walk exclusion cannot silently
  // drop it from the gate.
  const LintRun run =
      run_lint(std::string(PSCRUB_SOURCE_DIR) + "/tools/pscrub-report");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, FullTreeIsCleanAndDeterministic) {
  // The acceptance gate, plus a determinism check on the linter itself:
  // two runs over the whole tree produce identical (empty) output.
  const std::string roots = std::string(PSCRUB_SOURCE_DIR) + "/src " +
                            PSCRUB_SOURCE_DIR + "/bench " +
                            PSCRUB_SOURCE_DIR + "/examples " +
                            PSCRUB_SOURCE_DIR + "/tests " +
                            PSCRUB_SOURCE_DIR + "/tools";
  const LintRun first = run_lint(roots);
  const LintRun second = run_lint(roots);
  EXPECT_EQ(first.exit_code, 0) << first.stdout_text;
  EXPECT_EQ(first.stdout_text, second.stdout_text);
}

}  // namespace
