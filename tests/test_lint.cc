// pscrub-lint's own test suite: every rule must fire exactly once on its
// violation fixture, produce nothing on the clean fixtures, honor allow
// markers and rule selection, and exit with the documented codes. The
// binary under test and the fixture directory come in via compile
// definitions (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string stdout_text;
};

/// Runs the lint binary with `args`, capturing stdout (diagnostics). The
/// stderr summary line is dropped.
LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(PSCRUB_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun run;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.stdout_text.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(PSCRUB_LINT_FIXTURES) + "/" + name;
}

int count_lines(const std::string& text) {
  int lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

/// A violation fixture must yield exactly one diagnostic, tagged with the
/// expected rule, pointing into the fixture file, with exit code 1.
void expect_single_diagnostic(const std::string& file, const std::string& rule) {
  const LintRun run = run_lint(fixture(file));
  EXPECT_EQ(run.exit_code, 1) << run.stdout_text;
  EXPECT_EQ(count_lines(run.stdout_text), 1) << run.stdout_text;
  EXPECT_NE(run.stdout_text.find("[" + rule + "]"), std::string::npos)
      << run.stdout_text;
  EXPECT_NE(run.stdout_text.find(file), std::string::npos) << run.stdout_text;
}

TEST(LintFixtures, WallClockFiresExactlyOnce) {
  expect_single_diagnostic("wall_clock.cc", "wall-clock");
}

TEST(LintFixtures, UnseededRngFiresExactlyOnce) {
  expect_single_diagnostic("unseeded_rng.cc", "unseeded-rng");
}

TEST(LintFixtures, UnorderedContainerFiresExactlyOnce) {
  expect_single_diagnostic("unordered_iter.cc", "unordered-container");
}

TEST(LintFixtures, FloatAccumFiresExactlyOnce) {
  expect_single_diagnostic("float_accum.cc", "float-accum");
}

TEST(LintFixtures, FloatAccumPrefixSumFiresExactlyOnce) {
  // The prefix-sum shape specifically: a std::reduce total must fire, the
  // fixed-index-order prefix loop next to it must stay clean.
  expect_single_diagnostic("float_accum_prefix_sum.cc", "float-accum");
}

TEST(LintFixtures, ExceptionSwallowFiresExactlyOnce) {
  expect_single_diagnostic("exception_swallow.cc", "exception-swallow");
}

TEST(LintFixtures, CleanFixtureProducesNoDiagnostics) {
  const LintRun run = run_lint(fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintFixtures, AllowMarkersSuppressEveryForm) {
  // allow-file, trailing same-line allow, and preceding-line allow.
  const LintRun run = run_lint(fixture("allow_marker.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, RuleSelectionScopesTheScan) {
  // With only wall-clock enabled, the unseeded-rng fixture is clean.
  const LintRun run =
      run_lint("--rules=wall-clock " + fixture("unseeded_rng.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, UnknownRuleIsAUsageError) {
  const LintRun run = run_lint("--rules=no-such-rule " + fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintDriver, MissingPathIsAnIoError) {
  const LintRun run = run_lint(fixture("does_not_exist.cc"));
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintDriver, ListRulesNamesTheWholeSuite) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"wall-clock", "unseeded-rng", "unordered-container", "float-accum",
        "exception-swallow"}) {
    EXPECT_NE(run.stdout_text.find(rule), std::string::npos) << rule;
  }
}

TEST(LintDriver, DirectoryWalkExcludesFixturesByDefault) {
  // Walking the fixtures' parent directory must skip the lint_fixtures
  // violations (they are excluded from directory walks by default), so
  // the only way to lint them is to name them explicitly.
  const LintRun run =
      run_lint("--rules=wall-clock " + std::string(PSCRUB_LINT_FIXTURES));
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, ReportToolIsClean) {
  // pscrub-report ships in releases (unlike the fixtures); pin its own
  // directory explicitly so a future tree-walk exclusion cannot silently
  // drop it from the gate.
  const LintRun run =
      run_lint(std::string(PSCRUB_SOURCE_DIR) + "/tools/pscrub-report");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(LintDriver, FullTreeIsCleanAndDeterministic) {
  // The acceptance gate, plus a determinism check on the linter itself:
  // two runs over the whole tree produce identical (empty) output.
  const std::string roots = std::string(PSCRUB_SOURCE_DIR) + "/src " +
                            PSCRUB_SOURCE_DIR + "/bench " +
                            PSCRUB_SOURCE_DIR + "/examples " +
                            PSCRUB_SOURCE_DIR + "/tests " +
                            PSCRUB_SOURCE_DIR + "/tools";
  const LintRun first = run_lint(roots);
  const LintRun second = run_lint(roots);
  EXPECT_EQ(first.exit_code, 0) << first.stdout_text;
  EXPECT_EQ(first.stdout_text, second.stdout_text);
}

}  // namespace
