#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/ar_model.h"

namespace pscrub::stats {
namespace {

// Generates an AR(1) series x_t = mu + phi (x_{t-1} - mu) + eps.
std::vector<double> ar1_series(double mu, double phi, double noise_sd,
                               std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  double x = mu;
  for (std::size_t i = 0; i < n; ++i) {
    x = mu + phi * (x - mu) + rng.normal(0.0, noise_sd);
    xs.push_back(x);
  }
  return xs;
}

TEST(ArFit, RecoversAr1Coefficient) {
  const auto xs = ar1_series(10.0, 0.7, 1.0, 20000, 3);
  const ArModel m = fit_ar(xs, 1);
  ASSERT_EQ(m.order(), 1u);
  EXPECT_NEAR(m.coeffs[0], 0.7, 0.03);
  EXPECT_NEAR(m.mu, 10.0, 0.2);
  EXPECT_NEAR(m.noise_variance, 1.0, 0.1);
}

TEST(ArFit, RecoversAr2Coefficients) {
  // x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + eps (mu = 0).
  Rng rng(5);
  std::vector<double> xs{0.0, 0.0};
  for (int i = 0; i < 30000; ++i) {
    const double x = 0.5 * xs[xs.size() - 1] + 0.3 * xs[xs.size() - 2] +
                     rng.normal(0.0, 1.0);
    xs.push_back(x);
  }
  const ArModel m = fit_ar(xs, 2);
  ASSERT_EQ(m.order(), 2u);
  EXPECT_NEAR(m.coeffs[0], 0.5, 0.04);
  EXPECT_NEAR(m.coeffs[1], 0.3, 0.04);
}

TEST(ArFit, WhiteNoiseCoefficientsNearZero) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const ArModel m = fit_ar(xs, 3);
  for (double a : m.coeffs) EXPECT_NEAR(a, 0.0, 0.03);
}

TEST(ArFit, ForecastMovesTowardMeanFromBelow) {
  const auto xs = ar1_series(10.0, 0.7, 1.0, 20000, 3);
  const ArModel m = fit_ar(xs, 1);
  const std::vector<double> history{4.0};  // far below the mean
  const double f = m.forecast(history);
  EXPECT_GT(f, 4.0);
  EXPECT_LT(f, 10.0);
}

TEST(ArFit, ConstantSeriesDegeneratesGracefully) {
  std::vector<double> xs(100, 5.0);
  const ArModel m = fit_ar(xs, 2);
  EXPECT_DOUBLE_EQ(m.mu, 5.0);
  EXPECT_DOUBLE_EQ(m.noise_variance, 0.0);
}

TEST(ArFit, InsufficientDataReturnsEmpty) {
  std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(fit_ar(xs, 5).order(), 0u);
}

TEST(ArAic, PicksLowOrderForAr1) {
  const auto xs = ar1_series(0.0, 0.6, 1.0, 10000, 11);
  const ArModel m = fit_ar_aic(xs, 12);
  EXPECT_GE(m.order(), 1u);
  EXPECT_LE(m.order(), 4u) << "AIC should not wildly overfit an AR(1)";
}

TEST(ArAic, StationaryVarianceSensible) {
  const auto xs = ar1_series(0.0, 0.6, 1.0, 10000, 11);
  const ArModel m = fit_ar_aic(xs, 12);
  EXPECT_NEAR(m.noise_variance, 1.0, 0.15);
}

TEST(OnlineAr, PredictsMeanBeforeFit) {
  OnlineArPredictor p(256, 64);
  p.observe(2.0);
  p.observe(4.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
  EXPECT_FALSE(p.fitted());
}

TEST(OnlineAr, FitsAfterEnoughHistory) {
  OnlineArPredictor p(512, 128, 4);
  Rng rng(13);
  double x = 0.0;
  for (int i = 0; i < 600; ++i) {
    x = 0.8 * x + rng.normal(0.0, 1.0);
    p.observe(x + 10.0);
  }
  EXPECT_TRUE(p.fitted());
  // Prediction from the latest state should be finite, non-negative.
  const double f = p.predict();
  EXPECT_GE(f, 0.0);
  EXPECT_LT(f, 100.0);
}

TEST(OnlineAr, TracksCorrelatedSeriesBetterThanMean) {
  // On a strongly autocorrelated series, AR one-step forecasts must beat
  // the constant-mean forecast in squared error.
  // A positive-mean series: the predictor clamps negative forecasts to 0
  // (durations are non-negative), so a zero-mean series would be unfair.
  OnlineArPredictor p(1024, 128, 6);
  Rng rng(17);
  double x = 20.0;
  double ar_se = 0.0;
  double mean_se = 0.0;
  double running_mean = 0.0;
  int n = 0;
  for (int i = 0; i < 8000; ++i) {
    const double next = 20.0 + 0.9 * (x - 20.0) + rng.normal(0.0, 1.0);
    if (i > 1000) {
      const double f = p.predict();
      ar_se += (next - f) * (next - f);
      mean_se += (next - running_mean) * (next - running_mean);
      ++n;
    }
    p.observe(next);
    running_mean += (next - running_mean) / (i + 1);
    x = next;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(ar_se, mean_se * 0.6);
}

TEST(OnlineAr, WindowBoundsMemory) {
  OnlineArPredictor p(128, 32);
  for (int i = 0; i < 100000; ++i) p.observe(static_cast<double>(i % 7));
  // Survives a long stream; prediction stays within the series' range.
  const double f = p.predict();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 7.0);
}

}  // namespace
}  // namespace pscrub::stats
