#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/optimizer.h"
#include "disk/profile.h"
#include "trace/catalog.h"
#include "trace/synthetic.h"

namespace pscrub::core {
namespace {

trace::Trace bursty_trace() {
  trace::TraceSpec s;
  s.name = "opt-test";
  s.seed = 11;
  s.duration = 2 * kHour;
  s.target_requests = 60'000;
  s.burst_len_mean = 6.0;
  s.idle_sigma = 2.2;
  s.period = 0;
  s.diurnal_swing = 1.0;
  s.spike_hours.clear();
  return trace::SyntheticGenerator(s).generate_trace();
}

OptimizerConfig make_config() {
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  OptimizerConfig c;
  c.foreground_service = make_foreground_service(p);
  c.scrub_service = make_scrub_service(p);
  c.binary_search_iters = 10;
  return c;
}

TEST(Optimizer, DefaultGridIs64KAligned) {
  for (std::int64_t s : default_size_grid()) {
    EXPECT_EQ(s % (64 * 1024), 0);
    EXPECT_GE(s, 64 * 1024);
    EXPECT_LE(s, 4 * 1024 * 1024);
  }
}

TEST(Optimizer, ThresholdTuningMeetsGoal) {
  const trace::Trace t = bursty_trace();
  OptimizerConfig c = make_config();
  const SimTime goal = 1 * kMillisecond;
  const SizeThresholdChoice r =
      tune_threshold_for_size(t, c, 512 * 1024, goal);
  EXPECT_LE(r.achieved_mean_slowdown_ms, to_milliseconds(goal) * 1.0001);
  EXPECT_GT(r.scrub_mb_s, 0.0);
}

TEST(Optimizer, LargerGoalAllowsSmallerThreshold) {
  const trace::Trace t = bursty_trace();
  OptimizerConfig c = make_config();
  const SizeThresholdChoice tight =
      tune_threshold_for_size(t, c, 512 * 1024, kMillisecond / 2);
  const SizeThresholdChoice loose =
      tune_threshold_for_size(t, c, 512 * 1024, 4 * kMillisecond);
  EXPECT_LE(loose.threshold, tight.threshold);
  EXPECT_GE(loose.scrub_mb_s, tight.scrub_mb_s * 0.99);
}

TEST(Optimizer, MaxSlowdownCapsRequestSize) {
  const trace::Trace t = bursty_trace();
  OptimizerConfig c = make_config();
  SlowdownGoal goal;
  goal.mean = 2 * kMillisecond;
  // A very tight max slowdown admits only small requests.
  goal.max = c.scrub_service(128 * 1024);
  const SizeThresholdChoice r = optimize(t, c, goal);
  EXPECT_LE(r.request_bytes, 128 * 1024);
}

TEST(Optimizer, OptimalBeatsExtremes) {
  // The Fig 15 claim: the tuned (size, threshold) outperforms both naive
  // 64 KB and the largest size at the same slowdown goal -- or at least
  // matches the better of the two.
  const trace::Trace t = bursty_trace();
  OptimizerConfig c = make_config();
  SlowdownGoal goal;
  goal.mean = 1 * kMillisecond;

  const SizeThresholdChoice best = optimize(t, c, goal);
  const SizeThresholdChoice small =
      tune_threshold_for_size(t, c, 64 * 1024, goal.mean);
  const SizeThresholdChoice large =
      tune_threshold_for_size(t, c, 4 * 1024 * 1024, goal.mean);
  EXPECT_GE(best.scrub_mb_s, small.scrub_mb_s);
  EXPECT_GE(best.scrub_mb_s, large.scrub_mb_s);
  EXPECT_GT(best.scrub_mb_s, small.scrub_mb_s * 1.2)
      << "64 KB requests should be clearly suboptimal";
}

TEST(Optimizer, InfeasibleGoalReportsZeroThroughput) {
  // An absurdly tight goal on a trace with constant collisions.
  trace::Trace t;
  for (int i = 0; i < 2000; ++i) {
    t.records.push_back({i * 6 * kMillisecond, i * 128, 128, false});
  }
  t.duration = 2000 * 6 * kMillisecond;
  OptimizerConfig c = make_config();
  // Foreground service 5 ms, gaps 6 ms: only 1 ms idle intervals; any
  // scrubbing causes big slowdowns relative to a 1 ns goal.
  c.foreground_service = [](const trace::TraceRecord&) {
    return 5 * kMillisecond;
  };
  const SizeThresholdChoice r =
      tune_threshold_for_size(t, c, 4 * 1024 * 1024, /*goal=*/0);
  EXPECT_DOUBLE_EQ(r.scrub_mb_s, 0.0);
}

}  // namespace
}  // namespace pscrub::core
