#include <gtest/gtest.h>

#include "block/cfq_scheduler.h"

namespace pscrub::block {
namespace {

BlockRequest make(disk::Lbn lbn, IoPriority prio, SimTime submit = 0,
                  bool barrier = false) {
  BlockRequest r;
  r.cmd.kind = disk::CommandKind::kRead;
  r.cmd.lbn = lbn;
  r.cmd.sectors = 8;
  r.priority = prio;
  r.submit_time = submit;
  r.soft_barrier = barrier;
  return r;
}

DispatchContext ctx(SimTime now, SimTime idle_for) {
  DispatchContext c;
  c.now = now;
  c.disk_idle_for = idle_for;
  c.foreground_idle_for = idle_for;  // no foreground in these unit tests
  return c;
}

TEST(Cfq, RealtimePreemptsBestEffort) {
  CfqScheduler cfq;
  cfq.add(make(100, IoPriority::kBestEffort, 0));
  cfq.add(make(200, IoPriority::kRealtime, 1));
  SimTime retry = 0;
  auto r = cfq.select(ctx(2, 0), &retry);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->cmd.lbn, 200);
}

TEST(Cfq, IdleClassGatedOnIdleWindow) {
  CfqScheduler cfq;
  cfq.add(make(100, IoPriority::kIdle, 0));
  SimTime retry = 0;
  // Disk idle for only 3 ms: declined, retry in 7 ms.
  auto r = cfq.select(ctx(0, 3 * kMillisecond), &retry);
  EXPECT_FALSE(r);
  EXPECT_EQ(retry, 7 * kMillisecond);
  // After the full window, it dispatches.
  r = cfq.select(ctx(0, 10 * kMillisecond), &retry);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->cmd.lbn, 100);
}

TEST(Cfq, IdleClassNeverBeforeBestEffort) {
  CfqScheduler cfq;
  cfq.add(make(100, IoPriority::kIdle, 0));
  cfq.add(make(200, IoPriority::kBestEffort, 5));
  SimTime retry = 0;
  auto r = cfq.select(ctx(10, kSecond), &retry);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->cmd.lbn, 200) << "BE must outrank Idle even after long idleness";
}

TEST(Cfq, CustomIdleWindow) {
  CfqScheduler cfq(25 * kMillisecond);
  cfq.add(make(100, IoPriority::kIdle, 0));
  SimTime retry = 0;
  EXPECT_FALSE(cfq.select(ctx(0, 24 * kMillisecond), &retry));
  EXPECT_TRUE(cfq.select(ctx(0, 25 * kMillisecond), &retry));
}

TEST(Cfq, SoftBarrierIgnoresPriority) {
  // A soft-barrier request marked Idle must NOT be gated on the idle
  // window -- the ioctl path bypasses prioritization entirely (Fig 3).
  CfqScheduler cfq;
  cfq.add(make(100, IoPriority::kIdle, 0, /*barrier=*/true));
  SimTime retry = 0;
  auto r = cfq.select(ctx(1, 0), &retry);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->cmd.lbn, 100);
}

TEST(Cfq, SoftBarriersKeepFifoOrder) {
  CfqScheduler cfq;
  cfq.add(make(300, IoPriority::kBestEffort, 0, true));
  cfq.add(make(100, IoPriority::kBestEffort, 1, true));
  cfq.add(make(200, IoPriority::kBestEffort, 2, true));
  SimTime retry = 0;
  EXPECT_EQ(cfq.select(ctx(3, 0), &retry)->cmd.lbn, 300);
  EXPECT_EQ(cfq.select(ctx(3, 0), &retry)->cmd.lbn, 100);
  EXPECT_EQ(cfq.select(ctx(3, 0), &retry)->cmd.lbn, 200);
}

TEST(Cfq, BarrierAndSortableInterleaveByArrival) {
  CfqScheduler cfq;
  cfq.add(make(500, IoPriority::kBestEffort, 10, true));   // barrier, older
  cfq.add(make(100, IoPriority::kBestEffort, 20, false));  // sortable, newer
  SimTime retry = 0;
  EXPECT_EQ(cfq.select(ctx(30, 0), &retry)->cmd.lbn, 500);
  EXPECT_EQ(cfq.select(ctx(30, 0), &retry)->cmd.lbn, 100);
}

TEST(Cfq, SortableBeforeYoungerBarrier) {
  CfqScheduler cfq;
  cfq.add(make(100, IoPriority::kBestEffort, 10, false));
  cfq.add(make(500, IoPriority::kBestEffort, 20, true));
  SimTime retry = 0;
  EXPECT_EQ(cfq.select(ctx(30, 0), &retry)->cmd.lbn, 100);
  EXPECT_EQ(cfq.select(ctx(30, 0), &retry)->cmd.lbn, 500);
}

TEST(Cfq, SortsWithinClass) {
  CfqScheduler cfq;
  cfq.add(make(300, IoPriority::kBestEffort, 0));
  cfq.add(make(100, IoPriority::kBestEffort, 1));
  SimTime retry = 0;
  EXPECT_EQ(cfq.select(ctx(2, 0), &retry)->cmd.lbn, 100);
}

TEST(Cfq, EmptyAndSizeAccounting) {
  CfqScheduler cfq;
  EXPECT_TRUE(cfq.empty());
  cfq.add(make(1, IoPriority::kBestEffort, 0));
  cfq.add(make(2, IoPriority::kIdle, 0));
  cfq.add(make(3, IoPriority::kRealtime, 0, true));
  EXPECT_EQ(cfq.size(), 3u);
  EXPECT_FALSE(cfq.empty());
}

TEST(Cfq, FifoExpirePreventsScanStarvation) {
  // A request stuck behind the C-LOOK scan position is dispatched once it
  // ages past fifo_expire (125 ms), even though the scan would prefer the
  // onrushing sequential stream.
  CfqScheduler cfq;
  SimTime retry = 0;
  // Sequential stream at increasing LBNs; a stranded request at LBN 10.
  cfq.add(make(1000, IoPriority::kBestEffort, 0));
  EXPECT_EQ(cfq.select(ctx(0, 0), &retry)->cmd.lbn, 1000);  // scan at 1008
  cfq.add(make(10, IoPriority::kBestEffort, 1));            // behind the scan
  for (int i = 0; i < 5; ++i) {
    const SimTime now = 2 + i;
    cfq.add(make(1008 + i * 8, IoPriority::kBestEffort, now));
    EXPECT_EQ(cfq.select(ctx(now, 0), &retry)->cmd.lbn, 1008 + i * 8)
        << "young stranded request waits its turn";
  }
  // Past fifo_expire, the stranded request preempts the scan.
  cfq.add(make(2000, IoPriority::kBestEffort, 200 * kMillisecond));
  EXPECT_EQ(cfq.select(ctx(200 * kMillisecond, 0), &retry)->cmd.lbn, 10);
  EXPECT_EQ(cfq.select(ctx(200 * kMillisecond, 0), &retry)->cmd.lbn, 2000);
}

TEST(Cfq, IdleClassDoesNotResetOwnGate) {
  // After one Idle-class dispatch, further Idle requests must dispatch
  // back-to-back (foreground_idle_for keeps growing).
  CfqScheduler cfq;
  SimTime retry = 0;
  cfq.add(make(100, IoPriority::kIdle, 0));
  cfq.add(make(200, IoPriority::kIdle, 0));
  DispatchContext c;
  c.now = 20 * kMillisecond;
  c.disk_idle_for = 0;  // the previous idle verify just completed
  c.foreground_idle_for = 20 * kMillisecond;
  EXPECT_TRUE(cfq.select(c, &retry));
  EXPECT_TRUE(cfq.select(c, &retry));
}

TEST(Cfq, SelectOnEmptyReturnsNullopt) {
  CfqScheduler cfq;
  SimTime retry = 0;
  EXPECT_FALSE(cfq.select(ctx(0, kSecond), &retry));
}

}  // namespace
}  // namespace pscrub::block
