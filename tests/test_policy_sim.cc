#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/policy_sim.h"
#include "disk/profile.h"

namespace pscrub::core {
namespace {

// A trace with evenly spaced arrivals: gap 100 ms, service 5 ms, so idle
// intervals are 95 ms each.
trace::Trace regular_trace(int n = 200, SimTime gap = 100 * kMillisecond) {
  trace::Trace t;
  t.name = "regular";
  for (int i = 0; i < n; ++i) {
    t.records.push_back({i * gap, i * 128, 128, false});
  }
  t.duration = n * gap;
  return t;
}

constexpr SimTime kFgService = 5 * kMillisecond;
constexpr SimTime kScrubService = 4 * kMillisecond;

PolicySimConfig config(ScrubSizer sizer = ScrubSizer::fixed(64 * 1024)) {
  PolicySimConfig c;
  c.foreground_service = [](const trace::TraceRecord&) { return kFgService; };
  c.scrub_service = [](std::int64_t bytes) {
    return kScrubService * (bytes / (64 * 1024));
  };
  c.sizer = sizer;
  return c;
}

TEST(PolicySim, BaselineHasNoSlowdown) {
  const trace::Trace t = regular_trace();
  const PolicySimResult r = run_baseline(
      t, [](const trace::TraceRecord&) { return kFgService; });
  EXPECT_EQ(r.collisions, 0);
  EXPECT_EQ(r.slowdown_sum, 0);
  EXPECT_EQ(r.scrubbed_bytes, 0);
  EXPECT_DOUBLE_EQ(r.mean_slowdown_ms, 0.0);
}

TEST(PolicySim, WaitingCapturesEveryIntervalWhenThresholdSmall) {
  const trace::Trace t = regular_trace();
  WaitingPolicy p(10 * kMillisecond);
  const PolicySimResult r = run_policy_sim(t, p, config());
  // Every 95 ms idle interval exceeds 10 ms: each is captured, and almost
  // every one ends in a collision (an interval is collision-free only when
  // a scrub request completes exactly at the arrival instant).
  EXPECT_GT(r.collisions, (static_cast<std::int64_t>(t.size()) - 1) * 7 / 10);
  EXPECT_LE(r.collisions, static_cast<std::int64_t>(t.size()) - 1);
  EXPECT_GT(r.idle_utilization, 0.7);
  EXPECT_GT(r.scrubbed_bytes, 0);
}

TEST(PolicySim, WaitingSkipsWhenThresholdTooLarge) {
  const trace::Trace t = regular_trace();
  WaitingPolicy p(200 * kMillisecond);  // longer than every interval
  const PolicySimResult r = run_policy_sim(t, p, config());
  EXPECT_EQ(r.collisions, 0);
  EXPECT_EQ(r.scrub_requests, 0);
  EXPECT_DOUBLE_EQ(r.mean_slowdown_ms, 0.0);
}

TEST(PolicySim, UtilizationAccountsWaitLoss) {
  const trace::Trace t = regular_trace();
  WaitingPolicy small(5 * kMillisecond);
  WaitingPolicy large(50 * kMillisecond);
  const PolicySimResult rs = run_policy_sim(t, small, config());
  const PolicySimResult rl = run_policy_sim(t, large, config());
  EXPECT_GT(rs.idle_utilization, rl.idle_utilization)
      << "longer waits waste more of each captured interval";
}

TEST(PolicySim, CollisionDelayBoundedByScrubService) {
  const trace::Trace t = regular_trace();
  WaitingPolicy p(10 * kMillisecond);
  const PolicySimResult r = run_policy_sim(t, p, config());
  // Each collision delays by at most one scrub request's service; with a
  // regular trace there is no queueing cascade.
  EXPECT_LE(r.slowdown_max, kScrubService);
  EXPECT_GT(r.slowdown_max, 0);
}

TEST(PolicySim, MeanSlowdownAveragesOverAllRequests) {
  const trace::Trace t = regular_trace();
  WaitingPolicy p(10 * kMillisecond);
  const PolicySimResult r = run_policy_sim(t, p, config());
  // Mean over ALL requests <= max collision delay * collision_rate.
  EXPECT_LE(r.mean_slowdown_ms,
            to_milliseconds(kScrubService) * r.collision_rate + 1e-9);
  EXPECT_GT(r.mean_slowdown_ms, 0.0);
}

TEST(PolicySim, OracleUtilizesOnlyLongIntervals) {
  // Alternating idle intervals: short (15 ms) and long (195 ms).
  trace::Trace t;
  SimTime at = 0;
  for (int i = 0; i < 100; ++i) {
    t.records.push_back({at, i * 128, 128, false});
    at += (i % 2 == 0) ? 20 * kMillisecond : 200 * kMillisecond;
  }
  t.duration = at;

  OraclePolicy oracle(100 * kMillisecond);
  const PolicySimResult r = run_policy_sim(t, oracle, config());
  // Only the ~50 long intervals are used, fully.
  EXPECT_NEAR(r.collision_rate, 0.5, 0.05);
  const double long_share = (195.0) / (195.0 + 15.0);
  EXPECT_NEAR(r.idle_utilization, long_share, 0.05);
}

TEST(PolicySim, LosslessWaitingBeatsWaiting) {
  const trace::Trace t = regular_trace();
  WaitingPolicy w(40 * kMillisecond);
  LosslessWaitingPolicy lw(40 * kMillisecond);
  const PolicySimResult rw = run_policy_sim(t, w, config());
  const PolicySimResult rlw = run_policy_sim(t, lw, config());
  EXPECT_GT(rlw.idle_utilization, rw.idle_utilization);
  // Same capture criterion; lossless accounting charges one collision per
  // captured interval, so it can only be >= the real policy's count.
  EXPECT_GE(rlw.collisions, rw.collisions);
}

TEST(PolicySim, ArPolicyFiresOnPredictedLongIntervals) {
  const trace::Trace t = regular_trace(2000);
  // Regular 95 ms idles: once fitted, predictions hover near 95 ms.
  ArPolicy fire_all(10 * kMillisecond);
  const PolicySimResult r = run_policy_sim(t, fire_all, config());
  EXPECT_GT(r.scrub_requests, 0);

  ArPolicy fire_none(kSecond);
  const PolicySimResult r2 = run_policy_sim(t, fire_none, config());
  EXPECT_EQ(r2.scrub_requests, 0);
}

TEST(PolicySim, ArWaitingWaitsBeforeFiring) {
  const trace::Trace t = regular_trace(500);
  ArWaitingPolicy p(30 * kMillisecond, 10 * kMillisecond);
  WaitingPolicy w(30 * kMillisecond);
  const PolicySimResult ra = run_policy_sim(t, p, config());
  const PolicySimResult rw = run_policy_sim(t, w, config());
  // On a perfectly regular trace AR predicts well, so AR+Waiting behaves
  // like Waiting.
  EXPECT_NEAR(ra.idle_utilization, rw.idle_utilization, 0.1);
}

TEST(PolicySim, QueueingCascadePropagatesSlowdown) {
  // A burst right after an idle interval: the collision delays the first
  // request AND the queued followers (CFQ's Table III pathology).
  trace::Trace t;
  t.records.push_back({0, 0, 128, false});
  // Long idle, then a 5-request burst arriving 1 ms apart (service 5 ms).
  const SimTime burst_at = 500 * kMillisecond;
  for (int i = 0; i < 5; ++i) {
    t.records.push_back({burst_at + i * kMillisecond, 1000 + i * 128, 128, false});
  }
  t.duration = burst_at + kSecond;

  WaitingPolicy p(10 * kMillisecond);
  const PolicySimResult r = run_policy_sim(t, p, config());
  EXPECT_EQ(r.collisions, 1) << "only the burst head collides";
  // But all five burst requests inherit delay: slowdown_sum spans them.
  EXPECT_GT(r.slowdown_sum, r.slowdown_max);
}

TEST(PolicySim, ExponentialSizerGrowsRequests) {
  const trace::Trace t = regular_trace();
  WaitingPolicy p(5 * kMillisecond);
  const PolicySimResult fixed =
      run_policy_sim(t, p, config(ScrubSizer::fixed(64 * 1024)));
  WaitingPolicy p2(5 * kMillisecond);
  const PolicySimResult expo = run_policy_sim(
      t, p2,
      config(ScrubSizer::exponential(64 * 1024, 2.0, 1024 * 1024)));
  // Growing sizes mean fewer, larger requests per interval, and collisions
  // with larger in-flight requests: worst-case slowdown grows.
  EXPECT_GT(expo.slowdown_max, fixed.slowdown_max);
  EXPECT_LT(expo.scrub_requests, fixed.scrub_requests);
}

TEST(PolicySim, PrecomputedServicesMatchModel) {
  const trace::Trace t = regular_trace(500);
  WaitingPolicy p1(10 * kMillisecond);
  const PolicySimResult direct = run_policy_sim(t, p1, config());

  PolicySimConfig c = config();
  const std::vector<SimTime> services =
      precompute_services(t, c.foreground_service);
  c.services = &services;
  WaitingPolicy p2(10 * kMillisecond);
  const PolicySimResult cached = run_policy_sim(t, p2, c);

  EXPECT_EQ(direct.collisions, cached.collisions);
  EXPECT_EQ(direct.scrubbed_bytes, cached.scrubbed_bytes);
  EXPECT_EQ(direct.slowdown_sum, cached.slowdown_sum);
  EXPECT_EQ(direct.idle_utilized, cached.idle_utilized);
}

TEST(PolicySim, StableFastPathMatchesStepwiseAdaptive) {
  // The exponential sizer hits its cap and switches to the O(1) batch
  // path; totals must match a configuration whose cap is never reached
  // within an interval... instead verify internal consistency: scrubbed
  // bytes equal the sum implied by request count boundaries.
  trace::Trace t;
  SimTime at = 0;
  for (int i = 0; i < 50; ++i) {
    t.records.push_back({at, i * 128, 128, false});
    at += kSecond;  // 1 s idle intervals: cap reached, long stable tail
  }
  t.duration = 0;  // no trailing window: keep the byte equation exact
  WaitingPolicy p(10 * kMillisecond);
  const PolicySimResult r = run_policy_sim(
      t, p, config(ScrubSizer::exponential(64 * 1024, 2.0, 512 * 1024)));
  EXPECT_GT(r.scrub_requests, 0);
  // Growth phase scrubs 64+128+256+512 KB, then 512 KB repeats: total
  // bytes must be consistent with the request count.
  const std::int64_t growth_bytes = (64 + 128 + 256 + 512) * 1024;
  // All 49 inter-arrival idle intervals are captured (1 s >> 10 ms wait);
  // collisions may be one short when an interval ends exactly on a
  // request boundary.
  const std::int64_t intervals = 49;
  EXPECT_GE(r.collisions, intervals - 2);
  EXPECT_LE(r.collisions, intervals);
  const std::int64_t stable_requests = r.scrub_requests - 4 * intervals;
  EXPECT_EQ(r.scrubbed_bytes,
            intervals * growth_bytes + stable_requests * 512 * 1024);
}

TEST(ScrubSizerTest, StableDetection) {
  ScrubSizer fixed = ScrubSizer::fixed(64 * 1024);
  EXPECT_TRUE(fixed.stable(0));

  ScrubSizer expo = ScrubSizer::exponential(64 * 1024, 2.0, 256 * 1024);
  expo.reset();
  EXPECT_FALSE(expo.stable(0));
  expo.advance();  // 128K
  EXPECT_FALSE(expo.stable(0));
  expo.advance();  // 256K == cap
  EXPECT_TRUE(expo.stable(0));

  ScrubSizer swap =
      ScrubSizer::swapping(64 * 1024, 1024 * 1024, 50 * kMillisecond);
  EXPECT_FALSE(swap.stable(49 * kMillisecond));
  EXPECT_TRUE(swap.stable(50 * kMillisecond));
  EXPECT_EQ(swap.next(49 * kMillisecond), 64 * 1024);
  EXPECT_EQ(swap.next(50 * kMillisecond), 1024 * 1024);
}

TEST(PolicySim, TrailingIdleUsedWithoutCollision) {
  trace::Trace t;
  t.records.push_back({0, 0, 128, false});
  t.duration = 10 * kSecond;  // long quiet tail
  WaitingPolicy p(10 * kMillisecond);
  const PolicySimResult r = run_policy_sim(t, p, config());
  EXPECT_EQ(r.collisions, 0);
  EXPECT_GT(r.scrubbed_bytes, 0);
  EXPECT_GT(r.idle_utilization, 0.9);
}

TEST(PolicySim, FireBudgetLimitsScrubbing) {
  const trace::Trace t = regular_trace();
  // Budget of 20 ms per interval vs unlimited: far fewer scrubbed bytes,
  // and no collisions (a budgeted scrubber never straddles the arrival).
  DualThresholdPolicy budgeted(10 * kMillisecond, 20 * kMillisecond);
  WaitingPolicy unlimited(10 * kMillisecond);
  const PolicySimResult rb = run_policy_sim(t, budgeted, config());
  const PolicySimResult ru = run_policy_sim(t, unlimited, config());
  EXPECT_LT(rb.scrubbed_bytes, ru.scrubbed_bytes / 3);
  EXPECT_EQ(rb.collisions, 0);
  EXPECT_EQ(rb.slowdown_sum, 0);
}

TEST(PolicySim, StoppingCriterionForfeitsIdleTime) {
  // The paper's Sec V-A argument: with long intervals, stopping early
  // only wastes idle time the scrubber could have used.
  const trace::Trace t = regular_trace();
  DualThresholdPolicy budgeted(10 * kMillisecond, 40 * kMillisecond);
  WaitingPolicy unlimited(10 * kMillisecond);
  const PolicySimResult rb = run_policy_sim(t, budgeted, config());
  const PolicySimResult ru = run_policy_sim(t, unlimited, config());
  EXPECT_LT(rb.idle_utilization, ru.idle_utilization * 0.6);
}

TEST(PolicySim, MovingAveragePolicyFiresOnLongRegime) {
  const trace::Trace t = regular_trace();  // 95 ms idle intervals
  MovingAveragePolicy fire(50 * kMillisecond);
  MovingAveragePolicy hold(200 * kMillisecond);
  const PolicySimResult rf = run_policy_sim(t, fire, config());
  const PolicySimResult rh = run_policy_sim(t, hold, config());
  EXPECT_GT(rf.scrub_requests, 0);
  EXPECT_EQ(rh.scrub_requests, 0);
}

TEST(PolicySim, AcdPolicyRuns) {
  const trace::Trace t = regular_trace(600);
  AcdPolicy acd(50 * kMillisecond, /*window=*/256, /*refit_every=*/128);
  const PolicySimResult r = run_policy_sim(t, acd, config());
  // Regular 95 ms intervals: once fitted, ACD forecasts ~95 ms > 50 ms.
  EXPECT_GT(r.scrub_requests, 0);
  EXPECT_GT(acd.fit_stats().likelihood_evaluations, 0u);
}

TEST(PolicySim, ResponseSamplesMatchRequestCount) {
  const trace::Trace t = regular_trace(100);
  WaitingPolicy p(10 * kMillisecond);
  PolicySimConfig c = config();
  c.keep_response_samples = true;
  const PolicySimResult r = run_policy_sim(t, p, c);
  EXPECT_EQ(r.response_seconds.size(), 100u);
  EXPECT_EQ(r.baseline_response_seconds.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(r.response_seconds[i], r.baseline_response_seconds[i]);
  }
}

TEST(PolicySim, CostModelIntegration) {
  const disk::DiskProfile profile = disk::hitachi_ultrastar_15k450();
  const trace::Trace t = regular_trace(500);
  WaitingPolicy p(20 * kMillisecond);
  PolicySimConfig c;
  c.foreground_service = make_foreground_service(profile);
  c.scrub_service = make_scrub_service(profile);
  const PolicySimResult r = run_policy_sim(t, p, c);
  EXPECT_GT(r.scrub_mb_s, 1.0);
  EXPECT_LT(r.scrub_mb_s, profile.media_rate_mb_s());
}

}  // namespace
}  // namespace pscrub::core
