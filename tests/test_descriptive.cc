#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/descriptive.h"

namespace pscrub::stats {
namespace {

TEST(Descriptive, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Descriptive, SingleValue) {
  const std::vector<double> xs{4.2};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.2);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.2);
  EXPECT_DOUBLE_EQ(s.max, 4.2);
}

TEST(Descriptive, KnownMoments) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.cov, 0.4);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(Descriptive, ExponentialSampleHasCovNearOne) {
  Rng rng(5);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.exponential(3.0));
  const Summary s = acc.summary();
  EXPECT_NEAR(s.cov, 1.0, 0.02);
  EXPECT_NEAR(s.mean, 3.0, 0.05);
}

TEST(Descriptive, HeavyTailHasLargeCov) {
  // Lognormal sigma=2.5: theoretical CoV = sqrt(exp(sigma^2)-1) ~ 22.7,
  // the regime Table II reports for the disk traces.
  Rng rng(5);
  Accumulator acc;
  for (int i = 0; i < 2000000; ++i) acc.add(rng.lognormal(0.0, 2.5));
  EXPECT_GT(acc.summary().cov, 5.0);
}

TEST(Descriptive, AccumulatorMatchesBatch) {
  Rng rng(9);
  std::vector<double> xs;
  Accumulator acc;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 10);
    xs.push_back(x);
    acc.add(x);
  }
  const Summary a = summarize(xs);
  const Summary b = acc.summary();
  EXPECT_NEAR(a.mean, b.mean, 1e-12);
  EXPECT_NEAR(a.variance, b.variance, 1e-9);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(Quantile, Median) {
  EXPECT_DOUBLE_EQ(quantile({3, 1, 2}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({4, 1, 2, 3}, 0.5), 2.5);
}

TEST(Quantile, Extremes) {
  EXPECT_DOUBLE_EQ(quantile({5, 1, 3}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({5, 1, 3}, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  // Sorted: {10, 20, 30, 40}; p=0.25 -> position 0.75 -> 17.5.
  EXPECT_DOUBLE_EQ(quantile({40, 10, 30, 20}, 0.25), 17.5);
}

TEST(Quantile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(QuantileSorted, AgreesWithUnsorted) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform());
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(quantile(xs, p), quantile_sorted(sorted, p));
  }
}

}  // namespace
}  // namespace pscrub::stats
