#include <gtest/gtest.h>

#include <memory>

#include "block/block_layer.h"
#include "block/cfq_scheduler.h"
#include "block/noop_scheduler.h"
#include "disk/profile.h"

namespace pscrub::block {
namespace {

disk::DiskProfile small_profile() {
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  p.capacity_bytes = 1LL << 30;
  return p;
}

struct Fixture {
  Simulator sim;
  disk::DiskModel disk;
  BlockLayer blk;

  explicit Fixture(std::unique_ptr<IoScheduler> sched =
                       std::make_unique<NoopScheduler>())
      : disk(sim, small_profile(), 1), blk(sim, disk, std::move(sched)) {}
};

BlockRequest read_at(disk::Lbn lbn, RequestCompletionFn fn = nullptr) {
  BlockRequest r;
  r.cmd.kind = disk::CommandKind::kRead;
  r.cmd.lbn = lbn;
  r.cmd.sectors = 128;
  r.on_complete = std::move(fn);
  return r;
}

TEST(BlockLayer, CompletesSubmittedRequest) {
  Fixture f;
  SimTime latency = -1;
  f.blk.submit(read_at(0, [&](const BlockRequest&, SimTime l) { latency = l; }));
  f.sim.run();
  EXPECT_GT(latency, 0);
  EXPECT_EQ(f.blk.stats().completed, 1);
  EXPECT_EQ(f.blk.stats().foreground_completed, 1);
}

TEST(BlockLayer, QueueDrainsInOrderWithNoop) {
  Fixture f;
  std::vector<int> order;
  f.blk.submit(read_at(1000, [&](const BlockRequest&, SimTime) {
    order.push_back(1);
  }));
  f.blk.submit(read_at(0, [&](const BlockRequest&, SimTime) {
    order.push_back(2);
  }));
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(BlockLayer, CollisionDetected) {
  Fixture f;
  // A background request occupies the disk; a foreground arrival during
  // its service is a collision.
  BlockRequest bg = read_at(0);
  bg.background = true;
  f.blk.submit(std::move(bg));
  f.sim.after(100 * kMicrosecond, [&] {
    f.blk.submit(read_at(100000));
  });
  f.sim.run();
  EXPECT_EQ(f.blk.stats().collisions, 1);
  EXPECT_GT(f.blk.stats().collision_delay_sum, 0);
}

TEST(BlockLayer, NoCollisionBetweenForegroundRequests) {
  Fixture f;
  f.blk.submit(read_at(0));
  f.sim.after(100 * kMicrosecond, [&] { f.blk.submit(read_at(100000)); });
  f.sim.run();
  EXPECT_EQ(f.blk.stats().collisions, 0);
}

TEST(BlockLayer, IdleObserverFiresOnDrain) {
  Fixture f;
  int idle_events = 0;
  f.blk.set_idle_observer([&] { ++idle_events; });
  f.blk.submit(read_at(0));
  f.blk.submit(read_at(1000));
  f.sim.run();
  EXPECT_EQ(idle_events, 1) << "only the final completion drains the system";
}

TEST(BlockLayer, DiskIdleForTracksLastCompletion) {
  Fixture f;
  f.blk.submit(read_at(0));
  f.sim.run();
  const SimTime completed_at = f.sim.now();
  f.sim.after(5 * kMillisecond, [] {});
  f.sim.run();
  EXPECT_EQ(f.blk.disk_idle_for(), f.sim.now() - completed_at);
}

TEST(BlockLayer, CfqIdleRequestWaitsForWindow) {
  Fixture f(std::make_unique<CfqScheduler>());
  SimTime bg_done = -1;
  BlockRequest bg = read_at(0, [&](const BlockRequest&, SimTime) {
    bg_done = f.sim.now();
  });
  bg.background = true;
  bg.priority = IoPriority::kIdle;
  f.blk.submit(std::move(bg));
  f.sim.run();
  // Dispatch was deferred by the 10 ms idle window.
  EXPECT_GE(bg_done, 10 * kMillisecond);
}

TEST(BlockLayer, CfqIdleYieldsToArrivingForeground) {
  Fixture f(std::make_unique<CfqScheduler>());
  std::vector<char> order;
  BlockRequest bg = read_at(0, [&](const BlockRequest&, SimTime) {
    order.push_back('b');
  });
  bg.background = true;
  bg.priority = IoPriority::kIdle;
  f.blk.submit(std::move(bg));
  // Foreground arrives at 2 ms, well inside the idle window: it must be
  // served first.
  f.sim.after(2 * kMillisecond, [&] {
    f.blk.submit(read_at(200000, [&](const BlockRequest&, SimTime) {
      order.push_back('f');
    }));
  });
  f.sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'f');
  EXPECT_EQ(order[1], 'b');
}

TEST(BlockLayer, StatsSeparateForegroundAndBackground) {
  Fixture f;
  BlockRequest bg = read_at(0);
  bg.background = true;
  f.blk.submit(std::move(bg));
  f.blk.submit(read_at(200000));
  f.sim.run();
  EXPECT_EQ(f.blk.stats().background_completed, 1);
  EXPECT_EQ(f.blk.stats().foreground_completed, 1);
  EXPECT_EQ(f.blk.stats().background_bytes, 128 * disk::kSectorBytes);
  EXPECT_GT(f.blk.stats().foreground_latency_sum, 0);
}

TEST(BlockLayer, OneRequestAtDriveAtATime) {
  Fixture f;
  for (int i = 0; i < 5; ++i) {
    f.blk.submit(read_at(i * 100000));
  }
  // With five submissions, at most one is in flight; the rest queue in the
  // scheduler.
  EXPECT_LE(f.blk.queue_depth(), 4u);
  EXPECT_TRUE(f.blk.disk_busy());
  f.sim.run();
  EXPECT_EQ(f.blk.stats().completed, 5);
  EXPECT_TRUE(f.blk.idle());
}

}  // namespace
}  // namespace pscrub::block
