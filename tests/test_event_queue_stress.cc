// Randomized EventQueue stress suite: cross-checks the slab/sorted-run
// implementation against a naive reference queue over seeded
// schedule/cancel/pop interleavings, with heavy cancellation pressure so
// the stale-entry compaction and free-list-reuse paths are exercised, plus
// persistent-event (add_persistent/arm/re-arm/remove) coverage and
// explicit bounds on entry and slot memory under unbounded churn.
//
// The reference is a sorted multimap keyed by (time, sequence) -- the
// documented firing order (time order, FIFO for ties). At every step the
// real queue must agree with the reference on size(), next_time(), and the
// identity of every fired event.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace pscrub {
namespace {

/// Naive reference: ordered map from (time, arrival sequence) to a payload
/// identifying the scheduled event.
class ReferenceQueue {
 public:
  void schedule(SimTime at, std::uint64_t tag) {
    keys_[tag] = {at, next_seq_};
    events_.emplace(std::pair{at, next_seq_}, tag);
    ++next_seq_;
  }

  bool cancel(std::uint64_t tag) {
    auto it = keys_.find(tag);
    if (it == keys_.end()) return false;
    events_.erase(it->second);
    keys_.erase(it);
    return true;
  }

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  SimTime next_time() const { return events_.begin()->first.first; }

  std::uint64_t pop() {
    auto it = events_.begin();
    const std::uint64_t tag = it->second;
    keys_.erase(tag);
    events_.erase(it);
    return tag;
  }

 private:
  std::map<std::pair<SimTime, std::uint64_t>, std::uint64_t> events_;
  std::map<std::uint64_t, std::pair<SimTime, std::uint64_t>> keys_;
  std::uint64_t next_seq_ = 0;
};

TEST(EventQueueStress, RandomScheduleCancelPopAgreesWithReference) {
  constexpr int kOps = 1'000'000;
  Rng rng(0xC0FFEE);
  EventQueue q;
  ReferenceQueue ref;
  // tag -> EventId of every still-pending event, for cancellation.
  std::map<std::uint64_t, EventId> pending;
  std::uint64_t next_tag = 0;
  std::uint64_t fired_tag = 0;
  bool fired = false;
  SimTime clock = 0;

  for (int op = 0; op < kOps; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.45 || ref.empty()) {
      // Schedule at a time >= the current virtual clock; a narrow time
      // range forces plenty of exact ties (FIFO order must hold).
      const SimTime at = clock + rng.uniform_int(0, 50);
      const std::uint64_t tag = next_tag++;
      const EventId id = q.schedule(at, [tag, &fired_tag, &fired] {
        fired_tag = tag;
        fired = true;
      });
      ref.schedule(at, tag);
      pending[tag] = id;
    } else if (dice < 0.80) {
      // Cancel a random pending event (heavy cancellation pressure: more
      // than a third of scheduled events die before firing).
      auto it = pending.begin();
      std::advance(it, static_cast<long>(rng.uniform_int(
                           0, static_cast<std::int64_t>(pending.size()) - 1)));
      EXPECT_TRUE(q.cancel(it->second));
      EXPECT_FALSE(q.cancel(it->second)) << "double-cancel must be a no-op";
      EXPECT_TRUE(ref.cancel(it->first));
      pending.erase(it);
    } else {
      // Fire the earliest event; both queues must agree on its identity.
      ASSERT_FALSE(q.empty());
      ASSERT_EQ(q.next_time(), ref.next_time());
      clock = q.next_time();
      auto popped = q.pop();
      fired = false;
      popped.fn();
      ASSERT_TRUE(fired);
      const std::uint64_t want = ref.pop();
      ASSERT_EQ(fired_tag, want) << "fired out of (time, FIFO) order";
      EXPECT_EQ(q.cancel(pending[want]), false)
          << "cancelling an already-fired event must fail";
      pending.erase(want);
    }
    ASSERT_EQ(q.size(), ref.size()) << "size() drifted at op " << op;
    ASSERT_EQ(q.empty(), ref.empty());
  }

  // Drain: the tail must still agree, and size() must hit exactly zero
  // (the historical `heap_.size() - cancelled_.size()` underflow would
  // wrap to huge values here under heavy cancellation).
  while (!ref.empty()) {
    ASSERT_FALSE(q.empty());
    ASSERT_EQ(q.next_time(), ref.next_time());
    auto popped = q.pop();
    fired = false;
    popped.fn();
    ASSERT_TRUE(fired);
    ASSERT_EQ(fired_tag, ref.pop());
    ASSERT_EQ(q.size(), ref.size());
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueStress, SizeStaysExactUnderPureCancellation) {
  // Regression for the size() underflow: cancel-heavy usage where the
  // unsigned `heap - cancelled` bookkeeping was fragile, repeated long
  // enough that any leak of tombstones or free slots becomes visible.
  EventQueue q;
  for (int round = 0; round < 2000; ++round) {
    std::vector<EventId> ids;
    ids.reserve(64);
    for (int i = 0; i < 64; ++i) {
      ids.push_back(q.schedule(1000 + i, [] {}));
    }
    // Cancel all but one, back to front.
    for (int i = 63; i >= 1; --i) {
      EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
      EXPECT_EQ(q.size(), static_cast<std::size_t>(i));
    }
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.next_time(), 1000);
    q.pop();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueueStress, InterleavedSimulatorRunStaysConsistent) {
  // Drive the same interleavings through the Simulator loop (fire-in-place
  // path) instead of pop(): every scheduled-and-not-cancelled callback
  // fires exactly once, in time order.
  Simulator sim;
  Rng rng(99);
  std::vector<int> fire_counts(20'000, 0);
  SimTime last = -1;
  std::vector<std::pair<EventId, std::size_t>> cancellable;
  std::size_t scheduled = 0;
  std::size_t cancelled = 0;

  for (std::size_t i = 0; i < fire_counts.size(); ++i) {
    const SimTime at = rng.uniform_int(0, 5000);
    const EventId id = sim.at(at, [i, &fire_counts, &last, &sim] {
      ++fire_counts[i];
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
    ++scheduled;
    if (rng.uniform() < 0.3) {
      cancellable.emplace_back(id, i);
    }
  }
  for (const auto& [id, idx] : cancellable) {
    EXPECT_TRUE(sim.cancel(id));
    ++cancelled;
    fire_counts[idx] = -1;  // must never fire
  }
  const std::size_t fired = sim.run();
  EXPECT_EQ(fired, scheduled - cancelled);
  for (std::size_t i = 0; i < fire_counts.size(); ++i) {
    EXPECT_NE(fire_counts[i], 0) << "event " << i << " never fired";
    EXPECT_LE(fire_counts[i], 1) << "event " << i << " fired twice";
  }
}

TEST(EventQueueStress, PersistentArmRearmRemoveAgreesWithReference) {
  // The persistent-event API must deliver the same fire order as one-shot
  // scheduling: an arm behaves like a schedule, a re-arm like
  // cancel+schedule (the superseded entry must never fire).
  constexpr int kOps = 200'000;
  constexpr int kEvents = 64;
  Rng rng(0xBADA55);
  EventQueue q;
  ReferenceQueue ref;
  SimTime clock = 0;
  std::uint64_t fired_tag = 0;
  bool fired = false;

  struct Persistent {
    EventId id = 0;
    bool armed = false;
  };
  std::vector<Persistent> ev(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    ev[static_cast<std::size_t>(i)].id = q.add_persistent(
        [tag = static_cast<std::uint64_t>(i), &fired_tag, &fired] {
          fired_tag = tag;
          fired = true;
        });
  }
  // Registered-but-parked events are not pending.
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());

  for (int op = 0; op < kOps; ++op) {
    const double dice = rng.uniform();
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, kEvents - 1));
    if (dice < 0.5) {
      // Arm (or re-arm, superseding the pending occurrence).
      const SimTime at = clock + rng.uniform_int(0, 40);
      if (ev[i].armed) {
        EXPECT_TRUE(ref.cancel(i));
      }
      ASSERT_TRUE(q.arm(ev[i].id, at));
      ref.schedule(at, i);
      ev[i].armed = true;
      EXPECT_TRUE(q.armed(ev[i].id));
    } else if (dice < 0.65) {
      // Disarm; the event stays registered.
      const bool was_armed = ev[i].armed;
      EXPECT_EQ(q.cancel(ev[i].id), was_armed);
      if (was_armed) {
        EXPECT_TRUE(ref.cancel(i));
        ev[i].armed = false;
      }
      EXPECT_FALSE(q.armed(ev[i].id));
    } else if (!ref.empty()) {
      // Fire the earliest occurrence in place; firing disarms.
      ASSERT_EQ(q.next_time(), ref.next_time());
      clock = q.next_time();
      fired = false;
      SimTime fired_at = -1;
      ASSERT_TRUE(q.fire_next(clock, &fired_at));
      ASSERT_TRUE(fired);
      ASSERT_EQ(fired_at, clock);
      const std::uint64_t want = ref.pop();
      ASSERT_EQ(fired_tag, want) << "fired out of (time, FIFO) order";
      ev[want].armed = false;
      EXPECT_FALSE(q.armed(ev[want].id));
    }
    ASSERT_EQ(q.size(), ref.size()) << "size() drifted at op " << op;
  }

  for (auto& p : ev) EXPECT_TRUE(q.remove(p.id));
  EXPECT_FALSE(q.remove(ev[0].id)) << "double-remove must fail";
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueStress, PersistentSelfRearmFiresRepeatedly) {
  // The dominant simulation pattern: a completion handler that re-arms its
  // own event from inside the invocation (firing disarms *before* the
  // callback runs, so the re-arm must stick).
  Simulator sim;
  int count = 0;
  EventId id = 0;
  id = sim.add_persistent([&] {
    if (++count < 1000) sim.arm_after(id, 7);
  });
  EXPECT_TRUE(sim.arm(id, 0));
  EXPECT_EQ(sim.run(), 1000u);
  EXPECT_EQ(count, 1000);
  EXPECT_EQ(sim.now(), 999 * 7);
  EXPECT_FALSE(sim.armed(id));
  EXPECT_TRUE(sim.remove(id));
}

TEST(EventQueueStress, CompactionBoundsEntriesAndSlotsUnderChurn) {
  // Unbounded cancel/reschedule churn must not grow memory: stale entries
  // are compacted once they outnumber live ones (entries <= 2*live +
  // slack) and one-shot slots recycle through the free list (zombie slots
  // linger only until their stale entry is swept).
  constexpr std::size_t kLive = 256;
  constexpr std::size_t kSlack = 65;  // EventQueue::kCompactSlack + 1
  EventQueue q;
  Rng rng(7);
  std::vector<EventId> live;
  live.reserve(kLive);
  for (std::size_t i = 0; i < kLive; ++i) {
    live.push_back(q.schedule(static_cast<SimTime>(1'000'000 + i), [] {}));
  }
  for (int round = 0; round < 100'000; ++round) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kLive) - 1));
    ASSERT_TRUE(q.cancel(live[i]));
    live[i] =
        q.schedule(static_cast<SimTime>(1'000'000 + round % 1024), [] {});
    ASSERT_EQ(q.size(), kLive);
    ASSERT_LE(q.heap_entries(), 2 * kLive + kSlack)
        << "stale entries leaked at round " << round;
    ASSERT_LE(q.allocated_slots(), 2 * kLive + kSlack + 1)
        << "slots leaked at round " << round;
  }

  // Re-arm churn on a persistent event leaves one superseded entry per
  // arm; those must be bounded by the same compaction policy.
  EventId p = q.add_persistent([] {});
  for (int round = 0; round < 100'000; ++round) {
    ASSERT_TRUE(q.arm(p, static_cast<SimTime>(round)));
    ASSERT_LE(q.heap_entries(), 2 * (kLive + 1) + kSlack)
        << "superseded arm entries leaked at round " << round;
  }
  EXPECT_TRUE(q.remove(p));
  EXPECT_EQ(q.size(), kLive);
}

}  // namespace
}  // namespace pscrub
