#include <gtest/gtest.h>

#include "core/lse.h"

namespace pscrub::core {
namespace {

constexpr std::int64_t kTotalSectors = 1 << 20;  // 512 MB disk

TEST(LseGeneration, BurstsWithinHorizonAndBounds) {
  Rng rng(3);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kDay;
  const auto bursts =
      generate_lse_bursts(cfg, kTotalSectors, 30 * kDay, rng);
  EXPECT_GT(bursts.size(), 10u);
  for (const auto& b : bursts) {
    EXPECT_LT(b.occurred, 30 * kDay);
    EXPECT_FALSE(b.sectors.empty());
    for (disk::Lbn s : b.sectors) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, kTotalSectors);
    }
  }
}

TEST(LseGeneration, IsolatedFractionRespected) {
  Rng rng(5);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kHour;
  cfg.isolated_fraction = 1.0;
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 10 * kDay, rng);
  for (const auto& b : bursts) EXPECT_EQ(b.sectors.size(), 1u);
}

TEST(LseGeneration, BurstsScatterWithinSpan) {
  Rng rng(7);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kHour;
  cfg.isolated_fraction = 0.0;
  cfg.extra_errors_per_burst_mean = 20.0;
  cfg.burst_span_bytes = 1 << 20;  // 2048 sectors
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 5 * kDay, rng);
  for (const auto& b : bursts) {
    if (b.sectors.size() < 2) continue;
    EXPECT_LE(b.sectors.back() - b.sectors.front(), 2048);
  }
}

MletConfig fast_scrub() {
  MletConfig c;
  c.request_service = kMillisecond;
  return c;
}

TEST(Mlet, SingleErrorDetectedWithinOnePass) {
  SequentialStrategy seq(kTotalSectors, 4096);
  std::vector<LseBurst> bursts{{kHour, {12345}}};
  const MletResult r = evaluate_mlet(seq, kTotalSectors, bursts, fast_scrub());
  EXPECT_EQ(r.errors, 1);
  EXPECT_GT(r.mlet_hours, 0.0);
  EXPECT_LE(r.mlet_hours, r.pass_hours);
}

TEST(Mlet, SequentialDetectionDelayMatchesPosition) {
  // Scrubbing at 4096 sectors/ms: pass = 256 ms. An error at LBN 0
  // occurring just after the pass starts (phase ~0) waits ~a full pass.
  SequentialStrategy seq(kTotalSectors, 4096);
  const SimTime pass = (kTotalSectors / 4096) * kMillisecond;
  std::vector<LseBurst> bursts{{1, {0}}};  // occurred just past offset 0
  const MletResult r = evaluate_mlet(seq, kTotalSectors, bursts, fast_scrub());
  EXPECT_NEAR(r.mlet_hours, to_seconds(pass) / 3600.0, 1e-6);
}

TEST(Mlet, StaggeredBeatsSequentialOnBursts) {
  // The paper's motivating claim: when the region size is on the order of
  // the error-burst locality, a burst spans segments whose staggered
  // scrub times spread across the whole pass, so the first probe hit
  // comes quickly and scrub-on-detection mops up the rest.
  Rng rng(11);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = 6 * kHour;
  cfg.isolated_fraction = 0.2;
  cfg.extra_errors_per_burst_mean = 10.0;
  cfg.burst_span_bytes = 8 << 20;  // = region size at R = 64 below
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 60 * kDay, rng);

  SequentialStrategy seq(kTotalSectors, 4096);
  StaggeredStrategy stag(kTotalSectors, 4096, 64);
  const MletResult rs = evaluate_mlet(seq, kTotalSectors, bursts, fast_scrub());
  const MletResult rg =
      evaluate_mlet(stag, kTotalSectors, bursts, fast_scrub());
  EXPECT_LT(rg.mlet_hours, 0.75 * rs.mlet_hours);
}

TEST(Mlet, EquivalentForIsolatedErrorsWithoutResponse) {
  // Without bursts or the scrub-on-detection response, both schedules give
  // a uniformly distributed delay: means should be close.
  Rng rng(13);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kHour;
  cfg.isolated_fraction = 1.0;
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 30 * kDay, rng);

  MletConfig mc = fast_scrub();
  mc.scrub_on_detection = false;
  SequentialStrategy seq(kTotalSectors, 4096);
  StaggeredStrategy stag(kTotalSectors, 4096, 16);
  const MletResult rs = evaluate_mlet(seq, kTotalSectors, bursts, mc);
  const MletResult rg = evaluate_mlet(stag, kTotalSectors, bursts, mc);
  EXPECT_NEAR(rg.mlet_hours / rs.mlet_hours, 1.0, 0.25);
}

TEST(Mlet, SlowerScrubRateRaisesMlet) {
  Rng rng(17);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = 3 * kHour;
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 30 * kDay, rng);
  SequentialStrategy seq(kTotalSectors, 4096);

  MletConfig fast = fast_scrub();
  MletConfig slow = fast_scrub();
  slow.request_spacing = 4 * kMillisecond;  // 5x slower pass
  const MletResult rf = evaluate_mlet(seq, kTotalSectors, bursts, fast);
  const MletResult rs = evaluate_mlet(seq, kTotalSectors, bursts, slow);
  EXPECT_GT(rs.mlet_hours, 3.0 * rf.mlet_hours);
  EXPECT_NEAR(rs.pass_hours, 5.0 * rf.pass_hours, 1e-9);
}

TEST(Mlet, WorstCaseBoundedByPass) {
  Rng rng(19);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kHour;
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 10 * kDay, rng);
  SequentialStrategy seq(kTotalSectors, 4096);
  const MletResult r = evaluate_mlet(seq, kTotalSectors, bursts, fast_scrub());
  EXPECT_LE(r.worst_hours, r.pass_hours * 1.0001);
}

}  // namespace
}  // namespace pscrub::core
