#include <gtest/gtest.h>

#include "core/lse.h"

namespace pscrub::core {
namespace {

constexpr std::int64_t kTotalSectors = 1 << 20;  // 512 MB disk

TEST(LseGeneration, BurstsWithinHorizonAndBounds) {
  Rng rng(3);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kDay;
  const auto bursts =
      generate_lse_bursts(cfg, kTotalSectors, 30 * kDay, rng);
  EXPECT_GT(bursts.size(), 10u);
  for (const auto& b : bursts) {
    EXPECT_LT(b.occurred, 30 * kDay);
    EXPECT_FALSE(b.sectors.empty());
    for (disk::Lbn s : b.sectors) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, kTotalSectors);
    }
  }
}

TEST(LseGeneration, IsolatedFractionRespected) {
  Rng rng(5);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kHour;
  cfg.isolated_fraction = 1.0;
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 10 * kDay, rng);
  for (const auto& b : bursts) EXPECT_EQ(b.sectors.size(), 1u);
}

TEST(LseGeneration, BurstsScatterWithinSpan) {
  Rng rng(7);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kHour;
  cfg.isolated_fraction = 0.0;
  cfg.extra_errors_per_burst_mean = 20.0;
  cfg.burst_span_bytes = 1 << 20;  // 2048 sectors
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 5 * kDay, rng);
  for (const auto& b : bursts) {
    if (b.sectors.size() < 2) continue;
    EXPECT_LE(b.sectors.back() - b.sectors.front(), 2048);
  }
}

MletConfig fast_scrub() {
  MletConfig c;
  c.request_service = kMillisecond;
  return c;
}

TEST(Mlet, SingleErrorDetectedWithinOnePass) {
  SequentialStrategy seq(kTotalSectors, 4096);
  std::vector<LseBurst> bursts{{kHour, {12345}}};
  const MletResult r = evaluate_mlet(seq, kTotalSectors, bursts, fast_scrub());
  EXPECT_EQ(r.errors, 1);
  EXPECT_GT(r.mlet_hours, 0.0);
  EXPECT_LE(r.mlet_hours, r.pass_hours);
}

TEST(Mlet, SequentialDetectionDelayMatchesPosition) {
  // Scrubbing at 4096 sectors/ms: pass = 256 ms. An error at LBN 0
  // occurring just after the pass starts (phase ~0) waits ~a full pass.
  SequentialStrategy seq(kTotalSectors, 4096);
  const SimTime pass = (kTotalSectors / 4096) * kMillisecond;
  std::vector<LseBurst> bursts{{1, {0}}};  // occurred just past offset 0
  const MletResult r = evaluate_mlet(seq, kTotalSectors, bursts, fast_scrub());
  EXPECT_NEAR(r.mlet_hours, to_seconds(pass) / 3600.0, 1e-6);
}

TEST(Mlet, StaggeredBeatsSequentialOnBursts) {
  // The paper's motivating claim: when the region size is on the order of
  // the error-burst locality, a burst spans segments whose staggered
  // scrub times spread across the whole pass, so the first probe hit
  // comes quickly and scrub-on-detection mops up the rest.
  Rng rng(11);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = 6 * kHour;
  cfg.isolated_fraction = 0.2;
  cfg.extra_errors_per_burst_mean = 10.0;
  cfg.burst_span_bytes = 8 << 20;  // = region size at R = 64 below
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 60 * kDay, rng);

  SequentialStrategy seq(kTotalSectors, 4096);
  StaggeredStrategy stag(kTotalSectors, 4096, 64);
  const MletResult rs = evaluate_mlet(seq, kTotalSectors, bursts, fast_scrub());
  const MletResult rg =
      evaluate_mlet(stag, kTotalSectors, bursts, fast_scrub());
  EXPECT_LT(rg.mlet_hours, 0.75 * rs.mlet_hours);
}

TEST(Mlet, EquivalentForIsolatedErrorsWithoutResponse) {
  // Without bursts or the scrub-on-detection response, both schedules give
  // a uniformly distributed delay: means should be close.
  Rng rng(13);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kHour;
  cfg.isolated_fraction = 1.0;
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 30 * kDay, rng);

  MletConfig mc = fast_scrub();
  mc.scrub_on_detection = false;
  SequentialStrategy seq(kTotalSectors, 4096);
  StaggeredStrategy stag(kTotalSectors, 4096, 16);
  const MletResult rs = evaluate_mlet(seq, kTotalSectors, bursts, mc);
  const MletResult rg = evaluate_mlet(stag, kTotalSectors, bursts, mc);
  EXPECT_NEAR(rg.mlet_hours / rs.mlet_hours, 1.0, 0.25);
}

TEST(Mlet, SlowerScrubRateRaisesMlet) {
  Rng rng(17);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = 3 * kHour;
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 30 * kDay, rng);
  SequentialStrategy seq(kTotalSectors, 4096);

  MletConfig fast = fast_scrub();
  MletConfig slow = fast_scrub();
  slow.request_spacing = 4 * kMillisecond;  // 5x slower pass
  const MletResult rf = evaluate_mlet(seq, kTotalSectors, bursts, fast);
  const MletResult rs = evaluate_mlet(seq, kTotalSectors, bursts, slow);
  EXPECT_GT(rs.mlet_hours, 3.0 * rf.mlet_hours);
  EXPECT_NEAR(rs.pass_hours, 5.0 * rf.pass_hours, 1e-9);
}

TEST(Mlet, EmptyBurstListYieldsZeroErrors) {
  SequentialStrategy seq(kTotalSectors, 4096);
  const MletResult r = evaluate_mlet(seq, kTotalSectors, {}, fast_scrub());
  EXPECT_EQ(r.errors, 0);
  EXPECT_DOUBLE_EQ(r.mlet_hours, 0.0);
  EXPECT_DOUBLE_EQ(r.worst_hours, 0.0);
  EXPECT_GT(r.pass_hours, 0.0) << "the schedule itself still exists";
}

TEST(Mlet, BurstAtTimeZeroWaitsExactlyItsScheduleOffset) {
  SequentialStrategy seq(kTotalSectors, 4096);
  // Sector 0 is scrubbed at offset 0 of the pass: zero latent time.
  const std::vector<LseBurst> at_origin{{0, {0}}};
  EXPECT_DOUBLE_EQ(
      evaluate_mlet(seq, kTotalSectors, at_origin, fast_scrub()).mlet_hours,
      0.0);
  // A sector halfway through the disk waits half a pass.
  const std::vector<LseBurst> mid{{0, {kTotalSectors / 2}}};
  const MletResult r = evaluate_mlet(seq, kTotalSectors, mid, fast_scrub());
  EXPECT_NEAR(r.mlet_hours, 0.5 * r.pass_hours, 0.01 * r.pass_hours);
}

TEST(Mlet, OccurrenceBeyondTheFirstPassWrapsCyclically) {
  SequentialStrategy seq(kTotalSectors, 4096);
  const SimTime pass = (kTotalSectors / 4096) * kMillisecond;
  const std::vector<LseBurst> early{{10 * kMillisecond, {12345}}};
  const std::vector<LseBurst> late{{10 * kMillisecond + 5 * pass, {12345}}};
  const MletResult a = evaluate_mlet(seq, kTotalSectors, early, fast_scrub());
  const MletResult b = evaluate_mlet(seq, kTotalSectors, late, fast_scrub());
  EXPECT_DOUBLE_EQ(a.mlet_hours, b.mlet_hours)
      << "the cyclic schedule only sees the phase";
}

TEST(Mlet, SingleSectorExtentsResolveExactOffsets) {
  const std::int64_t total = 4096;
  SequentialStrategy seq(total, 1);
  MletConfig mc;
  mc.request_service = kMillisecond;
  // With one-sector extents at 1 ms each, sector k is scrubbed exactly at
  // offset k ms; an error at t=0 on sector 1000 waits 1000 ms.
  const std::vector<LseBurst> bursts{{0, {1000}}};
  const MletResult r = evaluate_mlet(seq, total, bursts, mc);
  EXPECT_NEAR(r.mlet_hours, to_seconds(1000 * kMillisecond) / 3600.0, 1e-9);
  EXPECT_NEAR(r.pass_hours, to_seconds(4096 * kMillisecond) / 3600.0, 1e-9);
}

TEST(Mlet, WorstCaseBoundedByPass) {
  Rng rng(19);
  LseModelConfig cfg;
  cfg.burst_interarrival_mean = kHour;
  const auto bursts = generate_lse_bursts(cfg, kTotalSectors, 10 * kDay, rng);
  SequentialStrategy seq(kTotalSectors, 4096);
  const MletResult r = evaluate_mlet(seq, kTotalSectors, bursts, fast_scrub());
  EXPECT_LE(r.worst_hours, r.pass_hours * 1.0001);
}

}  // namespace
}  // namespace pscrub::core
