#include <gtest/gtest.h>

#include "stats/ecdf.h"

namespace pscrub::stats {
namespace {

TEST(Ecdf, StepFunction) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.at(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  Ecdf e({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(e.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.at(1.9), 0.0);
}

TEST(Ecdf, QuantileInverse) {
  Ecdf e({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 50.0);
}

TEST(Ecdf, CurveLogspaceMonotone) {
  Ecdf e({0.001, 0.01, 0.02, 0.5, 1.0, 3.0});
  const auto curve = e.curve_logspace(1e-4, 10.0, 50);
  ASSERT_EQ(curve.size(), 50u);
  double prev_x = 0.0;
  double prev_p = -1.0;
  for (const auto& pt : curve) {
    EXPECT_GT(pt.x, prev_x);
    EXPECT_GE(pt.p, prev_p);
    prev_x = pt.x;
    prev_p = pt.p;
  }
  EXPECT_DOUBLE_EQ(curve.back().p, 1.0);
}

TEST(Ecdf, CurveRejectsBadArgs) {
  Ecdf e({1.0});
  EXPECT_TRUE(e.curve_logspace(0.0, 1.0, 10).empty());
  EXPECT_TRUE(e.curve_logspace(1.0, 0.5, 10).empty());
  EXPECT_TRUE(e.curve_logspace(0.1, 1.0, 1).empty());
}

TEST(Ecdf, EmptySample) {
  Ecdf e({});
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.0);
  EXPECT_EQ(e.size(), 0u);
}

}  // namespace
}  // namespace pscrub::stats
