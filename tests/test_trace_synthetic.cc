#include <gtest/gtest.h>

#include "stats/anova.h"
#include "stats/autocorrelation.h"
#include "stats/descriptive.h"
#include "trace/synthetic.h"

namespace pscrub::trace {
namespace {

TraceSpec small_spec() {
  TraceSpec s;
  s.name = "unit";
  s.seed = 42;
  s.duration = kDay;
  s.target_requests = 200'000;
  s.burst_len_mean = 10.0;
  s.idle_sigma = 2.0;
  return s;
}

TEST(Synthetic, Deterministic) {
  SyntheticGenerator a(small_spec());
  SyntheticGenerator b(small_spec());
  const Trace ta = a.generate_trace();
  const Trace tb = b.generate_trace();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(ta.size(), 1000); ++i) {
    EXPECT_EQ(ta.records[i].arrival, tb.records[i].arrival);
    EXPECT_EQ(ta.records[i].lbn, tb.records[i].lbn);
  }
}

TEST(Synthetic, ArrivalsSortedAndInWindow) {
  SyntheticGenerator gen(small_spec());
  SimTime prev = -1;
  gen.generate([&](const TraceRecord& r) {
    EXPECT_GE(r.arrival, prev);
    EXPECT_LT(r.arrival, kDay);
    prev = r.arrival;
  });
}

TEST(Synthetic, HitsRequestTargetWithinTolerance) {
  SyntheticGenerator gen(small_spec());
  std::int64_t n = 0;
  gen.generate([&](const TraceRecord&) { ++n; });
  EXPECT_GT(n, 200'000 * 0.6);
  EXPECT_LT(n, 200'000 * 1.6);
}

TEST(Synthetic, RequestsWithinDiskBounds) {
  const TraceSpec s = small_spec();
  SyntheticGenerator gen(s);
  gen.generate([&](const TraceRecord& r) {
    ASSERT_GE(r.lbn, 0);
    ASSERT_LE(r.lbn + r.sectors, s.disk_sectors);
    ASSERT_GT(r.sectors, 0);
    ASSERT_LE(r.bytes(), s.max_request_bytes);
  });
}

TEST(Synthetic, ReadFractionRespected) {
  TraceSpec s = small_spec();
  s.read_fraction = 0.8;
  SyntheticGenerator gen(s);
  std::int64_t reads = 0;
  std::int64_t total = 0;
  gen.generate([&](const TraceRecord& r) {
    reads += r.is_write ? 0 : 1;
    ++total;
  });
  EXPECT_NEAR(static_cast<double>(reads) / static_cast<double>(total), 0.8,
              0.02);
}

TEST(Synthetic, PeriodicSpikeDetectableByAnova) {
  TraceSpec s = small_spec();
  s.duration = kWeek;
  s.target_requests = 500'000;
  s.period = kDay;
  s.spike_hours = {2.0};
  s.spike_magnitude = 10.0;
  SyntheticGenerator gen(s);
  const Trace t = gen.generate_trace();
  const auto counts = t.hourly_counts();
  ASSERT_EQ(counts.size(), 168u);
  const stats::PeriodResult r = stats::detect_period(counts);
  EXPECT_EQ(r.period_hours, 24u);
}

TEST(Synthetic, AperiodicSpecYieldsNoPeriod) {
  TraceSpec s = small_spec();
  s.duration = kWeek;
  s.target_requests = 400'000;
  s.period = 0;
  s.spike_hours.clear();
  SyntheticGenerator gen(s);
  const Trace t = gen.generate_trace();
  const stats::PeriodResult r = stats::detect_period(t.hourly_counts());
  EXPECT_EQ(r.period_hours, 1u);
}

TEST(Synthetic, InterarrivalCovIsHeavy) {
  // The disk-trace regime: CoV far above the exponential's 1.0.
  TraceSpec s = small_spec();
  s.idle_sigma = 2.4;
  SyntheticGenerator gen(s);
  const Trace t = gen.generate_trace();
  const auto gaps = t.interarrival_seconds();
  const stats::Summary sum = stats::summarize(gaps);
  EXPECT_GT(sum.cov, 5.0);
}

TEST(Synthetic, MemorylessModelCovNearOne) {
  TraceSpec s = small_spec();
  s.model = ArrivalModel::kMemoryless;
  s.gamma_shape = 1.35;
  s.period = 0;
  s.duration = 720 * kSecond;
  s.target_requests = 300'000;
  SyntheticGenerator gen(s);
  const Trace t = gen.generate_trace();
  const stats::Summary sum = stats::summarize(t.interarrival_seconds());
  // Gamma(1.35) renewal: CoV = 1/sqrt(1.35) ~ 0.86 (Table II's TPC-C).
  EXPECT_NEAR(sum.cov, 0.86, 0.06);
}

TEST(Synthetic, BurstyTraceIsAutocorrelated) {
  // The paper's claim is about *idle interval* durations: recent idle
  // lengths predict future ones. Raw inter-arrival gaps mix in iid burst
  // gaps and destabilize the linear ACF, so test the (log of the) idle
  // gaps themselves.
  TraceSpec s = small_spec();
  s.idle_log_ar1 = 0.6;
  SyntheticGenerator gen(s);
  const Trace t = gen.generate_trace();
  std::vector<double> log_idles;
  for (double g : t.interarrival_seconds()) {
    if (g > 0.01) log_idles.push_back(std::log(g));
  }
  ASSERT_GT(log_idles.size(), 2000u);
  EXPECT_GT(stats::autocorrelation(log_idles, 1), 0.3);
  EXPECT_TRUE(stats::strongly_autocorrelated(log_idles, 20, 0.4));
}

TEST(Synthetic, RateMultiplierPeaksAtSpike) {
  TraceSpec s = small_spec();
  s.period = kDay;
  s.spike_hours = {6.0};
  s.spike_magnitude = 10.0;
  SyntheticGenerator gen(s);
  const double at_spike = gen.rate_multiplier(6 * kHour);
  const double at_trough = gen.rate_multiplier(18 * kHour);
  EXPECT_GT(at_spike, 5.0 * at_trough / 3.0);
  EXPECT_GT(at_spike, 8.0);
}

TEST(Synthetic, ScaleThinsVolume) {
  TraceSpec s = small_spec();
  SyntheticGenerator gen(s);
  const Trace full = gen.generate_trace(1.0);
  const Trace thin = gen.generate_trace(0.25);
  EXPECT_LT(thin.size() * 2, full.size());
  EXPECT_GT(thin.size(), full.size() / 10);
}

TEST(Synthetic, HourlyCountsSumToRequests) {
  SyntheticGenerator gen(small_spec());
  const Trace t = gen.generate_trace();
  const auto counts = t.hourly_counts();
  double total = 0.0;
  for (double c : counts) total += c;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(t.size()));
}

}  // namespace
}  // namespace pscrub::trace
