#include <gtest/gtest.h>

#include <memory>

#include "block/block_layer.h"
#include "block/noop_scheduler.h"
#include "disk/profile.h"
#include "workload/synthetic_workload.h"
#include "workload/trace_replay.h"

namespace pscrub::workload {
namespace {

disk::DiskProfile small_profile() {
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  p.capacity_bytes = 2LL << 30;
  return p;
}

struct Fixture {
  Simulator sim;
  disk::DiskModel disk;
  block::BlockLayer blk;

  Fixture()
      : disk(sim, small_profile(), 1),
        blk(sim, disk, std::make_unique<block::NoopScheduler>()) {}
};

TEST(SequentialWorkload, MakesProgressAndIsSequential) {
  Fixture f;
  SyntheticConfig cfg;
  cfg.chunk_bytes = 1 << 20;
  cfg.think_mean = 10 * kMillisecond;
  SequentialChunkWorkload w(f.sim, f.blk, cfg, 42);
  w.start();
  f.sim.run_until(2 * kSecond);
  EXPECT_GT(w.metrics().requests, 50);
  EXPECT_EQ(w.metrics().bytes, w.metrics().requests * 64 * 1024);
  EXPECT_GT(w.metrics().mean_latency_ms(), 0.0);
}

TEST(SequentialWorkload, ChunksAreContiguous64K) {
  Fixture f;
  SyntheticConfig cfg;
  cfg.chunk_bytes = 512 * 1024;  // 8 requests per chunk
  cfg.think_mean = kMillisecond;
  SequentialChunkWorkload w(f.sim, f.blk, cfg, 7);
  w.start();
  f.sim.run_until(kSecond);
  // Sequential streaming: the disk should see mostly low-cost transfers
  // after the first request of each chunk (no full random seeks), so the
  // measured rate beats a purely random workload.
  const double seq_mb_s = w.metrics().throughput_mb_s(kSecond);
  EXPECT_GT(seq_mb_s, 1.0);
}

TEST(RandomWorkload, ThinkTimeDominates) {
  Fixture f;
  SyntheticConfig cfg;
  cfg.think_mean = 100 * kMillisecond;
  RandomReadWorkload w(f.sim, f.blk, cfg, 42);
  w.start();
  f.sim.run_until(20 * kSecond);
  // ~one request per ~110 ms.
  EXPECT_GT(w.metrics().requests, 100);
  EXPECT_LT(w.metrics().requests, 400);
}

TEST(RandomWorkload, Deterministic) {
  auto run = [] {
    Fixture f;
    SyntheticConfig cfg;
    RandomReadWorkload w(f.sim, f.blk, cfg, 99);
    w.start();
    f.sim.run_until(5 * kSecond);
    return w.metrics().requests;
  };
  EXPECT_EQ(run(), run());
}

TEST(TraceReplay, ReplaysAllRecordsOpenLoop) {
  Fixture f;
  trace::Trace t;
  for (int i = 0; i < 500; ++i) {
    t.records.push_back({i * 2 * kMillisecond, i * 128, 128, i % 3 == 0});
  }
  t.duration = 500 * 2 * kMillisecond;
  TraceReplayWorkload w(f.sim, f.blk, t);
  w.start();
  f.sim.run();
  EXPECT_TRUE(w.finished());
  EXPECT_EQ(w.metrics().requests, 500);
}

TEST(TraceReplay, ResponseSamplesKept) {
  Fixture f;
  trace::Trace t;
  for (int i = 0; i < 50; ++i) {
    t.records.push_back({i * 10 * kMillisecond, i * 1000, 64, false});
  }
  t.duration = kSecond;
  TraceReplayWorkload w(f.sim, f.blk, t);
  w.metrics().keep_samples = true;
  w.start();
  f.sim.run();
  ASSERT_EQ(w.metrics().response_seconds.size(), 50u);
  for (double s : w.metrics().response_seconds) EXPECT_GT(s, 0.0);
}

TEST(TraceReplay, BurstArrivalsQueueAndAllComplete) {
  Fixture f;
  trace::Trace t;
  // 100 simultaneous arrivals: open loop floods the queue.
  for (int i = 0; i < 100; ++i) {
    t.records.push_back({kMillisecond, i * 5000, 64, false});
  }
  t.duration = kSecond;
  TraceReplayWorkload w(f.sim, f.blk, t);
  w.start();
  f.sim.run();
  EXPECT_TRUE(w.finished());
  EXPECT_GT(w.metrics().max_latency(), 50 * kMillisecond)
      << "queueing delay must accumulate in an open-loop burst";
}

TEST(TraceReplay, LargeTraceSlidingWindow) {
  // More records than the scheduling window: exercises the refill path.
  Fixture f;
  trace::Trace t;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    t.records.push_back({i * 100 * kMicrosecond, (i % 1000) * 256, 8, false});
  }
  t.duration = kN * 100 * kMicrosecond;
  TraceReplayWorkload w(f.sim, f.blk, t);
  w.start();
  f.sim.run();
  EXPECT_TRUE(w.finished());
}

TEST(Metrics, ThroughputComputation) {
  WorkloadMetrics m;
  m.record(1'000'000, kMillisecond);
  m.record(1'000'000, 3 * kMillisecond);
  EXPECT_DOUBLE_EQ(m.throughput_mb_s(kSecond), 2.0);
  EXPECT_DOUBLE_EQ(m.mean_latency_ms(), 2.0);
  EXPECT_EQ(m.max_latency(), 3 * kMillisecond);
}

}  // namespace
}  // namespace pscrub::workload
