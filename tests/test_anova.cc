#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/anova.h"

namespace pscrub::stats {
namespace {

TEST(IncompleteBeta, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(incomplete_beta(2, 2, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(incomplete_beta(2, 2, 0.25), 0.25 * 0.25 * (3 - 0.5), 1e-10);
  EXPECT_DOUBLE_EQ(incomplete_beta(3, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(3, 4, 1.0), 1.0);
}

TEST(FDistribution, TailProbabilities) {
  // F(1, 10): P(F > 4.96) ~ 0.05 (standard table value 4.965).
  EXPECT_NEAR(f_distribution_sf(4.965, 1, 10), 0.05, 0.002);
  // F(5, 20): P(F > 2.71) ~ 0.05.
  EXPECT_NEAR(f_distribution_sf(2.71, 5, 20), 0.05, 0.003);
  EXPECT_DOUBLE_EQ(f_distribution_sf(0.0, 3, 3), 1.0);
}

TEST(Anova, IdenticalGroupsNotSignificant) {
  Rng rng(3);
  std::vector<std::vector<double>> groups(4);
  for (auto& g : groups) {
    for (int i = 0; i < 50; ++i) g.push_back(rng.normal(10.0, 2.0));
  }
  const AnovaResult r = one_way_anova(groups);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Anova, ShiftedGroupIsSignificant) {
  Rng rng(3);
  std::vector<std::vector<double>> groups(4);
  for (std::size_t k = 0; k < groups.size(); ++k) {
    const double mean = k == 0 ? 20.0 : 10.0;
    for (int i = 0; i < 50; ++i) groups[k].push_back(rng.normal(mean, 2.0));
  }
  const AnovaResult r = one_way_anova(groups);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.f_statistic, 10.0);
}

TEST(Anova, DegenerateInputs) {
  std::vector<std::vector<double>> one_group{{1, 2, 3}};
  EXPECT_DOUBLE_EQ(one_way_anova(one_group).p_value, 1.0);

  std::vector<std::vector<double>> with_empty{{1, 2}, {}, {3, 4}};
  const AnovaResult r = one_way_anova(with_empty);
  EXPECT_EQ(r.df_between, 1u);  // empty group excluded
}

TEST(Anova, PerfectlyRepeatingSignal) {
  // Zero within-group variance and non-zero between-group variance:
  // infinitely significant.
  std::vector<std::vector<double>> groups{{5, 5, 5}, {9, 9, 9}};
  const AnovaResult r = one_way_anova(groups);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

std::vector<double> periodic_counts(int hours, int period, double spike,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts;
  counts.reserve(hours);
  for (int h = 0; h < hours; ++h) {
    double base = 100.0 + rng.normal(0.0, 10.0);
    if (h % period == 2) base += spike;
    counts.push_back(base);
  }
  return counts;
}

TEST(PeriodDetection, Finds24HourPeriod) {
  const auto counts = periodic_counts(7 * 24, 24, 400.0, 7);
  const PeriodResult r = detect_period(counts);
  EXPECT_EQ(r.period_hours, 24u);
}

TEST(PeriodDetection, Finds12HourPeriod) {
  const auto counts = periodic_counts(7 * 24, 12, 400.0, 7);
  const PeriodResult r = detect_period(counts);
  EXPECT_EQ(r.period_hours, 12u);
}

TEST(PeriodDetection, NoiseYieldsNoPeriod) {
  Rng rng(11);
  std::vector<double> counts;
  for (int h = 0; h < 7 * 24; ++h) counts.push_back(rng.normal(100.0, 10.0));
  const PeriodResult r = detect_period(counts);
  EXPECT_EQ(r.period_hours, 1u) << "period 1 means nothing detected";
}

TEST(PeriodDetection, PrefersFundamentalOverHarmonic) {
  // A 12-hour signal also folds cleanly at 24 and 36 hours; the detector
  // should still report 12.
  const auto counts = periodic_counts(14 * 24, 12, 500.0, 17);
  const PeriodResult r = detect_period(counts);
  EXPECT_EQ(r.period_hours, 12u);
}

TEST(PeriodDetection, TooShortSeries) {
  std::vector<double> counts(10, 5.0);
  const PeriodResult r = detect_period(counts);
  EXPECT_EQ(r.period_hours, 1u);
}

class PeriodSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PeriodSweepTest, RecoversInjectedPeriod) {
  const int period = GetParam();
  const auto counts =
      periodic_counts(8 * 36, period, 600.0, 100 + period);
  EXPECT_EQ(detect_period(counts).period_hours,
            static_cast<std::size_t>(period));
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweepTest,
                         ::testing::Values(6, 8, 12, 24, 36));

}  // namespace
}  // namespace pscrub::stats
