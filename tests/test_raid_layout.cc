#include <gtest/gtest.h>

#include <set>

#include "raid/layout.h"

namespace pscrub::raid {
namespace {

RaidConfig raid5() {
  RaidConfig c;
  c.data_disks = 4;
  c.parity_disks = 1;
  c.chunk_sectors = 128;
  return c;
}

RaidConfig raid6() {
  RaidConfig c;
  c.data_disks = 4;
  c.parity_disks = 2;
  c.chunk_sectors = 128;
  return c;
}

TEST(RaidLayout, Capacity) {
  RaidLayout l(raid5(), 128 * 1000);
  EXPECT_EQ(l.total_disks(), 5);
  EXPECT_EQ(l.stripes(), 1000);
  EXPECT_EQ(l.array_sectors(), 4 * 128 * 1000);
}

TEST(RaidLayout, ParityRotates) {
  RaidLayout l(raid5(), 128 * 100);
  std::set<int> seen;
  for (std::int64_t s = 0; s < 5; ++s) {
    const auto parity = l.parity_disks_of(s);
    ASSERT_EQ(parity.size(), 1u);
    seen.insert(parity[0]);
  }
  EXPECT_EQ(seen.size(), 5u) << "every disk holds parity once per 5 stripes";
}

TEST(RaidLayout, DataAndParityPartitionStripe) {
  RaidLayout l(raid6(), 128 * 100);
  for (std::int64_t s = 0; s < 12; ++s) {
    std::set<int> all;
    for (int d : l.data_disks_of(s)) all.insert(d);
    for (int d : l.parity_disks_of(s)) all.insert(d);
    EXPECT_EQ(all.size(), 6u);
    EXPECT_EQ(l.data_disks_of(s).size(), 4u);
    EXPECT_EQ(l.parity_disks_of(s).size(), 2u);
  }
}

TEST(RaidLayout, LocateRoundTripsThroughInverse) {
  RaidLayout l(raid5(), 128 * 200);
  for (std::int64_t lbn = 0; lbn < l.array_sectors(); lbn += 997) {
    const auto loc = l.locate(lbn);
    EXPECT_EQ(l.array_lbn_at(loc.disk, loc.lbn), lbn);
    EXPECT_FALSE(l.is_parity(loc.disk, loc.lbn));
  }
}

TEST(RaidLayout, ParityInverseIsMinusOne) {
  RaidLayout l(raid5(), 128 * 50);
  for (std::int64_t s = 0; s < 10; ++s) {
    const ChunkLocation par = l.parity_chunk(s, 0);
    EXPECT_TRUE(l.is_parity(par.disk, par.lbn));
    EXPECT_EQ(l.array_lbn_at(par.disk, par.lbn), -1);
  }
}

TEST(RaidLayout, SequentialLbnsStripeAcrossDisks) {
  RaidLayout l(raid5(), 128 * 100);
  // Consecutive chunks of a stripe land on distinct disks.
  const auto a = l.locate(0);
  const auto b = l.locate(128);
  const auto c = l.locate(256);
  EXPECT_EQ(a.stripe, b.stripe);
  EXPECT_NE(a.disk, b.disk);
  EXPECT_NE(b.disk, c.disk);
}

TEST(RaidLayout, ReconstructionSetSizeIsK) {
  RaidLayout l5(raid5(), 128 * 100);
  RaidLayout l6(raid6(), 128 * 100);
  for (std::int64_t s = 0; s < 7; ++s) {
    for (int missing = 0; missing < l5.total_disks(); ++missing) {
      const auto set = l5.reconstruction_set(s, missing);
      EXPECT_EQ(set.size(), 4u);
      for (const auto& cl : set) EXPECT_NE(cl.disk, missing);
    }
    for (int missing = 0; missing < l6.total_disks(); ++missing) {
      const auto set = l6.reconstruction_set(s, missing);
      EXPECT_EQ(set.size(), 4u);
      for (const auto& cl : set) EXPECT_NE(cl.disk, missing);
    }
  }
}

TEST(RaidLayout, ChunksLiveAtStripeTimesChunk) {
  RaidLayout l(raid6(), 128 * 100);
  for (std::int64_t s : {0, 1, 17, 99}) {
    for (int i = 0; i < l.data_disks(); ++i) {
      EXPECT_EQ(l.data_chunk(s, i).lbn, s * 128);
    }
    for (int j = 0; j < l.parity_disks(); ++j) {
      EXPECT_EQ(l.parity_chunk(s, j).lbn, s * 128);
    }
  }
}

// Property sweep: the inverse map covers the whole disk surface exactly.
class LayoutParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LayoutParamTest, EverySectorIsDataOrParityExactlyOnce) {
  const auto [k, p, chunk] = GetParam();
  RaidConfig cfg;
  cfg.data_disks = k;
  cfg.parity_disks = p;
  cfg.chunk_sectors = chunk;
  const std::int64_t disk_sectors = chunk * 23;
  RaidLayout l(cfg, disk_sectors);

  std::int64_t data_sectors = 0;
  std::int64_t parity_sectors = 0;
  std::set<std::int64_t> seen_array_lbns;
  for (int d = 0; d < l.total_disks(); ++d) {
    for (std::int64_t lbn = 0; lbn < l.stripes() * chunk; ++lbn) {
      const std::int64_t a = l.array_lbn_at(d, lbn);
      if (a < 0) {
        ++parity_sectors;
      } else {
        ++data_sectors;
        EXPECT_TRUE(seen_array_lbns.insert(a).second)
            << "array lbn mapped twice";
      }
    }
  }
  EXPECT_EQ(data_sectors, l.array_sectors());
  EXPECT_EQ(parity_sectors, l.stripes() * chunk * p);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutParamTest,
    ::testing::Values(std::make_tuple(2, 1, 8), std::make_tuple(4, 1, 128),
                      std::make_tuple(4, 2, 64), std::make_tuple(7, 1, 16),
                      std::make_tuple(6, 2, 32)));

}  // namespace
}  // namespace pscrub::raid
