// Differential suite for the batched Waiting evaluator.
//
// The decomposition path (core::run_waiting_grid / run_waiting_single)
// promises *bit-identical* results to the full-replay oracle
// run_policy_sim_reference -- every integer field and every derived
// double, not "close enough". This suite enforces that promise three
// ways:
//
//   1. Differential fuzz: >= 50 seeded random traces across adversarial
//      shapes (bursty, sparse, heavy-tailed, regular, empty,
//      single-interval, all-idle), each evaluated over a threshold grid
//      that always includes thresholds exactly equal to idle durations
//      (the strict `wait < idle` gate's worst case), zero, and a
//      threshold beyond every interval.
//   2. Sweep fan-out: the same comparisons routed through
//      exp::run_policy_scenarios at 1, 4, and 8 workers (the scenario
//      fast path + the exp::sweep bit-identity contract).
//   3. IdleDecomposition properties: prefix sums against a naive O(n^2)
//      recomputation, monotonicity of usable_idle, and the
//      slice-and-append merge law.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/cost_model.h"
#include "core/idle_decomp.h"
#include "core/idle_policy.h"
#include "core/policy_sim.h"
#include "disk/profile.h"
#include "exp/scenario.h"
#include "trace/idle.h"
#include "trace/record.h"

namespace pscrub::core {
namespace {

struct FuzzCase {
  trace::Trace trace;
  std::vector<SimTime> services;
};

// Seeded trace generator. The low bits of the seed pick a shape so the 50+
// seeds cover every adversarial regime; everything else is drawn from the
// seeded engine, so failures reproduce from the seed alone.
FuzzCase make_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  FuzzCase fc;
  fc.trace.name = "fuzz." + std::to_string(seed);
  const int shape = static_cast<int>(seed % 5);
  const int n = 200 + static_cast<int>(rng() % 1800);
  std::uniform_int_distribution<SimTime> service_dist(50 * kMicrosecond,
                                                      20 * kMillisecond);
  SimTime at = 0;
  for (int i = 0; i < n; ++i) {
    trace::TraceRecord r;
    r.arrival = at;
    r.lbn = static_cast<disk::Lbn>(rng() % 1'000'000) * 8;
    r.sectors = 8 << (rng() % 6);
    fc.trace.records.push_back(r);
    fc.services.push_back(service_dist(rng));
    SimTime gap = 0;
    switch (shape) {
      case 0:  // bursty: tight clumps separated by long idles
        gap = (i % 8 == 7) ? static_cast<SimTime>(rng() % (2 * kSecond))
                           : static_cast<SimTime>(rng() % kMillisecond);
        break;
      case 1:  // sparse: almost always idle
        gap = kSecond + static_cast<SimTime>(rng() % (10 * kSecond));
        break;
      case 2:  // heavy: arrivals faster than service, deep queueing
        gap = static_cast<SimTime>(rng() % (2 * kMillisecond));
        break;
      case 3:  // regular with jitter
        gap = 100 * kMillisecond +
              static_cast<SimTime>(rng() % (10 * kMillisecond));
        break;
      default:  // mixed regimes within one trace
        gap = static_cast<SimTime>(rng() % (1 << (10 + 2 * (i % 11))));
        break;
    }
    at += gap;
  }
  // Sometimes a trailing quiet window, sometimes duration < end of
  // activity (the evaluator must take the max).
  fc.trace.duration = (seed % 3 == 0) ? at + 30 * kSecond : at / 2;
  return fc;
}

/// Threshold grid for one decomposition: fixed spread plus the exact
/// order statistics of the trace's own idle durations (equality with an
/// idle duration must NOT capture that interval: the gate is strict).
std::vector<SimTime> grid_for(const IdleDecomposition& d) {
  std::vector<SimTime> thresholds = {0,          kMicrosecond,
                                     kMillisecond, 10 * kMillisecond,
                                     kSecond,    3600 * kSecond};
  if (!d.sorted_gaps.empty()) {
    thresholds.push_back(d.sorted_gaps.front());
    thresholds.push_back(d.sorted_gaps[d.sorted_gaps.size() / 2]);
    thresholds.push_back(d.sorted_gaps.back());
    thresholds.push_back(d.sorted_gaps.back() - 1);
  }
  return thresholds;
}

/// Every field, exactly. EXPECT_EQ on the doubles is deliberate: both
/// paths must perform the same float operations on the same operands.
void expect_identical(const PolicySimResult& ref, const PolicySimResult& got,
                      const std::string& what) {
  EXPECT_EQ(ref.foreground_requests, got.foreground_requests) << what;
  EXPECT_EQ(ref.collisions, got.collisions) << what;
  EXPECT_EQ(ref.total_idle, got.total_idle) << what;
  EXPECT_EQ(ref.idle_utilized, got.idle_utilized) << what;
  EXPECT_EQ(ref.scrub_requests, got.scrub_requests) << what;
  EXPECT_EQ(ref.scrubbed_bytes, got.scrubbed_bytes) << what;
  EXPECT_EQ(ref.slowdown_sum, got.slowdown_sum) << what;
  EXPECT_EQ(ref.slowdown_max, got.slowdown_max) << what;
  EXPECT_EQ(ref.collision_rate, got.collision_rate) << what;
  EXPECT_EQ(ref.idle_utilization, got.idle_utilization) << what;
  EXPECT_EQ(ref.scrub_mb_s, got.scrub_mb_s) << what;
  EXPECT_EQ(ref.mean_slowdown_ms, got.mean_slowdown_ms) << what;
}

/// Cross-checks one trace: full grid + single-threshold evaluator against
/// the reference replay, for two request sizes.
void check_case(const FuzzCase& fc, const std::string& what) {
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  const IdleDecomposition decomp =
      IdleDecomposition::from_trace(fc.trace, fc.services);
  const std::vector<SimTime> thresholds = grid_for(decomp);
  for (std::int64_t bytes : {std::int64_t{64 * 1024}, std::int64_t{
                                 4 * 1024 * 1024}}) {
    const WaitingGridRequest request = make_waiting_grid_request(p, bytes);
    const auto grid = run_waiting_grid(decomp, request,
                                       std::span<const SimTime>(thresholds));
    ASSERT_EQ(grid.size(), thresholds.size());
    PolicySimConfig cfg;
    cfg.scrub_service = make_scrub_service(p);
    cfg.services = &fc.services;
    cfg.sizer = ScrubSizer::fixed(bytes);
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      WaitingPolicy policy(thresholds[i]);
      const PolicySimResult ref =
          run_policy_sim_reference(fc.trace, policy, cfg);
      const std::string cell = what + " bytes=" + std::to_string(bytes) +
                               " th=" + std::to_string(thresholds[i]);
      expect_identical(ref, grid[i], cell + " [grid]");
      expect_identical(ref, run_waiting_single(decomp, request, thresholds[i]),
                       cell + " [single]");
    }
  }
}

TEST(PolicyBatchedDifferential, FuzzTracesMatchReferenceBitForBit) {
  // 55 seeded traces, 11 per shape (seed % 5 picks the shape).
  for (std::uint64_t seed = 1; seed <= 55; ++seed) {
    check_case(make_case(seed), "seed=" + std::to_string(seed));
  }
}

TEST(PolicyBatchedDifferential, EmptyTrace) {
  FuzzCase fc;
  fc.trace.name = "empty";
  fc.trace.duration = 10 * kSecond;
  check_case(fc, "empty");
}

TEST(PolicyBatchedDifferential, EmptyTraceZeroDuration) {
  FuzzCase fc;
  fc.trace.name = "empty0";
  check_case(fc, "empty0");
}

TEST(PolicyBatchedDifferential, AllIdleSingleRecord) {
  // One record, then a long quiet tail: only the trailing window exists.
  FuzzCase fc;
  fc.trace.name = "all-idle";
  fc.trace.records.push_back({0, 0, 128, false});
  fc.services.push_back(5 * kMillisecond);
  fc.trace.duration = 60 * kSecond;
  check_case(fc, "all-idle");
}

TEST(PolicyBatchedDifferential, SingleInteriorInterval) {
  // Exactly one interior idle interval, no trailing window.
  FuzzCase fc;
  fc.trace.name = "one-gap";
  fc.trace.records.push_back({0, 0, 128, false});
  fc.trace.records.push_back({kSecond, 1024, 128, false});
  fc.services = {5 * kMillisecond, 5 * kMillisecond};
  fc.trace.duration = kSecond;
  check_case(fc, "one-gap");
}

TEST(PolicyBatchedDifferential, BurstSwallowsCollisionDelay) {
  // A collision overrun larger than the following gaps: the carried delay
  // must swallow whole idle intervals before draining (the cascade path).
  FuzzCase fc;
  fc.trace.name = "swallow";
  SimTime at = 0;
  for (int i = 0; i < 40; ++i) {
    fc.trace.records.push_back({at, i * 128, 128, false});
    fc.services.push_back(kMillisecond);
    // 200 ms idle, then a run of 2 ms micro-gaps the overrun cascades
    // through.
    at += (i % 10 == 0) ? 200 * kMillisecond : 3 * kMillisecond;
  }
  fc.trace.duration = at;
  check_case(fc, "swallow");
}

TEST(PolicyBatchedDifferential, ZeroServiceScrubRequests) {
  // Degenerate request duration (service <= 0): the reference breaks out
  // of the interval without scrubbing; the decomposition path must too.
  FuzzCase fc = make_case(7);
  const IdleDecomposition decomp =
      IdleDecomposition::from_trace(fc.trace, fc.services);
  WaitingGridRequest request;
  request.request_bytes = 64 * 1024;
  request.request_service = 0;
  PolicySimConfig cfg;
  cfg.scrub_service = [](std::int64_t) { return SimTime{0}; };
  cfg.services = &fc.services;
  cfg.sizer = ScrubSizer::fixed(64 * 1024);
  for (SimTime th : grid_for(decomp)) {
    WaitingPolicy policy(th);
    const PolicySimResult ref =
        run_policy_sim_reference(fc.trace, policy, cfg);
    expect_identical(ref, run_waiting_single(decomp, request, th),
                     "zero-service th=" + std::to_string(th));
  }
}

TEST(PolicyBatchedDifferential, ScenarioFastPathAcrossWorkerCounts) {
  // The exp::run_policy_scenarios fast path, fanned out at 1/4/8 workers:
  // every worker count must agree with the serial reference replay.
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed : {11u, 22u, 33u}) cases.push_back(make_case(seed));

  std::vector<exp::PolicySimScenario> scenarios;
  std::vector<PolicySimResult> reference;
  for (const FuzzCase& fc : cases) {
    const IdleDecomposition decomp =
        IdleDecomposition::from_trace(fc.trace, fc.services);
    for (SimTime th : grid_for(decomp)) {
      exp::PolicySimScenario s;
      s.trace = &fc.trace;
      s.services = &fc.services;
      s.policy.kind = exp::PolicyKind::kWaiting;
      s.policy.threshold = th;
      s.sizer = ScrubSizer::fixed(64 * 1024);
      scenarios.push_back(std::move(s));

      PolicySimConfig cfg;
      cfg.scrub_service = make_scrub_service(p);
      cfg.services = &fc.services;
      cfg.sizer = ScrubSizer::fixed(64 * 1024);
      WaitingPolicy policy(th);
      reference.push_back(run_policy_sim_reference(fc.trace, policy, cfg));
    }
  }
  for (int workers : {1, 4, 8}) {
    exp::SweepOptions options;
    options.workers = workers;
    const auto got = exp::run_policy_scenarios(scenarios, options);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_identical(reference[i], got[i],
                       "workers=" + std::to_string(workers) +
                           " cell=" + std::to_string(i));
    }
  }
}

// ---------------------------------------------------------------------------
// IdleDecomposition properties
// ---------------------------------------------------------------------------

TEST(IdleDecompositionProperty, PrefixSumsMatchNaiveRecomputation) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const FuzzCase fc = make_case(seed);
    const IdleDecomposition d =
        IdleDecomposition::from_trace(fc.trace, fc.services);
    ASSERT_EQ(d.prefix_gap_sum.size(), d.sorted_gaps.size() + 1);
    ASSERT_TRUE(std::is_sorted(d.sorted_gaps.begin(), d.sorted_gaps.end()));
    for (std::size_t k = 0; k <= d.sorted_gaps.size(); ++k) {
      SimTime naive = 0;
      for (std::size_t i = 0; i < k; ++i) naive += d.sorted_gaps[i];
      EXPECT_EQ(d.prefix_gap_sum[k], naive) << "seed=" << seed << " k=" << k;
    }
    // captured_intervals / usable_idle against the quadratic definitions,
    // probing exact gap values and their neighbors.
    std::vector<SimTime> probes = grid_for(d);
    for (SimTime g : d.sorted_gaps) probes.push_back(g + 1);
    for (SimTime t : probes) {
      std::int64_t captured = 0;
      SimTime usable = 0;
      for (SimTime g : d.gaps) {
        if (g > t) {
          ++captured;
          usable += g - t;
        }
      }
      EXPECT_EQ(d.captured_intervals(t), captured)
          << "seed=" << seed << " t=" << t;
      EXPECT_EQ(d.usable_idle(t), usable) << "seed=" << seed << " t=" << t;
    }
  }
}

TEST(IdleDecompositionProperty, UsableIdleMonotoneNonIncreasing) {
  for (std::uint64_t seed = 200; seed < 205; ++seed) {
    const FuzzCase fc = make_case(seed);
    const IdleDecomposition d =
        IdleDecomposition::from_trace(fc.trace, fc.services);
    std::vector<SimTime> probes = grid_for(d);
    for (SimTime g : d.sorted_gaps) probes.push_back(g - 1);
    std::sort(probes.begin(), probes.end());
    for (std::size_t i = 1; i < probes.size(); ++i) {
      EXPECT_LE(d.usable_idle(probes[i]), d.usable_idle(probes[i - 1]))
          << "seed=" << seed;
      EXPECT_LE(d.captured_intervals(probes[i]),
                d.captured_intervals(probes[i - 1]))
          << "seed=" << seed;
    }
  }
}

TEST(IdleDecompositionProperty, SliceAndAppendEqualsWholeTrace) {
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    const FuzzCase fc = make_case(seed);
    const IdleDecomposition whole =
        IdleDecomposition::from_trace(fc.trace, fc.services);

    std::mt19937_64 rng(seed ^ 0xDECADEu);
    const std::size_t cut = 1 + rng() % (fc.trace.records.size() - 1);
    trace::Trace head;
    head.records.assign(fc.trace.records.begin(),
                        fc.trace.records.begin() +
                            static_cast<std::ptrdiff_t>(cut));
    head.duration = 0;  // interior slice: no trailing window of its own
    std::vector<SimTime> head_services(fc.services.begin(),
                                       fc.services.begin() +
                                           static_cast<std::ptrdiff_t>(cut));
    IdleDecomposition merged =
        IdleDecomposition::from_trace(head, head_services);

    trace::IdleAccumulator::Options options;
    options.capture_gaps = true;
    options.busy_until = merged.end_of_activity;
    std::size_t next = cut;
    trace::IdleAccumulator acc(
        [&fc, &next](const trace::TraceRecord&) {
          return fc.services[next++];
        },
        options);
    for (std::size_t i = cut; i < fc.trace.records.size(); ++i) {
      acc.add(fc.trace.records[i]);
    }
    acc.finish();
    const IdleDecomposition tail = IdleDecomposition::from_gap_stream(
        acc.take_gap_stream(), fc.trace.duration);
    merged.append(tail);

    EXPECT_EQ(merged.gaps, whole.gaps) << "seed=" << seed << " cut=" << cut;
    EXPECT_EQ(merged.segment_records, whole.segment_records)
        << "seed=" << seed << " cut=" << cut;
    EXPECT_EQ(merged.leading_records, whole.leading_records);
    EXPECT_EQ(merged.total_records, whole.total_records);
    EXPECT_EQ(merged.end_of_activity, whole.end_of_activity);
    EXPECT_EQ(merged.duration, whole.duration);
    EXPECT_EQ(merged.sorted_gaps, whole.sorted_gaps);
    EXPECT_EQ(merged.prefix_gap_sum, whole.prefix_gap_sum);
    EXPECT_EQ(merged.sorted_pos, whole.sorted_pos);
  }
}

TEST(IdleDecompositionProperty, GapStreamMatchesIdleExtraction) {
  // The captured gap stream must agree with the classic extraction's
  // aggregate totals (one implementation of the sweep, two views).
  for (std::uint64_t seed = 400; seed < 405; ++seed) {
    const FuzzCase fc = make_case(seed);
    std::size_t next = 0;
    const trace::ServiceModel model =
        [&fc, &next](const trace::TraceRecord&) { return fc.services[next++]; };
    const trace::IdleExtraction x =
        trace::extract_idle_intervals(fc.trace, model);
    next = 0;
    const IdleDecomposition d =
        IdleDecomposition::from_trace(fc.trace, fc.services);
    EXPECT_EQ(d.total_gap_idle(), x.total_idle);
    EXPECT_EQ(d.end_of_activity, x.end_of_activity);
    EXPECT_EQ(d.gaps.size(), x.idle_seconds.size());
    std::int64_t segment_total = d.leading_records;
    for (std::int64_t s : d.segment_records) segment_total += s;
    EXPECT_EQ(segment_total, d.total_records);
    EXPECT_EQ(d.total_records,
              static_cast<std::int64_t>(fc.trace.records.size()));
  }
}

}  // namespace
}  // namespace pscrub::core
