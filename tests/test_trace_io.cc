#include <gtest/gtest.h>

#include <sstream>

#include "trace/io.h"
#include "trace/synthetic.h"

namespace pscrub::trace {
namespace {

TEST(TraceIo, RoundTrip) {
  Trace t;
  t.name = "rt";
  t.records = {
      {1000, 42, 8, false},
      {2000, 100, 16, true},
      {5000, 0, 128, false},
  };
  t.duration = 5000;

  std::stringstream ss;
  write_csv(t, ss);
  const Trace back = read_csv(ss, "rt");
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.records[i].arrival, t.records[i].arrival);
    EXPECT_EQ(back.records[i].lbn, t.records[i].lbn);
    EXPECT_EQ(back.records[i].sectors, t.records[i].sectors);
    EXPECT_EQ(back.records[i].is_write, t.records[i].is_write);
  }
  EXPECT_EQ(back.duration, 5000);
}

TEST(TraceIo, HeaderWritten) {
  Trace t;
  std::stringstream ss;
  write_csv(t, ss);
  std::string first;
  std::getline(ss, first);
  EXPECT_EQ(first, "arrival_ns,lbn,sectors,op");
}

TEST(TraceIo, RejectsBadInteger) {
  std::stringstream ss("arrival_ns,lbn,sectors,op\nxx,1,2,R\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsBadOp) {
  std::stringstream ss("arrival_ns,lbn,sectors,op\n1,1,2,Q\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTooFewFields) {
  std::stringstream ss("arrival_ns,lbn,sectors,op\n1,1,2\n");
  EXPECT_THROW(read_csv(ss), std::runtime_error);
}

TEST(TraceIo, SkipsEmptyLines) {
  std::stringstream ss("arrival_ns,lbn,sectors,op\n1,2,3,R\n\n4,5,6,W\n");
  const Trace t = read_csv(ss);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

TEST(TraceIo, SyntheticRoundTripPreservesEverything) {
  TraceSpec spec;
  spec.name = "rt2";
  spec.seed = 7;
  spec.duration = kHour;
  spec.target_requests = 5000;
  SyntheticGenerator gen(spec);
  const Trace t = gen.generate_trace();

  std::stringstream ss;
  write_csv(t, ss);
  const Trace back = read_csv(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); i += 97) {
    EXPECT_EQ(back.records[i].arrival, t.records[i].arrival);
    EXPECT_EQ(back.records[i].lbn, t.records[i].lbn);
  }
}

}  // namespace
}  // namespace pscrub::trace
