#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace pscrub {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(10, [&] { ++fired; });
  q.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));  // double-cancel is a no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelHeadThenNextTime) {
  EventQueue q;
  const EventId a = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, PersistentCancelReArmSurvivesCompaction) {
  // cancel() leaves stale ordering entries behind; once they outnumber
  // live entries (plus slack) a compaction pass re-sorts the heap. A
  // persistent event that is cancelled and re-armed while that churn is
  // in flight must still fire exactly once, at its LAST armed time --
  // its handle and pending arm must survive entry relocation.
  EventQueue q;
  int fires = 0;
  const EventId p = q.add_persistent(EventFn([&] { ++fires; }));
  ASSERT_TRUE(q.arm(p, 1));

  // Each cycle parks one more stale entry (schedule+cancel) and moves
  // the persistent arm, so the loop crosses the stale > live + 64
  // compaction threshold several times with the arm mid-flight.
  SimTime armed_at = 1;
  for (int i = 0; i < 300; ++i) {
    q.cancel(q.schedule(1000 + i, [] {}));
    ASSERT_TRUE(q.cancel(p));      // disarm (stays registered)
    EXPECT_FALSE(q.armed(p));
    armed_at = 2 + i;
    ASSERT_TRUE(q.arm(p, armed_at));
    EXPECT_TRUE(q.armed(p));
  }
  // Compaction bounded the heap: 1 live arm + O(slack) stale entries,
  // nowhere near the 600 entries the loop pushed through it.
  EXPECT_LE(q.heap_entries(), 150u);
  EXPECT_EQ(q.size(), 1u);

  SimTime fired_time = -1;
  ASSERT_TRUE(q.fire_next(10000, &fired_time));
  EXPECT_EQ(fired_time, armed_at);
  EXPECT_EQ(fires, 1);
  // Disarmed after firing, still registered and re-armable.
  EXPECT_FALSE(q.armed(p));
  EXPECT_FALSE(q.fire_next(10000, &fired_time));
  ASSERT_TRUE(q.arm(p, 20000));
  ASSERT_TRUE(q.fire_next(20000, &fired_time));
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(q.remove(p));
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.after(5 * kMillisecond, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5 * kMillisecond);
  EXPECT_EQ(sim.now(), 5 * kMillisecond);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.at(30, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);  // events at exactly `until` fire
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, SchedulingInThePastClampsToNow) {
  Simulator sim;
  SimTime seen = -1;
  sim.at(100, [&] {
    sim.at(50, [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(1, recurse);
  };
  sim.after(1, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.after(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The child stream should not replay the parent's outputs.
  Rng reference(42);
  reference.uniform();  // same consumption as fork()
  bool all_equal = true;
  for (int i = 0; i < 20; ++i) {
    if (child.uniform() != reference.uniform()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.1);
  EXPECT_NEAR(sum / kN, 0.1, 0.002);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(rng.lognormal(1.0, 2.0));
  std::nth_element(xs.begin(), xs.begin() + 50000, xs.end());
  EXPECT_NEAR(xs[50000], std::exp(1.0), 0.1);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // E[Pareto(scale, alpha)] = scale * alpha / (alpha - 1) for alpha > 1.
  Rng rng(11);
  constexpr double kScale = 1.0;
  constexpr double kAlpha = 3.0;
  double sum = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) sum += rng.pareto(kScale, kAlpha);
  EXPECT_NEAR(sum / kN, kAlpha / (kAlpha - 1.0), 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    saw_lo |= v == 0;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(1500), "1.500 us");
  EXPECT_EQ(format_duration(2 * kMillisecond), "2.000 ms");
  EXPECT_EQ(format_duration(3 * kSecond + kSecond / 2), "3.500 s");
  EXPECT_EQ(format_duration(250), "250 ns");
}

TEST(Time, SecondsRoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(0.125)), 0.125);
  EXPECT_DOUBLE_EQ(to_milliseconds(64 * kMillisecond), 64.0);
}

}  // namespace
}  // namespace pscrub
