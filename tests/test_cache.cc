#include <gtest/gtest.h>

#include "disk/cache.h"

namespace pscrub::disk {
namespace {

TEST(SegmentCache, MissOnEmpty) {
  SegmentCache c(1 << 20);
  EXPECT_FALSE(c.lookup(0, 8));
}

TEST(SegmentCache, HitAfterInsert) {
  SegmentCache c(1 << 20);
  c.insert(100, 64);
  EXPECT_TRUE(c.lookup(100, 64));
  EXPECT_TRUE(c.lookup(110, 10));  // sub-range hit
  EXPECT_FALSE(c.lookup(90, 20));  // straddles the front edge
  EXPECT_FALSE(c.lookup(150, 20)); // straddles the back edge
}

TEST(SegmentCache, AdjacentInsertsMerge) {
  SegmentCache c(1 << 20);
  c.insert(0, 64);
  c.insert(64, 64);
  EXPECT_EQ(c.segment_count(), 1u);
  EXPECT_TRUE(c.lookup(0, 128));
}

TEST(SegmentCache, OverlappingInsertsMerge) {
  SegmentCache c(1 << 20);
  c.insert(0, 100);
  c.insert(50, 100);
  EXPECT_EQ(c.segment_count(), 1u);
  EXPECT_TRUE(c.lookup(0, 150));
  EXPECT_EQ(c.used_bytes(), 150 * kSectorBytes);
}

TEST(SegmentCache, DisjointSegmentsStaySeparate) {
  SegmentCache c(1 << 20);
  c.insert(0, 10);
  c.insert(100, 10);
  EXPECT_EQ(c.segment_count(), 2u);
  EXPECT_FALSE(c.lookup(0, 110));
}

TEST(SegmentCache, LruEviction) {
  // Capacity of 128 sectors; three 64-sector segments force eviction of
  // the least recently used.
  SegmentCache c(128 * kSectorBytes);
  c.insert(0, 64);
  c.insert(1000, 64);
  EXPECT_TRUE(c.lookup(0, 64));  // touch segment A -> B becomes LRU
  c.insert(2000, 64);
  EXPECT_TRUE(c.lookup(0, 64));
  EXPECT_FALSE(c.lookup(1000, 64));  // evicted
  EXPECT_TRUE(c.lookup(2000, 64));
}

TEST(SegmentCache, OversizeSegmentTrimmedToTail) {
  SegmentCache c(100 * kSectorBytes);
  c.insert(0, 200);
  EXPECT_EQ(c.used_bytes(), 100 * kSectorBytes);
  // The most recent (highest) half of the range survives.
  EXPECT_TRUE(c.lookup(100, 100));
  EXPECT_FALSE(c.lookup(0, 100));
}

TEST(SegmentCache, ClearDropsEverything) {
  SegmentCache c(1 << 20);
  c.insert(0, 64);
  c.clear();
  EXPECT_FALSE(c.lookup(0, 64));
  EXPECT_EQ(c.used_bytes(), 0);
}

TEST(SegmentCache, ZeroSectorInsertIgnored) {
  SegmentCache c(1 << 20);
  c.insert(0, 0);
  EXPECT_EQ(c.segment_count(), 0u);
}

}  // namespace
}  // namespace pscrub::disk
