// Fault-injection and error-path tests: the in-band media-error model on
// the disk, host-side retry/timeout/backoff in the block layer, fault
// plans and the injector, scrubber graceful degradation, scenario wiring,
// sweep determinism, and the in-band vs analytical MLET cross-check.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "block/block_layer.h"
#include "block/noop_scheduler.h"
#include "core/lse.h"
#include "core/scrub_strategy.h"
#include "core/scrubber.h"
#include "disk/disk_model.h"
#include "disk/profile.h"
#include "exp/scenario.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"

namespace pscrub {
namespace {

disk::DiskProfile small_profile(std::int64_t capacity = 1LL << 30) {
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  p.capacity_bytes = capacity;
  return p;
}

/// Enterprise drive: in-band errors with a tight ERC/TLER recovery cap.
disk::DiskErrorModel enterprise_model() {
  disk::DiskErrorModel m;
  m.in_band = true;
  m.erc_timeout = 100 * kMillisecond;
  return m;
}

/// Desktop drive: in-band errors, no ERC -- the multi-second retry grind.
disk::DiskErrorModel desktop_model() {
  disk::DiskErrorModel m;
  m.in_band = true;
  return m;
}

struct Fixture {
  Simulator sim;
  disk::DiskModel disk;
  block::BlockLayer blk;

  Fixture()
      : disk(sim, small_profile(), 1),
        blk(sim, disk, std::make_unique<block::NoopScheduler>()) {}
};

block::BlockRequest make_request(disk::CommandKind kind, disk::Lbn lbn,
                                 std::int64_t sectors,
                                 block::RequestCompletionFn fn) {
  block::BlockRequest r;
  r.cmd.kind = kind;
  r.cmd.lbn = lbn;
  r.cmd.sectors = sectors;
  r.on_complete = std::move(fn);
  return r;
}

// ---------------------------------------------------------------------------
// Fault plans.

TEST(FaultPlan, DeterministicAndDiskCountAgnostic) {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.lse.burst_interarrival_mean = kHour;
  const std::int64_t sectors = 1 << 20;

  const fault::FaultPlan a = fault::build_fault_plan(spec, 3, sectors, kDay);
  const fault::FaultPlan b = fault::build_fault_plan(spec, 3, sectors, kDay);
  ASSERT_EQ(a.disks.size(), 3u);
  for (std::size_t d = 0; d < 3; ++d) {
    ASSERT_EQ(a.disks[d].bursts.size(), b.disks[d].bursts.size());
    ASSERT_FALSE(a.disks[d].bursts.empty());
    for (std::size_t i = 0; i < a.disks[d].bursts.size(); ++i) {
      EXPECT_EQ(a.disks[d].bursts[i].occurred, b.disks[d].bursts[i].occurred);
      EXPECT_EQ(a.disks[d].bursts[i].sectors, b.disks[d].bursts[i].sectors);
    }
  }

  // Disk i's faults derive from task_seed(seed, i) alone: the same disk in
  // a smaller plan draws the identical schedule.
  const fault::FaultPlan solo = fault::build_fault_plan(spec, 1, sectors, kDay);
  ASSERT_EQ(solo.disks[0].bursts.size(), a.disks[0].bursts.size());
  EXPECT_EQ(solo.disks[0].bursts[0].occurred, a.disks[0].bursts[0].occurred);
  EXPECT_EQ(solo.disks[0].bursts[0].sectors, a.disks[0].bursts[0].sectors);

  // Different disks draw different faults.
  EXPECT_NE(a.disks[0].bursts[0].sectors, a.disks[1].bursts[0].sectors);
}

TEST(FaultPlan, DisabledSpecMaterializesEmpty) {
  fault::FaultSpec spec;  // enabled = false
  const fault::FaultPlan p = fault::build_fault_plan(spec, 2, 1 << 20, kDay);
  EXPECT_TRUE(p.empty());
  ASSERT_EQ(p.disks.size(), 2u);
  EXPECT_EQ(p.disks[0].total_error_sectors(), 0);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  fault::FaultSpec spec;
  spec.enabled = true;
  EXPECT_THROW(fault::build_fault_plan(spec, 0, 1 << 20, kDay),
               std::invalid_argument);
  EXPECT_THROW(fault::build_fault_plan(spec, 1, 1 << 20, 0),
               std::invalid_argument);

  spec.fail_disk.push_back({.disk = 2, .at = kHour});  // out of range for 2
  EXPECT_THROW(fault::build_fault_plan(spec, 2, 1 << 20, kDay),
               std::invalid_argument);

  spec.fail_disk[0] = {.disk = 0, .at = -5};  // negative failure time
  EXPECT_THROW(fault::build_fault_plan(spec, 2, 1 << 20, kDay),
               std::invalid_argument);

  spec.fail_disk[0] = {.disk = 0, .at = kHour};
  spec.fail_disk.push_back({.disk = 0, .at = 2 * kHour});  // duplicate disk
  EXPECT_THROW(fault::build_fault_plan(spec, 2, 1 << 20, kDay),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// In-band disk errors.

TEST(DiskErrors, InBandMediaErrorFailsTheCommand) {
  Fixture f;
  f.disk.set_error_model(enterprise_model());
  f.disk.inject_lse(1000);

  block::BlockResult res;
  f.blk.submit(make_request(
      disk::CommandKind::kRead, 960, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        res = r;
      }));
  f.sim.run();

  EXPECT_EQ(res.status, disk::IoStatus::kMediaError);
  EXPECT_EQ(res.error_lbn, 1000);
  EXPECT_GT(res.internal_retries, 0);
  EXPECT_EQ(f.disk.counters().media_errors, 1);
  EXPECT_GT(f.disk.counters().recovery_time, 0);
  EXPECT_EQ(f.blk.stats().errors, 1);
  EXPECT_EQ(f.blk.stats().media_errors, 1);
}

TEST(DiskErrors, ErcCapsTheRecoveryGrind) {
  Fixture desktop;
  Fixture enterprise;
  desktop.disk.set_error_model(desktop_model());
  enterprise.disk.set_error_model(enterprise_model());
  desktop.disk.inject_lse(500);
  enterprise.disk.inject_lse(500);

  SimTime desktop_latency = 0;
  SimTime enterprise_latency = 0;
  desktop.blk.submit(make_request(
      disk::CommandKind::kRead, 448, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        desktop_latency = r.latency;
      }));
  enterprise.blk.submit(make_request(
      disk::CommandKind::kRead, 448, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        enterprise_latency = r.latency;
      }));
  desktop.sim.run();
  enterprise.sim.run();

  // Desktop: the full 3 s per-sector recovery budget. Enterprise: the
  // 100 ms ERC cap plus ordinary positioning.
  EXPECT_GE(desktop_latency, 3 * kSecond);
  EXPECT_LT(enterprise_latency, kSecond);
  EXPECT_GE(enterprise_latency, 100 * kMillisecond);
}

TEST(DiskErrors, WriteRemapsBadSectors) {
  Fixture f;
  f.disk.set_error_model(enterprise_model());
  f.disk.inject_lse(100);

  block::BlockResult wres;
  f.blk.submit(make_request(
      disk::CommandKind::kWrite, 0, 256,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        wres = r;
      }));
  f.sim.run();
  EXPECT_TRUE(wres.ok()) << "writes remap, they do not fail";
  EXPECT_FALSE(f.disk.has_lse(100));
  EXPECT_EQ(f.disk.counters().lse_repaired, 1);

  block::BlockResult rres;
  f.blk.submit(make_request(
      disk::CommandKind::kVerifyScsi, 0, 256,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        rres = r;
      }));
  f.sim.run();
  EXPECT_TRUE(rres.ok()) << "the healed sector verifies clean";
}

TEST(DiskErrors, FailedDeviceFastFailsUntilReplaced) {
  Fixture f;
  f.disk.fail_device();

  block::BlockResult res;
  SimTime completed_at = -1;
  f.blk.submit(make_request(
      disk::CommandKind::kRead, 0, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        res = r;
        completed_at = f.sim.now();
      }));
  f.sim.run();
  EXPECT_EQ(res.status, disk::IoStatus::kDiskFailed);
  EXPECT_LT(completed_at, 10 * kMillisecond) << "electronics answer fast";
  EXPECT_EQ(f.disk.counters().failed_commands, 1);
  EXPECT_EQ(f.blk.stats().disk_failures, 1);

  f.disk.replace_device();
  block::BlockResult after;
  f.blk.submit(make_request(
      disk::CommandKind::kRead, 0, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        after = r;
      }));
  f.sim.run();
  EXPECT_TRUE(after.ok());
}

TEST(DiskErrors, TransientErrorsRecoverOnHostRetry) {
  Fixture f;
  disk::DiskErrorModel m = enterprise_model();
  m.transient_error_prob = 0.5;
  f.disk.set_error_model(m);

  block::RetryPolicy rp;
  rp.max_retries = 10;
  rp.backoff_base = kMillisecond;
  f.blk.set_retry_policy(rp);

  int done = 0;
  int failures = 0;
  for (int i = 0; i < 20; ++i) {
    f.blk.submit(make_request(
        disk::CommandKind::kVerifyScsi, i * 10000, 64,
        [&](const block::BlockRequest&, const block::BlockResult& r) {
          ++done;
          if (!r.ok()) ++failures;
        }));
  }
  f.sim.run();

  EXPECT_EQ(done, 20);
  EXPECT_EQ(failures, 0) << "every transient recovered within the budget";
  EXPECT_GT(f.blk.stats().retries, 0);
  EXPECT_GT(f.disk.counters().transient_errors, 0);
  EXPECT_EQ(f.blk.stats().errors, 0);
}

// ---------------------------------------------------------------------------
// Host-side retry / backoff / timeout.

TEST(BlockRetry, MediaErrorsPassThroughByDefault) {
  Fixture f;
  f.disk.set_error_model(enterprise_model());
  f.disk.inject_lse(1000);
  block::RetryPolicy rp;
  rp.max_retries = 3;  // retry_media_errors stays false
  f.blk.set_retry_policy(rp);

  block::BlockResult res;
  f.blk.submit(make_request(
      disk::CommandKind::kRead, 960, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        res = r;
      }));
  f.sim.run();
  EXPECT_EQ(res.status, disk::IoStatus::kMediaError);
  EXPECT_EQ(res.retries, 0) << "media errors are not retried by default";
  EXPECT_EQ(f.blk.stats().retries, 0);
}

TEST(BlockRetry, MediaErrorRetriedWithExponentialBackoff) {
  Fixture f;
  f.disk.set_error_model(enterprise_model());
  f.disk.inject_lse(1000);
  block::RetryPolicy rp;
  rp.max_retries = 2;
  rp.retry_media_errors = true;
  rp.backoff_base = 10 * kMillisecond;
  rp.backoff_multiplier = 2.0;
  f.blk.set_retry_policy(rp);

  block::BlockResult res;
  f.blk.submit(make_request(
      disk::CommandKind::kRead, 960, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        res = r;
      }));
  f.sim.run();
  EXPECT_EQ(res.status, disk::IoStatus::kMediaError) << "the sector stays bad";
  EXPECT_EQ(res.retries, 2);
  EXPECT_EQ(f.blk.stats().retries, 2);
  // 3 attempts x (>= 100 ms ERC) + 10 ms + 20 ms backoff.
  EXPECT_GE(res.latency, 3 * 100 * kMillisecond + 30 * kMillisecond);
}

TEST(BlockTimeout, TimeoutDeliveredWhileTheDriveGrinds) {
  Fixture f;
  f.disk.set_error_model(desktop_model());  // 3 s recovery, no ERC
  f.disk.inject_lse(100);
  block::RetryPolicy rp;
  rp.timeout = 500 * kMillisecond;
  f.blk.set_retry_policy(rp);

  block::BlockResult first;
  SimTime first_at = -1;
  block::BlockResult second;
  SimTime second_at = -1;
  f.blk.submit(make_request(
      disk::CommandKind::kRead, 64, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        first = r;
        first_at = f.sim.now();
      }));
  f.blk.submit(make_request(
      disk::CommandKind::kRead, 500000, 128,
      [&](const block::BlockRequest&, const block::BlockResult& r) {
        second = r;
        second_at = f.sim.now();
      }));
  f.sim.run();

  // The caller hears kTimeout at the deadline; the drive cannot be
  // preempted, so the queued request only dispatches once the grind ends.
  EXPECT_EQ(first.status, disk::IoStatus::kTimeout);
  EXPECT_EQ(first_at, 500 * kMillisecond);
  EXPECT_TRUE(second.ok());
  EXPECT_GE(second_at, 3 * kSecond);
  EXPECT_EQ(f.blk.stats().timeouts, 1);
  EXPECT_EQ(f.blk.stats().completed, 2);
}

TEST(BlockLayer, ExactlyOnceCompletionUnderHeavyFaults) {
  Fixture f;
  disk::DiskErrorModel m = enterprise_model();
  m.transient_error_prob = 0.3;
  f.disk.set_error_model(m);
  for (disk::Lbn s = 0; s < 200000; s += 1000) f.disk.inject_lse(s);

  block::RetryPolicy rp;
  rp.max_retries = 3;
  rp.retry_media_errors = true;
  rp.backoff_base = 5 * kMillisecond;
  rp.timeout = 300 * kMillisecond;
  f.blk.set_retry_policy(rp);

  constexpr int kRequests = 200;
  std::map<std::uint64_t, int> completions;
  int done = 0;
  for (int i = 0; i < kRequests; ++i) {
    const disk::CommandKind kind =
        i % 3 == 0   ? disk::CommandKind::kWrite
        : i % 3 == 1 ? disk::CommandKind::kRead
                     : disk::CommandKind::kVerifyScsi;
    f.blk.submit(make_request(
        kind, (static_cast<disk::Lbn>(i) * 997) % 190000, 64,
        [&](const block::BlockRequest& r, const block::BlockResult&) {
          ++completions[r.id];
          ++done;
        }));
  }
  f.sim.run();

  // Every request completes exactly once -- success or typed error, never
  // lost, never doubled -- even with retries and timeouts interleaving.
  EXPECT_EQ(done, kRequests);
  EXPECT_EQ(completions.size(), static_cast<std::size_t>(kRequests));
  for (const auto& [id, n] : completions) {
    EXPECT_EQ(n, 1) << "request " << id << " completed " << n << " times";
  }
  EXPECT_EQ(f.blk.stats().submitted, kRequests);
  EXPECT_EQ(f.blk.stats().completed, kRequests);
  EXPECT_GT(f.blk.stats().errors, 0);
  EXPECT_GT(f.blk.stats().retries, 0);
}

// ---------------------------------------------------------------------------
// Scrubber degradation.

TEST(Scrubber, ContinuesThePassPastBadExtents) {
  Fixture f;
  f.disk.set_error_model(enterprise_model());
  f.disk.inject_lse(100);
  f.disk.inject_lse(5000);

  core::ScrubberConfig cfg;
  cfg.priority = block::IoPriority::kBestEffort;
  core::Scrubber scrub(f.sim, f.blk,
                       std::make_unique<core::SequentialStrategy>(
                           f.disk.total_sectors(), 128),
                       cfg);
  scrub.start();
  f.sim.run_until(10 * kSecond);
  scrub.stop();

  EXPECT_GE(scrub.stats().errors.value(), 2) << "both bad extents reported";
  EXPECT_GT(scrub.stats().requests.value(), 100) << "the pass kept going";
  EXPECT_EQ(f.disk.counters().lse_detected, 2);
}

TEST(Scrubber, StopsWhenTheDeviceFails) {
  Fixture f;
  core::ScrubberConfig cfg;
  cfg.priority = block::IoPriority::kBestEffort;
  core::Scrubber scrub(f.sim, f.blk,
                       std::make_unique<core::SequentialStrategy>(
                           f.disk.total_sectors(), 128),
                       cfg);
  scrub.start();
  f.sim.after(2 * kSecond, [&] { f.disk.fail_device(); });
  f.sim.run_until(4 * kSecond);

  EXPECT_GE(scrub.stats().errors.value(), 1) << "the kDiskFailed completion";
  const std::int64_t requests_after_failure = scrub.stats().requests.value();
  f.sim.run_until(10 * kSecond);
  EXPECT_EQ(scrub.stats().requests.value(), requests_after_failure)
      << "a dead device stops the scrubber";
}

// ---------------------------------------------------------------------------
// The injector.

TEST(Injector, DrivesPlannedFaultsIntoTheDisk) {
  Simulator sim;
  disk::DiskModel d(sim, small_profile(), 1);
  block::BlockLayer blk(sim, d, std::make_unique<block::NoopScheduler>());

  fault::FaultPlan plan;
  plan.error_model = enterprise_model();
  fault::DiskFaultPlan dp;
  dp.bursts.push_back(core::LseBurst{kSecond, {100, 5000}});
  dp.fail_at = 20 * kSecond;
  plan.disks.push_back(dp);

  fault::FaultInjector inj(sim, std::move(plan));
  inj.attach(d, 0);
  EXPECT_TRUE(d.error_model().in_band) << "attach installs the error model";

  sim.run_until(2 * kSecond);
  EXPECT_EQ(inj.injected_sectors(), 2);
  EXPECT_TRUE(d.has_lse(100));
  EXPECT_TRUE(d.has_lse(5000));

  // Two verifies of the same extent: the second detection is deduplicated.
  for (int i = 0; i < 2; ++i) {
    blk.submit(make_request(disk::CommandKind::kVerifyScsi, 64, 128,
                            [](const block::BlockRequest&,
                               const block::BlockResult&) {}));
  }
  sim.run_until(3 * kSecond);
  ASSERT_EQ(inj.detections().size(), 1u);
  EXPECT_EQ(inj.detections()[0].lbn, 100);
  EXPECT_EQ(inj.detections()[0].occurred, kSecond);
  EXPECT_GT(inj.detections()[0].detected, kSecond);
  EXPECT_FALSE(inj.detections()[0].by_read);
  EXPECT_EQ(inj.scrub_detections(), 1);
  EXPECT_GT(inj.mean_detection_hours(), 0.0);

  // A foreground read finds the second sector.
  blk.submit(make_request(disk::CommandKind::kRead, 4992, 128,
                          [](const block::BlockRequest&,
                             const block::BlockResult&) {}));
  sim.run_until(4 * kSecond);
  EXPECT_EQ(inj.detections().size(), 2u);
  EXPECT_EQ(inj.read_detections(), 1);

  // The planned device failure fires on schedule.
  EXPECT_FALSE(d.device_failed());
  sim.run_until(25 * kSecond);
  EXPECT_TRUE(d.device_failed());
  EXPECT_EQ(inj.device_failures(), 1);
}

TEST(Injector, ChainsOverAnExistingLseObserver) {
  Simulator sim;
  disk::DiskModel d(sim, small_profile(), 1);
  block::BlockLayer blk(sim, d, std::make_unique<block::NoopScheduler>());

  std::vector<disk::Lbn> seen_by_original;
  d.set_lse_observer(
      [&](disk::Lbn lbn, bool) { seen_by_original.push_back(lbn); });

  fault::FaultPlan plan;
  plan.error_model = enterprise_model();
  fault::DiskFaultPlan dp;
  dp.bursts.push_back(core::LseBurst{kMillisecond, {200}});
  plan.disks.push_back(dp);
  fault::FaultInjector inj(sim, std::move(plan));
  inj.attach(d, 0);

  sim.run_until(10 * kMillisecond);
  blk.submit(make_request(disk::CommandKind::kVerifyScsi, 128, 128,
                          [](const block::BlockRequest&,
                             const block::BlockResult&) {}));
  sim.run();

  EXPECT_EQ(inj.detections().size(), 1u) << "the injector saw the hit";
  ASSERT_EQ(seen_by_original.size(), 1u) << "and the chained observer too";
  EXPECT_EQ(seen_by_original[0], 200);
}

// ---------------------------------------------------------------------------
// Scenario wiring and sweep determinism.

exp::ScenarioConfig fault_scenario(const std::string& label,
                                   std::uint64_t fault_seed) {
  exp::ScenarioConfig cfg;
  cfg.label = label;
  cfg.disk.capacity_bytes = 64LL << 20;
  cfg.scheduler = exp::SchedulerKind::kNoop;
  cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
  cfg.scrubber.priority = block::IoPriority::kBestEffort;
  cfg.scrubber.strategy.request_bytes = 64 * 1024;
  cfg.workload.kind = exp::WorkloadKind::kRandomReads;
  cfg.fault.enabled = true;
  cfg.fault.seed = fault_seed;
  cfg.fault.error_model.erc_timeout = 50 * kMillisecond;
  cfg.fault.error_model.transient_error_prob = 0.02;
  cfg.fault.lse.burst_interarrival_mean = 5 * kSecond;
  cfg.fault.lse_horizon = 15 * kSecond;
  cfg.retry.max_retries = 3;
  cfg.retry.backoff_base = 5 * kMillisecond;
  cfg.run_for = 30 * kSecond;
  return cfg;
}

TEST(Scenario, FaultInjectionFlowsIntoResults) {
  const exp::ScenarioResult res =
      exp::run_scenario(fault_scenario("fault-smoke", 7));
  EXPECT_GT(res.fault_injected_sectors, 0);
  EXPECT_GT(res.fault_detections, 0);
  EXPECT_GT(res.fault_mean_detection_hours, 0.0);
  EXPECT_GT(res.io_errors, 0) << "bad sectors surfaced as typed errors";
  EXPECT_GT(res.scrub_requests, 0) << "scrubbing continued despite errors";
}

TEST(Scenario, SweepBitIdenticalAcrossWorkerCounts) {
  std::vector<exp::ScenarioConfig> configs;
  for (int i = 0; i < 3; ++i) {
    configs.push_back(
        fault_scenario("sweep" + std::to_string(i), 7 + static_cast<std::uint64_t>(i)));
    configs.back().run_for = 20 * kSecond;
  }

  exp::SweepOptions serial;
  serial.workers = 1;
  exp::SweepOptions wide;
  wide.workers = 4;
  exp::SweepOptions wider;
  wider.workers = 8;
  const auto r1 = exp::run_scenarios(configs, serial);
  const auto r4 = exp::run_scenarios(configs, wide);
  const auto r8 = exp::run_scenarios(configs, wider);

  ASSERT_EQ(r1.size(), configs.size());
  ASSERT_EQ(r4.size(), configs.size());
  ASSERT_EQ(r8.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (const auto* r : {&r4[i], &r8[i]}) {
      EXPECT_EQ(r1[i].workload_requests, r->workload_requests);
      EXPECT_EQ(r1[i].scrub_requests, r->scrub_requests);
      EXPECT_EQ(r1[i].scrub_bytes, r->scrub_bytes);
      EXPECT_EQ(r1[i].io_errors, r->io_errors);
      EXPECT_EQ(r1[i].io_timeouts, r->io_timeouts);
      EXPECT_EQ(r1[i].io_retries, r->io_retries);
      EXPECT_EQ(r1[i].fault_injected_sectors, r->fault_injected_sectors);
      EXPECT_EQ(r1[i].fault_detections, r->fault_detections);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(r1[i].fault_mean_detection_hours,
                r->fault_mean_detection_hours);
    }
  }
}

TEST(ScenarioValidation, RejectsBadConfigs) {
  const exp::ScenarioConfig base = fault_scenario("valid", 7);
  EXPECT_NO_THROW(exp::validate_scenario(base));

  {
    exp::ScenarioConfig c = base;
    c.scrubber.strategy.request_bytes = 0;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = base;
    c.workload.synthetic.request_bytes = 0;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    exp::ScenarioConfig c = base;
    c.fault.error_model.transient_error_prob = 1.5;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    // Members too small to hold even one stripe: a chunk bigger than the
    // whole member disk leaves zero complete stripes.
    exp::ScenarioConfig c = base;
    c.raid.enabled = true;
    c.raid.chunk_sectors = (c.disk.capacity_bytes / disk::kSectorBytes) * 2;
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    // fail_disk index beyond the array.
    exp::ScenarioConfig c = base;
    c.raid.enabled = true;
    c.fault.fail_disk.push_back({.disk = 7, .at = kSecond});
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    // Duplicate fail_disk entries.
    exp::ScenarioConfig c = base;
    c.raid.enabled = true;
    c.fault.fail_disk.push_back({.disk = 0, .at = kSecond});
    c.fault.fail_disk.push_back({.disk = 0, .at = 2 * kSecond});
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
  {
    // RAID-5 cannot survive two failures: reject by construction.
    exp::ScenarioConfig c = base;
    c.raid.enabled = true;
    c.fault.fail_disk.push_back({.disk = 0, .at = kSecond});
    c.fault.fail_disk.push_back({.disk = 1, .at = 2 * kSecond});
    EXPECT_THROW(exp::validate_scenario(c), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// In-band vs analytical MLET cross-check.

TEST(MletCrossCheck, InBandDetectionMatchesAnalyticalModel) {
  // A back-to-back sequential scrub with in-band faults, measured in the
  // event-driven stack, against core::evaluate_mlet's schedule walk over
  // the very same bursts. Tolerance: 25% relative error on the mean. The
  // analytical model assumes a perfectly constant request rate; the
  // event-driven pass drifts from it by the per-pass error-recovery time
  // (ERC grind on every bad extent, every pass) and the mechanical
  // variance of real positioning, and detections land at request
  // completion rather than at the extent's nominal offset.
  const std::int64_t kRequestBytes = 64 * 1024;
  exp::ScenarioConfig cfg;
  cfg.label = "mlet-crosscheck";
  cfg.disk.capacity_bytes = 64LL << 20;
  cfg.scheduler = exp::SchedulerKind::kNoop;
  cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
  cfg.scrubber.priority = block::IoPriority::kBestEffort;
  cfg.scrubber.strategy.kind = exp::StrategyKind::kSequential;
  cfg.scrubber.strategy.request_bytes = kRequestBytes;
  cfg.fault.enabled = true;
  cfg.fault.error_model.erc_timeout = 10 * kMillisecond;
  cfg.fault.lse.burst_interarrival_mean = 10 * kSecond;
  cfg.fault.lse.extra_errors_per_burst_mean = 3.0;
  cfg.fault.lse_horizon = 60 * kSecond;
  cfg.run_for = 120 * kSecond;

  exp::Scenario scenario(cfg);
  scenario.run();
  const fault::FaultInjector* inj = scenario.fault_injector();
  ASSERT_NE(inj, nullptr);

  const std::vector<core::LseBurst>& bursts = inj->plan().disks[0].bursts;
  std::set<disk::Lbn> unique_sectors;
  for (const core::LseBurst& b : bursts) {
    unique_sectors.insert(b.sectors.begin(), b.sectors.end());
  }
  ASSERT_GT(unique_sectors.size(), 5u) << "need a meaningful sample";
  ASSERT_EQ(inj->detections().size(), unique_sectors.size())
      << "full coverage required before comparing means";

  core::MletConfig mc;
  // The event-driven scrubber has no scan-on-detect response.
  mc.scrub_on_detection = false;
  mc.request_service = from_seconds(
      exp::measure_sequential_verify(cfg.disk.profile(),
                                     disk::CommandKind::kVerifyScsi,
                                     kRequestBytes) /
      1e3);
  const std::int64_t total_sectors = scenario.disk().total_sectors();
  core::SequentialStrategy seq(total_sectors,
                               disk::sectors_from_bytes(kRequestBytes));
  const core::MletResult analytical =
      core::evaluate_mlet(seq, total_sectors, bursts, mc);

  ASSERT_GT(analytical.mlet_hours, 0.0);
  const double measured = inj->mean_detection_hours();
  EXPECT_NEAR(measured / analytical.mlet_hours, 1.0, 0.25)
      << "measured " << measured << " h vs analytical "
      << analytical.mlet_hours << " h";
}

}  // namespace
}  // namespace pscrub
