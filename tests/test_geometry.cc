#include <gtest/gtest.h>

#include "disk/geometry.h"

namespace pscrub::disk {
namespace {

TEST(Geometry, CoversRequestedCapacity) {
  const std::int64_t capacity = 10LL * 1000 * 1000 * 1000;  // 10 GB
  Geometry g(capacity, 1500, 800);
  EXPECT_GE(g.total_bytes(), capacity);
  // Not wastefully larger: within one cylinder of slack per zone.
  EXPECT_LT(g.total_bytes(), capacity + 17 * 1500 * kSectorBytes);
}

TEST(Geometry, LocateFirstAndLastSector) {
  Geometry g(1LL << 30, 1000, 500, 4);
  const PhysicalPos first = g.locate(0);
  EXPECT_EQ(first.cylinder, 0);
  EXPECT_DOUBLE_EQ(first.angle, 0.0);
  EXPECT_EQ(first.spt, 1000);

  const PhysicalPos last = g.locate(g.total_sectors() - 1);
  EXPECT_EQ(last.cylinder, g.cylinders() - 1);
  EXPECT_EQ(last.spt, 500);
}

TEST(Geometry, AngleAdvancesWithinTrack) {
  Geometry g(1LL << 30, 1000, 500, 4);
  const PhysicalPos a = g.locate(10);
  const PhysicalPos b = g.locate(11);
  EXPECT_EQ(a.cylinder, b.cylinder);
  EXPECT_NEAR(b.angle - a.angle, 1.0 / 1000.0, 1e-12);
}

TEST(Geometry, TrackBoundaryResetsAngle) {
  Geometry g(1LL << 30, 1000, 500, 4);
  const PhysicalPos end_of_track = g.locate(999);
  const PhysicalPos start_of_next = g.locate(1000);
  EXPECT_EQ(start_of_next.cylinder, end_of_track.cylinder + 1);
  EXPECT_DOUBLE_EQ(start_of_next.angle, 0.0);
}

TEST(Geometry, MonotoneCylinders) {
  Geometry g(4LL << 30, 1200, 600, 8);
  std::int64_t prev_cyl = -1;
  for (Lbn lbn = 0; lbn < g.total_sectors(); lbn += 7919) {
    const PhysicalPos p = g.locate(lbn);
    EXPECT_GE(p.cylinder, prev_cyl);
    prev_cyl = p.cylinder;
  }
}

TEST(Geometry, ZonedDensityDecreasesInward) {
  Geometry g(8LL << 30, 1600, 800, 16);
  const std::int64_t outer = g.sectors_per_track(0);
  const std::int64_t inner = g.sectors_per_track(g.total_sectors() - 1);
  EXPECT_EQ(outer, 1600);
  EXPECT_EQ(inner, 800);
  EXPECT_GT(g.mean_sectors_per_track(), 800.0);
  EXPECT_LT(g.mean_sectors_per_track(), 1600.0);
}

TEST(Geometry, SingleZoneUniform) {
  Geometry g(1LL << 28, 1000, 1000, 1);
  EXPECT_EQ(g.sectors_per_track(0), 1000);
  EXPECT_EQ(g.sectors_per_track(g.total_sectors() - 1), 1000);
  EXPECT_DOUBLE_EQ(g.mean_sectors_per_track(), 1000.0);
}

TEST(Geometry, ValidBounds) {
  Geometry g(1LL << 28, 1000, 800, 4);
  EXPECT_TRUE(g.valid(0, 1));
  EXPECT_TRUE(g.valid(g.total_sectors() - 8, 8));
  EXPECT_FALSE(g.valid(g.total_sectors() - 8, 9));
  EXPECT_FALSE(g.valid(-1, 1));
  EXPECT_FALSE(g.valid(0, 0));
}

// Property sweep: every LBN maps into a consistent, invertible-ish layout
// (cylinder capacity accounted exactly).
class GeometryParamTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(GeometryParamTest, SectorsPartitionIntoTracksExactly) {
  const auto [capacity, zones] = GetParam();
  Geometry g(capacity, 1700, 900, zones);
  // Walk zone edges: the first LBN of each cylinder has angle 0.
  std::int64_t checked = 0;
  for (Lbn lbn = 0; lbn < g.total_sectors() && checked < 2000;) {
    const PhysicalPos p = g.locate(lbn);
    EXPECT_DOUBLE_EQ(p.angle, 0.0) << "lbn " << lbn;
    lbn += p.spt;  // jump one full track
    ++checked;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, GeometryParamTest,
    ::testing::Combine(::testing::Values(std::int64_t{1} << 28,
                                         std::int64_t{1} << 30,
                                         std::int64_t{3} << 30),
                       ::testing::Values(1, 4, 16)));

}  // namespace
}  // namespace pscrub::disk
