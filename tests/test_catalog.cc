#include <gtest/gtest.h>

#include <set>

#include "trace/catalog.h"

namespace pscrub::trace {
namespace {

TEST(Catalog, TableOneHasTenDisks) {
  const auto specs = table1_specs();
  ASSERT_EQ(specs.size(), 10u);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  EXPECT_TRUE(names.count("MSRsrc11"));
  EXPECT_TRUE(names.count("MSRusr1"));
  EXPECT_TRUE(names.count("MSRproj2"));
  EXPECT_TRUE(names.count("MSRprn1"));
  EXPECT_TRUE(names.count("HPc6t8d0"));
  EXPECT_TRUE(names.count("HPc6t5d1"));
  EXPECT_TRUE(names.count("HPc6t5d0"));
  EXPECT_TRUE(names.count("HPc3t3d0"));
  EXPECT_TRUE(names.count("TPCdisk66"));
  EXPECT_TRUE(names.count("TPCdisk88"));
}

TEST(Catalog, TableOneRequestCountsMatchPaper) {
  const auto specs = table1_specs();
  for (const auto& s : specs) {
    if (s.name == "MSRsrc11") {
      EXPECT_EQ(s.target_requests, 45'746'222);
    }
    if (s.name == "HPc6t8d0") {
      EXPECT_EQ(s.target_requests, 9'529'855);
    }
    if (s.name == "TPCdisk66") {
      EXPECT_EQ(s.target_requests, 513'038);
    }
  }
}

TEST(Catalog, TpccIsMemorylessAndShort) {
  const auto spec = spec_by_name("TPCdisk66");
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->model, ArrivalModel::kMemoryless);
  EXPECT_LT(spec->duration, kHour);
  EXPECT_EQ(spec->period, 0);
}

TEST(Catalog, DiskTracesAreWeekLongAndPeriodic) {
  for (const char* name : {"MSRsrc11", "HPc6t8d0"}) {
    const auto spec = spec_by_name(name);
    ASSERT_TRUE(spec) << name;
    EXPECT_EQ(spec->duration, kWeek);
    EXPECT_EQ(spec->period, kDay);
    EXPECT_FALSE(spec->spike_hours.empty());
  }
}

TEST(Catalog, Usr2AvailableForFig14) {
  const auto spec = spec_by_name("MSRusr2");
  ASSERT_TRUE(spec);
  EXPECT_GT(spec->target_requests, 1'000'000);
}

TEST(Catalog, UnknownNameIsNullopt) {
  EXPECT_FALSE(spec_by_name("NOPEdisk0"));
}

TEST(Catalog, Busiest63Unique) {
  const auto specs = busiest63_specs();
  ASSERT_EQ(specs.size(), 63u);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  EXPECT_EQ(names.size(), 63u);
}

TEST(Catalog, Busiest63FirstFiveAperiodic) {
  const auto specs = busiest63_specs();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(specs[i].period, 0) << specs[i].name;
  }
  // Table I disks embedded in the set keep their daily period.
  for (const auto& s : specs) {
    if (s.name == "MSRsrc11") {
      EXPECT_EQ(s.period, kDay);
    }
  }
}

TEST(Catalog, SeedsAreStable) {
  const auto a = spec_by_name("MSRsrc11");
  const auto b = spec_by_name("MSRsrc11");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->seed, b->seed);
  const auto c = spec_by_name("MSRusr1");
  ASSERT_TRUE(c);
  EXPECT_NE(a->seed, c->seed);
}

}  // namespace
}  // namespace pscrub::trace
