#include <gtest/gtest.h>

#include "block/elevator.h"

namespace pscrub::block {
namespace {

BlockRequest make(disk::Lbn lbn, std::int64_t sectors,
                  SimTime submit = 0,
                  disk::CommandKind kind = disk::CommandKind::kRead) {
  BlockRequest r;
  r.cmd.kind = kind;
  r.cmd.lbn = lbn;
  r.cmd.sectors = sectors;
  r.submit_time = submit;
  return r;
}

TEST(Elevator, PopsInLbnOrder) {
  Elevator e;
  e.add(make(300, 8));
  e.add(make(100, 8));
  e.add(make(200, 8));
  EXPECT_EQ(e.pop().cmd.lbn, 100);
  EXPECT_EQ(e.pop().cmd.lbn, 200);
  EXPECT_EQ(e.pop().cmd.lbn, 300);
}

TEST(Elevator, CLookWrapsAround) {
  Elevator e;
  e.add(make(100, 8));
  e.add(make(200, 8));
  EXPECT_EQ(e.pop().cmd.lbn, 100);
  // Scan position is now 108; a new request below it waits for the wrap.
  e.add(make(50, 8));
  EXPECT_EQ(e.pop().cmd.lbn, 200);
  EXPECT_EQ(e.pop().cmd.lbn, 50);
}

TEST(Elevator, BackMergeContiguousSameKind) {
  Elevator e;
  EXPECT_FALSE(e.add(make(0, 8)));
  EXPECT_TRUE(e.add(make(8, 8)));  // merged
  EXPECT_EQ(e.size(), 1u);
  const BlockRequest r = e.pop();
  EXPECT_EQ(r.cmd.lbn, 0);
  EXPECT_EQ(r.cmd.sectors, 16);
}

TEST(Elevator, NoMergeAcrossKinds) {
  Elevator e;
  e.add(make(0, 8, 0, disk::CommandKind::kRead));
  EXPECT_FALSE(e.add(make(8, 8, 0, disk::CommandKind::kWrite)));
  EXPECT_EQ(e.size(), 2u);
}

TEST(Elevator, NoMergeWhenGap) {
  Elevator e;
  e.add(make(0, 8));
  EXPECT_FALSE(e.add(make(16, 8)));
  EXPECT_EQ(e.size(), 2u);
}

TEST(Elevator, MergeRespectsSizeCap) {
  Elevator e(/*max_merge_bytes=*/8 * 1024);  // 16 sectors
  e.add(make(0, 12));
  EXPECT_FALSE(e.add(make(12, 12)));  // would exceed 16 sectors
  EXPECT_EQ(e.size(), 2u);
}

TEST(Elevator, MergingDisabled) {
  Elevator e(/*max_merge_bytes=*/0);
  e.add(make(0, 8));
  EXPECT_FALSE(e.add(make(8, 8)));
  EXPECT_EQ(e.size(), 2u);
}

TEST(Elevator, MergedCallbacksBothFire) {
  Elevator e;
  int fired = 0;
  BlockRequest a = make(0, 8, 5);
  a.on_complete = [&](const BlockRequest&, SimTime) { ++fired; };
  BlockRequest b = make(8, 8, 7);
  b.on_complete = [&](const BlockRequest&, SimTime) { ++fired; };
  e.add(std::move(a));
  e.add(std::move(b));
  BlockRequest merged = e.pop();
  merged.submit_time = 5;
  merged.on_complete(merged, 100);
  EXPECT_EQ(fired, 2);
}

TEST(Elevator, OldestArrivalTracksFifo) {
  Elevator e;
  e.add(make(100, 8, 10));
  e.add(make(200, 8, 50));
  EXPECT_EQ(e.oldest_arrival(), 10);
  // Pop lbn 100 (the older one) via the scan: oldest becomes 50.
  EXPECT_EQ(e.pop().cmd.lbn, 100);
  EXPECT_EQ(e.oldest_arrival(), 50);
}

TEST(Elevator, DuplicateLbnsBothSurvive) {
  // Two distinct (unmergeable) requests at the same LBN must both be
  // served -- a hot block read twice while queued.
  Elevator e;
  int completions = 0;
  BlockRequest a = make(100, 8, 1, disk::CommandKind::kRead);
  a.on_complete = [&](const BlockRequest&, SimTime) { ++completions; };
  BlockRequest b = make(100, 8, 2, disk::CommandKind::kWrite);
  b.on_complete = [&](const BlockRequest&, SimTime) { ++completions; };
  e.add(std::move(a));
  e.add(std::move(b));
  EXPECT_EQ(e.size(), 2u);
  BlockRequest r1 = e.pop();
  // After popping one at LBN 100, the scan moved past it; wrap to get the
  // other.
  BlockRequest r2 = e.pop();
  EXPECT_EQ(r1.cmd.lbn, 100);
  EXPECT_EQ(r2.cmd.lbn, 100);
  r1.on_complete(r1, 1);
  r2.on_complete(r2, 1);
  EXPECT_EQ(completions, 2);
}

TEST(Elevator, PopOldestWithDuplicateLbnsPicksOlder) {
  Elevator e;
  e.add(make(100, 8, 10, disk::CommandKind::kRead));
  e.add(make(100, 8, 20, disk::CommandKind::kWrite));
  const BlockRequest r = e.pop_oldest();
  EXPECT_EQ(r.submit_time, 10);
  EXPECT_EQ(e.oldest_arrival(), 20);
}

TEST(Elevator, LargeQueueOldestStaysCheap) {
  // Sanity/perf guard: ~100k queued requests with interleaved pops must
  // complete quickly (the lazy FIFO keeps this O(log n) amortized).
  Elevator e;
  for (int i = 0; i < 100'000; ++i) {
    e.add(make((i * 7919) % 1'000'000, 8, i));
  }
  SimTime last = -1;
  for (int i = 0; i < 100'000; ++i) {
    const SimTime oldest = e.oldest_arrival();
    EXPECT_GE(oldest, last);
    last = oldest;
    e.pop_oldest();
  }
  EXPECT_TRUE(e.empty());
}

TEST(Elevator, EmptyAndSize) {
  Elevator e;
  EXPECT_TRUE(e.empty());
  e.add(make(0, 8));
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.size(), 1u);
  e.pop();
  EXPECT_TRUE(e.empty());
}

}  // namespace
}  // namespace pscrub::block
