# Empty compiler generated dependencies file for pscrub_block.
# This may be replaced when dependencies are built.
