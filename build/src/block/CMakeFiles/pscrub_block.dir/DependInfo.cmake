
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/block_layer.cc" "src/block/CMakeFiles/pscrub_block.dir/block_layer.cc.o" "gcc" "src/block/CMakeFiles/pscrub_block.dir/block_layer.cc.o.d"
  "/root/repo/src/block/cfq_scheduler.cc" "src/block/CMakeFiles/pscrub_block.dir/cfq_scheduler.cc.o" "gcc" "src/block/CMakeFiles/pscrub_block.dir/cfq_scheduler.cc.o.d"
  "/root/repo/src/block/deadline_scheduler.cc" "src/block/CMakeFiles/pscrub_block.dir/deadline_scheduler.cc.o" "gcc" "src/block/CMakeFiles/pscrub_block.dir/deadline_scheduler.cc.o.d"
  "/root/repo/src/block/elevator.cc" "src/block/CMakeFiles/pscrub_block.dir/elevator.cc.o" "gcc" "src/block/CMakeFiles/pscrub_block.dir/elevator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pscrub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pscrub_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
