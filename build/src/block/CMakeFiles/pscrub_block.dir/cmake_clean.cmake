file(REMOVE_RECURSE
  "CMakeFiles/pscrub_block.dir/block_layer.cc.o"
  "CMakeFiles/pscrub_block.dir/block_layer.cc.o.d"
  "CMakeFiles/pscrub_block.dir/cfq_scheduler.cc.o"
  "CMakeFiles/pscrub_block.dir/cfq_scheduler.cc.o.d"
  "CMakeFiles/pscrub_block.dir/deadline_scheduler.cc.o"
  "CMakeFiles/pscrub_block.dir/deadline_scheduler.cc.o.d"
  "CMakeFiles/pscrub_block.dir/elevator.cc.o"
  "CMakeFiles/pscrub_block.dir/elevator.cc.o.d"
  "libpscrub_block.a"
  "libpscrub_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscrub_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
