file(REMOVE_RECURSE
  "libpscrub_block.a"
)
