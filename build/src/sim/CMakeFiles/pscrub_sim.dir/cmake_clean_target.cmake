file(REMOVE_RECURSE
  "libpscrub_sim.a"
)
