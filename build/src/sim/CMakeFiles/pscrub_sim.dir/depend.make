# Empty dependencies file for pscrub_sim.
# This may be replaced when dependencies are built.
