file(REMOVE_RECURSE
  "CMakeFiles/pscrub_sim.dir/event_queue.cc.o"
  "CMakeFiles/pscrub_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/pscrub_sim.dir/rng.cc.o"
  "CMakeFiles/pscrub_sim.dir/rng.cc.o.d"
  "CMakeFiles/pscrub_sim.dir/simulator.cc.o"
  "CMakeFiles/pscrub_sim.dir/simulator.cc.o.d"
  "libpscrub_sim.a"
  "libpscrub_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscrub_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
