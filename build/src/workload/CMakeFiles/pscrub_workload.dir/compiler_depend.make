# Empty compiler generated dependencies file for pscrub_workload.
# This may be replaced when dependencies are built.
