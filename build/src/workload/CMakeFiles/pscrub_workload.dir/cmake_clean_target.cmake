file(REMOVE_RECURSE
  "libpscrub_workload.a"
)
