file(REMOVE_RECURSE
  "CMakeFiles/pscrub_workload.dir/synthetic_workload.cc.o"
  "CMakeFiles/pscrub_workload.dir/synthetic_workload.cc.o.d"
  "CMakeFiles/pscrub_workload.dir/trace_replay.cc.o"
  "CMakeFiles/pscrub_workload.dir/trace_replay.cc.o.d"
  "libpscrub_workload.a"
  "libpscrub_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscrub_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
