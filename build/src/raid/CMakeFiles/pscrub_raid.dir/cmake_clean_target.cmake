file(REMOVE_RECURSE
  "libpscrub_raid.a"
)
