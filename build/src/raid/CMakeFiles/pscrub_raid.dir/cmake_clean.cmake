file(REMOVE_RECURSE
  "CMakeFiles/pscrub_raid.dir/array.cc.o"
  "CMakeFiles/pscrub_raid.dir/array.cc.o.d"
  "CMakeFiles/pscrub_raid.dir/layout.cc.o"
  "CMakeFiles/pscrub_raid.dir/layout.cc.o.d"
  "libpscrub_raid.a"
  "libpscrub_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscrub_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
