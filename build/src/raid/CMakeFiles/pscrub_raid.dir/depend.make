# Empty dependencies file for pscrub_raid.
# This may be replaced when dependencies are built.
