# Empty compiler generated dependencies file for pscrub_core.
# This may be replaced when dependencies are built.
