
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/pscrub_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/pscrub_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/pscrub_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/pscrub_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/lse.cc" "src/core/CMakeFiles/pscrub_core.dir/lse.cc.o" "gcc" "src/core/CMakeFiles/pscrub_core.dir/lse.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/pscrub_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/pscrub_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/policy_sim.cc" "src/core/CMakeFiles/pscrub_core.dir/policy_sim.cc.o" "gcc" "src/core/CMakeFiles/pscrub_core.dir/policy_sim.cc.o.d"
  "/root/repo/src/core/scrub_strategy.cc" "src/core/CMakeFiles/pscrub_core.dir/scrub_strategy.cc.o" "gcc" "src/core/CMakeFiles/pscrub_core.dir/scrub_strategy.cc.o.d"
  "/root/repo/src/core/scrubber.cc" "src/core/CMakeFiles/pscrub_core.dir/scrubber.cc.o" "gcc" "src/core/CMakeFiles/pscrub_core.dir/scrubber.cc.o.d"
  "/root/repo/src/core/spin_down.cc" "src/core/CMakeFiles/pscrub_core.dir/spin_down.cc.o" "gcc" "src/core/CMakeFiles/pscrub_core.dir/spin_down.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pscrub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pscrub_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/pscrub_block.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pscrub_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pscrub_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pscrub_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
