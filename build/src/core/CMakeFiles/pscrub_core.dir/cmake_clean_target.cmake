file(REMOVE_RECURSE
  "libpscrub_core.a"
)
