file(REMOVE_RECURSE
  "CMakeFiles/pscrub_core.dir/adaptive.cc.o"
  "CMakeFiles/pscrub_core.dir/adaptive.cc.o.d"
  "CMakeFiles/pscrub_core.dir/cost_model.cc.o"
  "CMakeFiles/pscrub_core.dir/cost_model.cc.o.d"
  "CMakeFiles/pscrub_core.dir/lse.cc.o"
  "CMakeFiles/pscrub_core.dir/lse.cc.o.d"
  "CMakeFiles/pscrub_core.dir/optimizer.cc.o"
  "CMakeFiles/pscrub_core.dir/optimizer.cc.o.d"
  "CMakeFiles/pscrub_core.dir/policy_sim.cc.o"
  "CMakeFiles/pscrub_core.dir/policy_sim.cc.o.d"
  "CMakeFiles/pscrub_core.dir/scrub_strategy.cc.o"
  "CMakeFiles/pscrub_core.dir/scrub_strategy.cc.o.d"
  "CMakeFiles/pscrub_core.dir/scrubber.cc.o"
  "CMakeFiles/pscrub_core.dir/scrubber.cc.o.d"
  "CMakeFiles/pscrub_core.dir/spin_down.cc.o"
  "CMakeFiles/pscrub_core.dir/spin_down.cc.o.d"
  "libpscrub_core.a"
  "libpscrub_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscrub_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
