file(REMOVE_RECURSE
  "CMakeFiles/pscrub_stats.dir/acd_model.cc.o"
  "CMakeFiles/pscrub_stats.dir/acd_model.cc.o.d"
  "CMakeFiles/pscrub_stats.dir/anova.cc.o"
  "CMakeFiles/pscrub_stats.dir/anova.cc.o.d"
  "CMakeFiles/pscrub_stats.dir/ar_model.cc.o"
  "CMakeFiles/pscrub_stats.dir/ar_model.cc.o.d"
  "CMakeFiles/pscrub_stats.dir/autocorrelation.cc.o"
  "CMakeFiles/pscrub_stats.dir/autocorrelation.cc.o.d"
  "CMakeFiles/pscrub_stats.dir/descriptive.cc.o"
  "CMakeFiles/pscrub_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/pscrub_stats.dir/ecdf.cc.o"
  "CMakeFiles/pscrub_stats.dir/ecdf.cc.o.d"
  "CMakeFiles/pscrub_stats.dir/residual_life.cc.o"
  "CMakeFiles/pscrub_stats.dir/residual_life.cc.o.d"
  "libpscrub_stats.a"
  "libpscrub_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscrub_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
