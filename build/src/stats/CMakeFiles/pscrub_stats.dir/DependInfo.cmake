
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/acd_model.cc" "src/stats/CMakeFiles/pscrub_stats.dir/acd_model.cc.o" "gcc" "src/stats/CMakeFiles/pscrub_stats.dir/acd_model.cc.o.d"
  "/root/repo/src/stats/anova.cc" "src/stats/CMakeFiles/pscrub_stats.dir/anova.cc.o" "gcc" "src/stats/CMakeFiles/pscrub_stats.dir/anova.cc.o.d"
  "/root/repo/src/stats/ar_model.cc" "src/stats/CMakeFiles/pscrub_stats.dir/ar_model.cc.o" "gcc" "src/stats/CMakeFiles/pscrub_stats.dir/ar_model.cc.o.d"
  "/root/repo/src/stats/autocorrelation.cc" "src/stats/CMakeFiles/pscrub_stats.dir/autocorrelation.cc.o" "gcc" "src/stats/CMakeFiles/pscrub_stats.dir/autocorrelation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/pscrub_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/pscrub_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/ecdf.cc" "src/stats/CMakeFiles/pscrub_stats.dir/ecdf.cc.o" "gcc" "src/stats/CMakeFiles/pscrub_stats.dir/ecdf.cc.o.d"
  "/root/repo/src/stats/residual_life.cc" "src/stats/CMakeFiles/pscrub_stats.dir/residual_life.cc.o" "gcc" "src/stats/CMakeFiles/pscrub_stats.dir/residual_life.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
