file(REMOVE_RECURSE
  "libpscrub_stats.a"
)
