# Empty dependencies file for pscrub_stats.
# This may be replaced when dependencies are built.
