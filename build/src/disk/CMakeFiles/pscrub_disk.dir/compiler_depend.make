# Empty compiler generated dependencies file for pscrub_disk.
# This may be replaced when dependencies are built.
