file(REMOVE_RECURSE
  "CMakeFiles/pscrub_disk.dir/cache.cc.o"
  "CMakeFiles/pscrub_disk.dir/cache.cc.o.d"
  "CMakeFiles/pscrub_disk.dir/disk_model.cc.o"
  "CMakeFiles/pscrub_disk.dir/disk_model.cc.o.d"
  "CMakeFiles/pscrub_disk.dir/geometry.cc.o"
  "CMakeFiles/pscrub_disk.dir/geometry.cc.o.d"
  "CMakeFiles/pscrub_disk.dir/profile.cc.o"
  "CMakeFiles/pscrub_disk.dir/profile.cc.o.d"
  "libpscrub_disk.a"
  "libpscrub_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscrub_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
