file(REMOVE_RECURSE
  "libpscrub_disk.a"
)
