
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/catalog.cc" "src/trace/CMakeFiles/pscrub_trace.dir/catalog.cc.o" "gcc" "src/trace/CMakeFiles/pscrub_trace.dir/catalog.cc.o.d"
  "/root/repo/src/trace/idle.cc" "src/trace/CMakeFiles/pscrub_trace.dir/idle.cc.o" "gcc" "src/trace/CMakeFiles/pscrub_trace.dir/idle.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/trace/CMakeFiles/pscrub_trace.dir/io.cc.o" "gcc" "src/trace/CMakeFiles/pscrub_trace.dir/io.cc.o.d"
  "/root/repo/src/trace/record.cc" "src/trace/CMakeFiles/pscrub_trace.dir/record.cc.o" "gcc" "src/trace/CMakeFiles/pscrub_trace.dir/record.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/trace/CMakeFiles/pscrub_trace.dir/synthetic.cc.o" "gcc" "src/trace/CMakeFiles/pscrub_trace.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pscrub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pscrub_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
