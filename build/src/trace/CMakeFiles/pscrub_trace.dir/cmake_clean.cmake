file(REMOVE_RECURSE
  "CMakeFiles/pscrub_trace.dir/catalog.cc.o"
  "CMakeFiles/pscrub_trace.dir/catalog.cc.o.d"
  "CMakeFiles/pscrub_trace.dir/idle.cc.o"
  "CMakeFiles/pscrub_trace.dir/idle.cc.o.d"
  "CMakeFiles/pscrub_trace.dir/io.cc.o"
  "CMakeFiles/pscrub_trace.dir/io.cc.o.d"
  "CMakeFiles/pscrub_trace.dir/record.cc.o"
  "CMakeFiles/pscrub_trace.dir/record.cc.o.d"
  "CMakeFiles/pscrub_trace.dir/synthetic.cc.o"
  "CMakeFiles/pscrub_trace.dir/synthetic.cc.o.d"
  "libpscrub_trace.a"
  "libpscrub_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscrub_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
