file(REMOVE_RECURSE
  "libpscrub_trace.a"
)
