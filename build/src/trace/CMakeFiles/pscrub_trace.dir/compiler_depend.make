# Empty compiler generated dependencies file for pscrub_trace.
# This may be replaced when dependencies are built.
