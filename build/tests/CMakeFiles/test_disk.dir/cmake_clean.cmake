file(REMOVE_RECURSE
  "CMakeFiles/test_disk.dir/test_cache.cc.o"
  "CMakeFiles/test_disk.dir/test_cache.cc.o.d"
  "CMakeFiles/test_disk.dir/test_disk_model.cc.o"
  "CMakeFiles/test_disk.dir/test_disk_model.cc.o.d"
  "CMakeFiles/test_disk.dir/test_geometry.cc.o"
  "CMakeFiles/test_disk.dir/test_geometry.cc.o.d"
  "CMakeFiles/test_disk.dir/test_lse_injection.cc.o"
  "CMakeFiles/test_disk.dir/test_lse_injection.cc.o.d"
  "CMakeFiles/test_disk.dir/test_profile_properties.cc.o"
  "CMakeFiles/test_disk.dir/test_profile_properties.cc.o.d"
  "test_disk"
  "test_disk.pdb"
  "test_disk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
