file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_adaptive.cc.o"
  "CMakeFiles/test_core.dir/test_adaptive.cc.o.d"
  "CMakeFiles/test_core.dir/test_lse.cc.o"
  "CMakeFiles/test_core.dir/test_lse.cc.o.d"
  "CMakeFiles/test_core.dir/test_optimizer.cc.o"
  "CMakeFiles/test_core.dir/test_optimizer.cc.o.d"
  "CMakeFiles/test_core.dir/test_policy_sim.cc.o"
  "CMakeFiles/test_core.dir/test_policy_sim.cc.o.d"
  "CMakeFiles/test_core.dir/test_scrub_strategy.cc.o"
  "CMakeFiles/test_core.dir/test_scrub_strategy.cc.o.d"
  "CMakeFiles/test_core.dir/test_scrubber.cc.o"
  "CMakeFiles/test_core.dir/test_scrubber.cc.o.d"
  "CMakeFiles/test_core.dir/test_spin_down.cc.o"
  "CMakeFiles/test_core.dir/test_spin_down.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
