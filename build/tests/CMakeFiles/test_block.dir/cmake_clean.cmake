file(REMOVE_RECURSE
  "CMakeFiles/test_block.dir/test_block_layer.cc.o"
  "CMakeFiles/test_block.dir/test_block_layer.cc.o.d"
  "CMakeFiles/test_block.dir/test_cfq.cc.o"
  "CMakeFiles/test_block.dir/test_cfq.cc.o.d"
  "CMakeFiles/test_block.dir/test_deadline.cc.o"
  "CMakeFiles/test_block.dir/test_deadline.cc.o.d"
  "CMakeFiles/test_block.dir/test_elevator.cc.o"
  "CMakeFiles/test_block.dir/test_elevator.cc.o.d"
  "test_block"
  "test_block.pdb"
  "test_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
