file(REMOVE_RECURSE
  "CMakeFiles/test_raid.dir/test_raid_array.cc.o"
  "CMakeFiles/test_raid.dir/test_raid_array.cc.o.d"
  "CMakeFiles/test_raid.dir/test_raid_layout.cc.o"
  "CMakeFiles/test_raid.dir/test_raid_layout.cc.o.d"
  "test_raid"
  "test_raid.pdb"
  "test_raid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
