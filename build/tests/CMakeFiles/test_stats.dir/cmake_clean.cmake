file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/test_acd_model.cc.o"
  "CMakeFiles/test_stats.dir/test_acd_model.cc.o.d"
  "CMakeFiles/test_stats.dir/test_anova.cc.o"
  "CMakeFiles/test_stats.dir/test_anova.cc.o.d"
  "CMakeFiles/test_stats.dir/test_ar_model.cc.o"
  "CMakeFiles/test_stats.dir/test_ar_model.cc.o.d"
  "CMakeFiles/test_stats.dir/test_autocorrelation.cc.o"
  "CMakeFiles/test_stats.dir/test_autocorrelation.cc.o.d"
  "CMakeFiles/test_stats.dir/test_descriptive.cc.o"
  "CMakeFiles/test_stats.dir/test_descriptive.cc.o.d"
  "CMakeFiles/test_stats.dir/test_ecdf.cc.o"
  "CMakeFiles/test_stats.dir/test_ecdf.cc.o.d"
  "CMakeFiles/test_stats.dir/test_residual_life.cc.o"
  "CMakeFiles/test_stats.dir/test_residual_life.cc.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
