file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/test_catalog.cc.o"
  "CMakeFiles/test_trace.dir/test_catalog.cc.o.d"
  "CMakeFiles/test_trace.dir/test_idle_extraction.cc.o"
  "CMakeFiles/test_trace.dir/test_idle_extraction.cc.o.d"
  "CMakeFiles/test_trace.dir/test_trace_io.cc.o"
  "CMakeFiles/test_trace.dir/test_trace_io.cc.o.d"
  "CMakeFiles/test_trace.dir/test_trace_synthetic.cc.o"
  "CMakeFiles/test_trace.dir/test_trace_synthetic.cc.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
