# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_disk[1]_include.cmake")
include("/root/repo/build/tests/test_block[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_raid[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
