file(REMOVE_RECURSE
  "CMakeFiles/raid_rebuild.dir/raid_rebuild.cpp.o"
  "CMakeFiles/raid_rebuild.dir/raid_rebuild.cpp.o.d"
  "raid_rebuild"
  "raid_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
