# Empty dependencies file for raid_rebuild.
# This may be replaced when dependencies are built.
