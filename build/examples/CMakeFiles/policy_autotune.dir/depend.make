# Empty dependencies file for policy_autotune.
# This may be replaced when dependencies are built.
