# Empty dependencies file for mlet_study.
# This may be replaced when dependencies are built.
