file(REMOVE_RECURSE
  "CMakeFiles/mlet_study.dir/mlet_study.cpp.o"
  "CMakeFiles/mlet_study.dir/mlet_study.cpp.o.d"
  "mlet_study"
  "mlet_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlet_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
