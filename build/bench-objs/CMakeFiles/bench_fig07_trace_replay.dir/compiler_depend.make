# Empty compiler generated dependencies file for bench_fig07_trace_replay.
# This may be replaced when dependencies are built.
