file(REMOVE_RECURSE
  "../bench/bench_fig07_trace_replay"
  "../bench/bench_fig07_trace_replay.pdb"
  "CMakeFiles/bench_fig07_trace_replay.dir/bench_fig07_trace_replay.cc.o"
  "CMakeFiles/bench_fig07_trace_replay.dir/bench_fig07_trace_replay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
