# Empty dependencies file for bench_table2_idle_stats.
# This may be replaced when dependencies are built.
