file(REMOVE_RECURSE
  "../bench/bench_table2_idle_stats"
  "../bench/bench_table2_idle_stats.pdb"
  "CMakeFiles/bench_table2_idle_stats.dir/bench_table2_idle_stats.cc.o"
  "CMakeFiles/bench_table2_idle_stats.dir/bench_table2_idle_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_idle_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
