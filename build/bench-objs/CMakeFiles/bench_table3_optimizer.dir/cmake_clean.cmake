file(REMOVE_RECURSE
  "../bench/bench_table3_optimizer"
  "../bench/bench_table3_optimizer.pdb"
  "CMakeFiles/bench_table3_optimizer.dir/bench_table3_optimizer.cc.o"
  "CMakeFiles/bench_table3_optimizer.dir/bench_table3_optimizer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
