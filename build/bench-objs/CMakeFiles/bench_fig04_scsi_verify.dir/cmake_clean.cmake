file(REMOVE_RECURSE
  "../bench/bench_fig04_scsi_verify"
  "../bench/bench_fig04_scsi_verify.pdb"
  "CMakeFiles/bench_fig04_scsi_verify.dir/bench_fig04_scsi_verify.cc.o"
  "CMakeFiles/bench_fig04_scsi_verify.dir/bench_fig04_scsi_verify.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_scsi_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
