# Empty compiler generated dependencies file for bench_fig04_scsi_verify.
# This may be replaced when dependencies are built.
