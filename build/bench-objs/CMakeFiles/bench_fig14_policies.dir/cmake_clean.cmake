file(REMOVE_RECURSE
  "../bench/bench_fig14_policies"
  "../bench/bench_fig14_policies.pdb"
  "CMakeFiles/bench_fig14_policies.dir/bench_fig14_policies.cc.o"
  "CMakeFiles/bench_fig14_policies.dir/bench_fig14_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
