# Empty dependencies file for bench_fig14_policies.
# This may be replaced when dependencies are built.
