
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig05_parameters.cc" "bench-objs/CMakeFiles/bench_fig05_parameters.dir/bench_fig05_parameters.cc.o" "gcc" "bench-objs/CMakeFiles/bench_fig05_parameters.dir/bench_fig05_parameters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/raid/CMakeFiles/pscrub_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pscrub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pscrub_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pscrub_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pscrub_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/pscrub_block.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pscrub_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pscrub_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
