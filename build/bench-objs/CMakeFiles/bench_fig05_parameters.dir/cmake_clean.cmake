file(REMOVE_RECURSE
  "../bench/bench_fig05_parameters"
  "../bench/bench_fig05_parameters.pdb"
  "CMakeFiles/bench_fig05_parameters.dir/bench_fig05_parameters.cc.o"
  "CMakeFiles/bench_fig05_parameters.dir/bench_fig05_parameters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
