# Empty dependencies file for bench_fig05_parameters.
# This may be replaced when dependencies are built.
