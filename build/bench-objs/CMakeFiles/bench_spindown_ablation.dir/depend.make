# Empty dependencies file for bench_spindown_ablation.
# This may be replaced when dependencies are built.
