file(REMOVE_RECURSE
  "../bench/bench_spindown_ablation"
  "../bench/bench_spindown_ablation.pdb"
  "CMakeFiles/bench_spindown_ablation.dir/bench_spindown_ablation.cc.o"
  "CMakeFiles/bench_spindown_ablation.dir/bench_spindown_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spindown_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
