file(REMOVE_RECURSE
  "../bench/bench_rotation_ablation"
  "../bench/bench_rotation_ablation.pdb"
  "CMakeFiles/bench_rotation_ablation.dir/bench_rotation_ablation.cc.o"
  "CMakeFiles/bench_rotation_ablation.dir/bench_rotation_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rotation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
