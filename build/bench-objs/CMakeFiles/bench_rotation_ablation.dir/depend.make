# Empty dependencies file for bench_rotation_ablation.
# This may be replaced when dependencies are built.
