file(REMOVE_RECURSE
  "../bench/bench_policy_ablation"
  "../bench/bench_policy_ablation.pdb"
  "CMakeFiles/bench_policy_ablation.dir/bench_policy_ablation.cc.o"
  "CMakeFiles/bench_policy_ablation.dir/bench_policy_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
