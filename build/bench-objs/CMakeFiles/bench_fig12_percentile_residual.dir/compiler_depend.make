# Empty compiler generated dependencies file for bench_fig12_percentile_residual.
# This may be replaced when dependencies are built.
