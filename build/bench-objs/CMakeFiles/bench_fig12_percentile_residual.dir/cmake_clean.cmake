file(REMOVE_RECURSE
  "../bench/bench_fig12_percentile_residual"
  "../bench/bench_fig12_percentile_residual.pdb"
  "CMakeFiles/bench_fig12_percentile_residual.dir/bench_fig12_percentile_residual.cc.o"
  "CMakeFiles/bench_fig12_percentile_residual.dir/bench_fig12_percentile_residual.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_percentile_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
