file(REMOVE_RECURSE
  "../bench/bench_fig08_activity"
  "../bench/bench_fig08_activity.pdb"
  "CMakeFiles/bench_fig08_activity.dir/bench_fig08_activity.cc.o"
  "CMakeFiles/bench_fig08_activity.dir/bench_fig08_activity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
