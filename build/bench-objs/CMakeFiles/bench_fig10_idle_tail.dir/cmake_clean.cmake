file(REMOVE_RECURSE
  "../bench/bench_fig10_idle_tail"
  "../bench/bench_fig10_idle_tail.pdb"
  "CMakeFiles/bench_fig10_idle_tail.dir/bench_fig10_idle_tail.cc.o"
  "CMakeFiles/bench_fig10_idle_tail.dir/bench_fig10_idle_tail.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_idle_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
