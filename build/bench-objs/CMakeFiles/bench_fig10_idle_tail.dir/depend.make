# Empty dependencies file for bench_fig10_idle_tail.
# This may be replaced when dependencies are built.
