# Empty compiler generated dependencies file for bench_raid_ablation.
# This may be replaced when dependencies are built.
