file(REMOVE_RECURSE
  "../bench/bench_raid_ablation"
  "../bench/bench_raid_ablation.pdb"
  "CMakeFiles/bench_raid_ablation.dir/bench_raid_ablation.cc.o"
  "CMakeFiles/bench_raid_ablation.dir/bench_raid_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raid_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
