file(REMOVE_RECURSE
  "../bench/bench_mlet_ablation"
  "../bench/bench_mlet_ablation.pdb"
  "CMakeFiles/bench_mlet_ablation.dir/bench_mlet_ablation.cc.o"
  "CMakeFiles/bench_mlet_ablation.dir/bench_mlet_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mlet_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
