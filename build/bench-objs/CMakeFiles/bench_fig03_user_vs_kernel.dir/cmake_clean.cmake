file(REMOVE_RECURSE
  "../bench/bench_fig03_user_vs_kernel"
  "../bench/bench_fig03_user_vs_kernel.pdb"
  "CMakeFiles/bench_fig03_user_vs_kernel.dir/bench_fig03_user_vs_kernel.cc.o"
  "CMakeFiles/bench_fig03_user_vs_kernel.dir/bench_fig03_user_vs_kernel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_user_vs_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
