# Empty dependencies file for bench_fig03_user_vs_kernel.
# This may be replaced when dependencies are built.
