# Empty dependencies file for bench_fig06_synthetic_impact.
# This may be replaced when dependencies are built.
