file(REMOVE_RECURSE
  "../bench/bench_fig06_synthetic_impact"
  "../bench/bench_fig06_synthetic_impact.pdb"
  "CMakeFiles/bench_fig06_synthetic_impact.dir/bench_fig06_synthetic_impact.cc.o"
  "CMakeFiles/bench_fig06_synthetic_impact.dir/bench_fig06_synthetic_impact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_synthetic_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
