# Empty dependencies file for bench_fig13_usable_idle.
# This may be replaced when dependencies are built.
