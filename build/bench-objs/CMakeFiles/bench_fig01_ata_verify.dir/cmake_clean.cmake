file(REMOVE_RECURSE
  "../bench/bench_fig01_ata_verify"
  "../bench/bench_fig01_ata_verify.pdb"
  "CMakeFiles/bench_fig01_ata_verify.dir/bench_fig01_ata_verify.cc.o"
  "CMakeFiles/bench_fig01_ata_verify.dir/bench_fig01_ata_verify.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_ata_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
