# Empty dependencies file for bench_fig01_ata_verify.
# This may be replaced when dependencies are built.
