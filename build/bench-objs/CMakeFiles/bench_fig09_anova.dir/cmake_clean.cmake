file(REMOVE_RECURSE
  "../bench/bench_fig09_anova"
  "../bench/bench_fig09_anova.pdb"
  "CMakeFiles/bench_fig09_anova.dir/bench_fig09_anova.cc.o"
  "CMakeFiles/bench_fig09_anova.dir/bench_fig09_anova.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_anova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
