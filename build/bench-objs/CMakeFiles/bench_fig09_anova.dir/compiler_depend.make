# Empty compiler generated dependencies file for bench_fig09_anova.
# This may be replaced when dependencies are built.
