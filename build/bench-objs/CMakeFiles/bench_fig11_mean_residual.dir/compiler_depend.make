# Empty compiler generated dependencies file for bench_fig11_mean_residual.
# This may be replaced when dependencies are built.
