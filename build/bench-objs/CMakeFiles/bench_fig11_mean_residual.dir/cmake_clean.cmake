file(REMOVE_RECURSE
  "../bench/bench_fig11_mean_residual"
  "../bench/bench_fig11_mean_residual.pdb"
  "CMakeFiles/bench_fig11_mean_residual.dir/bench_fig11_mean_residual.cc.o"
  "CMakeFiles/bench_fig11_mean_residual.dir/bench_fig11_mean_residual.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mean_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
