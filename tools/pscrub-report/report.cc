#include "report.h"

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/digest.h"
#include "obs/timeline_io.h"
#include "sim/time.h"

namespace pscrub::report {

namespace {

using obs::QuantileDigest;
using obs::Timeline;

/// Shared numeric formatting: %.6g keeps the output compact while staying
/// byte-deterministic for identical doubles.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string seconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3fs", s);
  return buf;
}

std::string percent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * fraction);
  return buf;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool selected(const std::string& name, const ReportOptions& opt) {
  return opt.series_prefix.empty() || starts_with(name, opt.series_prefix);
}

/// Highest non-empty window index + 1 over the selected series (the
/// observed span in windows; utilization percentages are relative to it).
std::size_t used_windows(const Timeline& tl, const ReportOptions& opt) {
  std::size_t used = 0;
  for (const auto& [name, id] : tl.index()) {
    if (!selected(name, opt)) continue;
    const Timeline::Series& s = tl.at(id);
    for (std::size_t i = s.windows.size(); i-- > 0;) {
      if (!s.windows[i].empty()) {
        used = std::max(used, i + 1);
        break;
      }
    }
  }
  return used;
}

/// Sums a counter series over all windows (0 when absent or not a
/// counter).
double counter_total(const Timeline& tl, const std::string& name) {
  const Timeline::Series* s = tl.find(name);
  if (s == nullptr || s->kind != Timeline::SeriesKind::kCounter) return 0.0;
  double total = 0.0;
  for (const Timeline::Window& w : s->windows) total += w.sum;
  return total;
}

/// Final set gauge value (found=false when the gauge never fired).
double final_gauge(const Timeline::Series& s, bool& found) {
  for (std::size_t i = s.windows.size(); i-- > 0;) {
    if (s.windows[i].set) {
      found = true;
      return s.windows[i].last;
    }
  }
  found = false;
  return 0.0;
}

void render_scrub_progress(const Timeline& tl, const ReportOptions& opt,
                           double width_s, std::size_t used,
                           std::string& out) {
  std::string section;
  for (const auto& [name, id] : tl.index()) {
    if (!selected(name, opt)) continue;
    const Timeline::Series& s = tl.at(id);
    if (s.kind != Timeline::SeriesKind::kGauge) continue;

    if (ends_with(name, ".progress.fraction")) {
      const std::string base =
          name.substr(0, name.size() - std::string(".progress.fraction").size());
      bool found = false;
      const double final_fraction = final_gauge(s, found);
      if (!found) continue;
      bool complete = false;
      std::size_t complete_win = 0;
      for (std::size_t i = 0; i < s.windows.size(); ++i) {
        if (s.windows[i].set && s.windows[i].last >= 1.0) {
          complete = true;
          complete_win = i;
          break;
        }
      }
      section += "  " + base + ": ";
      if (complete) {
        // The gauge pins at 1 inside this window; report its end as the
        // (conservative) first-pass completion time.
        section += "first pass complete by " +
                   seconds(static_cast<double>(complete_win + 1) * width_s);
      } else {
        section += "incomplete (" + percent(final_fraction) + ")";
      }
      const double standdowns = counter_total(tl, base + ".standdowns");
      section += ", standdowns " + num(standdowns) + "\n";
      continue;
    }

    if (ends_with(name, ".rebuild.fraction")) {
      bool found = false;
      const double final_fraction = final_gauge(s, found);
      if (!found) continue;
      bool complete = false;
      std::size_t complete_win = 0;
      for (std::size_t i = 0; i < s.windows.size(); ++i) {
        if (s.windows[i].set && s.windows[i].last >= 1.0) {
          complete = true;
          complete_win = i;
          break;
        }
      }
      section += "  " + name.substr(0, name.size() -
                                           std::string(".fraction").size());
      section += ": ";
      if (complete) {
        section += "complete by " +
                   seconds(static_cast<double>(complete_win + 1) * width_s);
      } else {
        section += "at " + percent(final_fraction);
      }
      section += "\n";
      continue;
    }

    if (ends_with(name, ".scrub.progress.mb")) {
      // Policy-sim progress: cumulative megabytes scrubbed.
      bool found = false;
      const double final_mb = final_gauge(s, found);
      if (!found) continue;
      const double span_s = static_cast<double>(used) * width_s;
      section += "  " +
                 name.substr(0, name.size() -
                                    std::string(".progress.mb").size()) +
                 ": " + num(final_mb) + " MB";
      if (span_s > 0.0) {
        section += " (" + num(final_mb / span_s) + " MB/s over the span)";
      }
      section += "\n";
    }
  }
  if (!section.empty()) {
    out += "\nscrub progress\n";
    out += section;
  }
}

void render_utilization(const Timeline& tl, const ReportOptions& opt,
                        double width_s, std::size_t used, std::string& out) {
  std::string section;
  const double span_s = static_cast<double>(used) * width_s;
  for (const auto& [name, id] : tl.index()) {
    if (!selected(name, opt)) continue;
    const Timeline::Series& s = tl.at(id);
    if (s.kind != Timeline::SeriesKind::kCounter) continue;
    if (name.find(".util.") == std::string::npos) continue;
    double busy_s = 0.0;
    for (const Timeline::Window& w : s.windows) busy_s += w.sum;
    section += "  " + name + ": " + seconds(busy_s);
    if (span_s > 0.0) {
      section += " (" + percent(busy_s / span_s) + " of span)";
    }
    section += "\n";
  }
  if (!section.empty()) {
    out += "\nutilization\n";
    out += section;
  }
}

void render_fleet(const Timeline& tl, const ReportOptions& opt,
                  std::string& out) {
  // One line per fleet (keyed by the "<label>.fleet." prefix the fleet
  // layer records under): injected latent error sectors vs detections.
  // The fleet's distribution digests (mlet_hours, completion_hours, ...)
  // render through the shared digest section below.
  std::string section;
  const std::string marker = ".fleet.lse_sectors";
  for (const auto& [name, id] : tl.index()) {
    if (!selected(name, opt) || !ends_with(name, marker)) continue;
    const Timeline::Series& s = tl.at(id);
    if (s.kind != Timeline::SeriesKind::kCounter) continue;
    const std::string base = name.substr(0, name.size() - marker.size());
    const double injected = counter_total(tl, name);
    const double detected = counter_total(tl, base + ".fleet.detections");
    section += "  " + base + ": " + num(injected) +
               " latent error sectors, " + num(detected) + " detections";
    if (injected > 0.0) {
      section += " (" + percent(detected / injected) + ")";
    }
    section += "\n";
  }
  if (!section.empty()) {
    out += "\nfleet\n";
    out += section;
  }
}

void render_daemon(const Timeline& tl, const ReportOptions& opt,
                   std::string& out) {
  // One block per pscrubd control plane (keyed by the
  // "<label>.pscrubd.commands" counter the daemon wires): command-protocol
  // totals, checkpoint count, and a per-device scrub rollup. The per-device
  // progress gauges and latency/detect-delay digests render through the
  // shared sections.
  std::string section;
  const std::string marker = ".pscrubd.commands";
  for (const auto& [name, id] : tl.index()) {
    if (!selected(name, opt) || !ends_with(name, marker)) continue;
    if (tl.at(id).kind != Timeline::SeriesKind::kCounter) continue;
    const std::string base = name.substr(0, name.size() - marker.size());
    const double commands = counter_total(tl, name);
    const double rejected =
        counter_total(tl, base + ".pscrubd.commands.rejected");
    const double checkpoints =
        counter_total(tl, base + ".pscrubd.checkpoints");
    section += "  " + base + ": " + num(commands) + " commands (" +
               num(rejected) + " rejected), " + num(checkpoints) +
               " checkpoints\n";

    const std::string dev_prefix = base + ".pscrubd.dev";
    const std::string dev_marker = ".sectors";
    std::vector<std::pair<long long, std::string>> devices;
    for (const auto& [dev_name, dev_id] : tl.index()) {
      if (!starts_with(dev_name, dev_prefix) ||
          !ends_with(dev_name, dev_marker)) {
        continue;
      }
      if (tl.at(dev_id).kind != Timeline::SeriesKind::kCounter) continue;
      const std::string dev_base =
          dev_name.substr(0, dev_name.size() - dev_marker.size());
      const std::string digits = dev_base.substr(dev_prefix.size());
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      const double sectors = counter_total(tl, dev_name);
      const double detections = counter_total(tl, dev_base + ".detections");
      const double throttled =
          counter_total(tl, dev_base + ".throttle_waits");
      devices.emplace_back(
          // `digits` is pre-validated as non-empty 0-9 above, so stoll
          // cannot reject or coerce here. pscrub-lint: allow(env-hygiene)
          std::stoll(digits),
          "    dev" + digits + ": " + num(sectors) + " sectors scrubbed, " +
              num(detections) + " detections, " + num(throttled) +
              " throttled fires\n");
    }
    // Numeric device order (a lexicographic index walk puts dev10 before
    // dev2).
    std::sort(devices.begin(), devices.end());
    for (const auto& [dev, line] : devices) section += line;
  }
  if (!section.empty()) {
    out += "\ndaemon\n";
    out += section;
  }
}

std::string digest_line(const std::string& name, const QuantileDigest& d) {
  return "  " + name + ": count " + std::to_string(d.count()) + ", p50 " +
         num(d.p50()) + ", p95 " + num(d.p95()) + ", p99 " + num(d.p99()) +
         ", max " + num(d.max()) + "\n";
}

void render_digests(const Timeline& tl, const ReportOptions& opt,
                    std::string& out) {
  std::string section;
  for (const auto& [name, id] : tl.index()) {
    if (!selected(name, opt)) continue;
    const Timeline::Series& s = tl.at(id);
    if (s.kind != Timeline::SeriesKind::kDigest) continue;
    QuantileDigest all;
    for (const QuantileDigest& d : s.digests) all.merge(d);
    if (all.count() == 0) continue;
    section += digest_line(name, all);
  }
  for (const auto& [name, d] : tl.digests()) {
    if (!selected(name, opt) || d.count() == 0) continue;
    section += digest_line(name + " (run)", d);
  }
  if (!section.empty()) {
    out += "\ndigest quantiles\n";
    out += section;
  }
}

void render_events(const Timeline& tl, const ReportOptions& opt,
                   std::string& out) {
  std::string section;
  for (const auto& [name, log] : tl.events()) {
    if (!selected(name, opt)) continue;
    section += "  " + name + ": " + std::to_string(log.items.size()) +
               " event(s)";
    if (log.dropped > 0) {
      section += ", " + std::to_string(log.dropped) + " dropped";
    }
    section += "\n";
    if (opt.windows) {
      for (const auto& [t, text] : log.items) {
        section += "    " + seconds(to_seconds(t)) + "  " + text + "\n";
      }
    }
  }
  if (!section.empty()) {
    out += "\nevents\n";
    out += section;
  }
}

const char* kind_name(Timeline::SeriesKind kind) {
  switch (kind) {
    case Timeline::SeriesKind::kCounter:
      return "counter";
    case Timeline::SeriesKind::kGauge:
      return "gauge";
    case Timeline::SeriesKind::kDigest:
      return "digest";
  }
  return "unknown";
}

void render_window_tables(const Timeline& tl, const ReportOptions& opt,
                          double width_s, std::string& out) {
  for (const auto& [name, id] : tl.index()) {
    if (!selected(name, opt)) continue;
    const Timeline::Series& s = tl.at(id);
    bool any = false;
    for (const Timeline::Window& w : s.windows) {
      if (!w.empty()) any = true;
    }
    if (!any) continue;
    out += "\nwindows: " + name + " (" + kind_name(s.kind) + ")\n";
    for (std::size_t i = 0; i < s.windows.size(); ++i) {
      const Timeline::Window& w = s.windows[i];
      if (w.empty()) continue;
      out += "  [" + std::to_string(i) + "] t=" +
             seconds(static_cast<double>(i) * width_s);
      switch (s.kind) {
        case Timeline::SeriesKind::kCounter:
          out += " sum=" + num(w.sum);
          break;
        case Timeline::SeriesKind::kGauge:
          out += " last=" + num(w.last);
          break;
        case Timeline::SeriesKind::kDigest: {
          const QuantileDigest& d = s.digests[i];
          out += " count=" + std::to_string(w.count) + " p50=" +
                 num(d.p50()) + " p95=" + num(d.p95()) + " max=" +
                 num(d.max());
          break;
        }
      }
      out += "\n";
    }
  }
}

}  // namespace

std::string load_and_merge(const std::vector<std::string>& paths,
                           obs::Timeline& into) {
  for (const std::string& path : paths) {
    const obs::TimelineLoadResult r = obs::load_timeline_file(path, into);
    // load_timeline_file already names the offending path in its error.
    if (!r) return r.error;
  }
  return "";
}

std::string render_report(const obs::Timeline& tl,
                          const ReportOptions& options) {
  const double width_s = to_seconds(tl.window_width());
  const std::size_t used = used_windows(tl, options);

  std::size_t n_series = 0;
  for (const auto& [name, id] : tl.index()) {
    if (selected(name, options)) ++n_series;
  }

  std::string out;
  out += "timeline: " + std::to_string(n_series) + " series, window " +
         seconds(width_s) + ", span " +
         seconds(static_cast<double>(used) * width_s) + "\n";

  render_scrub_progress(tl, options, width_s, used, out);
  render_utilization(tl, options, width_s, used, out);
  render_fleet(tl, options, out);
  render_daemon(tl, options, out);
  render_digests(tl, options, out);
  render_events(tl, options, out);
  if (options.windows) render_window_tables(tl, options, width_s, out);
  return out;
}

}  // namespace pscrub::report
