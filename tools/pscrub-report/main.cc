// pscrub-report: deterministic text reports over PSCRUB_TIMELINE JSONL.
//
//   pscrub-report [--check] [--windows] [--series=PREFIX] FILE...
//
// Multiple files merge fleet-style before rendering (counters and digests
// sum, gauges last-file-wins), so per-worker or per-host exports combine
// into one report. --check validates the files and prints nothing on
// success. Exit codes: 0 ok, 1 load/parse failure, 2 usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/timeline.h"
#include "report.h"

namespace {

int usage(std::FILE* to) {
  std::fputs(
      "usage: pscrub-report [--check] [--windows] [--series=PREFIX] "
      "FILE...\n"
      "  --check          validate the files; no report output\n"
      "  --windows        include per-window tables and event listings\n"
      "  --series=PREFIX  restrict the report to series under PREFIX\n",
      to);
  return to == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  pscrub::report::ReportOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--check") {
      check = true;
    } else if (arg == "--windows") {
      options.windows = true;
    } else if (arg.rfind("--series=", 0) == 0) {
      options.series_prefix = arg.substr(std::string("--series=").size());
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pscrub-report: unknown option '%s'\n",
                   arg.c_str());
      return usage(stderr);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fputs("pscrub-report: no input files\n", stderr);
    return usage(stderr);
  }

  pscrub::obs::Timeline merged;
  const std::string error = pscrub::report::load_and_merge(files, merged);
  if (!error.empty()) {
    std::fprintf(stderr, "pscrub-report: %s\n", error.c_str());
    return 1;
  }
  if (check) return 0;

  const std::string report = pscrub::report::render_report(merged, options);
  std::fwrite(report.data(), 1, report.size(), stdout);
  return 0;
}
