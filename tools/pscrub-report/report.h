// pscrub-report rendering: deterministic text reports over timeline JSONL
// (the PSCRUB_TIMELINE export format, obs/timeline_io.h).
//
// Split from main.cc so tests can drive the renderer directly against
// in-memory timelines and golden-compare the output.
#pragma once

#include <string>
#include <vector>

#include "obs/timeline.h"

namespace pscrub::report {

struct ReportOptions {
  /// Also print the per-window tables for every selected series.
  bool windows = false;
  /// When non-empty, restrict every section to series/digests/events whose
  /// name starts with this prefix.
  std::string series_prefix;
};

/// Loads every file and merges it into `into` (fleet-style cross-file
/// merge: counters/digests sum, gauges last-merge-wins in argument
/// order). Returns "" on success, else "<path>: <error>" for the first
/// failure.
std::string load_and_merge(const std::vector<std::string>& paths,
                           obs::Timeline& into);

/// Renders the deterministic report: header, scrub-progress summaries,
/// utilization breakdown, fleet rollups (injected error sectors vs
/// detections per "<label>.fleet." prefix), daemon rollups (command
/// protocol, checkpoints, and per-device scrub totals per
/// "<label>.pscrubd." prefix), digest quantiles, event-log summaries,
/// and (with options.windows) per-window tables. Same timeline, same
/// options -> same bytes.
std::string render_report(const obs::Timeline& timeline,
                          const ReportOptions& options = {});

}  // namespace pscrub::report
