// pscrub-lint: the project's determinism & invariant static-analysis
// pass (see DESIGN.md section 11).
//
// The simulator's value rests on invariants the compiler never checks:
// output is bit-identical at any PSCRUB_SWEEP_WORKERS count, sim-time
// never leaks wall-clock or unseeded randomness, sim-time arithmetic
// stays inside int64 nanoseconds, checkpoints carry integer state only,
// and environment values go through one strict parsing layer. pscrub-lint
// enforces the textual shape of that contract over src/ bench/ examples/
// tests/ tools/ in two passes:
//
//   pass 1 (index.cc)  a tree-wide symbol index: function definitions
//                      with body extents and callee names, mutable
//                      namespace-scope variables, and function-scope
//                      annotation markers. From it, call-graph closures
//                      are derived for the checkpoint codec (seeded by
//                      checkpoint* file paths plus `checkpoint-path`
//                      annotations), the sweep-worker paths (seeded by
//                      `sweep-worker` annotations), and the designated
//                      env shims (`env-shim` annotations).
//   pass 2 (rules.cc)  per-file token rules, run against the index.
//
// Rule families (ids in all_rules(); `--list-rules` prints both):
//
//   determinism  wall-clock, unseeded-rng, unordered-container,
//                float-accum, exception-swallow (the PR-6 originals),
//                and mutable-global-in-sweep: non-const namespace-scope
//                state referenced from a sweep-worker call path -- the
//                cross-TU race TSan can only catch if the schedule
//                happens to expose it
//   sim-time     sim-time-overflow: ns*ns products, int-literal chains
//                that overflow `int` before widening into SimTime, and
//                narrowing casts on sim-time values (the token-bucket
//                and checkpoint math are the motivating hazards)
//   checkpoint   checkpoint-integer-only: float/double reads, writes or
//                literals anywhere on the checkpoint read/write call
//                paths -- the PR-9 "resume is exact because no float
//                crosses the boundary" contract
//   hygiene      env-hygiene: getenv/strto*/ato*/sto* anywhere outside
//                the strict obs::parse_positive_{env,double_env} shim
//                layer (or a function annotated `env-shim`)
//
// Suppression is explicit and line-scoped: a comment
//   // pscrub-lint: allow(wall-clock[, float-accum...])
// covers its own line and the next line; a file-level
//   // pscrub-lint: allow-file(wall-clock)
// allowlists a whole file (the timing-shim mechanism). Function-scope
// annotations use the same prefix:
//   // pscrub-lint: checkpoint-path   seed the checkpoint closure here
//   // pscrub-lint: sweep-worker      seed the sweep-worker closure here
//   // pscrub-lint: env-shim          this function IS the strict parser
// placed inside the function or on the line above it. Every marker is
// grep-able, so the set of exemptions stays auditable.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pscrub::lint {

/// Bumped whenever rule semantics or the index format change; part of the
/// incremental-cache key so stale caches self-invalidate, and reported as
/// the tool version in SARIF output.
inline constexpr const char* kLintVersion = "2.0.0";

struct Token {
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
  bool is_ident = false;
};

/// A source file after preprocessing: comments, string/char literals and
/// preprocessor directive lines blanked out of `code`, suppression
/// markers and function-scope annotations parsed out of the comments, and
/// the remaining code tokenized.
struct SourceFile {
  std::string path;
  std::string code;  // same byte offsets as the raw file
  std::vector<Token> tokens;
  std::set<std::string> file_allows;
  std::map<std::string, std::set<int>> line_allows;  // rule -> covered lines
  /// Function-scope annotations: (line, tag), e.g. (42, "env-shim").
  std::vector<std::pair<int, std::string>> annotations;
  /// All rule ids named by allow()/allow-file() markers, with the line of
  /// the marker -- consumed by the suppression self-check.
  std::vector<std::pair<int, std::string>> allow_ids;
  /// FNV-1a over the raw bytes; the incremental-cache content key.
  std::uint64_t content_hash = 0;

  /// Reads and preprocesses `file_path`. Returns false (with *error set)
  /// if the file cannot be read.
  bool load(const std::string& file_path, std::string* error);

  bool allowed(const std::string& rule, int line) const;
};

struct Diagnostic {
  std::string path;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Pass 1: the whole-program index.

/// One function (or method) definition: where it lives, what it calls,
/// and which annotations cover it.
struct FunctionRecord {
  std::string name;   // unqualified
  std::string qname;  // namespace/class-qualified, e.g. daemon::TokenBucket::refill
  int name_line = 0;
  int body_end_line = 0;
  /// Token span [body_begin_tok, body_end_tok) of the braced body,
  /// including the braces themselves.
  std::size_t body_begin_tok = 0;
  std::size_t body_end_tok = 0;
  /// Sorted unique unqualified callee names appearing in the body.
  std::vector<std::string> callees;
  std::set<std::string> tags;  // checkpoint-path / sweep-worker / env-shim
};

/// A mutable (non-const, non-constexpr) namespace-scope variable.
struct GlobalRecord {
  std::string name;
  int line = 0;
};

/// Everything pass 1 extracts from one file.
struct FileSummary {
  std::string path;
  std::vector<FunctionRecord> functions;
  std::vector<GlobalRecord> globals;
};

/// Tokenizer-level extraction of a file's summary (deterministic pure
/// function of the token stream).
FileSummary extract_summary(const SourceFile& file);

/// The cross-file analysis state rules consume. (file, fn) pairs index
/// into files[file].functions[fn].
struct AnalysisContext {
  std::vector<FileSummary> files;

  /// Functions on the checkpoint read/write path: value is the qualified
  /// name of the caller that pulled the function into the closure (empty
  /// for seeds).
  std::map<std::pair<int, int>, std::string> checkpoint_via;
  /// Functions reachable from a sweep-worker seed; same value scheme.
  std::map<std::pair<int, int>, std::string> sweep_via;
  /// Designated strict env-parsing shims.
  std::set<std::pair<int, int>> env_shims;
  /// Mutable namespace-scope state, name -> "path:line" of the definition.
  std::map<std::string, std::string> mutable_globals;

  /// FNV-1a over a canonical serialization of every field above; part of
  /// the incremental-cache key so cross-file changes invalidate cached
  /// per-file diagnostics.
  std::uint64_t digest = 0;
};

/// Builds closures + digest from per-file summaries (order of `summaries`
/// must be the sorted file order; the result is deterministic).
AnalysisContext build_context(std::vector<FileSummary> summaries);

// ---------------------------------------------------------------------------
// Pass 2: rules.

/// What a rule sees: the file's tokens, its pass-1 summary, and the
/// whole-program context. `file_index` locates this file in
/// ctx.files/closure keys.
struct RuleInput {
  const AnalysisContext& ctx;
  const SourceFile& file;
  const FileSummary& summary;
  int file_index = -1;
};

struct Rule {
  const char* id;
  const char* family;  // determinism / sim-time / checkpoint / hygiene
  const char* summary;
  void (*check)(const RuleInput&, std::vector<Diagnostic>&);
};

/// All registered rules, in stable (documentation) order.
const std::vector<Rule>& all_rules();

/// Runs every rule in `enabled` over `in`, appending diagnostics that are
/// not suppressed by an allow marker. Diagnostics come out ordered by
/// (line, col, rule) so output is deterministic.
void run_rules(const RuleInput& in, const std::set<std::string>& enabled,
               std::vector<Diagnostic>* out);

/// FNV-1a, the hash used for content keys and the context digest.
std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t seed = 1469598103934665603ULL);
std::uint64_t fnv1a(const std::string& s,
                    std::uint64_t seed = 1469598103934665603ULL);

// ---------------------------------------------------------------------------
// Output writers (output.cc). All three render the already-sorted
// diagnostic list; byte-for-byte identical input produces byte-for-byte
// identical output, which the CI cold-vs-warm cache check relies on.

/// The classic `path:line:col: [rule] message` lines.
std::string render_text(const std::vector<Diagnostic>& diags);

/// A small stable JSON object: {"tool", "version", "diagnostics": [...]}.
std::string render_json(const std::vector<Diagnostic>& diags);

/// SARIF 2.1.0, the shape GitHub code scanning ingests: tool.driver with
/// the enabled rule metadata, then one result per diagnostic.
std::string render_sarif(const std::vector<Diagnostic>& diags,
                         const std::set<std::string>& enabled);

// ---------------------------------------------------------------------------
// Incremental cache (cache.cc). Pass 1 (tokenize + index) always runs --
// it is cheap and cross-file -- but per-file pass-2 diagnostics are
// cached keyed on (content hash, ruleset hash, context digest, tool
// version). Entries store *pre-baseline* diagnostics so a baseline edit
// never requires re-analysis.

class DiagnosticCache {
 public:
  /// Loads `path`; a missing/stale/corrupt file yields an empty cache
  /// (never an error -- the cache is an optimization, not state).
  void load(const std::string& path);
  bool save(const std::string& path) const;

  /// Returns the cached diagnostics for `file_path`, or nullptr on miss.
  const std::vector<Diagnostic>* lookup(const std::string& file_path,
                                        std::uint64_t content_hash,
                                        std::uint64_t ruleset_hash,
                                        std::uint64_t ctx_digest) const;
  void store(const std::string& file_path, std::uint64_t content_hash,
             std::uint64_t ruleset_hash, std::uint64_t ctx_digest,
             std::vector<Diagnostic> diags);

 private:
  struct Entry {
    std::uint64_t content_hash = 0;
    std::uint64_t ruleset_hash = 0;
    std::uint64_t ctx_digest = 0;
    std::vector<Diagnostic> diags;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace pscrub::lint
