// pscrub-lint: the project's determinism & concurrency static-analysis
// pass (see DESIGN.md section 11).
//
// The simulator's value rests on invariants the compiler never checks:
// output is bit-identical at any PSCRUB_SWEEP_WORKERS count, and sim-time
// never leaks wall-clock or unseeded randomness. pscrub-lint enforces the
// textual shape of that contract over src/ bench/ examples/ tests/ with a
// token-level scan (comments, strings and #include lines are blanked
// first, so rules see only code):
//
//   wall-clock          no std::chrono clocks / time() / clock_gettime()
//                       outside an allowlisted timing shim
//   unseeded-rng        no rand()/std::random_device; every RNG engine is
//                       constructed with an explicit seed expression
//                       (task_seed()-derived in sweep tasks)
//   unordered-container no std::unordered_{map,set,...}: iteration order
//                       depends on hash-table layout and libstdc++
//                       version, which silently breaks bit-identity when
//                       such a container feeds output or registry merges
//   float-accum         no std::atomic<float/double> accumulation and no
//                       unordered parallel reductions (std::execution::*,
//                       std::reduce): float addition does not commute
//   exception-swallow   catch (...) must rethrow, capture
//                       (std::current_exception) or terminate -- a
//                       swallowed exception in an event callback lets the
//                       simulation diverge silently instead of failing
//                       deterministically (DESIGN.md sections 7 & 10)
//
// Suppression is explicit and line-scoped: a comment
//   // pscrub-lint: allow(rule-id[, rule-id...])
// covers its own line and the next line; a file-level
//   // pscrub-lint: allow-file(rule-id[, rule-id...])
// allowlists a whole file (the timing-shim mechanism). Every marker is
// grep-able, so the set of exemptions stays auditable.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace pscrub::lint {

struct Token {
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
  bool is_ident = false;
};

/// A source file after preprocessing: comments, string/char literals and
/// #include directives blanked out of `code`, suppression markers parsed
/// out of the comments, and the remaining code tokenized.
struct SourceFile {
  std::string path;
  std::string code;  // same byte offsets as the raw file
  std::vector<Token> tokens;
  std::set<std::string> file_allows;
  std::map<std::string, std::set<int>> line_allows;  // rule -> covered lines

  /// Reads and preprocesses `file_path`. Returns false (with *error set)
  /// if the file cannot be read.
  bool load(const std::string& file_path, std::string* error);

  bool allowed(const std::string& rule, int line) const;
};

struct Diagnostic {
  std::string path;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
};

struct Rule {
  const char* id;
  const char* summary;
  void (*check)(const SourceFile&, std::vector<Diagnostic>&);
};

/// All registered rules, in stable (documentation) order.
const std::vector<Rule>& all_rules();

/// Runs every rule in `enabled` over `file`, appending diagnostics that
/// are not suppressed by an allow marker. Diagnostics come out ordered by
/// (line, col, rule) so output is deterministic.
void run_rules(const SourceFile& file, const std::set<std::string>& enabled,
               std::vector<Diagnostic>* out);

}  // namespace pscrub::lint
