// Pass 1: the whole-program symbol index.
//
// extract_summary() walks one file's token stream with a scope-tracking
// recursive-descent heuristic (namespaces, class bodies, function
// definitions with brace-matched bodies) and records, per file:
//
//   - every function/method DEFINITION: unqualified + qualified name,
//     the token span of its body, the set of unqualified callee names
//     inside it, and any function-scope annotations covering it
//     (checkpoint-path / sweep-worker / env-shim);
//   - every mutable namespace-scope variable (non-const, non-constexpr,
//     non-extern) -- including class-static member definitions.
//
// build_context() then derives the cross-file state pass-2 rules consume:
// the checkpoint-path closure (seeded by checkpoint* file names plus
// annotations, closed over callees), the sweep-worker closure (seeded by
// annotations), the env-shim set, and the mutable-global table. Callee
// names resolve same-file-first (mirroring anonymous-namespace shadowing)
// and otherwise to every definition of that name -- a deliberate
// over-approximation: a linter closure must not silently lose paths to
// heuristic precision.
//
// This is a token-level heuristic, not a C++ parser. It is deliberately
// conservative: constructs it cannot classify are skipped, never
// misattributed, so the failure mode is a missed edge (caught by the
// fixture suite for the shapes the rules rely on), not a false positive.
#include "lint.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pscrub::lint {
namespace {

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kKeywords = {
      "alignas",   "alignof",  "asm",          "auto",     "bool",
      "break",     "case",     "catch",        "char",     "class",
      "const",     "constexpr","constinit",    "consteval","continue",
      "co_await",  "co_return","co_yield",     "decltype", "default",
      "delete",    "do",       "double",       "else",     "enum",
      "explicit",  "export",   "extern",       "false",    "float",
      "for",       "friend",   "goto",         "if",       "inline",
      "int",       "long",     "mutable",      "namespace","new",
      "noexcept",  "nullptr",  "operator",     "private",  "protected",
      "public",    "register", "requires",     "return",   "short",
      "signed",    "sizeof",   "static",       "static_assert",
      "static_cast","struct",  "switch",       "template", "this",
      "thread_local","throw",  "true",         "try",      "typedef",
      "typeid",    "typename", "union",        "unsigned", "using",
      "virtual",   "void",     "volatile",     "wchar_t",  "while",
      "final",     "override", "not",          "and",      "or",
  };
  return kKeywords;
}

struct Extractor {
  const SourceFile& file;
  const std::vector<Token>& t;
  FileSummary out;
  std::vector<std::string> scopes;

  explicit Extractor(const SourceFile& f) : file(f), t(f.tokens) {
    out.path = f.path;
  }

  /// i points at the opening token; returns the index just past the
  /// matching closer (or end on imbalance).
  std::size_t skip_pair(std::size_t i, const char* open, const char* close,
                        std::size_t end) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (t[i].text == open) ++depth;
      else if (t[i].text == close && --depth == 0) return i + 1;
    }
    return end;
  }

  /// i points at '<'. Returns the index past the matching '>' when the
  /// span looks like a template argument list, or i + 1 (treat as a
  /// comparison operator) when a statement boundary intervenes.
  std::size_t skip_angles(std::size_t i, std::size_t end) const {
    int depth = 0;
    const std::size_t limit = std::min(end, i + 256);
    for (std::size_t j = i; j < limit; ++j) {
      const std::string& s = t[j].text;
      if (s == "<") ++depth;
      else if (s == ">") {
        if (--depth == 0) return j + 1;
      } else if (s == "(") {
        j = skip_pair(j, "(", ")", end) - 1;
      } else if (s == ";" || s == "{" || s == "}") {
        break;
      }
    }
    return i + 1;
  }

  /// Advances past a whole statement: skips balanced (), {}, [] groups
  /// and stops just past the first top-level ';' (or at `end`).
  std::size_t skip_statement(std::size_t i, std::size_t end) const {
    while (i < end) {
      const std::string& s = t[i].text;
      if (s == ";") return i + 1;
      if (s == "(") { i = skip_pair(i, "(", ")", end); continue; }
      if (s == "{") { i = skip_pair(i, "{", "}", end); continue; }
      if (s == "[") { i = skip_pair(i, "[", "]", end); continue; }
      if (s == "}") return i;  // enclosing scope closes: don't run past it
      ++i;
    }
    return end;
  }

  std::string qualified(const std::string& tail) const {
    std::string q;
    for (const std::string& s : scopes) {
      if (s.empty()) continue;
      q += s;
      q += "::";
    }
    return q + tail;
  }

  /// Walks a ctor initializer list starting just past the ':'. Returns
  /// the index of the body '{' (or end).
  std::size_t skip_init_list(std::size_t i, std::size_t end) const {
    while (i < end) {
      const std::string& s = t[i].text;
      if (s == "{") {
        // `member{args}` is brace-init only when an identifier (or
        // template closer) immediately precedes; otherwise it is the body.
        if (i > 0 && (t[i - 1].is_ident || t[i - 1].text == ">")) {
          i = skip_pair(i, "{", "}", end);
          continue;
        }
        return i;
      }
      if (s == "(") { i = skip_pair(i, "(", ")", end); continue; }
      if (s == "<") { i = skip_angles(i, end); continue; }
      if (s == ";" || s == "}") return end;  // malformed; bail
      ++i;
    }
    return end;
  }

  /// Collects sorted unique callee names (identifier followed by '(')
  /// within [begin, end). Names from the std container/algorithm
  /// vocabulary are dropped: `ck.fields.insert(...)` is almost always a
  /// std call, and resolving it to every project method that happens to
  /// be named `insert` braids unrelated files into every closure. A
  /// project function with such a name can still be pulled onto a path
  /// with an explicit annotation.
  std::vector<std::string> collect_callees(std::size_t begin,
                                           std::size_t end) const {
    static const std::set<std::string> kStdVocabulary = {
        "size",    "empty",   "clear",   "begin",   "end",     "rbegin",
        "rend",    "front",   "back",    "data",    "at",      "find",
        "count",   "contains","insert",  "erase",   "emplace", "emplace_back",
        "push_back","pop_back","push",   "pop",     "top",     "resize",
        "reserve", "append",  "substr",  "compare", "length",  "c_str",
        "str",     "get",     "reset",   "release", "swap",    "merge",
        "min",     "max",     "abs",     "move",    "forward", "make_pair",
        "make_unique","make_shared","to_string",    "sort",    "stable_sort",
        "lower_bound","upper_bound","accumulate",   "assign",  "value",
        "value_or","has_value","emplace_hint","first","second", "tie",
    };
    std::set<std::string> names;
    for (std::size_t i = begin; i + 1 < end; ++i) {
      if (!t[i].is_ident || t[i + 1].text != "(") continue;
      if (cpp_keywords().count(t[i].text) != 0) continue;
      if (kStdVocabulary.count(t[i].text) != 0) continue;
      names.insert(t[i].text);
    }
    return std::vector<std::string>(names.begin(), names.end());
  }

  void record_function(const std::string& name, const std::string& qual_prefix,
                       std::size_t name_tok, std::size_t body_open,
                       std::size_t body_end) {
    FunctionRecord fn;
    fn.name = name;
    fn.qname = qualified(qual_prefix + name);
    fn.name_line = t[name_tok].line;
    fn.body_end_line = body_end > 0 && body_end <= t.size()
                           ? t[body_end - 1].line
                           : fn.name_line;
    fn.body_begin_tok = body_open;
    fn.body_end_tok = body_end;
    fn.callees = collect_callees(body_open, body_end);
    out.functions.push_back(std::move(fn));
  }

  /// Parses one declaration-or-definition starting at i in a namespace or
  /// class scope; returns the index to resume scanning from.
  std::size_t parse_declaration(std::size_t i, std::size_t end,
                                bool class_scope) {
    std::size_t last_ident = t.size();
    bool is_const = false;
    bool is_extern = false;
    bool saw_call_shape = false;  // `name(...)` seen: prototype, not a var
    std::size_t j = i;
    while (j < end) {
      const Token& tok = t[j];
      const std::string& s = tok.text;
      if (tok.is_ident) {
        if (s == "const" || s == "constexpr" || s == "constinit" ||
            s == "consteval") {
          is_const = true;
          ++j;
          continue;
        }
        if (s == "extern") {
          is_extern = true;
          ++j;
          continue;
        }
        if (s == "operator") {
          // Name = "operator" + the symbol/type tokens up to the '('.
          std::string name = "operator";
          std::size_t k = j + 1;
          while (k < end && t[k].text != "(" && k < j + 6) {
            name += t[k].text;
            ++k;
          }
          if (k < end && t[k].text == "(") {
            const std::size_t after = finish_function_candidate(
                name, "", j, k, end, class_scope);
            if (after != 0) return after;
          }
          j = k;
          continue;
        }
        if (j + 1 < end && t[j + 1].text == "(") {
          if (cpp_keywords().count(s) != 0) {
            // decltype(...) / noexcept(...) in a declarator: skip the group.
            j = skip_pair(j + 1, "(", ")", end);
            continue;
          }
          // Qualified-name prefix: `Class::name(` -> prefix "Class::".
          std::string prefix;
          std::size_t back = j;
          while (back >= 2 && t[back - 1].text == "::" &&
                 t[back - 2].is_ident) {
            prefix = t[back - 2].text + "::" + prefix;
            back -= 2;
          }
          const std::size_t after =
              finish_function_candidate(s, prefix, j, j + 1, end, class_scope);
          if (after != 0) return after;
          // Not a definition: a prototype (or a paren-init). Either way
          // the terminator below must not record `last_ident` -- for a
          // prototype that would register the *return type* as a global.
          saw_call_shape = true;
          last_ident = t.size();
          j = skip_pair(j + 1, "(", ")", end);
          continue;
        }
        last_ident = j;
        ++j;
        continue;
      }
      if (s == "<" && j > i && t[j - 1].is_ident) {
        j = skip_angles(j, end);
        continue;
      }
      if (s == "[" && last_ident == t.size()) {
        // Leading [[attribute]]: not an array declarator.
        j = skip_pair(j, "[", "]", end);
        continue;
      }
      if (s == "=" || s == "{" || s == "[" || s == ";") {
        if (!class_scope && !is_const && !is_extern && !saw_call_shape &&
            last_ident < t.size() &&
            cpp_keywords().count(t[last_ident].text) == 0) {
          out.globals.push_back(
              GlobalRecord{t[last_ident].text, t[last_ident].line});
        }
        return skip_statement(j, end);
      }
      if (s == "}") return j;  // scope closes mid-declaration: bail out
      ++j;
    }
    return end;
  }

  /// `name_tok` names a candidate function whose parameter list opens at
  /// `paren`. If a braced body follows (after cv/ref/noexcept/trailing-
  /// return/ctor-init-list), records the definition and returns the index
  /// past the body. Returns 0 when this is not a function definition.
  std::size_t finish_function_candidate(const std::string& name,
                                        const std::string& prefix,
                                        std::size_t name_tok,
                                        std::size_t paren, std::size_t end,
                                        bool class_scope) {
    (void)class_scope;
    std::size_t k = skip_pair(paren, "(", ")", end);
    while (k < end) {
      const std::string& s = t[k].text;
      if (s == "const" || s == "noexcept" || s == "override" ||
          s == "final" || s == "mutable" || s == "&" || s == "try") {
        if (s == "noexcept" && k + 1 < end && t[k + 1].text == "(") {
          k = skip_pair(k + 1, "(", ")", end);
        } else {
          ++k;
        }
        continue;
      }
      if (s == "->") {
        // Trailing return type: absorb tokens up to the body/terminator.
        ++k;
        while (k < end && t[k].text != "{" && t[k].text != ";" &&
               t[k].text != "=") {
          if (t[k].text == "<") k = skip_angles(k, end);
          else if (t[k].text == "(") k = skip_pair(k, "(", ")", end);
          else ++k;
        }
        continue;
      }
      if (s == ":") {
        k = skip_init_list(k + 1, end);
        continue;
      }
      break;
    }
    if (k < end && t[k].text == "{") {
      const std::size_t body_end = skip_pair(k, "{", "}", end);
      record_function(name, prefix, name_tok, k, body_end);
      return body_end;
    }
    return 0;
  }

  void scan_scope(std::size_t i, std::size_t end, bool class_scope) {
    while (i < end) {
      const Token& tok = t[i];
      const std::string& s = tok.text;
      if (s == ";" || s == "}" || s == ":") {  // ':' after access specifier
        ++i;
        continue;
      }
      if (tok.is_ident) {
        if (s == "namespace") {
          std::size_t j = i + 1;
          std::string name;
          while (j < end && (t[j].is_ident || t[j].text == "::")) {
            name += t[j].text;
            ++j;
          }
          if (j < end && t[j].text == "{") {
            const std::size_t close = skip_pair(j, "{", "}", end);
            scopes.push_back(name);
            scan_scope(j + 1, close - 1, false);
            scopes.pop_back();
            i = close;
            continue;
          }
          i = skip_statement(j, end);
          continue;
        }
        if (s == "using" || s == "typedef" || s == "static_assert" ||
            s == "friend") {
          i = skip_statement(i, end);
          continue;
        }
        if (s == "template") {
          i = (i + 1 < end && t[i + 1].text == "<") ? skip_angles(i + 1, end)
                                                    : i + 1;
          continue;
        }
        if (s == "enum") {
          // enum [class] [name] [: base] { ... } ; -- enumerators are not
          // namespace-scope state; skip the whole definition.
          std::size_t j = i + 1;
          while (j < end && t[j].text != "{" && t[j].text != ";") ++j;
          if (j < end && t[j].text == "{") j = skip_pair(j, "{", "}", end);
          i = skip_statement(j, end);
          continue;
        }
        if (s == "struct" || s == "class" || s == "union") {
          std::size_t j = i + 1;
          std::string name;
          while (j < end && t[j].text != "{" && t[j].text != ";") {
            if (t[j].is_ident && name.empty() && t[j].text != "alignas" &&
                t[j].text != "final") {
              name = t[j].text;
            }
            if (t[j].text == "<") { j = skip_angles(j, end); continue; }
            if (t[j].text == "(") { j = skip_pair(j, "(", ")", end); continue; }
            ++j;
          }
          if (j < end && t[j].text == "{") {
            const std::size_t close = skip_pair(j, "{", "}", end);
            scopes.push_back(name);
            scan_scope(j + 1, close - 1, true);
            scopes.pop_back();
            i = skip_statement(close, end);
            continue;
          }
          i = skip_statement(j, end);
          continue;
        }
      }
      if (s == "{") {  // stray block (e.g. an unrecognized construct)
        i = skip_pair(i, "{", "}", end);
        continue;
      }
      i = parse_declaration(i, end, class_scope);
    }
  }

  void attach_annotations() {
    // A tag covers the function whose [name_line - 1, body_end_line]
    // range contains the marker line; the last match wins so a marker on
    // the line above a definition prefers that definition.
    for (const auto& [line, tag] : file.annotations) {
      FunctionRecord* best = nullptr;
      for (FunctionRecord& fn : out.functions) {
        if (line >= fn.name_line - 1 && line <= fn.body_end_line) best = &fn;
      }
      if (best != nullptr) best->tags.insert(tag);
    }
  }
};

bool path_basename_contains(const std::string& path, const std::string& sub) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return base.find(sub) != std::string::npos;
}

}  // namespace

FileSummary extract_summary(const SourceFile& file) {
  Extractor ex(file);
  ex.scan_scope(0, file.tokens.size(), false);
  ex.attach_annotations();
  return std::move(ex.out);
}

AnalysisContext build_context(std::vector<FileSummary> summaries) {
  AnalysisContext ctx;
  ctx.files = std::move(summaries);

  // name -> every (file, fn) defining it, in deterministic order.
  std::map<std::string, std::vector<std::pair<int, int>>> by_name;
  for (int fi = 0; fi < static_cast<int>(ctx.files.size()); ++fi) {
    const FileSummary& fs = ctx.files[fi];
    for (int ni = 0; ni < static_cast<int>(fs.functions.size()); ++ni) {
      by_name[fs.functions[ni].name].emplace_back(fi, ni);
    }
  }

  // Same-file definitions shadow cross-file ones (anonymous-namespace
  // helpers like `fail` recur across TUs; linking them all would braid
  // unrelated files into every closure).
  auto resolve = [&](const std::string& callee,
                     int from_file) -> std::vector<std::pair<int, int>> {
    auto it = by_name.find(callee);
    if (it == by_name.end()) return {};
    std::vector<std::pair<int, int>> same_file;
    for (const auto& key : it->second) {
      if (key.first == from_file) same_file.push_back(key);
    }
    return same_file.empty() ? it->second : same_file;
  };

  auto close_over =
      [&](std::vector<std::pair<int, int>> seeds)
      -> std::map<std::pair<int, int>, std::string> {
    std::map<std::pair<int, int>, std::string> via;
    std::vector<std::pair<int, int>> queue = std::move(seeds);
    for (const auto& s : queue) via[s];  // seeds: empty via
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const auto [fi, ni] = queue[qi];
      const FunctionRecord& fn = ctx.files[fi].functions[ni];
      for (const std::string& callee : fn.callees) {
        for (const auto& target : resolve(callee, fi)) {
          if (via.count(target) != 0) continue;
          via[target] = fn.qname;
          queue.push_back(target);
        }
      }
    }
    return via;
  };

  std::vector<std::pair<int, int>> checkpoint_seeds;
  std::vector<std::pair<int, int>> sweep_seeds;
  for (int fi = 0; fi < static_cast<int>(ctx.files.size()); ++fi) {
    const FileSummary& fs = ctx.files[fi];
    const bool checkpoint_file = path_basename_contains(fs.path, "checkpoint");
    for (int ni = 0; ni < static_cast<int>(fs.functions.size()); ++ni) {
      const FunctionRecord& fn = fs.functions[ni];
      if (checkpoint_file || fn.tags.count("checkpoint-path") != 0) {
        checkpoint_seeds.emplace_back(fi, ni);
      }
      if (fn.tags.count("sweep-worker") != 0) sweep_seeds.emplace_back(fi, ni);
      if (fn.tags.count("env-shim") != 0) ctx.env_shims.emplace(fi, ni);
    }
  }
  ctx.checkpoint_via = close_over(std::move(checkpoint_seeds));
  ctx.sweep_via = close_over(std::move(sweep_seeds));

  for (const FileSummary& fs : ctx.files) {
    for (const GlobalRecord& g : fs.globals) {
      const std::string loc = fs.path + ":" + std::to_string(g.line);
      // First definition wins deterministically (sorted file order).
      ctx.mutable_globals.emplace(g.name, loc);
    }
  }

  // Canonical digest over everything pass-2 rules can observe from the
  // context; per-file cache entries embed it so any cross-file change in
  // closures/shims/globals invalidates them.
  std::ostringstream canon;
  canon << "pscrub-lint-ctx " << kLintVersion << "\n";
  auto emit_closure = [&](const char* label,
                          const std::map<std::pair<int, int>, std::string>& m) {
    for (const auto& [key, via] : m) {
      const FunctionRecord& fn = ctx.files[key.first].functions[key.second];
      canon << label << " " << ctx.files[key.first].path << " " << fn.qname
            << " " << fn.name_line << " <- " << via << "\n";
    }
  };
  emit_closure("C", ctx.checkpoint_via);
  emit_closure("S", ctx.sweep_via);
  for (const auto& key : ctx.env_shims) {
    const FunctionRecord& fn = ctx.files[key.first].functions[key.second];
    canon << "E " << ctx.files[key.first].path << " " << fn.qname << " "
          << fn.name_line << "\n";
  }
  for (const auto& [name, loc] : ctx.mutable_globals) {
    canon << "G " << name << " " << loc << "\n";
  }
  ctx.digest = fnv1a(canon.str());
  return ctx;
}

}  // namespace pscrub::lint
