// SourceFile loading: comment/string stripping, suppression-marker and
// annotation parsing, preprocessor-line blanking, and tokenization.
//
// The stripper is a single-pass state machine that preserves byte offsets
// (every stripped character becomes a space; newlines survive), so token
// line/column numbers match the original file. Raw strings, line
// continuations inside // comments, and escapes inside literals are
// handled; trigraphs and digraphs are not (the tree does not use them).
#include "lint.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace pscrub::lint {
namespace {

struct Comment {
  std::string text;
  int line;  // line the comment starts on
};

/// Blanks comments and string/char literals out of `raw`, collecting the
/// comment bodies for marker parsing.
std::string strip(const std::string& raw, std::vector<Comment>* comments) {
  std::string out = raw;
  std::size_t i = 0;
  const std::size_t n = raw.size();
  int line = 1;

  auto blank = [&](std::size_t at) {
    if (out[at] != '\n') out[at] = ' ';
  };

  while (i < n) {
    const char c = raw[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    // Line comment (handles backslash-continued lines).
    if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
      Comment cm{"", line};
      while (i < n) {
        if (raw[i] == '\n') {
          // A backslash immediately before the newline continues the
          // comment onto the next line.
          if (!cm.text.empty() && cm.text.back() == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        cm.text.push_back(raw[i]);
        blank(i);
        ++i;
      }
      comments->push_back(std::move(cm));
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      Comment cm{"", line};
      blank(i);
      blank(i + 1);
      i += 2;
      while (i < n && !(raw[i] == '*' && i + 1 < n && raw[i + 1] == '/')) {
        if (raw[i] == '\n') ++line;
        cm.text.push_back(raw[i]);
        blank(i);
        ++i;
      }
      if (i < n) {
        blank(i);
        blank(i + 1);
        i += 2;
      }
      comments->push_back(std::move(cm));
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && raw[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(raw[i - 1])) &&
                    raw[i - 1] != '_'))) {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && raw[d] != '(' && raw[d] != '\n') delim.push_back(raw[d++]);
      if (d < n && raw[d] == '(') {
        const std::string close = ")" + delim + "\"";
        std::size_t end = raw.find(close, d + 1);
        if (end == std::string::npos) end = n;  // unterminated: blank the rest
        else end += close.size();
        for (std::size_t k = i; k < end; ++k) {
          if (raw[k] == '\n') ++line;
          blank(k);
        }
        i = end;
        continue;
      }
    }
    // String / char literal. A single-quote right after an identifier or
    // digit character is a C++14 digit separator (100'000), not a literal
    // opener: blank just the quote so the number's digits survive.
    if (c == '\'' && i > 0 &&
        (std::isalnum(static_cast<unsigned char>(raw[i - 1])) != 0 ||
         raw[i - 1] == '_')) {
      blank(i);
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      blank(i);
      ++i;
      while (i < n && raw[i] != quote) {
        if (raw[i] == '\n') break;  // unterminated on this line: bail out
        if (raw[i] == '\\' && i + 1 < n) {
          blank(i);
          ++i;
        }
        blank(i);
        ++i;
      }
      if (i < n && raw[i] == quote) {
        blank(i);
        ++i;
      }
      continue;
    }
    ++i;
  }
  return out;
}

/// Function-scope annotation tags recognized after "pscrub-lint:".
const std::set<std::string>& annotation_tags() {
  static const std::set<std::string> kTags = {"checkpoint-path",
                                              "sweep-worker", "env-shim"};
  return kTags;
}

/// Parses "pscrub-lint: allow(...)" / "allow-file(...)" markers and
/// function-scope annotations ("pscrub-lint: env-shim" etc.) out of a
/// comment body. Rule ids are [a-z0-9-]+, comma- or space-separated.
void parse_markers(const Comment& cm, SourceFile* file) {
  const std::string key = "pscrub-lint:";
  std::size_t pos = 0;
  while ((pos = cm.text.find(key, pos)) != std::string::npos) {
    std::size_t p = pos + key.size();
    while (p < cm.text.size() &&
           std::isspace(static_cast<unsigned char>(cm.text[p]))) {
      ++p;
    }
    bool file_scope = false;
    if (cm.text.compare(p, 10, "allow-file") == 0) {
      file_scope = true;
      p += 10;
    } else if (cm.text.compare(p, 5, "allow") == 0) {
      p += 5;
    } else {
      // Not a suppression: try a function-scope annotation tag.
      std::string word;
      std::size_t q = p;
      while (q < cm.text.size() &&
             (std::isalnum(static_cast<unsigned char>(cm.text[q])) ||
              cm.text[q] == '-')) {
        word.push_back(cm.text[q]);
        ++q;
      }
      if (annotation_tags().count(word) != 0) {
        file->annotations.emplace_back(cm.line, word);
      }
      pos = q > p ? q : p + 1;
      continue;
    }
    if (p >= cm.text.size() || cm.text[p] != '(') {
      pos = p;
      continue;
    }
    ++p;
    std::string id;
    auto commit = [&] {
      if (id.empty()) return;
      file->allow_ids.emplace_back(cm.line, id);
      if (file_scope) {
        file->file_allows.insert(id);
      } else {
        // A marker covers its own line and the following one, so both
        // trailing and preceding-line comments work.
        file->line_allows[id].insert(cm.line);
        file->line_allows[id].insert(cm.line + 1);
      }
      id.clear();
    };
    while (p < cm.text.size() && cm.text[p] != ')') {
      const char ch = cm.text[p];
      if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '-' ||
          ch == '_') {
        id.push_back(ch);
      } else {
        commit();
      }
      ++p;
    }
    commit();
    pos = p;
  }
}

/// Blanks preprocessor directive lines (backslash-continuation aware):
/// the hazards the rules look for are *uses* of a banned facility in
/// code, not inclusions of its header or conditional-compilation plumbing
/// -- and an #if/#else pair with braces in both branches would desync the
/// index's brace matching.
void blank_directives(std::string* code) {
  std::size_t bol = 0;
  bool continued = false;
  while (bol < code->size()) {
    std::size_t eol = code->find('\n', bol);
    if (eol == std::string::npos) eol = code->size();
    std::size_t p = bol;
    while (p < eol && (code->at(p) == ' ' || code->at(p) == '\t')) ++p;
    const bool directive = continued || (p < eol && code->at(p) == '#');
    if (directive) {
      continued = eol > bol && code->at(eol - 1) == '\\';
      for (std::size_t k = bol; k < eol; ++k) (*code)[k] = ' ';
    } else {
      continued = false;
    }
    bol = eol + 1;
  }
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++col;
      ++i;
      continue;
    }
    Token t;
    t.line = line;
    t.col = col;
    if (ident_start(c)) {
      while (i < n && ident_char(code[i])) {
        t.text.push_back(code[i]);
        ++i;
        ++col;
      }
      t.is_ident = true;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      // Numbers (incl. hex/float suffixes) -- precise parsing is not
      // needed, rules never look inside them.
      while (i < n && (ident_char(code[i]) || code[i] == '.')) {
        t.text.push_back(code[i]);
        ++i;
        ++col;
      }
    } else {
      // Multi-char punctuation the rules care about; everything else is a
      // single character.
      if (c == ':' && i + 1 < n && code[i + 1] == ':') {
        t.text = "::";
      } else if (c == '-' && i + 1 < n && code[i + 1] == '>') {
        t.text = "->";
      } else if (c == '.' && i + 2 < n && code[i + 1] == '.' &&
                 code[i + 2] == '.') {
        t.text = "...";
      } else {
        t.text.assign(1, c);
      }
      i += t.text.size();
      col += static_cast<int>(t.text.size());
    }
    tokens.push_back(std::move(t));
  }
  return tokens;
}

}  // namespace

bool SourceFile::load(const std::string& file_path, std::string* error) {
  path = file_path;
  std::ifstream in(file_path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + file_path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string raw = buf.str();

  content_hash = fnv1a(raw);
  std::vector<Comment> comments;
  code = strip(raw, &comments);
  for (const Comment& cm : comments) parse_markers(cm, this);
  blank_directives(&code);
  tokens = tokenize(code);
  return true;
}

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t seed) {
  return fnv1a(s.data(), s.size(), seed);
}

bool SourceFile::allowed(const std::string& rule, int line) const {
  if (file_allows.count(rule) != 0) return true;
  auto it = line_allows.find(rule);
  return it != line_allows.end() && it->second.count(line) != 0;
}

}  // namespace pscrub::lint
