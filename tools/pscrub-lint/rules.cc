// Rule implementations. Each rule is a pure function over a SourceFile's
// token stream; see lint.h for what each one guards and why.
#include "lint.h"

#include <algorithm>
#include <cstddef>

namespace pscrub::lint {
namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kKeywords = {
      "return", "co_return", "co_yield", "co_await", "case",  "throw",
      "if",     "while",     "for",      "do",       "else",  "switch",
      "goto",   "new",       "delete",   "sizeof",   "not",   "and",
      "or",     "xor",       "typedef",  "using",    "const", "constexpr",
  };
  return kKeywords;
}

/// True when token i looks like a *call* of a free function: `name(`,
/// optionally qualified as `std::name(`. Member calls (`x.name(`,
/// `p->name(`, `Foo::name(`) and declarations (`SimTime name(`) do not
/// count.
bool is_free_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || t[i + 1].text != "(") return false;
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (prev.text == "." || prev.text == "->") return false;
  if (prev.text == "::") {
    // Only the std-qualified form is the banned libc/std function.
    return i >= 2 && t[i - 2].text == "std";
  }
  if (prev.is_ident && keywords().count(prev.text) == 0) {
    return false;  // `SimTime time(...)`: a declaration, not a call
  }
  return true;
}

void emit(const SourceFile& f, const Token& t, const char* rule,
          std::string message, std::vector<Diagnostic>* out) {
  out->push_back(Diagnostic{f.path, t.line, t.col, rule, std::move(message)});
}

// ---- wall-clock -----------------------------------------------------------

void check_wall_clock(const SourceFile& f, std::vector<Diagnostic>& out) {
  static const std::set<std::string> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock",
      "file_clock",   "utc_clock",    "tai_clock",
      "gps_clock",
  };
  static const std::set<std::string> kTimeFns = {
      "time",      "clock",  "gettimeofday", "clock_gettime", "localtime",
      "gmtime",    "mktime", "ftime",        "timespec_get",  "strftime",
      "nanosleep", "usleep", "sleep",
  };
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident) continue;
    if (kClocks.count(t[i].text) != 0) {
      emit(f, t[i], "wall-clock",
           "std::chrono::" + t[i].text +
               " reads the wall clock; simulations must run on SimTime "
               "only (use the sim clock, or move this into an allowlisted "
               "timing shim)",
           &out);
    } else if (kTimeFns.count(t[i].text) != 0 && is_free_call(t, i)) {
      emit(f, t[i], "wall-clock",
           t[i].text +
               "() reads the wall clock (or blocks on it); simulations "
               "must be a pure function of their seed and SimTime",
           &out);
    }
  }
}

// ---- unseeded-rng ---------------------------------------------------------

/// True if identifier `name` is called or brace/paren-initialized with at
/// least one argument anywhere else in the file -- the constructor-
/// initializer-list escape hatch for member engine declarations.
bool seeded_elsewhere(const std::vector<Token>& t, const std::string& name,
                      std::size_t decl_index) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (i == decl_index) continue;
    if (!t[i].is_ident || t[i].text != name) continue;
    const std::string& open = t[i + 1].text;
    if ((open == "(" && t[i + 2].text != ")") ||
        (open == "{" && t[i + 2].text != "}")) {
      return true;
    }
  }
  return false;
}

void check_unseeded_rng(const SourceFile& f, std::vector<Diagnostic>& out) {
  static const std::set<std::string> kEngines = {
      "mt19937",      "mt19937_64", "default_random_engine",
      "minstd_rand",  "minstd_rand0",
      "ranlux24",     "ranlux48",   "ranlux24_base",
      "ranlux48_base", "knuth_b",
  };
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident) continue;
    const std::string& s = t[i].text;
    if (s == "random_device") {
      emit(f, t[i], "unseeded-rng",
           "std::random_device is nondeterministic; derive seeds from the "
           "scenario seed (exp::task_seed) instead",
           &out);
      continue;
    }
    if ((s == "rand" || s == "srand" || s == "random_shuffle") &&
        is_free_call(t, i)) {
      emit(f, t[i], "unseeded-rng",
           s + "() uses hidden global state; use pscrub::Rng seeded from "
               "exp::task_seed",
           &out);
      continue;
    }
    if (kEngines.count(s) == 0) continue;
    // Engine type name: require an explicit seed at the construction site.
    //   std::mt19937 g;          -> flagged (default_seed: shared, implicit)
    //   std::mt19937 g{} / g()   -> flagged
    //   std::mt19937{} / ()      -> flagged (temporary)
    //   std::mt19937 g(seed)     -> ok
    //   std::mt19937_64 engine_; -> ok iff engine_(...) appears elsewhere
    //                               (constructor initializer list)
    std::size_t j = i + 1;
    std::size_t name_index = t.size();
    if (j < t.size() && t[j].is_ident) {
      name_index = j;
      ++j;
    }
    if (j >= t.size()) continue;
    const bool empty_paren =
        t[j].text == "(" && j + 1 < t.size() && t[j + 1].text == ")";
    const bool empty_brace =
        t[j].text == "{" && j + 1 < t.size() && t[j + 1].text == "}";
    const bool bare_member = name_index < t.size() && t[j].text == ";";
    if (!(empty_paren || empty_brace || bare_member)) continue;
    if (bare_member &&
        seeded_elsewhere(t, t[name_index].text, name_index)) {
      continue;
    }
    emit(f, t[i], "unseeded-rng",
         "std::" + s +
             " constructed without an explicit seed; every engine must be "
             "seeded from the scenario seed (exp::task_seed) so runs are "
             "reproducible",
         &out);
  }
}

// ---- unordered-container --------------------------------------------------

void check_unordered(const SourceFile& f, std::vector<Diagnostic>& out) {
  static const std::set<std::string> kUnordered = {
      "unordered_map",      "unordered_set",     "unordered_multimap",
      "unordered_multiset", "unordered_flat_map", "unordered_flat_set",
      "unordered_node_map", "unordered_node_set",
  };
  for (const Token& tok : f.tokens) {
    if (!tok.is_ident || kUnordered.count(tok.text) == 0) continue;
    emit(f, tok, "unordered-container",
         "std::" + tok.text +
             " iterates in hash-table-layout order, which varies across "
             "libstdc++ versions and silently breaks bit-identity when it "
             "feeds output or registry merges; use std::map/std::set (or "
             "justify with an allow marker)",
         &out);
  }
}

// ---- float-accum ----------------------------------------------------------

void check_float_accum(const SourceFile& f, std::vector<Diagnostic>& out) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident) continue;
    const std::string& s = t[i].text;
    // std::atomic<float/double>: concurrent fetch_add order is
    // scheduling-dependent and float addition does not commute.
    if (s == "atomic" && i + 2 < t.size() && t[i + 1].text == "<") {
      const std::string& a = t[i + 2].text;
      const bool long_double = a == "long" && i + 3 < t.size() &&
                               t[i + 3].text == "double";
      if (a == "float" || a == "double" || long_double) {
        emit(f, t[i], "float-accum",
             "std::atomic<floating-point> accumulates in scheduling order; "
             "accumulate per task and reduce in task-index order instead "
             "(exp::sweep's merge contract)",
             &out);
      }
      continue;
    }
    // std::execution::par / par_unseq / unseq, and std::reduce /
    // std::transform_reduce (unordered even without a policy).
    if ((s == "par" || s == "par_unseq" || s == "unseq") && i >= 2 &&
        t[i - 1].text == "::" && t[i - 2].text == "execution") {
      emit(f, t[i], "float-accum",
           "std::execution::" + s +
               " reductions are unordered; results depend on the thread "
               "schedule -- fan out with exp::sweep and merge in task "
               "order",
           &out);
      continue;
    }
    if ((s == "reduce" || s == "transform_reduce") && i >= 2 &&
        t[i - 1].text == "::" && t[i - 2].text == "std") {
      emit(f, t[i], "float-accum",
           "std::" + s +
               " may reassociate floating-point sums (unspecified order "
               "even without an execution policy); use std::accumulate or "
               "an explicit index-ordered loop",
           &out);
    }
  }
}

// ---- exception-swallow ----------------------------------------------------

void check_exception_swallow(const SourceFile& f,
                             std::vector<Diagnostic>& out) {
  static const std::set<std::string> kHandles = {
      "throw",     "rethrow_exception", "current_exception", "terminate",
      "abort",     "exit",              "quick_exit",        "_Exit",
      "FAIL",      "ADD_FAILURE",       "GTEST_FAIL",
  };
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (!(t[i].text == "catch" && t[i + 1].text == "(" &&
          t[i + 2].text == "..." && t[i + 3].text == ")" &&
          t[i + 4].text == "{")) {
      continue;
    }
    // Scan the brace-balanced handler body for any acceptable disposition.
    int depth = 1;
    bool handled = false;
    std::size_t j = i + 5;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "{") ++depth;
      else if (t[j].text == "}") --depth;
      else if (t[j].is_ident && kHandles.count(t[j].text) != 0) handled = true;
    }
    if (!handled) {
      emit(f, t[i], "exception-swallow",
           "catch (...) swallows the exception; an event callback that "
           "fails must rethrow, capture (std::current_exception) or "
           "terminate so the sweep's deterministic lowest-index rethrow "
           "contract holds (DESIGN.md sections 7 & 10)",
           &out);
    }
    i = j;
  }
}

}  // namespace

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> kRules = {
      {"wall-clock",
       "bans wall-clock reads (std::chrono clocks, time(), sleeps) outside "
       "an allowlisted timing shim",
       check_wall_clock},
      {"unseeded-rng",
       "bans rand()/std::random_device and RNG engines constructed without "
       "an explicit seed",
       check_unseeded_rng},
      {"unordered-container",
       "bans std::unordered_* containers whose iteration order depends on "
       "hash-table layout",
       check_unordered},
      {"float-accum",
       "bans scheduling-ordered float accumulation (atomic floats, "
       "std::execution policies, std::reduce)",
       check_float_accum},
      {"exception-swallow",
       "requires catch (...) to rethrow, capture or terminate",
       check_exception_swallow},
  };
  return kRules;
}

void run_rules(const SourceFile& file, const std::set<std::string>& enabled,
               std::vector<Diagnostic>* out) {
  std::vector<Diagnostic> raw;
  for (const Rule& rule : all_rules()) {
    if (enabled.count(rule.id) == 0) continue;
    rule.check(file, raw);
  }
  std::stable_sort(raw.begin(), raw.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     return a.rule < b.rule;
                   });
  for (Diagnostic& d : raw) {
    if (!file.allowed(d.rule, d.line)) out->push_back(std::move(d));
  }
}

}  // namespace pscrub::lint
