// Rule implementations. Each rule is a pure function of a RuleInput: the
// file's token stream, its pass-1 summary, and the whole-program
// AnalysisContext; see lint.h for what each one guards and why.
#include "lint.h"

#include <algorithm>
#include <cstddef>

namespace pscrub::lint {
namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kKeywords = {
      "return", "co_return", "co_yield", "co_await", "case",  "throw",
      "if",     "while",     "for",      "do",       "else",  "switch",
      "goto",   "new",       "delete",   "sizeof",   "not",   "and",
      "or",     "xor",       "typedef",  "using",    "const", "constexpr",
  };
  return kKeywords;
}

/// True when token i looks like a *call* of a free function: `name(`,
/// optionally qualified as `std::name(` or globally as `::name(`. Member
/// calls (`x.name(`, `p->name(`, `Foo::name(`) and declarations
/// (`SimTime name(`) do not count.
bool is_free_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || t[i + 1].text != "(") return false;
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (prev.text == "." || prev.text == "->") return false;
  if (prev.text == "::") {
    // std-qualified, or the leading-:: global qualifier.
    if (i >= 2 && t[i - 2].is_ident) return t[i - 2].text == "std";
    return true;
  }
  if (prev.is_ident && keywords().count(prev.text) == 0) {
    return false;  // `SimTime time(...)`: a declaration, not a call
  }
  return true;
}

void emit(const SourceFile& f, const Token& t, const char* rule,
          std::string message, std::vector<Diagnostic>* out) {
  out->push_back(Diagnostic{f.path, t.line, t.col, rule, std::move(message)});
}

/// Index of the innermost function whose body token span contains
/// `tok_idx`, or -1. (Bodies nest only via local classes, so the last
/// match is the innermost.)
int enclosing_function(const FileSummary& s, std::size_t tok_idx) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(s.functions.size()); ++i) {
    const FunctionRecord& fn = s.functions[i];
    if (tok_idx >= fn.body_begin_tok && tok_idx < fn.body_end_tok) best = i;
  }
  return best;
}

// ---- wall-clock -----------------------------------------------------------

void check_wall_clock(const RuleInput& in, std::vector<Diagnostic>& out) {
  static const std::set<std::string> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock",
      "file_clock",   "utc_clock",    "tai_clock",
      "gps_clock",
  };
  static const std::set<std::string> kTimeFns = {
      "time",      "clock",  "gettimeofday", "clock_gettime", "localtime",
      "gmtime",    "mktime", "ftime",        "timespec_get",  "strftime",
      "nanosleep", "usleep", "sleep",
  };
  const SourceFile& f = in.file;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident) continue;
    if (kClocks.count(t[i].text) != 0) {
      emit(f, t[i], "wall-clock",
           "std::chrono::" + t[i].text +
               " reads the wall clock; simulations must run on SimTime "
               "only (use the sim clock, or move this into an allowlisted "
               "timing shim)",
           &out);
    } else if (kTimeFns.count(t[i].text) != 0 && is_free_call(t, i)) {
      emit(f, t[i], "wall-clock",
           t[i].text +
               "() reads the wall clock (or blocks on it); simulations "
               "must be a pure function of their seed and SimTime",
           &out);
    }
  }
}

// ---- unseeded-rng ---------------------------------------------------------

/// True if identifier `name` is called or brace/paren-initialized with at
/// least one argument anywhere else in the file -- the constructor-
/// initializer-list escape hatch for member engine declarations.
bool seeded_elsewhere(const std::vector<Token>& t, const std::string& name,
                      std::size_t decl_index) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (i == decl_index) continue;
    if (!t[i].is_ident || t[i].text != name) continue;
    const std::string& open = t[i + 1].text;
    if ((open == "(" && t[i + 2].text != ")") ||
        (open == "{" && t[i + 2].text != "}")) {
      return true;
    }
  }
  return false;
}

void check_unseeded_rng(const RuleInput& in, std::vector<Diagnostic>& out) {
  static const std::set<std::string> kEngines = {
      "mt19937",      "mt19937_64", "default_random_engine",
      "minstd_rand",  "minstd_rand0",
      "ranlux24",     "ranlux48",   "ranlux24_base",
      "ranlux48_base", "knuth_b",
  };
  const SourceFile& f = in.file;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident) continue;
    const std::string& s = t[i].text;
    if (s == "random_device") {
      emit(f, t[i], "unseeded-rng",
           "std::random_device is nondeterministic; derive seeds from the "
           "scenario seed (exp::task_seed) instead",
           &out);
      continue;
    }
    if ((s == "rand" || s == "srand" || s == "random_shuffle") &&
        is_free_call(t, i)) {
      emit(f, t[i], "unseeded-rng",
           s + "() uses hidden global state; use pscrub::Rng seeded from "
               "exp::task_seed",
           &out);
      continue;
    }
    if (kEngines.count(s) == 0) continue;
    // Engine type name: require an explicit seed at the construction site.
    //   std::mt19937 g;          -> flagged (default_seed: shared, implicit)
    //   std::mt19937 g{} / g()   -> flagged
    //   std::mt19937{} / ()      -> flagged (temporary)
    //   std::mt19937 g(seed)     -> ok
    //   std::mt19937_64 engine_; -> ok iff engine_(...) appears elsewhere
    //                               (constructor initializer list)
    std::size_t j = i + 1;
    std::size_t name_index = t.size();
    if (j < t.size() && t[j].is_ident) {
      name_index = j;
      ++j;
    }
    if (j >= t.size()) continue;
    const bool empty_paren =
        t[j].text == "(" && j + 1 < t.size() && t[j + 1].text == ")";
    const bool empty_brace =
        t[j].text == "{" && j + 1 < t.size() && t[j + 1].text == "}";
    const bool bare_member = name_index < t.size() && t[j].text == ";";
    if (!(empty_paren || empty_brace || bare_member)) continue;
    if (bare_member &&
        seeded_elsewhere(t, t[name_index].text, name_index)) {
      continue;
    }
    emit(f, t[i], "unseeded-rng",
         "std::" + s +
             " constructed without an explicit seed; every engine must be "
             "seeded from the scenario seed (exp::task_seed) so runs are "
             "reproducible",
         &out);
  }
}

// ---- unordered-container --------------------------------------------------

void check_unordered(const RuleInput& in, std::vector<Diagnostic>& out) {
  static const std::set<std::string> kUnordered = {
      "unordered_map",      "unordered_set",     "unordered_multimap",
      "unordered_multiset", "unordered_flat_map", "unordered_flat_set",
      "unordered_node_map", "unordered_node_set",
  };
  for (const Token& tok : in.file.tokens) {
    if (!tok.is_ident || kUnordered.count(tok.text) == 0) continue;
    emit(in.file, tok, "unordered-container",
         "std::" + tok.text +
             " iterates in hash-table-layout order, which varies across "
             "libstdc++ versions and silently breaks bit-identity when it "
             "feeds output or registry merges; use std::map/std::set (or "
             "justify with an allow marker)",
         &out);
  }
}

// ---- float-accum ----------------------------------------------------------

void check_float_accum(const RuleInput& in, std::vector<Diagnostic>& out) {
  const SourceFile& f = in.file;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident) continue;
    const std::string& s = t[i].text;
    // std::atomic<float/double>: concurrent fetch_add order is
    // scheduling-dependent and float addition does not commute.
    if (s == "atomic" && i + 2 < t.size() && t[i + 1].text == "<") {
      const std::string& a = t[i + 2].text;
      const bool long_double = a == "long" && i + 3 < t.size() &&
                               t[i + 3].text == "double";
      if (a == "float" || a == "double" || long_double) {
        emit(f, t[i], "float-accum",
             "std::atomic<floating-point> accumulates in scheduling order; "
             "accumulate per task and reduce in task-index order instead "
             "(exp::sweep's merge contract)",
             &out);
      }
      continue;
    }
    // std::execution::par / par_unseq / unseq, and std::reduce /
    // std::transform_reduce (unordered even without a policy).
    if ((s == "par" || s == "par_unseq" || s == "unseq") && i >= 2 &&
        t[i - 1].text == "::" && t[i - 2].text == "execution") {
      emit(f, t[i], "float-accum",
           "std::execution::" + s +
               " reductions are unordered; results depend on the thread "
               "schedule -- fan out with exp::sweep and merge in task "
               "order",
           &out);
      continue;
    }
    if ((s == "reduce" || s == "transform_reduce") && i >= 2 &&
        t[i - 1].text == "::" && t[i - 2].text == "std") {
      emit(f, t[i], "float-accum",
           "std::" + s +
               " may reassociate floating-point sums (unspecified order "
               "even without an execution policy); use std::accumulate or "
               "an explicit index-ordered loop",
           &out);
    }
  }
}

// ---- exception-swallow ----------------------------------------------------

void check_exception_swallow(const RuleInput& in,
                             std::vector<Diagnostic>& out) {
  static const std::set<std::string> kHandles = {
      "throw",     "rethrow_exception", "current_exception", "terminate",
      "abort",     "exit",              "quick_exit",        "_Exit",
      "FAIL",      "ADD_FAILURE",       "GTEST_FAIL",
  };
  const SourceFile& f = in.file;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (!(t[i].text == "catch" && t[i + 1].text == "(" &&
          t[i + 2].text == "..." && t[i + 3].text == ")" &&
          t[i + 4].text == "{")) {
      continue;
    }
    // Scan the brace-balanced handler body for any acceptable disposition.
    int depth = 1;
    bool handled = false;
    std::size_t j = i + 5;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "{") ++depth;
      else if (t[j].text == "}") --depth;
      else if (t[j].is_ident && kHandles.count(t[j].text) != 0) handled = true;
    }
    if (!handled) {
      emit(f, t[i], "exception-swallow",
           "catch (...) swallows the exception; an event callback that "
           "fails must rethrow, capture (std::current_exception) or "
           "terminate so the sweep's deterministic lowest-index rethrow "
           "contract holds (DESIGN.md sections 7 & 10)",
           &out);
    }
    i = j;
  }
}

// ---- sim-time-overflow ----------------------------------------------------

const std::set<std::string>& sim_time_units() {
  static const std::set<std::string> kUnits = {
      "kNanosecond", "kMicrosecond", "kMillisecond", "kSecond",
      "kMinute",     "kHour",        "kDay",         "kWeek",
  };
  return kUnits;
}

struct IntLiteral {
  bool ok = false;        // parsed as an integer literal
  bool suffixed = false;  // L/LL/U suffix present (already wide/unsigned)
  unsigned long long value = 0;
};

/// Hand-rolled integer-literal parser (decimal/hex/octal/binary). Manual
/// so the linter passes its own env-hygiene rule, which bans the strto*
/// family everywhere outside the env shims.
IntLiteral parse_int_literal(const std::string& s) {
  IntLiteral lit;
  if (s.empty() || s[0] < '0' || s[0] > '9') return lit;
  int base = 10;
  std::size_t i = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    i = 2;
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    i = 2;
  } else if (s.size() > 1 && s[0] == '0') {
    base = 8;
    i = 1;
  }
  bool any_digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else if (c >= 'A' && c <= 'F') digit = 10 + (c - 'A');
    if (digit >= 0 && digit < base) {
      any_digit = true;
      if (lit.value > (~0ULL - static_cast<unsigned>(digit)) /
                          static_cast<unsigned>(base)) {
        return IntLiteral{};  // would not fit: not a literal rules care about
      }
      lit.value = lit.value * static_cast<unsigned>(base) +
                  static_cast<unsigned>(digit);
      continue;
    }
    break;  // suffix starts here
  }
  if (!any_digit) return IntLiteral{};
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c == 'l' || c == 'L' || c == 'u' || c == 'U' || c == 'z' ||
        c == 'Z') {
      lit.suffixed = true;
      continue;
    }
    return IntLiteral{};  // '.'/'e'/garbage: not an integer literal
  }
  lit.ok = true;
  return lit;
}

constexpr unsigned long long kInt32Max = 2147483647ULL;

void check_sim_time_overflow(const RuleInput& in,
                             std::vector<Diagnostic>& out) {
  const SourceFile& f = in.file;
  const auto& t = f.tokens;

  // Sim-time-ish identifiers in this file: the unit constants, anything
  // declared with a `SimTime ident` pattern (parameters, locals, members,
  // even function names -- all denote ns-typed values), and the `_ns`
  // naming convention.
  std::set<std::string> declared;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "SimTime" && t[i + 1].is_ident) {
      declared.insert(t[i + 1].text);
    }
  }
  auto simish = [&](const std::string& name) {
    if (sim_time_units().count(name) != 0) return true;
    if (declared.count(name) != 0) return true;
    return name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
  };

  // (a) ns * ns products: both multiplicands denote sim-time values.
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].text != "*") continue;
    if (!t[i - 1].is_ident || !t[i + 1].is_ident) continue;
    if (!simish(t[i - 1].text) || !simish(t[i + 1].text)) continue;
    // `x / kSecond * kMinute`: the left operand was already divided down
    // to a scalar, so the product is ns * scalar -- fine.
    if (i >= 2 && t[i - 2].text == "/") continue;
    emit(f, t[i - 1], "sim-time-overflow",
         "'" + t[i - 1].text + " * " + t[i + 1].text +
             "' multiplies two sim-time values: the ns*ns product "
             "overflows int64 within ~9.2 wall-clock seconds squared; "
             "divide one operand down to a scalar first",
         &out);
  }

  // (b) narrowing casts applied to sim-time values.
  static const std::set<std::string> kNarrow = {
      "int",     "short",    "unsigned", "char",    "float",
      "int8_t",  "int16_t",  "int32_t",  "uint8_t", "uint16_t",
      "uint32_t",
  };
  static const std::set<std::string> kWide = {
      "long",   "int64_t", "uint64_t", "size_t",   "ptrdiff_t",
      "double", "SimTime", "intmax_t", "uintmax_t", "auto",
  };
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text != "static_cast" || t[i + 1].text != "<") continue;
    bool narrow = false;
    bool wide = false;
    std::size_t j = i + 2;
    int depth = 1;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "<") ++depth;
      else if (t[j].text == ">") --depth;
      else if (t[j].is_ident) {
        if (kNarrow.count(t[j].text) != 0) narrow = true;
        if (kWide.count(t[j].text) != 0) wide = true;
      }
    }
    if (!narrow || wide) continue;
    if (j >= t.size() || t[j].text != "(") continue;
    int pdepth = 0;
    for (std::size_t k = j; k < t.size(); ++k) {
      if (t[k].text == "(") ++pdepth;
      else if (t[k].text == ")") {
        if (--pdepth == 0) break;
      } else if (t[k].is_ident && simish(t[k].text)) {
        emit(f, t[i], "sim-time-overflow",
             "narrowing cast on sim-time value '" + t[k].text +
                 "': ns counts exceed 32 bits after ~2.1 s of sim time; "
                 "keep sim-time arithmetic in std::int64_t",
             &out);
        break;
      }
    }
  }

  // (c) int-literal multiplication chains feeding sim-time: unsuffixed
  // literals multiply at `int` rank, so `5 * 60 * 1000 * 1000 * 1000`
  // overflows before it ever widens into the SimTime it initializes.
  std::size_t i = 0;
  while (i + 2 < t.size()) {
    const bool primary = t[i].is_ident || (!t[i].text.empty() &&
                                           t[i].text[0] >= '0' &&
                                           t[i].text[0] <= '9');
    if (!primary || t[i + 1].text != "*") {
      ++i;
      continue;
    }
    std::vector<std::size_t> elems{i};
    std::size_t k = i;
    while (k + 2 < t.size() && t[k + 1].text == "*" &&
           (t[k + 2].is_ident ||
            (!t[k + 2].text.empty() && t[k + 2].text[0] >= '0' &&
             t[k + 2].text[0] <= '9'))) {
      elems.push_back(k + 2);
      k += 2;
    }
    bool relevant = false;
    for (std::size_t e : elems) {
      if (t[e].is_ident && simish(t[e].text)) relevant = true;
    }
    // `deadline = 5 * 60 * ...` where deadline was declared SimTime.
    if (!relevant && i >= 2 && t[i - 1].text == "=" && t[i - 2].is_ident &&
        simish(t[i - 2].text)) {
      relevant = true;
    }
    if (relevant) {
      bool wide = false;
      unsigned long long acc = 1;
      for (std::size_t e : elems) {
        if (t[e].is_ident) {
          wide = true;  // identifiers: assume int64 (units/SimTime are)
          continue;
        }
        const IntLiteral lit = parse_int_literal(t[e].text);
        if (!lit.ok || lit.suffixed || lit.value > kInt32Max) {
          wide = true;  // suffixed or already long-rank literal widens
          continue;
        }
        if (wide) continue;
        acc *= lit.value;
        if (acc > kInt32Max) {
          emit(f, t[e], "sim-time-overflow",
               "integer-literal product reaches " + std::to_string(acc) +
                   " at `int` rank before widening into SimTime; suffix "
                   "an earlier literal LL or lead with a SimTime unit "
                   "constant",
               &out);
          break;
        }
      }
    }
    i = elems.back() + 1;
  }
}

// ---- checkpoint-integer-only ----------------------------------------------

void check_checkpoint_integer_only(const RuleInput& in,
                                   std::vector<Diagnostic>& out) {
  static const std::set<std::string> kFloatIdents = {
      "float",  "double", "stof",   "stod",   "stold",
      "strtof", "strtod", "strtold", "atof",
  };
  const auto& t = in.file.tokens;
  for (const auto& [key, via] : in.ctx.checkpoint_via) {
    if (key.first != in.file_index) continue;
    const FunctionRecord& fn = in.summary.functions[key.second];
    for (std::size_t i = fn.body_begin_tok;
         i < fn.body_end_tok && i < t.size(); ++i) {
      const std::string& s = t[i].text;
      bool floaty = t[i].is_ident && kFloatIdents.count(s) != 0;
      if (!floaty && !s.empty() && s[0] >= '0' && s[0] <= '9') {
        const bool hex = s.size() > 1 && s[0] == '0' &&
                         (s[1] == 'x' || s[1] == 'X');
        floaty = s.find('.') != std::string::npos ||
                 (!hex && (s.find('e') != std::string::npos ||
                           s.find('E') != std::string::npos));
      }
      if (!floaty) continue;
      const std::string how =
          via.empty() ? "a checkpoint codec seed"
                      : "reached from '" + via + "'";
      emit(in.file, t[i], "checkpoint-integer-only",
           "'" + fn.qname + "' is on the checkpoint read/write path (" +
               how +
               ") but touches floating point ('" + s +
               "'); resume-exactness requires integer-only checkpoint "
               "state (DESIGN.md section 10)",
           &out);
      break;  // one diagnostic per function keeps the sweep reviewable
    }
  }
}

// ---- env-hygiene ----------------------------------------------------------

void check_env_hygiene(const RuleInput& in, std::vector<Diagnostic>& out) {
  static const std::set<std::string> kBanned = {
      "getenv",  "secure_getenv", "setenv",   "unsetenv", "putenv",
      "strtol",  "strtoll",       "strtoul",  "strtoull", "strtoimax",
      "strtoumax", "strtof",      "strtod",   "strtold",
      "atoi",    "atol",          "atoll",    "atof",
      "stoi",    "stol",          "stoll",    "stoul",    "stoull",
      "stof",    "stod",          "stold",
  };
  const auto& t = in.file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident || kBanned.count(t[i].text) == 0) continue;
    if (!is_free_call(t, i)) continue;
    const int fn = enclosing_function(in.summary, i);
    if (fn >= 0 &&
        in.ctx.env_shims.count({in.file_index, fn}) != 0) {
      continue;  // inside a designated strict-parsing shim
    }
    emit(in.file, t[i], "env-hygiene",
         t[i].text +
             "() bypasses the strict parsing layer; route the value "
             "through obs::parse_positive_env / parse_positive_double_env "
             "(or mark the enclosing function `pscrub-lint: env-shim` "
             "with a justification)",
         &out);
  }
}

// ---- mutable-global-in-sweep ----------------------------------------------

void check_mutable_global_in_sweep(const RuleInput& in,
                                   std::vector<Diagnostic>& out) {
  if (in.ctx.mutable_globals.empty()) return;
  const auto& t = in.file.tokens;
  for (const auto& [key, via] : in.ctx.sweep_via) {
    if (key.first != in.file_index) continue;
    const FunctionRecord& fn = in.summary.functions[key.second];
    std::set<std::string> reported;
    for (std::size_t i = fn.body_begin_tok;
         i < fn.body_end_tok && i < t.size(); ++i) {
      if (!t[i].is_ident) continue;
      auto g = in.ctx.mutable_globals.find(t[i].text);
      if (g == in.ctx.mutable_globals.end()) continue;
      if (!reported.insert(t[i].text).second) continue;
      const std::string how =
          via.empty() ? "a sweep-worker seed"
                      : "reached from '" + via + "'";
      emit(in.file, t[i], "mutable-global-in-sweep",
           "'" + fn.qname + "' (" + how +
               ") references mutable namespace-scope state '" + t[i].text +
               "' (defined at " + g->second +
               "); sweep workers run concurrently, so shared mutable "
               "state breaks the bit-identical-at-any-worker-count "
               "contract",
           &out);
    }
  }
}

}  // namespace

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> kRules = {
      {"wall-clock", "determinism",
       "bans wall-clock reads (std::chrono clocks, time(), sleeps) outside "
       "an allowlisted timing shim",
       check_wall_clock},
      {"unseeded-rng", "determinism",
       "bans rand()/std::random_device and RNG engines constructed without "
       "an explicit seed",
       check_unseeded_rng},
      {"unordered-container", "determinism",
       "bans std::unordered_* containers whose iteration order depends on "
       "hash-table layout",
       check_unordered},
      {"float-accum", "determinism",
       "bans scheduling-ordered float accumulation (atomic floats, "
       "std::execution policies, std::reduce)",
       check_float_accum},
      {"exception-swallow", "determinism",
       "requires catch (...) to rethrow, capture or terminate",
       check_exception_swallow},
      {"sim-time-overflow", "sim-time",
       "flags ns*ns products, int-literal chains that overflow before "
       "widening into SimTime, and narrowing casts on sim-time values",
       check_sim_time_overflow},
      {"checkpoint-integer-only", "checkpoint",
       "bans floating point anywhere on the checkpoint read/write call "
       "paths (the PR-9 resume-exactness contract)",
       check_checkpoint_integer_only},
      {"env-hygiene", "hygiene",
       "bans getenv/strto*/ato*/sto* outside the strict "
       "obs::parse_positive_env shim layer",
       check_env_hygiene},
      {"mutable-global-in-sweep", "determinism",
       "flags mutable namespace-scope state referenced from sweep-worker "
       "call paths",
       check_mutable_global_in_sweep},
  };
  return kRules;
}

void run_rules(const RuleInput& in, const std::set<std::string>& enabled,
               std::vector<Diagnostic>* out) {
  std::vector<Diagnostic> raw;
  for (const Rule& rule : all_rules()) {
    if (enabled.count(rule.id) == 0) continue;
    rule.check(in, raw);
  }
  std::stable_sort(raw.begin(), raw.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     return a.rule < b.rule;
                   });
  for (Diagnostic& d : raw) {
    if (!in.file.allowed(d.rule, d.line)) out->push_back(std::move(d));
  }
}

}  // namespace pscrub::lint
