// The incremental diagnostics cache: a small line-oriented text file
// mapping each analyzed path to the pass-2 diagnostics produced for it,
// keyed on (content hash, ruleset hash, context digest) plus the tool
// version in the header. Any mismatch -- file edited, rule set changed,
// any cross-file closure/global change, tool upgraded -- misses and the
// file is re-analyzed; a corrupt or unreadable cache degrades to empty.
//
// Cached diagnostics are pre-baseline and pre-output-format, so the same
// cache serves text, JSON and SARIF runs and baseline edits never force
// re-analysis.
#include "lint.h"

#include <fstream>
#include <sstream>

namespace pscrub::lint {
namespace {

constexpr const char* kMagic = "pscrub-lint-cache 1";

}  // namespace

void DiagnosticCache::load(const std::string& path) {
  entries_.clear();
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  if (!std::getline(in, line) ||
      line != std::string(kMagic) + " " + kLintVersion) {
    return;  // other version or garbage: start cold
  }
  std::map<std::string, Entry> parsed;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    Entry entry;
    std::size_t count = 0;
    std::string file_path;
    if (!(fields >> tag) || tag != "f") return;
    if (!(fields >> std::hex >> entry.content_hash >> entry.ruleset_hash >>
          entry.ctx_digest >> std::dec >> count) ||
        !(fields >> file_path) || file_path.empty()) {
      return;
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (!std::getline(in, line)) return;
      std::istringstream dfields(line);
      Diagnostic d;
      d.path = file_path;
      if (!(dfields >> tag) || tag != "d") return;
      if (!(dfields >> d.line >> d.col >> d.rule)) return;
      dfields.get();  // the single separating space
      std::getline(dfields, d.message);
      entry.diags.push_back(std::move(d));
    }
    parsed[file_path] = std::move(entry);
  }
  entries_ = std::move(parsed);
}

bool DiagnosticCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << kMagic << " " << kLintVersion << "\n";
  for (const auto& [file_path, entry] : entries_) {
    out << "f " << std::hex << entry.content_hash << " "
        << entry.ruleset_hash << " " << entry.ctx_digest << std::dec << " "
        << entry.diags.size() << " " << file_path << "\n";
    for (const Diagnostic& d : entry.diags) {
      out << "d " << d.line << " " << d.col << " " << d.rule << " "
          << d.message << "\n";
    }
  }
  return out.good();
}

const std::vector<Diagnostic>* DiagnosticCache::lookup(
    const std::string& file_path, std::uint64_t content_hash,
    std::uint64_t ruleset_hash, std::uint64_t ctx_digest) const {
  auto it = entries_.find(file_path);
  if (it == entries_.end()) return nullptr;
  const Entry& e = it->second;
  if (e.content_hash != content_hash || e.ruleset_hash != ruleset_hash ||
      e.ctx_digest != ctx_digest) {
    return nullptr;
  }
  return &e.diags;
}

void DiagnosticCache::store(const std::string& file_path,
                            std::uint64_t content_hash,
                            std::uint64_t ruleset_hash,
                            std::uint64_t ctx_digest,
                            std::vector<Diagnostic> diags) {
  entries_[file_path] =
      Entry{content_hash, ruleset_hash, ctx_digest, std::move(diags)};
}

}  // namespace pscrub::lint
