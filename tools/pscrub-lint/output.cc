// Output writers: text, JSON, and SARIF 2.1.0.
//
// Everything here is deterministic by construction: the diagnostic list
// arrives pre-sorted (path, then line/col/rule), rule metadata is emitted
// in all_rules() order, and no timestamps or absolute paths are written.
// The CI lint job diffs a cold run against a cache-warm run byte for
// byte, so any nondeterminism added here fails the build.
#include "lint.h"

#include <sstream>

namespace pscrub::lint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_text(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << d.path << ":" << d.line << ":" << d.col << ": [" << d.rule << "] "
        << d.message << "\n";
  }
  return out.str();
}

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "{\n"
      << "  \"tool\": \"pscrub-lint\",\n"
      << "  \"version\": \"" << kLintVersion << "\",\n"
      << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diags) {
    out << (first ? "" : ",") << "\n"
        << "    {\"path\": \"" << json_escape(d.path) << "\", \"line\": "
        << d.line << ", \"col\": " << d.col << ", \"rule\": \""
        << json_escape(d.rule) << "\", \"message\": \""
        << json_escape(d.message) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

std::string render_sarif(const std::vector<Diagnostic>& diags,
                         const std::set<std::string>& enabled) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"pscrub-lint\",\n"
      << "          \"version\": \"" << kLintVersion << "\",\n"
      << "          \"informationUri\": "
         "\"https://github.com/pscrub/pscrub/blob/main/DESIGN.md\",\n"
      << "          \"rules\": [";
  // ruleId -> index into the rules array, for result.ruleIndex.
  std::map<std::string, int> rule_index;
  bool first = true;
  for (const Rule& rule : all_rules()) {
    if (enabled.count(rule.id) == 0) continue;
    rule_index.emplace(rule.id, static_cast<int>(rule_index.size()));
    out << (first ? "" : ",") << "\n"
        << "            {\n"
        << "              \"id\": \"" << rule.id << "\",\n"
        << "              \"shortDescription\": {\"text\": \""
        << json_escape(rule.summary) << "\"},\n"
        << "              \"properties\": {\"family\": \"" << rule.family
        << "\"}\n"
        << "            }";
    first = false;
  }
  out << (first ? "" : "\n          ") << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  first = true;
  for (const Diagnostic& d : diags) {
    out << (first ? "" : ",") << "\n"
        << "        {\n"
        << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n";
    auto it = rule_index.find(d.rule);
    if (it != rule_index.end()) {
      out << "          \"ruleIndex\": " << it->second << ",\n";
    }
    out << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(d.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(d.path) << "\", \"uriBaseId\": \"SRCROOT\"},\n"
        << "                \"region\": {\"startLine\": " << d.line
        << ", \"startColumn\": " << d.col << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
    first = false;
  }
  out << (first ? "" : "\n      ") << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace pscrub::lint
