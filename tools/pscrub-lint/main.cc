// pscrub-lint driver: argument parsing, deterministic file walking, and
// diagnostic reporting.
//
//   pscrub-lint [options] <file-or-dir>...
//     --rules=a,b       run only the named rules (default: all)
//     --list-rules      print rule ids + summaries and exit
//     --exclude=SUBSTR  skip walked files whose path contains SUBSTR
//                       (repeatable; "lint_fixtures" is always excluded
//                       from directory walks -- those files violate on
//                       purpose. Explicitly named files are never skipped.)
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using pscrub::lint::Diagnostic;
using pscrub::lint::SourceFile;

namespace {

bool lintable_extension(const fs::path& p) {
  static const std::set<std::string> kExts = {".h", ".hpp", ".hh", ".cc",
                                              ".cpp", ".cxx"};
  return kExts.count(p.extension().string()) != 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rules=a,b] [--list-rules] [--exclude=SUBSTR]... "
               "<file-or-dir>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> enabled;
  for (const auto& rule : pscrub::lint::all_rules()) enabled.insert(rule.id);

  std::vector<std::string> excludes = {"lint_fixtures"};
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : pscrub::lint::all_rules()) {
        std::printf("%-20s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg.rfind("--rules=", 0) == 0) {
      enabled.clear();
      std::string id;
      for (char c : arg.substr(8)) {
        if (c == ',') {
          if (!id.empty()) enabled.insert(id);
          id.clear();
        } else {
          id.push_back(c);
        }
      }
      if (!id.empty()) enabled.insert(id);
      for (const std::string& want : enabled) {
        const auto& rules = pscrub::lint::all_rules();
        const bool known =
            std::any_of(rules.begin(), rules.end(),
                        [&](const auto& r) { return want == r.id; });
        if (!known) {
          std::fprintf(stderr, "pscrub-lint: unknown rule '%s'\n",
                       want.c_str());
          return 2;
        }
      }
      continue;
    }
    if (arg.rfind("--exclude=", 0) == 0) {
      excludes.push_back(arg.substr(10));
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return usage(argv[0]);
    roots.push_back(arg);
  }
  if (roots.empty()) return usage(argv[0]);

  // Collect the file set up front and sort it so diagnostics come out in a
  // stable order regardless of directory-iteration order.
  std::set<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file() || !lintable_extension(it->path())) {
          continue;
        }
        const std::string p = it->path().generic_string();
        const bool skip = std::any_of(
            excludes.begin(), excludes.end(),
            [&](const std::string& e) { return p.find(e) != std::string::npos; });
        if (!skip) files.insert(p);
      }
      if (ec) {
        std::fprintf(stderr, "pscrub-lint: error walking %s: %s\n",
                     root.c_str(), ec.message().c_str());
        return 2;
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.insert(fs::path(root).generic_string());
    } else {
      std::fprintf(stderr, "pscrub-lint: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
  }

  std::size_t diag_count = 0;
  for (const std::string& path : files) {
    SourceFile file;
    std::string error;
    if (!file.load(path, &error)) {
      std::fprintf(stderr, "pscrub-lint: %s\n", error.c_str());
      return 2;
    }
    std::vector<Diagnostic> diags;
    pscrub::lint::run_rules(file, enabled, &diags);
    for (const Diagnostic& d : diags) {
      std::printf("%s:%d:%d: [%s] %s\n", d.path.c_str(), d.line, d.col,
                  d.rule.c_str(), d.message.c_str());
    }
    diag_count += diags.size();
  }

  std::fprintf(stderr, "pscrub-lint: %zu diagnostic%s in %zu file%s\n",
               diag_count, diag_count == 1 ? "" : "s", files.size(),
               files.size() == 1 ? "" : "s");
  return diag_count == 0 ? 0 : 1;
}
