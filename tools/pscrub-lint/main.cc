// pscrub-lint driver: argument parsing, deterministic file walking, the
// two-pass analysis (index, then rules), incremental caching, baseline
// filtering, and output rendering.
//
//   pscrub-lint [options] <file-or-dir>...
//     --rules=a,b            run only the named rules, or all-but with a
//                            leading '-' (--rules=-float-accum); positive
//                            and negative entries cannot be mixed
//     --list-rules           print rule id, family and summary, then exit
//     --exclude=SUBSTR       skip any path containing SUBSTR *before it is
//                            read* (repeatable; applies to named files and
//                            walked ones alike). Directory walks also
//                            always exclude "lint_fixtures" -- those files
//                            violate on purpose -- but naming a fixture
//                            explicitly still lints it.
//     --format=text|json|sarif   output format (default text)
//     --output=FILE          write the report to FILE instead of stdout
//     --baseline=FILE        suppress diagnostics matching FILE's entries
//     --write-baseline=FILE  write the current diagnostics as a baseline
//                            and exit 0 (the no-flag-day escape hatch)
//     --cache=FILE           reuse/update the incremental diagnostics
//                            cache at FILE
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using pscrub::lint::AnalysisContext;
using pscrub::lint::Diagnostic;
using pscrub::lint::DiagnosticCache;
using pscrub::lint::FileSummary;
using pscrub::lint::SourceFile;

namespace {

bool lintable_extension(const fs::path& p) {
  static const std::set<std::string> kExts = {".h", ".hpp", ".hh", ".cc",
                                              ".cpp", ".cxx"};
  return kExts.count(p.extension().string()) != 0;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--rules=[-]a,b] [--list-rules] [--exclude=SUBSTR]...\n"
      "       [--format=text|json|sarif] [--output=FILE]\n"
      "       [--baseline=FILE] [--write-baseline=FILE] [--cache=FILE]\n"
      "       <file-or-dir>...\n",
      argv0);
  return 2;
}

bool known_rule(const std::string& id) {
  const auto& rules = pscrub::lint::all_rules();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const auto& r) { return id == r.id; });
}

/// Splits a comma list; returns false (usage error) on an unknown id or a
/// mix of positive and negated entries.
bool parse_rules_arg(const std::string& spec, std::set<std::string>* enabled) {
  std::vector<std::string> entries;
  std::string cur;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!cur.empty()) entries.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (entries.empty()) return false;
  const bool negated = entries.front()[0] == '-';
  enabled->clear();
  if (negated) {
    for (const auto& rule : pscrub::lint::all_rules()) {
      enabled->insert(rule.id);
    }
  }
  for (std::string entry : entries) {
    if ((entry[0] == '-') != negated) {
      std::fprintf(stderr,
                   "pscrub-lint: --rules cannot mix positive and negated "
                   "entries\n");
      return false;
    }
    if (negated) entry.erase(0, 1);
    if (!known_rule(entry)) {
      std::fprintf(stderr, "pscrub-lint: unknown rule '%s'\n", entry.c_str());
      return false;
    }
    if (negated) {
      enabled->erase(entry);
    } else {
      enabled->insert(entry);
    }
  }
  return true;
}

/// The baseline key: the textual diagnostic line minus the message, which
/// is stable across message rewording.
std::string baseline_key(const Diagnostic& d) {
  std::ostringstream key;
  key << d.path << ":" << d.line << ":" << d.col << ": [" << d.rule << "]";
  return key.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> enabled;
  for (const auto& rule : pscrub::lint::all_rules()) enabled.insert(rule.id);

  std::vector<std::string> user_excludes;
  std::vector<std::string> roots;
  std::string format = "text";
  std::string output_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string cache_path;
  bool dump_index = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : pscrub::lint::all_rules()) {
        std::printf("%-24s %-12s %s\n", rule.id, rule.family, rule.summary);
      }
      return 0;
    }
    if (arg.rfind("--rules=", 0) == 0) {
      if (!parse_rules_arg(arg.substr(8), &enabled)) return 2;
      continue;
    }
    if (arg.rfind("--exclude=", 0) == 0) {
      user_excludes.push_back(arg.substr(10));
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "pscrub-lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (arg.rfind("--output=", 0) == 0) {
      output_path = arg.substr(9);
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      continue;
    }
    if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
      continue;
    }
    if (arg.rfind("--cache=", 0) == 0) {
      cache_path = arg.substr(8);
      continue;
    }
    if (arg == "--dump-index") {
      dump_index = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return usage(argv[0]);
    roots.push_back(arg);
  }
  if (roots.empty()) return usage(argv[0]);

  auto user_excluded = [&](const std::string& p) {
    return std::any_of(
        user_excludes.begin(), user_excludes.end(),
        [&](const std::string& e) { return p.find(e) != std::string::npos; });
  };

  // Collect the file set up front and sort it so diagnostics come out in a
  // stable order regardless of directory-iteration order. Exclusion is
  // applied to the *path*, before any stat or read, so excluded files cost
  // no I/O at all.
  std::set<std::string> files;
  for (const std::string& root : roots) {
    if (user_excluded(root)) continue;
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        const std::string p = it->path().generic_string();
        // Path-based skips come first: no extension/stat work for them.
        if (p.find("lint_fixtures") != std::string::npos ||
            user_excluded(p)) {
          continue;
        }
        if (!it->is_regular_file() || !lintable_extension(it->path())) {
          continue;
        }
        files.insert(p);
      }
      if (ec) {
        std::fprintf(stderr, "pscrub-lint: error walking %s: %s\n",
                     root.c_str(), ec.message().c_str());
        return 2;
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.insert(fs::path(root).generic_string());
    } else {
      std::fprintf(stderr, "pscrub-lint: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
  }

  // Load + preprocess every file (pass 0), then index the whole set
  // (pass 1). The index is always rebuilt -- it is cheap relative to the
  // rules and any file can change another file's closures.
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& path : files) {
    SourceFile file;
    std::string error;
    if (!file.load(path, &error)) {
      std::fprintf(stderr, "pscrub-lint: %s\n", error.c_str());
      return 2;
    }
    sources.push_back(std::move(file));
  }
  std::vector<FileSummary> summaries;
  summaries.reserve(sources.size());
  for (const SourceFile& file : sources) {
    summaries.push_back(pscrub::lint::extract_summary(file));
  }
  const AnalysisContext ctx = pscrub::lint::build_context(std::move(summaries));

  if (dump_index) {
    // Pass-1 debugging view: what the index extracted and which functions
    // landed on which closure. Not part of the stable output surface.
    for (int fi = 0; fi < static_cast<int>(ctx.files.size()); ++fi) {
      const pscrub::lint::FileSummary& fs = ctx.files[fi];
      std::printf("%s\n", fs.path.c_str());
      for (int ni = 0; ni < static_cast<int>(fs.functions.size()); ++ni) {
        const pscrub::lint::FunctionRecord& fn = fs.functions[ni];
        std::string marks;
        if (ctx.checkpoint_via.count({fi, ni}) != 0) marks += " [checkpoint]";
        if (ctx.sweep_via.count({fi, ni}) != 0) marks += " [sweep]";
        if (ctx.env_shims.count({fi, ni}) != 0) marks += " [env-shim]";
        std::printf("  fn %s lines %d-%d%s\n", fn.qname.c_str(),
                    fn.name_line, fn.body_end_line, marks.c_str());
      }
      for (const pscrub::lint::GlobalRecord& g : fs.globals) {
        std::printf("  global %s line %d\n", g.name.c_str(), g.line);
      }
    }
    return 0;
  }

  std::uint64_t ruleset_hash =
      pscrub::lint::fnv1a(std::string("ruleset:") + pscrub::lint::kLintVersion);
  for (const std::string& id : enabled) {
    ruleset_hash = pscrub::lint::fnv1a(id + "\n", ruleset_hash);
  }

  DiagnosticCache cache;
  if (!cache_path.empty()) cache.load(cache_path);

  // Pass 2: per-file rules, served from the cache when nothing the file's
  // diagnostics depend on has changed.
  std::vector<Diagnostic> diags;
  std::size_t cache_hits = 0;
  for (int fi = 0; fi < static_cast<int>(sources.size()); ++fi) {
    const SourceFile& file = sources[fi];
    const std::vector<Diagnostic>* cached =
        cache_path.empty()
            ? nullptr
            : cache.lookup(file.path, file.content_hash, ruleset_hash,
                           ctx.digest);
    std::vector<Diagnostic> file_diags;
    if (cached != nullptr) {
      ++cache_hits;
      file_diags = *cached;
    } else {
      const pscrub::lint::RuleInput input{ctx, file, ctx.files[fi], fi};
      pscrub::lint::run_rules(input, enabled, &file_diags);
      // Suppressions that name no rule suppress nothing: surface them so
      // a typo'd marker cannot silently disarm itself.
      for (const auto& [line, id] : file.allow_ids) {
        if (known_rule(id)) continue;
        file_diags.push_back(Diagnostic{
            file.path, line, 1, "unknown-suppression",
            "allow(" + id +
                ") names no known rule (see --list-rules); the marker "
                "suppresses nothing"});
      }
      std::stable_sort(file_diags.begin(), file_diags.end(),
                       [](const Diagnostic& a, const Diagnostic& b) {
                         if (a.line != b.line) return a.line < b.line;
                         if (a.col != b.col) return a.col < b.col;
                         return a.rule < b.rule;
                       });
      if (!cache_path.empty()) {
        cache.store(file.path, file.content_hash, ruleset_hash, ctx.digest,
                    file_diags);
      }
    }
    diags.insert(diags.end(), file_diags.begin(), file_diags.end());
  }

  if (!cache_path.empty() && !cache.save(cache_path)) {
    std::fprintf(stderr, "pscrub-lint: cannot write cache %s\n",
                 cache_path.c_str());
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "pscrub-lint: cannot write baseline %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << "# pscrub-lint baseline (one `path:line:col: [rule]` per line)\n";
    for (const Diagnostic& d : diags) out << baseline_key(d) << "\n";
    std::fprintf(stderr, "pscrub-lint: wrote %zu baseline entr%s to %s\n",
                 diags.size(), diags.size() == 1 ? "y" : "ies",
                 write_baseline_path.c_str());
    return 0;
  }

  std::size_t suppressed = 0;
  std::size_t stale_baseline = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "pscrub-lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::set<std::string> baseline;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') baseline.insert(line);
    }
    std::vector<Diagnostic> kept;
    std::set<std::string> used;
    for (Diagnostic& d : diags) {
      const std::string key = baseline_key(d);
      if (baseline.count(key) != 0) {
        ++suppressed;
        used.insert(key);
      } else {
        kept.push_back(std::move(d));
      }
    }
    stale_baseline = baseline.size() - used.size();
    diags = std::move(kept);
  }

  std::string report;
  if (format == "text") {
    report = pscrub::lint::render_text(diags);
  } else if (format == "json") {
    report = pscrub::lint::render_json(diags);
  } else {
    report = pscrub::lint::render_sarif(diags, enabled);
  }
  if (output_path.empty()) {
    std::fwrite(report.data(), 1, report.size(), stdout);
  } else {
    std::ofstream out(output_path, std::ios::trunc | std::ios::binary);
    if (!out.write(report.data(),
                   static_cast<std::streamsize>(report.size()))) {
      std::fprintf(stderr, "pscrub-lint: cannot write %s\n",
                   output_path.c_str());
      return 2;
    }
  }

  std::fprintf(stderr,
               "pscrub-lint: %zu diagnostic%s in %zu file%s"
               " (%zu baseline-suppressed, %zu stale baseline entr%s,"
               " %zu cache hit%s)\n",
               diags.size(), diags.size() == 1 ? "" : "s", files.size(),
               files.size() == 1 ? "" : "s", suppressed, stale_baseline,
               stale_baseline == 1 ? "y" : "ies", cache_hits,
               cache_hits == 1 ? "" : "s");
  return diags.empty() ? 0 : 1;
}
