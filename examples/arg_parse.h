// Strict command-line number parsing shared by the examples.
//
// The examples used to lean on atoll/atof, which silently turn a typo'd
// argument ("1e5x", "ten") into 0 and let the run proceed with a
// nonsense configuration. These helpers consume the whole token or exit
// with a usage-style message, mirroring the obs::parse_positive_env
// contract for environment values.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pscrub::examples {

// pscrub-lint: env-shim -- this is the examples' strict argv parsing layer.
inline long long parse_ll(const char* text, const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (text[0] == '\0' || end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: expected an integer, got '%s'\n", what, text);
    std::exit(2);
  }
  return v;
}

// pscrub-lint: env-shim -- this is the examples' strict argv parsing layer.
inline double parse_double(const char* text, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (text[0] == '\0' || end == text || *end != '\0' || !std::isfinite(v)) {
    std::fprintf(stderr, "%s: expected a number, got '%s'\n", what, text);
    std::exit(2);
  }
  return v;
}

}  // namespace pscrub::examples
