// Policy autotune: the paper's Sec V-C/V-D procedure as a tool.
//
// Given a workload trace and an administrator's slowdown budget, finds the
// scrub request size and Waiting threshold that maximize scrub throughput,
// and compares the result against CFQ's fixed 10 ms / 64 KB behaviour.
//
//   ./policy_autotune [disk_label] [mean_slowdown_ms] [max_slowdown_ms]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "arg_parse.h"
#include "pscrub.h"

using namespace pscrub;

int main(int argc, char** argv) {
  obs::EnvSession obs_session;
  const std::string name = argc > 1 ? argv[1] : "HPc6t8d0";
  const double goal_ms =
      argc > 2 ? examples::parse_double(argv[2], "mean_slowdown_ms") : 1.0;
  const double max_ms =
      argc > 3 ? examples::parse_double(argv[3], "max_slowdown_ms") : 50.4;

  auto spec = trace::spec_by_name(name);
  if (!spec) {
    std::fprintf(stderr, "unknown disk label: %s\n", name.c_str());
    return 1;
  }
  const double scale =
      std::min(1.0, 1.2e6 / static_cast<double>(spec->target_requests));
  trace::SyntheticGenerator gen(*spec);
  const trace::Trace t = gen.generate_trace(scale);
  std::printf("tuning on %s: %zu requests, goal %.2f ms mean / %.1f ms max "
              "slowdown\n\n",
              name.c_str(), t.size(), goal_ms, max_ms);

  const disk::DiskProfile profile = disk::hitachi_ultrastar_15k450();
  core::OptimizerConfig oc;
  oc.foreground_service = core::make_foreground_service(profile);
  oc.scrub_service = core::make_scrub_service(profile);
  // The per-size searches fan out on exp::sweep's deterministic worker
  // pool; the recommendation is bit-identical for any worker count.
  oc.workers = 0;

  core::SlowdownGoal goal;
  goal.mean = from_seconds(goal_ms * 1e-3);
  goal.max = from_seconds(max_ms * 1e-3);
  const core::SizeThresholdChoice best = core::optimize(t, oc, goal);

  if (best.request_bytes == 0 || best.scrub_mb_s == 0.0) {
    std::printf("no feasible configuration meets this goal; relax the "
                "slowdown budget.\n");
    return 0;
  }
  std::printf("recommended scrubber configuration:\n");
  std::printf("  request size:    %lld KB\n",
              static_cast<long long>(best.request_bytes / 1024));
  std::printf("  wait threshold:  %s\n",
              format_duration(best.threshold).c_str());
  std::printf("  scrub rate:      %.2f MB/s "
              "(full 300 GB pass in %.1f hours)\n",
              best.scrub_mb_s, 300e3 / best.scrub_mb_s / 3600.0);
  std::printf("  achieved:        %.3f ms mean slowdown, %.4f collision "
              "rate\n\n",
              best.achieved_mean_slowdown_ms, best.collision_rate);

  // CFQ reference.
  exp::PolicySimScenario cfq;
  cfq.trace = &t;
  cfq.policy.kind = exp::PolicyKind::kWaiting;
  cfq.policy.threshold = 10 * kMillisecond;
  cfq.sizer = core::ScrubSizer::fixed(64 * 1024);
  const auto r = exp::run_policy_scenario(cfq);
  std::printf("CFQ (10 ms window, 64 KB requests) for comparison:\n");
  std::printf("  scrub rate:      %.2f MB/s\n", r.scrub_mb_s);
  std::printf("  mean slowdown:   %.3f ms\n", r.mean_slowdown_ms);
  if (r.scrub_mb_s > 0) {
    std::printf("\ntuned scrubber: %.1fx the throughput at %.2fx the "
                "slowdown\n",
                best.scrub_mb_s / r.scrub_mb_s,
                best.achieved_mean_slowdown_ms /
                    std::max(r.mean_slowdown_ms, 1e-9));
  }
  return 0;
}
