// Fleet study: a scrub-policy comparison at population scale.
//
// Runs the same member-disk population (utilization draws, LSE burst
// arrivals) under three scrub policies via the fleet layer and prints a
// deterministic table: error counts, fleet MLET, per-disk MLET and
// first-pass completion percentiles, and the mean foreground slowdown.
// Output is byte-identical for any shard count and any
// PSCRUB_SWEEP_WORKERS setting -- CI diffs 1-shard vs 4-shard runs.
//
//   ./fleet_study [disks] [shards]
//
// PSCRUB_TIMELINE=out.jsonl additionally exports the fleet's windowed
// injection/detection series and distribution digests (render with
// pscrub-report).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arg_parse.h"
#include "pscrub.h"

using namespace pscrub;

int main(int argc, char** argv) {
  obs::EnvSession obs_session;
  const std::int64_t disks =
      argc > 1 ? examples::parse_ll(argv[1], "disks") : 20'000;
  const int shards =
      argc > 2 ? static_cast<int>(examples::parse_ll(argv[2], "shards")) : 0;
  if (disks <= 0) {
    std::fprintf(stderr, "usage: %s [disks] [shards]\n", argv[0]);
    return 1;
  }

  // ~32 GB members keep the schedule arithmetic in the regime mlet_study
  // uses: at 128 regions a staggered region is 256 MB, matching the
  // bursts' spatial locality.
  exp::ScenarioConfig base;
  base.disk.capacity_bytes = 32LL << 30;
  base.scrubber.kind = exp::ScrubberKind::kWaiting;
  base.run_for = 90 * kDay;
  base.fleet.disks = disks;
  base.fleet.shards = shards;
  base.fleet.util_min = 0.2;
  base.fleet.util_max = 0.6;
  base.fault.enabled = true;
  base.fault.lse.burst_interarrival_mean = 10 * kDay;
  base.fault.lse.burst_span_bytes = 64LL << 20;

  // Pace every policy to a 24-hour idle-disk pass at its own request size
  // so the comparison isolates schedule shape, not scrub bandwidth.
  const double pass_hours = 24.0;
  auto paced = [&](std::int64_t request_bytes) {
    const std::int64_t total_sectors =
        disk::Geometry(base.disk.profile().capacity_bytes,
                       base.disk.profile().outer_spt,
                       base.disk.profile().inner_spt,
                       base.disk.profile().zones)
            .total_sectors();
    const std::int64_t request_sectors =
        disk::sectors_from_bytes(request_bytes);
    const std::int64_t steps =
        (total_sectors + request_sectors - 1) / request_sectors;
    return from_seconds(pass_hours * 3600.0 / static_cast<double>(steps));
  };

  struct Policy {
    const char* label;
    exp::StrategyKind kind;
    std::int64_t request_bytes;
    int regions;
    SimTime spacing;
  };
  const std::vector<Policy> policies = {
      {"seq-64K", exp::StrategyKind::kSequential, 64 * 1024, 0, 0},
      {"stag-64Kx128", exp::StrategyKind::kStaggered, 64 * 1024, 128, 0},
      {"seq-256K-paced", exp::StrategyKind::kSequential, 256 * 1024, 0,
       5 * kMillisecond},
  };

  std::printf("fleet: %lld disks, horizon %.0f days, util [%.2f, %.2f]\n\n",
              static_cast<long long>(disks), to_seconds(base.run_for) / 86400.0,
              base.fleet.util_min, base.fleet.util_max);
  // No shard/worker counts in the table: stdout must byte-diff clean
  // across any partitioning (CI runs 1-shard vs 4-shard and diffs).
  std::printf("%-15s %9s %9s %10s %10s %10s %10s %9s\n", "policy", "bursts",
              "errors", "mlet(h)", "p50(h)", "p95(h)", "pass-p50",
              "slowdown");

  for (const Policy& p : policies) {
    exp::ScenarioConfig config = base;
    config.label = std::string("fleet.") + p.label;
    config.scrubber.strategy.kind = p.kind;
    config.scrubber.strategy.request_bytes = p.request_bytes;
    if (p.regions > 0) config.scrubber.strategy.regions = p.regions;
    config.fleet.pacing.request_service = paced(p.request_bytes);
    config.fleet.pacing.request_spacing = p.spacing;

    exp::SweepOptions options;
    options.merge_into = &obs::Registry::global();
    const fleet::FleetResult r = fleet::run_fleet(config, options);
    r.export_to(obs::Registry::global(), config.label);

    std::printf("%-15s %9lld %9lld %10.4g %10.4g %10.4g %10.4g %9.4g\n",
                p.label, static_cast<long long>(r.total_bursts),
                static_cast<long long>(r.total_errors), r.fleet_mlet_hours,
                r.mlet_hours.p50(), r.mlet_hours.p95(),
                r.completion_hours.p50(), r.mean_slowdown);
  }
  return 0;
}
