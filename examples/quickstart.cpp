// Quickstart: scrub a simulated disk underneath a foreground workload.
//
// Builds the full stack -- a Hitachi Ultrastar disk model, a CFQ block
// layer, a sequential foreground workload -- and runs the paper's
// recommended scrubber (Waiting policy, fixed request size) next to it for
// one simulated minute.
//
// Observability: set PSCRUB_TRACE=trace.json to capture a Perfetto-
// loadable sim-time trace of the run (disk phases, block queueing,
// scrubber lifecycle), and/or PSCRUB_METRICS=metrics.json to dump all
// collected metrics as JSON.
//
//   ./quickstart [wait_threshold_ms] [request_kb]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "pscrub.h"

using namespace pscrub;

int main(int argc, char** argv) {
  obs::EnvSession obs_session;
  const SimTime wait_threshold =
      (argc > 1 ? std::atoll(argv[1]) : 50) * kMillisecond;
  const std::int64_t request_bytes =
      (argc > 2 ? std::atoll(argv[2]) : 512) * 1024;

  // 1. The simulated hardware: a 300 GB 15k SAS drive.
  Simulator sim;
  disk::DiskModel drive(sim, disk::hitachi_ultrastar_15k450(), /*seed=*/1);
  std::printf("disk: %s, %.1f GB, %d RPM, media rate %.0f MB/s\n",
              drive.profile().name.c_str(),
              static_cast<double>(drive.geometry().total_bytes()) / 1e9,
              drive.profile().rpm, drive.profile().media_rate_mb_s());

  // 2. The block layer with the CFQ-like scheduler.
  block::BlockLayer blk(sim, drive, std::make_unique<block::CfqScheduler>());

  // 3. A foreground workload: 8 MB sequential chunks with think time.
  workload::SyntheticConfig wcfg;
  workload::SequentialChunkWorkload fg(sim, blk, wcfg, /*seed=*/42);
  fg.start();

  // 4. The scrubber: wait for the disk to stay idle past the threshold,
  //    then verify back-to-back until foreground work returns.
  core::WaitingScrubber scrubber(
      sim, blk, core::make_sequential(drive.total_sectors(), request_bytes),
      wait_threshold);
  scrubber.start();

  // 5. Run one simulated minute.
  constexpr SimTime kRun = 60 * kSecond;
  sim.run_until(kRun);

  std::printf("\nafter %s simulated:\n", format_duration(kRun).c_str());
  std::printf("  foreground: %lld requests, %.2f MB/s, mean latency %.2f ms\n",
              static_cast<long long>(fg.metrics().requests),
              fg.metrics().throughput_mb_s(kRun),
              fg.metrics().mean_latency_ms());
  std::printf("  scrubber:   %lld verifies, %.2f MB/s "
              "(wait threshold %s, %lld KB requests)\n",
              static_cast<long long>(scrubber.stats().requests),
              scrubber.stats().throughput_mb_s(kRun),
              format_duration(wait_threshold).c_str(),
              static_cast<long long>(request_bytes / 1024));
  std::printf("  collisions: %lld (%.2f ms foreground delay total)\n",
              static_cast<long long>(blk.stats().collisions),
              to_milliseconds(blk.stats().collision_delay_sum));

  const double full_scan_days =
      static_cast<double>(drive.geometry().total_bytes()) / 1e6 /
      std::max(scrubber.stats().throughput_mb_s(kRun), 1e-9) / 86400.0;
  std::printf("  at this rate, one full scrub pass takes %.1f days\n",
              full_scan_days);

  // Publish everything the run collected into the global registry (dumped
  // as JSON when PSCRUB_METRICS is set).
  obs::Registry& reg = obs::Registry::global();
  fg.metrics().export_to(reg, "workload");
  scrubber.stats().export_to(reg, "scrubber");
  blk.stats().export_to(reg, "block");
  drive.counters().export_to(reg, "disk");
  reg.gauge("workload.mb_s").set(fg.metrics().throughput_mb_s(kRun));
  reg.gauge("scrubber.mb_s").set(scrubber.stats().throughput_mb_s(kRun));
  return 0;
}
