// Quickstart: scrub a simulated disk underneath a foreground workload.
//
// One exp::ScenarioConfig describes the full stack -- a Hitachi Ultrastar
// disk model, a CFQ block layer, a sequential foreground workload -- and
// the scenario engine assembles it and runs the paper's recommended
// scrubber (Waiting policy, fixed request size) next to it for one
// simulated minute.
//
// Observability: set PSCRUB_TRACE=trace.json to capture a Perfetto-
// loadable sim-time trace of the run (disk phases, block queueing,
// scrubber lifecycle), and/or PSCRUB_METRICS=metrics.json to dump all
// collected metrics as JSON.
//
//   ./quickstart [wait_threshold_ms] [request_kb]
#include <cstdio>
#include <cstdlib>

#include "arg_parse.h"
#include "pscrub.h"

using namespace pscrub;

int main(int argc, char** argv) {
  obs::EnvSession obs_session;
  const SimTime wait_threshold =
      (argc > 1 ? examples::parse_ll(argv[1], "wait_threshold_ms") : 50) *
      kMillisecond;
  const std::int64_t request_bytes =
      (argc > 2 ? examples::parse_ll(argv[2], "request_kb") : 512) * 1024;

  // The whole stack as one value: a 300 GB 15k SAS drive behind the
  // CFQ-like scheduler, an 8 MB sequential-chunk foreground workload, and
  // a Waiting scrubber that fires once the disk stays idle past the
  // threshold, verifying back-to-back until foreground work returns.
  exp::ScenarioConfig cfg;
  cfg.disk.kind = exp::DiskKind::kUltrastar15k450;
  cfg.scheduler = exp::SchedulerKind::kCfq;
  cfg.workload.kind = exp::WorkloadKind::kSequentialChunks;
  cfg.scrubber.kind = exp::ScrubberKind::kWaiting;
  cfg.scrubber.wait_threshold = wait_threshold;
  cfg.scrubber.strategy.request_bytes = request_bytes;
  cfg.run_for = 60 * kSecond;

  exp::Scenario scenario(cfg);
  if (obs::Timeline::global().enabled()) {
    scenario.attach_timeline(obs::Timeline::global(), "quickstart");
  }
  const disk::DiskModel& drive = scenario.disk();
  std::printf("disk: %s, %.1f GB, %d RPM, media rate %.0f MB/s\n",
              drive.profile().name.c_str(),
              static_cast<double>(drive.geometry().total_bytes()) / 1e9,
              drive.profile().rpm, drive.profile().media_rate_mb_s());

  scenario.run();
  const exp::ScenarioResult r = scenario.take_result();

  std::printf("\nafter %s simulated:\n", format_duration(cfg.run_for).c_str());
  std::printf("  foreground: %lld requests, %.2f MB/s, mean latency %.2f ms\n",
              static_cast<long long>(r.workload_requests), r.workload_mb_s,
              r.workload_mean_latency_ms);
  std::printf("  scrubber:   %lld verifies, %.2f MB/s "
              "(wait threshold %s, %lld KB requests)\n",
              static_cast<long long>(r.scrub_requests), r.scrub_mb_s,
              format_duration(wait_threshold).c_str(),
              static_cast<long long>(request_bytes / 1024));
  std::printf("  collisions: %lld (%.2f ms foreground delay total)\n",
              static_cast<long long>(r.collisions),
              to_milliseconds(r.collision_delay_sum));

  const double full_scan_days =
      static_cast<double>(drive.geometry().total_bytes()) / 1e6 /
      std::max(r.scrub_mb_s, 1e-9) / 86400.0;
  std::printf("  at this rate, one full scrub pass takes %.1f days\n",
              full_scan_days);

  // Publish everything the run collected into the global registry (dumped
  // as JSON when PSCRUB_METRICS is set).
  obs::Registry& reg = obs::Registry::global();
  scenario.export_to(reg, "quickstart");
  reg.gauge("quickstart.workload.mb_s").set(r.workload_mb_s);
  reg.gauge("quickstart.scrubber.mb_s").set(r.scrub_mb_s);
  return 0;
}
