// MLET study: why staggered scrubbing exists.
//
// Injects latent-sector-error bursts into a simulated disk and measures
// the Mean Latent Error Time of sequential scrubbing versus staggered
// scrubbing with increasing region counts, at a configurable scrub pace.
//
//   ./mlet_study [pass_hours] [regions...]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "arg_parse.h"
#include "pscrub.h"

using namespace pscrub;

int main(int argc, char** argv) {
  obs::EnvSession obs_session;
  const double pass_hours =
      argc > 1 ? examples::parse_double(argv[1], "pass_hours") : 24.0;
  std::vector<int> region_counts;
  for (int i = 2; i < argc; ++i) {
    region_counts.push_back(
        static_cast<int>(examples::parse_ll(argv[i], "regions")));
  }
  if (region_counts.empty()) region_counts = {4, 16, 64, 128};

  // ~32 GB device: at R = 128 a region is 256 MB, matching the error
  // bursts' spatial locality (the regime staggered scrubbing targets).
  constexpr std::int64_t kTotalSectors = 62'500'000;
  constexpr std::int64_t kRequestSectors = 1024;  // 512 KB verifies

  // Pace the scrubber so one pass takes `pass_hours`.
  const std::int64_t requests_per_pass =
      (kTotalSectors + kRequestSectors - 1) / kRequestSectors;
  core::MletConfig mc;
  mc.request_service = from_seconds(pass_hours * 3600.0 /
                                    static_cast<double>(requests_per_pass));
  mc.request_spacing = 0;

  // LSE model: bursts of errors with multi-MB spatial locality.
  Rng rng(7);
  core::LseModelConfig lse;
  lse.burst_interarrival_mean = 3 * kDay;
  lse.burst_span_bytes = 256LL << 20;
  const auto bursts =
      core::generate_lse_bursts(lse, kTotalSectors, 120 * kDay, rng);
  std::int64_t errors = 0;
  for (const auto& b : bursts) {
    errors += static_cast<std::int64_t>(b.sectors.size());
  }
  std::printf("scrub pass: %.1f h; injected %zu bursts / %lld errors over "
              "120 days\n\n",
              pass_hours, bursts.size(), static_cast<long long>(errors));

  std::printf("%-22s %12s %12s\n", "strategy", "MLET (h)", "worst (h)");
  for (int i = 0; i < 48; ++i) std::putchar('-');
  std::putchar('\n');

  core::SequentialStrategy seq(kTotalSectors, kRequestSectors);
  const auto rs = core::evaluate_mlet(seq, kTotalSectors, bursts, mc);
  std::printf("%-22s %12.2f %12.2f\n", "sequential", rs.mlet_hours,
              rs.worst_hours);

  for (int regions : region_counts) {
    core::StaggeredStrategy stag(kTotalSectors, kRequestSectors, regions);
    const auto r = core::evaluate_mlet(stag, kTotalSectors, bursts, mc);
    std::printf("staggered (R=%-4d)     %12.2f %12.2f   (%.1fx better)\n",
                regions, r.mlet_hours, r.worst_hours,
                rs.mlet_hours / r.mlet_hours);
  }

  std::printf(
      "\nStaggered probing detects a burst's first error quickly and the\n"
      "detection response mops up the rest -- and per Figs 5-7 of the\n"
      "paper, it costs nothing in scrub throughput at >=128 regions.\n");
  return 0;
}
