// RAID rebuild walkthrough: the scenario that motivates scrubbing.
//
// Builds a RAID-5 array through the scenario engine, plants latent sector
// errors on a survivor, optionally scrubs, then fails a member and
// rebuilds -- printing what was lost. Run it twice to see the difference a
// scrubber makes:
//
//   ./raid_rebuild            # with scrubbing (default)
//   ./raid_rebuild --no-scrub # without
#include <cstdio>
#include <cstring>

#include "pscrub.h"

using namespace pscrub;

int main(int argc, char** argv) {
  obs::EnvSession obs_session;
  const bool scrub = !(argc > 1 && std::strcmp(argv[1], "--no-scrub") == 0);

  exp::ScenarioConfig cfg;
  cfg.disk.kind = exp::DiskKind::kUltrastar15k450;
  cfg.disk.capacity_bytes = 2LL << 30;  // 2 GB members for a quick demo
  cfg.raid.enabled = true;
  cfg.raid.data_disks = 4;
  cfg.raid.parity_disks = 1;
  cfg.raid.seed = 42;
  if (scrub) {
    cfg.scrubber.kind = exp::ScrubberKind::kWaiting;
    cfg.scrubber.wait_threshold = 20 * kMillisecond;
    cfg.scrubber.strategy.request_bytes = 1 << 20;
  }

  exp::Scenario scenario(cfg);
  if (obs::Timeline::global().enabled()) {
    scenario.attach_timeline(obs::Timeline::global(), "raid_rebuild");
  }
  Simulator& sim = scenario.sim();
  raid::RaidArray& array = scenario.raid();

  std::printf("RAID-5 array: %d+%d x %s (%.1f GB usable)\n",
              cfg.raid.data_disks, cfg.raid.parity_disks,
              cfg.disk.profile().name.c_str(),
              static_cast<double>(array.array_sectors()) *
                  disk::kSectorBytes / 1e9);

  // A burst of latent errors develops on disk 0 -- silent, as always.
  Rng rng(7);
  const std::int64_t span = (32 << 20) / disk::kSectorBytes;
  const std::int64_t base =
      rng.uniform_int(0, array.disk(0).total_sectors() - span);
  for (int i = 0; i < 12; ++i) {
    array.disk(0).inject_lse(base + rng.uniform_int(0, span - 1));
  }
  std::printf("injected a burst of %zu latent errors on disk 0 (silent)\n",
              array.disk(0).lse_count());

  if (scrub) {
    std::printf("scrubbing all members (Waiting 20 ms, 1 MB verifies)...\n");
  } else {
    std::printf("scrubbing disabled.\n");
  }
  scenario.start();

  // Quiet period: the scrubber (if any) sweeps the members.
  sim.run_until(3 * kMinute);
  scenario.stop_scrubbing();
  std::printf("after %s: %lld detections, %zu latent errors remain on "
              "disk 0\n",
              format_duration(sim.now()).c_str(),
              static_cast<long long>(array.stats().scrub_detections),
              array.disk(0).lse_count());

  // Disaster: disk 2 fails. Rebuild onto a replacement.
  std::printf("\ndisk 2 fails; rebuilding onto a replacement...\n");
  array.fail_disk(2);
  raid::RebuildResult result;
  bool done = false;
  array.rebuild(2, {}, [&](const raid::RebuildResult& r) {
    result = r;
    done = true;
  });
  sim.run();
  if (!done) {
    std::printf("rebuild did not complete (unexpected)\n");
    return 1;
  }

  std::printf("rebuild finished in %s: %lld stripes restored\n",
              format_duration(result.duration).c_str(),
              static_cast<long long>(result.stripes_rebuilt));
  if (result.sectors_lost == 0) {
    std::printf("DATA INTACT: every sector reconstructed.\n");
  } else {
    std::printf("DATA LOSS: %lld sectors unrecoverable (latent errors on a\n"
                "survivor met the failed disk's erasure).\n",
                static_cast<long long>(result.sectors_lost));
  }
  if (scrub) {
    std::printf("\nre-run with --no-scrub to watch those sectors vanish.\n");
  } else {
    std::printf("\nre-run without --no-scrub to watch scrubbing save them.\n");
  }

  obs::Registry& reg = obs::Registry::global();
  array.stats().export_to(reg, "raid");
  reg.gauge("raid.rebuild_duration_s").set(to_seconds(result.duration));
  return result.sectors_lost == 0 ? 0 : 2;
}
