// Trace tool: generate, export, import and summarize catalog traces.
//
//   ./trace_tool list
//   ./trace_tool export <disk_label> <out.csv> [scale]
//   ./trace_tool summarize <in.csv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "arg_parse.h"
#include "pscrub.h"

using namespace pscrub;

namespace {

int cmd_list() {
  std::printf("%-12s %-16s %-18s %14s %10s\n", "label", "collection",
              "description", "requests", "duration");
  for (const trace::TraceSpec& s : trace::table1_specs()) {
    std::printf("%-12s %-16s %-18s %14lld %10s\n", s.name.c_str(),
                s.collection.c_str(), s.description.c_str(),
                static_cast<long long>(s.target_requests),
                format_duration(s.duration).c_str());
  }
  std::printf("\n(+ %zu secondary disks via the busiest-63 catalog; "
              "MSRusr2 also available)\n",
              trace::busiest63_specs().size() - 10);
  return 0;
}

int cmd_export(const char* label, const char* path, double scale) {
  auto spec = trace::spec_by_name(label);
  if (!spec) {
    std::fprintf(stderr, "unknown disk label: %s (try `trace_tool list`)\n",
                 label);
    return 1;
  }
  trace::SyntheticGenerator gen(*spec);
  const trace::Trace t = gen.generate_trace(scale);
  trace::write_csv_file(t, path);
  std::printf("wrote %zu records of %s (scale %.3f) to %s\n", t.size(),
              label, scale, path);
  return 0;
}

int cmd_summarize(const char* path) {
  const trace::Trace t = trace::read_csv_file(path);
  std::printf("%s: %zu records over %s\n", path, t.size(),
              format_duration(t.duration).c_str());
  if (t.empty()) return 0;

  std::int64_t reads = 0;
  std::int64_t bytes = 0;
  for (const auto& r : t.records) {
    reads += r.is_write ? 0 : 1;
    bytes += r.bytes();
  }
  std::printf("  reads: %.1f%%   volume: %.2f GB   mean request: %.1f KB\n",
              100.0 * static_cast<double>(reads) /
                  static_cast<double>(t.size()),
              static_cast<double>(bytes) / 1e9,
              static_cast<double>(bytes) / static_cast<double>(t.size()) /
                  1024.0);

  const stats::Summary gaps = stats::summarize(t.interarrival_seconds());
  std::printf("  inter-arrival: mean %.4f s, CoV %.2f\n", gaps.mean,
              gaps.cov);

  const auto counts = t.hourly_counts();
  if (counts.size() >= 48) {
    const stats::PeriodResult period = stats::detect_period(counts);
    if (period.period_hours > 1) {
      std::printf("  periodicity: %zu h (ANOVA F=%.1f)\n",
                  period.period_hours, period.f_statistic);
    } else {
      std::printf("  periodicity: none detected\n");
    }
  }

  const auto idle = trace::extract_idle_intervals(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
  const stats::Summary is = stats::summarize(idle.idle_seconds);
  stats::ResidualLife life(idle.idle_seconds);
  std::printf("  idle intervals: %zu, mean %.4f s, CoV %.2f; "
              "15%%-largest hold %.0f%% of idle time\n",
              idle.idle_seconds.size(), is.mean, is.cov,
              100.0 * life.tail_weight(0.15));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::EnvSession obs_session;
  if (argc >= 2 && std::strcmp(argv[1], "list") == 0) return cmd_list();
  if (argc >= 4 && std::strcmp(argv[1], "export") == 0) {
    const double scale =
        argc >= 5 ? examples::parse_double(argv[4], "scale") : 0.01;
    return cmd_export(argv[2], argv[3], scale);
  }
  if (argc >= 3 && std::strcmp(argv[1], "summarize") == 0) {
    return cmd_summarize(argv[2]);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s list\n"
               "  %s export <disk_label> <out.csv> [scale=0.01]\n"
               "  %s summarize <in.csv>\n",
               argv[0], argv[0], argv[0]);
  return 1;
}
