// pscrubd_sim: drive the crash-safe scrub control plane from the CLI.
//
// Runs pscrubd over a small device population with an in-sim operator
// client hammering the command protocol, periodic checkpoints, and
// (optionally) a kill/resume cycle. The CI `daemon` job uses the kill
// harness: run once uninterrupted, run again with --kill-at-extents
// (the process exits mid-run with code 3, skipping ALL exit-time metric
// export), resume from the persisted checkpoint with --resume, and
// byte-diff stdout + PSCRUB_METRICS + PSCRUB_TIMELINE against the
// uninterrupted run.
//
//   ./pscrubd_sim [--devices N] [--hours H] [--rate SECT_PER_S]
//                 [--commands N] [--checkpoint PATH] [--checkpoint-mins M]
//                 [--kill-at-extents N] [--resume PATH]
//                 [--crash-at-hours H]
//
// --crash-at-hours exercises the IN-SIM crash path instead (the control
// plane is torn down and rebuilt from its last checkpoint inside one
// process); --kill-at-extents + --resume exercise the process-level one.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "arg_parse.h"
#include "pscrub.h"

using namespace pscrub;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--devices N] [--hours H] [--rate SECT_PER_S]\n"
               "          [--commands N] [--checkpoint PATH]\n"
               "          [--checkpoint-mins M] [--kill-at-extents N]\n"
               "          [--resume PATH] [--crash-at-hours H]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  obs::EnvSession obs_session;

  std::int64_t devices = 4;
  double hours = 8.0;
  std::int64_t rate = 0;
  std::int64_t commands = 200;
  std::string checkpoint_path;
  double checkpoint_mins = 30.0;
  std::int64_t kill_at = 0;
  std::string resume_path;
  double crash_hours = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--devices") {
      devices = examples::parse_ll(value(), "--devices");
    } else if (arg == "--hours") {
      hours = examples::parse_double(value(), "--hours");
    } else if (arg == "--rate") {
      rate = examples::parse_ll(value(), "--rate");
    } else if (arg == "--commands") {
      commands = examples::parse_ll(value(), "--commands");
    } else if (arg == "--checkpoint") {
      checkpoint_path = value();
    } else if (arg == "--checkpoint-mins") {
      checkpoint_mins = examples::parse_double(value(), "--checkpoint-mins");
    } else if (arg == "--kill-at-extents") {
      kill_at = examples::parse_ll(value(), "--kill-at-extents");
    } else if (arg == "--resume") {
      resume_path = value();
    } else if (arg == "--crash-at-hours") {
      crash_hours = examples::parse_double(value(), "--crash-at-hours");
    } else {
      return usage(argv[0]);
    }
  }
  if (devices <= 0 || hours <= 0.0) return usage(argv[0]);

  exp::ScenarioConfig config;
  config.label = "pscrubd";
  config.disk.capacity_bytes = 2LL << 30;  // small members keep CI fast
  config.scrubber.kind = exp::ScrubberKind::kWaiting;
  config.scrubber.strategy.kind = exp::StrategyKind::kSequential;
  config.scrubber.strategy.request_bytes = 256 * 1024;
  config.run_for = from_seconds(hours * 3600.0);

  config.daemon.devices = devices;
  config.daemon.util_min = 0.2;
  config.daemon.util_max = 0.5;
  config.daemon.target_passes = 1;
  config.daemon.rate_sectors_per_s = rate;
  config.daemon.checkpoint_interval = from_seconds(checkpoint_mins * 60.0);
  config.daemon.checkpoint_path = checkpoint_path;
  config.daemon.client_commands = commands;
  if (commands > 0) {
    config.daemon.client_interval =
        std::max<SimTime>(config.run_for / commands, 2);
  }
  config.daemon.crash_at = from_seconds(crash_hours * 3600.0);

  // Pace an idle-disk pass to ~60% of the horizon: utilization stretch
  // (up to 2x at util 0.5) leaves a realistic mix of done and running
  // scrubs at the end.
  {
    const disk::DiskProfile p = config.disk.profile();
    const std::int64_t total_sectors =
        disk::Geometry(p.capacity_bytes, p.outer_spt, p.inner_spt, p.zones)
            .total_sectors();
    const std::int64_t request_sectors =
        disk::sectors_from_bytes(config.scrubber.strategy.request_bytes);
    const std::int64_t steps =
        (total_sectors + request_sectors - 1) / request_sectors;
    const SimTime step = std::max<SimTime>(config.run_for * 6 / (10 * steps), 8);
    // 25% scrub duty cycle within idle time: the slowdown model stays in
    // its meaningful regime instead of clamping (spacing 0 means the
    // scrubber consumes every idle nanosecond).
    config.daemon.pacing.request_service = step / 4;
    config.daemon.pacing.request_spacing = step - step / 4;
  }

  // A few LSE bursts per device within the run.
  config.fault.enabled = true;
  config.fault.lse.burst_interarrival_mean = from_seconds(hours * 900.0);
  config.fault.lse.burst_span_bytes = 64LL << 20;

  daemon::DaemonResult result;
  if (crash_hours > 0.0) {
    result = daemon::run_daemon(config);
  } else {
    Simulator sim;
    daemon::Daemon d(sim, config, &obs::Timeline::global());
    if (!resume_path.empty()) {
      const daemon::Checkpoint ck =
          daemon::parse_checkpoint(daemon::read_checkpoint_file(resume_path));
      sim.at(ck.now, [] {});
      sim.run_until(ck.now);
      d.restore(ck);
    } else {
      d.start();
    }
    if (kill_at > 0) {
      // The CI kill harness: exit hard at a fixed amount of verified
      // work. std::exit skips local destructors, so obs_session never
      // exports -- like a real crash, nothing but the checkpoint file
      // survives.
      while (sim.step(config.run_for)) {
        if (d.total_extents() >= kill_at) {
          std::fprintf(stderr,
                       "pscrubd_sim: killed at %lld extents (sim %.3fs)\n",
                       static_cast<long long>(d.total_extents()),
                       to_seconds(sim.now()));
          std::exit(3);
        }
      }
    } else {
      sim.run_until(config.run_for);
    }
    result = d.result();
  }

  std::fputs(daemon::render_daemon_result(result).c_str(), stdout);
  result.export_to(obs::Registry::global(), config.label);
  return 0;
}
