// Trace study: the paper's Sec V-A statistical analysis on one trace.
//
// Regenerates a catalog trace (by its paper label) and reports the
// properties that motivate the Waiting policy: periodicity (ANOVA),
// autocorrelation of idle durations, idle-interval moments (Table II),
// tail weight (Fig 10), and mean residual life (Fig 11).
//
//   ./trace_study [disk_label]       (default: HPc6t8d0)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "pscrub.h"

using namespace pscrub;

int main(int argc, char** argv) {
  obs::EnvSession obs_session;
  const std::string name = argc > 1 ? argv[1] : "HPc6t8d0";
  auto spec = trace::spec_by_name(name);
  if (!spec) {
    std::fprintf(stderr, "unknown disk label: %s\n", name.c_str());
    std::fprintf(stderr, "try e.g. MSRsrc11, MSRusr1, HPc6t8d0, TPCdisk66\n");
    return 1;
  }
  std::printf("%s -- %s (%s), %lld requests over %s\n", spec->name.c_str(),
              spec->description.c_str(), spec->collection.c_str(),
              static_cast<long long>(spec->target_requests),
              format_duration(spec->duration).c_str());

  // Thin heavy traces to keep this example interactive.
  const double scale =
      std::min(1.0, 2e6 / static_cast<double>(spec->target_requests));
  trace::SyntheticGenerator gen(*spec);
  const trace::Trace t = gen.generate_trace(scale);
  std::printf("analyzing %zu requests (scale %.3f)\n\n", t.size(), scale);

  // Periodicity (Fig 9).
  const auto counts = t.hourly_counts();
  const stats::PeriodResult period = stats::detect_period(counts);
  if (period.period_hours > 1) {
    std::printf("periodicity: %zu-hour cycle (ANOVA F=%.1f, p=%.2g)\n",
                period.period_hours, period.f_statistic, period.p_value);
  } else {
    std::printf("periodicity: none detected\n");
  }

  // Idle intervals under the reference drive's service model.
  const disk::DiskProfile profile = disk::hitachi_ultrastar_15k450();
  const auto extraction = trace::extract_idle_intervals(
      t, core::make_foreground_service(profile));
  const stats::Summary idle = stats::summarize(extraction.idle_seconds);
  std::printf("idle intervals: %zu, mean %.4f s, CoV %.2f%s\n",
              extraction.idle_seconds.size(), idle.mean, idle.cov,
              idle.cov > 2.0 ? "  (heavy-tailed: far from exponential)"
                             : "  (near-memoryless)");

  // Autocorrelation of log idle durations.
  std::vector<double> logs;
  logs.reserve(extraction.idle_seconds.size());
  for (double s : extraction.idle_seconds) logs.push_back(std::log(s));
  std::printf("autocorrelation of idle lengths: lag-1 r=%.2f%s\n",
              stats::autocorrelation(logs, 1),
              stats::strongly_autocorrelated(logs, 20, 0.4) ? "  (strong)"
                                                            : "");

  // Tail weight and residual life.
  stats::ResidualLife life(extraction.idle_seconds);
  std::printf("idle-time tail: %.0f%% of idle time in the 15%% largest "
              "intervals\n",
              100.0 * life.tail_weight(0.15));
  std::printf("mean residual life: %.3f s at birth -> %.3f s after 1 s idle\n",
              life.mean_residual(0.0), life.mean_residual(1.0));
  const bool decreasing_hazard =
      life.mean_residual(1.0) > 1.5 * life.mean_residual(0.0);
  std::printf("hazard rates: %s\n",
              decreasing_hazard
                  ? "decreasing -- Waiting will identify long intervals"
                  : "roughly constant -- waiting buys little here");
  return 0;
}
