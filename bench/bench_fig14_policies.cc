// Figure 14: comparison of the scheduling policies -- Oracle,
// Auto-Regression, Waiting, Lossless Waiting, and AR+Waiting -- on two
// disks: HPc6t8d0 (many short idle intervals, worst case) and MSRusr2
// (representative).
//
// Each policy sweeps its parameter; every setting yields one point
// (collision rate, fraction of idle time utilized). The whole figure is
// one exp::run_policy_scenarios sweep: every point is an independent
// labeled scenario, so the rows compute in parallel and the metrics
// registry receives the same labeled entries in the same order no matter
// how many workers run.
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

std::string ms_label(SimTime t) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lldms",
                static_cast<long long>(t / kMillisecond));
  return buf;
}

void run_disk(const char* disk_name) {
  header(std::string("Figure 14: policy comparison on ") + disk_name);
  const trace::Trace t = scaled_trace(disk_name, 2'500'000);
  std::printf("%zu requests replayed (thinned)\n\n", t.size());
  const std::vector<SimTime> services = core::precompute_services(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
  std::printf("%-18s %12s %14s %14s\n", "policy", "param", "collision rate",
              "idle utilized");
  row_rule(62);

  std::vector<exp::PolicySimScenario> scenarios;
  std::vector<std::pair<std::string, std::string>> rows;  // (policy, param)
  auto add = [&](const std::string& policy, const std::string& param,
                 const exp::PolicySpec& spec) {
    exp::PolicySimScenario s;
    s.label = "fig14." + std::string(disk_name) + "." + policy + "." + param;
    s.trace = &t;
    s.services = &services;
    s.policy = spec;
    s.sizer = core::ScrubSizer::fixed(64 * 1024);
    scenarios.push_back(std::move(s));
    rows.emplace_back(policy, param);
  };

  // The thinned traces stretch idle intervals (~6-40x vs the originals),
  // so the sweep extends further than the paper's 16..2048 ms to span the
  // same portion of the idle-length distribution.
  const std::vector<SimTime> thresholds = {
      16 * kMillisecond,   64 * kMillisecond,    256 * kMillisecond,
      1024 * kMillisecond, 4096 * kMillisecond,  16384 * kMillisecond,
      65536 * kMillisecond};

  const auto idles = idle_intervals_for(disk_name, 2'500'000);
  stats::ResidualLife life{idles};

  // Oracle: utilize exactly the intervals longer than L, from the start.
  for (double q : {0.5, 0.8, 0.9, 0.95, 0.98, 0.99, 0.995}) {
    const double len_s = stats::quantile_sorted(life.sorted(), q);
    exp::PolicySpec spec;
    spec.kind = exp::PolicyKind::kOracle;
    spec.threshold = from_seconds(len_s);
    char param[24];
    std::snprintf(param, sizeof(param), "q%.3g", q);
    add("Oracle", param, spec);
  }

  for (SimTime th : thresholds) {
    exp::PolicySpec spec;
    spec.kind = exp::PolicyKind::kAutoRegression;
    spec.threshold = th;
    spec.ar_window = 4096;
    spec.ar_refit_every = 1024;
    spec.ar_max_order = 8;
    add("Auto-Regression", ms_label(th), spec);
  }

  for (SimTime th : thresholds) {
    exp::PolicySpec spec;
    spec.kind = exp::PolicyKind::kWaiting;
    spec.threshold = th;
    add("Waiting", ms_label(th), spec);
  }

  for (SimTime th : thresholds) {
    exp::PolicySpec spec;
    spec.kind = exp::PolicyKind::kLosslessWaiting;
    spec.threshold = th;
    add("Lossless Waiting", ms_label(th), spec);
  }

  // AR + Waiting: the AR threshold c is set at the 20/40/60/80th
  // percentile of observed idle durations; the wait threshold sweeps.
  for (double q : {0.2, 0.4, 0.6, 0.8}) {
    const SimTime c = from_seconds(stats::quantile_sorted(life.sorted(), q));
    for (SimTime th :
         {64 * kMillisecond, 1024 * kMillisecond, 16384 * kMillisecond}) {
      exp::PolicySpec spec;
      spec.kind = exp::PolicyKind::kArWaiting;
      spec.threshold = th;
      spec.secondary = c;
      char label[32];
      std::snprintf(label, sizeof(label), "AR(%.0fth)+Wait", q * 100);
      add(label, ms_label(th), spec);
    }
  }

  // Per-point registries merge into the global registry in scenario order,
  // so PSCRUB_METRICS output matches a serial run byte for byte.
  exp::SweepOptions options;
  options.merge_into = &obs::Registry::global();
  const auto results = exp::run_policy_scenarios(scenarios, options);

  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-18s %12s %14.4f %14.3f\n", rows[i].first.c_str(),
                rows[i].second.c_str(), results[i].collision_rate,
                results[i].idle_utilization);
  }
}

void run() {
  run_disk("HPc6t8d0");
  run_disk("MSRusr2");
  std::printf(
      "\nReading: at equal collision rate, Waiting utilizes the most idle\n"
      "time of any realizable policy; Lossless Waiting tracks the Oracle;\n"
      "pure AR is the weakest.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
