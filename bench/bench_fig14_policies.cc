// Figure 14: comparison of the scheduling policies -- Oracle,
// Auto-Regression, Waiting, Lossless Waiting, and AR+Waiting -- on two
// disks: HPc6t8d0 (many short idle intervals, worst case) and MSRusr2
// (representative).
//
// Each policy sweeps its parameter; every setting yields one point
// (collision rate, fraction of idle time utilized).
//
// Paper results reproduced: Waiting clearly outperforms AR and the
// combined policies; Lossless Waiting tracks the Oracle, showing Waiting's
// only loss is the time spent waiting; pure AR is the worst.
#include <algorithm>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

core::PolicySimConfig sim_config(const std::vector<SimTime>& services) {
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  core::PolicySimConfig c;
  c.scrub_service = core::make_scrub_service(p);
  c.sizer = core::ScrubSizer::fixed(64 * 1024);
  c.services = &services;
  return c;
}

const char* g_current_disk = "";

void print_point(const char* policy, const std::string& param,
                 const core::PolicySimResult& r) {
  std::printf("%-18s %12s %14.4f %14.3f\n", policy, param.c_str(),
              r.collision_rate, r.idle_utilization);
  // Mirror each point into the metrics registry so PSCRUB_METRICS dumps
  // the whole figure as machine-readable JSON.
  r.export_to(obs::Registry::global(), std::string("fig14.") +
                                           g_current_disk + "." + policy +
                                           "." + param);
}

std::string ms_label(SimTime t) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lldms",
                static_cast<long long>(t / kMillisecond));
  return buf;
}

void run_disk(const char* disk_name) {
  g_current_disk = disk_name;
  header(std::string("Figure 14: policy comparison on ") + disk_name);
  const trace::Trace t = scaled_trace(disk_name, 2'500'000);
  std::printf("%zu requests replayed (thinned)\n\n", t.size());
  const std::vector<SimTime> services = core::precompute_services(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
  std::printf("%-18s %12s %14s %14s\n", "policy", "param", "collision rate",
              "idle utilized");
  row_rule(62);

  // The thinned traces stretch idle intervals (~6-40x vs the originals),
  // so the sweep extends further than the paper's 16..2048 ms to span the
  // same portion of the idle-length distribution.
  const std::vector<SimTime> thresholds = {
      16 * kMillisecond,   64 * kMillisecond,    256 * kMillisecond,
      1024 * kMillisecond, 4096 * kMillisecond,  16384 * kMillisecond,
      65536 * kMillisecond};

  // Oracle: utilize exactly the intervals longer than L, from the start.
  {
    const auto idles = idle_intervals_for(disk_name, 2'500'000);
    stats::ResidualLife life{idles};
    for (double q : {0.5, 0.8, 0.9, 0.95, 0.98, 0.99, 0.995}) {
      const double len_s =
          stats::quantile_sorted(life.sorted(), q);
      core::OraclePolicy oracle(from_seconds(len_s));
      const auto r = core::run_policy_sim(t, oracle, sim_config(services));
      char param[24];
      std::snprintf(param, sizeof(param), "q%.3g", q);
      print_point("Oracle", param, r);
    }
  }

  for (SimTime th : thresholds) {
    core::ArPolicy ar(th, /*window=*/4096, /*refit_every=*/1024,
                      /*max_order=*/8);
    const auto r = core::run_policy_sim(t, ar, sim_config(services));
    print_point("Auto-Regression", ms_label(th), r);
  }

  for (SimTime th : thresholds) {
    core::WaitingPolicy w(th);
    const auto r = core::run_policy_sim(t, w, sim_config(services));
    print_point("Waiting", ms_label(th), r);
  }

  for (SimTime th : thresholds) {
    core::LosslessWaitingPolicy lw(th);
    const auto r = core::run_policy_sim(t, lw, sim_config(services));
    print_point("Lossless Waiting", ms_label(th), r);
  }

  // AR + Waiting: the AR threshold c is set at the 20/40/60/80th
  // percentile of observed idle durations; the wait threshold sweeps.
  {
    const auto idles = idle_intervals_for(disk_name, 2'500'000);
    stats::ResidualLife life{idles};
    for (double q : {0.2, 0.4, 0.6, 0.8}) {
      const SimTime c = from_seconds(stats::quantile_sorted(life.sorted(), q));
      for (SimTime th : {64 * kMillisecond, 1024 * kMillisecond,
                         16384 * kMillisecond}) {
        core::ArWaitingPolicy arw(th, c);
        const auto r = core::run_policy_sim(t, arw, sim_config(services));
        char label[32];
        std::snprintf(label, sizeof(label), "AR(%.0fth)+Wait",
                      q * 100);
        print_point(label, ms_label(th), r);
      }
    }
  }
}

void run() {
  run_disk("HPc6t8d0");
  run_disk("MSRusr2");
  std::printf(
      "\nReading: at equal collision rate, Waiting utilizes the most idle\n"
      "time of any realizable policy; Lossless Waiting tracks the Oracle;\n"
      "pure AR is the weakest.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
