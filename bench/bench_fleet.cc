// Fleet-layer benchmarks (google-benchmark): end-to-end run_fleet over a
// disks x policy grid, plus the single-member reference path for
// per-disk-cost comparison. These pin the fleet scaling contract -- SoA
// state, closed-form schedules, sharded event queues -- under the PR-5
// perf gate (bench/baseline.json via compare_perf.py).
//
// PSCRUB_BENCH_SCALE in (0, 1] shrinks the disk counts for smoke runs
// (the perf gate runs full size).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "bench/common.h"
#include "pscrub.h"

namespace pscrub {
namespace {

std::int64_t scaled_disks(std::int64_t disks) {
  const double scale = bench::bench_scale();
  if (scale <= 0.0) return disks;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                       static_cast<double>(disks) * scale));
}

exp::ScenarioConfig fleet_config(std::int64_t disks, bool staggered) {
  exp::ScenarioConfig config;
  config.label = staggered ? "bench.fleet.stag" : "bench.fleet.seq";
  config.disk.capacity_bytes = 32LL << 30;
  config.scrubber.kind = exp::ScrubberKind::kWaiting;
  config.scrubber.strategy.kind = staggered ? exp::StrategyKind::kStaggered
                                            : exp::StrategyKind::kSequential;
  config.scrubber.strategy.request_bytes = 64 * 1024;
  config.scrubber.strategy.regions = 128;
  config.run_for = 90 * kDay;
  config.fleet.disks = disks;
  config.fleet.pacing.request_service = 150 * kMillisecond;
  config.fleet.util_min = 0.2;
  config.fleet.util_max = 0.6;
  config.fault.enabled = true;
  config.fault.lse.burst_interarrival_mean = 10 * kDay;
  config.fault.lse.burst_span_bytes = 64LL << 20;
  return config;
}

/// End-to-end fleet run: args are (disks, staggered). The grid spans the
/// shard-count default's breakpoints (1 shard at 10k, multiple at 100k).
void BM_FleetRun(benchmark::State& state) {
  const std::int64_t disks = scaled_disks(state.range(0));
  const exp::ScenarioConfig config = fleet_config(disks, state.range(1) != 0);
  for (auto _ : state) {
    fleet::FleetResult r = fleet::run_fleet(config);
    benchmark::DoNotOptimize(r.total_errors);
  }
  state.SetItemsProcessed(state.iterations() * disks);
}
BENCHMARK(BM_FleetRun)
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Args({100'000, 0})
    ->Args({100'000, 1})
    ->Unit(benchmark::kMillisecond);

/// The per-disk reference path (virtual-dispatch strategy + full schedule
/// materialization): what the fleet's closed-form path replaces. The
/// per-item gap between this and BM_FleetRun is the layer's win.
void BM_FleetMemberReference(benchmark::State& state) {
  const exp::ScenarioConfig config = fleet_config(1024, state.range(0) != 0);
  std::int64_t index = 0;
  for (auto _ : state) {
    fleet::MemberResult r =
        fleet::run_member(config, index % config.fleet.disks);
    benchmark::DoNotOptimize(r.mlet.errors);
    ++index;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetMemberReference)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace pscrub

BENCHMARK_MAIN();
