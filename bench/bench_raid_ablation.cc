// Ablation: does scrubbing actually prevent data loss?
//
// The paper's opening motivation: LSEs are harmless while redundancy is
// intact, but one discovered on a survivor during RAID reconstruction is
// unrecoverable. We run a RAID-5 array under a light foreground workload
// while LSE bursts accumulate, then fail a member and rebuild:
//   - without scrubbing, the latent errors surface during the rebuild;
//   - with a Waiting scrubber, they are found and repaired beforehand;
//   - with a scrubber built on cache-answered ATA VERIFY (the Fig 1
//     pathology), scrubbing runs at full speed and detects NOTHING.
#include <functional>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr SimTime kQuietPeriod = 2 * kHour;  // LSEs accrue, scrubber works

struct Outcome {
  std::int64_t injected = 0;
  std::int64_t detections = 0;
  std::int64_t repaired = 0;
  std::int64_t lost = 0;
  double scrub_mb_s = 0.0;
};

enum class ScrubMode { kNone, kWaiting, kBrokenAtaVerify };

exp::ScenarioConfig raid_case(ScrubMode mode, SimTime wait_threshold) {
  exp::ScenarioConfig cfg;
  const bool sata = mode == ScrubMode::kBrokenAtaVerify;
  cfg.disk.kind =
      sata ? exp::DiskKind::kWdCaviar : exp::DiskKind::kUltrastar15k450;
  cfg.disk.capacity_bytes = 1LL << 30;  // 1 GB members keep the sim fast
  cfg.raid.enabled = true;
  cfg.raid.data_disks = 4;
  cfg.raid.parity_disks = 1;
  cfg.raid.seed = 2024;
  if (mode != ScrubMode::kNone) {
    cfg.scrubber.kind = exp::ScrubberKind::kWaiting;
    cfg.scrubber.wait_threshold = wait_threshold;
    cfg.scrubber.strategy.request_bytes = 512 * 1024;
    // Same policy either way, but the broken variant's verify primitive is
    // ATA VERIFY answered from the cache: it "scrubs" at electronics speed
    // and sees no media.
    cfg.scrubber.verify_kind = sata ? disk::CommandKind::kVerifyAta
                                    : disk::CommandKind::kVerifyScsi;
  }
  return cfg;
}

Outcome run_case(ScrubMode mode, SimTime wait_threshold) {
  exp::Scenario scenario(raid_case(mode, wait_threshold));
  Simulator& sim = scenario.sim();
  raid::RaidArray& array = scenario.raid();

  // Light foreground: a random read every ~250 ms on average.
  Rng rng(99);
  std::function<void()> next_read = [&] {
    const std::int64_t sectors = 128;
    const std::int64_t lbn =
        rng.uniform_int(0, array.array_sectors() - sectors - 1);
    array.read(lbn, sectors, nullptr);
    sim.after(from_seconds(rng.exponential(0.25)), next_read);
  };
  sim.after(0, next_read);

  // LSE bursts: clusters of errors appear on random members over time.
  Outcome out;
  Rng lse_rng(7);
  std::function<void()> next_burst = [&] {
    if (sim.now() >= kQuietPeriod) return;  // errors accrue pre-failure only
    const int disk_index = static_cast<int>(
        lse_rng.uniform_int(0, array.total_disks() - 1));
    auto& d = array.disk(disk_index);
    const std::int64_t span = (16 << 20) / disk::kSectorBytes;
    const std::int64_t base = lse_rng.uniform_int(0, d.total_sectors() - span);
    const std::int64_t count = 1 + lse_rng.uniform_int(0, 7);
    for (std::int64_t i = 0; i < count; ++i) {
      d.inject_lse(base + lse_rng.uniform_int(0, span - 1));
    }
    out.injected += count;
    sim.after(from_seconds(lse_rng.exponential(300.0)), next_burst);
  };
  sim.after(0, next_burst);

  // The scrubber under test comes up with the scenario.
  scenario.start();

  sim.run_until(kQuietPeriod);
  scenario.stop_scrubbing();

  out.detections = array.stats().scrub_detections;
  out.scrub_mb_s = static_cast<double>(scenario.scrubbed_bytes()) / 1e6 /
                   to_seconds(kQuietPeriod) / array.total_disks();
  for (int i = 0; i < array.total_disks(); ++i) {
    out.repaired += array.disk(i).counters().lse_repaired;
  }

  // Disk 2 dies; rebuild and count what the survivors could not provide.
  array.fail_disk(2);
  raid::RebuildResult result;
  array.rebuild(2, {}, [&](const raid::RebuildResult& r) { result = r; });
  sim.run_until(kQuietPeriod + 2 * kHour);
  out.lost = result.sectors_lost;
  return out;
}

void run() {
  header("RAID ablation: scrub policy vs data loss at rebuild (RAID-5, 4+1)");
  std::printf("%-28s %9s %10s %9s %7s %16s\n", "scrub policy", "injected",
              "detected", "repaired", "lost", "scrub MB/s/disk");
  row_rule(86);

  const Outcome none = run_case(ScrubMode::kNone, 0);
  std::printf("%-28s %9lld %10lld %9lld %7lld %16s\n", "no scrubbing",
              (long long)none.injected, (long long)none.detections,
              (long long)none.repaired, (long long)none.lost, "-");

  for (SimTime th : {50 * kMillisecond, 500 * kMillisecond}) {
    const Outcome o = run_case(ScrubMode::kWaiting, th);
    char label[64];
    std::snprintf(label, sizeof(label), "Waiting(%lldms), SCSI VERIFY",
                  (long long)(th / kMillisecond));
    std::printf("%-28s %9lld %10lld %9lld %7lld %16.1f\n", label,
                (long long)o.injected, (long long)o.detections,
                (long long)o.repaired, (long long)o.lost, o.scrub_mb_s);
  }

  const Outcome broken = run_case(ScrubMode::kBrokenAtaVerify,
                                  50 * kMillisecond);
  std::printf("%-28s %9lld %10lld %9lld %7lld %16.1f\n",
              "Waiting(50ms), ATA VERIFY", (long long)broken.injected,
              (long long)broken.detections, (long long)broken.repaired,
              (long long)broken.lost, broken.scrub_mb_s);

  std::printf(
      "\nReading: the SCSI-VERIFY scrubber repairs latent errors before the\n"
      "failure and the rebuild loses (almost) nothing; without scrubbing the\n"
      "survivors' LSEs become lost sectors; the cache-answered ATA VERIFY\n"
      "scrubber reports huge scrub rates while protecting nothing (Fig 1's\n"
      "pathology turned into a reliability statement).\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
