// Shared helpers for the experiment benches.
//
// Every bench regenerates one table or figure of the paper and prints the
// same rows/series the paper reports. Heavy SNIA-scale traces are thinned
// via `scaled_trace` (statistical shape preserved, volume capped) so the
// whole suite runs in minutes; set PSCRUB_BENCH_SCALE=1 to run full size.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "pscrub.h"

namespace pscrub::bench {

// Thin wrapper: fetches the variable and hands it straight to the strict
// parser below; nothing is interpreted here.
// pscrub-lint: env-shim
inline double bench_scale() {
  // The shared strict parser rejects trailing garbage ("0.5x"),
  // non-numeric input, overflowed exponents, and scales outside (0, 1]
  // with a stderr warning -- a typo degrades loudly to the default
  // per-bench record caps instead of silently parsing as 0.
  const std::optional<double> s = obs::parse_positive_double_env(
      "PSCRUB_BENCH_SCALE", std::getenv("PSCRUB_BENCH_SCALE"), 1.0);
  return s ? *s : -1.0;
}

/// Honors PSCRUB_TRACE / PSCRUB_METRICS for a bench run: declare one at
/// the top of main(). The trace streams while the bench runs; the global
/// metrics registry is dumped when the session object goes out of scope.
using ObsSession = obs::EnvSession;

/// Generates a catalog trace thinned to at most `max_records` (unless
/// PSCRUB_BENCH_SCALE overrides the policy).
inline trace::Trace scaled_trace(const std::string& name,
                                 std::int64_t max_records = 1'500'000) {
  auto spec = trace::spec_by_name(name);
  if (!spec) throw std::runtime_error("unknown trace: " + name);
  double scale = 1.0;
  const double env_scale = bench_scale();
  if (env_scale > 0.0) {
    scale = env_scale;
  } else if (spec->target_requests > max_records) {
    scale = static_cast<double>(max_records) /
            static_cast<double>(spec->target_requests);
  }
  trace::SyntheticGenerator gen(*spec);
  return gen.generate_trace(scale);
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Pretty request-size label (64K, 1M, ...).
inline std::string size_label(std::int64_t bytes) {
  char buf[32];
  if (bytes >= (1 << 20) && bytes % (1 << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lldM",
                  static_cast<long long>(bytes >> 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldK",
                  static_cast<long long>(bytes >> 10));
  }
  return buf;
}

/// Service model reflecting the system a trace was recorded on: the SNIA
/// traces carry original completion timestamps, so idle intervals are
/// defined against the *original* system's service times. Disk traces
/// (Cello/MSR) ran on single disks (use the reference drive's model);
/// TPC-C ran on a fast storage array (electronics + bus only).
inline trace::ServiceModel recorded_service_model(
    const trace::TraceSpec& spec) {
  if (spec.collection == "MS TPC-C") {
    const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
    return [p](const trace::TraceRecord& r) {
      return from_seconds(0.3e-3) + p.bus_transfer(r.bytes());
    };
  }
  return core::make_foreground_service(disk::hitachi_ultrastar_15k450());
}

/// Idle-interval durations (seconds) of a catalog trace under the
/// recorded-system service model, extracted from the FULL request volume
/// by streaming (no trace materialization) -- the shared input of the
/// Figs 10-13 / Table II analyses.
inline std::vector<double> idle_intervals_streamed(const std::string& name) {
  auto spec = trace::spec_by_name(name);
  if (!spec) throw std::runtime_error("unknown trace: " + name);
  trace::IdleAccumulator acc(recorded_service_model(*spec));
  trace::SyntheticGenerator gen(*spec);
  gen.generate([&acc](const trace::TraceRecord& r) { acc.add(r); });
  return acc.finish().idle_seconds;
}

/// Idle intervals of the thinned trace used by the policy-simulation
/// benches (thresholds chosen against the same thinned instance).
inline std::vector<double> idle_intervals_for(const std::string& name,
                                              std::int64_t max_records =
                                                  1'500'000) {
  const trace::Trace t = scaled_trace(name, max_records);
  const trace::IdleExtraction e = trace::extract_idle_intervals(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
  return e.idle_seconds;
}

/// The standard request-size sweep of Figs 1/4/5a.
inline std::vector<std::int64_t> size_sweep_1k_16m() {
  std::vector<std::int64_t> sizes;
  for (std::int64_t s = 1024; s <= 16 * 1024 * 1024; s *= 2) {
    sizes.push_back(s);
  }
  return sizes;
}

}  // namespace pscrub::bench
