// Figure 5: impact of the scrubbing parameters on isolated scrub
// throughput.
//  (a) request size 64K..16M at 128 regions: bigger is better; staggered
//      tracks sequential.
//  (b) number of regions 1..512 at 64 KB requests: throughput dips at 2
//      regions (long seeks), rises with region count, and overtakes the
//      sequential scrubber at >= ~128 regions (short seek + half rotation
//      beats the full-rotation miss).
#include <memory>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

double scrub_throughput(const disk::DiskProfile& profile, bool staggered,
                        std::int64_t request_bytes, int regions,
                        SimTime run_for = 60 * kSecond) {
  Simulator sim;
  disk::DiskModel d(sim, profile, 1);
  block::BlockLayer blk(sim, d, std::make_unique<block::NoopScheduler>());
  core::ScrubberConfig cfg;
  cfg.priority = block::IoPriority::kBestEffort;
  auto strategy = staggered
                      ? core::make_staggered(d.total_sectors(), request_bytes,
                                             regions)
                      : core::make_sequential(d.total_sectors(), request_bytes);
  core::Scrubber s(sim, blk, std::move(strategy), cfg);
  s.start();
  sim.run_until(run_for);
  return s.stats().throughput_mb_s(run_for);
}

void run() {
  const disk::DiskProfile ultrastar = disk::hitachi_ultrastar_15k450();
  const disk::DiskProfile fujitsu = disk::fujitsu_max3073rc();

  header("Figure 5a: scrub throughput vs request size (MB/s, 128 regions)");
  std::printf("%-8s %18s %18s %18s %18s\n", "size", "Ultrastar seq",
              "Ultrastar stag", "Fujitsu seq", "Fujitsu stag");
  row_rule(84);
  for (std::int64_t size = 64 * 1024; size <= 16 * 1024 * 1024; size *= 2) {
    std::printf("%-8s %18.1f %18.1f %18.1f %18.1f\n",
                size_label(size).c_str(),
                scrub_throughput(ultrastar, false, size, 0),
                scrub_throughput(ultrastar, true, size, 128),
                scrub_throughput(fujitsu, false, size, 0),
                scrub_throughput(fujitsu, true, size, 128));
  }

  header("Figure 5b: staggered throughput vs number of regions (MB/s, 64K)");
  const double seq_ultra = scrub_throughput(ultrastar, false, 64 * 1024, 0);
  const double seq_fuj = scrub_throughput(fujitsu, false, 64 * 1024, 0);
  std::printf("%-8s %18s %18s\n", "regions", "Ultrastar stag", "Fujitsu stag");
  row_rule(48);
  for (int regions : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    std::printf("%-8d %18.1f %18.1f\n", regions,
                scrub_throughput(ultrastar, true, 64 * 1024, regions),
                scrub_throughput(fujitsu, true, 64 * 1024, regions));
  }
  std::printf("%-8s %18.1f %18.1f   <- sequential reference\n", "(seq)",
              seq_ultra, seq_fuj);
  std::printf(
      "\nReading: staggered dips at few regions (stroke-length seeks), rises\n"
      "with region count, and matches/overtakes sequential at >= 128.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
