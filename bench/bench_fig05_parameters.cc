// Figure 5: impact of the scrubbing parameters on isolated scrub
// throughput.
//  (a) request size 64K..16M at 128 regions: bigger is better; staggered
//      tracks sequential.
//  (b) number of regions 1..512 at 64 KB requests: throughput dips at 2
//      regions (long seeks), rises with region count, and overtakes the
//      sequential scrubber at >= ~128 regions (short seek + half rotation
//      beats the full-rotation miss).
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

exp::ScenarioConfig scrub_case(exp::DiskKind disk, bool staggered,
                               std::int64_t request_bytes, int regions) {
  exp::ScenarioConfig cfg;
  cfg.disk.kind = disk;
  cfg.scheduler = exp::SchedulerKind::kNoop;
  cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
  cfg.scrubber.priority = block::IoPriority::kBestEffort;
  cfg.scrubber.strategy.kind = staggered ? exp::StrategyKind::kStaggered
                                         : exp::StrategyKind::kSequential;
  cfg.scrubber.strategy.request_bytes = request_bytes;
  cfg.scrubber.strategy.regions = regions;
  cfg.run_for = 60 * kSecond;
  return cfg;
}

void run() {
  constexpr auto kUltrastar = exp::DiskKind::kUltrastar15k450;
  constexpr auto kFujitsu = exp::DiskKind::kFujitsuMax3073rc;

  // One deterministic sweep per sub-figure: configs in row order, four
  // (5a) / two (5b) columns per row.
  std::vector<std::int64_t> sizes;
  for (std::int64_t size = 64 * 1024; size <= 16 * 1024 * 1024; size *= 2) {
    sizes.push_back(size);
  }
  std::vector<exp::ScenarioConfig> configs_a;
  for (std::int64_t size : sizes) {
    configs_a.push_back(scrub_case(kUltrastar, false, size, 0));
    configs_a.push_back(scrub_case(kUltrastar, true, size, 128));
    configs_a.push_back(scrub_case(kFujitsu, false, size, 0));
    configs_a.push_back(scrub_case(kFujitsu, true, size, 128));
  }
  const auto results_a = exp::run_scenarios(configs_a);

  header("Figure 5a: scrub throughput vs request size (MB/s, 128 regions)");
  std::printf("%-8s %18s %18s %18s %18s\n", "size", "Ultrastar seq",
              "Ultrastar stag", "Fujitsu seq", "Fujitsu stag");
  row_rule(84);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-8s %18.1f %18.1f %18.1f %18.1f\n",
                size_label(sizes[i]).c_str(), results_a[4 * i].scrub_mb_s,
                results_a[4 * i + 1].scrub_mb_s, results_a[4 * i + 2].scrub_mb_s,
                results_a[4 * i + 3].scrub_mb_s);
  }

  const std::vector<int> regions = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  std::vector<exp::ScenarioConfig> configs_b;
  for (int r : regions) {
    configs_b.push_back(scrub_case(kUltrastar, true, 64 * 1024, r));
    configs_b.push_back(scrub_case(kFujitsu, true, 64 * 1024, r));
  }
  configs_b.push_back(scrub_case(kUltrastar, false, 64 * 1024, 0));
  configs_b.push_back(scrub_case(kFujitsu, false, 64 * 1024, 0));
  const auto results_b = exp::run_scenarios(configs_b);

  header("Figure 5b: staggered throughput vs number of regions (MB/s, 64K)");
  std::printf("%-8s %18s %18s\n", "regions", "Ultrastar stag", "Fujitsu stag");
  row_rule(48);
  for (std::size_t i = 0; i < regions.size(); ++i) {
    std::printf("%-8d %18.1f %18.1f\n", regions[i],
                results_b[2 * i].scrub_mb_s, results_b[2 * i + 1].scrub_mb_s);
  }
  std::printf("%-8s %18.1f %18.1f   <- sequential reference\n", "(seq)",
              results_b[2 * regions.size()].scrub_mb_s,
              results_b[2 * regions.size() + 1].scrub_mb_s);
  std::printf(
      "\nReading: staggered dips at few regions (stroke-length seeks), rises\n"
      "with region count, and matches/overtakes sequential at >= 128.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
