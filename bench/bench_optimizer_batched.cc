// Microbenchmarks (google-benchmark) for the batched Waiting evaluator
// and the optimizer built on it: what bench_table3_optimizer spends its
// time on, isolated so the perf gate (bench/compare_perf.py) can hold the
// speedup. BM_WaitingProbeReference vs BM_WaitingProbeBatched is the
// headline ratio: one threshold probe as a full O(records) replay vs an
// O(intervals) walk of the shared core::IdleDecomposition.
#include <benchmark/benchmark.h>

#include "pscrub.h"

namespace pscrub {
namespace {

constexpr std::int64_t kTraceRecords = 400'000;

struct Workload {
  trace::Trace trace;
  std::vector<SimTime> services;
  core::IdleDecomposition decomposition;
};

/// Thinned MSRusr1 (the burstiest Table III trace) under the Ultrastar
/// service model; built once and shared by every benchmark.
const Workload& workload() {
  static const Workload w = [] {
    Workload out;
    const auto spec = trace::spec_by_name("MSRusr1");
    const double scale =
        static_cast<double>(kTraceRecords) /
        static_cast<double>(spec->target_requests);
    out.trace = trace::SyntheticGenerator(*spec).generate_trace(scale);
    out.services = core::precompute_services(
        out.trace,
        core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
    out.decomposition =
        core::IdleDecomposition::from_trace(out.trace, out.services);
    return out;
  }();
  return w;
}

constexpr SimTime kProbeThreshold = 50 * kMillisecond;
constexpr std::int64_t kProbeBytes = 1024 * 1024;

void BM_IdleDecompositionBuild(benchmark::State& state) {
  const Workload& w = workload();
  for (auto _ : state) {
    const auto d = core::IdleDecomposition::from_trace(w.trace, w.services);
    benchmark::DoNotOptimize(d.interval_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.trace.size()));
}
BENCHMARK(BM_IdleDecompositionBuild);

void BM_WaitingProbeReference(benchmark::State& state) {
  const Workload& w = workload();
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  core::PolicySimConfig cfg;
  cfg.scrub_service = core::make_scrub_service(p);
  cfg.services = &w.services;
  cfg.sizer = core::ScrubSizer::fixed(kProbeBytes);
  for (auto _ : state) {
    core::WaitingPolicy policy(kProbeThreshold);
    const auto r = core::run_policy_sim_reference(w.trace, policy, cfg);
    benchmark::DoNotOptimize(r.scrubbed_bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.trace.size()));
}
BENCHMARK(BM_WaitingProbeReference);

void BM_WaitingProbeBatched(benchmark::State& state) {
  const Workload& w = workload();
  const auto request = core::make_waiting_grid_request(
      disk::hitachi_ultrastar_15k450(), kProbeBytes);
  for (auto _ : state) {
    const auto r = core::run_waiting_single(w.decomposition, request,
                                            kProbeThreshold);
    benchmark::DoNotOptimize(r.scrubbed_bytes);
  }
  // Same item metric as the reference probe so it/s ratios read directly
  // as the per-probe speedup.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.trace.size()));
}
BENCHMARK(BM_WaitingProbeBatched);

void BM_WaitingGrid(benchmark::State& state) {
  const Workload& w = workload();
  const auto request = core::make_waiting_grid_request(
      disk::hitachi_ultrastar_15k450(), kProbeBytes);
  // Log-spaced grid, 1 ms .. ~17 min: the threshold sweep Fig 15 style
  // studies evaluate.
  std::vector<SimTime> thresholds;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    thresholds.push_back(kMillisecond << (i % 20));
  }
  for (auto _ : state) {
    const auto rs = core::run_waiting_grid(
        w.decomposition, request, std::span<const SimTime>(thresholds));
    benchmark::DoNotOptimize(rs.size());
  }
  // One grid pass replaces |thresholds| full replays.
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(w.trace.size()));
}
BENCHMARK(BM_WaitingGrid)->Arg(32);

void BM_OptimizeTable3(benchmark::State& state) {
  const Workload& w = workload();
  core::OptimizerConfig oc;
  oc.scrub_service = core::make_scrub_service(disk::hitachi_ultrastar_15k450());
  oc.services = &w.services;
  oc.binary_search_iters = 9;
  core::SlowdownGoal goal;
  goal.mean = from_seconds(2e-3);
  for (auto _ : state) {
    const auto best = core::optimize(w.trace, oc, goal);
    benchmark::DoNotOptimize(best.scrub_mb_s);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.trace.size()));
}
BENCHMARK(BM_OptimizeTable3);

}  // namespace
}  // namespace pscrub

BENCHMARK_MAIN();
