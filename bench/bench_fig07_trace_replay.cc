// Figure 7: response-time CDFs of foreground requests while replaying a
// real-world trace (MSRsrc11) against different scrubber configurations:
// no scrubber, back-to-back via CFQ Idle, and Default priority with 0 ms
// and 64 ms inter-request delays -- each for sequential and staggered.
//
// Paper results reproduced: back-to-back scrubbing (even via CFQ Idle)
// visibly shifts the response-time distribution right; a 64 ms delay
// protects the foreground but drops scrub throughput by over an order of
// magnitude; staggered == sequential throughout.
#include <utility>
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr SimTime kWindow = 1 * kHour;

// Extracts the busiest `window` of the trace (re-based to time zero), so
// the CDF reflects a representative load rather than a week-start trough.
trace::Trace window_of(const trace::Trace& t, SimTime window) {
  std::size_t best_begin = 0;
  std::size_t best_count = 0;
  std::size_t begin = 0;
  for (std::size_t end = 0; end < t.records.size(); ++end) {
    while (t.records[end].arrival - t.records[begin].arrival > window) {
      ++begin;
    }
    if (end - begin + 1 > best_count) {
      best_count = end - begin + 1;
      best_begin = begin;
    }
  }
  trace::Trace out;
  out.name = t.name;
  out.duration = window;
  const SimTime base =
      t.records.empty() ? 0 : t.records[best_begin].arrival;
  for (std::size_t i = best_begin; i < t.records.size(); ++i) {
    const SimTime at = t.records[i].arrival - base;
    if (at >= window) break;
    trace::TraceRecord r = t.records[i];
    r.arrival = at;
    out.records.push_back(r);
  }
  return out;
}

exp::ScenarioConfig replay_case(const trace::Trace& t, const char* label,
                                bool with_scrubber, bool staggered,
                                bool cfq_idle, SimTime delay) {
  exp::ScenarioConfig cfg;
  cfg.label = label;
  cfg.disk.kind = exp::DiskKind::kUltrastar15k450;
  cfg.scheduler = exp::SchedulerKind::kCfq;
  cfg.workload.kind = exp::WorkloadKind::kTraceReplay;
  cfg.workload.trace = &t;
  cfg.workload.keep_response_samples = true;
  if (with_scrubber) {
    cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
    cfg.scrubber.priority = cfq_idle ? block::IoPriority::kIdle
                                     : block::IoPriority::kBestEffort;
    cfg.scrubber.inter_request_delay = delay;
    cfg.scrubber.strategy.kind = staggered ? exp::StrategyKind::kStaggered
                                           : exp::StrategyKind::kSequential;
    cfg.scrubber.strategy.request_bytes = 64 * 1024;
    cfg.scrubber.strategy.regions = 128;
  }
  cfg.run_for = kWindow + kMinute;
  return cfg;
}

void run() {
  header("Figure 7: response-time CDFs replaying MSRsrc11 (busiest hour)");
  const trace::Trace full = scaled_trace("MSRsrc11", 3'000'000);
  const trace::Trace t = window_of(full, kWindow);
  std::printf("replayed %zu requests over %s\n", t.size(),
              format_duration(kWindow).c_str());

  const std::vector<exp::ScenarioConfig> configs = {
      replay_case(t, "No scrubber", false, false, false, 0),
      replay_case(t, "CFQ (Seql)", true, false, true, 0),
      replay_case(t, "CFQ (Stag)", true, true, true, 0),
      replay_case(t, "0ms (Seql)", true, false, false, 0),
      replay_case(t, "0ms (Stag)", true, true, false, 0),
      replay_case(t, "64ms (Seql)", true, false, false, 64 * kMillisecond),
      replay_case(t, "64ms (Stag)", true, true, false, 64 * kMillisecond),
  };
  auto results = exp::run_scenarios(configs);

  std::printf("\n%-14s %10s\n", "config", "scrub r/s");
  row_rule(26);
  for (const auto& r : results) {
    std::printf("%-14s %10.0f\n", r.label.c_str(),
                static_cast<double>(r.scrub_requests) / to_seconds(kWindow));
  }

  std::vector<stats::Ecdf> ecdfs;
  for (auto& r : results) {
    ecdfs.emplace_back(std::move(r.response_seconds));
  }

  std::printf("\nCDF of response times, P(resp <= x):\n%-12s", "x (s)");
  for (const auto& r : results) std::printf(" %11s", r.label.c_str());
  std::printf("\n");
  row_rule(12 + 12 * static_cast<int>(results.size()));
  for (double x : {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 10.0}) {
    std::printf("%-12g", x);
    for (const auto& e : ecdfs) std::printf(" %11.3f", e.at(x));
    std::printf("\n");
  }
  std::printf(
      "\nReading: back-to-back configs shift the CDF right; 64ms delays are\n"
      "gentle on the foreground but scrub >10x slower; Stag == Seql.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
