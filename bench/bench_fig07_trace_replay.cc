// Figure 7: response-time CDFs of foreground requests while replaying a
// real-world trace (MSRsrc11) against different scrubber configurations:
// no scrubber, back-to-back via CFQ Idle, and Default priority with 0 ms
// and 64 ms inter-request delays -- each for sequential and staggered.
//
// Paper results reproduced: back-to-back scrubbing (even via CFQ Idle)
// visibly shifts the response-time distribution right; a 64 ms delay
// protects the foreground but drops scrub throughput by over an order of
// magnitude; staggered == sequential throughout.
#include <memory>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr SimTime kWindow = 1 * kHour;

// Extracts the busiest `window` of the trace (re-based to time zero), so
// the CDF reflects a representative load rather than a week-start trough.
trace::Trace window_of(const trace::Trace& t, SimTime window) {
  std::size_t best_begin = 0;
  std::size_t best_count = 0;
  std::size_t begin = 0;
  for (std::size_t end = 0; end < t.records.size(); ++end) {
    while (t.records[end].arrival - t.records[begin].arrival > window) {
      ++begin;
    }
    if (end - begin + 1 > best_count) {
      best_count = end - begin + 1;
      best_begin = begin;
    }
  }
  trace::Trace out;
  out.name = t.name;
  out.duration = window;
  const SimTime base =
      t.records.empty() ? 0 : t.records[best_begin].arrival;
  for (std::size_t i = best_begin; i < t.records.size(); ++i) {
    const SimTime at = t.records[i].arrival - base;
    if (at >= window) break;
    trace::TraceRecord r = t.records[i];
    r.arrival = at;
    out.records.push_back(r);
  }
  return out;
}

struct Curve {
  std::string label;
  double scrub_req_s = 0.0;
  stats::Ecdf ecdf{{}};
};

Curve replay(const trace::Trace& t, const char* label, bool with_scrubber,
             bool staggered, bool cfq_idle, SimTime delay) {
  Simulator sim;
  disk::DiskModel d(sim, disk::hitachi_ultrastar_15k450(), 1);
  block::BlockLayer blk(sim, d, std::make_unique<block::CfqScheduler>());
  workload::TraceReplayWorkload w(sim, blk, t);
  w.metrics().keep_samples = true;

  std::unique_ptr<core::Scrubber> s;
  if (with_scrubber) {
    core::ScrubberConfig cfg;
    cfg.priority = cfq_idle ? block::IoPriority::kIdle
                            : block::IoPriority::kBestEffort;
    cfg.inter_request_delay = delay;
    auto strategy =
        staggered ? core::make_staggered(d.total_sectors(), 64 * 1024, 128)
                  : core::make_sequential(d.total_sectors(), 64 * 1024);
    s = std::make_unique<core::Scrubber>(sim, blk, std::move(strategy), cfg);
    s->start();
  }
  w.start();
  sim.run_until(kWindow + kMinute);

  Curve c;
  c.label = label;
  c.scrub_req_s =
      s ? static_cast<double>(s->stats().requests) / to_seconds(kWindow) : 0.0;
  c.ecdf = stats::Ecdf(std::move(w.metrics().response_seconds));
  return c;
}

void run() {
  header("Figure 7: response-time CDFs replaying MSRsrc11 (busiest hour)");
  const trace::Trace full = scaled_trace("MSRsrc11", 3'000'000);
  const trace::Trace t = window_of(full, kWindow);
  std::printf("replayed %zu requests over %s\n", t.size(),
              format_duration(kWindow).c_str());

  std::vector<Curve> curves;
  curves.push_back(replay(t, "No scrubber", false, false, false, 0));
  curves.push_back(replay(t, "CFQ (Seql)", true, false, true, 0));
  curves.push_back(replay(t, "CFQ (Stag)", true, true, true, 0));
  curves.push_back(replay(t, "0ms (Seql)", true, false, false, 0));
  curves.push_back(replay(t, "0ms (Stag)", true, true, false, 0));
  curves.push_back(
      replay(t, "64ms (Seql)", true, false, false, 64 * kMillisecond));
  curves.push_back(
      replay(t, "64ms (Stag)", true, true, false, 64 * kMillisecond));

  std::printf("\n%-14s %10s\n", "config", "scrub r/s");
  row_rule(26);
  for (const auto& c : curves) {
    std::printf("%-14s %10.0f\n", c.label.c_str(), c.scrub_req_s);
  }

  std::printf("\nCDF of response times, P(resp <= x):\n%-12s", "x (s)");
  for (const auto& c : curves) std::printf(" %11s", c.label.c_str());
  std::printf("\n");
  row_rule(12 + 12 * static_cast<int>(curves.size()));
  for (double x : {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 10.0}) {
    std::printf("%-12g", x);
    for (const auto& c : curves) std::printf(" %11.3f", c.ecdf.at(x));
    std::printf("\n");
  }
  std::printf(
      "\nReading: back-to-back configs shift the CDF right; 64ms delays are\n"
      "gentle on the foreground but scrub >10x slower; Stag == Seql.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
