// Microbenchmarks (google-benchmark) for the hot paths that make the
// experiment suite tractable: the event queue, the trace generator, idle
// extraction, and the trace-driven policy simulator.
#include <benchmark/benchmark.h>

#include "pscrub.h"

namespace pscrub {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.after((i * 7919) % 100000, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_TraceGeneration(benchmark::State& state) {
  trace::TraceSpec spec;
  spec.name = "micro";
  spec.seed = 7;
  spec.duration = kHour;
  spec.target_requests = state.range(0);
  for (auto _ : state) {
    trace::SyntheticGenerator gen(spec);
    std::int64_t n = 0;
    gen.generate([&](const trace::TraceRecord&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(100000);

void BM_IdleExtraction(benchmark::State& state) {
  trace::TraceSpec spec;
  spec.name = "micro";
  spec.seed = 7;
  spec.duration = kHour;
  spec.target_requests = 200000;
  const trace::Trace t = trace::SyntheticGenerator(spec).generate_trace();
  for (auto _ : state) {
    const auto e = trace::extract_idle_intervals(t, kMillisecond);
    benchmark::DoNotOptimize(e.idle_seconds.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_IdleExtraction);

void BM_PolicySimWaiting(benchmark::State& state) {
  trace::TraceSpec spec;
  spec.name = "micro";
  spec.seed = 7;
  spec.duration = kHour;
  spec.target_requests = 200000;
  const trace::Trace t = trace::SyntheticGenerator(spec).generate_trace();
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  for (auto _ : state) {
    core::WaitingPolicy w(64 * kMillisecond);
    core::PolicySimConfig c;
    c.foreground_service = core::make_foreground_service(p);
    c.scrub_service = core::make_scrub_service(p);
    const auto r = core::run_policy_sim(t, w, c);
    benchmark::DoNotOptimize(r.scrubbed_bytes);
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_PolicySimWaiting);

void BM_DiskModelVerifyStream(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
    p.capacity_bytes = 4LL << 30;
    disk::DiskModel d(sim, p, 1);
    disk::Lbn lbn = 0;
    for (int i = 0; i < 1000; ++i) {
      d.submit({disk::CommandKind::kVerifyScsi, lbn, 128}, nullptr);
      sim.run();
      lbn += 128;
    }
    benchmark::DoNotOptimize(d.counters().verifies);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DiskModelVerifyStream);

void BM_ArFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs;
  double x = 0.0;
  for (int i = 0; i < 4096; ++i) {
    x = 0.7 * x + rng.normal(0.0, 1.0);
    xs.push_back(x + 10.0);
  }
  for (auto _ : state) {
    const auto m = stats::fit_ar_aic(xs, 10);
    benchmark::DoNotOptimize(m.order());
  }
}
BENCHMARK(BM_ArFit);

}  // namespace
}  // namespace pscrub

BENCHMARK_MAIN();
