// Microbenchmarks (google-benchmark) for the hot paths that make the
// experiment suite tractable: the event queue, the trace generator, idle
// extraction, and the trace-driven policy simulator.
#include <benchmark/benchmark.h>

#include "pscrub.h"

namespace pscrub {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.after((i * 7919) % 100000, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_TraceGeneration(benchmark::State& state) {
  trace::TraceSpec spec;
  spec.name = "micro";
  spec.seed = 7;
  spec.duration = kHour;
  spec.target_requests = state.range(0);
  for (auto _ : state) {
    trace::SyntheticGenerator gen(spec);
    std::int64_t n = 0;
    gen.generate([&](const trace::TraceRecord&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(100000);

void BM_IdleExtraction(benchmark::State& state) {
  trace::TraceSpec spec;
  spec.name = "micro";
  spec.seed = 7;
  spec.duration = kHour;
  spec.target_requests = 200000;
  const trace::Trace t = trace::SyntheticGenerator(spec).generate_trace();
  for (auto _ : state) {
    const auto e = trace::extract_idle_intervals(t, kMillisecond);
    benchmark::DoNotOptimize(e.idle_seconds.size());
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_IdleExtraction);

void BM_PolicySimWaiting(benchmark::State& state) {
  trace::TraceSpec spec;
  spec.name = "micro";
  spec.seed = 7;
  spec.duration = kHour;
  spec.target_requests = 200000;
  const trace::Trace t = trace::SyntheticGenerator(spec).generate_trace();
  for (auto _ : state) {
    exp::PolicySimScenario s;
    s.trace = &t;
    s.policy.kind = exp::PolicyKind::kWaiting;
    s.policy.threshold = 64 * kMillisecond;
    const auto r = exp::run_policy_scenario(s);
    benchmark::DoNotOptimize(r.scrubbed_bytes);
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_PolicySimWaiting);

void BM_SweepFanout(benchmark::State& state) {
  const std::size_t tasks = 64;
  for (auto _ : state) {
    obs::Registry merged;
    exp::SweepOptions options;
    options.workers = static_cast<int>(state.range(0));
    options.merge_into = &merged;
    const auto out = exp::sweep<std::uint64_t>(
        tasks,
        [](exp::TaskContext& ctx) {
          ctx.registry.counter("tasks") += 1;
          return ctx.seed;
        },
        options);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_SweepFanout)->Arg(1)->Arg(4);

void BM_DiskModelVerifyStream(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
    p.capacity_bytes = 4LL << 30;
    disk::DiskModel d(sim, p, 1);
    disk::Lbn lbn = 0;
    for (int i = 0; i < 1000; ++i) {
      d.submit({disk::CommandKind::kVerifyScsi, lbn, 128}, nullptr);
      sim.run();
      lbn += 128;
    }
    benchmark::DoNotOptimize(d.counters().verifies);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DiskModelVerifyStream);

void BM_ArFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs;
  double x = 0.0;
  for (int i = 0; i < 4096; ++i) {
    x = 0.7 * x + rng.normal(0.0, 1.0);
    xs.push_back(x + 10.0);
  }
  for (auto _ : state) {
    const auto m = stats::fit_ar_aic(xs, 10);
    benchmark::DoNotOptimize(m.order());
  }
}
BENCHMARK(BM_ArFit);

}  // namespace
}  // namespace pscrub

BENCHMARK_MAIN();
