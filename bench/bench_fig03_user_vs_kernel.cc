// Figure 3: user-level (ioctl soft-barrier) vs kernel-level scrubber under
// different CFQ priorities, against a highly sequential foreground
// workload with exponential think times.
//
// Paper results reproduced:
//  - priorities have no effect on the user-level scrubber (soft barriers
//    bypass prioritization);
//  - the kernel scrubber at Default priority exploits think time and
//    starves the workload;
//  - the kernel scrubber at Idle priority protects the workload;
//  - with a 16 ms inter-request delay the scrubber caps at ~64KB/16ms.
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr SimTime kRun = 120 * kSecond;

void run() {
  header("Figure 3: user- (U) vs kernel-level (K) scrubber (MB/s)");
  struct Case {
    const char* label;
    bool scrub;
    core::IssuePath path;
    block::IoPriority prio;
    SimTime delay;
  };
  const Case cases[] = {
      {"None", false, core::IssuePath::kKernel, block::IoPriority::kIdle, 0},
      {"Idle (U)", true, core::IssuePath::kUser, block::IoPriority::kIdle, 0},
      {"Idle (K)", true, core::IssuePath::kKernel, block::IoPriority::kIdle,
       0},
      {"Default (U)", true, core::IssuePath::kUser,
       block::IoPriority::kBestEffort, 0},
      {"Default (K)", true, core::IssuePath::kKernel,
       block::IoPriority::kBestEffort, 0},
      {"Def. 16ms (U)", true, core::IssuePath::kUser,
       block::IoPriority::kBestEffort, 16 * kMillisecond},
      {"Def. 16ms (K)", true, core::IssuePath::kKernel,
       block::IoPriority::kBestEffort, 16 * kMillisecond},
  };

  std::vector<exp::ScenarioConfig> configs;
  for (const Case& c : cases) {
    exp::ScenarioConfig cfg;
    cfg.disk.kind = exp::DiskKind::kUltrastar15k450;
    cfg.scheduler = exp::SchedulerKind::kCfq;
    cfg.workload.kind = exp::WorkloadKind::kSequentialChunks;
    cfg.workload.seed = 42;  // 8MB chunks, 64K reads, 100ms thinks
    if (c.scrub) {
      cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
      cfg.scrubber.path = c.path;
      cfg.scrubber.priority = c.prio;
      cfg.scrubber.inter_request_delay = c.delay;
      cfg.scrubber.strategy.request_bytes = 64 * 1024;
    }
    cfg.run_for = kRun;
    configs.push_back(cfg);
  }
  const auto results = exp::run_scenarios(configs);

  std::printf("%-16s %14s %14s\n", "scrubber", "workload MB/s",
              "scrubber MB/s");
  row_rule(46);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-16s %14.2f %14.2f\n", cases[i].label,
                results[i].workload_mb_s, results[i].scrub_mb_s);
  }
  std::printf(
      "\nReading: (U) rows identical across priorities; Default (K) starves\n"
      "the workload; 16 ms delay caps scrubbing near 64KB/16ms ~ 3.9 MB/s.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
