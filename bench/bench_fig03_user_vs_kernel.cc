// Figure 3: user-level (ioctl soft-barrier) vs kernel-level scrubber under
// different CFQ priorities, against a highly sequential foreground
// workload with exponential think times.
//
// Paper results reproduced:
//  - priorities have no effect on the user-level scrubber (soft barriers
//    bypass prioritization);
//  - the kernel scrubber at Default priority exploits think time and
//    starves the workload;
//  - the kernel scrubber at Idle priority protects the workload;
//  - with a 16 ms inter-request delay the scrubber caps at ~64KB/16ms.
#include <memory>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr SimTime kRun = 120 * kSecond;

struct Result {
  double workload_mb_s = 0.0;
  double scrub_mb_s = 0.0;
};

Result run_case(bool with_scrubber, core::IssuePath path,
                block::IoPriority prio, SimTime delay) {
  Simulator sim;
  disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  disk::DiskModel d(sim, p, 1);
  block::BlockLayer blk(sim, d, std::make_unique<block::CfqScheduler>());

  workload::SyntheticConfig wcfg;  // 8MB chunks, 64K reads, 100ms thinks
  workload::SequentialChunkWorkload w(sim, blk, wcfg, 42);
  w.start();

  std::unique_ptr<core::Scrubber> s;
  if (with_scrubber) {
    core::ScrubberConfig scfg;
    scfg.path = path;
    scfg.priority = prio;
    scfg.inter_request_delay = delay;
    s = std::make_unique<core::Scrubber>(
        sim, blk, core::make_sequential(d.total_sectors(), 64 * 1024), scfg);
    s->start();
  }
  sim.run_until(kRun);
  Result r;
  r.workload_mb_s = w.metrics().throughput_mb_s(kRun);
  r.scrub_mb_s = s ? s->stats().throughput_mb_s(kRun) : 0.0;
  return r;
}

void run() {
  header("Figure 3: user- (U) vs kernel-level (K) scrubber (MB/s)");
  struct Case {
    const char* label;
    bool scrub;
    core::IssuePath path;
    block::IoPriority prio;
    SimTime delay;
  };
  const Case cases[] = {
      {"None", false, core::IssuePath::kKernel, block::IoPriority::kIdle, 0},
      {"Idle (U)", true, core::IssuePath::kUser, block::IoPriority::kIdle, 0},
      {"Idle (K)", true, core::IssuePath::kKernel, block::IoPriority::kIdle,
       0},
      {"Default (U)", true, core::IssuePath::kUser,
       block::IoPriority::kBestEffort, 0},
      {"Default (K)", true, core::IssuePath::kKernel,
       block::IoPriority::kBestEffort, 0},
      {"Def. 16ms (U)", true, core::IssuePath::kUser,
       block::IoPriority::kBestEffort, 16 * kMillisecond},
      {"Def. 16ms (K)", true, core::IssuePath::kKernel,
       block::IoPriority::kBestEffort, 16 * kMillisecond},
  };

  std::printf("%-16s %14s %14s\n", "scrubber", "workload MB/s",
              "scrubber MB/s");
  row_rule(46);
  for (const Case& c : cases) {
    const Result r = run_case(c.scrub, c.path, c.prio, c.delay);
    std::printf("%-16s %14.2f %14.2f\n", c.label, r.workload_mb_s,
                r.scrub_mb_s);
  }
  std::printf(
      "\nReading: (U) rows identical across priorities; Default (K) starves\n"
      "the workload; 16 ms delay caps scrubbing near 64KB/16ms ~ 3.9 MB/s.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
