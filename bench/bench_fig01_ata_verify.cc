// Figure 1: response times for different ATA VERIFY sizes, with the
// on-disk cache enabled and disabled, on two SATA drives and one SAS drive.
//
// Paper result: disabling the cache changes ATA VERIFY response times
// dramatically (0.3 ms -> 4-8 ms) but leaves the SAS drive unchanged --
// evidence that ATA VERIFY is (incorrectly) answered from the cache.
#include "bench/common.h"

namespace pscrub::bench {
namespace {

struct DriveCase {
  const char* label;
  disk::DiskProfile profile;
  disk::CommandKind kind;
};

void run() {
  header("Figure 1: ATA VERIFY response times vs request size (ms)");
  std::vector<DriveCase> drives = {
      {"WD Caviar (SATA)", disk::wd_caviar(), disk::CommandKind::kVerifyAta},
      {"Hitachi Deskstar (SATA)", disk::hitachi_deskstar(),
       disk::CommandKind::kVerifyAta},
      {"Hitachi Ultrastar (SAS)", disk::hitachi_ultrastar_15k450(),
       disk::CommandKind::kVerifyScsi},
  };

  std::printf("%-10s", "size");
  for (const auto& d : drives) {
    std::printf(" | %-24s", d.label);
  }
  std::printf("\n%-10s", "");
  for (std::size_t i = 0; i < drives.size(); ++i) {
    std::printf(" | %11s %11s", "cache-off", "cache-on");
  }
  std::printf("\n");
  row_rule(10 + 27 * static_cast<int>(drives.size()));

  for (std::int64_t size : size_sweep_1k_16m()) {
    std::printf("%-10s", size_label(size).c_str());
    for (const auto& d : drives) {
      disk::DiskProfile off = d.profile;
      off.cache_enabled = false;
      disk::DiskProfile on = d.profile;
      on.cache_enabled = true;
      const double t_off = exp::measure_sequential_verify(off, d.kind, size);
      const double t_on = exp::measure_sequential_verify(on, d.kind, size);
      std::printf(" | %11.3f %11.3f", t_off, t_on);
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: SATA drives answer VERIFY from the cache when it is on\n"
      "(sub-ms, size-insensitive); the SAS drive is media-bound either way.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
