// Figure 6: throughput of sequential and staggered scrubbing alongside the
// two synthetic foreground workloads (64 KB scrub requests, 128 regions).
//
// Scheduling modes, as in the paper: back-to-back through CFQ's Idle
// class, and Default-priority with fixed inter-request delays 0..256 ms.
//
// Paper results reproduced: CFQ gives the best combined throughput but
// costs the workload ~20%; delays >= 16 ms restore the workload while
// crippling the scrubber (64KB/(delay+service)); staggered == sequential
// at 128 regions; the random workload's seeks lower scrub throughput.
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr SimTime kRun = 120 * kSecond;

struct Mode {
  const char* label;
  bool cfq_idle;
  SimTime delay;
};

exp::ScenarioConfig make_case(exp::WorkloadKind workload, bool with_scrubber,
                              bool staggered, bool cfq_idle, SimTime delay) {
  exp::ScenarioConfig cfg;
  cfg.disk.kind = exp::DiskKind::kUltrastar15k450;
  cfg.scheduler = exp::SchedulerKind::kCfq;
  cfg.workload.kind = workload;
  cfg.workload.seed = 42;
  if (with_scrubber) {
    cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
    cfg.scrubber.priority = cfq_idle ? block::IoPriority::kIdle
                                     : block::IoPriority::kBestEffort;
    cfg.scrubber.inter_request_delay = delay;
    cfg.scrubber.strategy.kind = staggered ? exp::StrategyKind::kStaggered
                                           : exp::StrategyKind::kSequential;
    cfg.scrubber.strategy.request_bytes = 64 * 1024;
    cfg.scrubber.strategy.regions = 128;
  }
  cfg.run_for = kRun;
  return cfg;
}

std::vector<Mode> modes() {
  std::vector<Mode> m = {{"CFQ", true, 0}};
  static char labels[7][16];
  int i = 0;
  // A plain scalar, not a SimTime: the value is a millisecond *count*
  // until the kMillisecond multiply below converts it.
  for (const long long delay_ms : {0, 8, 16, 32, 64, 128, 256}) {
    std::snprintf(labels[i], sizeof(labels[i]), "%lldms",
                  static_cast<long long>(delay_ms));
    m.push_back({labels[i], false, delay_ms * kMillisecond});
    ++i;
  }
  return m;
}

void run_workload(exp::WorkloadKind workload, const char* title) {
  const std::vector<Mode> ms = modes();

  // Configs in print order: the no-scrubber baseline, then (seq, stag)
  // per mode; one deterministic sweep executes them all.
  std::vector<exp::ScenarioConfig> configs;
  configs.push_back(make_case(workload, false, false, false, 0));
  for (const Mode& m : ms) {
    configs.push_back(make_case(workload, true, false, m.cfq_idle, m.delay));
    configs.push_back(make_case(workload, true, true, m.cfq_idle, m.delay));
  }
  const auto results = exp::run_scenarios(configs);

  header(title);
  std::printf("%-10s %14s | %12s %12s | %12s %12s\n", "mode", "",
              "seq scrub", "workload", "stag scrub", "workload");
  row_rule(80);
  std::printf("%-10s %14s | %12s %12.1f | %12s %12.1f\n", "None", "", "-",
              results[0].workload_mb_s, "-", results[0].workload_mb_s);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const exp::ScenarioResult& seq = results[1 + 2 * i];
    const exp::ScenarioResult& stag = results[2 + 2 * i];
    std::printf("%-10s %14s | %12.1f %12.1f | %12.1f %12.1f\n", ms[i].label,
                "", seq.scrub_mb_s, seq.workload_mb_s, stag.scrub_mb_s,
                stag.workload_mb_s);
  }
}

void run() {
  run_workload(exp::WorkloadKind::kSequentialChunks,
               "Figure 6a: sequential foreground workload (MB/s)");
  run_workload(exp::WorkloadKind::kRandomReads,
               "Figure 6b: random foreground workload (MB/s)");
  std::printf(
      "\nReading: delays >= 16ms restore the workload but cap scrubbing at\n"
      "64KB/(delay+service); staggered == sequential at 128 regions.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
