// Figure 6: throughput of sequential and staggered scrubbing alongside the
// two synthetic foreground workloads (64 KB scrub requests, 128 regions).
//
// Scheduling modes, as in the paper: back-to-back through CFQ's Idle
// class, and Default-priority with fixed inter-request delays 0..256 ms.
//
// Paper results reproduced: CFQ gives the best combined throughput but
// costs the workload ~20%; delays >= 16 ms restore the workload while
// crippling the scrubber (64KB/(delay+service)); staggered == sequential
// at 128 regions; the random workload's seeks lower scrub throughput.
#include <memory>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr SimTime kRun = 120 * kSecond;

struct Result {
  double workload_mb_s = 0.0;
  double scrub_mb_s = 0.0;
};

template <typename Workload>
Result run_case(bool with_scrubber, bool staggered, bool use_cfq_idle,
                SimTime delay) {
  Simulator sim;
  disk::DiskModel d(sim, disk::hitachi_ultrastar_15k450(), 1);
  block::BlockLayer blk(sim, d, std::make_unique<block::CfqScheduler>());

  workload::SyntheticConfig wcfg;
  Workload w(sim, blk, wcfg, 42);
  w.start();

  std::unique_ptr<core::Scrubber> s;
  if (with_scrubber) {
    core::ScrubberConfig scfg;
    scfg.priority = use_cfq_idle ? block::IoPriority::kIdle
                                 : block::IoPriority::kBestEffort;
    scfg.inter_request_delay = delay;
    auto strategy =
        staggered ? core::make_staggered(d.total_sectors(), 64 * 1024, 128)
                  : core::make_sequential(d.total_sectors(), 64 * 1024);
    s = std::make_unique<core::Scrubber>(sim, blk, std::move(strategy), scfg);
    s->start();
  }
  sim.run_until(kRun);
  return {w.metrics().throughput_mb_s(kRun),
          s ? s->stats().throughput_mb_s(kRun) : 0.0};
}

template <typename Workload>
void run_workload(const char* title) {
  header(title);
  std::printf("%-10s %14s | %12s %12s | %12s %12s\n", "mode", "",
              "seq scrub", "workload", "stag scrub", "workload");
  row_rule(80);

  auto print_case = [](const char* label, bool cfq, SimTime delay) {
    const Result seq = run_case<Workload>(true, false, cfq, delay);
    const Result stag = run_case<Workload>(true, true, cfq, delay);
    std::printf("%-10s %14s | %12.1f %12.1f | %12.1f %12.1f\n", label, "",
                seq.scrub_mb_s, seq.workload_mb_s, stag.scrub_mb_s,
                stag.workload_mb_s);
  };

  const Result none = run_case<Workload>(false, false, false, 0);
  std::printf("%-10s %14s | %12s %12.1f | %12s %12.1f\n", "None", "", "-",
              none.workload_mb_s, "-", none.workload_mb_s);
  print_case("CFQ", true, 0);
  for (SimTime delay_ms : {0, 8, 16, 32, 64, 128, 256}) {
    char label[16];
    std::snprintf(label, sizeof(label), "%lldms",
                  static_cast<long long>(delay_ms));
    print_case(label, false, delay_ms * kMillisecond);
  }
}

void run() {
  run_workload<workload::SequentialChunkWorkload>(
      "Figure 6a: sequential foreground workload (MB/s)");
  run_workload<workload::RandomReadWorkload>(
      "Figure 6b: random foreground workload (MB/s)");
  std::printf(
      "\nReading: delays >= 16ms restore the workload but cap scrubbing at\n"
      "64KB/(delay+service); staggered == sequential at 128 regions.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
