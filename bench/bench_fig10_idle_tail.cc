// Figure 10: what fraction of a disk's total idle time do the largest idle
// intervals make up?
//
// Paper result: typically more than 80% of the idle time sits in less than
// 15% of the intervals -- capturing just the long intervals captures
// almost all the idle time.
#include <array>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

void run() {
  header("Figure 10: fraction of total idle time in the x% largest intervals");
  const std::array<const char*, 4> disks = {"MSRsrc11", "MSRusr1", "HPc6t5d1",
                                            "HPc6t8d0"};
  std::vector<stats::ResidualLife> lives;
  for (const char* d : disks) {
    lives.emplace_back(idle_intervals_streamed(d));
  }

  std::printf("%-22s", "x (frac of largest)");
  for (const char* d : disks) std::printf(" %10s", d);
  std::printf("\n");
  row_rule(22 + 11 * 4);
  for (double x : {0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}) {
    std::printf("%-22.2f", x);
    for (const auto& l : lives) std::printf(" %10.3f", l.tail_weight(x));
    std::printf("\n");
  }

  std::printf("\nIdle time captured by the 15%% largest intervals:\n");
  for (std::size_t i = 0; i < disks.size(); ++i) {
    std::printf("  %-10s %6.1f%%\n", disks[i],
                100.0 * lives[i].tail_weight(0.15));
  }
  std::printf(
      "\nReading: the idle-time mass is concentrated in the tail (>=80%% in\n"
      "<=15%% of intervals for the heavy-tailed disks).\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
