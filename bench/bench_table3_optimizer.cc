// Table III: the fixed-Waiting tuning procedure on four disk traces, for
// mean-slowdown goals of 1, 2 and 4 ms, compared against CFQ (modelled as
// its 10 ms idle-window gate with 64 KB requests).
//
// Paper results reproduced: the optimizer picks large requests (~1-4 MB)
// with workload-specific thresholds and achieves tens of MB/s within
// millisecond slowdown goals; CFQ's fixed 10 ms threshold and 64 KB
// requests yield far less throughput and (on bursty traces) orders of
// magnitude more slowdown.
#include "bench/common.h"

namespace pscrub::bench {
namespace {

void run_disk(const char* disk_name) {
  const trace::Trace t = scaled_trace(disk_name, 4'500'000);
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  const std::vector<SimTime> services =
      core::precompute_services(t, core::make_foreground_service(p));

  core::OptimizerConfig oc;
  oc.scrub_service = core::make_scrub_service(p);
  oc.services = &services;
  oc.binary_search_iters = 9;

  std::printf("\n%s (%zu requests, thinned):\n", disk_name, t.size());
  std::printf("  %-12s %14s %12s %12s %12s\n", "goal", "mean sldn (ms)",
              "MB/s", "threshold", "req size");
  row_rule(70);
  for (double goal_ms : {1.0, 2.0, 4.0}) {
    core::SlowdownGoal goal;
    goal.mean = from_seconds(goal_ms * 1e-3);
    const auto best = core::optimize(t, oc, goal);
    std::printf("  %-12.1f %14.3f %12.2f %10lldms %12s\n", goal_ms,
                best.achieved_mean_slowdown_ms, best.scrub_mb_s,
                static_cast<long long>(best.threshold / kMillisecond),
                size_label(best.request_bytes).c_str());
  }

  // CFQ reference: its Idle class fires after a fixed 10 ms of idleness,
  // with 64 KB requests, and keeps firing until foreground work arrives.
  {
    exp::PolicySimScenario s;
    s.trace = &t;
    s.services = &services;
    s.policy.kind = exp::PolicyKind::kWaiting;
    s.policy.threshold = 10 * kMillisecond;
    s.sizer = core::ScrubSizer::fixed(64 * 1024);
    const auto r = exp::run_policy_scenario(s);
    std::printf("  %-12s %14.3f %12.2f %10s %12s\n", "CFQ",
                r.mean_slowdown_ms, r.scrub_mb_s, "10ms", "64K");
  }

  // CFQ at the trace's FULL request volume: this is where the paper's
  // orders-of-magnitude slowdowns come from -- dense bursts arriving
  // while a 10 ms-threshold scrubber holds the disk cascade through the
  // queue. (The optimizer rows above use the thinned trace for runtime.)
  if (bench_scale() < 0.0) {
    auto spec = trace::spec_by_name(disk_name);
    trace::SyntheticGenerator gen(*spec);
    const trace::Trace full = gen.generate_trace(1.0);
    const std::vector<SimTime> full_services =
        core::precompute_services(full, core::make_foreground_service(p));
    exp::PolicySimScenario s;
    s.trace = &full;
    s.services = &full_services;
    s.policy.kind = exp::PolicyKind::kWaiting;
    s.policy.threshold = 10 * kMillisecond;
    s.sizer = core::ScrubSizer::fixed(64 * 1024);
    const auto r = exp::run_policy_scenario(s);
    std::printf("  %-12s %14.3f %12.2f %10s %12s   (full volume, %zu reqs)\n",
                "CFQ", r.mean_slowdown_ms, r.scrub_mb_s, "10ms", "64K",
                full.size());
  }
}

void run() {
  header("Table III: fixed Waiting optimizer vs CFQ");
  for (const char* d : {"HPc6t8d0", "HPc6t5d1", "MSRsrc11", "MSRusr1"}) {
    run_disk(d);
  }
  std::printf(
      "\nReading: per-workload (size, threshold) tuning yields far more\n"
      "throughput per ms of slowdown than CFQ's fixed 10ms/64K policy.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
