// Ablation: the paper's conclusion applied -- using the Waiting insight
// for power management instead of scrubbing.
//
// Replay one hour of a catalog trace against the event-driven disk with a
// SpinDownDaemon, sweeping the idleness threshold. Decreasing hazard
// rates mean a threshold-selected idle interval tends to be long enough
// to amortize the spin-up: energy drops steeply while added latency stays
// bounded. The memoryless TPC-C counter-example gains nothing.
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr SimTime kWindow = 1 * kHour;

trace::Trace window_of(const std::string& name, std::int64_t max_records) {
  const trace::Trace full = scaled_trace(name, max_records);
  trace::Trace out;
  out.name = full.name;
  out.duration = std::min(kWindow, full.duration);
  for (const auto& r : full.records) {
    if (r.arrival >= out.duration) break;
    out.records.push_back(r);
  }
  return out;
}

exp::ScenarioConfig spindown_case(const trace::Trace& t, SimTime threshold) {
  exp::ScenarioConfig cfg;
  cfg.disk.kind = exp::DiskKind::kUltrastar15k450;
  cfg.workload.kind = exp::WorkloadKind::kTraceReplay;
  cfg.workload.trace = &t;
  cfg.spindown_threshold = threshold;
  cfg.run_for = t.duration + kMinute;
  return cfg;
}

struct Outcome {
  double avg_watts = 0.0;
  double standby_fraction = 0.0;
  std::int64_t spinups = 0;
  double mean_added_latency_ms = 0.0;
};

Outcome outcome_of(const exp::ScenarioResult& r, std::size_t records) {
  Outcome out;
  out.avg_watts = r.energy_joules / to_seconds(r.ran_for);
  out.spinups = r.spinups;
  if (records > 0) {
    out.mean_added_latency_ms =
        to_milliseconds(r.spinup_wait) / static_cast<double>(records);
  }
  // Standby fraction inferred from the energy mix.
  const disk::DiskProfile p =
      exp::profile_for(exp::DiskKind::kUltrastar15k450);
  const double idle_like =
      (out.avg_watts - p.standby_watts) / (p.idle_watts - p.standby_watts);
  out.standby_fraction = std::max(0.0, 1.0 - idle_like);
  return out;
}

void run_disk(const std::string& name, std::int64_t max_records) {
  const trace::Trace t = window_of(name, max_records);
  std::printf("\n%s (first hour, %zu requests):\n", name.c_str(), t.size());
  std::printf("  %-12s %10s %12s %10s %18s\n", "threshold", "avg W",
              "standby frac", "spinups", "added lat/req (ms)");
  row_rule(70);

  const std::vector<SimTime> thresholds = {0, 2 * kSecond, 10 * kSecond,
                                           60 * kSecond};
  std::vector<exp::ScenarioConfig> configs;
  for (SimTime th : thresholds) configs.push_back(spindown_case(t, th));
  const auto results = exp::run_scenarios(configs);

  const Outcome base = outcome_of(results[0], t.size());
  std::printf("  %-12s %10.2f %12.2f %10lld %18.3f\n", "always-on",
              base.avg_watts, 0.0, (long long)base.spinups, 0.0);
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    const Outcome o = outcome_of(results[i], t.size());
    std::printf("  %-12s %10.2f %12.2f %10lld %18.3f\n",
                (std::to_string(thresholds[i] / kSecond) + "s").c_str(),
                o.avg_watts, o.standby_fraction, (long long)o.spinups,
                o.mean_added_latency_ms);
  }
}

void run() {
  header("Spin-down ablation: Waiting-style idleness used for power");
  run_disk("HPc6t5d1", 1'000'000);
  run_disk("MSRusr1", 1'000'000);
  run_disk("TPCdisk66", 600'000);
  std::printf(
      "\nReading: on heavy-tailed disk traces a 10-60 s threshold converts\n"
      "most idle time to standby at a bounded latency cost; on memoryless\n"
      "TPC-C there are no long intervals to harvest.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
