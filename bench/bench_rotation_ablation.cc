// Ablation: the rotational-miss hypothesis of Sec IV-A.
//
// The paper validates its explanation for why staggered can beat
// sequential scrubbing ("the sequential stream just-misses its next sector
// and waits a full rotation; staggered pays a short seek plus half a
// rotation") by adding small delays between scrub requests: delays smaller
// than the rotational latency hurt ONLY the staggered scrubber, because
// the sequential scrubber's delay is absorbed by the rotation it was going
// to wait for anyway.
#include <memory>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

double throughput(bool staggered, SimTime delay) {
  Simulator sim;
  disk::DiskModel d(sim, disk::hitachi_ultrastar_15k450(), 1);
  block::BlockLayer blk(sim, d, std::make_unique<block::NoopScheduler>());
  core::ScrubberConfig cfg;
  cfg.priority = block::IoPriority::kBestEffort;
  cfg.inter_request_delay = delay;
  auto strategy = staggered
                      ? core::make_staggered(d.total_sectors(), 64 * 1024, 128)
                      : core::make_sequential(d.total_sectors(), 64 * 1024);
  core::Scrubber s(sim, blk, std::move(strategy), cfg);
  s.start();
  sim.run_until(60 * kSecond);
  return s.stats().throughput_mb_s(60 * kSecond);
}

void run() {
  header("Rotation ablation: sub-rotational delays between scrub requests");
  const SimTime rotation = disk::hitachi_ultrastar_15k450().rotation_period();
  std::printf("rotational latency: %s\n\n", format_duration(rotation).c_str());
  std::printf("%-12s %16s %16s\n", "delay", "sequential MB/s",
              "staggered MB/s");
  row_rule(46);
  const double seq0 = throughput(false, 0);
  const double stag0 = throughput(true, 0);
  for (SimTime delay : {SimTime{0}, kMillisecond / 2, kMillisecond,
                        2 * kMillisecond, 3 * kMillisecond}) {
    std::printf("%-12s %16.1f %16.1f\n", format_duration(delay).c_str(),
                throughput(false, delay), throughput(true, delay));
  }
  std::printf("\nloss at 3 ms delay: sequential %.0f%%, staggered %.0f%%\n",
              100.0 * (1.0 - throughput(false, 3 * kMillisecond) / seq0),
              100.0 * (1.0 - throughput(true, 3 * kMillisecond) / stag0));
  std::printf(
      "\nReading: sub-rotational delays are absorbed by the sequential\n"
      "scrubber's rotation wait but cost the staggered scrubber directly --\n"
      "validating the Sec IV-A mechanism.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
