// Ablation: the rotational-miss hypothesis of Sec IV-A.
//
// The paper validates its explanation for why staggered can beat
// sequential scrubbing ("the sequential stream just-misses its next sector
// and waits a full rotation; staggered pays a short seek plus half a
// rotation") by adding small delays between scrub requests: delays smaller
// than the rotational latency hurt ONLY the staggered scrubber, because
// the sequential scrubber's delay is absorbed by the rotation it was going
// to wait for anyway.
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

exp::ScenarioConfig delay_case(bool staggered, SimTime delay) {
  exp::ScenarioConfig cfg;
  cfg.disk.kind = exp::DiskKind::kUltrastar15k450;
  cfg.scheduler = exp::SchedulerKind::kNoop;
  cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
  cfg.scrubber.priority = block::IoPriority::kBestEffort;
  cfg.scrubber.inter_request_delay = delay;
  cfg.scrubber.strategy.kind = staggered ? exp::StrategyKind::kStaggered
                                         : exp::StrategyKind::kSequential;
  cfg.scrubber.strategy.request_bytes = 64 * 1024;
  cfg.scrubber.strategy.regions = 128;
  cfg.run_for = 60 * kSecond;
  return cfg;
}

void run() {
  header("Rotation ablation: sub-rotational delays between scrub requests");
  const SimTime rotation = disk::hitachi_ultrastar_15k450().rotation_period();
  std::printf("rotational latency: %s\n\n", format_duration(rotation).c_str());
  std::printf("%-12s %16s %16s\n", "delay", "sequential MB/s",
              "staggered MB/s");
  row_rule(46);

  const std::vector<SimTime> delays = {SimTime{0}, kMillisecond / 2,
                                       kMillisecond, 2 * kMillisecond,
                                       3 * kMillisecond};
  std::vector<exp::ScenarioConfig> configs;
  for (SimTime delay : delays) {
    configs.push_back(delay_case(false, delay));
    configs.push_back(delay_case(true, delay));
  }
  const auto results = exp::run_scenarios(configs);

  for (std::size_t i = 0; i < delays.size(); ++i) {
    std::printf("%-12s %16.1f %16.1f\n", format_duration(delays[i]).c_str(),
                results[2 * i].scrub_mb_s, results[2 * i + 1].scrub_mb_s);
  }
  const double seq0 = results[0].scrub_mb_s;
  const double stag0 = results[1].scrub_mb_s;
  const double seq3 = results[2 * (delays.size() - 1)].scrub_mb_s;
  const double stag3 = results[2 * (delays.size() - 1) + 1].scrub_mb_s;
  std::printf("\nloss at 3 ms delay: sequential %.0f%%, staggered %.0f%%\n",
              100.0 * (1.0 - seq3 / seq0), 100.0 * (1.0 - stag3 / stag0));
  std::printf(
      "\nReading: sub-rotational delays are absorbed by the sequential\n"
      "scrubber's rotation wait but cost the staggered scrubber directly --\n"
      "validating the Sec IV-A mechanism.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
