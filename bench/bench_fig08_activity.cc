// Figure 8: request activity (requests per hour) over one week for four
// representative disks from the HP Cello and MSR Cambridge collections.
//
// Paper result: all traces show repeating patterns, typically spikes at
// 24-hour intervals (Cello: nightly backups; MSR: per-disk peak hours).
#include <array>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

std::vector<double> hourly_counts_for(const std::string& name) {
  auto spec = trace::spec_by_name(name);
  if (!spec) throw std::runtime_error("unknown trace " + name);
  // Streaming: count per hour without materializing the trace; the full
  // weekly volume is cheap to generate.
  const double env = bench_scale();
  if (env > 0.0) {
    spec->target_requests = static_cast<std::int64_t>(
        static_cast<double>(spec->target_requests) * env);
  }
  trace::SyntheticGenerator gen(*spec);
  std::vector<double> counts(
      static_cast<std::size_t>(spec->duration / kHour) + 1, 0.0);
  gen.generate([&](const trace::TraceRecord& r) {
    counts[static_cast<std::size_t>(r.arrival / kHour)] += 1.0;
  });
  counts.resize(168);
  return counts;
}

void run() {
  header("Figure 8: request activity per hour over one week");
  const std::array<const char*, 4> disks = {"MSRsrc11", "MSRusr1", "HPc6t5d1",
                                            "HPc6t8d0"};
  std::vector<std::vector<double>> counts;
  for (const char* d : disks) counts.push_back(hourly_counts_for(d));

  std::printf("%-6s", "hour");
  for (const char* d : disks) std::printf(" %10s", d);
  std::printf("\n");
  row_rule(6 + 11 * 4);
  for (std::size_t h = 0; h < 168; ++h) {
    std::printf("%-6zu", h);
    for (const auto& c : counts) std::printf(" %10.0f", c[h]);
    std::printf("\n");
  }

  std::printf("\nPeak-to-mean ratio per disk (daily spike strength):\n");
  for (std::size_t i = 0; i < disks.size(); ++i) {
    double hi = 0;
    double sum = 0;
    for (double c : counts[i]) {
      hi = std::max(hi, c);
      sum += c;
    }
    std::printf("  %-10s %8.1fx\n", disks[i], hi / (sum / 168.0));
  }
  std::printf(
      "\nReading: repeating daily spikes on every disk (24 h intervals).\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
