// Event-driven measurement of back-to-back sequential VERIFY streams,
// shared by the Fig 1 / Fig 4 benches.
#pragma once

#include "pscrub.h"

namespace pscrub::bench {

/// Mean response time (ms) of `n` back-to-back sequential VERIFYs of
/// `bytes` each, measured on the event-driven disk model.
inline double measure_sequential_verify(disk::DiskProfile profile,
                                        disk::CommandKind kind,
                                        std::int64_t bytes, int n = 64) {
  Simulator sim;
  disk::DiskModel d(sim, std::move(profile), 7);
  const std::int64_t sectors = disk::sectors_from_bytes(bytes);
  SimTime total = 0;
  disk::Lbn lbn = 0;
  for (int i = 0; i < n; ++i) {
    if (lbn + sectors > d.total_sectors()) lbn = 0;
    SimTime latency = 0;
    d.submit({kind, lbn, sectors},
             [&](const disk::DiskCommand&, SimTime l) { latency = l; });
    sim.run();
    total += latency;
    lbn += sectors;
  }
  return to_milliseconds(total) / n;
}

}  // namespace pscrub::bench
