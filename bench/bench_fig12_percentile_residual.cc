// Figure 12: the pessimistic version of Fig 11 -- the 1st percentile of
// the idle time remaining after the disk has been idle for x seconds.
//
// Paper result: even the 1st percentile increases strongly with idle age,
// i.e. waiting is a robust long-interval detector, not just on average.
#include <array>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

void run() {
  header("Figure 12: 1st percentile of idle time remaining (s)");
  const std::array<const char*, 4> disks = {"MSRsrc11", "MSRusr1", "HPc6t5d1",
                                            "HPc6t8d0"};
  std::vector<stats::ResidualLife> lives;
  for (const char* d : disks) lives.emplace_back(idle_intervals_streamed(d));

  std::printf("%-12s", "x (s)");
  for (const char* d : disks) std::printf(" %11s", d);
  std::printf("\n");
  row_rule(12 + 12 * 4);
  for (double x : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0}) {
    std::printf("%-12g", x);
    for (const auto& l : lives) {
      const double q = l.residual_quantile(x, 0.01);
      if (l.survival(x) > 0) {
        std::printf(" %11.4g", q);
      } else {
        std::printf(" %11s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: increasing trends even at the 1st percentile -- in 99%% of\n"
      "cases a long-idle disk stays idle substantially longer.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
