// Ablations on the paper's scheduling design choices:
//
//  1. "No stopping criterion": prior background-scheduling work pairs a
//     start rule with a stop rule; the paper argues decreasing hazard
//     rates make stopping counterproductive. We sweep per-interval firing
//     budgets against the unbounded Waiting policy.
//  2. Predictor alternatives: AR(p) (the paper's choice among statistical
//     models) vs ACD(1,1) (tried and rejected for fitting cost) vs a
//     moving average -- quality at equal collision rate, and fitting cost.
//  3. Scheduler substrate: CFQ vs the deadline scheduler for a scrubber
//     that has no priority class to hide in.
#include <memory>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr const char* kDisk = "MSRusr2";

void stopping_criterion(const trace::Trace& t,
                        const std::vector<SimTime>& services) {
  std::printf("\n(1) Stopping criterion ablation (Waiting start=64ms):\n");
  std::printf("%-18s %14s %16s %12s\n", "budget/interval", "collision rate",
              "idle utilized", "scrub MB/s");
  row_rule(64);
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  auto run = [&](core::IdlePolicy& policy) {
    core::PolicySimConfig c;
    c.scrub_service = core::make_scrub_service(p);
    c.services = &services;
    return core::run_policy_sim(t, policy, c);
  };
  for (SimTime budget :
       {100 * kMillisecond, 500 * kMillisecond, 2000 * kMillisecond,
        8000 * kMillisecond}) {
    core::DualThresholdPolicy policy(64 * kMillisecond, budget);
    const auto r = run(policy);
    std::printf("%-18s %14.4f %16.3f %12.2f\n",
                (std::to_string(budget / kMillisecond) + "ms").c_str(),
                r.collision_rate, r.idle_utilization, r.scrub_mb_s);
  }
  core::WaitingPolicy unlimited(64 * kMillisecond);
  const auto r = run(unlimited);
  std::printf("%-18s %14.4f %16.3f %12.2f   <- the paper's choice\n",
              "unbounded", r.collision_rate, r.idle_utilization, r.scrub_mb_s);
}

void predictor_comparison(const trace::Trace& t,
                          const std::vector<SimTime>& services) {
  std::printf("\n(2) Predictor comparison (fire when prediction > c):\n");
  std::printf("%-16s %10s %14s %16s\n", "predictor", "c", "collision rate",
              "idle utilized");
  row_rule(60);
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  auto run = [&](core::IdlePolicy& policy) {
    core::PolicySimConfig c;
    c.scrub_service = core::make_scrub_service(p);
    c.services = &services;
    return core::run_policy_sim(t, policy, c);
  };
  for (SimTime c : {256 * kMillisecond, 2048 * kMillisecond,
                    16384 * kMillisecond}) {
    const std::string label = std::to_string(c / kMillisecond) + "ms";
    {
      core::ArPolicy ar(c);
      const auto r = run(ar);
      std::printf("%-16s %10s %14.4f %16.3f\n", "AR(p)", label.c_str(),
                  r.collision_rate, r.idle_utilization);
    }
    {
      core::AcdPolicy acd(c);
      const auto r = run(acd);
      std::printf("%-16s %10s %14.4f %16.3f\n", "ACD(1,1)", label.c_str(),
                  r.collision_rate, r.idle_utilization);
    }
    {
      core::MovingAveragePolicy ma(c);
      const auto r = run(ma);
      std::printf("%-16s %10s %14.4f %16.3f\n", "moving avg", label.c_str(),
                  r.collision_rate, r.idle_utilization);
    }
    {
      core::WaitingPolicy w(c);
      const auto r = run(w);
      std::printf("%-16s %10s %14.4f %16.3f\n", "Waiting", label.c_str(),
                  r.collision_rate, r.idle_utilization);
    }
  }
  std::printf("(Waiting's parameter is a wait threshold, not a prediction\n"
              " cutoff; shown at the same values for scale.)\n");
}

void scheduler_substrate() {
  std::printf("\n(3) Scheduler substrate: back-to-back scrubber vs the\n"
              "    sequential foreground workload (120 s):\n");
  std::printf("%-12s %16s %16s\n", "scheduler", "workload MB/s",
              "scrubber MB/s");
  row_rule(46);
  for (const char* which : {"cfq-idle", "cfq-be", "deadline", "noop"}) {
    Simulator sim;
    disk::DiskModel d(sim, disk::hitachi_ultrastar_15k450(), 1);
    std::unique_ptr<block::IoScheduler> sched;
    block::IoPriority prio = block::IoPriority::kBestEffort;
    if (std::string(which) == "cfq-idle") {
      sched = std::make_unique<block::CfqScheduler>();
      prio = block::IoPriority::kIdle;
    } else if (std::string(which) == "cfq-be") {
      sched = std::make_unique<block::CfqScheduler>();
    } else if (std::string(which) == "deadline") {
      sched = std::make_unique<block::DeadlineScheduler>();
    } else {
      sched = std::make_unique<block::NoopScheduler>();
    }
    block::BlockLayer blk(sim, d, std::move(sched));
    workload::SyntheticConfig wcfg;
    workload::SequentialChunkWorkload fg(sim, blk, wcfg, 42);
    fg.start();
    core::ScrubberConfig scfg;
    scfg.priority = prio;
    core::Scrubber s(sim, blk,
                     core::make_sequential(d.total_sectors(), 64 * 1024),
                     scfg);
    s.start();
    constexpr SimTime kRun = 120 * kSecond;
    sim.run_until(kRun);
    std::printf("%-12s %16.2f %16.2f\n", which,
                fg.metrics().throughput_mb_s(kRun),
                s.stats().throughput_mb_s(kRun));
  }
  std::printf("Only CFQ's Idle class protects the foreground from a\n"
              "back-to-back scrubber -- the paper's Sec III-B point.\n");
}

void run() {
  header("Policy ablations (stopping criterion, predictors, schedulers)");
  const trace::Trace t = scaled_trace(kDisk, 2'000'000);
  std::printf("%zu requests of %s replayed (thinned)\n", t.size(), kDisk);
  const std::vector<SimTime> services = core::precompute_services(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));

  stopping_criterion(t, services);
  predictor_comparison(t, services);
  scheduler_substrate();
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
