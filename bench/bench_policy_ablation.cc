// Ablations on the paper's scheduling design choices:
//
//  1. "No stopping criterion": prior background-scheduling work pairs a
//     start rule with a stop rule; the paper argues decreasing hazard
//     rates make stopping counterproductive. We sweep per-interval firing
//     budgets against the unbounded Waiting policy.
//  2. Predictor alternatives: AR(p) (the paper's choice among statistical
//     models) vs ACD(1,1) (tried and rejected for fitting cost) vs a
//     moving average -- quality at equal collision rate, and fitting cost.
//  3. Scheduler substrate: CFQ vs the deadline scheduler for a scrubber
//     that has no priority class to hide in.
#include <string>
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr const char* kDisk = "MSRusr2";

exp::PolicySimScenario policy_case(const trace::Trace& t,
                                   const std::vector<SimTime>& services,
                                   const exp::PolicySpec& spec) {
  exp::PolicySimScenario s;
  s.trace = &t;
  s.services = &services;
  s.policy = spec;
  return s;
}

void stopping_criterion(const trace::Trace& t,
                        const std::vector<SimTime>& services) {
  std::printf("\n(1) Stopping criterion ablation (Waiting start=64ms):\n");
  std::printf("%-18s %14s %16s %12s\n", "budget/interval", "collision rate",
              "idle utilized", "scrub MB/s");
  row_rule(64);
  const std::vector<SimTime> budgets = {100 * kMillisecond, 500 * kMillisecond,
                                        2000 * kMillisecond,
                                        8000 * kMillisecond};
  std::vector<exp::PolicySimScenario> scenarios;
  for (SimTime budget : budgets) {
    exp::PolicySpec spec;
    spec.kind = exp::PolicyKind::kDualThreshold;
    spec.threshold = 64 * kMillisecond;
    spec.secondary = budget;
    scenarios.push_back(policy_case(t, services, spec));
  }
  {
    exp::PolicySpec spec;
    spec.kind = exp::PolicyKind::kWaiting;
    spec.threshold = 64 * kMillisecond;
    scenarios.push_back(policy_case(t, services, spec));
  }
  const auto results = exp::run_policy_scenarios(scenarios);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    std::printf("%-18s %14.4f %16.3f %12.2f\n",
                (std::to_string(budgets[i] / kMillisecond) + "ms").c_str(),
                results[i].collision_rate, results[i].idle_utilization,
                results[i].scrub_mb_s);
  }
  const auto& r = results.back();
  std::printf("%-18s %14.4f %16.3f %12.2f   <- the paper's choice\n",
              "unbounded", r.collision_rate, r.idle_utilization, r.scrub_mb_s);
}

void predictor_comparison(const trace::Trace& t,
                          const std::vector<SimTime>& services) {
  std::printf("\n(2) Predictor comparison (fire when prediction > c):\n");
  std::printf("%-16s %10s %14s %16s\n", "predictor", "c", "collision rate",
              "idle utilized");
  row_rule(60);
  const std::vector<SimTime> cutoffs = {256 * kMillisecond,
                                        2048 * kMillisecond,
                                        16384 * kMillisecond};
  const std::vector<std::pair<const char*, exp::PolicyKind>> predictors = {
      {"AR(p)", exp::PolicyKind::kAutoRegression},
      {"ACD(1,1)", exp::PolicyKind::kAcd},
      {"moving avg", exp::PolicyKind::kMovingAverage},
      {"Waiting", exp::PolicyKind::kWaiting},
  };
  std::vector<exp::PolicySimScenario> scenarios;
  for (SimTime c : cutoffs) {
    for (const auto& [name, kind] : predictors) {
      exp::PolicySpec spec;
      spec.kind = kind;
      spec.threshold = c;
      scenarios.push_back(policy_case(t, services, spec));
    }
  }
  const auto results = exp::run_policy_scenarios(scenarios);
  std::size_t i = 0;
  for (SimTime c : cutoffs) {
    const std::string label = std::to_string(c / kMillisecond) + "ms";
    for (const auto& [name, kind] : predictors) {
      const auto& r = results[i++];
      std::printf("%-16s %10s %14.4f %16.3f\n", name, label.c_str(),
                  r.collision_rate, r.idle_utilization);
    }
  }
  std::printf("(Waiting's parameter is a wait threshold, not a prediction\n"
              " cutoff; shown at the same values for scale.)\n");
}

void scheduler_substrate() {
  std::printf("\n(3) Scheduler substrate: back-to-back scrubber vs the\n"
              "    sequential foreground workload (120 s):\n");
  std::printf("%-12s %16s %16s\n", "scheduler", "workload MB/s",
              "scrubber MB/s");
  row_rule(46);
  struct Substrate {
    const char* label;
    exp::SchedulerKind scheduler;
    block::IoPriority priority;
  };
  const std::vector<Substrate> substrates = {
      {"cfq-idle", exp::SchedulerKind::kCfq, block::IoPriority::kIdle},
      {"cfq-be", exp::SchedulerKind::kCfq, block::IoPriority::kBestEffort},
      {"deadline", exp::SchedulerKind::kDeadline,
       block::IoPriority::kBestEffort},
      {"noop", exp::SchedulerKind::kNoop, block::IoPriority::kBestEffort},
  };
  std::vector<exp::ScenarioConfig> configs;
  for (const Substrate& s : substrates) {
    exp::ScenarioConfig cfg;
    cfg.disk.kind = exp::DiskKind::kUltrastar15k450;
    cfg.scheduler = s.scheduler;
    cfg.workload.kind = exp::WorkloadKind::kSequentialChunks;
    cfg.workload.seed = 42;
    cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
    cfg.scrubber.priority = s.priority;
    cfg.scrubber.strategy.request_bytes = 64 * 1024;
    cfg.run_for = 120 * kSecond;
    configs.push_back(cfg);
  }
  const auto results = exp::run_scenarios(configs);
  for (std::size_t i = 0; i < substrates.size(); ++i) {
    std::printf("%-12s %16.2f %16.2f\n", substrates[i].label,
                results[i].workload_mb_s, results[i].scrub_mb_s);
  }
  std::printf("Only CFQ's Idle class protects the foreground from a\n"
              "back-to-back scrubber -- the paper's Sec III-B point.\n");
}

void run() {
  header("Policy ablations (stopping criterion, predictors, schedulers)");
  const trace::Trace t = scaled_trace(kDisk, 2'000'000);
  std::printf("%zu requests of %s replayed (thinned)\n", t.size(), kDisk);
  const std::vector<SimTime> services = core::precompute_services(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));

  stopping_criterion(t, services);
  predictor_comparison(t, services);
  scheduler_substrate();
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
