// Fault-injection bench: the error path under deterministic media faults.
//
// One scrubbed disk, one foreground workload, and a seeded fault plan of
// LSE bursts; the sweep crosses the drive's recovery firmware (desktop
// multi-second retry grind vs enterprise ERC/TLER cap) with the host's
// error handling (pass-through vs bounded retries + request timeout).
// The table shows what each combination costs and catches: injected vs
// detected sectors, in-band mean latent-error time, typed error/retry/
// timeout counts, foreground latency, and scrub progress.
//
// Output is bit-identical for any PSCRUB_SWEEP_WORKERS value -- the CI
// fault smoke job diffs a 1-worker run against a 4-worker run.
#include "bench/common.h"

namespace pscrub::bench {
namespace {

struct CaseSpec {
  const char* label;
  bool erc;           // enterprise recovery cap vs desktop grind
  bool host_retries;  // bounded retries + timeout vs pass-through
};

exp::ScenarioConfig fault_case(const CaseSpec& spec) {
  exp::ScenarioConfig cfg;
  cfg.label = spec.label;
  cfg.disk.capacity_bytes = 256LL << 20;  // small disk: several passes/run
  cfg.scheduler = exp::SchedulerKind::kCfq;

  cfg.workload.kind = exp::WorkloadKind::kRandomReads;
  cfg.workload.synthetic.request_bytes = 64 * 1024;
  cfg.workload.synthetic.think_mean = 250 * kMillisecond;

  cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
  cfg.scrubber.priority = block::IoPriority::kIdle;
  cfg.scrubber.strategy.request_bytes = 256 * 1024;

  cfg.fault.enabled = true;
  cfg.fault.seed = 2012;
  cfg.fault.lse.burst_interarrival_mean = 20 * kSecond;
  cfg.fault.lse.extra_errors_per_burst_mean = 5.0;
  cfg.fault.lse_horizon = 2 * kMinute;
  cfg.fault.error_model.erc_timeout = spec.erc ? 100 * kMillisecond : 0;
  cfg.fault.error_model.transient_error_prob = 0.01;

  if (spec.host_retries) {
    cfg.retry.max_retries = 3;
    cfg.retry.backoff_base = 10 * kMillisecond;
    cfg.retry.timeout = 2 * kSecond;
  }

  cfg.run_for = 4 * kMinute;
  return cfg;
}

void run() {
  header("Fault injection: drive recovery firmware x host error handling");
  std::printf(
      "one disk, CFQ, random-read foreground, back-to-back idle scrub;\n"
      "seeded LSE bursts + 1%% transient errors over the first 2 min of 4\n\n");

  const CaseSpec cases[] = {
      {"desktop, pass-through", false, false},
      {"desktop, retry+timeout", false, true},
      {"ERC 100ms, pass-through", true, false},
      {"ERC 100ms, retry+timeout", true, true},
  };

  std::vector<exp::ScenarioConfig> configs;
  for (const CaseSpec& c : cases) configs.push_back(fault_case(c));
  exp::SweepOptions options;
  options.merge_into = &obs::Registry::global();
  const std::vector<exp::ScenarioResult> results =
      exp::run_scenarios(configs, options);

  std::printf("%-26s %5s %5s %9s %7s %7s %8s %9s %10s\n", "case", "inj",
              "det", "MLET(h)", "errors", "retries", "timeouts", "fg ms",
              "scrub MB/s");
  row_rule(94);
  for (const exp::ScenarioResult& r : results) {
    std::printf("%-26s %5lld %5lld %9.5f %7lld %7lld %8lld %9.2f %10.1f\n",
                r.label.c_str(), (long long)r.fault_injected_sectors,
                (long long)r.fault_detections, r.fault_mean_detection_hours,
                (long long)r.io_errors, (long long)r.io_retries,
                (long long)r.io_timeouts, r.workload_mean_latency_ms,
                r.scrub_mb_s);
  }

  std::printf(
      "\nReading: the desktop grind turns every media hit into seconds of\n"
      "stall (fg ms, timeouts with a 2 s deadline); ERC caps the drive's\n"
      "effort so the host sees the error quickly and scrubbing keeps its\n"
      "throughput. The fault plan is identical in every row -- same bursts,\n"
      "same sectors, full detection coverage -- but the recovery firmware\n"
      "changes how fast the scrub pass advances, so the desktop rows also\n"
      "pay a higher mean latent-error time.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
