// Daemon-layer benchmarks (google-benchmark): end-to-end pscrubd runs
// with heavy operator-command traffic and periodic checkpoints, plus the
// checkpoint codec round trip. These pin the control-plane overhead --
// token-bucket pacing, command dispatch, snapshot serialization -- under
// the perf gate (bench/baseline.json via compare_perf.py).
//
// PSCRUB_BENCH_SCALE in (0, 1] shrinks the device counts for smoke runs
// (the perf gate runs full size).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "bench/common.h"
#include "pscrub.h"

namespace pscrub {
namespace {

std::int64_t scaled_devices(std::int64_t devices) {
  const double scale = bench::bench_scale();
  if (scale <= 0.0) return devices;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(devices) * scale));
}

exp::ScenarioConfig daemon_config(std::int64_t devices) {
  exp::ScenarioConfig config;
  config.label = "bench.pscrubd";
  config.disk.capacity_bytes = 2LL << 30;
  config.scrubber.kind = exp::ScrubberKind::kWaiting;
  config.scrubber.strategy.kind = exp::StrategyKind::kSequential;
  config.scrubber.strategy.request_bytes = 256 * 1024;
  config.run_for = 30 * kMinute;
  config.daemon.devices = devices;
  config.daemon.util_min = 0.2;
  config.daemon.util_max = 0.5;
  config.daemon.target_passes = 1;
  config.daemon.checkpoint_interval = kMinute;
  config.daemon.client_commands = 500;
  config.daemon.client_interval = config.run_for / 500;
  // Pace a pass to ~60% of the horizon at 25% scrub duty cycle (the
  // pscrubd_sim pacing recipe).
  {
    const disk::DiskProfile p = config.disk.profile();
    const std::int64_t total_sectors =
        disk::Geometry(p.capacity_bytes, p.outer_spt, p.inner_spt, p.zones)
            .total_sectors();
    const std::int64_t request_sectors =
        disk::sectors_from_bytes(config.scrubber.strategy.request_bytes);
    const std::int64_t steps =
        (total_sectors + request_sectors - 1) / request_sectors;
    const SimTime step =
        std::max<SimTime>(config.run_for * 6 / (10 * steps), 8);
    config.daemon.pacing.request_service = step / 4;
    config.daemon.pacing.request_spacing = step - step / 4;
  }
  config.fault.enabled = true;
  config.fault.lse.burst_interarrival_mean = 10 * kMinute;
  config.fault.lse.burst_span_bytes = 64LL << 20;
  return config;
}

/// End-to-end control plane: arg is the device count. Items are verified
/// extents, so items/s is the daemon's scrub-dispatch throughput under
/// command traffic.
void BM_DaemonRun(benchmark::State& state) {
  const exp::ScenarioConfig config = daemon_config(scaled_devices(state.range(0)));
  std::int64_t extents = 0;
  for (auto _ : state) {
    const daemon::DaemonResult r = daemon::run_daemon(config);
    benchmark::DoNotOptimize(r.status_checksum);
    extents = r.extents;
  }
  state.SetItemsProcessed(state.iterations() * extents);
}
BENCHMARK(BM_DaemonRun)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

/// Checkpoint codec: serialize + parse of a mid-run snapshot (with the
/// embedded timeline, as the periodic persist path writes it). Items are
/// snapshots round-tripped.
void BM_DaemonCheckpointRoundTrip(benchmark::State& state) {
  const exp::ScenarioConfig config = daemon_config(8);
  obs::Timeline timeline;
  timeline.configure(obs::TimelineConfig{});
  timeline.set_enabled(true);
  Simulator sim;
  daemon::Daemon d(sim, config, &timeline);
  d.start();
  sim.run_until(config.run_for / 2);
  for (auto _ : state) {
    const daemon::Checkpoint ck =
        daemon::parse_checkpoint(daemon::serialize_checkpoint(d.snapshot()));
    benchmark::DoNotOptimize(ck.now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonCheckpointRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pscrub

BENCHMARK_MAIN();
