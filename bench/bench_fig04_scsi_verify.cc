// Figure 4: SCSI VERIFY service times for different request sizes on two
// SAS drives and one parallel-SCSI drive.
//
// Paper result: service times are almost flat for requests <= 64 KB (the
// rotational positioning cost dominates) and grow with the media transfer
// beyond that -- the reason 64 KB is the smallest size worth using.
#include "bench/common.h"

namespace pscrub::bench {
namespace {

void run() {
  header("Figure 4: SCSI VERIFY service times vs request size (ms)");
  const std::vector<disk::DiskProfile> drives = {
      disk::hitachi_ultrastar_15k450(),
      disk::fujitsu_max3073rc(),
      disk::fujitsu_map3367np(),
  };

  std::printf("%-10s", "size");
  for (const auto& d : drives) std::printf(" | %22s", d.name.c_str());
  std::printf("\n");
  row_rule(10 + 25 * static_cast<int>(drives.size()));

  for (std::int64_t size : size_sweep_1k_16m()) {
    std::printf("%-10s", size_label(size).c_str());
    for (const auto& d : drives) {
      std::printf(" | %22.2f",
                  exp::measure_sequential_verify(
                      d, disk::CommandKind::kVerifyScsi, size));
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: flat <= 64K on every model; transfer-dominated above.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
