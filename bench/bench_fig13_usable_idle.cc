// Figure 13: fraction of the total idle time still usable if scrubbing
// only starts after waiting x seconds into each idle interval.
//
// Paper result: a ~100 ms wait still leaves 60-90% of the total idle time
// usable, while selecting under 10% of the intervals (few collisions).
#include <array>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

void run() {
  header("Figure 13: fraction of idle time remaining after waiting x s");
  const std::array<const char*, 6> disks = {"MSRsrc11",  "MSRusr1",
                                            "HPc6t5d1",  "HPc6t8d0",
                                            "TPCdisk66", "TPCdisk88"};
  std::vector<stats::ResidualLife> lives;
  for (const char* d : disks) lives.emplace_back(idle_intervals_streamed(d));

  std::printf("%-12s", "wait x (s)");
  for (const char* d : disks) std::printf(" %11s", d);
  std::printf("\n");
  row_rule(12 + 12 * 6);
  for (double x : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 1.0, 10.0}) {
    std::printf("%-12g", x);
    for (const auto& l : lives) std::printf(" %11.3f", l.usable_fraction(x));
    std::printf("\n");
  }

  std::printf("\nAt a 100 ms wait: usable idle vs intervals selected:\n");
  for (std::size_t i = 0; i < disks.size(); ++i) {
    std::printf("  %-10s usable %5.1f%%   intervals selected %5.1f%%\n",
                disks[i], 100.0 * lives[i].usable_fraction(0.1),
                100.0 * lives[i].survival(0.1));
  }
  std::printf(
      "\nReading: disk traces keep the bulk of idle time usable after a\n"
      "100 ms wait; memoryless TPC-C loses essentially all of it.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
