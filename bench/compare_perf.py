#!/usr/bin/env python3
"""Perf-regression gate: compare google-benchmark medians to a baseline.

Usage:
  # Gate (CI): nonzero exit when any benchmark regresses past tolerance.
  python3 bench/compare_perf.py bench/baseline.json micro.json event_core.json

  # Refresh the baseline from current results (new machine, accepted change):
  python3 bench/compare_perf.py --update bench/baseline.json micro.json ...

Result files come from:
  bench/bench_micro_perf  --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true --benchmark_format=json
(and the same for bench/bench_event_core). Only `*_median` aggregate rows
are read. Throughput benchmarks compare items_per_second (higher is
better); benchmarks without a throughput counter compare real_time (lower
is better). Benchmarks missing on either side only warn: the gate must not
break when a benchmark is added or retired, only when one gets slower.

Stdlib only; no third-party deps.
"""

import argparse
import json
import sys


def load_medians(paths):
    """Reads benchmark JSON files -> {name: {items_per_second, real_time}}."""
    medians = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            name = bench.get("name", "")
            if not name.endswith("_median"):
                continue
            base = name[: -len("_median")]
            medians[base] = {
                "items_per_second": bench.get("items_per_second"),
                "real_time": bench.get("real_time"),
                "time_unit": bench.get("time_unit", "ns"),
            }
    return medians


def compare(baseline, current, tolerance):
    """Returns (regressions, report_lines)."""
    regressions = []
    lines = []
    header = f"{'benchmark':44s} {'baseline':>14s} {'current':>14s} {'ratio':>7s}  verdict"
    lines.append(header)
    lines.append("-" * len(header))
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            lines.append(f"{name:44s} {'-':>14s} {'-':>14s} {'-':>7s}  MISSING (warn)")
            continue
        if base.get("items_per_second") and cur.get("items_per_second"):
            b, c = base["items_per_second"], cur["items_per_second"]
            ratio = c / b  # higher is better
            ok = ratio >= 1.0 - tolerance
            unit = "it/s"
        else:
            b, c = base["real_time"], cur["real_time"]
            ratio = b / c if c else 0.0  # normalized so higher is better
            ok = c <= b * (1.0 + tolerance)
            unit = base.get("time_unit", "ns")
        verdict = "ok" if ok else "REGRESSION"
        lines.append(
            f"{name:44s} {b:14.3g} {c:14.3g} {ratio:7.2f}  {verdict} ({unit})")
        if not ok:
            regressions.append(name)
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"{name:44s}  new benchmark, not in baseline (warn)")
    return regressions, lines


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the result files")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline's tolerance fraction")
    parser.add_argument("baseline", help="bench/baseline.json")
    parser.add_argument("results", nargs="+",
                        help="google-benchmark JSON result files")
    args = parser.parse_args(argv)

    current = load_medians(args.results)
    if not current:
        print("error: no *_median rows found; run the benchmarks with "
              "--benchmark_repetitions=3 --benchmark_report_aggregates_only=true",
              file=sys.stderr)
        return 2

    if args.update:
        doc = {
            "_comment": "Per-machine perf baseline for the CI perf-regression "
                        "job. Regenerate with: python3 bench/compare_perf.py "
                        "--update bench/baseline.json <results...>.json "
                        "(medians of 3 reps).",
            "tolerance": args.tolerance if args.tolerance is not None else 0.20,
            "benchmarks": current,
        }
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.baseline} with {len(current)} benchmarks")
        return 0

    with open(args.baseline) as f:
        doc = json.load(f)
    tolerance = args.tolerance if args.tolerance is not None else doc.get(
        "tolerance", 0.20)
    regressions, lines = compare(doc.get("benchmarks", {}), current, tolerance)
    print("\n".join(lines))
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed past "
              f"{tolerance:.0%}: {', '.join(regressions)}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed past {tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
