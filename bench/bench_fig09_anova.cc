// Figure 9: periods detected with one-way ANOVA for the busiest 63 disks.
//
// Paper result: most traces lock to a 24-hour period; a handful show other
// periods; ~5 disks show no detectable periodicity (reported as 1 hour).
#include <algorithm>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

void run() {
  header("Figure 9: ANOVA-detected periods for the busiest 63 disks");
  std::printf("%-12s %10s %12s %14s\n", "disk", "period(h)", "F-stat",
              "requests");
  row_rule(52);

  int at_24 = 0;
  int none = 0;
  int other = 0;
  for (trace::TraceSpec spec : trace::busiest63_specs()) {
    // Full request volume: hourly-count periodicity is destroyed by
    // thinning (idle gaps stretch to hours), and streaming generation is
    // cheap enough to run the real thing.
    const std::int64_t paper_requests = spec.target_requests;
    const double env = bench_scale();
    if (env > 0.0) {
      spec.target_requests = static_cast<std::int64_t>(
          static_cast<double>(spec.target_requests) * env);
    }
    trace::SyntheticGenerator gen(spec);
    std::vector<double> counts(
        static_cast<std::size_t>(spec.duration / kHour) + 1, 0.0);
    gen.generate([&](const trace::TraceRecord& r) {
      counts[static_cast<std::size_t>(r.arrival / kHour)] += 1.0;
    });
    counts.resize(168);
    const stats::PeriodResult r = stats::detect_period(counts);
    std::printf("%-12s %10zu %12.1f %14lld\n", spec.name.c_str(),
                r.period_hours, r.f_statistic,
                static_cast<long long>(paper_requests));
    if (r.period_hours == 24) {
      ++at_24;
    } else if (r.period_hours == 1) {
      ++none;
    } else {
      ++other;
    }
  }
  row_rule(52);
  std::printf("24-hour period: %d disks; other periods: %d; none: %d\n",
              at_24, other, none);
  std::printf(
      "\nReading: the bulk of disks show a daily period, as in the paper.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
