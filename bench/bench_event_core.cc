// Event-core microbenchmarks (google-benchmark) plus a sweep-level macro
// benchmark. These pin the performance contract of the slab/sorted-run
// EventQueue (DESIGN.md Sec 10): batch schedule+fire, warm steady-state
// scheduling, cancellation churn through the tombstone/compaction path,
// persistent-event re-arming (the DiskModel completion pattern), and a
// full scenario sweep so queue wins are measured where they matter.
#include <benchmark/benchmark.h>

#include "pscrub.h"

namespace pscrub {
namespace {

// Cold path: a fresh Simulator per iteration, 1024 one-shot events with
// scattered times, drained to empty. Matches BM_EventQueueScheduleFire in
// bench_micro_perf so the two binaries cross-check each other.
void BM_EventCoreBatchScheduleDrain(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.after((i * 7919) % 100000, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventCoreBatchScheduleDrain);

// Warm path: one long-lived Simulator; every iteration schedules and
// drains a fresh batch. After the first iteration the slab and run vector
// are warm, so this isolates steady-state schedule+fire from slab growth
// and vector reallocation.
void BM_EventCoreSteadyState(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    const SimTime base = sim.now();
    for (int i = 0; i < 1024; ++i) {
      sim.at(base + (i * 7919) % 100000, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventCoreSteadyState);

// Cancellation churn: schedule 1024, cancel every other one, drain. Covers
// tombstoning, stale-head pruning, and slot reuse through the free list.
void BM_EventCoreCancelChurn(benchmark::State& state) {
  Simulator sim;
  std::vector<EventId> ids(1024);
  for (auto _ : state) {
    const SimTime base = sim.now();
    for (int i = 0; i < 1024; ++i) {
      ids[static_cast<std::size_t>(i)] =
          sim.at(base + (i * 7919) % 100000, [] {});
    }
    for (int i = 0; i < 1024; i += 2) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventCoreCancelChurn);

// Persistent re-arm: the dominant simulation pattern (a completion handler
// arms the next completion). One registered callback, re-armed from inside
// itself 1024 times per iteration -- zero allocation, zero callable moves.
void BM_EventCorePersistentRearm(benchmark::State& state) {
  Simulator sim;
  int remaining = 0;
  EventId tick = 0;
  tick = sim.add_persistent([&] {
    if (--remaining > 0) sim.arm_after(tick, 100);
  });
  for (auto _ : state) {
    remaining = 1024;
    sim.arm_after(tick, 100);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventCorePersistentRearm);

// Macro: a real scenario cell fanned across exp::sweep workers. Each task
// runs the full Simulator -> DiskModel -> BlockLayer -> workload+scrubber
// stack, so this measures the event core under its production event mix
// (disk completions, CFQ retry polls, scrubber issue delays, timeouts).
void BM_EventCoreScenarioSweep(benchmark::State& state) {
  std::vector<exp::ScenarioConfig> configs;
  for (int i = 0; i < 8; ++i) {
    exp::ScenarioConfig cfg;
    cfg.label = "bench.cell" + std::to_string(i);
    cfg.disk.capacity_bytes = 1LL << 30;
    cfg.disk.seed = static_cast<std::uint64_t>(i + 1);
    cfg.workload.kind = exp::WorkloadKind::kSequentialChunks;
    cfg.workload.seed = static_cast<std::uint64_t>(100 + i);
    cfg.scrubber.kind = exp::ScrubberKind::kBackToBack;
    cfg.scrubber.priority = block::IoPriority::kIdle;
    cfg.run_for = 2 * kSecond;
    configs.push_back(cfg);
  }
  exp::SweepOptions options;
  options.workers = static_cast<int>(state.range(0));
  std::int64_t requests = 0;
  for (auto _ : state) {
    const auto results = exp::run_scenarios(configs, options);
    requests = 0;
    for (const auto& r : results) {
      requests += r.workload_requests + r.scrub_requests;
    }
    benchmark::DoNotOptimize(requests);
  }
  // Items = block requests simulated (each is several queue events).
  state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_EventCoreScenarioSweep)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pscrub

BENCHMARK_MAIN();
