// Table II: idle-interval duration analysis for the Table I traces --
// mean, variance, and coefficient of variation -- next to the paper's
// measured values.
//
// Paper result: disk traces show CoV ~8-200 (vs 1.0 for an exponential);
// only the TPC-C runs are near-memoryless (CoV ~0.86).
#include "bench/common.h"

namespace pscrub::bench {
namespace {

struct PaperRow {
  const char* disk;
  double mean_s;
  double variance;
  double cov;
};

// Values as reported in Table II of the paper.
constexpr PaperRow kPaper[] = {
    {"MSRsrc11", 0.4640, 101.31, 21.693},
    {"MSRusr1", 0.0997, 0.7448, 8.6516},
    {"MSRproj2", 0.1384, 772.18, 200.75},
    {"MSRprn1", 0.2280, 8.3073, 12.641},
    {"HPc6t8d0", 0.1502, 4.3243, 13.845},
    {"HPc6t5d1", 0.4503, 180.13, 29.807},
    {"HPc6t5d0", 0.4345, 15.545, 9.0731},
    {"HPc3t3d0", 0.4555, 14.051, 8.2301},
    {"TPCdisk66", 0.0014, 1.5e-6, 0.8608},
    {"TPCdisk88", 0.0015, 1.6e-6, 0.8785},
};

void run() {
  header("Table II: idle interval duration analysis (paper vs generated)");
  std::printf("%-12s | %10s %12s %9s | %10s %12s %9s\n", "disk",
              "paper mean", "paper var", "paper CoV", "gen mean", "gen var",
              "gen CoV");
  row_rule(86);
  for (const PaperRow& row : kPaper) {
    const auto idles = idle_intervals_streamed(row.disk);
    const stats::Summary s = stats::summarize(idles);
    std::printf("%-12s | %10.4f %12.4g %9.3f | %10.4f %12.4g %9.3f\n",
                row.disk, row.mean_s, row.variance, row.cov, s.mean,
                s.variance, s.cov);
  }
  std::printf(
      "\nReading: generated traces land in the paper's regime -- means of\n"
      "0.1-0.5 s and CoV far above 1 for disk traces; TPC-C near 0.86.\n"
      "(Variance of heavy-tailed samples is intrinsically noisy.)\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
