// Figure 15: scrub throughput achievable by Waiting variants as a function
// of the mean foreground slowdown.
//
//  - Fixed request sizes (64K .. 4M), sweeping the wait threshold.
//  - The optimal fixed policy: per slowdown goal, the best (size,
//    threshold) found by the optimizer.
//  - Adaptive sizing (exponential a=2; linear a=2, b=64K), which the paper
//    shows does NOT beat the optimal fixed size.
#include <string>
#include <vector>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

constexpr const char* kDisk = "HPc6t5d1";

const std::vector<SimTime>& thresholds() {
  static const std::vector<SimTime> kThresholds = {
      16 * kMillisecond,   32 * kMillisecond,  64 * kMillisecond,
      128 * kMillisecond,  256 * kMillisecond, 512 * kMillisecond,
      1024 * kMillisecond, 2048 * kMillisecond, 4096 * kMillisecond};
  return kThresholds;
}

void run() {
  header(std::string("Figure 15: Waiting variants on ") + kDisk +
         " (throughput vs mean slowdown)");
  const trace::Trace t = scaled_trace(kDisk, 4'500'000);
  std::printf("%zu requests replayed (thinned)\n", t.size());
  const std::vector<SimTime> services = core::precompute_services(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));

  constexpr std::int64_t kKb = 1024;
  struct Variant {
    const char* label;
    core::ScrubSizer sizer;
  };
  const std::vector<Variant> variants = {
      {"Fixed 64K", core::ScrubSizer::fixed(64 * kKb)},
      {"Fixed 768K", core::ScrubSizer::fixed(768 * kKb)},
      {"Fixed 1216K", core::ScrubSizer::fixed(1216 * kKb)},
      {"Fixed 1280K", core::ScrubSizer::fixed(1280 * kKb)},
      {"Fixed 4M", core::ScrubSizer::fixed(4096 * kKb)},
      {"Adaptive exponential (a=2, start 64K, cap 4M)",
       core::ScrubSizer::exponential(64 * kKb, 2.0, 4096 * kKb)},
      {"Adaptive linear (a=2, b=64K, cap 4M)",
       core::ScrubSizer::linear(64 * kKb, 2.0, 64 * kKb, 4096 * kKb)},
  };

  // One flat scenario sweep covers every (variant, threshold) point.
  std::vector<exp::PolicySimScenario> scenarios;
  for (const Variant& v : variants) {
    for (SimTime th : thresholds()) {
      exp::PolicySimScenario s;
      s.trace = &t;
      s.services = &services;
      s.policy.kind = exp::PolicyKind::kWaiting;
      s.policy.threshold = th;
      s.sizer = v.sizer;
      scenarios.push_back(std::move(s));
    }
  }
  const auto results = exp::run_policy_scenarios(scenarios);

  std::size_t i = 0;
  for (const Variant& v : variants) {
    std::printf("\n%s:\n%-10s %16s %16s\n", v.label, "threshold",
                "mean sldn (ms)", "scrub MB/s");
    row_rule(46);
    for (SimTime th : thresholds()) {
      const auto& r = results[i++];
      std::printf("%-10s %16.3f %16.2f\n",
                  (std::to_string(th / kMillisecond) + "ms").c_str(),
                  r.mean_slowdown_ms, r.scrub_mb_s);
    }
  }

  // Optimal fixed policy: per slowdown goal, pick the best (size,
  // threshold) pair -- the paper's recommended procedure. optimize() runs
  // its per-size searches on the sweep worker pool internally.
  std::printf("\nOptimal fixed (size chosen per slowdown goal):\n");
  std::printf("%-12s %10s %12s %16s %14s\n", "goal (ms)", "size",
              "threshold", "mean sldn (ms)", "scrub MB/s");
  row_rule(70);
  core::OptimizerConfig oc;
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  oc.scrub_service = core::make_scrub_service(p);
  oc.services = &services;
  oc.binary_search_iters = 9;
  for (double goal_ms : {0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    core::SlowdownGoal goal;
    goal.mean = from_seconds(goal_ms * 1e-3);
    const auto best = core::optimize(t, oc, goal);
    std::printf("%-12.2f %10s %10lldms %16.3f %14.2f\n", goal_ms,
                size_label(best.request_bytes).c_str(),
                static_cast<long long>(best.threshold / kMillisecond),
                best.achieved_mean_slowdown_ms, best.scrub_mb_s);
  }
  std::printf(
      "\nReading: at equal mean slowdown the optimal fixed size beats both\n"
      "64K and the adaptive variants; 4M only wins when slowdown is cheap.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
