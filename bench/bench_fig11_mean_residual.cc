// Figure 11: expected remaining idle time as a function of how long the
// disk has already been idle.
//
// Paper result: for every Cello/MSR trace the curve increases by orders of
// magnitude (decreasing hazard rates) -- having been idle for long means
// the system will stay idle even longer. TPC-C is the memoryless
// counter-example: its curve is flat.
#include <array>

#include "bench/common.h"

namespace pscrub::bench {
namespace {

void run() {
  header("Figure 11: expected idle time remaining (s) after x s of idleness");
  const std::array<const char*, 6> disks = {"MSRsrc11",  "MSRusr1",
                                            "HPc6t5d1",  "HPc6t8d0",
                                            "TPCdisk66", "TPCdisk88"};
  std::vector<stats::ResidualLife> lives;
  for (const char* d : disks) lives.emplace_back(idle_intervals_streamed(d));

  std::printf("%-12s", "x (s)");
  for (const char* d : disks) std::printf(" %11s", d);
  std::printf("\n");
  row_rule(12 + 12 * 6);
  for (double x : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0}) {
    std::printf("%-12g", x);
    for (const auto& l : lives) {
      const double mr = l.mean_residual(x);
      if (mr > 0) {
        std::printf(" %11.4g", mr);
      } else {
        std::printf(" %11s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\nGrowth factor, E[remaining | idle 1s] / E[remaining | idle 1ms]:\n");
  for (std::size_t i = 0; i < disks.size(); ++i) {
    const double lo = lives[i].mean_residual(1e-3);
    const double hi = lives[i].mean_residual(1.0);
    if (lo > 0 && hi > 0) {
      std::printf("  %-10s %8.1fx\n", disks[i], hi / lo);
    } else {
      std::printf("  %-10s %8s\n", disks[i], "n/a");
    }
  }
  std::printf(
      "\nReading: strongly increasing for disk traces (decreasing hazard);\n"
      "flat for the memoryless TPC-C runs.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
