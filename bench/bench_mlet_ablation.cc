// Ablation: Mean Latent Error Time of sequential vs staggered scrubbing.
//
// This reproduces the *motivation* the paper inherits from Oprea & Juels
// [4]: LSEs arrive in spatially local bursts, and staggered probing (plus
// scanning the area on first detection) detects a burst far sooner than a
// sequential pass. The paper's own contribution is showing staggered costs
// nothing in throughput (Figs 5-7); this bench closes the loop on why one
// would want it at all.
#include "bench/common.h"

namespace pscrub::bench {
namespace {

// A 32 GB device keeps the ratio between error locality (hundreds of MB,
// per Bairavasundaram et al.'s locality analysis) and region size
// realistic without making the schedule table enormous: at R = 128 a
// region is 256 MB, on the order of the burst span -- the regime where
// staggered probing pays off (Oprea & Juels pick regions at the scale of
// error locality).
constexpr std::int64_t kTotalSectors = 62'500'000;  // ~32 GB
constexpr SimTime kHorizon = 90 * kDay;

void run() {
  header("MLET ablation: sequential vs staggered scrubbing");

  Rng rng(2024);
  core::LseModelConfig lse;
  lse.burst_interarrival_mean = 3 * kDay;
  lse.isolated_fraction = 0.4;
  lse.extra_errors_per_burst_mean = 7.0;
  lse.burst_span_bytes = 256LL << 20;
  const auto bursts =
      core::generate_lse_bursts(lse, kTotalSectors, kHorizon, rng);
  std::int64_t errors = 0;
  for (const auto& b : bursts) errors += static_cast<std::int64_t>(b.sectors.size());
  std::printf("injected %zu bursts / %lld errors over %.0f days\n",
              bursts.size(), static_cast<long long>(errors),
              to_seconds(kHorizon) / 86400.0);

  core::MletConfig mc;
  mc.request_service = disk::hitachi_ultrastar_15k450()
                           .sequential_verify_service(512 * 1024);
  mc.request_spacing = 2 * kSecond;  // a deliberately slow scrubber
  constexpr std::int64_t kRequestSectors = 512 * 1024 / disk::kSectorBytes;

  std::printf("\nWith scrub-on-detection (scan the area at first hit):\n");
  std::printf("%-24s %12s %12s %12s\n", "strategy", "MLET (h)", "worst (h)",
              "pass (h)");
  row_rule(64);
  {
    core::SequentialStrategy seq(kTotalSectors, kRequestSectors);
    const auto r = core::evaluate_mlet(seq, kTotalSectors, bursts, mc);
    std::printf("%-24s %12.2f %12.2f %12.2f\n", "sequential", r.mlet_hours,
                r.worst_hours, r.pass_hours);
  }
  for (int regions : {4, 16, 64, 128, 512}) {
    core::StaggeredStrategy stag(kTotalSectors, kRequestSectors, regions);
    const auto r = core::evaluate_mlet(stag, kTotalSectors, bursts, mc);
    char label[32];
    std::snprintf(label, sizeof(label), "staggered (R=%d)", regions);
    std::printf("%-24s %12.2f %12.2f %12.2f\n", label, r.mlet_hours,
                r.worst_hours, r.pass_hours);
  }

  std::printf("\nWithout the detection response (every error waits for its "
              "own segment):\n");
  std::printf("%-24s %12s\n", "strategy", "MLET (h)");
  row_rule(38);
  core::MletConfig plain = mc;
  plain.scrub_on_detection = false;
  {
    core::SequentialStrategy seq(kTotalSectors, kRequestSectors);
    const auto r = core::evaluate_mlet(seq, kTotalSectors, bursts, plain);
    std::printf("%-24s %12.2f\n", "sequential", r.mlet_hours);
  }
  {
    core::StaggeredStrategy stag(kTotalSectors, kRequestSectors, 128);
    const auto r = core::evaluate_mlet(stag, kTotalSectors, bursts, plain);
    std::printf("%-24s %12.2f\n", "staggered (R=128)", r.mlet_hours);
  }

  std::printf(
      "\nReading: staggered + scan-on-detect cuts MLET well below\n"
      "sequential; without the response, the schedules are equivalent --\n"
      "matching the analysis of Oprea & Juels.\n");
}

}  // namespace
}  // namespace pscrub::bench

int main() {
  pscrub::bench::ObsSession obs_session;
  pscrub::bench::run();
}
