#include "exp/scenario.h"

#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "block/cfq_scheduler.h"
#include "block/deadline_scheduler.h"
#include "block/noop_scheduler.h"
#include "core/cost_model.h"
#include "core/idle_decomp.h"
#include "obs/trace_event.h"
#include "disk/geometry.h"
#include "fault/fault_plan.h"
#include "raid/layout.h"

namespace pscrub::exp {

disk::DiskProfile profile_for(DiskKind kind) {
  switch (kind) {
    case DiskKind::kUltrastar15k450:
      return disk::hitachi_ultrastar_15k450();
    case DiskKind::kFujitsuMax3073rc:
      return disk::fujitsu_max3073rc();
    case DiskKind::kFujitsuMap3367np:
      return disk::fujitsu_map3367np();
    case DiskKind::kWdCaviar:
      return disk::wd_caviar();
    case DiskKind::kHitachiDeskstar:
      return disk::hitachi_deskstar();
  }
  throw std::logic_error("unknown DiskKind");
}

const char* disk_kind_name(DiskKind kind) {
  switch (kind) {
    case DiskKind::kUltrastar15k450:
      return "ultrastar15k450";
    case DiskKind::kFujitsuMax3073rc:
      return "max3073rc";
    case DiskKind::kFujitsuMap3367np:
      return "map3367np";
    case DiskKind::kWdCaviar:
      return "caviar";
    case DiskKind::kHitachiDeskstar:
      return "deskstar";
  }
  return "unknown";
}

disk::DiskProfile DiskSpec::profile() const {
  disk::DiskProfile p = profile_for(kind);
  if (capacity_bytes > 0) p.capacity_bytes = capacity_bytes;
  return p;
}

std::unique_ptr<core::ScrubStrategy> StrategySpec::build(
    std::int64_t total_sectors) const {
  switch (kind) {
    case StrategyKind::kSequential:
      return core::make_sequential(total_sectors, request_bytes);
    case StrategyKind::kStaggered:
      return core::make_staggered(total_sectors, request_bytes, regions);
  }
  throw std::logic_error("unknown StrategyKind");
}

core::ScheduleView StrategySpec::view(std::int64_t total_sectors) const {
  const std::int64_t request_sectors = disk::sectors_from_bytes(request_bytes);
  switch (kind) {
    case StrategyKind::kSequential:
      return core::ScheduleView::sequential(total_sectors, request_sectors);
    case StrategyKind::kStaggered:
      return core::ScheduleView::staggered(total_sectors, request_sectors,
                                           regions);
  }
  throw std::logic_error("unknown StrategyKind");
}

namespace {

std::unique_ptr<block::IoScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNoop:
      return std::make_unique<block::NoopScheduler>();
    case SchedulerKind::kCfq:
      return std::make_unique<block::CfqScheduler>();
    case SchedulerKind::kDeadline:
      return std::make_unique<block::DeadlineScheduler>();
  }
  throw std::logic_error("unknown SchedulerKind");
}

}  // namespace

void validate_scenario(const ScenarioConfig& config) {
  if (config.scrubber.kind != ScrubberKind::kNone &&
      config.scrubber.strategy.request_bytes <= 0) {
    throw std::invalid_argument(
        "ScenarioConfig: scrubber.strategy.request_bytes must be > 0, got " +
        std::to_string(config.scrubber.strategy.request_bytes));
  }
  if ((config.workload.kind == WorkloadKind::kSequentialChunks ||
       config.workload.kind == WorkloadKind::kRandomReads) &&
      config.workload.synthetic.request_bytes <= 0) {
    throw std::invalid_argument(
        "ScenarioConfig: workload.synthetic.request_bytes must be > 0, got " +
        std::to_string(config.workload.synthetic.request_bytes));
  }

  int total_disks = 1;
  int parity_disks = 0;
  if (config.raid.enabled) {
    raid::RaidConfig rc;
    rc.data_disks = config.raid.data_disks;
    rc.parity_disks = config.raid.parity_disks;
    rc.chunk_sectors = config.raid.chunk_sectors;
    const disk::DiskProfile p = config.disk.profile();
    // Constructing the layout runs its own validation: disk counts, chunk
    // size, and (the classic silent footgun) a member capacity smaller
    // than one complete stripe.
    const raid::RaidLayout layout(
        rc, disk::Geometry(p.capacity_bytes, p.outer_spt, p.inner_spt, p.zones)
                .total_sectors());
    total_disks = layout.total_disks();
    parity_disks = layout.parity_disks();
  }

  const fault::FaultSpec& f = config.fault;
  if (f.enabled) {
    if (f.error_model.transient_error_prob < 0.0 ||
        f.error_model.transient_error_prob >= 1.0) {
      throw std::invalid_argument(
          "ScenarioConfig: fault.error_model.transient_error_prob must be "
          "in [0, 1), got " +
          std::to_string(f.error_model.transient_error_prob));
    }
    std::set<int> failed;
    for (const fault::DiskFailureEvent& ev : f.fail_disk) {
      if (ev.disk < 0 || ev.disk >= total_disks) {
        throw std::invalid_argument(
            "ScenarioConfig: fault.fail_disk index " +
            std::to_string(ev.disk) + " outside [0, " +
            std::to_string(total_disks) + ")");
      }
      if (ev.at < 0) {
        throw std::invalid_argument(
            "ScenarioConfig: fault.fail_disk time for disk " +
            std::to_string(ev.disk) + " must be >= 0");
      }
      if (!failed.insert(ev.disk).second) {
        throw std::invalid_argument(
            "ScenarioConfig: fault.fail_disk lists disk " +
            std::to_string(ev.disk) + " more than once");
      }
    }
    if (config.raid.enabled &&
        static_cast<int>(failed.size()) > parity_disks) {
      throw std::invalid_argument(
          "ScenarioConfig: failing " + std::to_string(failed.size()) +
          " disks exceeds what " + std::to_string(parity_disks) +
          "-disk parity can cover; the array would lose data by "
          "construction");
    }
  }

  const FleetSpec& fl = config.fleet;
  if (fl.disks > 0) {
    // Fleet members are evaluated analytically; the stack-only specs have
    // no meaning there and silently ignoring them would mislead.
    if (config.raid.enabled) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet mode simulates independent members; "
          "disable raid");
    }
    if (config.workload.kind != WorkloadKind::kNone) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet mode models foreground load via "
          "fleet.util_min/util_max; set workload.kind = kNone");
    }
    if (config.spindown_threshold > 0) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet mode has no spin-down daemon; set "
          "spindown_threshold = 0");
    }
    if (config.scrubber.kind == ScrubberKind::kNone) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet mode needs a scrub schedule; set "
          "scrubber.kind and scrubber.strategy");
    }
    if (!config.fault.fail_disk.empty()) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet members model latent errors only, not "
          "whole-device failures; clear fault.fail_disk");
    }
    if (fl.shards < 0) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet.shards must be >= 0, got " +
          std::to_string(fl.shards));
    }
    if (fl.pacing.request_service <= 0 || fl.pacing.request_spacing < 0) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet.pacing needs request_service > 0 and "
          "request_spacing >= 0");
    }
    if (!(fl.util_min >= 0.0 && fl.util_min <= fl.util_max &&
          fl.util_max < 1.0)) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet utilization needs 0 <= util_min <= "
          "util_max < 1, got [" + std::to_string(fl.util_min) + ", " +
          std::to_string(fl.util_max) + "]");
    }
    if (config.run_for <= 0) {
      throw std::invalid_argument(
          "ScenarioConfig: fleet mode needs run_for > 0");
    }
    // Staggered feasibility (region size vs request size) depends on the
    // member geometry; surface it here rather than from inside a shard.
    const disk::DiskProfile p = config.disk.profile();
    config.scrubber.strategy.view(
        disk::Geometry(p.capacity_bytes, p.outer_spt, p.inner_spt, p.zones)
            .total_sectors());
  }

  const DaemonSpec& d = config.daemon;
  if (d.devices > 0) {
    // Daemon devices are paced analytically like fleet members; the
    // stack-only specs have no meaning here.
    if (fl.disks > 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon mode and fleet mode are exclusive; "
          "set fleet.disks = 0");
    }
    if (config.raid.enabled) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon mode drives independent devices; "
          "disable raid");
    }
    if (config.workload.kind != WorkloadKind::kNone) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon mode models foreground load via "
          "daemon.util_min/util_max; set workload.kind = kNone");
    }
    if (config.spindown_threshold > 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon mode has no spin-down daemon; set "
          "spindown_threshold = 0");
    }
    if (config.scrubber.kind == ScrubberKind::kNone) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon mode needs a scrub schedule; set "
          "scrubber.kind and scrubber.strategy");
    }
    if (!config.fault.fail_disk.empty()) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon devices model latent errors only, not "
          "whole-device failures; clear fault.fail_disk");
    }
    if (d.pacing.request_service <= 0 || d.pacing.request_spacing < 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon.pacing needs request_service > 0 and "
          "request_spacing >= 0");
    }
    if (!(d.util_min >= 0.0 && d.util_min <= d.util_max &&
          d.util_max < 1.0)) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon utilization needs 0 <= util_min <= "
          "util_max < 1, got [" + std::to_string(d.util_min) + ", " +
          std::to_string(d.util_max) + "]");
    }
    if (d.target_passes < 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon.target_passes must be >= 0, got " +
          std::to_string(d.target_passes));
    }
    if (d.rate_sectors_per_s < 0 || d.burst_sectors < 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon rate/burst must be >= 0, got rate " +
          std::to_string(d.rate_sectors_per_s) + ", burst " +
          std::to_string(d.burst_sectors));
    }
    if (d.checkpoint_interval < 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon.checkpoint_interval must be >= 0, got " +
          std::to_string(d.checkpoint_interval));
    }
    if (d.crash_at < 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon.crash_at must be >= 0, got " +
          std::to_string(d.crash_at));
    }
    if (d.client_commands < 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon.client_commands must be >= 0, got " +
          std::to_string(d.client_commands));
    }
    if (d.client_commands > 0 && d.client_interval <= 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon.client_interval must be > 0 when the "
          "operator client is enabled");
    }
    if (config.run_for <= 0) {
      throw std::invalid_argument(
          "ScenarioConfig: daemon mode needs run_for > 0");
    }
    // Staggered feasibility, as for fleets.
    const disk::DiskProfile p = config.disk.profile();
    config.scrubber.strategy.view(
        disk::Geometry(p.capacity_bytes, p.outer_spt, p.inner_spt, p.zones)
            .total_sectors());
  }
}

Scenario::Scenario(const ScenarioConfig& config) : config_(config) {
  validate_scenario(config_);
  if (config_.fleet.disks > 0) {
    throw std::invalid_argument(
        "fleet-mode configs (fleet.disks > 0) run via fleet::run_fleet, "
        "not the event-driven Scenario stack");
  }
  if (config_.daemon.devices > 0) {
    throw std::invalid_argument(
        "daemon-mode configs (daemon.devices > 0) run via "
        "daemon::run_daemon, not the event-driven Scenario stack");
  }
  if (config_.raid.enabled) {
    if (config_.workload.kind != WorkloadKind::kNone) {
      throw std::invalid_argument(
          "RAID scenarios drive foreground I/O through raid().read(); "
          "set workload.kind = kNone and schedule events via sim()");
    }
    raid::RaidConfig rc;
    rc.data_disks = config_.raid.data_disks;
    rc.parity_disks = config_.raid.parity_disks;
    rc.chunk_sectors = config_.raid.chunk_sectors;
    array_ = std::make_unique<raid::RaidArray>(sim_, rc, config_.disk.profile(),
                                               config_.raid.seed);
    for (int i = 0; i < array_->total_disks(); ++i) {
      array_->block(i).set_retry_policy(config_.retry);
    }
    if (config_.fault.enabled) {
      injector_ = std::make_unique<fault::FaultInjector>(
          sim_, fault::build_fault_plan(config_.fault, array_->total_disks(),
                                        array_->disk(0).total_sectors(),
                                        config_.run_for));
      for (int i = 0; i < array_->total_disks(); ++i) {
        injector_->attach(array_->disk(i), i);
      }
    }
    return;
  }

  disk_ = std::make_unique<disk::DiskModel>(sim_, config_.disk.profile(),
                                            config_.disk.seed);
  block_ = std::make_unique<block::BlockLayer>(
      sim_, *disk_, make_scheduler(config_.scheduler));
  block_->set_retry_policy(config_.retry);
  if (config_.fault.enabled) {
    injector_ = std::make_unique<fault::FaultInjector>(
        sim_, fault::build_fault_plan(config_.fault, 1, disk_->total_sectors(),
                                      config_.run_for));
    injector_->attach(*disk_, 0);
  }

  const WorkloadSpec& w = config_.workload;
  switch (w.kind) {
    case WorkloadKind::kNone:
      break;
    case WorkloadKind::kSequentialChunks:
      seq_workload_ = std::make_unique<workload::SequentialChunkWorkload>(
          sim_, *block_, w.synthetic, w.seed);
      break;
    case WorkloadKind::kRandomReads:
      rand_workload_ = std::make_unique<workload::RandomReadWorkload>(
          sim_, *block_, w.synthetic, w.seed);
      break;
    case WorkloadKind::kTraceReplay:
      if (w.trace == nullptr) {
        throw std::invalid_argument(
            "WorkloadKind::kTraceReplay needs a borrowed trace");
      }
      replay_workload_ = std::make_unique<workload::TraceReplayWorkload>(
          sim_, *block_, *w.trace, w.replay_priority);
      break;
  }
  if (workload::WorkloadMetrics* m = workload_metrics()) {
    m->keep_samples = w.keep_response_samples;
  }

  const ScrubberSpec& s = config_.scrubber;
  switch (s.kind) {
    case ScrubberKind::kNone:
      break;
    case ScrubberKind::kBackToBack: {
      core::ScrubberConfig sc;
      sc.path = s.path;
      sc.priority = s.priority;
      sc.inter_request_delay = s.inter_request_delay;
      sc.verify_kind = s.verify_kind;
      scrubber_ = std::make_unique<core::Scrubber>(
          sim_, *block_, s.strategy.build(disk_->total_sectors()), sc);
      break;
    }
    case ScrubberKind::kWaiting:
      waiting_scrubber_ = std::make_unique<core::WaitingScrubber>(
          sim_, *block_, s.strategy.build(disk_->total_sectors()),
          s.wait_threshold, s.verify_kind);
      break;
  }

  if (config_.spindown_threshold > 0) {
    spindown_ = std::make_unique<core::SpinDownDaemon>(
        sim_, *block_, config_.spindown_threshold);
  }
}

Scenario::~Scenario() = default;

void Scenario::start() {
  if (started_) return;
  started_ = true;

  if (array_ != nullptr) {
    const ScrubberSpec& s = config_.scrubber;
    switch (s.kind) {
      case ScrubberKind::kNone:
        break;
      case ScrubberKind::kWaiting:
        if (s.verify_kind == disk::CommandKind::kVerifyScsi) {
          // Array-managed scrubbers: reconstruct-and-rewrite repair on
          // every detection.
          array_->start_scrubbing(s.wait_threshold, s.strategy.request_bytes);
        } else {
          // Detection-free ATA verify per member (the Fig 1 pathology in a
          // RAID setting): no repair hook, so build plain scrubbers.
          for (int i = 0; i < array_->total_disks(); ++i) {
            auto ms = std::make_unique<core::WaitingScrubber>(
                sim_, array_->block(i),
                s.strategy.build(array_->disk(i).total_sectors()),
                s.wait_threshold, s.verify_kind);
            if (timeline_ != nullptr) {
              ms->set_timeline({timeline_, timeline_prefix_ + ".disk" +
                                               std::to_string(i) + ".scrub"});
            }
            ms->start();
            member_scrubbers_.push_back(std::move(ms));
          }
        }
        break;
      case ScrubberKind::kBackToBack:
        throw std::invalid_argument(
            "RAID scenarios support ScrubberKind::kWaiting only");
    }
    return;
  }

  if (seq_workload_) seq_workload_->start();
  if (rand_workload_) rand_workload_->start();
  if (replay_workload_) replay_workload_->start();
  if (scrubber_) scrubber_->start();
  if (waiting_scrubber_) waiting_scrubber_->start();
  if (spindown_) spindown_->start();
}

void Scenario::run() {
  start();
  sim_.run_until(sim_.now() + config_.run_for);
}

void Scenario::stop_scrubbing() {
  if (scrubber_) scrubber_->stop();
  if (waiting_scrubber_) waiting_scrubber_->stop();
  for (auto& ms : member_scrubbers_) ms->stop();
  if (array_ != nullptr) array_->stop_scrubbing();
}

const workload::WorkloadMetrics* Scenario::workload_metrics() const {
  if (seq_workload_) return &seq_workload_->metrics();
  if (rand_workload_) return &rand_workload_->metrics();
  if (replay_workload_) return &replay_workload_->metrics();
  return nullptr;
}

workload::WorkloadMetrics* Scenario::workload_metrics() {
  return const_cast<workload::WorkloadMetrics*>(
      static_cast<const Scenario*>(this)->workload_metrics());
}

std::int64_t Scenario::scrub_request_count() const {
  if (scrubber_) return scrubber_->stats().requests.value();
  if (waiting_scrubber_) return waiting_scrubber_->stats().requests.value();
  std::int64_t total = 0;
  for (const auto& ms : member_scrubbers_) total += ms->stats().requests.value();
  return total;
}

std::int64_t Scenario::scrubbed_bytes() const {
  if (scrubber_) return scrubber_->stats().bytes.value();
  if (waiting_scrubber_) return waiting_scrubber_->stats().bytes.value();
  std::int64_t total = 0;
  for (const auto& ms : member_scrubbers_) total += ms->stats().bytes.value();
  if (array_ != nullptr) total += array_->scrubbed_bytes();
  return total;
}

ScenarioResult Scenario::take_result() {
  ScenarioResult r;
  r.label = config_.label;
  r.ran_for = config_.run_for;

  if (workload::WorkloadMetrics* m = workload_metrics()) {
    r.workload_requests = m->requests.value();
    r.workload_bytes = m->bytes.value();
    r.workload_mb_s = m->throughput_mb_s(r.ran_for);
    r.workload_mean_latency_ms = m->mean_latency_ms();
    r.response_seconds = std::move(m->response_seconds);
  }

  r.scrub_requests = scrub_request_count();
  r.scrub_bytes = scrubbed_bytes();
  r.scrub_mb_s = obs::throughput_mb_s(r.scrub_bytes, r.ran_for);

  if (block_ != nullptr) {
    r.collisions = block_->stats().collisions;
    r.collision_delay_sum = block_->stats().collision_delay_sum;
    r.io_errors = block_->stats().errors;
    r.io_timeouts = block_->stats().timeouts;
    r.io_retries = block_->stats().retries;
  }
  if (array_ != nullptr) {
    for (int i = 0; i < array_->total_disks(); ++i) {
      const block::BlockLayerStats& bs = array_->block(i).stats();
      r.io_errors += bs.errors;
      r.io_timeouts += bs.timeouts;
      r.io_retries += bs.retries;
    }
    r.raid_lost_sectors = array_->stats().lost_sectors;
  }
  if (disk_ != nullptr) {
    r.energy_joules = disk_->energy_joules();
    r.spinups = disk_->spinups();
    r.spinup_wait = disk_->spinup_wait();
  }
  if (injector_ != nullptr) {
    r.fault_injected_sectors = injector_->injected_sectors();
    r.fault_detections =
        static_cast<std::int64_t>(injector_->detections().size());
    r.fault_mean_detection_hours = injector_->mean_detection_hours();
  }
  return r;
}

void Scenario::export_to(obs::Registry& registry, const std::string& prefix) {
  if (workload::WorkloadMetrics* m = workload_metrics()) {
    m->export_to(registry, prefix + ".workload");
  }
  if (scrubber_) scrubber_->stats().export_to(registry, prefix + ".scrub");
  if (waiting_scrubber_) {
    waiting_scrubber_->stats().export_to(registry, prefix + ".scrub");
  }
  for (std::size_t i = 0; i < member_scrubbers_.size(); ++i) {
    member_scrubbers_[i]->stats().export_to(
        registry, prefix + ".scrub.disk" + std::to_string(i));
  }
  if (block_ != nullptr) {
    block_->stats().export_to(registry, prefix + ".block");
  }
  if (disk_ != nullptr) {
    disk_->counters().export_to(registry, prefix + ".disk");
  }
  if (array_ != nullptr) {
    array_->stats().export_to(registry, prefix + ".raid");
    for (int i = 0; i < array_->total_disks(); ++i) {
      array_->block(i).stats().export_to(
          registry, prefix + ".block.disk" + std::to_string(i));
    }
  }
  if (injector_ != nullptr) {
    injector_->export_to(registry, prefix + ".fault");
  }
}

void ScenarioResult::export_to(obs::Registry& registry,
                               const std::string& prefix) const {
  registry.counter(prefix + ".workload.requests") += workload_requests;
  registry.counter(prefix + ".workload.bytes") += workload_bytes;
  registry.gauge(prefix + ".workload.mb_s").set(workload_mb_s);
  registry.gauge(prefix + ".workload.mean_latency_ms")
      .set(workload_mean_latency_ms);
  registry.counter(prefix + ".scrub.requests") += scrub_requests;
  registry.counter(prefix + ".scrub.bytes") += scrub_bytes;
  registry.gauge(prefix + ".scrub.mb_s").set(scrub_mb_s);
  registry.counter(prefix + ".block.collisions") += collisions;
  registry.gauge(prefix + ".block.collision_delay_ms")
      .set(to_milliseconds(collision_delay_sum));
  registry.gauge(prefix + ".disk.energy_joules").set(energy_joules);
  registry.counter(prefix + ".disk.spinups") += spinups;
  registry.gauge(prefix + ".disk.spinup_wait_ms")
      .set(to_milliseconds(spinup_wait));
  registry.counter(prefix + ".io.errors") += io_errors;
  registry.counter(prefix + ".io.timeouts") += io_timeouts;
  registry.counter(prefix + ".io.retries") += io_retries;
  registry.counter(prefix + ".fault.injected_sectors") +=
      fault_injected_sectors;
  registry.counter(prefix + ".fault.detections") += fault_detections;
  registry.gauge(prefix + ".fault.mean_detection_hours")
      .set(fault_mean_detection_hours);
  registry.counter(prefix + ".raid.lost_sectors") += raid_lost_sectors;
}

void Scenario::attach_timeline(obs::Timeline& timeline,
                               const std::string& prefix) {
  timeline_ = &timeline;
  timeline_prefix_ = prefix;
  if (array_ != nullptr) {
    array_->attach_timeline(timeline, prefix);
    return;
  }
  if (disk_) disk_->set_timeline({&timeline, prefix + ".disk"});
  if (block_) block_->set_timeline({&timeline, prefix + ".block"});
  if (scrubber_) scrubber_->set_timeline({&timeline, prefix + ".scrub"});
  if (waiting_scrubber_) {
    waiting_scrubber_->set_timeline({&timeline, prefix + ".scrub"});
  }
}

ScenarioResult run_scenario(const ScenarioConfig& config,
                            obs::Timeline* timeline) {
  // Direct callers (examples, single-point benches) get PSCRUB_TIMELINE
  // for free; sweep tasks always pass their private per-task timeline.
  if (timeline == nullptr) timeline = &obs::Timeline::global();
  Scenario scenario(config);
  if (timeline != nullptr && timeline->enabled() && config.timeline.enabled) {
    const std::string& prefix = config.timeline.prefix.empty()
                                    ? config.label
                                    : config.timeline.prefix;
    if (!prefix.empty()) scenario.attach_timeline(*timeline, prefix);
  }
  scenario.run();
  return scenario.take_result();
}

std::vector<ScenarioResult> run_scenarios(
    const std::vector<ScenarioConfig>& configs, const SweepOptions& options) {
  return sweep<ScenarioResult>(
      configs.size(),
      [&configs](TaskContext& ctx) {
        ScenarioResult r = run_scenario(configs[ctx.index], &ctx.timeline);
        if (!r.label.empty()) r.export_to(ctx.registry, r.label);
        return r;
      },
      options);
}

std::unique_ptr<core::IdlePolicy> PolicySpec::build() const {
  switch (kind) {
    case PolicyKind::kWaiting:
      return std::make_unique<core::WaitingPolicy>(threshold);
    case PolicyKind::kLosslessWaiting:
      return std::make_unique<core::LosslessWaitingPolicy>(threshold);
    case PolicyKind::kAutoRegression:
      return std::make_unique<core::ArPolicy>(threshold, ar_window,
                                              ar_refit_every, ar_max_order);
    case PolicyKind::kArWaiting:
      return std::make_unique<core::ArWaitingPolicy>(threshold, secondary);
    case PolicyKind::kAcd:
      return std::make_unique<core::AcdPolicy>(threshold);
    case PolicyKind::kMovingAverage:
      return std::make_unique<core::MovingAveragePolicy>(threshold);
    case PolicyKind::kDualThreshold:
      return std::make_unique<core::DualThresholdPolicy>(threshold, secondary);
    case PolicyKind::kOracle:
      return std::make_unique<core::OraclePolicy>(threshold);
  }
  throw std::logic_error("unknown PolicyKind");
}

core::PolicySimResult run_policy_scenario(const PolicySimScenario& scenario,
                                          obs::Timeline* timeline) {
  if (scenario.trace == nullptr) {
    throw std::invalid_argument("PolicySimScenario needs a borrowed trace");
  }
  // Direct callers get PSCRUB_TIMELINE for free (sweeps pass per-task
  // timelines); recording still requires a non-empty scenario label.
  if (timeline == nullptr) timeline = &obs::Timeline::global();
  const disk::DiskProfile profile = profile_for(scenario.disk);
  core::PolicySimConfig config;
  if (scenario.services != nullptr) {
    config.services = scenario.services;
  } else {
    // make_foreground_service is stateful (tracks the head position); a
    // fresh instance per call keeps sweep tasks independent.
    config.foreground_service = core::make_foreground_service(profile);
  }
  config.scrub_service =
      scenario.staggered_service
          ? core::make_staggered_scrub_service(profile, scenario.regions)
          : core::make_scrub_service(profile);
  config.sizer = scenario.sizer;
  config.keep_response_samples = scenario.keep_response_samples;
  if (timeline != nullptr && timeline->enabled() && !scenario.label.empty()) {
    config.timeline = {timeline, scenario.label};
  }
  // Plain Waiting scenarios with a fixed request size take the batched
  // decomposition path: one O(records) idle extraction, then an
  // O(intervals) evaluation -- bit-identical to the reference replay
  // (tests/test_policy_batched.cc). Anything the decomposition cannot
  // express (other policies, growing sizers, response samples, timeline
  // series, tracer instants) replays the trace through the reference.
  const bool batchable =
      scenario.policy.kind == PolicyKind::kWaiting &&
      scenario.sizer.kind() == core::ScrubSizer::Kind::kFixed &&
      !scenario.keep_response_samples && !config.timeline.enabled() &&
      !obs::Tracer::global().enabled();
  if (batchable) {
    core::WaitingGridRequest request;
    request.request_bytes = scenario.sizer.start_bytes();
    request.request_service = config.scrub_service(request.request_bytes);
    const core::IdleDecomposition decomp =
        config.services != nullptr
            ? core::IdleDecomposition::from_trace(*scenario.trace,
                                                  *config.services)
            : core::IdleDecomposition::from_trace(*scenario.trace,
                                                  config.foreground_service);
    return core::run_waiting_single(decomp, request,
                                    scenario.policy.threshold);
  }
  std::unique_ptr<core::IdlePolicy> policy = scenario.policy.build();
  return core::run_policy_sim(*scenario.trace, *policy, config);
}

std::vector<core::PolicySimResult> run_policy_scenarios(
    const std::vector<PolicySimScenario>& scenarios,
    const SweepOptions& options) {
  return sweep<core::PolicySimResult>(
      scenarios.size(),
      [&scenarios](TaskContext& ctx) {
        const PolicySimScenario& s = scenarios[ctx.index];
        core::PolicySimResult r = run_policy_scenario(s, &ctx.timeline);
        if (!s.label.empty()) r.export_to(ctx.registry, s.label);
        return r;
      },
      options);
}

double measure_sequential_verify(const disk::DiskProfile& profile,
                                 disk::CommandKind kind, std::int64_t bytes,
                                 int n) {
  Simulator sim;
  disk::DiskModel d(sim, profile, 7);
  const std::int64_t sectors = disk::sectors_from_bytes(bytes);
  SimTime total = 0;
  disk::Lbn lbn = 0;
  for (int i = 0; i < n; ++i) {
    if (lbn + sectors > d.total_sectors()) lbn = 0;
    SimTime latency = 0;
    d.submit({kind, lbn, sectors},
             [&](const disk::DiskCommand&, SimTime l) { latency = l; });
    sim.run();
    total += latency;
    lbn += sectors;
  }
  return to_milliseconds(total) / n;
}

}  // namespace pscrub::exp
