// Declarative scenario engine: one value-type config describes a full
// simulation stack -- disk profile, I/O scheduler, foreground workload (or
// trace replay), scrubber (back-to-back or Waiting), RAID array, spin-down
// daemon -- and the engine assembles and runs it. This replaces the
// copy-pasted Simulator -> DiskModel -> BlockLayer -> Workload -> Scrubber
// wiring that every bench and example used to hand-roll.
//
// Two families of scenario, matching the paper's two methodologies:
//
//   ScenarioConfig / Scenario / run_scenario -- the event-driven stack
//   (Sec III/IV figures: throughput, priorities, response-time CDFs).
//
//   PolicySimScenario / run_policy_scenario -- the fast trace-driven
//   policy simulator (Sec V figures: collision rate vs idle utilization,
//   slowdown vs scrub throughput).
//
// Both have sweep forms (run_scenarios / run_policy_scenarios) that fan a
// config vector across exp::sweep's deterministic worker pool: results
// come back in config order, per-task registries merge in config order,
// and the output is bit-identical for any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "block/block_layer.h"
#include "core/idle_policy.h"
#include "core/lse.h"
#include "core/policy_sim.h"
#include "core/scrub_sizer.h"
#include "core/scrub_strategy.h"
#include "core/scrubber.h"
#include "core/spin_down.h"
#include "disk/disk_model.h"
#include "disk/profile.h"
#include "exp/sweep.h"
#include "fault/injector.h"
#include "raid/array.h"
#include "sim/simulator.h"
#include "trace/record.h"
#include "workload/synthetic_workload.h"
#include "workload/trace_replay.h"

namespace pscrub::exp {

// ---------------------------------------------------------------------------
// Declarative specs (plain value types; everything a stack needs).

/// The catalog of modelled drives (disk/profile.h) by name.
enum class DiskKind : std::uint8_t {
  kUltrastar15k450,  // Hitachi Ultrastar 15K450 (SAS reference drive)
  kFujitsuMax3073rc, // Fujitsu MAX3073RC (SAS)
  kFujitsuMap3367np, // Fujitsu MAP3367NP (SCSI)
  kWdCaviar,         // WD Caviar (SATA)
  kHitachiDeskstar,  // Hitachi Deskstar (SATA)
};

disk::DiskProfile profile_for(DiskKind kind);
const char* disk_kind_name(DiskKind kind);

struct DiskSpec {
  DiskKind kind = DiskKind::kUltrastar15k450;
  /// Overrides the profile's capacity when > 0 (small members keep RAID
  /// scenarios fast).
  std::int64_t capacity_bytes = 0;
  std::uint64_t seed = 1;

  /// The profile with overrides applied.
  disk::DiskProfile profile() const;
};

enum class SchedulerKind : std::uint8_t { kNoop, kCfq, kDeadline };

enum class WorkloadKind : std::uint8_t {
  kNone,
  kSequentialChunks,  // Sec IV-B sequential synthetic workload
  kRandomReads,       // Sec IV-B random synthetic workload
  kTraceReplay,       // open-loop replay of a borrowed trace
};

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kNone;
  /// Synthetic kinds only.
  workload::SyntheticConfig synthetic;
  std::uint64_t seed = 42;
  /// kTraceReplay only; borrowed, must outlive the scenario.
  const trace::Trace* trace = nullptr;
  block::IoPriority replay_priority = block::IoPriority::kBestEffort;
  /// Keep per-request response samples (exact ECDFs); costs memory.
  bool keep_response_samples = false;
};

enum class StrategyKind : std::uint8_t { kSequential, kStaggered };

struct StrategySpec {
  StrategyKind kind = StrategyKind::kSequential;
  std::int64_t request_bytes = 64 * 1024;
  int regions = 128;  // staggered only

  std::unique_ptr<core::ScrubStrategy> build(std::int64_t total_sectors) const;

  /// The same schedule in closed form (core::ScheduleView): what the fleet
  /// layer evaluates against struct-of-arrays state without a per-disk
  /// strategy object. Bit-identical to walking build()'s extent sequence.
  core::ScheduleView view(std::int64_t total_sectors) const;
};

enum class ScrubberKind : std::uint8_t {
  kNone,
  kBackToBack,  // core::Scrubber: back-to-back / fixed-delay issue
  kWaiting,     // core::WaitingScrubber: the Sec V design
};

struct ScrubberSpec {
  ScrubberKind kind = ScrubberKind::kNone;
  StrategySpec strategy;
  /// kBackToBack knobs.
  core::IssuePath path = core::IssuePath::kKernel;
  block::IoPriority priority = block::IoPriority::kIdle;
  SimTime inter_request_delay = 0;
  /// kWaiting knobs.
  SimTime wait_threshold = 50 * kMillisecond;
  /// Verify primitive (kVerifyAta reproduces the Fig 1 cache pathology).
  disk::CommandKind verify_kind = disk::CommandKind::kVerifyScsi;
};

struct RaidSpec {
  bool enabled = false;
  int data_disks = 4;
  int parity_disks = 1;
  std::int64_t chunk_sectors = 128;  // 64 KB chunks
  std::uint64_t seed = 2024;
};

/// Fleet mode (src/fleet): the same ScenarioConfig, scaled out to
/// `disks` members evaluated analytically instead of one event-driven
/// stack. Disk geometry comes from ScenarioConfig::disk, the scrub
/// schedule from scrubber.strategy, per-member faults from
/// ScenarioConfig::fault (disk i seeded task_seed(fault.seed, i)), and
/// the horizon from run_for. Fleet scenarios reject the stack-only specs
/// (RAID, workloads, spin-down) in validate_scenario; run them through
/// fleet::run_fleet, not Scenario.
struct FleetSpec {
  /// Member count; > 0 turns fleet mode on.
  std::int64_t disks = 0;
  /// Sub-fleet count; 0 picks a size-based default. Results are
  /// bit-identical for any value (shards merge in order, like sweep
  /// tasks).
  int shards = 0;
  /// Scrub pacing and detection semantics (core::evaluate_mlet).
  /// request_service is the per-extent service time at an idle disk;
  /// each member's pace is stretched by its utilization draw.
  core::MletConfig pacing;
  /// Per-member foreground utilization, drawn uniformly from
  /// [util_min, util_max] with Rng(task_seed(util_seed, disk_index)).
  /// Utilization stretches the scrub pass (scrubbing runs in idle time)
  /// and sets the foreground slowdown model's load term.
  double util_min = 0.0;
  double util_max = 0.0;
  std::uint64_t util_seed = 11;
};

/// Daemon mode (src/daemon): a long-running control plane driving one
/// paced scrub per device over the event core, with operator commands
/// (start/pause/resume/cancel/status/set-rate), per-scrub token-bucket
/// bandwidth caps, and versioned progress checkpoints that survive a
/// crash (in-sim injected via `crash_at`, or a process kill resumed via
/// daemon::run_daemon's checkpoint file). Device geometry comes from
/// ScenarioConfig::disk, the scrub schedule from scrubber.strategy,
/// per-device faults from ScenarioConfig::fault (device i seeded
/// task_seed(fault.seed, i)), and the horizon from run_for. Daemon
/// scenarios reject the stack-only specs (RAID, workloads, spin-down)
/// and fleet mode in validate_scenario; run them through
/// daemon::run_daemon, not Scenario.
struct DaemonSpec {
  /// Device count; > 0 turns daemon mode on.
  std::int64_t devices = 0;
  /// Scrub pacing: request_service + request_spacing is the per-extent
  /// step at an idle device; each device's pace is stretched by its
  /// utilization draw (scrubbing runs in idle time), exactly like fleet
  /// members.
  core::MletConfig pacing;
  /// Per-device foreground utilization, drawn uniformly from
  /// [util_min, util_max] with Rng(task_seed(util_seed, device)).
  double util_min = 0.0;
  double util_max = 0.0;
  std::uint64_t util_seed = 11;
  /// Scrub passes after which a job reports done (0 = run to horizon).
  std::int64_t target_passes = 1;
  /// Initial per-scrub bandwidth cap in sectors/second (0 = uncapped);
  /// operators retune it at runtime with set-rate.
  std::int64_t rate_sectors_per_s = 0;
  /// Token-bucket depth in sectors (0 = one request extent).
  std::int64_t burst_sectors = 0;
  /// Sim-time interval between progress checkpoints (0 = none). Odd
  /// values are rounded up: daemon work runs on even nanoseconds, the
  /// operator client on odd ones, so replays never race a command.
  SimTime checkpoint_interval = 0;
  /// When non-empty, every checkpoint is also persisted here (written to
  /// a temp file and atomically renamed) for cross-process resume.
  std::string checkpoint_path;
  /// > 0: inject a daemon crash at this sim time -- the whole in-memory
  /// control plane is torn down and rebuilt from the last checkpoint
  /// (from scratch when none was taken yet). Final results must be
  /// byte-identical to an uninterrupted run.
  SimTime crash_at = 0;
  /// Operator client: issues this many commands (0 = no client), spaced
  /// ~client_interval apart, drawn deterministically from client_seed.
  std::int64_t client_commands = 0;
  SimTime client_interval = kSecond;
  std::uint64_t client_seed = 23;
};

/// Timeline wiring (obs/timeline.h). When run_scenario (or the sweep
/// form) is handed an enabled timeline and `enabled` here is true, the
/// scenario's components record under `prefix` (the config label when
/// empty): disk utilization at "<p>.disk.util.*", block-layer series at
/// "<p>.block.*", scrub progress at "<p>.scrub.progress.*"; RAID members
/// under "<p>.diskN...". A scenario whose resolved prefix is empty stays
/// unwired, mirroring the registry-export rule.
struct TimelineSpec {
  bool enabled = true;
  std::string prefix;
};

/// One value describes the whole stack.
struct ScenarioConfig {
  /// Free-form scenario identity; carried into results and used as the
  /// registry prefix, so sweep output is self-describing (no globals).
  std::string label;
  DiskSpec disk;
  SchedulerKind scheduler = SchedulerKind::kCfq;
  /// When enabled, `disk` describes each member and the scenario owns a
  /// raid::RaidArray instead of a single DiskModel/BlockLayer.
  RaidSpec raid;
  WorkloadSpec workload;
  ScrubberSpec scrubber;
  /// Declarative fault plan (LSE bursts, transient errors, device
  /// failures). Per-disk randomness derives from fault.seed via
  /// exp::task_seed, so sweeps stay bit-identical across worker counts.
  fault::FaultSpec fault;
  /// Host-side error handling installed on every block layer the scenario
  /// builds (single disk or each RAID member).
  block::RetryPolicy retry;
  /// Spin-down daemon idleness threshold (0 = no daemon).
  SimTime spindown_threshold = 0;
  /// Fleet mode (fleet.disks > 0): scale this config out to a population
  /// of analytically-evaluated members. See FleetSpec.
  FleetSpec fleet;
  /// Daemon mode (daemon.devices > 0): a crash-safe scrub control plane
  /// over many devices. See DaemonSpec.
  DaemonSpec daemon;
  SimTime run_for = 60 * kSecond;
  /// Timeline opt-out / prefix override (see TimelineSpec).
  TimelineSpec timeline;
};

/// Validates `config` without building the stack: rejects zero/negative
/// scrubber or workload request sizes, RAID geometries without a complete
/// stripe, out-of-range or duplicate fail_disk indices, failing more disks
/// than parity covers, malformed error-model probabilities, and fleet
/// configs that mix in stack-only specs (RAID, workloads, spin-down) or
/// carry out-of-range pacing/utilization. Throws std::invalid_argument
/// with a descriptive message. Scenario's constructor calls this; it is
/// exposed for config producers that want to fail fast before a sweep.
void validate_scenario(const ScenarioConfig& config);

// ---------------------------------------------------------------------------
// Results (value types: safe to produce on sweep workers and merge).

struct ScenarioResult {
  std::string label;
  /// The observation window (config.run_for).
  SimTime ran_for = 0;

  // Foreground workload.
  std::int64_t workload_requests = 0;
  std::int64_t workload_bytes = 0;
  double workload_mb_s = 0.0;
  double workload_mean_latency_ms = 0.0;
  std::vector<double> response_seconds;  // when keep_response_samples

  // Scrubber (summed over RAID members when applicable).
  std::int64_t scrub_requests = 0;
  std::int64_t scrub_bytes = 0;
  double scrub_mb_s = 0.0;

  // Block layer (single-disk scenarios).
  std::int64_t collisions = 0;
  SimTime collision_delay_sum = 0;

  // Disk power/mechanics (single-disk scenarios; spin-down studies).
  double energy_joules = 0.0;
  std::int64_t spinups = 0;
  SimTime spinup_wait = 0;

  // Error path (summed over RAID members when applicable).
  std::int64_t io_errors = 0;     // block completions with non-ok status
  std::int64_t io_timeouts = 0;
  std::int64_t io_retries = 0;    // host retry attempts
  std::int64_t fault_injected_sectors = 0;
  std::int64_t fault_detections = 0;
  double fault_mean_detection_hours = 0.0;
  std::int64_t raid_lost_sectors = 0;

  /// Publishes the summary fields under `prefix` (e.g. "fig06.cfq.seq").
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

// ---------------------------------------------------------------------------
// The built stack.

/// Owns every component of a configured stack and keeps the borrowed
/// references alive for the simulation's lifetime. Construct, optionally
/// schedule extra events through sim(), then run(); or use run_scenario()
/// when the defaults are enough.
class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioConfig& config() const { return config_; }
  Simulator& sim() { return sim_; }

  bool has_raid() const { return array_ != nullptr; }
  /// Single-disk accessors; invalid in RAID scenarios.
  disk::DiskModel& disk() { return *disk_; }
  block::BlockLayer& block() { return *block_; }
  /// RAID accessor; invalid otherwise.
  raid::RaidArray& raid() { return *array_; }

  /// The fault injector, or nullptr when config.fault is disabled.
  fault::FaultInjector* fault_injector() { return injector_.get(); }
  const fault::FaultInjector* fault_injector() const {
    return injector_.get();
  }

  /// Starts workload, scrubber, and daemons at the current sim time
  /// (idempotent). Separated from run() so callers can schedule their own
  /// events first.
  void start();

  /// start() + run_until(now + config.run_for).
  void run();

  /// Stops every scrubber the scenario started (single-disk, RAID-member,
  /// or array-managed); e.g. before failing a disk and rebuilding.
  void stop_scrubbing();

  /// Foreground metrics, or nullptr when the scenario has no workload.
  const workload::WorkloadMetrics* workload_metrics() const;
  workload::WorkloadMetrics* workload_metrics();

  /// Scrubber request/byte accounting (RAID: summed over members), zeroes
  /// when the scenario has no scrubber.
  std::int64_t scrub_request_count() const;
  std::int64_t scrubbed_bytes() const;

  /// Snapshot of everything into the value-type result (moves response
  /// samples out of the workload metrics).
  ScenarioResult take_result();

  /// Publishes workload/scrubber/block/disk metric bundles into `registry`
  /// under `prefix` (what PSCRUB_METRICS consumers expect).
  void export_to(obs::Registry& registry, const std::string& prefix);

  /// Wires every built component into `timeline` under `prefix` (series
  /// are created lazily on first record). Call before start(); scrubbers
  /// the scenario builds later (RAID members) inherit the wiring.
  void attach_timeline(obs::Timeline& timeline, const std::string& prefix);

 private:
  ScenarioConfig config_;
  Simulator sim_;
  // Single-disk stack.
  std::unique_ptr<disk::DiskModel> disk_;
  std::unique_ptr<block::BlockLayer> block_;
  // RAID stack.
  std::unique_ptr<raid::RaidArray> array_;
  std::vector<std::unique_ptr<core::WaitingScrubber>> member_scrubbers_;
  // Workloads (at most one non-null).
  std::unique_ptr<workload::SequentialChunkWorkload> seq_workload_;
  std::unique_ptr<workload::RandomReadWorkload> rand_workload_;
  std::unique_ptr<workload::TraceReplayWorkload> replay_workload_;
  // Scrubbers (at most one non-null; RAID Waiting uses the array's own).
  std::unique_ptr<core::Scrubber> scrubber_;
  std::unique_ptr<core::WaitingScrubber> waiting_scrubber_;
  std::unique_ptr<core::SpinDownDaemon> spindown_;
  std::unique_ptr<fault::FaultInjector> injector_;
  bool started_ = false;
  // attach_timeline wiring (for scrubbers built after attachment).
  obs::Timeline* timeline_ = nullptr;
  std::string timeline_prefix_;
};

/// Builds, runs, and snapshots one scenario. When `timeline` is enabled,
/// the stack records into it per config.timeline; nullptr selects
/// obs::Timeline::global() (the PSCRUB_TIMELINE export target), so direct
/// callers honor the env var without extra wiring.
ScenarioResult run_scenario(const ScenarioConfig& config,
                            obs::Timeline* timeline = nullptr);

/// Deterministic parallel sweep over a config vector: results in config
/// order; each result also exported into the task registry under its
/// label (when non-empty), merged per `options`.
std::vector<ScenarioResult> run_scenarios(
    const std::vector<ScenarioConfig>& configs,
    const SweepOptions& options = {});

// ---------------------------------------------------------------------------
// Fast trace-driven policy scenarios (the run_policy_sim path).

enum class PolicyKind : std::uint8_t {
  kWaiting,
  kLosslessWaiting,
  kAutoRegression,
  kArWaiting,
  kAcd,
  kMovingAverage,
  kDualThreshold,
  kOracle,
};

struct PolicySpec {
  PolicyKind kind = PolicyKind::kWaiting;
  /// Wait threshold (Waiting family), prediction cutoff (AR/ACD/MA), or
  /// minimum interval length (Oracle).
  SimTime threshold = 64 * kMillisecond;
  /// Second parameter: AR prediction cutoff for kArWaiting, per-interval
  /// firing budget for kDualThreshold.
  SimTime secondary = 0;
  /// AR predictor knobs (kAutoRegression only; kArWaiting uses defaults).
  std::size_t ar_window = 4096;
  std::size_t ar_refit_every = 512;
  std::size_t ar_max_order = 10;

  std::unique_ptr<core::IdlePolicy> build() const;
};

struct PolicySimScenario {
  /// Identity; also the registry export prefix when non-empty.
  std::string label;
  /// Borrowed; must outlive the sweep. Required.
  const trace::Trace* trace = nullptr;
  /// Borrowed precomputed per-record service times (strongly recommended
  /// for sweeps -- see core::precompute_services). When null, a fresh
  /// foreground service model is built per task from `disk`.
  const std::vector<SimTime>* services = nullptr;
  DiskKind disk = DiskKind::kUltrastar15k450;
  /// Scrub service model: sequential by default; staggered with `regions`
  /// when set.
  bool staggered_service = false;
  int regions = 128;
  PolicySpec policy;
  core::ScrubSizer sizer = core::ScrubSizer::fixed(64 * 1024);
  bool keep_response_samples = false;
};

/// Runs one policy scenario through core::run_policy_sim. When `timeline`
/// is enabled (and the label is non-empty), the run records under
/// "<label>." per PolicySimConfig::timeline; nullptr selects
/// obs::Timeline::global() so direct callers honor PSCRUB_TIMELINE.
core::PolicySimResult run_policy_scenario(const PolicySimScenario& scenario,
                                          obs::Timeline* timeline = nullptr);

/// Deterministic parallel sweep; results in scenario order, each exported
/// into its task registry under the scenario label (when non-empty).
std::vector<core::PolicySimResult> run_policy_scenarios(
    const std::vector<PolicySimScenario>& scenarios,
    const SweepOptions& options = {});

// ---------------------------------------------------------------------------
// Event-driven micro-probe shared by the Fig 1 / Fig 4 benches.

/// Mean response time (ms) of `n` back-to-back sequential VERIFYs of
/// `bytes` each, measured on the event-driven disk model.
double measure_sequential_verify(const disk::DiskProfile& profile,
                                 disk::CommandKind kind, std::int64_t bytes,
                                 int n = 64);

}  // namespace pscrub::exp
