#include "exp/golden.h"

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/idle_decomp.h"
#include "core/idle_policy.h"
#include "core/optimizer.h"
#include "exp/scenario.h"
#include "obs/registry.h"
#include "stats/descriptive.h"
#include "stats/residual_life.h"
#include "trace/catalog.h"
#include "trace/idle.h"
#include "trace/synthetic.h"

namespace pscrub::exp {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

/// Thins a catalog trace to ~`target_records` requests (statistical shape
/// preserved, volume capped) -- the golden-suite analogue of the benches'
/// scaled_trace helper, with a fixed absolute target so fixtures never
/// depend on PSCRUB_BENCH_SCALE.
trace::Trace mini_trace(const char* name, std::int64_t target_records) {
  auto spec = trace::spec_by_name(name);
  if (!spec) throw std::runtime_error(std::string("unknown trace: ") + name);
  double scale = 1.0;
  if (spec->target_requests > target_records) {
    scale = static_cast<double>(target_records) /
            static_cast<double>(spec->target_requests);
  }
  trace::SyntheticGenerator gen(*spec);
  return gen.generate_trace(scale);
}

void append_metrics(std::string& out, const obs::Registry& registry) {
  out += "-- metrics --\n";
  out += registry.to_json();
  out += "\n";
}

/// Bitwise equality across every PolicySimResult summary field -- the
/// batched evaluator's contract is exact reproduction, so the golden
/// cross-check tolerates zero ULPs.
bool results_identical(const core::PolicySimResult& a,
                       const core::PolicySimResult& b) {
  return a.foreground_requests == b.foreground_requests &&
         a.collisions == b.collisions && a.total_idle == b.total_idle &&
         a.idle_utilized == b.idle_utilized &&
         a.scrub_requests == b.scrub_requests &&
         a.scrubbed_bytes == b.scrubbed_bytes &&
         a.slowdown_sum == b.slowdown_sum &&
         a.slowdown_max == b.slowdown_max &&
         a.collision_rate == b.collision_rate &&
         a.idle_utilization == b.idle_utilization &&
         a.scrub_mb_s == b.scrub_mb_s &&
         a.mean_slowdown_ms == b.mean_slowdown_ms;
}

}  // namespace

std::string golden_fig05_report(const GoldenOptions& options) {
  const std::vector<std::int64_t> sizes = {64 * 1024, 512 * 1024,
                                           4 * 1024 * 1024};
  constexpr auto kUltrastar = DiskKind::kUltrastar15k450;
  constexpr auto kFujitsu = DiskKind::kFujitsuMax3073rc;

  std::vector<ScenarioConfig> configs;
  for (std::int64_t size : sizes) {
    for (const auto& [disk, staggered] :
         {std::pair{kUltrastar, false}, std::pair{kUltrastar, true},
          std::pair{kFujitsu, false}, std::pair{kFujitsu, true}}) {
      ScenarioConfig cfg;
      char label[64];
      std::snprintf(label, sizeof(label), "golden.fig05.%s.%lldK.%s",
                    disk_kind_name(disk),
                    static_cast<long long>(size / 1024),
                    staggered ? "stag" : "seq");
      cfg.label = label;
      cfg.disk.kind = disk;
      cfg.scheduler = SchedulerKind::kNoop;
      cfg.scrubber.kind = ScrubberKind::kBackToBack;
      cfg.scrubber.priority = block::IoPriority::kBestEffort;
      cfg.scrubber.strategy.kind =
          staggered ? StrategyKind::kStaggered : StrategyKind::kSequential;
      cfg.scrubber.strategy.request_bytes = size;
      cfg.scrubber.strategy.regions = 64;
      cfg.run_for = 10 * kSecond;
      configs.push_back(std::move(cfg));
    }
  }

  obs::Registry registry;
  SweepOptions sweep_options;
  sweep_options.workers = options.workers;
  sweep_options.merge_into = &registry;
  const auto results = run_scenarios(configs, sweep_options);

  std::string out = "golden fig05: scrub MB/s vs request size\n";
  appendf(out, "%-8s %14s %14s %14s %14s\n", "size", "Ultra seq",
          "Ultra stag", "Fujitsu seq", "Fujitsu stag");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    appendf(out, "%-8lld %14.2f %14.2f %14.2f %14.2f\n",
            static_cast<long long>(sizes[i] / 1024),
            results[4 * i].scrub_mb_s, results[4 * i + 1].scrub_mb_s,
            results[4 * i + 2].scrub_mb_s, results[4 * i + 3].scrub_mb_s);
  }
  append_metrics(out, registry);
  return out;
}

std::string golden_fig14_report(const GoldenOptions& options) {
  const trace::Trace t = mini_trace("HPc6t8d0", 30'000);
  const std::vector<SimTime> services = core::precompute_services(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
  const trace::IdleExtraction idle = trace::extract_idle_intervals(
      t, core::make_foreground_service(disk::hitachi_ultrastar_15k450()));
  stats::ResidualLife life{idle.idle_seconds};

  std::vector<PolicySimScenario> scenarios;
  std::vector<std::string> rows;
  auto add = [&](const std::string& row, const PolicySpec& spec) {
    PolicySimScenario s;
    s.label = "golden.fig14." + row;
    s.trace = &t;
    s.services = &services;
    s.policy = spec;
    s.sizer = core::ScrubSizer::fixed(64 * 1024);
    scenarios.push_back(std::move(s));
    rows.push_back(row);
  };

  {
    PolicySpec spec;
    spec.kind = PolicyKind::kOracle;
    spec.threshold = from_seconds(stats::quantile_sorted(life.sorted(), 0.9));
    add("oracle.q0.9", spec);
  }
  for (SimTime th : {64 * kMillisecond, 1024 * kMillisecond}) {
    PolicySpec spec;
    spec.kind = PolicyKind::kWaiting;
    spec.threshold = th;
    add("waiting." + std::to_string(th / kMillisecond) + "ms", spec);
  }
  {
    PolicySpec spec;
    spec.kind = PolicyKind::kLosslessWaiting;
    spec.threshold = 64 * kMillisecond;
    add("lossless.64ms", spec);
  }
  {
    PolicySpec spec;
    spec.kind = PolicyKind::kAutoRegression;
    spec.threshold = 256 * kMillisecond;
    spec.ar_window = 2048;
    spec.ar_refit_every = 512;
    spec.ar_max_order = 6;
    add("ar.256ms", spec);
  }
  {
    PolicySpec spec;
    spec.kind = PolicyKind::kArWaiting;
    spec.threshold = 256 * kMillisecond;
    spec.secondary = from_seconds(stats::quantile_sorted(life.sorted(), 0.5));
    add("arwait.256ms", spec);
  }

  obs::Registry registry;
  SweepOptions sweep_options;
  sweep_options.workers = options.workers;
  sweep_options.merge_into = &registry;
  const auto results = run_policy_scenarios(scenarios, sweep_options);

  std::string out = "golden fig14: idleness policies on HPc6t8d0 (thinned)\n";
  appendf(out, "%zu requests replayed\n", t.size());
  appendf(out, "%-16s %14s %14s %12s\n", "policy", "collision rate",
          "idle utilized", "scrub MB/s");
  for (std::size_t i = 0; i < results.size(); ++i) {
    appendf(out, "%-16s %14.4f %14.3f %12.2f\n", rows[i].c_str(),
            results[i].collision_rate, results[i].idle_utilization,
            results[i].scrub_mb_s);
  }
  append_metrics(out, registry);
  return out;
}

std::string golden_table3_report(const GoldenOptions& options) {
  const trace::Trace t = mini_trace("MSRusr1", 20'000);
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  const std::vector<SimTime> services =
      core::precompute_services(t, core::make_foreground_service(p));

  core::OptimizerConfig oc;
  oc.scrub_service = core::make_scrub_service(p);
  oc.services = &services;
  oc.candidate_sizes = {64 * 1024, 256 * 1024, 1024 * 1024};
  oc.binary_search_iters = 6;
  oc.workers = options.workers;

  obs::Registry registry;
  std::string out = "golden table3: optimizer vs CFQ on MSRusr1 (thinned)\n";
  appendf(out, "%-8s %14s %10s %12s %10s\n", "goal", "mean sldn ms", "MB/s",
          "threshold", "req KB");
  for (double goal_ms : {1.0, 4.0}) {
    core::SlowdownGoal goal;
    goal.mean = from_seconds(goal_ms * 1e-3);
    const auto best = core::optimize(t, oc, goal);
    appendf(out, "%-8.1f %14.3f %10.2f %10lldms %10lld\n", goal_ms,
            best.achieved_mean_slowdown_ms, best.scrub_mb_s,
            static_cast<long long>(best.threshold / kMillisecond),
            static_cast<long long>(best.request_bytes / 1024));
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "golden.table3.goal%.0fms",
                  goal_ms);
    registry.gauge(std::string(prefix) + ".mb_s").set(best.scrub_mb_s);
    registry.gauge(std::string(prefix) + ".mean_slowdown_ms")
        .set(best.achieved_mean_slowdown_ms);
    registry.gauge(std::string(prefix) + ".threshold_ms")
        .set(to_milliseconds(best.threshold));
    registry.counter(std::string(prefix) + ".request_bytes") +=
        best.request_bytes;
  }

  // CFQ reference: fixed 10 ms idle gate, 64 KB requests.
  PolicySimScenario s;
  s.label = "golden.table3.cfq";
  s.trace = &t;
  s.services = &services;
  s.policy.kind = PolicyKind::kWaiting;
  s.policy.threshold = 10 * kMillisecond;
  s.sizer = core::ScrubSizer::fixed(64 * 1024);
  SweepOptions sweep_options;
  sweep_options.workers = options.workers;
  sweep_options.merge_into = &registry;
  const auto cfq = run_policy_scenarios({s}, sweep_options);
  appendf(out, "%-8s %14.3f %10.2f %10s %10s\n", "CFQ",
          cfq[0].mean_slowdown_ms, cfq[0].scrub_mb_s, "10ms", "64");

  append_metrics(out, registry);
  return out;
}

std::string golden_waiting_grid_report(const GoldenOptions& options) {
  const trace::Trace t = mini_trace("MSRusr1", 20'000);
  const disk::DiskProfile p = disk::hitachi_ultrastar_15k450();
  const std::vector<SimTime> services =
      core::precompute_services(t, core::make_foreground_service(p));
  const core::IdleDecomposition decomp =
      core::IdleDecomposition::from_trace(t, services);

  std::vector<SimTime> thresholds = {kMillisecond, 10 * kMillisecond,
                                     100 * kMillisecond, kSecond};
  // Edge case the fixture pins forever: a threshold exactly equal to an
  // idle duration (the `wait < idle` firing gate is strict, so this
  // interval must NOT be captured).
  thresholds.push_back(decomp.sorted_gaps[decomp.sorted_gaps.size() / 2]);
  const std::vector<std::int64_t> sizes = {64 * 1024, 1024 * 1024};

  // The same grid cells routed through exp::run_policy_scenarios: plain
  // Waiting + fixed sizer takes the batched scenario fast path, and the
  // fan-out at options.workers exercises the sweep bit-identity contract.
  std::vector<PolicySimScenario> scenarios;
  for (std::int64_t size : sizes) {
    for (SimTime th : thresholds) {
      PolicySimScenario s;
      char label[64];
      std::snprintf(label, sizeof(label), "golden.wgrid.%lldK.t%lldus",
                    static_cast<long long>(size / 1024),
                    static_cast<long long>(th / kMicrosecond));
      s.label = label;
      s.trace = &t;
      s.services = &services;
      s.policy.kind = PolicyKind::kWaiting;
      s.policy.threshold = th;
      s.sizer = core::ScrubSizer::fixed(size);
      scenarios.push_back(std::move(s));
    }
  }
  obs::Registry registry;
  SweepOptions sweep_options;
  sweep_options.workers = options.workers;
  sweep_options.merge_into = &registry;
  const auto scen = run_policy_scenarios(scenarios, sweep_options);

  std::string out =
      "golden waiting-grid: batched Waiting evaluator on MSRusr1 (thinned)\n";
  appendf(out, "%zu requests, %lld idle intervals\n", t.size(),
          static_cast<long long>(decomp.interval_count()));
  appendf(out, "%-8s %12s %8s %12s %14s %10s\n", "size", "thresh us",
          "colls", "idle util", "mean sldn ms", "MB/s");
  int mismatches = 0;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::int64_t size = sizes[si];
    const core::WaitingGridRequest request =
        core::make_waiting_grid_request(p, size);
    const auto grid = core::run_waiting_grid(
        decomp, request, std::span<const SimTime>(thresholds));
    core::PolicySimConfig sim_cfg;
    sim_cfg.scrub_service = core::make_scrub_service(p);
    sim_cfg.services = &services;
    sim_cfg.sizer = core::ScrubSizer::fixed(size);
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      core::WaitingPolicy policy(thresholds[i]);
      const core::PolicySimResult ref =
          core::run_policy_sim_reference(t, policy, sim_cfg);
      if (!results_identical(ref, grid[i])) ++mismatches;
      if (!results_identical(ref, scen[si * thresholds.size() + i]))
        ++mismatches;
      appendf(out, "%-8lld %12lld %8lld %12.6f %14.4f %10.2f\n",
              static_cast<long long>(size / 1024),
              static_cast<long long>(thresholds[i] / kMicrosecond),
              static_cast<long long>(grid[i].collisions),
              grid[i].idle_utilization, grid[i].mean_slowdown_ms,
              grid[i].scrub_mb_s);
    }
  }
  appendf(out, "cross-check vs reference replay + scenario path: %d %s\n",
          mismatches, mismatches == 1 ? "mismatch" : "mismatches");
  append_metrics(out, registry);
  return out;
}

}  // namespace pscrub::exp
