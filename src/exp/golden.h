// Golden-figure reports: scaled-down, fully deterministic renditions of
// the paper's headline experiments -- the Fig 5 scrub-parameter sweep, the
// Fig 14 idleness-policy comparison, and the Table III (request size, wait
// threshold) optimizer -- rendered to a single string (result table plus a
// metric-registry JSON snapshot).
//
// The golden regression suite (tests/test_golden_figures.cc) pins these
// strings byte-for-byte against checked-in fixtures, so any change to the
// simulation core -- the event queue, the disk model's service math, the
// sweep runner -- that alters *any* paper number is caught immediately.
// The reports run the same engine entry points as the real benches
// (exp::run_scenarios, exp::run_policy_scenarios, core::optimize), just on
// smaller grids and thinned traces so the whole suite stays under a few
// seconds.
//
// Determinism contract: a report depends only on its GoldenOptions --
// never on PSCRUB_* environment variables or hardware concurrency. The
// worker count is passed explicitly because the suite asserts the output
// is identical for 1 and N workers (the exp::sweep bit-identity contract).
#pragma once

#include <string>

namespace pscrub::exp {

struct GoldenOptions {
  /// Worker threads for every sweep the report runs (1 = serial). The
  /// output must not depend on it.
  int workers = 1;
};

/// Fig 5 (scaled): scrub throughput vs request size, sequential vs
/// staggered, on two drive models.
std::string golden_fig05_report(const GoldenOptions& options = {});

/// Fig 14 (scaled): collision rate and idle utilization of the idleness
/// policies on a thinned HPc6t8d0 trace.
std::string golden_fig14_report(const GoldenOptions& options = {});

/// Table III (scaled): the (size, threshold) optimizer vs the CFQ
/// reference on a thinned MSRusr1 trace.
std::string golden_table3_report(const GoldenOptions& options = {});

/// Batched Waiting-policy grid (core::run_waiting_grid) over a thinned
/// MSRusr1 trace: request sizes x wait thresholds evaluated from one
/// core::IdleDecomposition, cross-checked in-report against the reference
/// replay (any divergence is rendered into the output and trips the
/// fixture). Pins the decomposition's prefix-sum bookkeeping byte-for-byte.
std::string golden_waiting_grid_report(const GoldenOptions& options = {});

}  // namespace pscrub::exp
