#include "exp/sweep.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/env.h"
#include "obs/trace_event.h"

namespace pscrub::exp {

std::uint64_t task_seed(std::uint64_t base_seed, std::size_t index) {
  // splitmix64 over a base/index mix; the +1 keeps (base, 0) distinct from
  // the raw base seed a caller might also use directly.
  std::uint64_t z =
      base_seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int resolve_workers(int requested) {
  // The tracer is single-threaded by contract (see obs/trace_event.h): a
  // traced sweep degrades to serial execution instead of crashing workers.
  if (obs::Tracer::global().enabled()) return 1;
  if (requested > 0) return requested;
  // PSCRUB_SWEEP_WORKERS pins the default pool size -- by the bit-identity
  // contract it only affects timing, so it is safe to set globally (CI
  // uses it to check that 1-vs-N runs diff clean). The shared strict read
  // (obs::sweep_workers_env) falls back to the hardware default on
  // malformed values; its stderr warning is throttled to once per process
  // since every sweep re-resolves the pool size.
  static const std::optional<int> pinned = obs::sweep_workers_env();
  if (pinned) return *pinned;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace detail {

// Everything reachable from here runs concurrently on the worker pool;
// the annotation seeds pscrub-lint's mutable-global-in-sweep closure.
// pscrub-lint: sweep-worker
void run_tasks(std::size_t count, const std::function<void(std::size_t)>& task,
               int workers) {
  if (count == 0) return;
  const int n = resolve_workers(workers);

  if (n <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  // Work-stealing by atomic counter: which worker runs which task is
  // scheduling-dependent, but nothing observable depends on it -- results
  // and registries are addressed by task index.
  std::atomic<std::size_t> next{0};
  std::mutex failure_mutex;
  std::size_t first_failed = count;
  std::exception_ptr failure;

  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        // Keep the lowest-index failure so the rethrown exception does not
        // depend on worker scheduling.
        if (i < first_failed) {
          first_failed = i;
          failure = std::current_exception();
        }
      }
    }
  };

  const std::size_t spawn =
      std::min<std::size_t>(static_cast<std::size_t>(n), count);
  std::vector<std::thread> pool;
  pool.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t) pool.emplace_back(body);
  for (std::thread& t : pool) t.join();

  if (failure) std::rethrow_exception(failure);
}

}  // namespace detail
}  // namespace pscrub::exp
