// Deterministic parallel sweep runner.
//
// The paper's headline results are all parameter sweeps -- hundreds of
// independent simulations over a (request size x region count x threshold
// x policy) grid. SweepRunner fans such a task vector across a worker
// pool while guaranteeing that the OUTPUT IS BIT-IDENTICAL FOR ANY WORKER
// COUNT, including 1:
//
//   - every task gets its own deterministic seed, derived (splitmix64)
//     from the sweep's base seed and the task INDEX -- never from which
//     worker happens to run it;
//   - every task gets its own obs::Registry; after all tasks complete the
//     per-task registries are merged into `merge_into` in task order, so
//     metric snapshots do not depend on scheduling;
//   - results land in a vector slot addressed by task index;
//   - a task exception is rethrown on the calling thread (the lowest task
//     index wins when several tasks fail, again for determinism).
//
// The sim-time tracer (obs::Tracer) is documented single-threaded, so a
// sweep that would run under an enabled tracer falls back to executing
// tasks serially on the calling thread -- PSCRUB_TRACE keeps working on
// every refactored bench, it just opts out of parallelism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/registry.h"
#include "obs/timeline.h"

namespace pscrub::exp {

/// Per-task environment handed to sweep callbacks.
struct TaskContext {
  /// Task index in [0, task count).
  std::size_t index = 0;
  /// Deterministic per-task seed: task_seed(options.base_seed, index).
  std::uint64_t seed = 0;
  /// Task-private registry; merged into SweepOptions::merge_into in task
  /// order once the sweep completes.
  obs::Registry& registry;
  /// Task-private timeline; merged into SweepOptions::timeline_into (or
  /// obs::Timeline::global()) in task order. Enabled iff the destination
  /// timeline is enabled, so disabled runs pay nothing.
  obs::Timeline& timeline;
};

struct SweepOptions {
  /// Worker threads. <= 0 selects the PSCRUB_SWEEP_WORKERS env override or
  /// else the hardware concurrency; 1 runs the tasks inline on the calling
  /// thread. The result never depends on it.
  int workers = 0;
  /// Root of the per-task seed derivation.
  std::uint64_t base_seed = 1;
  /// Destination for the ordered merge of per-task registries (nullptr:
  /// per-task metrics are dropped unless the task stored them itself).
  obs::Registry* merge_into = nullptr;
  /// Destination for the ordered merge of per-task timelines. nullptr
  /// selects obs::Timeline::global() (the PSCRUB_TIMELINE export target).
  /// Per-task timelines are created enabled, with the destination's
  /// config, only while the destination is enabled; the ordered merge
  /// keeps the combined timeline bit-identical for any worker count.
  obs::Timeline* timeline_into = nullptr;
};

/// splitmix64 of (base_seed, index): stable across platforms, distinct per
/// index, independent of worker scheduling.
std::uint64_t task_seed(std::uint64_t base_seed, std::size_t index);

/// Workers a sweep will actually use for `requested` (<=0 -> hardware
/// concurrency; forced to 1 while the global tracer is enabled).
int resolve_workers(int requested);

namespace detail {
/// Runs task(0..count-1), each exactly once, on `workers` threads.
/// Deterministic dispatch contract as documented above.
void run_tasks(std::size_t count, const std::function<void(std::size_t)>& task,
               int workers);
}  // namespace detail

/// Fans `count` tasks across the pool; returns the task results in index
/// order. R must be default-constructible (all sweep result types are).
template <typename R>
std::vector<R> sweep(std::size_t count,
                     const std::function<R(TaskContext&)>& fn,
                     const SweepOptions& options = {}) {
  std::vector<R> results(count);
  std::vector<obs::Registry> registries(count);
  std::vector<obs::Timeline> timelines(count);
  obs::Timeline* timeline_into = options.timeline_into != nullptr
                                     ? options.timeline_into
                                     : &obs::Timeline::global();
  if (timeline_into->enabled()) {
    for (obs::Timeline& t : timelines) {
      t.configure(timeline_into->config());
      t.set_enabled(true);
    }
  }
  detail::run_tasks(
      count,
      [&](std::size_t i) {
        TaskContext ctx{i, task_seed(options.base_seed, i), registries[i],
                        timelines[i]};
        results[i] = fn(ctx);
      },
      options.workers);
  if (options.merge_into != nullptr) {
    for (const obs::Registry& r : registries) options.merge_into->merge(r);
  }
  if (timeline_into->enabled()) {
    for (const obs::Timeline& t : timelines) timeline_into->merge(t);
  }
  return results;
}

}  // namespace pscrub::exp
