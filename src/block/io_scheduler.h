// I/O scheduler interface.
//
// The BlockLayer pulls: whenever the disk is free it asks the scheduler for
// the next request. A scheduler may decline to dispatch *now* but request a
// re-poll later (CFQ's idle-window gate for the Idle class works this way).
#pragma once

#include <optional>

#include "block/request.h"

namespace pscrub::block {

/// Context handed to the scheduler on each selection.
struct DispatchContext {
  SimTime now = 0;
  /// How long the disk has been continuously idle (0 if it just completed).
  SimTime disk_idle_for = 0;
  /// How long since the last *foreground* (non-Idle-class) activity. This
  /// is what CFQ's idle window gates on: once the window elapses, queued
  /// Idle-class requests stream back-to-back until foreground work
  /// reappears.
  SimTime foreground_idle_for = 0;
};

class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  virtual void add(BlockRequest request) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;

  /// Returns the next request to dispatch, or nullopt if nothing is
  /// eligible right now. When declining while non-empty, the scheduler must
  /// set *retry_after to a relative delay after which selection should be
  /// retried.
  virtual std::optional<BlockRequest> select(const DispatchContext& ctx,
                                             SimTime* retry_after) = 0;

  virtual const char* name() const = 0;
};

}  // namespace pscrub::block
