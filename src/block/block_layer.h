// The block layer: binds an I/O scheduler to a disk and runs the dispatch
// loop. Mirrors the role of the linux Generic Block Layer in the paper's
// Fig 2 architecture.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "block/io_scheduler.h"
#include "disk/disk_model.h"
#include "sim/simulator.h"

namespace pscrub::obs {
class Registry;
}  // namespace pscrub::obs

namespace pscrub::block {

struct BlockLayerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t foreground_completed = 0;
  std::int64_t background_completed = 0;
  std::int64_t foreground_bytes = 0;
  std::int64_t background_bytes = 0;
  SimTime foreground_latency_sum = 0;
  /// Foreground requests that arrived while a background request was in
  /// service ("collisions", Sec V).
  std::int64_t collisions = 0;
  /// Total foreground delay attributable to in-service background requests
  /// at arrival time (first-order slowdown).
  SimTime collision_delay_sum = 0;

  /// Publishes every field into `registry` under `prefix` (e.g.
  /// "block.foreground_completed").
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

class BlockLayer {
 public:
  BlockLayer(Simulator& sim, disk::DiskModel& disk,
             std::unique_ptr<IoScheduler> scheduler);

  /// Queues a request with the scheduler and kicks the dispatch loop.
  void submit(BlockRequest request);

  const IoScheduler& scheduler() const { return *scheduler_; }
  const BlockLayerStats& stats() const { return stats_; }
  disk::DiskModel& disk() { return disk_; }

  /// How long the disk has been continuously idle (0 while busy).
  SimTime disk_idle_for() const;

  /// How long since the last non-Idle-class submission or completion
  /// (what CFQ's idle window measures).
  SimTime foreground_idle_for() const;

  /// Pending requests (queued in the scheduler; excludes in-service).
  std::size_t queue_depth() const { return scheduler_->size(); }

  bool disk_busy() const { return disk_.busy() || in_flight_ > 0; }

  bool idle() const { return !disk_busy() && scheduler_->empty(); }

  /// Registers a callback fired whenever the system transitions to idle
  /// (a completion drains the last request). Used by idleness-gated
  /// scrubbers.
  void set_idle_observer(std::function<void()> fn) {
    on_idle_ = std::move(fn);
  }

  /// Registers a callback fired at submission of every foreground
  /// (non-background) request. Used by the adaptive tuner to record the
  /// live workload.
  void set_request_observer(std::function<void(const BlockRequest&)> fn) {
    on_request_ = std::move(fn);
  }

 private:
  void try_dispatch();

  Simulator& sim_;
  disk::DiskModel& disk_;
  std::unique_ptr<IoScheduler> scheduler_;
  BlockLayerStats stats_;
  std::uint64_t next_id_ = 1;
  SimTime last_completion_ = 0;
  SimTime last_foreground_activity_ = 0;
  bool foreground_in_flight_ = false;
  int in_flight_ = 0;
  bool in_flight_background_ = false;
  SimTime in_flight_eta_ = 0;
  EventId retry_event_ = 0;
  bool retry_pending_ = false;
  std::function<void()> on_idle_;
  std::function<void(const BlockRequest&)> on_request_;
};

}  // namespace pscrub::block
