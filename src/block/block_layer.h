// The block layer: binds an I/O scheduler to a disk and runs the dispatch
// loop. Mirrors the role of the linux Generic Block Layer in the paper's
// Fig 2 architecture.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "block/io_scheduler.h"
#include "disk/disk_model.h"
#include "sim/simulator.h"

namespace pscrub::obs {
class Registry;
}  // namespace pscrub::obs

namespace pscrub::block {

/// Host-side error handling: how the block layer reacts when the disk
/// completes a request with an error. The defaults model the legacy stack:
/// no retries, no timeout -- errors pass straight through to the caller.
struct RetryPolicy {
  /// Maximum host retries per request (0 = report the first error).
  int max_retries = 0;
  /// Wait before the first retry; each further retry multiplies it.
  SimTime backoff_base = 10 * kMillisecond;
  double backoff_multiplier = 2.0;
  /// Retry media errors too (usually futile -- the sector stays bad -- but
  /// it is what a naive host does; transient errors are always retried).
  bool retry_media_errors = false;
  /// Per-request deadline measured from first dispatch to the drive. When
  /// > 0 and the drive (or the retry loop) grinds past it, the caller gets
  /// kTimeout immediately; the in-drive command still runs to completion
  /// (the host cannot preempt the mechanism) and its slot frees then.
  SimTime timeout = 0;
};

struct BlockLayerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t foreground_completed = 0;
  std::int64_t background_completed = 0;
  std::int64_t foreground_bytes = 0;
  std::int64_t background_bytes = 0;
  SimTime foreground_latency_sum = 0;
  /// Foreground requests that arrived while a background request was in
  /// service ("collisions", Sec V).
  std::int64_t collisions = 0;
  /// Total foreground delay attributable to in-service background requests
  /// at arrival time (first-order slowdown).
  SimTime collision_delay_sum = 0;
  /// Error-path accounting. `errors` counts completions delivered with any
  /// non-ok status (so completed == ok_completions + errors, always).
  std::int64_t errors = 0;
  std::int64_t media_errors = 0;
  std::int64_t transient_errors = 0;
  std::int64_t disk_failures = 0;
  std::int64_t timeouts = 0;
  /// Host-side retry attempts issued (not requests-that-retried).
  std::int64_t retries = 0;

  /// Publishes every field into `registry` under `prefix` (e.g.
  /// "block.foreground_completed").
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

class BlockLayer {
 public:
  BlockLayer(Simulator& sim, disk::DiskModel& disk,
             std::unique_ptr<IoScheduler> scheduler);

  /// Queues a request with the scheduler and kicks the dispatch loop.
  void submit(BlockRequest request);

  /// Installs the host-side error handling policy (see RetryPolicy).
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }
  const RetryPolicy& retry_policy() const { return policy_; }

  /// Attaches a timeline: the layer emits `<prefix>.queue_depth` (gauge),
  /// `<prefix>.retries/.timeouts/.collisions` (counters), and
  /// `<prefix>.fg_latency_ms` (per-window digest of foreground request
  /// latency). Pass a default-constructed sink to detach.
  void set_timeline(const obs::TimelineSink& sink);

  const IoScheduler& scheduler() const { return *scheduler_; }
  const BlockLayerStats& stats() const { return stats_; }
  disk::DiskModel& disk() { return disk_; }

  /// How long the disk has been continuously idle (0 while busy).
  SimTime disk_idle_for() const;

  /// How long since the last non-Idle-class submission or completion
  /// (what CFQ's idle window measures).
  SimTime foreground_idle_for() const;

  /// Pending requests (queued in the scheduler; excludes in-service).
  std::size_t queue_depth() const { return scheduler_->size(); }

  bool disk_busy() const { return disk_.busy() || in_flight_ > 0; }

  bool idle() const { return !disk_busy() && scheduler_->empty(); }

  /// Registers a callback fired whenever the system transitions to idle
  /// (a completion drains the last request). Used by idleness-gated
  /// scrubbers.
  void set_idle_observer(std::function<void()> fn) {
    on_idle_ = std::move(fn);
  }

  /// Registers a callback fired at submission of every foreground
  /// (non-background) request. Used by the adaptive tuner to record the
  /// live workload.
  void set_request_observer(std::function<void(const BlockRequest&)> fn) {
    on_request_ = std::move(fn);
  }

 private:
  /// One request's journey through the error-handling state machine. The
  /// slot (in_flight_) is held from dispatch until the drive is truly done
  /// with the request -- through backoff waits and even past a timeout
  /// completion (the mechanism cannot be preempted). Exactly one request
  /// is in flight at a time, so a single reusable member (flight_) plus
  /// two persistent events replace the historical per-request
  /// shared_ptr<Flight> and its freshly captured timeout/retry lambdas.
  struct Flight {
    BlockRequest request;
    /// Host retries performed so far (0 on the first attempt).
    int host_retries = 0;
    /// In-drive recovery attempts accumulated across attempts.
    std::int64_t internal_retries = 0;
    /// Completion already delivered to the caller (exactly-once guard).
    bool done = false;
    bool timeout_pending = false;
    /// A host-retry backoff wait is in progress (no command at the drive).
    bool retry_wait = false;
  };

  void try_dispatch();
  void dispatch_to_disk();
  /// Lazily resolves timeline series ids; true when the sink is live.
  bool timeline_live();
  void on_disk_complete(const disk::DiskResult& result);
  void on_timeout();
  /// Delivers the completion to the caller exactly once and records stats.
  void finish_request(BlockResult result);
  /// Frees the dispatch slot once the drive is truly done with the flight.
  void release_slot();
  bool should_retry(disk::IoStatus status, int host_retries) const;

  Simulator& sim_;
  disk::DiskModel& disk_;
  std::unique_ptr<IoScheduler> scheduler_;
  BlockLayerStats stats_;
  RetryPolicy policy_;
  obs::TimelineSink timeline_;
  bool timeline_ready_ = false;
  obs::Timeline::SeriesId tl_depth_ = 0;
  obs::Timeline::SeriesId tl_retries_ = 0;
  obs::Timeline::SeriesId tl_timeouts_ = 0;
  obs::Timeline::SeriesId tl_collisions_ = 0;
  obs::Timeline::SeriesId tl_latency_ = 0;
  std::uint64_t next_id_ = 1;
  SimTime last_completion_ = 0;
  SimTime last_foreground_activity_ = 0;
  bool foreground_in_flight_ = false;
  int in_flight_ = 0;
  bool in_flight_background_ = false;
  SimTime in_flight_eta_ = 0;
  /// The in-flight request's state; valid while in_flight_ > 0.
  Flight flight_;
  // Persistent events (registered once at construction, re-armed
  // allocation-free per use; see EventQueue::arm).
  EventId retry_event_ = 0;           // scheduler asked to be polled later
  EventId flight_timeout_event_ = 0;  // per-request deadline
  EventId flight_retry_event_ = 0;    // host-retry backoff wait
  bool retry_pending_ = false;
  std::function<void()> on_idle_;
  std::function<void(const BlockRequest&)> on_request_;
};

}  // namespace pscrub::block
