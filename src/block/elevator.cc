#include "block/elevator.h"

#include <cassert>
#include <utility>

namespace pscrub::block {

bool Elevator::add(BlockRequest request) {
  // Back-merge: find a queued request ending exactly where this one
  // starts. upper_bound lands past every entry keyed at request.cmd.lbn;
  // the predecessor is the candidate with the largest smaller LBN.
  if (max_merge_sectors_ > 0 && !by_lbn_.empty()) {
    auto it = by_lbn_.upper_bound(request.cmd.lbn);
    if (it != by_lbn_.begin()) {
      --it;
      BlockRequest& prev = it->second.request;
      const bool contiguous =
          prev.cmd.lbn + prev.cmd.sectors == request.cmd.lbn;
      const bool same_kind = prev.cmd.kind == request.cmd.kind &&
                             prev.priority == request.priority &&
                             prev.background == request.background;
      if (contiguous && same_kind &&
          prev.cmd.sectors + request.cmd.sectors <= max_merge_sectors_) {
        prev.cmd.sectors += request.cmd.sectors;
        // Both originals must observe completion: chain the callbacks.
        if (request.on_complete) {
          auto first = std::move(prev.on_complete);
          auto second = std::move(request.on_complete);
          auto merged_submit = request.submit_time;
          prev.on_complete = [first = std::move(first),
                              second = std::move(second), merged_submit](
                                 const BlockRequest& r,
                                 const BlockResult& result) {
            if (first) first(r, result);
            // The merged request waited less: adjust its latency. Status
            // and error details carry through unchanged -- both originals
            // observe the merged request's fate.
            BlockResult adjusted = result;
            const SimTime completion = r.submit_time + result.latency;
            adjusted.latency = completion - merged_submit;
            second(r, adjusted);
          };
        }
        return true;
      }
    }
  }
  const std::uint64_t iid = next_internal_id_++;
  fifo_.push_back(FifoEntry{request.submit_time, iid, request.cmd.lbn});
  by_lbn_.emplace(request.cmd.lbn, Entry{std::move(request), iid});
  return false;
}

void Elevator::clean_fifo_front() const {
  while (!fifo_.empty() && fifo_.front().dead) fifo_.pop_front();
}

SimTime Elevator::oldest_arrival() const {
  clean_fifo_front();
  assert(!fifo_.empty());
  return fifo_.front().submit;
}

BlockRequest Elevator::pop() {
  assert(!by_lbn_.empty());
  auto it = by_lbn_.lower_bound(scan_from_);
  if (it == by_lbn_.end()) it = by_lbn_.begin();  // C-LOOK wrap
  BlockRequest r = std::move(it->second.request);
  // Ids are contiguous in the FIFO (assigned at push, popped only at the
  // front), so the entry for this iid lives at a fixed offset.
  const std::size_t at =
      static_cast<std::size_t>(it->second.iid - fifo_.front().id);
  assert(at < fifo_.size() && fifo_[at].id == it->second.iid);
  fifo_[at].dead = true;
  by_lbn_.erase(it);
  scan_from_ = r.cmd.lbn + r.cmd.sectors;
  return r;
}

BlockRequest Elevator::pop_oldest() {
  clean_fifo_front();
  assert(!fifo_.empty());
  const FifoEntry front = fifo_.front();
  fifo_.pop_front();
  auto [lo, hi] = by_lbn_.equal_range(front.lbn);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.iid == front.id) {
      BlockRequest r = std::move(it->second.request);
      by_lbn_.erase(it);
      scan_from_ = r.cmd.lbn + r.cmd.sectors;
      return r;
    }
  }
  assert(false && "live FIFO head must exist in the LBN index");
  return {};
}

}  // namespace pscrub::block
