#include "block/cfq_scheduler.h"

#include <utility>

namespace pscrub::block {

const char* to_string(IoPriority p) {
  switch (p) {
    case IoPriority::kRealtime: return "rt";
    case IoPriority::kBestEffort: return "be";
    case IoPriority::kIdle: return "idle";
  }
  return "?";
}

CfqScheduler::CfqScheduler(SimTime idle_window, std::int64_t max_merge_bytes,
                           SimTime fifo_expire)
    : idle_window_(idle_window),
      fifo_expire_(fifo_expire),
      classes_{Elevator(max_merge_bytes), Elevator(max_merge_bytes),
               Elevator(max_merge_bytes)} {}

void CfqScheduler::add(BlockRequest request) {
  if (request.soft_barrier) {
    // ioctl path: no sorting, no merging, no priority.
    barriers_.push_back(std::move(request));
    return;
  }
  classes_[index(request.priority)].add(std::move(request));
}

bool CfqScheduler::empty() const {
  if (!barriers_.empty()) return false;
  for (const auto& c : classes_) {
    if (!c.empty()) return false;
  }
  return true;
}

std::size_t CfqScheduler::size() const {
  std::size_t n = barriers_.size();
  for (const auto& c : classes_) n += c.size();
  return n;
}

std::optional<BlockRequest> CfqScheduler::select(const DispatchContext& ctx,
                                                 SimTime* retry_after) {
  // Pick the highest non-empty class among RT and BE.
  Elevator* sortable = nullptr;
  if (!classes_[index(IoPriority::kRealtime)].empty()) {
    sortable = &classes_[index(IoPriority::kRealtime)];
  } else if (!classes_[index(IoPriority::kBestEffort)].empty()) {
    sortable = &classes_[index(IoPriority::kBestEffort)];
  }

  // Soft barriers compete with sortable requests in arrival order: the
  // kernel dispatches whichever has been waiting longest. This keeps a
  // back-to-back user-level scrubber and a foreground workload roughly
  // alternating (Fig 3).
  if (!barriers_.empty()) {
    const bool barrier_first =
        sortable == nullptr ||
        barriers_.front().submit_time <= sortable->oldest_arrival();
    if (barrier_first) {
      BlockRequest r = std::move(barriers_.front());
      barriers_.pop_front();
      return r;
    }
  }
  if (sortable != nullptr) {
    // Anti-starvation: serve a request that has waited past fifo_expire
    // before continuing the scan (prevents an endless sequential stream --
    // e.g. a back-to-back scrubber -- from starving far-away LBNs).
    if (ctx.now - sortable->oldest_arrival() > fifo_expire_) {
      return sortable->pop_oldest();
    }
    return sortable->pop();
  }

  // Only Idle-class work remains: gate it on the window since the last
  // foreground activity (idle-class completions do not reset the gate, so
  // idle requests stream back-to-back through a long idle period).
  Elevator& idle = classes_[index(IoPriority::kIdle)];
  if (idle.empty()) return std::nullopt;
  if (ctx.foreground_idle_for >= idle_window_) return idle.pop();
  *retry_after = idle_window_ - ctx.foreground_idle_for;
  return std::nullopt;
}

}  // namespace pscrub::block
