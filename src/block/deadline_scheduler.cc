#include "block/deadline_scheduler.h"

namespace pscrub::block {

DeadlineScheduler::DeadlineScheduler(SimTime read_expire, SimTime write_expire,
                                     std::int64_t max_merge_bytes)
    : read_expire_(read_expire),
      write_expire_(write_expire),
      reads_(max_merge_bytes),
      writes_(max_merge_bytes) {}

void DeadlineScheduler::add(BlockRequest request) {
  // Reads (and verifies, which behave like reads) are latency-sensitive;
  // writes batch. Soft barriers keep FIFO semantics by construction: they
  // land in the read queue and the expiry path preserves arrival order
  // when the elevator would reorder them unfairly.
  if (request.cmd.kind == disk::CommandKind::kWrite) {
    writes_.add(std::move(request));
  } else {
    reads_.add(std::move(request));
  }
}

bool DeadlineScheduler::empty() const {
  return reads_.empty() && writes_.empty();
}

std::size_t DeadlineScheduler::size() const {
  return reads_.size() + writes_.size();
}

std::optional<BlockRequest> DeadlineScheduler::select(
    const DispatchContext& ctx, SimTime*) {
  // Expired FIFOs first: writes can starve behind a read stream only
  // until write_expire.
  const bool reads_expired =
      !reads_.empty() && ctx.now - reads_.oldest_arrival() > read_expire_;
  const bool writes_expired =
      !writes_.empty() && ctx.now - writes_.oldest_arrival() > write_expire_;
  if (writes_expired && !reads_expired) return writes_.pop_oldest();
  if (reads_expired) return reads_.pop_oldest();

  // Otherwise reads take precedence over writes, scan order within.
  if (!reads_.empty()) return reads_.pop();
  if (!writes_.empty()) return writes_.pop();
  return std::nullopt;
}

}  // namespace pscrub::block
