// Deadline I/O scheduler: the kernel's other classic elevator.
//
// Requests are served in C-LOOK order from a sorted queue, but each also
// sits in a FIFO with a deadline (reads 500 ms, writes 5 s by default in
// linux); when the head of a FIFO expires, the scheduler jumps to it.
// Deadline has no priority classes -- the paper's point that CFQ is the
// only prioritizing scheduler -- so scrub requests compete head-on with
// foreground traffic. Useful as a comparison baseline.
#pragma once

#include "block/elevator.h"
#include "block/io_scheduler.h"

namespace pscrub::block {

class DeadlineScheduler final : public IoScheduler {
 public:
  static constexpr SimTime kDefaultReadExpire = 500 * kMillisecond;
  static constexpr SimTime kDefaultWriteExpire = 5 * kSecond;

  explicit DeadlineScheduler(SimTime read_expire = kDefaultReadExpire,
                             SimTime write_expire = kDefaultWriteExpire,
                             std::int64_t max_merge_bytes = 512 * 1024);

  void add(BlockRequest request) override;
  bool empty() const override;
  std::size_t size() const override;
  std::optional<BlockRequest> select(const DispatchContext& ctx,
                                     SimTime* retry_after) override;
  const char* name() const override { return "deadline"; }

 private:
  SimTime read_expire_;
  SimTime write_expire_;
  Elevator reads_;
  Elevator writes_;
};

}  // namespace pscrub::block
