#include "block/block_layer.h"

#include <cassert>
#include <utility>

#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::block {

namespace {

obs::Track queue_track(IoPriority priority) {
  switch (priority) {
    case IoPriority::kRealtime: return obs::Track::kQueueRealtime;
    case IoPriority::kBestEffort: return obs::Track::kQueueBestEffort;
    case IoPriority::kIdle: return obs::Track::kQueueIdle;
  }
  return obs::Track::kQueueBestEffort;
}

}  // namespace

void BlockLayerStats::export_to(obs::Registry& registry,
                                const std::string& prefix) const {
  registry.counter(prefix + ".submitted") += submitted;
  registry.counter(prefix + ".completed") += completed;
  registry.counter(prefix + ".foreground_completed") += foreground_completed;
  registry.counter(prefix + ".background_completed") += background_completed;
  registry.counter(prefix + ".foreground_bytes") += foreground_bytes;
  registry.counter(prefix + ".background_bytes") += background_bytes;
  registry.counter(prefix + ".collisions") += collisions;
  registry.gauge(prefix + ".foreground_latency_sum_ms")
      .set(to_milliseconds(foreground_latency_sum));
  registry.gauge(prefix + ".collision_delay_sum_ms")
      .set(to_milliseconds(collision_delay_sum));
}

BlockLayer::BlockLayer(Simulator& sim, disk::DiskModel& disk,
                       std::unique_ptr<IoScheduler> scheduler)
    : sim_(sim), disk_(disk), scheduler_(std::move(scheduler)) {}

SimTime BlockLayer::disk_idle_for() const {
  if (disk_busy()) return 0;
  return sim_.now() - last_completion_;
}

SimTime BlockLayer::foreground_idle_for() const {
  if (foreground_in_flight_) return 0;
  return sim_.now() - last_foreground_activity_;
}

void BlockLayer::submit(BlockRequest request) {
  request.submit_time = sim_.now();
  request.id = next_id_++;
  ++stats_.submitted;
  if (request.priority != IoPriority::kIdle) {
    last_foreground_activity_ = sim_.now();
  }

  // Collision accounting: a foreground request arriving while a background
  // request occupies the disk is delayed by at least the background
  // request's remaining service time.
  if (!request.background && in_flight_ > 0 && in_flight_background_) {
    ++stats_.collisions;
    stats_.collision_delay_sum += in_flight_eta_ - sim_.now();
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(
          queue_track(request.priority), "block", "collision", sim_.now(),
          {{"delay_ms", to_milliseconds(in_flight_eta_ - sim_.now())}});
    }
  }
  if (on_request_ && !request.background) on_request_(request);

  scheduler_->add(std::move(request));
  try_dispatch();
}

void BlockLayer::try_dispatch() {
  if (in_flight_ > 0) return;  // one request at the drive at a time
  if (scheduler_->empty()) return;

  DispatchContext ctx;
  ctx.now = sim_.now();
  ctx.disk_idle_for = disk_idle_for();
  ctx.foreground_idle_for = foreground_idle_for();
  SimTime retry_after = 0;
  std::optional<BlockRequest> next = scheduler_->select(ctx, &retry_after);
  if (!next) {
    if (retry_after > 0 && !retry_pending_) {
      retry_pending_ = true;
      retry_event_ = sim_.after(retry_after, [this] {
        retry_pending_ = false;
        try_dispatch();
      });
    }
    return;
  }
  if (retry_pending_) {
    sim_.cancel(retry_event_);
    retry_pending_ = false;
  }

  ++in_flight_;
  in_flight_background_ = next->background;
  if (next->priority != IoPriority::kIdle) foreground_in_flight_ = true;

  // The disk is free (in_flight_ was 0), so service starts immediately and
  // the model can tell us the completion time right after submission.
  auto request = std::make_shared<BlockRequest>(std::move(*next));
  request->dispatch_time = sim_.now();
  disk_.submit(request->cmd,
               [this, request](const disk::DiskCommand&, SimTime) {
                 const SimTime latency = sim_.now() - request->submit_time;
                 obs::Tracer& tracer = obs::Tracer::global();
                 if (tracer.enabled()) {
                   const obs::Track track = queue_track(request->priority);
                   if (request->dispatch_time > request->submit_time) {
                     tracer.span(track, "block", "queued",
                                 request->submit_time, request->dispatch_time,
                                 {{"id", static_cast<std::int64_t>(
                                       request->id)}});
                   }
                   tracer.span(
                       track, "block",
                       request->background ? "service (background)"
                                           : "service",
                       request->dispatch_time, sim_.now(),
                       {{"id", static_cast<std::int64_t>(request->id)},
                        {"bytes", request->cmd.bytes()},
                        {"prio", to_string(request->priority)}});
                 }
                 --in_flight_;
                 last_completion_ = sim_.now();
                 if (request->priority != IoPriority::kIdle) {
                   last_foreground_activity_ = sim_.now();
                   foreground_in_flight_ = false;
                 }
                 ++stats_.completed;
                 if (request->background) {
                   ++stats_.background_completed;
                   stats_.background_bytes += request->cmd.bytes();
                 } else {
                   ++stats_.foreground_completed;
                   stats_.foreground_bytes += request->cmd.bytes();
                   stats_.foreground_latency_sum += latency;
                 }
                 if (request->on_complete) {
                   request->on_complete(*request, latency);
                 }
                 try_dispatch();
                 if (on_idle_ && idle()) on_idle_();
               });
  in_flight_eta_ = disk_.busy_until();
}

}  // namespace pscrub::block
