#include "block/block_layer.h"

#include <cassert>
#include <utility>

#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::block {

namespace {

obs::Track queue_track(IoPriority priority) {
  switch (priority) {
    case IoPriority::kRealtime: return obs::Track::kQueueRealtime;
    case IoPriority::kBestEffort: return obs::Track::kQueueBestEffort;
    case IoPriority::kIdle: return obs::Track::kQueueIdle;
  }
  return obs::Track::kQueueBestEffort;
}

}  // namespace

void BlockLayerStats::export_to(obs::Registry& registry,
                                const std::string& prefix) const {
  registry.counter(prefix + ".submitted") += submitted;
  registry.counter(prefix + ".completed") += completed;
  registry.counter(prefix + ".foreground_completed") += foreground_completed;
  registry.counter(prefix + ".background_completed") += background_completed;
  registry.counter(prefix + ".foreground_bytes") += foreground_bytes;
  registry.counter(prefix + ".background_bytes") += background_bytes;
  registry.counter(prefix + ".collisions") += collisions;
  registry.counter(prefix + ".errors") += errors;
  registry.counter(prefix + ".media_errors") += media_errors;
  registry.counter(prefix + ".transient_errors") += transient_errors;
  registry.counter(prefix + ".disk_failures") += disk_failures;
  registry.counter(prefix + ".timeouts") += timeouts;
  registry.counter(prefix + ".retries") += retries;
  registry.gauge(prefix + ".foreground_latency_sum_ms")
      .set(to_milliseconds(foreground_latency_sum));
  registry.gauge(prefix + ".collision_delay_sum_ms")
      .set(to_milliseconds(collision_delay_sum));
}

BlockLayer::BlockLayer(Simulator& sim, disk::DiskModel& disk,
                       std::unique_ptr<IoScheduler> scheduler)
    : sim_(sim), disk_(disk), scheduler_(std::move(scheduler)) {
  retry_event_ = sim_.add_persistent([this] {
    retry_pending_ = false;
    try_dispatch();
  });
  flight_timeout_event_ = sim_.add_persistent([this] { on_timeout(); });
  flight_retry_event_ = sim_.add_persistent([this] {
    flight_.retry_wait = false;
    dispatch_to_disk();
  });
}

void BlockLayer::set_timeline(const obs::TimelineSink& sink) {
  timeline_ = sink;
  timeline_ready_ = false;
}

bool BlockLayer::timeline_live() {
  if (!timeline_.enabled()) return false;
  if (!timeline_ready_) {
    obs::Timeline& tl = *timeline_.timeline;
    using Kind = obs::Timeline::SeriesKind;
    tl_depth_ = tl.series(timeline_.name(".queue_depth"), Kind::kGauge);
    tl_retries_ = tl.series(timeline_.name(".retries"), Kind::kCounter);
    tl_timeouts_ = tl.series(timeline_.name(".timeouts"), Kind::kCounter);
    tl_collisions_ =
        tl.series(timeline_.name(".collisions"), Kind::kCounter);
    tl_latency_ = tl.series(timeline_.name(".fg_latency_ms"), Kind::kDigest);
    timeline_ready_ = true;
  }
  return true;
}

SimTime BlockLayer::disk_idle_for() const {
  if (disk_busy()) return 0;
  return sim_.now() - last_completion_;
}

SimTime BlockLayer::foreground_idle_for() const {
  if (foreground_in_flight_) return 0;
  return sim_.now() - last_foreground_activity_;
}

void BlockLayer::submit(BlockRequest request) {
  request.submit_time = sim_.now();
  request.id = next_id_++;
  ++stats_.submitted;
  if (request.priority != IoPriority::kIdle) {
    last_foreground_activity_ = sim_.now();
  }

  // Collision accounting: a foreground request arriving while a background
  // request occupies the disk is delayed by at least the background
  // request's remaining service time.
  if (!request.background && in_flight_ > 0 && in_flight_background_) {
    ++stats_.collisions;
    stats_.collision_delay_sum += in_flight_eta_ - sim_.now();
    if (timeline_live()) {
      timeline_.timeline->add(tl_collisions_, sim_.now(), 1.0);
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(
          queue_track(request.priority), "block", "collision", sim_.now(),
          {{"delay_ms", to_milliseconds(in_flight_eta_ - sim_.now())}});
    }
  }
  if (on_request_ && !request.background) on_request_(request);

  scheduler_->add(std::move(request));
  if (timeline_live()) {
    timeline_.timeline->set_gauge(tl_depth_, sim_.now(),
                                  static_cast<double>(queue_depth()));
  }
  try_dispatch();
}

void BlockLayer::try_dispatch() {
  if (in_flight_ > 0) return;  // one request at the drive at a time
  if (scheduler_->empty()) return;

  DispatchContext ctx;
  ctx.now = sim_.now();
  ctx.disk_idle_for = disk_idle_for();
  ctx.foreground_idle_for = foreground_idle_for();
  SimTime retry_after = 0;
  std::optional<BlockRequest> next = scheduler_->select(ctx, &retry_after);
  if (!next) {
    if (retry_after > 0 && !retry_pending_) {
      retry_pending_ = true;
      sim_.arm_after(retry_event_, retry_after);
    }
    return;
  }
  if (retry_pending_) {
    sim_.cancel(retry_event_);
    retry_pending_ = false;
  }
  if (timeline_live()) {
    timeline_.timeline->set_gauge(tl_depth_, sim_.now(),
                                  static_cast<double>(queue_depth()));
  }

  ++in_flight_;
  in_flight_background_ = next->background;
  if (next->priority != IoPriority::kIdle) foreground_in_flight_ = true;

  flight_.request = std::move(*next);
  flight_.request.dispatch_time = sim_.now();
  flight_.host_retries = 0;
  flight_.internal_retries = 0;
  flight_.done = false;
  flight_.timeout_pending = false;
  flight_.retry_wait = false;
  if (policy_.timeout > 0) {
    // One deadline covers the whole request: every attempt and backoff.
    flight_.timeout_pending = true;
    sim_.arm_after(flight_timeout_event_, policy_.timeout);
  }
  dispatch_to_disk();
}

void BlockLayer::dispatch_to_disk() {
  // The disk is free (the dispatch slot is ours), so service starts
  // immediately and the model can tell us the completion time right after
  // submission.
  disk_.submit(flight_.request.cmd,
               [this](const disk::DiskCommand&,
                      const disk::DiskResult& result) {
                 on_disk_complete(result);
               });
  in_flight_eta_ = disk_.busy_until();
}

bool BlockLayer::should_retry(disk::IoStatus status, int host_retries) const {
  if (host_retries >= policy_.max_retries) return false;
  switch (status) {
    case disk::IoStatus::kTransientError:
      return true;
    case disk::IoStatus::kMediaError:
      return policy_.retry_media_errors;
    default:
      // kDiskFailed: retrying a dead device is pointless; fail fast.
      // kOk/kTimeout never reach here from the drive.
      return false;
  }
}

void BlockLayer::on_disk_complete(const disk::DiskResult& result) {
  flight_.internal_retries += result.internal_retries;
  if (flight_.done) {
    // The caller was already answered with kTimeout; this late completion
    // just returns the drive to us.
    release_slot();
    return;
  }
  if (disk::is_error(result.status) &&
      should_retry(result.status, flight_.host_retries)) {
    ++flight_.host_retries;
    ++stats_.retries;
    if (timeline_live()) {
      timeline_.timeline->add(tl_retries_, sim_.now(), 1.0);
    }
    SimTime delay = policy_.backoff_base;
    for (int i = 1; i < flight_.host_retries; ++i) {
      delay = static_cast<SimTime>(static_cast<double>(delay) *
                                   policy_.backoff_multiplier);
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(queue_track(flight_.request.priority), "block", "retry",
                     sim_.now(),
                     {{"id", static_cast<std::int64_t>(flight_.request.id)},
                      {"attempt", flight_.host_retries},
                      {"status", to_string(result.status)},
                      {"backoff_ms", to_milliseconds(delay)}});
    }
    // Hold the dispatch slot through the backoff wait: the request still
    // owns the drive's attention (and disk_busy() stays true, so idleness
    // policies keep their hands off).
    flight_.retry_wait = true;
    sim_.arm_after(flight_retry_event_, delay);
    return;
  }
  BlockResult res;
  res.latency = sim_.now() - flight_.request.submit_time;
  res.status = result.status;
  res.error_lbn = result.error_lbn;
  res.retries = flight_.host_retries;
  res.internal_retries = flight_.internal_retries;
  // Free the slot before answering the caller, so a completion callback
  // that observes disk_busy() or resubmits sees the drive available.
  --in_flight_;
  last_completion_ = sim_.now();
  finish_request(res);
  try_dispatch();
  if (on_idle_ && idle()) on_idle_();
}

void BlockLayer::on_timeout() {
  flight_.timeout_pending = false;
  if (flight_.done) return;
  ++stats_.timeouts;
  if (timeline_live()) {
    timeline_.timeline->add(tl_timeouts_, sim_.now(), 1.0);
  }
  BlockResult res;
  res.latency = sim_.now() - flight_.request.submit_time;
  res.status = disk::IoStatus::kTimeout;
  res.retries = flight_.host_retries;
  res.internal_retries = flight_.internal_retries;
  if (flight_.retry_wait) {
    // Timed out during a backoff wait: no command is at the drive, so the
    // slot frees now and the pending retry dies.
    sim_.cancel(flight_retry_event_);
    flight_.retry_wait = false;
    --in_flight_;
    last_completion_ = sim_.now();
    finish_request(res);
    try_dispatch();
    if (on_idle_ && idle()) on_idle_();
    return;
  }
  // The drive is still grinding on the command (the host cannot preempt
  // it); answer the caller now, on_disk_complete releases the slot later.
  finish_request(res);
}

void BlockLayer::finish_request(BlockResult result) {
  assert(!flight_.done);
  flight_.done = true;
  if (flight_.timeout_pending) {
    sim_.cancel(flight_timeout_event_);
    flight_.timeout_pending = false;
  }
  // Move the request onto the stack: the completion callback below may
  // submit a new request, which redispatches into (and overwrites)
  // flight_ before this frame returns.
  BlockRequest request = std::move(flight_.request);
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const obs::Track track = queue_track(request.priority);
    if (request.dispatch_time > request.submit_time) {
      tracer.span(track, "block", "queued", request.submit_time,
                  request.dispatch_time,
                  {{"id", static_cast<std::int64_t>(request.id)}});
    }
    tracer.span(track, "block",
                request.background ? "service (background)" : "service",
                request.dispatch_time, sim_.now(),
                {{"id", static_cast<std::int64_t>(request.id)},
                 {"bytes", request.cmd.bytes()},
                 {"prio", to_string(request.priority)},
                 {"status", to_string(result.status)},
                 {"retries", result.retries}});
  }
  ++stats_.completed;
  if (request.background) {
    ++stats_.background_completed;
    stats_.background_bytes += request.cmd.bytes();
  } else {
    ++stats_.foreground_completed;
    stats_.foreground_bytes += request.cmd.bytes();
    stats_.foreground_latency_sum += result.latency;
    if (timeline_live()) {
      timeline_.timeline->observe(tl_latency_, sim_.now(),
                                  to_milliseconds(result.latency));
    }
  }
  switch (result.status) {
    case disk::IoStatus::kOk:
      break;
    case disk::IoStatus::kMediaError:
      ++stats_.errors;
      ++stats_.media_errors;
      break;
    case disk::IoStatus::kTransientError:
      ++stats_.errors;
      ++stats_.transient_errors;
      break;
    case disk::IoStatus::kDiskFailed:
      ++stats_.errors;
      ++stats_.disk_failures;
      break;
    case disk::IoStatus::kTimeout:
      ++stats_.errors;
      break;
  }
  if (request.priority != IoPriority::kIdle) {
    last_foreground_activity_ = sim_.now();
    foreground_in_flight_ = false;
  }
  if (request.on_complete) request.on_complete(request, result);
}

void BlockLayer::release_slot() {
  --in_flight_;
  last_completion_ = sim_.now();
  try_dispatch();
  if (on_idle_ && idle()) on_idle_();
}

}  // namespace pscrub::block
