#include "block/block_layer.h"

#include <cassert>
#include <utility>

#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::block {

namespace {

obs::Track queue_track(IoPriority priority) {
  switch (priority) {
    case IoPriority::kRealtime: return obs::Track::kQueueRealtime;
    case IoPriority::kBestEffort: return obs::Track::kQueueBestEffort;
    case IoPriority::kIdle: return obs::Track::kQueueIdle;
  }
  return obs::Track::kQueueBestEffort;
}

}  // namespace

void BlockLayerStats::export_to(obs::Registry& registry,
                                const std::string& prefix) const {
  registry.counter(prefix + ".submitted") += submitted;
  registry.counter(prefix + ".completed") += completed;
  registry.counter(prefix + ".foreground_completed") += foreground_completed;
  registry.counter(prefix + ".background_completed") += background_completed;
  registry.counter(prefix + ".foreground_bytes") += foreground_bytes;
  registry.counter(prefix + ".background_bytes") += background_bytes;
  registry.counter(prefix + ".collisions") += collisions;
  registry.counter(prefix + ".errors") += errors;
  registry.counter(prefix + ".media_errors") += media_errors;
  registry.counter(prefix + ".transient_errors") += transient_errors;
  registry.counter(prefix + ".disk_failures") += disk_failures;
  registry.counter(prefix + ".timeouts") += timeouts;
  registry.counter(prefix + ".retries") += retries;
  registry.gauge(prefix + ".foreground_latency_sum_ms")
      .set(to_milliseconds(foreground_latency_sum));
  registry.gauge(prefix + ".collision_delay_sum_ms")
      .set(to_milliseconds(collision_delay_sum));
}

BlockLayer::BlockLayer(Simulator& sim, disk::DiskModel& disk,
                       std::unique_ptr<IoScheduler> scheduler)
    : sim_(sim), disk_(disk), scheduler_(std::move(scheduler)) {}

SimTime BlockLayer::disk_idle_for() const {
  if (disk_busy()) return 0;
  return sim_.now() - last_completion_;
}

SimTime BlockLayer::foreground_idle_for() const {
  if (foreground_in_flight_) return 0;
  return sim_.now() - last_foreground_activity_;
}

void BlockLayer::submit(BlockRequest request) {
  request.submit_time = sim_.now();
  request.id = next_id_++;
  ++stats_.submitted;
  if (request.priority != IoPriority::kIdle) {
    last_foreground_activity_ = sim_.now();
  }

  // Collision accounting: a foreground request arriving while a background
  // request occupies the disk is delayed by at least the background
  // request's remaining service time.
  if (!request.background && in_flight_ > 0 && in_flight_background_) {
    ++stats_.collisions;
    stats_.collision_delay_sum += in_flight_eta_ - sim_.now();
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(
          queue_track(request.priority), "block", "collision", sim_.now(),
          {{"delay_ms", to_milliseconds(in_flight_eta_ - sim_.now())}});
    }
  }
  if (on_request_ && !request.background) on_request_(request);

  scheduler_->add(std::move(request));
  try_dispatch();
}

void BlockLayer::try_dispatch() {
  if (in_flight_ > 0) return;  // one request at the drive at a time
  if (scheduler_->empty()) return;

  DispatchContext ctx;
  ctx.now = sim_.now();
  ctx.disk_idle_for = disk_idle_for();
  ctx.foreground_idle_for = foreground_idle_for();
  SimTime retry_after = 0;
  std::optional<BlockRequest> next = scheduler_->select(ctx, &retry_after);
  if (!next) {
    if (retry_after > 0 && !retry_pending_) {
      retry_pending_ = true;
      retry_event_ = sim_.after(retry_after, [this] {
        retry_pending_ = false;
        try_dispatch();
      });
    }
    return;
  }
  if (retry_pending_) {
    sim_.cancel(retry_event_);
    retry_pending_ = false;
  }

  ++in_flight_;
  in_flight_background_ = next->background;
  if (next->priority != IoPriority::kIdle) foreground_in_flight_ = true;

  auto flight = std::make_shared<Flight>();
  flight->request = std::move(*next);
  flight->request.dispatch_time = sim_.now();
  if (policy_.timeout > 0) {
    // One deadline covers the whole request: every attempt and backoff.
    flight->timeout_pending = true;
    flight->timeout_event =
        sim_.after(policy_.timeout, [this, flight] { on_timeout(flight); });
  }
  dispatch_to_disk(flight);
}

void BlockLayer::dispatch_to_disk(const std::shared_ptr<Flight>& flight) {
  // The disk is free (the dispatch slot is ours), so service starts
  // immediately and the model can tell us the completion time right after
  // submission.
  disk_.submit(flight->request.cmd,
               [this, flight](const disk::DiskCommand&,
                              const disk::DiskResult& result) {
                 on_disk_complete(flight, result);
               });
  in_flight_eta_ = disk_.busy_until();
}

bool BlockLayer::should_retry(disk::IoStatus status, int host_retries) const {
  if (host_retries >= policy_.max_retries) return false;
  switch (status) {
    case disk::IoStatus::kTransientError:
      return true;
    case disk::IoStatus::kMediaError:
      return policy_.retry_media_errors;
    default:
      // kDiskFailed: retrying a dead device is pointless; fail fast.
      // kOk/kTimeout never reach here from the drive.
      return false;
  }
}

void BlockLayer::on_disk_complete(const std::shared_ptr<Flight>& flight,
                                  const disk::DiskResult& result) {
  flight->internal_retries += result.internal_retries;
  if (flight->done) {
    // The caller was already answered with kTimeout; this late completion
    // just returns the drive to us.
    release_slot();
    return;
  }
  if (disk::is_error(result.status) &&
      should_retry(result.status, flight->host_retries)) {
    ++flight->host_retries;
    ++stats_.retries;
    SimTime delay = policy_.backoff_base;
    for (int i = 1; i < flight->host_retries; ++i) {
      delay = static_cast<SimTime>(static_cast<double>(delay) *
                                   policy_.backoff_multiplier);
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(queue_track(flight->request.priority), "block", "retry",
                     sim_.now(),
                     {{"id", static_cast<std::int64_t>(flight->request.id)},
                      {"attempt", flight->host_retries},
                      {"status", to_string(result.status)},
                      {"backoff_ms", to_milliseconds(delay)}});
    }
    // Hold the dispatch slot through the backoff wait: the request still
    // owns the drive's attention (and disk_busy() stays true, so idleness
    // policies keep their hands off).
    flight->retry_wait = true;
    flight->retry_event = sim_.after(delay, [this, flight] {
      flight->retry_wait = false;
      dispatch_to_disk(flight);
    });
    return;
  }
  BlockResult res;
  res.latency = sim_.now() - flight->request.submit_time;
  res.status = result.status;
  res.error_lbn = result.error_lbn;
  res.retries = flight->host_retries;
  res.internal_retries = flight->internal_retries;
  // Free the slot before answering the caller, so a completion callback
  // that observes disk_busy() or resubmits sees the drive available.
  --in_flight_;
  last_completion_ = sim_.now();
  finish_request(flight, res);
  try_dispatch();
  if (on_idle_ && idle()) on_idle_();
}

void BlockLayer::on_timeout(const std::shared_ptr<Flight>& flight) {
  flight->timeout_pending = false;
  if (flight->done) return;
  ++stats_.timeouts;
  BlockResult res;
  res.latency = sim_.now() - flight->request.submit_time;
  res.status = disk::IoStatus::kTimeout;
  res.retries = flight->host_retries;
  res.internal_retries = flight->internal_retries;
  if (flight->retry_wait) {
    // Timed out during a backoff wait: no command is at the drive, so the
    // slot frees now and the pending retry dies.
    sim_.cancel(flight->retry_event);
    flight->retry_wait = false;
    --in_flight_;
    last_completion_ = sim_.now();
    finish_request(flight, res);
    try_dispatch();
    if (on_idle_ && idle()) on_idle_();
    return;
  }
  // The drive is still grinding on the command (the host cannot preempt
  // it); answer the caller now, on_disk_complete releases the slot later.
  finish_request(flight, res);
}

void BlockLayer::finish_request(const std::shared_ptr<Flight>& flight,
                                BlockResult result) {
  assert(!flight->done);
  flight->done = true;
  if (flight->timeout_pending) {
    sim_.cancel(flight->timeout_event);
    flight->timeout_pending = false;
  }
  const BlockRequest& request = flight->request;
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const obs::Track track = queue_track(request.priority);
    if (request.dispatch_time > request.submit_time) {
      tracer.span(track, "block", "queued", request.submit_time,
                  request.dispatch_time,
                  {{"id", static_cast<std::int64_t>(request.id)}});
    }
    tracer.span(track, "block",
                request.background ? "service (background)" : "service",
                request.dispatch_time, sim_.now(),
                {{"id", static_cast<std::int64_t>(request.id)},
                 {"bytes", request.cmd.bytes()},
                 {"prio", to_string(request.priority)},
                 {"status", to_string(result.status)},
                 {"retries", result.retries}});
  }
  ++stats_.completed;
  if (request.background) {
    ++stats_.background_completed;
    stats_.background_bytes += request.cmd.bytes();
  } else {
    ++stats_.foreground_completed;
    stats_.foreground_bytes += request.cmd.bytes();
    stats_.foreground_latency_sum += result.latency;
  }
  switch (result.status) {
    case disk::IoStatus::kOk:
      break;
    case disk::IoStatus::kMediaError:
      ++stats_.errors;
      ++stats_.media_errors;
      break;
    case disk::IoStatus::kTransientError:
      ++stats_.errors;
      ++stats_.transient_errors;
      break;
    case disk::IoStatus::kDiskFailed:
      ++stats_.errors;
      ++stats_.disk_failures;
      break;
    case disk::IoStatus::kTimeout:
      ++stats_.errors;
      break;
  }
  if (request.priority != IoPriority::kIdle) {
    last_foreground_activity_ = sim_.now();
    foreground_in_flight_ = false;
  }
  if (request.on_complete) request.on_complete(request, result);
}

void BlockLayer::release_slot() {
  --in_flight_;
  last_completion_ = sim_.now();
  try_dispatch();
  if (on_idle_ && idle()) on_idle_();
}

}  // namespace pscrub::block
