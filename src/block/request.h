// Block-layer request abstraction.
#pragma once

#include <cstdint>
#include <functional>

#include "disk/command.h"
#include "sim/time.h"

namespace pscrub::block {

/// CFQ scheduling classes (linux ioprio classes).
enum class IoPriority : std::uint8_t {
  kRealtime,
  kBestEffort,  // the default class
  kIdle,        // only served when the disk has been idle for a window
};

const char* to_string(IoPriority p);

struct BlockRequest;

/// Invoked at completion with the original request and its total response
/// time (submission to block layer -> completion from disk).
using RequestCompletionFn =
    std::function<void(const BlockRequest&, SimTime latency)>;

struct BlockRequest {
  disk::DiskCommand cmd;
  IoPriority priority = IoPriority::kBestEffort;

  /// True for requests entering the kernel via the wild-card ioctl path
  /// (user-level VERIFY): the kernel cannot sort, merge, or prioritize
  /// them -- they are dispatched in arrival order regardless of `priority`
  /// (Sec III-C of the paper).
  bool soft_barrier = false;

  /// Tag for attribution in metrics (foreground vs scrubber).
  bool background = false;

  RequestCompletionFn on_complete;

  // Filled in by the block layer.
  SimTime submit_time = 0;
  /// When the scheduler handed the request to the disk (== queue exit).
  SimTime dispatch_time = 0;
  std::uint64_t id = 0;
};

}  // namespace pscrub::block
