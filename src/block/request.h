// Block-layer request abstraction.
#pragma once

#include <cstdint>
#include <functional>

#include "disk/command.h"
#include "sim/time.h"

namespace pscrub::block {

/// CFQ scheduling classes (linux ioprio classes).
enum class IoPriority : std::uint8_t {
  kRealtime,
  kBestEffort,  // the default class
  kIdle,        // only served when the disk has been idle for a window
};

const char* to_string(IoPriority p);

struct BlockRequest;

/// Per-request outcome delivered at completion time. Implicitly converts
/// to/from SimTime (the latency) so legacy callbacks that only care about
/// response time keep working; error-aware consumers read `status`.
struct BlockResult {
  /// Total response time: submission to block layer -> completion
  /// (including every host retry and its backoff wait).
  SimTime latency = 0;
  disk::IoStatus status = disk::IoStatus::kOk;
  /// First bad sector the request tripped over (media errors only).
  disk::Lbn error_lbn = -1;
  /// Host-side retries the block layer performed for this request.
  int retries = 0;
  /// In-drive recovery attempts across every attempt of this request.
  std::int64_t internal_retries = 0;

  BlockResult() = default;
  BlockResult(SimTime l) : latency(l) {}     // NOLINT(google-explicit-constructor)
  operator SimTime() const { return latency; }  // NOLINT(google-explicit-constructor)
  bool ok() const { return status == disk::IoStatus::kOk; }
};

/// Invoked exactly once per submitted request with the original request and
/// its result (success or a typed error -- requests are never lost).
using RequestCompletionFn =
    std::function<void(const BlockRequest&, const BlockResult&)>;

struct BlockRequest {
  disk::DiskCommand cmd;
  IoPriority priority = IoPriority::kBestEffort;

  /// True for requests entering the kernel via the wild-card ioctl path
  /// (user-level VERIFY): the kernel cannot sort, merge, or prioritize
  /// them -- they are dispatched in arrival order regardless of `priority`
  /// (Sec III-C of the paper).
  bool soft_barrier = false;

  /// Tag for attribution in metrics (foreground vs scrubber).
  bool background = false;

  RequestCompletionFn on_complete;

  // Filled in by the block layer.
  SimTime submit_time = 0;
  /// When the scheduler handed the request to the disk (== queue exit).
  SimTime dispatch_time = 0;
  std::uint64_t id = 0;
};

}  // namespace pscrub::block
