// CFQ-like I/O scheduler: the only linux scheduler with I/O prioritization
// (Sec III-B of the paper).
//
// Modelled behaviour:
//  - Three priority classes. Realtime preempts BestEffort preempts Idle.
//  - Requests within a class are kept in a sorted elevator with
//    back-merging.
//  - The Idle class is served only after the disk has been continuously
//    idle for `idle_window` (10 ms in linux 2.6.35) and no higher-class
//    request is pending.
//  - Soft-barrier requests (user-level ioctl VERIFY) bypass the elevator
//    and the priority classes entirely: they sit in a FIFO and are
//    dispatched in arrival order, interleaved fairly (by arrival time)
//    with sortable requests. This reproduces Fig 3's observation that
//    priorities have no effect on a user-level scrubber.
#pragma once

#include <array>
#include <deque>

#include "block/elevator.h"
#include "block/io_scheduler.h"

namespace pscrub::block {

class CfqScheduler final : public IoScheduler {
 public:
  static constexpr SimTime kDefaultIdleWindow = 10 * kMillisecond;
  /// Anti-starvation: a request older than this is dispatched ahead of the
  /// C-LOOK scan order (linux CFQ's fifo_expire for sync requests).
  static constexpr SimTime kDefaultFifoExpire = 125 * kMillisecond;

  explicit CfqScheduler(SimTime idle_window = kDefaultIdleWindow,
                        std::int64_t max_merge_bytes = 512 * 1024,
                        SimTime fifo_expire = kDefaultFifoExpire);

  void add(BlockRequest request) override;
  bool empty() const override;
  std::size_t size() const override;
  std::optional<BlockRequest> select(const DispatchContext& ctx,
                                     SimTime* retry_after) override;
  const char* name() const override { return "cfq"; }

  SimTime idle_window() const { return idle_window_; }

 private:
  static constexpr std::size_t kClasses = 3;
  std::size_t index(IoPriority p) const { return static_cast<std::size_t>(p); }

  SimTime idle_window_;
  SimTime fifo_expire_;
  std::array<Elevator, kClasses> classes_;
  std::deque<BlockRequest> barriers_;
};

}  // namespace pscrub::block
