// NOOP scheduler: plain FIFO, no priorities, no idle gating.
// Soft barriers need no special handling here -- FIFO already never
// reorders. Useful as a baseline and for deterministic tests.
#pragma once

#include <deque>

#include "block/io_scheduler.h"

namespace pscrub::block {

class NoopScheduler final : public IoScheduler {
 public:
  void add(BlockRequest request) override {
    queue_.push_back(std::move(request));
  }

  bool empty() const override { return queue_.empty(); }
  std::size_t size() const override { return queue_.size(); }

  std::optional<BlockRequest> select(const DispatchContext&,
                                     SimTime*) override {
    if (queue_.empty()) return std::nullopt;
    BlockRequest r = std::move(queue_.front());
    queue_.pop_front();
    return r;
  }

  const char* name() const override { return "noop"; }

 private:
  std::deque<BlockRequest> queue_;
};

}  // namespace pscrub::block
