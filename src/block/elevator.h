// Sorted dispatch queue with back-merging: the "elevator" shared by the
// sortable paths of the schedulers.
//
// Requests are kept in LBN order and served with a one-way scan (C-LOOK):
// the next request is the first one at or above the last dispatched LBN,
// wrapping to the lowest when the scan passes the end. Contiguous requests
// of the same kind are back-merged up to a size cap, mirroring the kernel's
// request merging.
//
// A lazy FIFO side-structure tracks arrival order so oldest_arrival() and
// pop_oldest() (the fifo_expire anti-starvation path) stay O(log n)
// amortized even with hundreds of thousands of queued requests -- a
// saturated open-loop replay queues that many.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "block/request.h"

namespace pscrub::block {

class Elevator {
 public:
  /// `max_merge_bytes` caps the size of a merged request (0 disables
  /// merging).
  explicit Elevator(std::int64_t max_merge_bytes = 512 * 1024)
      : max_merge_sectors_(max_merge_bytes / disk::kSectorBytes) {}

  /// Adds a request, back-merging it into an existing contiguous request
  /// of the same kind when possible. Returns true if merged.
  /// Precondition: requests arrive in nondecreasing submit_time (the
  /// simulation clock only moves forward).
  bool add(BlockRequest request);

  bool empty() const { return by_lbn_.empty(); }
  std::size_t size() const { return by_lbn_.size(); }

  /// Arrival time of the oldest request (for FIFO fairness across queues).
  /// Precondition: !empty().
  SimTime oldest_arrival() const;

  /// Pops the next request in C-LOOK order.
  BlockRequest pop();

  /// Pops the longest-waiting request regardless of scan position
  /// (anti-starvation / fifo_expire path).
  BlockRequest pop_oldest();

 private:
  struct FifoEntry {
    SimTime submit;
    std::uint64_t id;
    disk::Lbn lbn;
    // Set when the request was popped via the scan path; the entry is
    // skipped lazily once it reaches the FIFO front. Internal ids are
    // assigned in FIFO push order and the FIFO only pops from the front,
    // so the live entry for id X always sits at index X - front().id --
    // marking is O(1) with no side table (and no hash container whose
    // layout could leak into dispatch order).
    bool dead = false;
  };

  /// Drops dead entries from the FIFO front.
  void clean_fifo_front() const;

  struct Entry {
    BlockRequest request;
    std::uint64_t iid;  // elevator-internal id linking to the FIFO
  };

  // Keyed by starting LBN; multimap because distinct requests can target
  // the same LBN (e.g. repeated reads of a hot block while queued).
  std::multimap<disk::Lbn, Entry> by_lbn_;
  std::int64_t max_merge_sectors_;
  disk::Lbn scan_from_ = 0;
  // Arrival order; dead entries (popped via the scan path) are skipped
  // lazily at the front.
  mutable std::deque<FifoEntry> fifo_;
  std::uint64_t next_internal_id_ = 1;
};

}  // namespace pscrub::block
