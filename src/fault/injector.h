// Fault injector: drives a materialized FaultPlan into live disk models.
//
// For each attached disk the injector
//   - installs the plan's in-drive error model,
//   - schedules every LSE burst (sectors appear silently at their
//     occurrence time -- they cost nothing until a media access trips
//     over them),
//   - schedules the whole-device failure, if planned,
//   - chains the disk's LSE observer (preserving whatever the RAID layer
//     or a test installed) to timestamp in-band detections.
//
// The detection log is the in-band ground truth that the analytical
// core::evaluate_mlet schedule walk can be cross-checked against: each
// entry records when the sector went bad and when a media access first
// found it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "disk/disk_model.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"

namespace pscrub::obs {
class Registry;
}  // namespace pscrub::obs

namespace pscrub::fault {

class FaultInjector {
 public:
  /// One in-band detection of an injected bad sector (first detection
  /// only; host retries re-reporting the same sector are deduplicated).
  struct Detection {
    int disk = 0;
    disk::Lbn lbn = 0;
    SimTime occurred = 0;  // when the injection made the sector bad
    SimTime detected = 0;  // when a media access first found it
    bool by_read = false;  // foreground read vs scrub verify
  };

  FaultInjector(Simulator& sim, FaultPlan plan)
      : sim_(sim), plan_(std::move(plan)) {}

  /// Wires plan.disks[index] into `d`: error model, burst injections,
  /// failure event, observer chain. Call once per disk before the
  /// simulation runs. The disk must outlive the injector's simulator.
  void attach(disk::DiskModel& d, int index);

  const FaultPlan& plan() const { return plan_; }
  const std::vector<Detection>& detections() const { return detections_; }

  std::int64_t injected_sectors() const { return injected_sectors_; }
  std::int64_t device_failures() const { return device_failures_; }
  std::int64_t read_detections() const { return read_detections_; }
  std::int64_t scrub_detections() const { return scrub_detections_; }

  /// Mean in-band latent error time (occurrence -> first detection) in
  /// hours over everything detected so far; 0 when nothing was detected.
  /// Undetected sectors are NOT included (compare against the analytical
  /// MLET only when the run covered the full schedule).
  double mean_detection_hours() const;

  /// Publishes injector counters under `prefix` (e.g. "fault.injected").
  void export_to(obs::Registry& registry, const std::string& prefix) const;

 private:
  void record_detection(int disk_index, disk::Lbn lbn, bool is_read);

  Simulator& sim_;
  FaultPlan plan_;
  std::vector<Detection> detections_;
  /// Injection time per (disk, sector) for detection latency accounting.
  std::map<std::pair<int, disk::Lbn>, SimTime> injected_at_;
  /// Sectors already detected once (dedupe against retry re-reports).
  std::set<std::pair<int, disk::Lbn>> seen_;
  std::int64_t injected_sectors_ = 0;
  std::int64_t device_failures_ = 0;
  std::int64_t read_detections_ = 0;
  std::int64_t scrub_detections_ = 0;
};

}  // namespace pscrub::fault
