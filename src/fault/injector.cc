#include "fault/injector.h"

#include <utility>

#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::fault {

void FaultInjector::attach(disk::DiskModel& d, int index) {
  const auto i = static_cast<std::size_t>(index);
  if (i >= plan_.disks.size()) return;
  const DiskFaultPlan& dp = plan_.disks[i];
  d.set_error_model(plan_.error_model);

  // Chain, not clobber: the RAID layer's repair routing (or a test's
  // observer) keeps firing after we timestamp the detection.
  auto prev = d.set_lse_observer(nullptr);
  d.set_lse_observer(
      [this, index, prev = std::move(prev)](disk::Lbn lbn, bool is_read) {
        record_detection(index, lbn, is_read);
        if (prev) prev(lbn, is_read);
      });

  for (const core::LseBurst& burst : dp.bursts) {
    sim_.at(burst.occurred, [this, &d, index, &burst] {
      obs::Tracer& tracer = obs::Tracer::global();
      if (tracer.enabled()) {
        tracer.instant(
            obs::Track::kRaid, "fault", "lse-burst", sim_.now(),
            {{"disk", index},
             {"sectors", static_cast<std::int64_t>(burst.sectors.size())}});
      }
      for (disk::Lbn lbn : burst.sectors) {
        if (lbn < 0 || lbn >= d.total_sectors()) continue;
        d.inject_lse(lbn);
        ++injected_sectors_;
        injected_at_.emplace(std::make_pair(index, lbn), sim_.now());
      }
    });
  }

  if (dp.fail_at >= 0) {
    sim_.at(dp.fail_at, [this, &d, index] {
      d.fail_device();
      ++device_failures_;
      obs::Tracer& tracer = obs::Tracer::global();
      if (tracer.enabled()) {
        tracer.instant(obs::Track::kRaid, "fault", "device-failure",
                       sim_.now(), {{"disk", index}});
      }
    });
  }
}

void FaultInjector::record_detection(int disk_index, disk::Lbn lbn,
                                     bool is_read) {
  const auto key = std::make_pair(disk_index, lbn);
  if (!seen_.insert(key).second) return;  // retries re-report; count once
  Detection det;
  det.disk = disk_index;
  det.lbn = lbn;
  det.detected = sim_.now();
  det.by_read = is_read;
  auto it = injected_at_.find(key);
  // Sectors injected outside the plan (e.g. a test's manual inject_lse)
  // count as occurred at time 0.
  det.occurred = it != injected_at_.end() ? it->second : 0;
  if (is_read) {
    ++read_detections_;
  } else {
    ++scrub_detections_;
  }
  detections_.push_back(det);
}

double FaultInjector::mean_detection_hours() const {
  if (detections_.empty()) return 0.0;
  double sum = 0.0;
  for (const Detection& det : detections_) {
    sum += to_seconds(det.detected - det.occurred) / 3600.0;
  }
  return sum / static_cast<double>(detections_.size());
}

void FaultInjector::export_to(obs::Registry& registry,
                              const std::string& prefix) const {
  registry.counter(prefix + ".injected_sectors") += injected_sectors_;
  registry.counter(prefix + ".device_failures") += device_failures_;
  registry.counter(prefix + ".read_detections") += read_detections_;
  registry.counter(prefix + ".scrub_detections") += scrub_detections_;
  registry.gauge(prefix + ".mean_detection_hours")
      .set(mean_detection_hours());
}

}  // namespace pscrub::fault
