#include "fault/fault_plan.h"

#include <stdexcept>
#include <string>

#include "exp/sweep.h"
#include "sim/rng.h"

namespace pscrub::fault {

namespace {

SimTime resolve_horizon(const FaultSpec& spec, SimTime horizon,
                        const char* who) {
  const SimTime effective = spec.lse_horizon > 0 ? spec.lse_horizon : horizon;
  if (effective <= 0) {
    throw std::invalid_argument(
        std::string(who) +
        ": fault horizon must be > 0 (set FaultSpec::lse_horizon or pass "
        "the scenario run length)");
  }
  return effective;
}

}  // namespace

DiskFaultPlan build_disk_fault_plan(const FaultSpec& spec,
                                    std::int64_t disk_index,
                                    std::int64_t total_sectors,
                                    SimTime horizon) {
  if (disk_index < 0) {
    throw std::invalid_argument(
        "build_disk_fault_plan: disk_index must be >= 0, got " +
        std::to_string(disk_index));
  }
  DiskFaultPlan d;
  if (!spec.enabled) return d;

  const SimTime effective_horizon =
      resolve_horizon(spec, horizon, "build_disk_fault_plan");

  // Per-disk stream from the task-seed derivation: disk i's bursts are a
  // pure function of (spec.seed, i), independent of every other disk.
  Rng rng(exp::task_seed(spec.seed, static_cast<std::size_t>(disk_index)));
  d.bursts = core::generate_lse_bursts(spec.lse, total_sectors,
                                       effective_horizon, rng);

  for (const DiskFailureEvent& f : spec.fail_disk) {
    if (f.disk != disk_index) continue;
    if (f.at < 0) {
      throw std::invalid_argument(
          "build_disk_fault_plan: fail_disk time for disk " +
          std::to_string(f.disk) + " must be >= 0");
    }
    if (d.fail_at >= 0) {
      throw std::invalid_argument(
          "build_disk_fault_plan: disk " + std::to_string(f.disk) +
          " has more than one failure event");
    }
    d.fail_at = f.at;
  }
  return d;
}

FaultPlan build_fault_plan(const FaultSpec& spec, int disk_count,
                           std::int64_t total_sectors, SimTime horizon) {
  if (disk_count <= 0) {
    throw std::invalid_argument("build_fault_plan: disk_count must be > 0, got " +
                                std::to_string(disk_count));
  }
  FaultPlan plan;
  plan.error_model = spec.error_model;
  if (!spec.enabled) {
    plan.disks.resize(static_cast<std::size_t>(disk_count));
    return plan;
  }

  // Validate the whole-plan fail_disk range up front (the per-disk builder
  // cannot know the fleet size, so indices past the end would otherwise be
  // silently ignored).
  resolve_horizon(spec, horizon, "build_fault_plan");
  for (const DiskFailureEvent& f : spec.fail_disk) {
    if (f.disk < 0 || f.disk >= disk_count) {
      throw std::invalid_argument(
          "build_fault_plan: fail_disk index " + std::to_string(f.disk) +
          " outside [0, " + std::to_string(disk_count) + ")");
    }
  }

  plan.disks.reserve(static_cast<std::size_t>(disk_count));
  for (int i = 0; i < disk_count; ++i) {
    plan.disks.push_back(
        build_disk_fault_plan(spec, i, total_sectors, horizon));
  }
  return plan;
}

}  // namespace pscrub::fault
