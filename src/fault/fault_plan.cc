#include "fault/fault_plan.h"

#include <stdexcept>
#include <string>

#include "exp/sweep.h"
#include "sim/rng.h"

namespace pscrub::fault {

FaultPlan build_fault_plan(const FaultSpec& spec, int disk_count,
                           std::int64_t total_sectors, SimTime horizon) {
  if (disk_count <= 0) {
    throw std::invalid_argument("build_fault_plan: disk_count must be > 0, got " +
                                std::to_string(disk_count));
  }
  FaultPlan plan;
  plan.disks.resize(static_cast<std::size_t>(disk_count));
  plan.error_model = spec.error_model;
  if (!spec.enabled) return plan;

  const SimTime effective_horizon =
      spec.lse_horizon > 0 ? spec.lse_horizon : horizon;
  if (effective_horizon <= 0) {
    throw std::invalid_argument(
        "build_fault_plan: fault horizon must be > 0 (set FaultSpec::"
        "lse_horizon or pass the scenario run length)");
  }

  for (int i = 0; i < disk_count; ++i) {
    // Per-disk stream from the task-seed derivation: disk i's bursts are a
    // pure function of (spec.seed, i), independent of every other disk.
    Rng rng(exp::task_seed(spec.seed, static_cast<std::size_t>(i)));
    plan.disks[static_cast<std::size_t>(i)].bursts = core::generate_lse_bursts(
        spec.lse, total_sectors, effective_horizon, rng);
  }

  for (const DiskFailureEvent& f : spec.fail_disk) {
    if (f.disk < 0 || f.disk >= disk_count) {
      throw std::invalid_argument(
          "build_fault_plan: fail_disk index " + std::to_string(f.disk) +
          " outside [0, " + std::to_string(disk_count) + ")");
    }
    if (f.at < 0) {
      throw std::invalid_argument(
          "build_fault_plan: fail_disk time for disk " +
          std::to_string(f.disk) + " must be >= 0");
    }
    DiskFaultPlan& d = plan.disks[static_cast<std::size_t>(f.disk)];
    if (d.fail_at >= 0) {
      throw std::invalid_argument(
          "build_fault_plan: disk " + std::to_string(f.disk) +
          " has more than one failure event");
    }
    d.fail_at = f.at;
  }
  return plan;
}

}  // namespace pscrub::fault
