// Deterministic fault plans: the declarative description of everything
// that will go wrong in a scenario, materialized up front so the same
// spec + seed always yields the same faults -- on any worker count.
//
// A FaultSpec says *how* faults arrive (LSE burst model, transient error
// rate, device-failure events, in-drive recovery behaviour); a FaultPlan
// is the materialized per-disk schedule (concrete bursts with occurrence
// times, concrete failure times). Per-disk randomness derives from the
// spec seed via exp::task_seed -- the same splitmix64 derivation the
// sweep runner uses per task -- so disk i's bursts never depend on how
// many disks precede it in construction order or which thread built them.
#pragma once

#include <cstdint>
#include <vector>

#include "core/lse.h"
#include "disk/disk_model.h"
#include "sim/time.h"

namespace pscrub::fault {

/// A scheduled whole-device failure.
struct DiskFailureEvent {
  int disk = 0;
  SimTime at = 0;
};

/// Declarative fault model for a scenario (disk-count agnostic).
struct FaultSpec {
  /// Master switch; a disabled spec materializes an empty plan.
  bool enabled = false;
  /// In-drive recovery behaviour installed on every disk. `in_band`
  /// defaults to true here (unlike the DiskErrorModel default) because a
  /// fault plan exists to surface errors through the request path.
  disk::DiskErrorModel error_model{.in_band = true};
  /// LSE burst arrival model (core::generate_lse_bursts).
  core::LseModelConfig lse;
  /// Horizon over which bursts arrive; <= 0 uses the scenario run length.
  SimTime lse_horizon = 0;
  /// Whole-device failures. Indices are validated against the disk count
  /// when the plan is built.
  std::vector<DiskFailureEvent> fail_disk;
  /// Root of the per-disk derivation: disk i draws from
  /// Rng(exp::task_seed(seed, i)).
  std::uint64_t seed = 7;
};

/// Materialized faults for one disk.
struct DiskFaultPlan {
  std::vector<core::LseBurst> bursts;
  /// Whole-device failure time; < 0 means the device never fails.
  SimTime fail_at = -1;

  std::int64_t total_error_sectors() const {
    std::int64_t n = 0;
    for (const core::LseBurst& b : bursts) {
      n += static_cast<std::int64_t>(b.sectors.size());
    }
    return n;
  }
};

/// Materialized faults for every disk of a scenario.
struct FaultPlan {
  std::vector<DiskFaultPlan> disks;
  disk::DiskErrorModel error_model;

  bool empty() const {
    for (const DiskFaultPlan& d : disks) {
      if (!d.bursts.empty() || d.fail_at >= 0) return false;
    }
    return true;
  }
};

/// Materializes `spec` for `disk_count` disks of `total_sectors` each over
/// `horizon` (used when spec.lse_horizon <= 0). Deterministic: identical
/// arguments always produce an identical plan. Throws std::invalid_argument
/// for out-of-range fail_disk indices, negative failure times, or a
/// non-positive effective horizon.
FaultPlan build_fault_plan(const FaultSpec& spec, int disk_count,
                           std::int64_t total_sectors, SimTime horizon);

/// Materializes the plan of ONE member disk. A pure function of
/// (spec, disk_index, total_sectors, horizon) -- disk i's plan never
/// depends on how many disks exist, so the per-disk plan sequence of a
/// fleet is prefix-invariant under fleet-size changes and fleet shards
/// can build plans lazily without holding the whole fleet's bursts in
/// memory. build_fault_plan(spec, n, ...).disks[i] equals
/// build_disk_fault_plan(spec, i, ...) for every i < n. Throws
/// std::invalid_argument for a negative disk index, negative failure
/// times, a duplicate failure for this disk, or a non-positive effective
/// horizon (fail_disk indices beyond this disk are ignored here; the
/// full-plan builder range-checks them).
DiskFaultPlan build_disk_fault_plan(const FaultSpec& spec,
                                    std::int64_t disk_index,
                                    std::int64_t total_sectors,
                                    SimTime horizon);

}  // namespace pscrub::fault
