// Event-driven RAID array over simulated member disks.
//
// This is the substrate for the paper's *motivation*: latent sector
// errors are harmless while redundancy is intact, but an LSE discovered
// on a surviving disk during reconstruction is unrecoverable data loss.
// The array supports:
//   - striped reads/writes (small writes do read-modify-write),
//   - degraded reads around a failed disk,
//   - stripe-by-stripe rebuild onto a replacement, with per-sector loss
//     accounting against the survivors' latent errors,
//   - scrubbing of every member with reconstruct-and-rewrite repair of
//     detected LSEs (the defense the paper's scrubbers implement).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "block/block_layer.h"
#include "block/cfq_scheduler.h"
#include "core/scrubber.h"
#include "disk/disk_model.h"
#include "obs/timeline.h"
#include "raid/layout.h"
#include "sim/simulator.h"

namespace pscrub::obs {
class Registry;
}  // namespace pscrub::obs

namespace pscrub::raid {

struct ArrayStats {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t degraded_reads = 0;
  /// Sectors rewritten from redundancy (scrub repair + rebuild).
  std::int64_t reconstructed_sectors = 0;
  /// Sectors that could not be reconstructed (erasures exceeded parity).
  std::int64_t lost_sectors = 0;
  /// LSEs found by scrubbing / by foreground reads.
  std::int64_t scrub_detections = 0;
  std::int64_t read_detections = 0;
  /// Survivor UREs hit while a rebuild is in flight (the paper's
  /// motivating data-loss exposure; recoverability settles in
  /// lost_sectors/reconstructed_sectors).
  std::int64_t rebuild_detections = 0;

  /// Publishes every field into `registry` under `prefix` (e.g.
  /// "raid.lost_sectors").
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

struct RebuildConfig {
  /// Pacing between stripe rebuilds (0 = as fast as possible).
  SimTime inter_stripe_delay = 0;
};

struct RebuildResult {
  std::int64_t stripes_rebuilt = 0;
  std::int64_t sectors_lost = 0;
  SimTime duration = 0;
};

class RaidArray {
 public:
  RaidArray(Simulator& sim, const RaidConfig& config,
            const disk::DiskProfile& profile, std::uint64_t seed);

  const RaidLayout& layout() const { return layout_; }
  int total_disks() const { return layout_.total_disks(); }
  std::int64_t array_sectors() const { return layout_.array_sectors(); }

  disk::DiskModel& disk(int i) { return *disks_[static_cast<std::size_t>(i)]; }
  block::BlockLayer& block(int i) {
    return *blocks_[static_cast<std::size_t>(i)];
  }

  using DoneFn = std::function<void(SimTime latency)>;

  /// Array-level data read; transparently degrades around a failed disk.
  void read(std::int64_t array_lbn, std::int64_t sectors, DoneFn done);

  /// Array-level data write (read-modify-write: old data + parity are
  /// read, then data + parity written).
  void write(std::int64_t array_lbn, std::int64_t sectors, DoneFn done);

  /// Marks a member failed: its device starts failing commands fast, its
  /// scrubber stands down, and reads targeting it reconstruct from peers.
  /// Throws std::out_of_range for a bad index and std::logic_error when the
  /// member is already failed or a rebuild is in flight.
  void fail_disk(int index);
  bool is_failed(int index) const {
    return failed_[static_cast<std::size_t>(index)];
  }

  /// Rebuilds a failed member onto its replacement, stripe by stripe.
  /// Survivor LSEs encountered where erasures exceed parity are counted
  /// as lost sectors. Completion is reported through `done`. Throws
  /// std::out_of_range for a bad index and std::logic_error when the
  /// target is not failed or another rebuild is already in flight.
  void rebuild(int index, const RebuildConfig& config,
               std::function<void(const RebuildResult&)> done);

  /// True while a rebuild is in flight.
  bool rebuild_in_flight() const { return rebuilding_disk_ >= 0; }

  /// Fraction of stripes rebuilt for an in-progress rebuild (1 if none).
  double rebuild_progress() const;

  /// Starts a Waiting-policy scrubber with reconstruct-on-detect repair on
  /// every member disk.
  void start_scrubbing(SimTime wait_threshold, std::int64_t request_bytes);
  void stop_scrubbing();

  /// Scrubbed bytes across all members (for rate reporting).
  std::int64_t scrubbed_bytes() const;

  const ArrayStats& stats() const { return stats_; }

  /// Wires every member's disk ("<prefix>.diskN"), block layer
  /// ("<prefix>.diskN.block"), and -- for scrubbers created by later
  /// start_scrubbing calls -- scrub progress ("<prefix>.diskN.scrub")
  /// into `timeline`, and emits "<prefix>.rebuild.fraction" during
  /// rebuilds.
  void attach_timeline(obs::Timeline& timeline, const std::string& prefix);

 private:
  struct Join {
    int remaining = 0;
    SimTime submitted = 0;
    DoneFn done;
  };

  void submit_disk_read(int disk_index, disk::Lbn lbn, std::int64_t sectors,
                        const std::shared_ptr<Join>& join,
                        bool rebuild = false);
  void submit_disk_write(int disk_index, disk::Lbn lbn, std::int64_t sectors,
                         const std::shared_ptr<Join>& join,
                         bool rebuild = false);
  void submit_joined(int disk_index, block::BlockRequest request,
                     const std::shared_ptr<Join>& join);

  /// Reads the reconstruction set for a data range on a failed disk.
  void degraded_read(const RaidLayout::DataLocation& loc,
                     std::int64_t sectors, const std::shared_ptr<Join>& join);

  /// Scrub-detected LSE: reconstruct the sector from peers, rewrite it.
  void repair_sector(int disk_index, disk::Lbn lbn);

  void rebuild_stripe(int index, std::int64_t stripe,
                      const RebuildConfig& config,
                      std::shared_ptr<RebuildResult> result,
                      std::function<void(const RebuildResult&)> done,
                      SimTime started);

  /// Erasure accounting: sectors in [lbn, lbn+sectors) of `stripe` on the
  /// rebuilt disk that cannot be reconstructed from the survivors.
  std::int64_t count_lost_sectors(std::int64_t stripe, int missing_disk);

  Simulator& sim_;
  RaidConfig config_;
  RaidLayout layout_;
  std::vector<std::unique_ptr<disk::DiskModel>> disks_;
  std::vector<std::unique_ptr<block::BlockLayer>> blocks_;
  std::vector<std::unique_ptr<core::WaitingScrubber>> scrubbers_;
  std::vector<bool> failed_;
  ArrayStats stats_;
  /// Sectors with a reconstruct-and-rewrite repair in flight; repeated
  /// detections of the same sector (host retries, overlapping reads) must
  /// not spawn duplicate repairs.
  std::set<std::pair<int, disk::Lbn>> repairs_in_flight_;

  // In-progress rebuild bookkeeping.
  int rebuilding_disk_ = -1;
  std::int64_t rebuild_frontier_ = 0;  // stripes below this are restored

  // Timeline wiring (attach_timeline); null when not attached.
  obs::Timeline* timeline_ = nullptr;
  std::string timeline_prefix_;
};

}  // namespace pscrub::raid
