#include "raid/array.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "core/scrub_strategy.h"
#include "obs/registry.h"
#include "obs/trace_event.h"

namespace pscrub::raid {

void ArrayStats::export_to(obs::Registry& registry,
                           const std::string& prefix) const {
  registry.counter(prefix + ".reads") += reads;
  registry.counter(prefix + ".writes") += writes;
  registry.counter(prefix + ".degraded_reads") += degraded_reads;
  registry.counter(prefix + ".reconstructed_sectors") +=
      reconstructed_sectors;
  registry.counter(prefix + ".lost_sectors") += lost_sectors;
  registry.counter(prefix + ".scrub_detections") += scrub_detections;
  registry.counter(prefix + ".read_detections") += read_detections;
  registry.counter(prefix + ".rebuild_detections") += rebuild_detections;
}

RaidArray::RaidArray(Simulator& sim, const RaidConfig& config,
                     const disk::DiskProfile& profile, std::uint64_t seed)
    : sim_(sim),
      config_(config),
      layout_(config, disk::Geometry(profile.capacity_bytes, profile.outer_spt,
                                     profile.inner_spt, profile.zones)
                          .total_sectors()),
      failed_(static_cast<std::size_t>(layout_.total_disks()), false) {
  const auto n = static_cast<std::size_t>(layout_.total_disks());
  disks_.reserve(n);
  blocks_.reserve(n);
  scrubbers_.resize(n);
  for (int i = 0; i < layout_.total_disks(); ++i) {
    disks_.push_back(std::make_unique<disk::DiskModel>(
        sim_, profile, seed + static_cast<std::uint64_t>(i) * 7919));
    blocks_.push_back(std::make_unique<block::BlockLayer>(
        sim_, *disks_.back(), std::make_unique<block::CfqScheduler>()));
    // Every detection -- foreground read or scrub -- routes into the
    // reconstruct-and-rewrite repair path while redundancy is intact.
    // During a rebuild, survivor UREs are the paper's motivating data-loss
    // exposure: they are counted separately and left to the rebuild's
    // per-column recoverability accounting (repairing them mid-count
    // would race with it).
    disks_.back()->set_lse_observer(
        [this, i](disk::Lbn lbn, bool is_read) {
          if (rebuilding_disk_ >= 0) {
            ++stats_.rebuild_detections;
            return;
          }
          if (is_read) {
            ++stats_.read_detections;
          } else {
            ++stats_.scrub_detections;
          }
          repair_sector(i, lbn);
        });
  }
}

void RaidArray::submit_joined(int disk_index, block::BlockRequest request,
                              const std::shared_ptr<Join>& join) {
  ++join->remaining;
  request.on_complete = [join](const block::BlockRequest&, SimTime) {
    if (--join->remaining == 0 && join->done) {
      // Latency measured from array-level submission to last completion.
      join->done(0);
    }
  };
  block(disk_index).submit(std::move(request));
}

void RaidArray::submit_disk_read(int disk_index, disk::Lbn lbn,
                                 std::int64_t sectors,
                                 const std::shared_ptr<Join>& join,
                                 bool rebuild) {
  block::BlockRequest req;
  req.cmd.kind = disk::CommandKind::kRead;
  req.cmd.lbn = lbn;
  req.cmd.sectors = sectors;
  req.cmd.rebuild = rebuild;
  submit_joined(disk_index, std::move(req), join);
}

void RaidArray::submit_disk_write(int disk_index, disk::Lbn lbn,
                                  std::int64_t sectors,
                                  const std::shared_ptr<Join>& join,
                                  bool rebuild) {
  block::BlockRequest req;
  req.cmd.kind = disk::CommandKind::kWrite;
  req.cmd.lbn = lbn;
  req.cmd.sectors = sectors;
  req.cmd.rebuild = rebuild;
  submit_joined(disk_index, std::move(req), join);
}

void RaidArray::degraded_read(const RaidLayout::DataLocation& loc,
                              std::int64_t sectors,
                              const std::shared_ptr<Join>& join) {
  ++stats_.degraded_reads;
  const std::int64_t offset = loc.lbn % layout_.chunk_sectors();
  for (const ChunkLocation& peer :
       layout_.reconstruction_set(loc.stripe, loc.disk)) {
    submit_disk_read(peer.disk, peer.lbn + offset, sectors, join);
  }
}

void RaidArray::read(std::int64_t array_lbn, std::int64_t sectors,
                     DoneFn done) {
  assert(array_lbn >= 0 && array_lbn + sectors <= layout_.array_sectors());
  ++stats_.reads;
  auto join = std::make_shared<Join>();
  join->submitted = sim_.now();
  const SimTime submitted = sim_.now();
  join->done = [done = std::move(done), submitted, this](SimTime) {
    if (done) done(sim_.now() - submitted);
  };
  // Pin the join against completing while we are still splitting.
  ++join->remaining;

  std::int64_t remaining = sectors;
  std::int64_t lbn = array_lbn;
  while (remaining > 0) {
    const RaidLayout::DataLocation loc = layout_.locate(lbn);
    const std::int64_t chunk_left =
        layout_.chunk_sectors() - loc.lbn % layout_.chunk_sectors();
    const std::int64_t take = std::min(remaining, chunk_left);
    // A member under rebuild serves the region already restored; only the
    // yet-unrebuilt stripes reconstruct from peers.
    const bool degraded = loc.disk == rebuilding_disk_
                              ? loc.stripe >= rebuild_frontier_
                              : is_failed(loc.disk);
    if (degraded) {
      degraded_read(loc, take, join);
    } else {
      submit_disk_read(loc.disk, loc.lbn, take, join);
    }
    lbn += take;
    remaining -= take;
  }
  // Drop the pin.
  if (--join->remaining == 0 && join->done) join->done(0);
}

void RaidArray::write(std::int64_t array_lbn, std::int64_t sectors,
                      DoneFn done) {
  assert(array_lbn >= 0 && array_lbn + sectors <= layout_.array_sectors());
  ++stats_.writes;
  auto join = std::make_shared<Join>();
  join->submitted = sim_.now();
  const SimTime submitted = sim_.now();
  join->done = [done = std::move(done), submitted, this](SimTime) {
    if (done) done(sim_.now() - submitted);
  };
  ++join->remaining;

  std::int64_t remaining = sectors;
  std::int64_t lbn = array_lbn;
  while (remaining > 0) {
    const RaidLayout::DataLocation loc = layout_.locate(lbn);
    const std::int64_t chunk_left =
        layout_.chunk_sectors() - loc.lbn % layout_.chunk_sectors();
    const std::int64_t take = std::min(remaining, chunk_left);
    const std::int64_t offset = loc.lbn % layout_.chunk_sectors();

    // Read-modify-write: read old data + old parity, write new data +
    // new parity. Failed members are skipped (their content is implied
    // by the survivors).
    if (!is_failed(loc.disk)) {
      submit_disk_read(loc.disk, loc.lbn, take, join);
      submit_disk_write(loc.disk, loc.lbn, take, join);
    }
    for (int j = 0; j < layout_.parity_disks(); ++j) {
      const ChunkLocation par = layout_.parity_chunk(loc.stripe, j);
      if (is_failed(par.disk)) continue;
      submit_disk_read(par.disk, par.lbn + offset, take, join);
      submit_disk_write(par.disk, par.lbn + offset, take, join);
    }
    lbn += take;
    remaining -= take;
  }
  if (--join->remaining == 0 && join->done) join->done(0);
}

void RaidArray::fail_disk(int index) {
  if (index < 0 || index >= layout_.total_disks()) {
    throw std::out_of_range("RaidArray::fail_disk: disk index " +
                            std::to_string(index) + " outside [0, " +
                            std::to_string(layout_.total_disks()) + ")");
  }
  if (is_failed(index)) {
    throw std::logic_error("RaidArray::fail_disk: disk " +
                           std::to_string(index) + " is already failed");
  }
  if (rebuilding_disk_ >= 0) {
    throw std::logic_error(
        "RaidArray::fail_disk: rebuild of disk " +
        std::to_string(rebuilding_disk_) +
        " is in flight; failing disk " + std::to_string(index) +
        " now would corrupt the rebuild bookkeeping (wait for completion)");
  }
  failed_[static_cast<std::size_t>(index)] = true;
  // The device itself dies: anything still in flight or submitted later
  // fails fast with kDiskFailed instead of silently succeeding.
  disk(index).fail_device();
  if (scrubbers_[static_cast<std::size_t>(index)]) {
    scrubbers_[static_cast<std::size_t>(index)]->stop();
  }
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.instant(obs::Track::kRaid, "raid", "disk-failed", sim_.now(),
                   {{"disk", index}});
  }
}

std::int64_t RaidArray::count_lost_sectors(std::int64_t stripe,
                                           int missing_disk) {
  // Per sector column of the stripe: erasures = 1 (the missing disk) plus
  // survivors whose copy of that column is a latent error. Recoverable
  // iff erasures <= parity count.
  std::int64_t lost = 0;
  const std::int64_t base = stripe * layout_.chunk_sectors();
  for (std::int64_t off = 0; off < layout_.chunk_sectors(); ++off) {
    int erasures = 1;
    for (int d = 0; d < layout_.total_disks(); ++d) {
      if (d == missing_disk) continue;
      // A concurrently-failed peer is a whole-column erasure, just like a
      // latent error on a healthy peer.
      if (is_failed(d) || disk(d).has_lse(base + off)) ++erasures;
    }
    if (erasures > layout_.parity_disks()) ++lost;
  }
  return lost;
}

void RaidArray::rebuild_stripe(
    int index, std::int64_t stripe, const RebuildConfig& config,
    std::shared_ptr<RebuildResult> result,
    std::function<void(const RebuildResult&)> done, SimTime started) {
  if (stripe >= layout_.stripes()) {
    // Rebuild complete: the member is healthy again.
    failed_[static_cast<std::size_t>(index)] = false;
    rebuilding_disk_ = -1;
    result->duration = sim_.now() - started;
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.span(obs::Track::kRaid, "raid", "rebuild", started, sim_.now(),
                  {{"disk", index},
                   {"stripes", result->stripes_rebuilt},
                   {"sectors_lost", result->sectors_lost}});
    }
    if (done) done(*result);
    return;
  }

  auto join = std::make_shared<Join>();
  join->submitted = sim_.now();
  join->done = [this, index, stripe, config, result, done,
                started](SimTime) {
    // Survivor reads done: account unrecoverable columns, then write the
    // reconstructed chunk to the replacement.
    const std::int64_t lost = count_lost_sectors(stripe, index);
    result->sectors_lost += lost;
    stats_.lost_sectors += lost;
    stats_.reconstructed_sectors += layout_.chunk_sectors() - lost;

    auto wjoin = std::make_shared<Join>();
    wjoin->submitted = sim_.now();
    wjoin->done = [this, index, stripe, config, result, done,
                   started](SimTime) {
      ++result->stripes_rebuilt;
      rebuild_frontier_ = stripe + 1;
      if (timeline_ != nullptr && timeline_->enabled()) {
        timeline_->set_gauge(
            timeline_->series(timeline_prefix_ + ".rebuild.fraction",
                              obs::Timeline::SeriesKind::kGauge),
            sim_.now(), rebuild_progress());
      }
      obs::Tracer& tracer = obs::Tracer::global();
      if (tracer.enabled()) {
        tracer.counter(obs::Track::kRaid, "raid.rebuild_progress", "percent",
                       sim_.now(), 100.0 * rebuild_progress());
      }
      const SimTime delay = config.inter_stripe_delay;
      sim_.after(delay, [this, index, stripe, config, result, done,
                         started] {
        rebuild_stripe(index, stripe + 1, config, result, done, started);
      });
    };
    ++wjoin->remaining;
    submit_disk_write(index, stripe * layout_.chunk_sectors(),
                      layout_.chunk_sectors(), wjoin, /*rebuild=*/true);
    if (--wjoin->remaining == 0) wjoin->done(0);
  };

  ++join->remaining;
  for (const ChunkLocation& peer : layout_.reconstruction_set(stripe, index)) {
    submit_disk_read(peer.disk, peer.lbn, layout_.chunk_sectors(), join,
                     /*rebuild=*/true);
  }
  if (--join->remaining == 0) join->done(0);
}

void RaidArray::rebuild(int index, const RebuildConfig& config,
                        std::function<void(const RebuildResult&)> done) {
  if (index < 0 || index >= layout_.total_disks()) {
    throw std::out_of_range("RaidArray::rebuild: disk index " +
                            std::to_string(index) + " outside [0, " +
                            std::to_string(layout_.total_disks()) + ")");
  }
  if (!is_failed(index)) {
    throw std::logic_error("RaidArray::rebuild: disk " +
                           std::to_string(index) +
                           " is not failed; nothing to rebuild");
  }
  if (rebuilding_disk_ >= 0) {
    throw std::logic_error(
        "RaidArray::rebuild: rebuild of disk " +
        std::to_string(rebuilding_disk_) +
        " is already in flight; a second rebuild would corrupt "
        "rebuilding_disk_/rebuild_frontier_ (wait for completion)");
  }
  rebuilding_disk_ = index;
  rebuild_frontier_ = 0;
  // The replacement is a fresh drive: the departed member's latent errors
  // left with its platters, and its electronics answer again.
  disk(index).replace_device();
  disk(index).clear_lses();
  auto result = std::make_shared<RebuildResult>();
  rebuild_stripe(index, 0, config, result, std::move(done), sim_.now());
}

double RaidArray::rebuild_progress() const {
  if (rebuilding_disk_ < 0) return 1.0;
  return static_cast<double>(rebuild_frontier_) /
         static_cast<double>(layout_.stripes());
}

void RaidArray::repair_sector(int disk_index, disk::Lbn lbn) {
  // Reconstruct one sector from its stripe peers, then rewrite it. The
  // write clears the latent error in the disk model.
  if (is_failed(disk_index) || disk(disk_index).device_failed()) {
    return;  // nothing to write the repair to
  }
  // Dedupe: host retries (and overlapping requests) re-detect the same bad
  // sector before the repair write lands; one repair is enough.
  if (!repairs_in_flight_.emplace(disk_index, lbn).second) return;
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.instant(obs::Track::kRaid, "raid", "scrub-repair", sim_.now(),
                   {{"disk", disk_index}, {"lbn", lbn}});
  }
  const std::int64_t stripe = lbn / layout_.chunk_sectors();
  const std::int64_t offset = lbn % layout_.chunk_sectors();

  // Loss check: can the peers actually reconstruct this sector?
  int erasures = 1;
  for (int d = 0; d < layout_.total_disks(); ++d) {
    if (d == disk_index || is_failed(d)) continue;
    if (disk(d).has_lse(stripe * layout_.chunk_sectors() + offset)) {
      ++erasures;
    }
  }
  for (int d = 0; d < layout_.total_disks(); ++d) {
    if (d != disk_index && is_failed(d)) ++erasures;
  }
  if (erasures > layout_.parity_disks()) {
    ++stats_.lost_sectors;
    repairs_in_flight_.erase({disk_index, lbn});
    return;
  }

  auto join = std::make_shared<Join>();
  join->submitted = sim_.now();
  join->done = [this, disk_index, lbn](SimTime) {
    auto wjoin = std::make_shared<Join>();
    wjoin->submitted = sim_.now();
    wjoin->done = [this, disk_index, lbn](SimTime) {
      ++stats_.reconstructed_sectors;
      repairs_in_flight_.erase({disk_index, lbn});
    };
    ++wjoin->remaining;
    submit_disk_write(disk_index, lbn, 1, wjoin, /*rebuild=*/true);
    if (--wjoin->remaining == 0) wjoin->done(0);
  };
  ++join->remaining;
  for (const ChunkLocation& peer :
       layout_.reconstruction_set(stripe, disk_index)) {
    submit_disk_read(peer.disk, peer.lbn + offset, 1, join,
                     /*rebuild=*/true);
  }
  if (--join->remaining == 0) join->done(0);
}

void RaidArray::start_scrubbing(SimTime wait_threshold,
                                std::int64_t request_bytes) {
  for (int i = 0; i < layout_.total_disks(); ++i) {
    if (is_failed(i)) continue;
    auto& slot = scrubbers_[static_cast<std::size_t>(i)];
    if (slot) slot->stop();
    slot = std::make_unique<core::WaitingScrubber>(
        sim_, block(i),
        core::make_sequential(disk(i).total_sectors(), request_bytes),
        wait_threshold);
    if (timeline_ != nullptr) {
      slot->set_timeline({timeline_, timeline_prefix_ + ".disk" +
                                         std::to_string(i) + ".scrub"});
    }
    slot->start();
  }
}

void RaidArray::stop_scrubbing() {
  for (auto& s : scrubbers_) {
    if (s) s->stop();
  }
}

void RaidArray::attach_timeline(obs::Timeline& timeline,
                                const std::string& prefix) {
  timeline_ = &timeline;
  timeline_prefix_ = prefix;
  for (int i = 0; i < layout_.total_disks(); ++i) {
    const std::string member = prefix + ".disk" + std::to_string(i);
    disk(i).set_timeline({&timeline, member});
    block(i).set_timeline({&timeline, member + ".block"});
    auto& slot = scrubbers_[static_cast<std::size_t>(i)];
    if (slot) slot->set_timeline({&timeline, member + ".scrub"});
  }
}

std::int64_t RaidArray::scrubbed_bytes() const {
  std::int64_t total = 0;
  for (const auto& s : scrubbers_) {
    if (s) total += s->stats().bytes;
  }
  return total;
}

}  // namespace pscrub::raid
