// RAID stripe layout: pure, deterministic address math.
//
// Left-symmetric rotating parity generalized to p parity chunks per
// stripe (p=1 -> RAID-5, p=2 -> RAID-6). The parity chunks of stripe s
// occupy disks (n-1 - (s mod n) - j) mod n for j in [0, p); data chunks
// fill the remaining disks in increasing disk order. Every chunk of
// stripe s lives at disk LBN s * chunk_sectors.
//
// The simulator carries no user data, so parity here is positional
// bookkeeping: the layout answers "which disks must be read to serve /
// reconstruct this range" -- exactly what the rebuild and scrub-repair
// paths need.
#pragma once

#include <cstdint>
#include <vector>

#include "disk/command.h"

namespace pscrub::raid {

struct RaidConfig {
  int data_disks = 4;    // k
  int parity_disks = 1;  // p: 1 = RAID-5, 2 = RAID-6
  std::int64_t chunk_sectors = 128;  // 64 KB chunks
};

struct ChunkLocation {
  int disk = 0;
  disk::Lbn lbn = 0;  // start of the chunk on that disk

  bool operator==(const ChunkLocation&) const = default;
};

class RaidLayout {
 public:
  RaidLayout(const RaidConfig& config, std::int64_t disk_sectors);

  int total_disks() const { return n_; }
  int data_disks() const { return k_; }
  int parity_disks() const { return p_; }
  std::int64_t chunk_sectors() const { return chunk_; }
  std::int64_t stripes() const { return stripes_; }

  /// Usable (data) capacity of the array, in sectors.
  std::int64_t array_sectors() const { return stripes_ * k_ * chunk_; }

  std::int64_t stripe_of_array_lbn(std::int64_t array_lbn) const {
    return array_lbn / (k_ * chunk_);
  }

  /// Physical location of an array data sector.
  struct DataLocation {
    int disk;
    disk::Lbn lbn;          // exact sector on the disk
    std::int64_t stripe;
  };
  DataLocation locate(std::int64_t array_lbn) const;

  /// Disks holding parity for a stripe, in rotation order.
  std::vector<int> parity_disks_of(std::int64_t stripe) const;

  /// Disks holding data for a stripe, in data-chunk order.
  std::vector<int> data_disks_of(std::int64_t stripe) const;

  /// Chunk location (disk, lbn) of data chunk `index` of a stripe.
  ChunkLocation data_chunk(std::int64_t stripe, int index) const;
  ChunkLocation parity_chunk(std::int64_t stripe, int index) const;

  /// True if (disk, lbn) holds parity (vs data) in its stripe.
  bool is_parity(int disk, disk::Lbn lbn) const;

  /// Inverse map: array LBN stored at (disk, lbn), or -1 for parity.
  std::int64_t array_lbn_at(int disk, disk::Lbn lbn) const;

  /// Minimum set of chunk reads needed to reconstruct the chunk at
  /// `loc` when its disk is unavailable: all other chunks of the stripe
  /// minus (p - 1) spare parity chunks.
  std::vector<ChunkLocation> reconstruction_set(std::int64_t stripe,
                                                int missing_disk) const;

 private:
  int k_;
  int p_;
  int n_;
  std::int64_t chunk_;
  std::int64_t stripes_;
};

}  // namespace pscrub::raid
