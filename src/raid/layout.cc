#include "raid/layout.h"

#include <cassert>
#include <stdexcept>
#include <string>

namespace pscrub::raid {

RaidLayout::RaidLayout(const RaidConfig& config, std::int64_t disk_sectors)
    : k_(config.data_disks),
      p_(config.parity_disks),
      n_(config.data_disks + config.parity_disks),
      chunk_(config.chunk_sectors),
      stripes_(disk_sectors / config.chunk_sectors) {
  if (k_ < 2) {
    throw std::invalid_argument("RaidLayout: need at least two data disks, got " +
                                std::to_string(k_));
  }
  if (p_ < 1 || p_ > 2) {
    throw std::invalid_argument(
        "RaidLayout: parity_disks must be 1 (RAID-5) or 2 (RAID-6), got " +
        std::to_string(p_));
  }
  if (chunk_ <= 0) {
    throw std::invalid_argument("RaidLayout: chunk_sectors must be > 0, got " +
                                std::to_string(chunk_));
  }
  if (stripes_ <= 0) {
    throw std::invalid_argument(
        "RaidLayout: disk capacity (" + std::to_string(disk_sectors) +
        " sectors) is smaller than one chunk (" + std::to_string(chunk_) +
        " sectors); the array has no complete stripe");
  }
}

std::vector<int> RaidLayout::parity_disks_of(std::int64_t stripe) const {
  std::vector<int> out;
  out.reserve(p_);
  const int base = static_cast<int>((n_ - 1) - (stripe % n_));
  for (int j = 0; j < p_; ++j) {
    out.push_back(((base - j) % n_ + n_) % n_);
  }
  return out;
}

std::vector<int> RaidLayout::data_disks_of(std::int64_t stripe) const {
  const std::vector<int> parity = parity_disks_of(stripe);
  std::vector<int> out;
  out.reserve(k_);
  for (int d = 0; d < n_; ++d) {
    bool is_par = false;
    for (int pd : parity) is_par |= pd == d;
    if (!is_par) out.push_back(d);
  }
  return out;
}

RaidLayout::DataLocation RaidLayout::locate(std::int64_t array_lbn) const {
  assert(array_lbn >= 0 && array_lbn < array_sectors());
  const std::int64_t stripe = array_lbn / (k_ * chunk_);
  const std::int64_t within = array_lbn % (k_ * chunk_);
  const int chunk_index = static_cast<int>(within / chunk_);
  const std::int64_t offset = within % chunk_;
  const std::vector<int> data = data_disks_of(stripe);
  DataLocation loc;
  loc.disk = data[static_cast<std::size_t>(chunk_index)];
  loc.lbn = stripe * chunk_ + offset;
  loc.stripe = stripe;
  return loc;
}

ChunkLocation RaidLayout::data_chunk(std::int64_t stripe, int index) const {
  assert(index >= 0 && index < k_);
  const std::vector<int> data = data_disks_of(stripe);
  return {data[static_cast<std::size_t>(index)], stripe * chunk_};
}

ChunkLocation RaidLayout::parity_chunk(std::int64_t stripe, int index) const {
  assert(index >= 0 && index < p_);
  const std::vector<int> parity = parity_disks_of(stripe);
  return {parity[static_cast<std::size_t>(index)], stripe * chunk_};
}

bool RaidLayout::is_parity(int disk, disk::Lbn lbn) const {
  const std::int64_t stripe = lbn / chunk_;
  for (int pd : parity_disks_of(stripe)) {
    if (pd == disk) return true;
  }
  return false;
}

std::int64_t RaidLayout::array_lbn_at(int disk, disk::Lbn lbn) const {
  const std::int64_t stripe = lbn / chunk_;
  if (stripe >= stripes_) return -1;
  if (is_parity(disk, lbn)) return -1;
  const std::vector<int> data = data_disks_of(stripe);
  int chunk_index = -1;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == disk) {
      chunk_index = static_cast<int>(i);
      break;
    }
  }
  assert(chunk_index >= 0);
  const std::int64_t offset = lbn % chunk_;
  return stripe * k_ * chunk_ + chunk_index * chunk_ + offset;
}

std::vector<ChunkLocation> RaidLayout::reconstruction_set(
    std::int64_t stripe, int missing_disk) const {
  // To rebuild one missing chunk we need k independent chunks of the
  // stripe: prefer the surviving data chunks, topped up with parity.
  std::vector<ChunkLocation> out;
  out.reserve(static_cast<std::size_t>(k_));
  for (int d : data_disks_of(stripe)) {
    if (d == missing_disk) continue;
    out.push_back({d, stripe * chunk_});
  }
  for (int d : parity_disks_of(stripe)) {
    if (d == missing_disk) continue;
    if (out.size() == static_cast<std::size_t>(k_)) break;
    out.push_back({d, stripe * chunk_});
  }
  assert(out.size() == static_cast<std::size_t>(k_));
  return out;
}

}  // namespace pscrub::raid
