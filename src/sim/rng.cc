#include "sim/rng.h"

#include <cmath>

namespace pscrub {

namespace {
// SplitMix64 finalizer; decorrelates sequential seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng Rng::fork() { return Rng(mix(engine_())); }

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::pareto(double scale, double alpha) {
  // Inverse-CDF sampling; guard the u=0 corner which would yield infinity.
  double u = uniform();
  if (u <= 1e-18) u = 1e-18;
  return scale / std::pow(u, 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

}  // namespace pscrub
