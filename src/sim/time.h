// Simulation time: signed 64-bit nanoseconds since simulation start.
//
// All subsystems (disk model, block layer, trace records, policies) share
// this single representation so durations and instants can be mixed freely
// without unit conversions sprinkled through the code.
#pragma once

#include <cstdint>
#include <string>

namespace pscrub {

/// Instant or duration, in nanoseconds. Negative values are only meaningful
/// for differences (e.g. "slack" computations); absolute event times are
/// always >= 0.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kDay = 24 * kHour;
inline constexpr SimTime kWeek = 7 * kDay;

/// Converts a floating-point quantity of seconds to SimTime, rounding to the
/// nearest nanosecond. Convenient when deriving times from rates.
constexpr SimTime from_seconds(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond) + 0.5);
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Human-readable rendering ("1.234 ms", "2.5 s") used by benches and logs.
std::string format_duration(SimTime t);

}  // namespace pscrub
