// Deterministic random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (or a seed), so that any
// experiment is reproducible bit-for-bit from its seed. The generator is
// splittable: child streams derived via `fork()` are independent, letting a
// workload generator and a disk model share one root seed without coupling
// their draw sequences.
#pragma once

#include <cstdint>
#include <random>

namespace pscrub {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child stream. The child's seed is a hash of this
  /// stream's next output, so repeated forks yield distinct streams.
  Rng fork();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (not rate). mean > 0.
  double exponential(double mean);

  /// Lognormal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Pareto (Type I): support [scale, inf), tail index alpha > 0.
  /// CoV is finite only for alpha > 2; we deliberately use 1 < alpha <= 2
  /// when we want heavy-tailed idle periods with huge empirical CoV.
  double pareto(double scale, double alpha);

  /// Standard normal draw.
  double normal(double mean, double stddev);

  /// Bernoulli with success probability p.
  bool bernoulli(double p);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pscrub
