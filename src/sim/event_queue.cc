#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace pscrub {

EventId EventQueue::schedule(SimTime at, EventFn fn) {
  EventId id = fns_.size();
  fns_.push_back(std::move(fn));
  heap_.push(Entry{at, id});
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= fns_.size() || !fns_[id]) return false;
  fns_[id] = nullptr;
  cancelled_.insert(id);
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_head();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  Entry e = heap_.top();
  heap_.pop();
  Fired fired{e.time, std::move(fns_[e.id])};
  fns_[e.id] = nullptr;
  return fired;
}

}  // namespace pscrub
