// Cold paths of the event core; the schedule/fire hot loop is inline in
// event_queue.h.
#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <new>
#include <stdexcept>
#include <utility>

namespace pscrub {

EventQueue::~EventQueue() {
  // Every node whose slot is free, zombie, or mid-fire holds no callable
  // (fn is reset on each of those transitions), so when no events are live
  // and no persistent events are registered, every constructed node's
  // destructor is a no-op and the slabs can be released directly.
  if (live_ != 0 || persistent_slots_ != 0) {
    for (std::size_t s = 0; s < slot_count_; ++s) {
      node(static_cast<std::uint32_t>(s)).~Node();
    }
  }
  for (Node* chunk : chunks_) {
    ::operator delete(chunk, std::align_val_t{alignof(Node)});
  }
}

EventQueue::Node* EventQueue::resolve(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || slot >= slot_count_) return nullptr;
  Node& n = node(slot);
  return n.gen == gen ? &n : nullptr;
}

const EventQueue::Node* EventQueue::resolve(EventId id) const {
  return const_cast<EventQueue*>(this)->resolve(id);
}

std::uint32_t EventQueue::grow_slot() {
  if (slot_count_ >= (std::size_t{1} << kSlotBits)) {
    throw std::length_error("EventQueue: too many concurrent events");
  }
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(static_cast<Node*>(::operator new(
        kChunkSize * sizeof(Node), std::align_val_t{alignof(Node)})));
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slot_count_++);
  ::new (static_cast<void*>(&node(slot))) Node;
  return slot;
}

void EventQueue::seq_overflow() const {
  throw std::length_error("EventQueue: event sequence space exhausted");
}

void EventQueue::slide_run() {
  run_.erase(run_.begin(), run_.begin() + static_cast<std::ptrdiff_t>(run_pos_));
  run_pos_ = 0;
}

void EventQueue::flush() {
  assert(run_pos_ < run_.size() || !buf_.empty());
  std::sort(buf_.begin(), buf_.end());
  const std::size_t k = buf_.size();
  if (run_pos_ == run_.size()) {
    // Run exhausted: the sorted buffer becomes the run (buffer storage is
    // recycled as the next buffer).
    run_.swap(buf_);
    run_pos_ = 0;
  } else if (run_pos_ >= k) {
    // Merge into the consumed space at the run's front. The write cursor
    // starts k slots behind the read cursor and the distance shrinks by
    // one per buffer element consumed, so it never catches up; when the
    // buffer is exhausted the cursors meet and the run's tail is already
    // in place.
    std::size_t out = run_pos_ - k;
    std::size_t i = run_pos_;
    std::size_t j = 0;
    const std::size_t n = run_.size();
    while (j < k) {
      if (i < n && run_[i] < buf_[j]) {
        run_[out++] = run_[i++];
      } else {
        run_[out++] = buf_[j++];
      }
    }
    run_pos_ -= k;
  } else {
    scratch_.clear();
    scratch_.reserve((run_.size() - run_pos_) + k);
    std::merge(run_.begin() + static_cast<std::ptrdiff_t>(run_pos_),
               run_.end(), buf_.begin(), buf_.end(),
               std::back_inserter(scratch_));
    run_.swap(scratch_);
    run_pos_ = 0;
  }
  buf_.clear();
  buf_min_ = kEntryMax;
}

void EventQueue::prune_stale_heads() {
  for (;;) {
    const Entry e = head_entry();
    Node& n = node(entry_slot(e));
    if (n.state == kArmed && n.armed_seq == entry_seq(e)) return;
    ++run_pos_;
    --stale_;
    --n.entries;
    if (n.state == kZombie && n.entries == 0) free_slot(entry_slot(e), n);
    if (stale_ == 0) return;
  }
}

bool EventQueue::cancel(EventId id) {
  Node* n = resolve(id);
  if (n == nullptr || n->state != kArmed) return false;
  --live_;
  ++stale_;
  if (n->persistent) {
    n->state = kParked;
  } else {
    n->fn.reset();
    n->state = kZombie;
    n->entries = 1;  // the now-stale pending entry, swept lazily
  }
  maybe_compact();
  return true;
}

EventId EventQueue::add_persistent(EventFn&& fn) {
  const std::uint32_t slot = alloc_slot();
  Node& n = node(slot);
  n.fn = std::move(fn);
  n.persistent = true;
  n.state = kParked;
  ++persistent_slots_;
  return make_id(n.gen, slot);
}

bool EventQueue::arm(EventId id, SimTime at) {
  Node* n = resolve(id);
  if (n == nullptr || !n->persistent) return false;
  if (n->state == kArmed) {
    ++stale_;  // the previous arm's entry is superseded
  } else if (n->state == kParked) {
    n->state = kArmed;
    ++live_;
  } else {
    return false;
  }
  const std::uint64_t seq = next_seq();
  n->armed_seq = seq;
  push_entry(pack_entry(at, seq, static_cast<std::uint32_t>(id)));
  ++n->entries;
  maybe_compact();
  return true;
}

bool EventQueue::armed(EventId id) const {
  const Node* n = resolve(id);
  return n != nullptr && n->state == kArmed;
}

bool EventQueue::remove(EventId id) {
  Node* n = resolve(id);
  if (n == nullptr || !n->persistent ||
      (n->state != kArmed && n->state != kParked)) {
    return false;
  }
  if (n->state == kArmed) {
    --live_;
    ++stale_;
  }
  n->fn.reset();
  --persistent_slots_;
  if (n->entries == 0) {
    free_slot(static_cast<std::uint32_t>(id), *n);
  } else {
    n->state = kZombie;  // freed when the last stale entry is swept
  }
  maybe_compact();
  return true;
}

SimTime EventQueue::next_time() {
  if (stale_ != 0) prune_stale_heads();
  return entry_time(head_entry());
}

EventQueue::Fired EventQueue::pop() {
  if (stale_ != 0) prune_stale_heads();
  const Entry e = head_entry();
  ++run_pos_;
  Node& n = node(entry_slot(e));
  assert(!n.persistent && "pop() only supports one-shot events");
  --live_;
  Fired fired{entry_time(e), std::move(n.fn)};
  n.fn.reset();
  free_slot(entry_slot(e), n);
  return fired;
}

void EventQueue::compact() {
  scratch_.clear();
  const auto keep = [&](Entry e) {
    Node& n = node(entry_slot(e));
    if (n.state == kArmed && n.armed_seq == entry_seq(e)) return true;
    --n.entries;
    if (n.state == kZombie && n.entries == 0) free_slot(entry_slot(e), n);
    return false;
  };
  for (std::size_t i = run_pos_; i < run_.size(); ++i) {
    if (keep(run_[i])) scratch_.push_back(run_[i]);
  }
  for (const Entry e : buf_) {
    if (keep(e)) scratch_.push_back(e);
  }
  std::sort(scratch_.begin(), scratch_.end());
  run_.swap(scratch_);
  run_pos_ = 0;
  buf_.clear();
  buf_min_ = kEntryMax;
  stale_ = 0;
}

}  // namespace pscrub
