// The discrete-event simulation driver.
//
// A Simulator owns the clock and the event queue. Components hold a
// Simulator& and schedule callbacks; the main loop pops events in time
// order and advances the clock. Time never goes backwards: scheduling in
// the past is clamped to `now()` (this arises naturally when a zero-latency
// response is modelled).
#pragma once

#include <utility>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace pscrub {

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()). The
  /// callable is forwarded into the event queue and constructed directly
  /// in its event slot.
  template <typename F>
  EventId at(SimTime when, F&& fn) {
    return queue_.schedule(when > now_ ? when : now_, std::forward<F>(fn));
  }

  /// Schedules `fn` after a relative delay (clamped to >= 0).
  template <typename F>
  EventId after(SimTime delay, F&& fn) {
    return at(now_ + (delay > 0 ? delay : 0), std::forward<F>(fn));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Registers a persistent event: the callback is stored once and fires
  /// every time the event is armed and comes due. The allocation-free
  /// alternative to scheduling a fresh callback per occurrence; see
  /// EventQueue::add_persistent.
  EventId add_persistent(EventFn&& fn) {
    return queue_.add_persistent(std::move(fn));
  }

  /// Arms (or re-arms) a persistent event at absolute time `when`
  /// (clamped to now()).
  bool arm(EventId id, SimTime when);

  /// Arms (or re-arms) a persistent event after a relative delay
  /// (clamped to >= 0).
  bool arm_after(EventId id, SimTime delay);

  bool armed(EventId id) const { return queue_.armed(id); }

  /// Destroys a persistent event.
  bool remove(EventId id) { return queue_.remove(id); }

  /// Runs until the queue drains or the clock passes `until`
  /// (events at exactly `until` still fire). Returns the number of events
  /// fired.
  std::size_t run_until(SimTime until);

  /// Runs until the queue drains.
  std::size_t run();

  /// Fires at most one event. Returns false if the queue is empty or the
  /// next event is later than `until`. Fused fire: the queue advances
  /// now_ to the event's time, then invokes the callback in place (no
  /// callable move, no slot round-trip).
  bool step(SimTime until) { return queue_.fire_next(until, &now_); }

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
};

}  // namespace pscrub
