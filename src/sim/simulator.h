// The discrete-event simulation driver.
//
// A Simulator owns the clock and the event queue. Components hold a
// Simulator& and schedule callbacks; the main loop pops events in time
// order and advances the clock. Time never goes backwards: scheduling in
// the past is clamped to `now()` (this arises naturally when a zero-latency
// response is modelled).
#pragma once

#include "sim/event_queue.h"
#include "sim/time.h"

namespace pscrub {

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  EventId at(SimTime when, EventFn fn);

  /// Schedules `fn` after a relative delay (clamped to >= 0).
  EventId after(SimTime delay, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or the clock passes `until`
  /// (events at exactly `until` still fire). Returns the number of events
  /// fired.
  std::size_t run_until(SimTime until);

  /// Runs until the queue drains.
  std::size_t run();

  /// Fires at most one event. Returns false if the queue is empty or the
  /// next event is later than `until`.
  bool step(SimTime until);

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
};

}  // namespace pscrub
