#include "sim/simulator.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

namespace pscrub {

bool Simulator::arm(EventId id, SimTime when) {
  return queue_.arm(id, std::max(when, now_));
}

bool Simulator::arm_after(EventId id, SimTime delay) {
  return arm(id, now_ + std::max<SimTime>(delay, 0));
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t fired = 0;
  while (step(until)) ++fired;
  // Even if no event sits exactly at `until`, the caller observed the system
  // up to that point; advance the clock so subsequent scheduling is relative
  // to the end of the observation window.
  now_ = std::max(now_, until);
  return fired;
}

std::size_t Simulator::run() {
  // Unlike run_until, the clock stays at the last fired event: "drain the
  // queue" has no natural observation boundary to advance to.
  std::size_t fired = 0;
  while (step(std::numeric_limits<SimTime>::max())) ++fired;
  return fired;
}

std::string format_duration(SimTime t) {
  char buf[64];
  double abs = static_cast<double>(t < 0 ? -t : t);
  const char* sign = t < 0 ? "-" : "";
  if (abs >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3f s", sign, abs / kSecond);
  } else if (abs >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3f ms", sign, abs / kMillisecond);
  } else if (abs >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3f us", sign, abs / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lld ns", sign,
                  static_cast<long long>(t));
  }
  return buf;
}

}  // namespace pscrub
