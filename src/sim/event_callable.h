// Move-only callable with a 32-byte small-buffer optimization, used as the
// event-queue callback type.
//
// The simulator's hot loop constructs, moves, invokes, and destroys one
// callable per event, so the callable must not heap-allocate for the
// captures that actually occur in this codebase: `[this]`, `[this, value]`,
// and whole `std::function<void()>` objects forwarded from public APIs
// (exactly 32 bytes on libstdc++). A capture that exceeds the inline buffer
// still works -- it falls back to a single heap allocation, like
// std::function -- it is just no longer free.
//
// Unlike std::function, EventCallable is move-only (events fire once; their
// captures never need to be copyable) and has no empty-call check in
// operator() -- invoking an empty callable is a programming error caught by
// assert, not an exception.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pscrub {

class EventCallable {
 public:
  static constexpr std::size_t kInlineBytes = 32;

  EventCallable() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallable> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventCallable(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and constructs `f` directly in
  /// the buffer -- the zero-move path for storing a callable in an event
  /// slot.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallable> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &heap_ops<D>;
    }
  }

  EventCallable(EventCallable&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      relocate_from(o);
      o.ops_ = nullptr;
    }
  }

  EventCallable& operator=(EventCallable&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_ != nullptr) {
        ops_ = o.ops_;
        relocate_from(o);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallable(const EventCallable&) = delete;
  EventCallable& operator=(const EventCallable&) = delete;

  ~EventCallable() { reset(); }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into dst from src, then destroys src; null means
    // "memcpy the buffer" (trivially copyable inline payloads and the heap
    // fallback's raw pointer -- i.e. every common capture). noexcept by
    // construction: inline storage requires a nothrow-movable type.
    void (*relocate)(void* dst, void* src);
    // Null means trivially destructible (or heap-free) -- skip the call.
    void (*destroy)(void*);
  };

  void relocate_from(EventCallable& o) noexcept {
    if (ops_->relocate == nullptr) {
      std::memcpy(buf_, o.buf_, kInlineBytes);
    } else {
      ops_->relocate(buf_, o.buf_);
    }
  }

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* inline_obj(void* buf) {
    return std::launder(reinterpret_cast<D*>(buf));
  }

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* buf) { (*inline_obj<D>(buf))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) {
              D* from = inline_obj<D>(src);
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* buf) { inline_obj<D>(buf)->~D(); },
  };

  template <typename D>
  static D*& heap_obj(void* buf) {
    return *std::launder(reinterpret_cast<D**>(buf));
  }

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* buf) { (*heap_obj<D>(buf))(); },
      nullptr,  // relocating an owning raw pointer is a byte copy
      [](void* buf) { delete heap_obj<D>(buf); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace pscrub
