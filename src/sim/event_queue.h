// Min-heap of timestamped events with stable FIFO ordering for ties.
//
// Events are arbitrary callbacks. Cancellation is supported through event
// ids: a cancelled event stays in the heap but is skipped on pop, which
// keeps cancellation O(1) and pop amortized O(log n).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace pscrub {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `at`. Returns a handle usable
  /// with cancel(). Events at equal times fire in scheduling order.
  EventId schedule(SimTime at, EventFn fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (returns false).
  bool cancel(EventId id);

  bool empty() const;
  std::size_t size() const { return heap_.size() - cancelled_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  SimTime next_time() const;

  /// Pops and returns the earliest pending event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Heap is a max-heap by default; invert.
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::vector<EventFn> fns_;  // indexed by EventId
};

}  // namespace pscrub
