// The simulator's event core: slab-allocated callback nodes ordered by a
// sorted-run + insertion-buffer structure ("burst sort") with stable FIFO
// ordering for ties.
//
// Design (see DESIGN.md section 10 for the full contract):
//
//  * Callbacks live in slot *nodes* inside chunked slabs whose addresses
//    never move, so events fire in place with zero per-event allocation and
//    freed slots are recycled through a free list. Nodes are constructed
//    lazily, one placement-new per slot the first time it is handed out, so
//    constructing an EventQueue touches no slab memory at all.
//  * Ordering entries are 16-byte integers: an unsigned 128-bit key packing
//    (time with the sign bit flipped, seq, slot), so "earlier fires first,
//    ties fire in schedule order" is a single integer compare. `seq` is a
//    global monotonic counter, exactly the tie-break the previous
//    implementation's monotonically increasing EventId provided.
//  * Instead of a binary heap -- whose pop cost on this workload was
//    measured at ~2x the total per-event budget -- entries are kept in a
//    sorted run (`run_`, consumed from the front via `run_pos_`) plus a
//    small unsorted insertion buffer (`buf_`, with its running minimum
//    `buf_min_`). Scheduling appends to the buffer (or directly to the back
//    of the run when the new entry is >= the run's last entry -- the common
//    case for timers re-armed beyond the pending window). Firing consumes
//    the run head; only when the buffer holds an earlier entry (or the run
//    is exhausted) is the buffer sorted and merged in, so sorting cost is
//    batched: O(log k) amortized compares per event instead of a
//    pointer-chasing sift per operation. Equal-key ties are impossible
//    (seqs are unique), so the fire order is bit-identical to the heap's.
//  * cancel() is O(1): it marks the node dead and leaves a *stale* entry
//    behind, which is dropped lazily at the head or swept out by a
//    compaction pass once stale entries outnumber live ones -- so memory
//    stays proportional to the live event count even under unbounded
//    cancel/reschedule churn.
//  * size() is an exact O(1) counter of live events (the historical
//    `heap - cancelled` unsigned arithmetic and its underflow are gone).
//
// Besides one-shot events there are *persistent* events: a callback is
// registered once (add_persistent) and then re-armed at a new time per
// firing (arm). This is the allocation-free fast path for the dominant
// simulation pattern -- a component whose completion handler re-arms
// itself for the next command -- and for retry/timeout timers that are
// armed and disarmed thousands of times. Re-arming constructs no callable
// and allocates nothing; it pushes one 16-byte entry.
//
// The schedule/fire path is defined inline below the class: the simulator
// fires tens of millions of events per second, and keeping the hot loop in
// one translation unit is worth measurable single-digit nanoseconds per
// event. Cold paths (cancel, arm, flush/merge, compaction, persistent-event
// management) live in event_queue.cc.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_callable.h"
#include "sim/time.h"

namespace pscrub {

/// Handle to a scheduled or persistent event: packs the slot index and a
/// generation counter so handles to recycled slots are detected as stale.
/// 0 is never a valid id.
using EventId = std::uint64_t;

using EventFn = EventCallable;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  /// Schedules `fn` to fire once at absolute time `at`. Returns a handle
  /// usable with cancel(). Events at equal times fire in scheduling order.
  /// The callable is constructed directly in its event slot (no
  /// intermediate EventFn move).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule(SimTime at, F&& fn) {
    const std::uint32_t slot = alloc_slot();
    Node& n = node(slot);
    n.fn.emplace(std::forward<F>(fn));
    return arm_new(at, slot, n);
  }

  /// Overload for callers that already hold an EventFn (rvalue sink: one
  /// move into the slot).
  EventId schedule(SimTime at, EventFn&& fn) {
    const std::uint32_t slot = alloc_slot();
    Node& n = node(slot);
    n.fn = std::move(fn);
    return arm_new(at, slot, n);
  }

  /// Cancels a pending event: a one-shot event is destroyed, a persistent
  /// event is disarmed (it stays registered and can be re-armed).
  /// Cancelling an already-fired, disarmed, or unknown id is a harmless
  /// no-op (returns false).
  bool cancel(EventId id);

  /// Registers `fn` as a persistent event, initially disarmed. The
  /// callback is constructed once and fires every time the event is armed
  /// and comes due; firing disarms it, and the callback may re-arm it
  /// (including from inside its own invocation).
  EventId add_persistent(EventFn&& fn);

  /// Arms (or re-arms, replacing any pending arm) a persistent event to
  /// fire at absolute time `at`. Allocation-free. Returns false for ids
  /// that are not live persistent events.
  bool arm(EventId id, SimTime at);

  /// True if the persistent event `id` is currently armed.
  bool armed(EventId id) const;

  /// Destroys a persistent event (armed or not). Returns false for ids
  /// that are not live persistent events.
  bool remove(EventId id);

  bool empty() const { return live_ == 0; }

  /// Exact number of pending (armed) events, O(1).
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Precondition: !empty().
  SimTime next_time();

  /// Pops and returns the earliest pending event without invoking it.
  /// Precondition: !empty(), and the head event is one-shot. The in-place
  /// fire_next() path is faster; this exists for callers that need to own
  /// the callback (tests, queue inspection).
  struct Fired {
    SimTime time;
    EventFn fn;
  };
  Fired pop();

  /// Fused step: if a pending event is due at or before `until`, stores
  /// its time in *fired_time, fires it in place, and returns true.
  /// One-shot events are destroyed after firing; persistent events are
  /// disarmed *before* the callback runs so it can re-arm itself.
  bool fire_next(SimTime until, SimTime* fired_time);

  /// Ordering entries currently held, live or stale (test/debug hook: the
  /// compaction policy bounds this at O(live + constant)).
  std::size_t heap_entries() const {
    return (run_.size() - run_pos_) + buf_.size();
  }

  /// Node slots currently allocated, in use or on the free list
  /// (test/debug hook: bounded by the high-water mark of concurrently
  /// registered events).
  std::size_t allocated_slots() const { return slot_count_; }

 private:
  enum State : std::uint8_t {
    kFree = 0,        // slot on the free list
    kArmed,           // pending: will fire at armed_seq's entry
    kParked,          // persistent, registered but not armed
    kFiringOneShot,   // one-shot mid-invocation (cancel() returns false)
    kZombie,          // dead, awaiting release of its last stale entry
  };

  static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  // Ordering entries pack (time, seq, slot) into one 128-bit integer:
  // biased time in the high 64 bits (sign bit flipped, so two's-complement
  // order matches unsigned order), then seq, then slot in the low 24 bits.
  // Comparing entries is one integer compare, and seqs are unique so the
  // order is total. Limits -- 2^24 concurrently allocated slots, 2^40
  // total arms -- are enforced at allocation/arm time (std::length_error),
  // far beyond any simulation this codebase runs.
  using Entry = unsigned __int128;
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << (64 - kSlotBits);
  static constexpr std::uint64_t kTimeBias = std::uint64_t{1} << 63;

  static Entry pack_entry(SimTime at, std::uint64_t seq, std::uint32_t slot) {
    return (static_cast<Entry>(static_cast<std::uint64_t>(at) ^ kTimeBias)
            << 64) |
           ((seq << kSlotBits) | slot);
  }
  static SimTime entry_time(Entry e) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(e >> 64) ^
                                kTimeBias);
  }
  static std::uint64_t entry_seq(Entry e) {
    return static_cast<std::uint64_t>(e) >> kSlotBits;
  }
  static std::uint32_t entry_slot(Entry e) {
    return static_cast<std::uint32_t>(e) & ((1u << kSlotBits) - 1);
  }

  // Nodes are cache-line sized and aligned so one event touches one line.
  struct alignas(64) Node {
    EventFn fn;
    std::uint64_t armed_seq = kNoSeq;  // seq of the live entry, if armed
    std::uint32_t gen = 1;             // bumped on free; id-staleness check
    std::uint16_t entries = 0;         // ordering entries referencing this
                                       // slot (one-shot live entries are
                                       // implicit: counted only on cancel)
    State state = kFree;
    bool persistent = false;
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  Node& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const Node& node(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  /// Resolves an EventId to its node iff the generation still matches
  /// (i.e. the slot was not freed and recycled since). Null otherwise.
  Node* resolve(EventId id);
  const Node* resolve(EventId id) const;

  std::uint32_t alloc_slot();
  std::uint32_t grow_slot();  // slow path: extend the slab
  void free_slot(std::uint32_t slot, Node& n);
  EventId arm_new(SimTime at, std::uint32_t slot, Node& n);

  std::uint64_t next_seq();
  [[noreturn]] void seq_overflow() const;

  void push_entry(Entry e);
  Entry head_entry();

  /// Sorts the insertion buffer and merges it into the run (reusing the
  /// consumed space at the run's front when possible), leaving the
  /// earliest pending entry at run_[run_pos_]. Precondition: at least one
  /// entry is pending in run_ or buf_.
  void flush();
  /// Reclaims the consumed front of the run (amortized against the fires
  /// that produced it).
  void slide_run();

  /// Drops stale entries off the head until a live one surfaces.
  void prune_stale_heads();

  /// Sweeps all stale entries and re-sorts once they outnumber live
  /// ones (amortized O(1) per cancel; bounds entry memory).
  void maybe_compact() {
    if (stale_ > live_ + kCompactSlack) compact();
  }
  void compact();

  static constexpr std::size_t kCompactSlack = 64;
  static constexpr std::size_t kRunGarbageSlack = 4096;
  static constexpr Entry kEntryMax = ~Entry{0};

  std::vector<Node*> chunks_;  // raw 64-byte-aligned slabs; nodes are
                               // placement-constructed on first allocation
  std::vector<std::uint32_t> free_;
  std::vector<Entry> run_;      // sorted ascending; [0, run_pos_) consumed
  std::vector<Entry> buf_;      // unsorted recent schedules
  std::vector<Entry> scratch_;  // merge/compaction spare (capacity reuse)
  std::size_t run_pos_ = 0;
  Entry buf_min_ = kEntryMax;
  std::size_t slot_count_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;   // armed events
  std::size_t stale_ = 0;  // entries whose node is no longer armed at that
                           // seq (cancelled, re-armed, or removed)
  std::size_t persistent_slots_ = 0;  // registered persistent events; with
                                      // live_, decides whether ~EventQueue
                                      // must destroy any stored callables
};

// ---- hot path, inline ----------------------------------------------------

inline std::uint32_t EventQueue::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  return grow_slot();
}

inline void EventQueue::free_slot(std::uint32_t slot, Node& n) {
  n.state = kFree;
  if (++n.gen == 0) n.gen = 1;  // keep 0 an always-invalid id
  free_.push_back(slot);
}

inline std::uint64_t EventQueue::next_seq() {
  if (next_seq_ >= kMaxSeq) seq_overflow();  // [[noreturn]]
  return next_seq_++;
}

inline void EventQueue::push_entry(Entry e) {
  if (!run_.empty() && e >= run_.back()) {
    // Later than everything pending: extend the sorted run directly (the
    // common case for timers re-armed beyond the pending window).
    if (run_pos_ >= kRunGarbageSlack && run_pos_ >= run_.size() - run_pos_) {
      slide_run();
    }
    run_.push_back(e);
  } else {
    buf_.push_back(e);
    if (e < buf_min_) buf_min_ = e;
  }
}

inline EventQueue::Entry EventQueue::head_entry() {
  if (run_pos_ == run_.size() ||
      (!buf_.empty() && buf_min_ < run_[run_pos_])) {
    flush();
  }
  return run_[run_pos_];
}

inline EventId EventQueue::arm_new(SimTime at, std::uint32_t slot, Node& n) {
  assert(n.entries == 0);
  n.persistent = false;
  n.state = kArmed;
  const std::uint64_t seq = next_seq();
  n.armed_seq = seq;
  push_entry(pack_entry(at, seq, slot));
  ++live_;
  return make_id(n.gen, slot);
}

inline bool EventQueue::fire_next(SimTime until, SimTime* fired_time) {
  if (live_ == 0) return false;
  if (stale_ != 0) prune_stale_heads();
  const Entry e = head_entry();
  const SimTime t = entry_time(e);
  if (t > until) return false;
  ++run_pos_;
  Node& n = node(entry_slot(e));
  --live_;
  *fired_time = t;
  if (n.persistent) {
    // Disarm before invoking so the callback can re-arm itself.
    --n.entries;
    n.state = kParked;
    n.fn();
  } else {
    n.state = kFiringOneShot;  // cancel() during the invocation returns false
    struct Release {
      EventQueue* q;
      Node* n;
      std::uint32_t slot;
      ~Release() {
        n->fn.reset();
        q->free_slot(slot, *n);
      }
    } release{this, &n, entry_slot(e)};
    n.fn();
  }
  return true;
}

}  // namespace pscrub
