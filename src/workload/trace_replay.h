// Open-loop trace replay (Sec IV-C): requests are issued at their recorded
// arrival times regardless of completions, so queueing delay from scrub
// interference shows up in the response-time CDF exactly as in Fig 7.
#pragma once

#include <cstddef>

#include "block/block_layer.h"
#include "trace/record.h"
#include "workload/metrics.h"

namespace pscrub::workload {

class TraceReplayWorkload {
 public:
  /// The replayer borrows `trace`; it must outlive the workload.
  TraceReplayWorkload(Simulator& sim, block::BlockLayer& blk,
                      const trace::Trace& trace,
                      block::IoPriority priority = block::IoPriority::kBestEffort);

  /// Schedules every record. Memory: O(1) bookkeeping per in-flight
  /// request; scheduling is incremental (a sliding window of arrivals) so
  /// multi-million-request traces do not flood the event queue.
  void start();

  bool finished() const { return completed_ == trace_.records.size(); }
  const WorkloadMetrics& metrics() const { return metrics_; }
  WorkloadMetrics& metrics() { return metrics_; }

 private:
  void schedule_window();
  void issue(std::size_t index);

  static constexpr std::size_t kWindow = 4096;

  Simulator& sim_;
  block::BlockLayer& blk_;
  const trace::Trace& trace_;
  block::IoPriority priority_;
  WorkloadMetrics metrics_;
  std::size_t next_to_schedule_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace pscrub::workload
