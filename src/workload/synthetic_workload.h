// The two synthetic foreground workloads of Sec IV-B.
//
// Sequential: pick a random sector, read the following 8 MB in 64 KB
// requests back-to-back, then think (exponential) and repeat.
// Random: read 64 KB at a uniformly random location, think, repeat.
// Requests bypass the OS cache (they go straight to the block layer) and
// are synchronous: one outstanding request per workload.
#pragma once

#include <cstdint>

#include "block/block_layer.h"
#include "sim/rng.h"
#include "workload/metrics.h"

namespace pscrub::workload {

struct SyntheticConfig {
  std::int64_t request_bytes = 64 * 1024;
  /// Sequential mode: bytes read contiguously before the next think.
  std::int64_t chunk_bytes = 8 * 1024 * 1024;
  /// Mean of the exponential think time separating chunks (sequential) or
  /// requests (random).
  SimTime think_mean = 100 * kMillisecond;
  /// Host-side turnaround between a completion and the next synchronous
  /// submission (syscall + interrupt handling). Without it, back-to-back
  /// synchronous streams monopolize the elevator in zero simulated time.
  SimTime submit_latency = 300 * kMicrosecond;
  block::IoPriority priority = block::IoPriority::kBestEffort;
};

class SequentialChunkWorkload {
 public:
  SequentialChunkWorkload(Simulator& sim, block::BlockLayer& blk,
                          SyntheticConfig config, std::uint64_t seed);

  /// Starts issuing requests at the current simulation time and keeps
  /// going until the simulation stops pumping events.
  void start();

  const WorkloadMetrics& metrics() const { return metrics_; }
  WorkloadMetrics& metrics() { return metrics_; }

 private:
  void begin_chunk();
  void issue_next();

  Simulator& sim_;
  block::BlockLayer& blk_;
  SyntheticConfig config_;
  Rng rng_;
  WorkloadMetrics metrics_;
  disk::Lbn chunk_pos_ = 0;
  std::int64_t chunk_remaining_ = 0;
};

class RandomReadWorkload {
 public:
  RandomReadWorkload(Simulator& sim, block::BlockLayer& blk,
                     SyntheticConfig config, std::uint64_t seed);

  void start();

  const WorkloadMetrics& metrics() const { return metrics_; }
  WorkloadMetrics& metrics() { return metrics_; }

 private:
  void issue();

  Simulator& sim_;
  block::BlockLayer& blk_;
  SyntheticConfig config_;
  Rng rng_;
  WorkloadMetrics metrics_;
};

}  // namespace pscrub::workload
