// Per-workload metrics collection.
//
// WorkloadMetrics is the shared obs::IoStats bundle: request/byte
// counters plus a log-bucketed latency histogram, so mean/percentile/
// throughput math lives in one place (src/obs) instead of being
// re-implemented per subsystem.
#pragma once

#include "obs/metrics.h"

namespace pscrub::workload {

using WorkloadMetrics = obs::IoStats;

}  // namespace pscrub::workload
