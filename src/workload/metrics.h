// Per-workload metrics collection.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace pscrub::workload {

struct WorkloadMetrics {
  std::int64_t requests = 0;
  std::int64_t bytes = 0;
  SimTime latency_sum = 0;
  SimTime max_latency = 0;
  /// Per-request response times in seconds (kept when `keep_samples`).
  std::vector<double> response_seconds;
  bool keep_samples = false;

  void record(std::int64_t request_bytes, SimTime latency) {
    ++requests;
    bytes += request_bytes;
    latency_sum += latency;
    if (latency > max_latency) max_latency = latency;
    if (keep_samples) response_seconds.push_back(to_seconds(latency));
  }

  double mean_latency_ms() const {
    return requests == 0 ? 0.0
                         : to_milliseconds(latency_sum) /
                               static_cast<double>(requests);
  }

  /// MB/s over an observation window.
  double throughput_mb_s(SimTime window) const {
    if (window <= 0) return 0.0;
    return static_cast<double>(bytes) / 1e6 / to_seconds(window);
  }
};

}  // namespace pscrub::workload
