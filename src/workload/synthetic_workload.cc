#include "workload/synthetic_workload.h"

namespace pscrub::workload {

SequentialChunkWorkload::SequentialChunkWorkload(Simulator& sim,
                                                 block::BlockLayer& blk,
                                                 SyntheticConfig config,
                                                 std::uint64_t seed)
    : sim_(sim), blk_(blk), config_(config), rng_(seed) {}

void SequentialChunkWorkload::start() { begin_chunk(); }

void SequentialChunkWorkload::begin_chunk() {
  const std::int64_t chunk_sectors =
      config_.chunk_bytes / disk::kSectorBytes;
  const std::int64_t total = blk_.disk().total_sectors();
  chunk_pos_ = rng_.uniform_int(0, total - chunk_sectors - 1);
  chunk_remaining_ = config_.chunk_bytes;
  issue_next();
}

void SequentialChunkWorkload::issue_next() {
  block::BlockRequest req;
  req.cmd.kind = disk::CommandKind::kRead;
  req.cmd.lbn = chunk_pos_;
  req.cmd.sectors = config_.request_bytes / disk::kSectorBytes;
  req.priority = config_.priority;
  req.on_complete = [this](const block::BlockRequest& r, SimTime latency) {
    metrics_.record(r.cmd.bytes(), latency);
    chunk_pos_ += r.cmd.sectors;
    chunk_remaining_ -= r.cmd.bytes();
    if (chunk_remaining_ > 0) {
      sim_.after(config_.submit_latency, [this] { issue_next(); });
    } else {
      const SimTime think =
          from_seconds(rng_.exponential(to_seconds(config_.think_mean)));
      sim_.after(think, [this] { begin_chunk(); });
    }
  };
  blk_.submit(std::move(req));
}

RandomReadWorkload::RandomReadWorkload(Simulator& sim, block::BlockLayer& blk,
                                       SyntheticConfig config,
                                       std::uint64_t seed)
    : sim_(sim), blk_(blk), config_(config), rng_(seed) {}

void RandomReadWorkload::start() { issue(); }

void RandomReadWorkload::issue() {
  block::BlockRequest req;
  req.cmd.kind = disk::CommandKind::kRead;
  req.cmd.sectors = config_.request_bytes / disk::kSectorBytes;
  req.cmd.lbn =
      rng_.uniform_int(0, blk_.disk().total_sectors() - req.cmd.sectors - 1);
  req.priority = config_.priority;
  req.on_complete = [this](const block::BlockRequest& r, SimTime latency) {
    metrics_.record(r.cmd.bytes(), latency);
    const SimTime think =
        from_seconds(rng_.exponential(to_seconds(config_.think_mean)));
    sim_.after(think, [this] { issue(); });
  };
  blk_.submit(std::move(req));
}

}  // namespace pscrub::workload
