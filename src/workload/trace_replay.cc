#include "workload/trace_replay.h"

#include <algorithm>

namespace pscrub::workload {

TraceReplayWorkload::TraceReplayWorkload(Simulator& sim,
                                         block::BlockLayer& blk,
                                         const trace::Trace& trace,
                                         block::IoPriority priority)
    : sim_(sim), blk_(blk), trace_(trace), priority_(priority) {}

void TraceReplayWorkload::start() { schedule_window(); }

void TraceReplayWorkload::schedule_window() {
  const std::size_t end =
      std::min(next_to_schedule_ + kWindow, trace_.records.size());
  for (; next_to_schedule_ < end; ++next_to_schedule_) {
    const std::size_t index = next_to_schedule_;
    sim_.at(trace_.records[index].arrival, [this, index] { issue(index); });
  }
  if (next_to_schedule_ < trace_.records.size()) {
    // Refill the window when the last scheduled arrival fires.
    const SimTime refill_at = trace_.records[next_to_schedule_ - 1].arrival;
    sim_.at(refill_at, [this] { schedule_window(); });
  }
}

void TraceReplayWorkload::issue(std::size_t index) {
  const trace::TraceRecord& rec = trace_.records[index];
  block::BlockRequest req;
  req.cmd.kind =
      rec.is_write ? disk::CommandKind::kWrite : disk::CommandKind::kRead;
  // Traces are recorded against disks of arbitrary size; fold any extent
  // that falls past the end of the replay device back into its address
  // space (no real host issues an out-of-range command). In-range records
  // -- the common case -- pass through untouched.
  const std::int64_t total = blk_.disk().total_sectors();
  req.cmd.sectors = std::min<std::int64_t>(rec.sectors, total);
  req.cmd.lbn = rec.lbn;
  if (req.cmd.lbn + req.cmd.sectors > total) {
    req.cmd.lbn %= total - req.cmd.sectors + 1;
  }
  req.priority = priority_;
  req.on_complete = [this](const block::BlockRequest& r, SimTime latency) {
    metrics_.record(r.cmd.bytes(), latency);
    ++completed_;
  };
  blk_.submit(std::move(req));
}

}  // namespace pscrub::workload
