// Fast trace-driven policy simulator (Sec V's methodology).
//
// A single-server FCFS sweep over a foreground trace with scrub requests
// injected per an IdlePolicy and a ScrubSizer. Runs millions of requests
// per second, which is what makes the optimizer's parameter sweeps and the
// Fig 14/15 curves tractable -- the paper likewise used simulation for
// this part of the study.
//
// Definitions (matching the paper):
//   collision  -- a foreground request arrives while a scrub request is in
//                 service; it is delayed by the scrub request's remaining
//                 time.
//   slowdown   -- per-request response-time increase versus a no-scrubber
//                 run of the same trace (queueing cascades included). The
//                 reported mean averages over ALL foreground requests.
//   idle utilization -- fraction of the trace's total idle time spent
//                 actually servicing scrub requests.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/idle_decomp.h"
#include "core/idle_policy.h"
#include "core/scrub_sizer.h"
#include "obs/timeline.h"
#include "trace/idle.h"
#include "trace/record.h"

namespace pscrub::obs {
class Registry;
}  // namespace pscrub::obs

namespace pscrub::core {

/// Service time of one scrub request of a given size.
using ScrubServiceFn = std::function<SimTime(std::int64_t bytes)>;

struct PolicySimConfig {
  trace::ServiceModel foreground_service;
  ScrubServiceFn scrub_service;
  ScrubSizer sizer = ScrubSizer::fixed(64 * 1024);
  /// Keep per-request response times (for CDF plots); costs memory.
  bool keep_response_samples = false;
  /// Optional: per-record service times precomputed once (see
  /// precompute_services). When set, overrides `foreground_service` and
  /// removes the per-record indirection from the hot loop -- essential for
  /// the optimizer's hundreds of sweeps over one trace.
  const std::vector<SimTime>* services = nullptr;
  /// Optional timeline; when enabled, the sweep emits under the sink's
  /// prefix: `.fg.requests` / `.collisions` / `.scrub.mb` /
  /// `.scrub.busy_s` (counters, bursts spread via add_span),
  /// `.scrub.progress.mb` (gauge), and `.slowdown_ms` (per-window
  /// digest). Burst-granularity emission keeps the hot loop's timeline
  /// cost near zero; a disabled sink costs one hoisted branch.
  obs::TimelineSink timeline;
};

/// Evaluates `model` once per record; share the result across many
/// run_policy_sim calls on the same trace.
std::vector<SimTime> precompute_services(const trace::Trace& trace,
                                         const trace::ServiceModel& model);

struct PolicySimResult {
  std::int64_t foreground_requests = 0;
  std::int64_t collisions = 0;
  double collision_rate = 0.0;

  SimTime total_idle = 0;
  SimTime idle_utilized = 0;
  double idle_utilization = 0.0;

  std::int64_t scrub_requests = 0;
  std::int64_t scrubbed_bytes = 0;
  double scrub_mb_s = 0.0;  // over the whole trace duration

  SimTime slowdown_sum = 0;
  SimTime slowdown_max = 0;
  double mean_slowdown_ms = 0.0;

  std::vector<double> response_seconds;           // with scrubber
  std::vector<double> baseline_response_seconds;  // without scrubber

  /// Publishes the summary fields into `registry` under `prefix` (e.g.
  /// "policy.collision_rate").
  void export_to(obs::Registry& registry, const std::string& prefix) const;
};

/// The reference implementation: a full O(records) replay of the trace.
/// Handles every policy/sizer combination, response samples, timelines,
/// and tracer emission. It is also the oracle the batched evaluator below
/// is differential-tested against (tests/test_policy_batched.cc).
PolicySimResult run_policy_sim_reference(const trace::Trace& trace,
                                         IdlePolicy& policy,
                                         const PolicySimConfig& config);

/// General entry point; currently forwards to the reference replay.
/// Waiting-policy grids over a fixed request size should go through the
/// decomposition path (run_waiting_grid / run_waiting_single), which is
/// bit-identical and O(intervals) per grid point instead of O(records).
PolicySimResult run_policy_sim(const trace::Trace& trace, IdlePolicy& policy,
                               const PolicySimConfig& config);

/// Baseline convenience: no scrubbing at all (policy that never fires).
PolicySimResult run_baseline(const trace::Trace& trace,
                             const trace::ServiceModel& foreground_service,
                             bool keep_response_samples = false);

/// One fixed-size scrub request stream for the batched Waiting evaluator.
/// `request_service` must equal scrub_service(request_bytes) of the
/// reference configuration being reproduced; the scrub service model must
/// be a pure function of the size (every cost_model.h factory is).
struct WaitingGridRequest {
  std::int64_t request_bytes = 64 * 1024;
  SimTime request_service = 0;
};

/// Batched evaluator: every threshold in one pass over the decomposition.
/// Result i is bit-identical to run_policy_sim_reference with
/// WaitingPolicy(thresholds[i]) and ScrubSizer::fixed(request_bytes) in a
/// plain configuration (no response samples, timeline, or tracer).
/// Thresholds need not be sorted; results come back in input order. Cost
/// is O(intervals * active thresholds): intervals shorter than a
/// threshold cost that threshold nothing (the prefix-sum base covers
/// them), so sorted thresholds each only touch the intervals they fire
/// in, plus any interval a collision overrun cascades into.
std::vector<PolicySimResult> run_waiting_grid(
    const IdleDecomposition& decomp, const WaitingGridRequest& request,
    std::span<const SimTime> thresholds);

/// Single-threshold form of run_waiting_grid. When the threshold captures
/// few intervals, only those intervals (plus collision cascades) are
/// visited via the decomposition's sorted index.
PolicySimResult run_waiting_single(const IdleDecomposition& decomp,
                                   const WaitingGridRequest& request,
                                   SimTime threshold);

}  // namespace pscrub::core
