// Closed-form, non-virtual view of a scrub strategy's per-pass schedule.
//
// ScrubStrategy (scrub_strategy.h) is the paper's kernel-style API: a tiny
// heap-allocated state machine yielding one extent per call through a
// virtual next(). That is the right shape for one disk driven by the
// event stack, and exactly the wrong shape for a fleet: simulating 100k+
// disks cannot afford one heap object plus a virtual dispatch per disk on
// the hot path, and most fleet questions ("when is sector s verified?")
// need random access into the schedule, not a sequential walk.
//
// A ScheduleView is the same schedule as a value type with O(1) closed
// forms: step_of(sector) gives the 0-based position within a pass at
// which the extent covering `sector` is verified, and steps_per_pass()
// gives the pass length in extents. Both are exact mirrors of the
// corresponding strategy's next() sequence (tests walk a strategy for a
// full pass and cross-check every extent), so fleet-side MLET arithmetic
// built on a view is bit-identical to the single-disk virtual-dispatch
// path. extent_at() inverts step_of for the cross-checks; the fleet hot
// path never calls it.
#pragma once

#include <cstdint>

#include "core/scrub_strategy.h"
#include "disk/command.h"

namespace pscrub::core {

struct ScheduleView {
  enum class Kind : std::uint8_t { kSequential, kStaggered };

  Kind kind = Kind::kSequential;
  std::int64_t total_sectors = 0;
  std::int64_t request_sectors = 0;
  // Staggered only (mirrors StaggeredStrategy's geometry).
  int regions = 1;
  std::int64_t region_sectors = 0;  // ceil(total_sectors / regions)

  /// The SequentialStrategy schedule. Throws std::invalid_argument for
  /// non-positive sizes.
  static ScheduleView sequential(std::int64_t total_sectors,
                                 std::int64_t request_sectors);

  /// The StaggeredStrategy schedule (regions clamped to >= 1 like the
  /// strategy). Throws std::invalid_argument for non-positive sizes or
  /// regions too fine for the request size (region_sectors <
  /// request_sectors, the same precondition StaggeredStrategy asserts).
  static ScheduleView staggered(std::int64_t total_sectors,
                                std::int64_t request_sectors, int regions);

  /// Extents in one full pass (every sector verified exactly once).
  std::int64_t steps_per_pass() const;

  /// 0-based step within a pass at which the extent covering `sector` is
  /// verified. Precondition: 0 <= sector < total_sectors.
  std::int64_t step_of(disk::Lbn sector) const;

  /// The extent verified at `step` (inverse of step_of; test hook).
  /// Precondition: 0 <= step < steps_per_pass().
  ScrubExtent extent_at(std::int64_t step) const;
};

}  // namespace pscrub::core
