#include "core/scrub_strategy.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pscrub::core {

SequentialStrategy::SequentialStrategy(std::int64_t total_sectors,
                                       std::int64_t request_sectors)
    : total_sectors_(total_sectors), request_sectors_(request_sectors) {
  assert(total_sectors_ > 0 && request_sectors_ > 0);
}

ScrubExtent SequentialStrategy::next() {
  ScrubExtent e;
  e.lbn = pos_;
  e.sectors = std::min(request_sectors_, total_sectors_ - pos_);
  pos_ += e.sectors;
  if (pos_ >= total_sectors_) {
    pos_ = 0;
    ++passes_;
  }
  return e;
}

void SequentialStrategy::reset() {
  pos_ = 0;
  passes_ = 0;
}

ScrubCursor SequentialStrategy::cursor() const {
  ScrubCursor c;
  c.a = pos_;
  c.passes = passes_;
  return c;
}

void SequentialStrategy::restore(const ScrubCursor& cursor) {
  if (cursor.a < 0 || cursor.a >= total_sectors_ || cursor.b != 0 ||
      cursor.passes < 0) {
    throw std::invalid_argument("sequential cursor out of range");
  }
  pos_ = cursor.a;
  passes_ = cursor.passes;
}

void SequentialStrategy::set_request_sectors(std::int64_t sectors) {
  assert(sectors > 0);
  request_sectors_ = sectors;
}

StaggeredStrategy::StaggeredStrategy(std::int64_t total_sectors,
                                     std::int64_t request_sectors, int regions)
    : total_sectors_(total_sectors),
      request_sectors_(request_sectors),
      regions_(std::max(regions, 1)),
      // Ceiling division: every sector belongs to some region, and the last
      // region may be short (possibly empty for degenerate ratios).
      region_sectors_((total_sectors + std::max(regions, 1) - 1) /
                      std::max(regions, 1)) {
  assert(total_sectors_ > 0 && request_sectors_ > 0);
  assert(region_sectors_ >= request_sectors_ &&
         "regions too small for the request size");
}

ScrubExtent StaggeredStrategy::next() {
  // Rounds probe segment k of every region in turn. Short trailing regions
  // run out of segments before full ones do; skip them within the round.
  while (true) {
    const disk::Lbn region_start =
        static_cast<disk::Lbn>(region_index_) * region_sectors_;
    const std::int64_t region_end =
        std::min(region_start + region_sectors_, total_sectors_);
    const disk::Lbn lbn = region_start + segment_offset_;

    // Advance the cursor first so every exit path leaves consistent state.
    ++region_index_;
    if (region_index_ >= regions_) {
      region_index_ = 0;
      segment_offset_ += request_sectors_;
      if (segment_offset_ >= region_sectors_) {
        segment_offset_ = 0;
        ++passes_;
      }
    }

    if (lbn < region_end) {
      ScrubExtent e;
      e.lbn = lbn;
      e.sectors = std::min(request_sectors_, region_end - lbn);
      return e;
    }
    // This region has no segment in the current round (trailing remainder);
    // continue with the next region. Region 0, offset 0 always yields, so
    // the loop terminates.
  }
}

void StaggeredStrategy::reset() {
  region_index_ = 0;
  segment_offset_ = 0;
  passes_ = 0;
}

ScrubCursor StaggeredStrategy::cursor() const {
  ScrubCursor c;
  c.a = region_index_;
  c.b = segment_offset_;
  c.passes = passes_;
  return c;
}

void StaggeredStrategy::restore(const ScrubCursor& cursor) {
  if (cursor.a < 0 || cursor.a >= regions_ || cursor.b < 0 ||
      cursor.b >= region_sectors_ || cursor.passes < 0) {
    throw std::invalid_argument("staggered cursor out of range");
  }
  region_index_ = static_cast<int>(cursor.a);
  segment_offset_ = cursor.b;
  passes_ = cursor.passes;
}

void StaggeredStrategy::set_request_sectors(std::int64_t sectors) {
  assert(sectors > 0);
  request_sectors_ = sectors;
  if (segment_offset_ >= region_sectors_) segment_offset_ = 0;
}

std::unique_ptr<ScrubStrategy> make_sequential(std::int64_t total_sectors,
                                               std::int64_t request_bytes) {
  return std::make_unique<SequentialStrategy>(
      total_sectors, disk::sectors_from_bytes(request_bytes));
}

std::unique_ptr<ScrubStrategy> make_staggered(std::int64_t total_sectors,
                                              std::int64_t request_bytes,
                                              int regions) {
  return std::make_unique<StaggeredStrategy>(
      total_sectors, disk::sectors_from_bytes(request_bytes), regions);
}

}  // namespace pscrub::core
