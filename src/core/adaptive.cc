#include "core/adaptive.h"

#include <utility>

namespace pscrub::core {

AdaptiveScrubDaemon::AdaptiveScrubDaemon(Simulator& sim,
                                         block::BlockLayer& blk,
                                         WaitingScrubber& scrubber,
                                         trace::ServiceModel foreground_service,
                                         ScrubServiceFn scrub_service,
                                         AdaptiveConfig config)
    : sim_(sim),
      blk_(blk),
      scrubber_(scrubber),
      foreground_service_(std::move(foreground_service)),
      scrub_service_(std::move(scrub_service)),
      config_(std::move(config)) {
  timer_ = sim_.add_persistent([this] {
    if (!running_) return;
    retune();
    schedule_next();
  });
}

void AdaptiveScrubDaemon::start() {
  if (running_) return;
  running_ = true;
  blk_.set_request_observer(
      [this](const block::BlockRequest& r) { on_request(r); });
  schedule_next();
}

void AdaptiveScrubDaemon::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(timer_);
  blk_.set_request_observer(nullptr);
}

void AdaptiveScrubDaemon::schedule_next() {
  sim_.arm_after(timer_, config_.retune_every);
}

void AdaptiveScrubDaemon::on_request(const block::BlockRequest& request) {
  trace::TraceRecord rec;
  rec.arrival = sim_.now();
  rec.lbn = request.cmd.lbn;
  rec.sectors = static_cast<std::int32_t>(request.cmd.sectors);
  rec.is_write = request.cmd.kind == disk::CommandKind::kWrite;
  window_.push_back(rec);
  if (window_.size() > 2 * config_.window_requests) {
    window_.erase(window_.begin(),
                  window_.end() -
                      static_cast<std::ptrdiff_t>(config_.window_requests));
  }
}

bool AdaptiveScrubDaemon::retune() {
  if (window_.size() < config_.min_requests) return false;

  // Snapshot the window as a trace, rebased to time zero.
  trace::Trace t;
  t.name = "adaptive-window";
  const std::size_t take = std::min(window_.size(), config_.window_requests);
  const SimTime base = window_[window_.size() - take].arrival;
  t.records.reserve(take);
  for (std::size_t i = window_.size() - take; i < window_.size(); ++i) {
    trace::TraceRecord rec = window_[i];
    rec.arrival -= base;
    t.records.push_back(rec);
  }
  t.duration = t.records.back().arrival;

  OptimizerConfig oc;
  oc.foreground_service = foreground_service_;
  oc.scrub_service = scrub_service_;
  oc.candidate_sizes = config_.candidate_sizes;
  oc.binary_search_iters = config_.binary_search_iters;
  const std::vector<SimTime> services =
      precompute_services(t, foreground_service_);
  oc.services = &services;

  const SizeThresholdChoice choice = optimize(t, oc, config_.goal);
  if (choice.request_bytes == 0 || choice.scrub_mb_s <= 0.0) {
    return false;  // goal infeasible on this window: leave settings alone
  }
  scrubber_.set_wait_threshold(choice.threshold);
  scrubber_.set_request_bytes(choice.request_bytes);
  ++stats_.retunes;
  stats_.last_choice = choice;
  stats_.last_retune_at = sim_.now();
  return true;
}

}  // namespace pscrub::core
