#include "core/scrubber.h"

#include <utility>

#include "obs/trace_event.h"

namespace pscrub::core {

Scrubber::Scrubber(Simulator& sim, block::BlockLayer& blk,
                   std::unique_ptr<ScrubStrategy> strategy,
                   ScrubberConfig config)
    : sim_(sim),
      blk_(blk),
      strategy_(std::move(strategy)),
      config_(config) {
  issue_event_ = sim_.add_persistent([this] { issue(); });
}

void Scrubber::start() {
  if (running_) return;
  running_ = true;
  issue();
}

void Scrubber::issue() {
  if (!running_) return;
  const ScrubExtent e = strategy_->next();

  block::BlockRequest req;
  req.cmd.kind = config_.verify_kind;
  req.cmd.lbn = e.lbn;
  req.cmd.sectors = e.sectors;
  req.priority = config_.priority;
  req.soft_barrier = config_.path == IssuePath::kUser;
  req.background = true;
  req.on_complete = [this](const block::BlockRequest& r,
                           const block::BlockResult& result) {
    stats_.record(r.cmd.bytes(), result.latency);
    if (!result.ok()) ++stats_.errors;
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.span(obs::Track::kScrubber, "scrub", "verify", r.submit_time,
                  sim_.now(),
                  {{"lbn", r.cmd.lbn},
                   {"sectors", r.cmd.sectors},
                   {"status", to_string(result.status)}});
    }
    if (!running_) return;
    if (result.status == disk::IoStatus::kDiskFailed) {
      // The member is gone: scrubbing it achieves nothing. Stand down for
      // good (a replacement drive gets a fresh scrubber).
      running_ = false;
      if (tracer.enabled()) {
        tracer.instant(obs::Track::kScrubber, "scrub",
                       "stop (disk failed)", sim_.now());
      }
      return;
    }
    // A media error on the extent is a *detection*, not a reason to stop:
    // record it (the disk's LSE observer has the details) and move on to
    // the next extent -- the pass must cover the rest of the disk.
    if (config_.inter_request_delay > 0) {
      sim_.arm_after(issue_event_, config_.inter_request_delay);
    } else {
      issue();
    }
  };
  blk_.submit(std::move(req));
}

WaitingScrubber::WaitingScrubber(Simulator& sim, block::BlockLayer& blk,
                                 std::unique_ptr<ScrubStrategy> strategy,
                                 SimTime wait_threshold,
                                 disk::CommandKind verify_kind)
    : sim_(sim),
      blk_(blk),
      strategy_(std::move(strategy)),
      wait_threshold_(wait_threshold),
      verify_kind_(verify_kind) {
  arm_event_ = sim_.add_persistent([this] { check_fire(); });
}

void WaitingScrubber::start() {
  if (running_) return;
  running_ = true;
  blk_.set_idle_observer([this] { on_idle(); });
  if (blk_.idle()) on_idle();
}

void WaitingScrubber::stop() {
  running_ = false;
  if (armed_) {
    sim_.cancel(arm_event_);
    armed_ = false;
  }
  blk_.set_idle_observer(nullptr);
}

void WaitingScrubber::on_idle() {
  if (!running_ || armed_) return;
  armed_ = true;
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.instant(obs::Track::kScrubber, "scrub", "wait-start", sim_.now(),
                   {{"threshold_ms", to_milliseconds(wait_threshold_)}});
  }
  sim_.arm_after(arm_event_, wait_threshold_);
}

void WaitingScrubber::check_fire() {
  armed_ = false;
  if (!running_) return;
  if (!blk_.idle()) {  // re-armed on the next idle edge
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(obs::Track::kScrubber, "scrub", "wait-abort (busy)",
                     sim_.now());
    }
    return;
  }
  // Activity may have come and gone while the timer ran: fire only once a
  // full threshold of *continuous* idleness has accumulated.
  const SimTime idle_for = blk_.disk_idle_for();
  if (idle_for < wait_threshold_) {
    armed_ = true;
    sim_.arm_after(arm_event_, wait_threshold_ - idle_for);
    return;
  }
  fire();
}

void WaitingScrubber::fire() {
  const ScrubExtent e = strategy_->next();
  block::BlockRequest req;
  req.cmd.kind = verify_kind_;
  req.cmd.lbn = e.lbn;
  req.cmd.sectors = e.sectors;
  req.priority = block::IoPriority::kBestEffort;
  req.background = true;
  req.on_complete = [this](const block::BlockRequest& r,
                           const block::BlockResult& result) {
    stats_.record(r.cmd.bytes(), result.latency);
    if (!result.ok()) ++stats_.errors;
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.span(obs::Track::kScrubber, "scrub", "verify", r.submit_time,
                  sim_.now(),
                  {{"lbn", r.cmd.lbn},
                   {"sectors", r.cmd.sectors},
                   {"status", to_string(result.status)}});
    }
    if (!running_) return;
    if (result.status == disk::IoStatus::kDiskFailed) {
      // Dead member: stop instead of hammering a drive that fails every
      // command instantly (which would also starve the idle detector).
      stop();
      if (tracer.enabled()) {
        tracer.instant(obs::Track::kScrubber, "scrub",
                       "stop (disk failed)", sim_.now());
      }
      return;
    }
    // Media errors are detections: keep going -- the strategy has already
    // advanced past the bad extent, and the slowdown goal still governs
    // (a retry-amplified completion simply delays the next fire).
    // Decreasing hazard rates: keep firing until foreground work appears;
    // no separate stopping criterion (Sec V-A).
    if (blk_.queue_depth() == 0 && !blk_.disk_busy()) {
      fire();
    } else if (tracer.enabled()) {
      // Foreground work arrived while we were verifying: stand down; the
      // idle observer re-arms us later.
      tracer.instant(obs::Track::kScrubber, "scrub",
                     "stand-down (foreground)", sim_.now());
    }
  };
  blk_.submit(std::move(req));
}

}  // namespace pscrub::core
