#include "core/scrubber.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/trace_event.h"

namespace pscrub::core {

void ScrubProgressRecorder::resolve() {
  if (ready_) return;
  obs::Timeline& tl = *sink_.timeline;
  using Kind = obs::Timeline::SeriesKind;
  sectors_ = tl.series(sink_.name(".progress.sectors"), Kind::kGauge);
  fraction_ = tl.series(sink_.name(".progress.fraction"), Kind::kGauge);
  rate_ = tl.series(sink_.name(".progress.rate_sps"), Kind::kGauge);
  eta_ = tl.series(sink_.name(".progress.eta_s"), Kind::kGauge);
  standdowns_ = tl.series(sink_.name(".standdowns"), Kind::kCounter);
  ready_ = true;
}

void ScrubProgressRecorder::on_extent(SimTime now, std::int64_t sectors,
                                      std::int64_t total_sectors,
                                      std::int64_t passes) {
  resolve();
  obs::Timeline& tl = *sink_.timeline;
  done_sectors_ += sectors;
  tl.set_gauge(sectors_, now, static_cast<double>(done_sectors_));

  double fraction = 1.0;
  if (total_sectors > 0) {
    fraction = std::min(1.0, static_cast<double>(done_sectors_) /
                                 static_cast<double>(total_sectors));
  }
  tl.set_gauge(fraction_, now, fraction);

  if (last_at_ >= 0 && now > last_at_) {
    const double inst = static_cast<double>(sectors) /
                        to_seconds(now - last_at_);
    ewma_sps_ = ewma_sps_ == 0.0
                    ? inst
                    : kRateAlpha * inst + (1.0 - kRateAlpha) * ewma_sps_;
    tl.set_gauge(rate_, now, ewma_sps_);
    const std::int64_t remaining =
        std::max<std::int64_t>(0, total_sectors - done_sectors_);
    tl.set_gauge(eta_, now,
                 ewma_sps_ > 0.0
                     ? static_cast<double>(remaining) / ewma_sps_
                     : 0.0);
  }
  last_at_ = now;

  if (passes > last_passes_) {
    tl.event(sink_.name(".events"), now,
             "pass " + std::to_string(passes) + " complete");
    last_passes_ = passes;
  }
}

void ScrubProgressRecorder::on_standdown(SimTime now) {
  resolve();
  sink_.timeline->add(standdowns_, now, 1.0);
}

void ScrubProgressRecorder::on_stop(SimTime now, const char* reason) {
  sink_.timeline->event(sink_.name(".events"), now,
                        std::string("stop (") + reason + ")");
}

Scrubber::Scrubber(Simulator& sim, block::BlockLayer& blk,
                   std::unique_ptr<ScrubStrategy> strategy,
                   ScrubberConfig config)
    : sim_(sim),
      blk_(blk),
      strategy_(std::move(strategy)),
      config_(config) {
  issue_event_ = sim_.add_persistent([this] { issue(); });
}

void Scrubber::start() {
  if (running_) return;
  running_ = true;
  paused_ = false;
  issue();
}

void Scrubber::pause() {
  if (!running_) return;
  running_ = false;
  paused_ = true;
  // The inter-request timer may hold the only reference to the next
  // issue; cancel it so the chain is quiescent until resume().
  sim_.cancel(issue_event_);
  if (progress_.enabled()) progress_.on_stop(sim_.now(), "paused");
}

void Scrubber::resume() {
  if (!paused_) return;
  paused_ = false;
  running_ = true;
  // If the verify that was in flight at pause() has not completed yet,
  // its completion callback re-chains now that running_ is set again;
  // issuing here too would put two extents in flight.
  if (!in_flight_) issue();
}

void Scrubber::issue() {
  if (!running_) return;
  const ScrubExtent e = strategy_->next();

  block::BlockRequest req;
  req.cmd.kind = config_.verify_kind;
  req.cmd.lbn = e.lbn;
  req.cmd.sectors = e.sectors;
  req.priority = config_.priority;
  req.soft_barrier = config_.path == IssuePath::kUser;
  req.background = true;
  req.on_complete = [this](const block::BlockRequest& r,
                           const block::BlockResult& result) {
    in_flight_ = false;
    stats_.record(r.cmd.bytes(), result.latency);
    if (!result.ok()) ++stats_.errors;
    if (progress_.enabled() && result.status != disk::IoStatus::kDiskFailed) {
      progress_.on_extent(sim_.now(), r.cmd.sectors,
                          strategy_->total_sectors(),
                          strategy_->completed_passes());
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.span(obs::Track::kScrubber, "scrub", "verify", r.submit_time,
                  sim_.now(),
                  {{"lbn", r.cmd.lbn},
                   {"sectors", r.cmd.sectors},
                   {"status", to_string(result.status)}});
    }
    if (!running_) return;
    if (result.status == disk::IoStatus::kDiskFailed) {
      // The member is gone: scrubbing it achieves nothing. Stand down for
      // good (a replacement drive gets a fresh scrubber).
      running_ = false;
      if (progress_.enabled()) progress_.on_stop(sim_.now(), "disk failed");
      if (tracer.enabled()) {
        tracer.instant(obs::Track::kScrubber, "scrub",
                       "stop (disk failed)", sim_.now());
      }
      return;
    }
    // A media error on the extent is a *detection*, not a reason to stop:
    // record it (the disk's LSE observer has the details) and move on to
    // the next extent -- the pass must cover the rest of the disk.
    if (config_.inter_request_delay > 0) {
      sim_.arm_after(issue_event_, config_.inter_request_delay);
    } else {
      issue();
    }
  };
  in_flight_ = true;
  blk_.submit(std::move(req));
}

WaitingScrubber::WaitingScrubber(Simulator& sim, block::BlockLayer& blk,
                                 std::unique_ptr<ScrubStrategy> strategy,
                                 SimTime wait_threshold,
                                 disk::CommandKind verify_kind)
    : sim_(sim),
      blk_(blk),
      strategy_(std::move(strategy)),
      wait_threshold_(wait_threshold),
      verify_kind_(verify_kind) {
  arm_event_ = sim_.add_persistent([this] { check_fire(); });
}

void WaitingScrubber::start() {
  if (running_) return;
  running_ = true;
  paused_ = false;
  blk_.set_idle_observer([this] { on_idle(); });
  if (blk_.idle()) on_idle();
}

void WaitingScrubber::stop() {
  running_ = false;
  paused_ = false;
  if (armed_) {
    sim_.cancel(arm_event_);
    armed_ = false;
  }
  blk_.set_idle_observer(nullptr);
}

void WaitingScrubber::pause() {
  if (!running_) return;
  stop();
  paused_ = true;
  if (progress_.enabled()) progress_.on_stop(sim_.now(), "paused");
}

void WaitingScrubber::resume() {
  if (!paused_) return;
  paused_ = false;
  start();
}

void WaitingScrubber::on_idle() {
  if (!running_ || armed_) return;
  armed_ = true;
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.instant(obs::Track::kScrubber, "scrub", "wait-start", sim_.now(),
                   {{"threshold_ms", to_milliseconds(wait_threshold_)}});
  }
  sim_.arm_after(arm_event_, wait_threshold_);
}

void WaitingScrubber::check_fire() {
  armed_ = false;
  if (!running_) return;
  if (!blk_.idle()) {  // re-armed on the next idle edge
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(obs::Track::kScrubber, "scrub", "wait-abort (busy)",
                     sim_.now());
    }
    return;
  }
  // Activity may have come and gone while the timer ran: fire only once a
  // full threshold of *continuous* idleness has accumulated.
  const SimTime idle_for = blk_.disk_idle_for();
  if (idle_for < wait_threshold_) {
    armed_ = true;
    sim_.arm_after(arm_event_, wait_threshold_ - idle_for);
    return;
  }
  fire();
}

void WaitingScrubber::fire() {
  const ScrubExtent e = strategy_->next();
  block::BlockRequest req;
  req.cmd.kind = verify_kind_;
  req.cmd.lbn = e.lbn;
  req.cmd.sectors = e.sectors;
  req.priority = block::IoPriority::kBestEffort;
  req.background = true;
  req.on_complete = [this](const block::BlockRequest& r,
                           const block::BlockResult& result) {
    stats_.record(r.cmd.bytes(), result.latency);
    if (!result.ok()) ++stats_.errors;
    if (progress_.enabled() && result.status != disk::IoStatus::kDiskFailed) {
      progress_.on_extent(sim_.now(), r.cmd.sectors,
                          strategy_->total_sectors(),
                          strategy_->completed_passes());
    }
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.span(obs::Track::kScrubber, "scrub", "verify", r.submit_time,
                  sim_.now(),
                  {{"lbn", r.cmd.lbn},
                   {"sectors", r.cmd.sectors},
                   {"status", to_string(result.status)}});
    }
    if (!running_) return;
    if (result.status == disk::IoStatus::kDiskFailed) {
      // Dead member: stop instead of hammering a drive that fails every
      // command instantly (which would also starve the idle detector).
      stop();
      if (progress_.enabled()) progress_.on_stop(sim_.now(), "disk failed");
      if (tracer.enabled()) {
        tracer.instant(obs::Track::kScrubber, "scrub",
                       "stop (disk failed)", sim_.now());
      }
      return;
    }
    // Media errors are detections: keep going -- the strategy has already
    // advanced past the bad extent, and the slowdown goal still governs
    // (a retry-amplified completion simply delays the next fire).
    // Decreasing hazard rates: keep firing until foreground work appears;
    // no separate stopping criterion (Sec V-A).
    if (blk_.queue_depth() == 0 && !blk_.disk_busy()) {
      fire();
    } else {
      // Foreground work arrived while we were verifying: stand down; the
      // idle observer re-arms us later.
      if (progress_.enabled()) progress_.on_standdown(sim_.now());
      if (tracer.enabled()) {
        tracer.instant(obs::Track::kScrubber, "scrub",
                       "stand-down (foreground)", sim_.now());
      }
    }
  };
  blk_.submit(std::move(req));
}

}  // namespace pscrub::core
