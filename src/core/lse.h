// Latent sector error model and MLET evaluation.
//
// The paper's motivation for staggered scrubbing comes from Oprea & Juels
// [4] and Bairavasundaram et al. [2]: LSEs arrive in temporal bursts with
// strong spatial locality -- several errors scattered within a span of
// tens of MB. A staggered pass probes every region early and repeatedly
// (one segment per round), so a multi-segment burst is hit by *some* probe
// much sooner than a sequential pass reaches the burst's neighbourhood;
// scanning the surrounding region on first detection then finds the rest.
// We reproduce that motivating claim as an ablation bench.
//
// Detection semantics: the strategy's extent sequence, paced at a constant
// request rate, defines a deterministic cyclic schedule; an error is
// detected the first time an extent covering it is verified after its
// occurrence. With `scrub_on_detection`, the whole burst is credited as
// detected when its first sector is found.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/schedule_view.h"
#include "core/scrub_strategy.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace pscrub::core {

struct LseBurst {
  SimTime occurred = 0;
  /// Affected sectors, scattered within the burst's locality span.
  std::vector<disk::Lbn> sectors;
};

struct LseModelConfig {
  /// Mean time between burst arrivals (Poisson process).
  SimTime burst_interarrival_mean = 30 * kDay;
  /// Errors per burst: 1 + geometric with this mean.
  double extra_errors_per_burst_mean = 7.0;
  /// Probability the burst is a single isolated error.
  double isolated_fraction = 0.4;
  /// Spatial locality span the burst's errors scatter within.
  std::int64_t burst_span_bytes = 64LL << 20;
};

std::vector<LseBurst> generate_lse_bursts(const LseModelConfig& config,
                                          std::int64_t total_sectors,
                                          SimTime horizon, Rng& rng);

struct MletResult {
  double mlet_hours = 0.0;   // mean latent error time across all errors
  double worst_hours = 0.0;  // max detection delay observed
  std::int64_t errors = 0;
  double pass_hours = 0.0;   // full-pass duration implied by the pacing
};

struct MletConfig {
  /// Time to scrub one request-sized extent (sets the scrub rate).
  SimTime request_service = 5 * kMillisecond;
  /// Extra pacing between requests (rate limiting).
  SimTime request_spacing = 0;
  /// Staggered-scrubbing response: scan the enclosing area as soon as one
  /// sector of a burst is found, detecting the whole burst.
  bool scrub_on_detection = true;
};

/// Evaluates the MLET of a strategy against injected bursts. The strategy
/// is reset and walked for one full pass to extract its schedule.
MletResult evaluate_mlet(ScrubStrategy& strategy, std::int64_t total_sectors,
                         const std::vector<LseBurst>& bursts,
                         const MletConfig& config);

// ---------------------------------------------------------------------------
// ScheduleView forms: the same evaluation without the per-disk strategy
// object. The fleet layer (src/fleet) calls these against struct-of-arrays
// state -- no heap strategy, no virtual dispatch on the hot path -- and
// the results are bit-identical to the ScrubStrategy overload (the cyclic
// schedule is the same; tests cross-check both paths).

/// Detection delay of a single sector error: time from the error's phase
/// within the pass (`phase` = occurred % pass_duration) until the extent
/// covering `sector` is next verified. `step` is the paced per-extent
/// interval (request_service + request_spacing) and `pass_duration` is
/// steps_per_pass() * step.
SimTime sector_detection_delay(const ScheduleView& schedule, disk::Lbn sector,
                               SimTime phase, SimTime step,
                               SimTime pass_duration);

/// First-probe detection delay of a whole burst (the scrub_on_detection
/// semantics): the minimum sector_detection_delay over `sectors`.
/// Precondition: count > 0.
SimTime burst_detection_delay(const ScheduleView& schedule,
                              const disk::Lbn* sectors, std::size_t count,
                              SimTime phase, SimTime step,
                              SimTime pass_duration);

/// evaluate_mlet against a closed-form schedule. When `detect_times` is
/// non-null it is resized to bursts.size() and filled with each burst's
/// first-detection time (occurred + first-probe delay) -- what the fleet
/// layer records into its detection timeline.
MletResult evaluate_mlet(const ScheduleView& schedule,
                         const std::vector<LseBurst>& bursts,
                         const MletConfig& config,
                         std::vector<SimTime>* detect_times = nullptr);

}  // namespace pscrub::core
