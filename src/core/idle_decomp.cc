#include "core/idle_decomp.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

namespace pscrub::core {

std::int64_t IdleDecomposition::captured_intervals(SimTime threshold) const {
  const auto first = std::upper_bound(sorted_gaps.begin(), sorted_gaps.end(),
                                      threshold);
  return static_cast<std::int64_t>(sorted_gaps.end() - first);
}

SimTime IdleDecomposition::usable_idle(SimTime threshold) const {
  const auto first = std::upper_bound(sorted_gaps.begin(), sorted_gaps.end(),
                                      threshold);
  const auto k = static_cast<std::size_t>(first - sorted_gaps.begin());
  const std::int64_t captured =
      static_cast<std::int64_t>(sorted_gaps.size() - k);
  if (captured == 0) return 0;
  const SimTime captured_sum = total_gap_idle() - prefix_gap_sum[k];
  return captured_sum - threshold * captured;
}

void IdleDecomposition::finalize() {
  assert(gaps.size() == segment_records.size());
  const std::size_t n = gaps.size();
  sorted_pos.resize(n);
  std::iota(sorted_pos.begin(), sorted_pos.end(), 0u);
  // Stable order: by duration, ties by time position, so the candidate
  // walk (and anything else derived from the sorted view) is a pure
  // function of the gap stream.
  std::sort(sorted_pos.begin(), sorted_pos.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (gaps[a] != gaps[b]) return gaps[a] < gaps[b];
              return a < b;
            });
  sorted_gaps.resize(n);
  prefix_gap_sum.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_gaps[i] = gaps[sorted_pos[i]];
    // Fixed index order: the prefix sums feed bit-identity contracts, so
    // they must never be reassociated or accumulated scheduling-ordered.
    prefix_gap_sum[i + 1] = prefix_gap_sum[i] + sorted_gaps[i];
  }
}

IdleDecomposition IdleDecomposition::from_gap_stream(
    trace::IdleGapStream stream, SimTime duration) {
  IdleDecomposition out;
  out.gaps = std::move(stream.gaps);
  out.segment_records = std::move(stream.segment_records);
  out.leading_records = stream.leading_records;
  out.total_records = stream.total_records;
  out.end_of_activity = stream.end_of_activity;
  out.duration = duration;
  out.finalize();
  return out;
}

IdleDecomposition IdleDecomposition::from_trace(
    const trace::Trace& trace, const trace::ServiceModel& model) {
  trace::IdleAccumulator::Options options;
  options.capture_gaps = true;
  trace::IdleAccumulator acc(model, options);
  for (const trace::TraceRecord& r : trace.records) acc.add(r);
  return from_gap_stream(acc.take_gap_stream(), trace.duration);
}

IdleDecomposition IdleDecomposition::from_trace(
    const trace::Trace& trace, const std::vector<SimTime>& services) {
  assert(services.size() == trace.records.size());
  std::size_t next = 0;
  trace::IdleAccumulator::Options options;
  options.capture_gaps = true;
  trace::IdleAccumulator acc(
      [&services, &next](const trace::TraceRecord&) {
        return services[next++];
      },
      options);
  for (const trace::TraceRecord& r : trace.records) acc.add(r);
  return from_gap_stream(acc.take_gap_stream(), trace.duration);
}

void IdleDecomposition::append(const IdleDecomposition& tail) {
  // Tail requests that arrive before tail's first gap extend this
  // decomposition's final busy segment (or its leading one when this has
  // no gaps yet).
  if (segment_records.empty()) {
    leading_records += tail.leading_records;
  } else {
    segment_records.back() += tail.leading_records;
  }
  gaps.insert(gaps.end(), tail.gaps.begin(), tail.gaps.end());
  segment_records.insert(segment_records.end(), tail.segment_records.begin(),
                         tail.segment_records.end());
  total_records += tail.total_records;
  end_of_activity = tail.end_of_activity;
  duration = std::max(duration, tail.duration);
  finalize();
}

}  // namespace pscrub::core
