#include "core/cost_model.h"

#include <memory>

namespace pscrub::core {

trace::ServiceModel make_foreground_service(const disk::DiskProfile& profile) {
  auto last_end = std::make_shared<disk::Lbn>(-1);
  const disk::DiskProfile p = profile;
  return [p, last_end](const trace::TraceRecord& r) -> SimTime {
    const bool sequential = r.lbn == *last_end;
    *last_end = r.lbn + r.sectors;
    if (sequential) {
      // Streaming continuation: media transfer plus electronics; the head
      // is already on (or near) the track.
      return p.command_overhead + p.media_transfer(r.sectors) +
             p.bus_transfer(r.bytes()) + p.completion_overhead;
    }
    return p.random_read_service(r.bytes());
  };
}

ScrubServiceFn make_scrub_service(const disk::DiskProfile& profile) {
  const disk::DiskProfile p = profile;
  return [p](std::int64_t bytes) {
    return p.sequential_verify_service(bytes);
  };
}

ScrubServiceFn make_staggered_scrub_service(const disk::DiskProfile& profile,
                                            int regions) {
  const disk::DiskProfile p = profile;
  return [p, regions](std::int64_t bytes) {
    return p.staggered_verify_service(bytes, regions);
  };
}

WaitingGridRequest make_waiting_grid_request(const disk::DiskProfile& profile,
                                             std::int64_t request_bytes) {
  WaitingGridRequest request;
  request.request_bytes = request_bytes;
  request.request_service = profile.sequential_verify_service(request_bytes);
  return request;
}

}  // namespace pscrub::core
