// Idle-interval decomposition of one trace under one foreground service
// model: the shared input of the batched Waiting-grid evaluator
// (core::run_waiting_grid) and the optimizer's threshold probes.
//
// Built once per trace in O(records) via trace::IdleAccumulator, the
// decomposition holds the baseline idle-gap stream twice:
//
//   - in time order (gaps / segment_records), which is what replaying a
//     Waiting policy needs: a scrub request that straddles the next
//     arrival delays the foreground frontier, and that delay cascades
//     through the following busy segments until baseline gaps absorb it;
//
//   - sorted ascending with prefix sums (sorted_gaps / prefix_gap_sum),
//     which turns the threshold-independent aggregates into O(log n)
//     order-statistics queries: how many intervals a threshold captures,
//     how much scrub-usable idle time they hold, and the shared
//     total-idle base that per-threshold corrections adjust.
//
// Every quantity is integer SimTime, so evaluating a (size, threshold)
// grid point from the decomposition is bit-identical to replaying the
// full trace through run_policy_sim_reference (proven by the
// tests/test_policy_batched.cc differential suite).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/idle.h"
#include "trace/record.h"

namespace pscrub::core {

struct IdleDecomposition {
  // --- Time-ordered stream (exact replay state) ---
  /// Baseline idle gaps (> 0), in time order.
  std::vector<SimTime> gaps;
  /// Requests in the busy segment following gaps[i]; a collision overrun
  /// of d at gap i slows each of them down by exactly d.
  std::vector<std::int64_t> segment_records;
  /// Requests before the first gap (never slowed down: no scrub request
  /// can be in flight before the first idle interval).
  std::int64_t leading_records = 0;
  std::int64_t total_records = 0;
  /// Baseline completion time of the last request.
  SimTime end_of_activity = 0;
  /// Observation window (trace.duration); the trailing idle interval is
  /// max(duration, end_of_activity + final delay) - that frontier.
  SimTime duration = 0;

  // --- Sorted SoA view (order-statistics / prefix-sum queries) ---
  /// gaps, sorted ascending.
  std::vector<SimTime> sorted_gaps;
  /// prefix_gap_sum[k] = sum of sorted_gaps[0..k); one past-the-end entry
  /// holds the total. Accumulated in fixed index order (determinism
  /// contract: no scheduling-ordered float or reassociated reductions).
  std::vector<SimTime> prefix_gap_sum;
  /// Time-order position of sorted_gaps[i]: the candidate index used by
  /// the single-threshold evaluator to visit only captured intervals.
  std::vector<std::uint32_t> sorted_pos;

  std::int64_t interval_count() const {
    return static_cast<std::int64_t>(gaps.size());
  }
  /// Sum of all baseline gaps (the threshold-independent total_idle base;
  /// excludes the trailing window).
  SimTime total_gap_idle() const {
    return prefix_gap_sum.empty() ? 0 : prefix_gap_sum.back();
  }
  /// Number of intervals strictly longer than `threshold` -- the intervals
  /// Waiting(threshold) fires in when no collision delay is pending.
  std::int64_t captured_intervals(SimTime threshold) const;
  /// Scrub-usable idle time at `threshold` before request quantization:
  /// sum over gaps g > threshold of (g - threshold). O(log n) from the
  /// prefix sums. Monotone non-increasing in the threshold.
  SimTime usable_idle(SimTime threshold) const;

  /// (Re)builds the sorted view from the time-ordered stream.
  void finalize();

  /// Adopts an exact gap stream (trace::IdleAccumulator with capture_gaps).
  static IdleDecomposition from_gap_stream(trace::IdleGapStream stream,
                                           SimTime duration);
  /// One-pass extraction; `model` is evaluated once per record.
  static IdleDecomposition from_trace(const trace::Trace& trace,
                                      const trace::ServiceModel& model);
  /// Extraction against precomputed per-record service times (see
  /// core::precompute_services); the optimizer's path.
  static IdleDecomposition from_trace(const trace::Trace& trace,
                                      const std::vector<SimTime>& services);

  /// Appends the decomposition of a later slice of the same timeline.
  /// `tail` must have been extracted with IdleAccumulator::Options::
  /// busy_until == this->end_of_activity, so the bridging gap (if any) is
  /// already tail's first gap. Decomposing a whole trace equals
  /// decomposing its slices and appending them in order.
  void append(const IdleDecomposition& tail);
};

}  // namespace pscrub::core
