#include "core/spin_down.h"

namespace pscrub::core {

SpinDownDaemon::SpinDownDaemon(Simulator& sim, block::BlockLayer& blk,
                               SimTime wait_threshold)
    : sim_(sim), blk_(blk), wait_threshold_(wait_threshold) {
  arm_event_ = sim_.add_persistent([this] { check(); });
}

void SpinDownDaemon::start() {
  if (running_) return;
  running_ = true;
  blk_.set_idle_observer([this] { on_idle(); });
  if (blk_.idle()) on_idle();
}

void SpinDownDaemon::stop() {
  if (!running_) return;
  running_ = false;
  if (armed_) {
    sim_.cancel(arm_event_);
    armed_ = false;
  }
  blk_.set_idle_observer(nullptr);
}

void SpinDownDaemon::on_idle() {
  if (!running_ || armed_) return;
  armed_ = true;
  sim_.arm_after(arm_event_, wait_threshold_);
}

void SpinDownDaemon::check() {
  armed_ = false;
  if (!running_ || !blk_.idle()) return;
  // Spin down only after a full threshold of continuous idleness.
  const SimTime idle_for = blk_.disk_idle_for();
  if (idle_for < wait_threshold_) {
    armed_ = true;
    sim_.arm_after(arm_event_, wait_threshold_ - idle_for);
    return;
  }
  if (blk_.disk().spin_down()) ++stats_.spin_downs;
}

}  // namespace pscrub::core
